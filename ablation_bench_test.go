package hlpower

// Ablation benchmarks for the substrate design choices DESIGN.md calls
// out: the delay model (zero-delay vs glitch-aware event-driven), the
// two-level vs factored controller synthesis, and exact vs greedy cover
// minimization. Run with `go test -bench=Ablation -benchmem`.

import (
	"math/rand"
	"testing"

	"hlpower/internal/bitutil"
	"hlpower/internal/cover"
	"hlpower/internal/fsm"
	"hlpower/internal/logic"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

// BenchmarkAblationZeroDelay measures the functional-transition-only
// delay model on the 8x8 multiplier.
func BenchmarkAblationZeroDelay(b *testing.B) {
	benchDelayModel(b, sim.ZeroDelay)
}

// BenchmarkAblationEventDriven measures the glitch-aware model on the
// same circuit — the cost of counting spurious transitions.
func BenchmarkAblationEventDriven(b *testing.B) {
	benchDelayModel(b, sim.EventDriven)
}

func benchDelayModel(b *testing.B, model sim.DelayModel) {
	rng := rand.New(rand.NewSource(1))
	mul := rtlib.NewMultiplier(8)
	as := trace.Uniform(200, 8, rng)
	bs := trace.Uniform(200, 8, rng)
	b.ResetTimer()
	var cap float64
	for i := 0; i < b.N; i++ {
		res, err := mul.SimulateStream(as, bs, model)
		if err != nil {
			b.Fatal(err)
		}
		cap = res.SwitchedCap
	}
	b.ReportMetric(cap/float64(len(as)), "cap/cycle")
}

// BenchmarkAblationTwoLevelFSM synthesizes and simulates a controller
// with two-level next-state logic.
func BenchmarkAblationTwoLevelFSM(b *testing.B) { benchFSMSynth(b, false) }

// BenchmarkAblationFactoredFSM does the same with algebraically
// factored multilevel logic.
func BenchmarkAblationFactoredFSM(b *testing.B) { benchFSMSynth(b, true) }

func benchFSMSynth(b *testing.B, multilevel bool) {
	rng := rand.New(rand.NewSource(2))
	f := fsm.Random(10, 2, 2, 0.3, rng)
	enc := fsm.BinaryEncoding(f.NumStates)
	symbols := make([]int, 300)
	for i := range symbols {
		symbols[i] = rng.Intn(f.NumSymbols())
	}
	prov := func(c int) []bool { return bitutil.ToBits(uint64(symbols[c]), f.NumInputs) }
	b.ResetTimer()
	var cap float64
	for i := 0; i < b.N; i++ {
		var net interface {
			NumGates() int
		}
		var err error
		if multilevel {
			n, e := fsm.SynthesizeMultilevel(f, enc)
			net, err = n, e
			if err == nil {
				res, err2 := sim.Run(n, prov, len(symbols), sim.Options{Model: sim.EventDriven})
				if err2 != nil {
					b.Fatal(err2)
				}
				cap = res.SwitchedCap
			}
		} else {
			n, e := fsm.Synthesize(f, enc)
			net, err = n, e
			if err == nil {
				res, err2 := sim.Run(n, prov, len(symbols), sim.Options{Model: sim.EventDriven})
				if err2 != nil {
					b.Fatal(err2)
				}
				cap = res.SwitchedCap
			}
		}
		if err != nil {
			b.Fatal(err)
		}
		_ = net
	}
	b.ReportMetric(cap, "switched-cap")
}

// BenchmarkAblationMintermCover evaluates an unminimized minterm cover
// netlist — what skipping Quine–McCluskey costs in switched capacitance.
func BenchmarkAblationMintermCover(b *testing.B) { benchCoverSynth(b, false) }

// BenchmarkAblationMinimizedCover evaluates the QM-minimized equivalent.
func BenchmarkAblationMinimizedCover(b *testing.B) { benchCoverSynth(b, true) }

func benchCoverSynth(b *testing.B, minimize bool) {
	rng := rand.New(rand.NewSource(3))
	n := 8
	var ms []uint64
	for i := uint64(0); i < 1<<uint(n); i++ {
		if rng.Float64() < 0.4 {
			ms = append(ms, i)
		}
	}
	stream := trace.Uniform(300, n, rng)
	b.ResetTimer()
	var cap float64
	for i := 0; i < b.N; i++ {
		var cv *cover.Cover
		if minimize {
			m, err := cover.Minimize(ms, n)
			if err != nil {
				b.Fatal(err)
			}
			cv = m
		} else {
			cv = cover.FromMinterms(ms, n)
		}
		net := NewNetlist()
		in := net.AddInputBus("x", n)
		net.MarkOutput(logic.FromCover(net, cv, in, "g"))
		res, err := sim.Run(net, func(c int) []bool {
			return bitutil.ToBits(stream[c], n)
		}, len(stream), sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		cap = res.SwitchedCap
	}
	b.ReportMetric(cap, "switched-cap")
}
