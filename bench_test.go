package hlpower

// One benchmark per reproduced paper artifact: each regenerates the
// corresponding table/claim end to end (workload generation, model
// characterization, simulation, reporting). `go test -bench=. -benchmem`
// therefore re-derives every number in EXPERIMENTS.md.

import (
	"testing"

	"hlpower/internal/experiments"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Figures) == 0 {
			b.Fatalf("%s produced no figures", id)
		}
	}
}

// BenchmarkE1TableI regenerates Table I (FIR constant-mult conversion).
func BenchmarkE1TableI(b *testing.B) { benchExperiment(b, "E1") }

// BenchmarkE2MemAccess regenerates the Fig. 2 memory-access optimization.
func BenchmarkE2MemAccess(b *testing.B) { benchExperiment(b, "E2") }

// BenchmarkE3Shutdown regenerates the §III-B shutdown-policy comparison.
func BenchmarkE3Shutdown(b *testing.B) { benchExperiment(b, "E3") }

// BenchmarkE4Transforms regenerates the Figs. 4-5 transformation shapes.
func BenchmarkE4Transforms(b *testing.B) { benchExperiment(b, "E4") }

// BenchmarkE5Tiwari regenerates the instruction-level model accuracy.
func BenchmarkE5Tiwari(b *testing.B) { benchExperiment(b, "E5") }

// BenchmarkE6ProfileSynthesis regenerates the profile-driven synthesis claim.
func BenchmarkE6ProfileSynthesis(b *testing.B) { benchExperiment(b, "E6") }

// BenchmarkE7Entropy regenerates the information-theoretic estimation study.
func BenchmarkE7Entropy(b *testing.B) { benchExperiment(b, "E7") }

// BenchmarkE8TyagiBound regenerates the FSM entropic-bound check.
func BenchmarkE8TyagiBound(b *testing.B) { benchExperiment(b, "E8") }

// BenchmarkE9AreaModel regenerates the linear-measure area regressions.
func BenchmarkE9AreaModel(b *testing.B) { benchExperiment(b, "E9") }

// BenchmarkE10MacroLadder regenerates the macro-model accuracy ladder.
func BenchmarkE10MacroLadder(b *testing.B) { benchExperiment(b, "E10") }

// BenchmarkE11Sampling regenerates the census/sampler/adaptive comparison.
func BenchmarkE11Sampling(b *testing.B) { benchExperiment(b, "E11") }

// BenchmarkE12ColdScheduling regenerates the cold-scheduling reduction.
func BenchmarkE12ColdScheduling(b *testing.B) { benchExperiment(b, "E12") }

// BenchmarkE13PMSched regenerates the power-management scheduling saving.
func BenchmarkE13PMSched(b *testing.B) { benchExperiment(b, "E13") }

// BenchmarkE14Allocation regenerates the activity-aware binding saving.
func BenchmarkE14Allocation(b *testing.B) { benchExperiment(b, "E14") }

// BenchmarkE15MultiVdd regenerates the multi-voltage energy-delay curve.
func BenchmarkE15MultiVdd(b *testing.B) { benchExperiment(b, "E15") }

// BenchmarkE16BusEncoding regenerates the bus-code comparison matrix.
func BenchmarkE16BusEncoding(b *testing.B) { benchExperiment(b, "E16") }

// BenchmarkE17FSMEncoding regenerates the state-encoding comparison.
func BenchmarkE17FSMEncoding(b *testing.B) { benchExperiment(b, "E17") }

// BenchmarkE18Shutdown regenerates the gate-level shutdown savings.
func BenchmarkE18Shutdown(b *testing.B) { benchExperiment(b, "E18") }

// BenchmarkE19Retiming regenerates the power-driven retiming sweep.
func BenchmarkE19Retiming(b *testing.B) { benchExperiment(b, "E19") }

// BenchmarkE20Memory regenerates the SRAM organization sweep.
func BenchmarkE20Memory(b *testing.B) { benchExperiment(b, "E20") }
