package hlpower

// Benchmarks for the content-addressed estimate cache on the simulate
// path. BenchmarkMemoHit measures the full replay cost — key
// derivation (netlist + input hashing), lookup, and the defensive
// result clone — which must stay well over an order of magnitude
// cheaper than the simulation it displaces (BenchmarkMemoMiss).
// BenchmarkMemoMissParallel drives all-unique keys through the sharded
// store path under contention.

import (
	"math/rand"
	"sync/atomic"
	"testing"

	"hlpower/internal/rtlib"
	"hlpower/internal/trace"
)

const (
	memoBenchWidth  = 6
	memoBenchCycles = 512
)

// memoBenchProvider returns a deterministic input stream for the bench
// multiplier; distinct salts yield distinct streams and therefore
// distinct cache keys for identical simulation work.
func memoBenchProvider(mod *rtlib.Module, salt uint64) func(int) []bool {
	rng := rand.New(rand.NewSource(int64(salt)))
	as := trace.Uniform(memoBenchCycles, memoBenchWidth, rng)
	bs := trace.Uniform(memoBenchCycles, memoBenchWidth, rng)
	return func(c int) []bool { return mod.InputVector(as[c], bs[c]) }
}

func BenchmarkMemoHit(b *testing.B) {
	mod := rtlib.NewMultiplier(memoBenchWidth)
	prov := memoBenchProvider(mod, 1)
	c := NewEstimateCache(EstimateCacheOptions{})
	if _, err := SimulateMemo(c, nil, mod.Net, prov, memoBenchCycles, SimOptions{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SimulateMemo(c, nil, mod.Net, prov, memoBenchCycles, SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := c.Stats(); st.Hits < int64(b.N) {
		b.Fatalf("hit benchmark missed: %d hits for %d iterations (%+v)", st.Hits, b.N, st)
	}
}

func BenchmarkMemoMiss(b *testing.B) {
	mod := rtlib.NewMultiplier(memoBenchWidth)
	c := NewEstimateCache(EstimateCacheOptions{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prov := memoBenchProvider(mod, uint64(i)+2) // salt 1 is the hit benchmark's
		if _, err := SimulateMemo(c, nil, mod.Net, prov, memoBenchCycles, SimOptions{}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if st := c.Stats(); st.Misses < int64(b.N) {
		b.Fatalf("miss benchmark hit: %d misses for %d iterations (%+v)", st.Misses, b.N, st)
	}
}

func BenchmarkMemoMissParallel(b *testing.B) {
	mod := rtlib.NewMultiplier(memoBenchWidth)
	c := NewEstimateCache(EstimateCacheOptions{})
	var salt atomic.Uint64
	salt.Store(1 << 32) // disjoint from the serial benchmarks' salts
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			prov := memoBenchProvider(mod, salt.Add(1))
			if _, err := SimulateMemo(c, nil, mod.Net, prov, memoBenchCycles, SimOptions{}); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// TestMemoHitSpeedup pins the acceptance floor directly: a cache hit
// must be at least 10x cheaper than the simulation it replaces. The
// benchmarks above report the precise ratio; this test fails loudly if
// the replay path ever gets slow enough to defeat its purpose.
func TestMemoHitSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test skipped in -short mode")
	}
	miss := testing.Benchmark(func(b *testing.B) {
		mod := rtlib.NewMultiplier(memoBenchWidth)
		c := NewEstimateCache(EstimateCacheOptions{})
		for i := 0; i < b.N; i++ {
			prov := memoBenchProvider(mod, uint64(i)+2)
			if _, err := SimulateMemo(c, nil, mod.Net, prov, memoBenchCycles, SimOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	hit := testing.Benchmark(func(b *testing.B) {
		mod := rtlib.NewMultiplier(memoBenchWidth)
		prov := memoBenchProvider(mod, 1)
		c := NewEstimateCache(EstimateCacheOptions{})
		if _, err := SimulateMemo(c, nil, mod.Net, prov, memoBenchCycles, SimOptions{}); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := SimulateMemo(c, nil, mod.Net, prov, memoBenchCycles, SimOptions{}); err != nil {
				b.Fatal(err)
			}
		}
	})
	ratio := float64(miss.NsPerOp()) / float64(hit.NsPerOp())
	t.Logf("memo miss %d ns/op, hit %d ns/op, speedup %.1fx", miss.NsPerOp(), hit.NsPerOp(), ratio)
	if ratio < 10 {
		t.Errorf("cache hit only %.1fx faster than miss, want >= 10x", ratio)
	}
}
