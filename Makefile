# Convenience targets; everything is plain `go` underneath.

.PHONY: all build test bench repro vet cover clean

all: build test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

repro:
	go run ./cmd/repro -j 8

cover:
	go test -cover ./internal/... .

clean:
	go clean ./...
