# Convenience targets; everything is plain `go` underneath.

.PHONY: all check build test bench repro vet cover fuzz clean

all: check

# check is the default verification entry point: vet, build, and the
# full test suite under the race detector.
check:
	go vet ./...
	go build ./...
	go test -race ./...

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

repro:
	go run ./cmd/repro -j 8

cover:
	go test -cover ./internal/... .

# fuzz gives each bus round-trip fuzz target a short budget.
fuzz:
	for f in FuzzBusInvertRoundTrip FuzzT0RoundTrip FuzzGrayRoundTrip \
	         FuzzT0BIRoundTrip FuzzWorkingZoneRoundTrip FuzzBeachRoundTrip; do \
		go test -run "^$$f$$" -fuzz "^$$f$$" -fuzztime 10s ./internal/bus/ || exit 1; \
	done

clean:
	go clean ./...
