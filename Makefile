# Convenience targets; everything is plain `go` underneath.

FUZZTIME ?= 10s

.PHONY: all check ci fmt-check build test bench bench-json bench-compare profile repro vet lint cover fuzz soak soak-cluster soak-jobs soak-all vulncheck clean

all: check

# check is the default verification entry point: vet, build, and the
# full test suite under the race detector.
check:
	go vet ./...
	go build ./...
	go test -race ./...

# ci mirrors the required job of .github/workflows/ci.yml exactly, so
# "make ci" locally reproduces what the pipeline gates on.
ci: fmt-check vet build
	go test -race ./...

# fmt-check fails (and lists the offenders) if any file needs gofmt.
fmt-check:
	@out=$$(gofmt -l .); if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	go build ./...

vet:
	go vet ./...

# lint runs staticcheck at a pinned release so local runs and the
# blocking CI lint job agree on the rule set (config in
# staticcheck.conf). The tool is fetched on demand; it is not a module
# dependency.
lint:
	go run honnef.co/go/tools/cmd/staticcheck@2025.1.1 ./...

test:
	go test ./...

bench:
	go test -bench=. -benchmem ./...

# bench-json records the serial-vs-parallel benchmark snapshot as
# BENCH_<date>.json (see cmd/benchjson); CI runs it non-blocking.
bench-json:
	go run ./cmd/benchjson -short

# bench-compare measures a fresh candidate snapshot and diffs it
# against the newest checked-in BENCH_*.json (see cmd/benchcompare).
# It runs the full workload so the candidate matches the committed
# snapshot's shape: with equal shapes, allocs_per_op increases >10%
# fail the target (allocations are deterministic); timing deltas stay
# advisory because shared-runner timings are too noisy for a hard gate.
BENCH_NEW ?= /tmp/hlpower_bench_new.json
bench-compare:
	go run ./cmd/benchjson -out $(BENCH_NEW)
	go run ./cmd/benchcompare -new $(BENCH_NEW)

# profile captures CPU and allocation profiles of the packed-kernel
# serving workload (the fused compiled tier over pooled scratch) for
# pprof inspection:
#   go tool pprof /tmp/hlpower_cpu.pprof
#   go tool pprof -sample_index=alloc_objects /tmp/hlpower_mem.pprof
profile:
	go test -run '^$$' -bench '^BenchmarkPackedKernelWorkload$$' -benchmem \
		-cpuprofile /tmp/hlpower_cpu.pprof -memprofile /tmp/hlpower_mem.pprof \
		./internal/sim/

repro:
	go run ./cmd/repro -j 8

cover:
	go test -cover ./internal/... ./cmd/... .

# fuzz gives each bus round-trip fuzz target, the memo canonical-key
# target, the batch decode/partition target, the job-engine wire
# target (optimize request + checkpoint snapshot), and the kernel
# equivalence targets (fused vs unfused, and codegen vs fused,
# bit-identity including budget exhaustion) a budget of FUZZTIME
# (override with e.g. `make fuzz FUZZTIME=5s` for CI smoke runs).
fuzz:
	for f in FuzzBusInvertRoundTrip FuzzT0RoundTrip FuzzGrayRoundTrip \
	         FuzzT0BIRoundTrip FuzzWorkingZoneRoundTrip FuzzBeachRoundTrip; do \
		go test -run "^$$f$$" -fuzz "^$$f$$" -fuzztime $(FUZZTIME) ./internal/bus/ || exit 1; \
	done
	go test -run '^FuzzCanonicalKey$$' -fuzz '^FuzzCanonicalKey$$' -fuzztime $(FUZZTIME) ./internal/memo/
	go test -run '^FuzzBatchRequest$$' -fuzz '^FuzzBatchRequest$$' -fuzztime $(FUZZTIME) ./internal/service/
	go test -run '^FuzzRecipeWire$$' -fuzz '^FuzzRecipeWire$$' -fuzztime $(FUZZTIME) ./internal/jobs/
	go test -run '^FuzzFusedEquivalence$$' -fuzz '^FuzzFusedEquivalence$$' -fuzztime $(FUZZTIME) ./internal/sim/
	go test -run '^FuzzCodegenEquivalence$$' -fuzz '^FuzzCodegenEquivalence$$' -fuzztime $(FUZZTIME) ./internal/sim/

# soak runs the powerd chaos harness under the race detector: >= 1000
# requests with fault injection in the sim/rank/bdd paths, asserting
# breaker lifecycles, 429 shedding, and leak-free drain. SOAKCOUNT
# repeats it (override with e.g. `make soak SOAKCOUNT=10`).
SOAKCOUNT ?= 1
soak:
	go test -race -run TestChaosSoak -count=$(SOAKCOUNT) -v ./internal/powerd/

# soak-cluster runs the multi-node chaos harness under the race
# detector: a 4-node in-process powerd ring under partitions, a node
# kill, an injected slow peer, and clock-skewed gossip, asserting no
# lost requests, ring-wide request collapsing, bit-identical results
# vs a single-node reference, and leak-free drain.
soak-cluster:
	go test -race -run TestClusterChaosSoak -count=$(SOAKCOUNT) -v ./internal/powerd/

# soak-jobs runs the durable-job-engine chaos harness under the race
# detector: 100 optimization jobs under deterministic fault injection
# with a mid-fleet drain + restart over a shared checkpoint store,
# asserting zero lost/duplicated jobs, bit-identical resume vs an
# uninterrupted reference fleet, and leak-free drain.
soak-jobs:
	go test -race -run TestJobsSoak -count=$(SOAKCOUNT) -v ./internal/jobs/

# soak-all runs every soak harness back to back.
soak-all: soak soak-cluster soak-jobs

# vulncheck scans the module against the Go vulnerability database.
# The tool is pinned (and fetched on demand — it is not a module
# dependency) so a govulncheck release cannot silently change what CI
# runs; the CI job is non-blocking: findings are advisory.
vulncheck:
	go run golang.org/x/vuln/cmd/govulncheck@v1.1.4 ./...

clean:
	go clean ./...
	rm -f $(BENCH_NEW)
