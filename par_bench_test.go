package hlpower

// Scaling benchmarks for the parallel estimation engine: sharded Monte
// Carlo simulation and concurrent candidate ranking, each against its
// serial baseline. On an N-core machine the w=N variants should
// approach N-fold speedup (the per-shard work dominates the merge);
// cmd/benchjson runs the same pairs and records the trajectory in
// BENCH_<date>.json.

import (
	"fmt"
	"math/rand"
	"testing"

	"hlpower/internal/core"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
)

// benchMCWorkload is a Monte Carlo power-estimation workload in the
// spirit of the E2-scale experiments: a combinational array multiplier
// driven by a seeded random vector stream.
func benchMCWorkload(width, cycles int) (*Netlist, sim.InputProvider) {
	m := rtlib.NewMultiplier(width)
	n := m.Net
	rng := rand.New(rand.NewSource(99))
	ins := 2 * width
	vectors := make([][]bool, cycles)
	for c := range vectors {
		v := make([]bool, ins)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		vectors[c] = v
	}
	return n, sim.VectorInputs(vectors)
}

// benchSimCycles is the vector count of the standard Monte Carlo
// simulation benchmark: ~10k vectors, deliberately not a multiple of 64
// so the packed kernel's tail-lane masking is always on the hot path.
const benchSimCycles = 10240

// benchSimBytes reports the workload's data volume as lane-evaluations
// in bytes (one bit per gate per cycle), so ns/op readings translate
// into a throughput all three kernels share a scale for.
func benchSimBytes(n *Netlist) int64 {
	return int64(benchSimCycles) * int64(len(n.Gates)) / 8
}

// BenchmarkSimSerial is the single-goroutine interpreted Monte Carlo
// baseline.
func BenchmarkSimSerial(b *testing.B) {
	n, inputs := benchMCWorkload(8, benchSimCycles)
	b.ReportAllocs()
	b.SetBytes(benchSimBytes(n))
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(n, inputs, benchSimCycles, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimPacked runs the same workload on the compiled 64-lane
// bit-packed kernel (one goroutine); compare against BenchmarkSimSerial
// for the packing speedup alone, with no threading in the picture.
func BenchmarkSimPacked(b *testing.B) {
	n, inputs := benchMCWorkload(8, benchSimCycles)
	b.ReportAllocs()
	b.SetBytes(benchSimBytes(n))
	for i := 0; i < b.N; i++ {
		res, err := sim.RunPacked(n, inputs, benchSimCycles, sim.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Kernel != sim.KernelPacked {
			b.Fatalf("Kernel=%q, want %q (fallback: %q)", res.Kernel, sim.KernelPacked, res.Fallback)
		}
	}
}

// BenchmarkSimParallel shards the same workload across worker pools of
// increasing width (packed kernel inside each shard); compare against
// BenchmarkSimPacked for the sharding speedup on top of packing.
func BenchmarkSimParallel(b *testing.B) {
	n, inputs := benchMCWorkload(8, benchSimCycles)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(benchSimBytes(n))
			for i := 0; i < b.N; i++ {
				_, err := sim.RunParallel(nil, n, inputs, benchSimCycles, sim.ParallelOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchCandidates builds a candidate set whose estimators each run a
// gate-level simulation — the per-candidate macromodel-evaluation shape
// of the design-improvement loop.
func benchCandidates(count, width, cycles int) []Candidate {
	var out []Candidate
	for i := 0; i < count; i++ {
		n, inputs := benchMCWorkload(width, cycles)
		name := fmt.Sprintf("cand-%d", i)
		out = append(out, Candidate{
			Name: name,
			Estimator: core.FuncB{
				EstimatorName: name, EstimatorLevel: Gate,
				Fn: func(b *Budget) (float64, bool, error) {
					res, err := sim.RunBudget(b, n, inputs, cycles, sim.Options{})
					if err != nil {
						return 0, false, err
					}
					return res.Power(), false, nil
				},
			},
		})
	}
	return out
}

// BenchmarkRankSerial evaluates the candidate set on one goroutine.
func BenchmarkRankSerial(b *testing.B) {
	cands := benchCandidates(8, 6, 512)
	for i := 0; i < b.N; i++ {
		r := RankBudget(nil, cands)
		if _, err := r.Best(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankParallel evaluates candidates concurrently; compare
// against BenchmarkRankSerial for speedup.
func BenchmarkRankParallel(b *testing.B) {
	cands := benchCandidates(8, 6, 512)
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RankParallel(nil, workers, cands)
				if _, err := r.Best(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
