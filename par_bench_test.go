package hlpower

// Scaling benchmarks for the parallel estimation engine: sharded Monte
// Carlo simulation and concurrent candidate ranking, each against its
// serial baseline. On an N-core machine the w=N variants should
// approach N-fold speedup (the per-shard work dominates the merge);
// cmd/benchjson runs the same pairs and records the trajectory in
// BENCH_<date>.json.

import (
	"fmt"
	"math/rand"
	"testing"

	"hlpower/internal/core"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
)

// benchMCWorkload is a Monte Carlo power-estimation workload in the
// spirit of the E2-scale experiments: a combinational array multiplier
// driven by a seeded random vector stream.
func benchMCWorkload(width, cycles int) (*Netlist, sim.InputProvider) {
	m := rtlib.NewMultiplier(width)
	n := m.Net
	rng := rand.New(rand.NewSource(99))
	ins := 2 * width
	vectors := make([][]bool, cycles)
	for c := range vectors {
		v := make([]bool, ins)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		vectors[c] = v
	}
	return n, sim.VectorInputs(vectors)
}

// BenchmarkSimSerial is the single-goroutine Monte Carlo baseline.
func BenchmarkSimSerial(b *testing.B) {
	n, inputs := benchMCWorkload(8, 4096)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(n, inputs, 4096, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimParallel shards the same workload across worker pools of
// increasing width; compare against BenchmarkSimSerial for speedup.
func BenchmarkSimParallel(b *testing.B) {
	n, inputs := benchMCWorkload(8, 4096)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				_, err := sim.RunParallel(nil, n, inputs, 4096, sim.ParallelOptions{Workers: workers})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchCandidates builds a candidate set whose estimators each run a
// gate-level simulation — the per-candidate macromodel-evaluation shape
// of the design-improvement loop.
func benchCandidates(count, width, cycles int) []Candidate {
	var out []Candidate
	for i := 0; i < count; i++ {
		n, inputs := benchMCWorkload(width, cycles)
		name := fmt.Sprintf("cand-%d", i)
		out = append(out, Candidate{
			Name: name,
			Estimator: core.FuncB{
				EstimatorName: name, EstimatorLevel: Gate,
				Fn: func(b *Budget) (float64, bool, error) {
					res, err := sim.RunBudget(b, n, inputs, cycles, sim.Options{})
					if err != nil {
						return 0, false, err
					}
					return res.Power(), false, nil
				},
			},
		})
	}
	return out
}

// BenchmarkRankSerial evaluates the candidate set on one goroutine.
func BenchmarkRankSerial(b *testing.B) {
	cands := benchCandidates(8, 6, 512)
	for i := 0; i < b.N; i++ {
		r := RankBudget(nil, cands)
		if _, err := r.Best(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRankParallel evaluates candidates concurrently; compare
// against BenchmarkRankSerial for speedup.
func BenchmarkRankParallel(b *testing.B) {
	cands := benchCandidates(8, 6, 512)
	for _, workers := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := RankParallel(nil, workers, cands)
				if _, err := r.Best(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
