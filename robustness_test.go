package hlpower_test

// Acceptance tests for the resource-governed estimation core: a
// pathological input under a small budget must come back as a typed
// budget error or a degraded result within roughly twice the budget,
// and injected budget faults at every checkpoint must unwind cleanly
// through each estimation stage.

import (
	"errors"
	"math/rand"
	"testing"
	"time"

	"hlpower"
	"hlpower/internal/bdd"
	"hlpower/internal/budget"
	"hlpower/internal/cover"
	"hlpower/internal/fsm"
	"hlpower/internal/isa"
	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

// slack is the CI allowance added on top of the ~2x-budget bound.
const slack = 500 * time.Millisecond

func TestPathologicalQMUnderDeadline(t *testing.T) {
	// 22-variable function with thousands of scattered minterms: exact
	// Quine–McCluskey's first merge round alone is millions of pair
	// comparisons.
	rng := rand.New(rand.NewSource(7))
	const nvars = 22
	seen := map[uint64]bool{}
	var on []uint64
	for len(on) < 4000 {
		m := uint64(rng.Intn(1 << nvars))
		if !seen[m] {
			seen[m] = true
			on = append(on, m)
		}
	}
	// The step cap makes degradation deterministic (the first QM merge
	// round alone is ~8M charged pair comparisons); the deadline bounds
	// wall clock for the timing assertion.
	const deadline = 100 * time.Millisecond
	b := hlpower.NewBudget(hlpower.WithTimeout(deadline), hlpower.WithMaxSteps(200_000))
	start := time.Now()
	cv, degraded, err := cover.MinimizeBudget(b, on, nvars)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("MinimizeBudget: %v", err)
	}
	if elapsed > 2*deadline+slack {
		t.Errorf("took %v, want <= ~2x the %v budget", elapsed, deadline)
	}
	if !degraded {
		t.Fatal("200k-step budget cannot cover exact QM here; result must be degraded")
	}
	// Whatever path produced it, the cover must be valid.
	for _, m := range on[:200] {
		if !cv.Eval(m) {
			t.Fatalf("returned cover misses on-set minterm %#x", m)
		}
	}
}

func TestPathologicalBDDUnderDeadline(t *testing.T) {
	// 24-variable random function: the exact ROBDD has millions of
	// nodes, far beyond a 100ms budget.
	rng := rand.New(rand.NewSource(11))
	const nvars = 24
	tt := make([]bool, 1<<nvars)
	for i := range tt {
		tt[i] = rng.Int63()&1 == 1
	}
	const deadline = 100 * time.Millisecond
	b := hlpower.NewBudget(hlpower.WithTimeout(deadline), hlpower.WithMaxNodes(1<<20))
	start := time.Now()
	nodes, degraded, err := bdd.SizeEstimate(b, tt, nvars)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("SizeEstimate: %v", err)
	}
	if elapsed > 2*deadline+slack {
		t.Errorf("took %v, want <= ~2x the %v budget", elapsed, deadline)
	}
	if !degraded {
		t.Fatal("a 24-var random function cannot build exactly under 100ms + 1M nodes")
	}
	if nodes <= 0 {
		t.Fatalf("degraded size estimate = %d, want positive", nodes)
	}
}

func TestBudgetErrorTypedThroughPublicAPI(t *testing.T) {
	n := logic.New()
	a := n.AddInput("a")
	b2 := n.AddInput("b")
	n.MarkOutput(n.AddG(logic.Xor, "x", a, b2))
	inputs := func(cycle int) []bool { return []bool{cycle%2 == 0, cycle%3 == 0} }
	b := hlpower.NewBudget(hlpower.WithMaxSteps(100))
	_, err := hlpower.SimulateBudget(b, n, inputs, 1_000_000, hlpower.SimOptions{})
	if !errors.Is(err, hlpower.ErrBudgetExceeded) {
		t.Fatalf("want ErrBudgetExceeded through public API, got %v", err)
	}
}

func TestInputErrorTypedThroughPublicAPI(t *testing.T) {
	_, err := hlpower.Simulate(nil, nil, 0, hlpower.SimOptions{})
	if err == nil || !hlpower.IsInputError(err) {
		t.Fatalf("want typed input error, got %v", err)
	}
}

// faultSweep runs stage with a budget forced to fail at checkpoint k
// for k = 1..maxK, asserting it never panics and reports exhaustion as
// a typed error or a degraded success.
func faultSweep(t *testing.T, name string, maxK int64, stage func(b *budget.Budget) (degraded bool, err error)) {
	t.Helper()
	for k := int64(1); k <= maxK; k++ {
		b := budget.New(
			budget.WithCheckInterval(1),
			budget.WithFaultPlan(budget.FaultPlan{FailAtCheck: k}),
		)
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("%s: fault at check %d escaped as panic: %v", name, k, r)
				}
			}()
			degraded, err := stage(b)
			if err == nil && !degraded && b.Err() != nil {
				t.Errorf("%s: fault at check %d tripped the budget yet the stage reported a clean exact result", name, k)
			}
			if err != nil && !errors.Is(err, budget.ErrExceeded) {
				t.Errorf("%s: fault at check %d: error not typed: %v", name, k, err)
			}
		}()
	}
}

func TestFaultInjectionUnwindsEveryStage(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	tt := make([]bool, 1<<12)
	for i := range tt {
		tt[i] = rng.Int63()&1 == 1
	}
	var on []uint64
	for i, v := range tt {
		if v {
			on = append(on, uint64(i))
		}
	}

	faultSweep(t, "bdd.BuildTT", 8, func(b *budget.Budget) (bool, error) {
		m := bdd.New(12)
		m.SetBudget(b)
		_, err := m.BuildTT(tt, 12)
		return false, err
	})

	faultSweep(t, "cover.MinimizeBudget", 8, func(b *budget.Budget) (bool, error) {
		cv, degraded, err := cover.MinimizeBudget(b, on, 12)
		if err == nil {
			for _, m := range on[:50] {
				if !cv.Eval(m) {
					t.Fatalf("degraded cover misses %#x", m)
				}
			}
		}
		return degraded, err
	})

	netlist := func() *logic.Netlist {
		n := logic.New()
		a := n.AddInput("a")
		c := n.AddInput("b")
		n.MarkOutput(n.AddG(logic.And, "g", a, c))
		return n
	}
	faultSweep(t, "sim.RunBudget", 8, func(b *budget.Budget) (bool, error) {
		inputs := func(cycle int) []bool { return []bool{cycle%2 == 0, cycle%3 == 0} }
		_, err := sim.RunBudget(b, netlist(), inputs, 10_000, sim.Options{})
		return false, err
	})

	machine := fsm.Random(8, 2, 2, 0.5, rng)
	faultSweep(t, "fsm.SynthesizeBudget", 8, func(b *budget.Budget) (bool, error) {
		net, degraded, err := fsm.SynthesizeBudget(b, machine, fsm.BinaryEncoding(machine.NumStates))
		if err == nil && net == nil {
			t.Fatal("SynthesizeBudget returned neither netlist nor error")
		}
		return degraded, err
	})

	prog, err := isa.VectorSum(64)
	if err != nil {
		t.Fatal(err)
	}
	faultSweep(t, "isa.RunBudget", 8, func(b *budget.Budget) (bool, error) {
		m := isa.NewMachine(isa.DefaultConfig())
		_, _, err := m.RunBudget(b, prog, false)
		return false, err
	})
}

func TestRankSurvivesPanickingEstimator(t *testing.T) {
	candidates := []hlpower.Candidate{
		{Name: "good", Estimator: hlpower.EstimatorFunc{
			EstimatorName: "const", EstimatorLevel: hlpower.RTL,
			Fn: func() (float64, error) { return 2.5, nil },
		}},
		{Name: "bad", Estimator: hlpower.EstimatorFunc{
			EstimatorName: "panics", EstimatorLevel: hlpower.RTL,
			Fn: func() (float64, error) { panic("estimator bug") },
		}},
	}
	r := hlpower.Rank(candidates)
	best, err := r.Best()
	if err != nil {
		t.Fatal(err)
	}
	if best.Candidate.Name != "good" {
		t.Errorf("best = %q, want the non-panicking candidate", best.Candidate.Name)
	}
	if r[len(r)-1].Err == nil {
		t.Error("panicking estimator should carry an error")
	}
}
