package hlpower

import (
	"context"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/bus"
	"hlpower/internal/core"
	"hlpower/internal/dpm"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
	"hlpower/internal/memo"
	"hlpower/internal/par"
	"hlpower/internal/powerd"
	"hlpower/internal/resilience"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
)

// DefaultWorkers clamps a worker-count knob the way every parallel
// entry point here does: nonpositive means one worker per available
// CPU (GOMAXPROCS), so "-j 0" style flags degrade to full-machine
// parallelism rather than zero workers.
func DefaultWorkers(n int) int { return par.Workers(n) }

// Resource governance. Every long-running estimator accepts a *Budget
// combining a wall-clock deadline, context cancellation, and step/node
// ceilings; exhaustion surfaces as an error matching ErrBudgetExceeded
// or as a result flagged Degraded, never as an unbounded run or a
// crash.
type (
	// Budget governs an estimation run's resources.
	Budget = budget.Budget
	// BudgetOption configures a Budget.
	BudgetOption = budget.Option
	// InputError is the typed error for malformed user input.
	InputError = hlerr.InputError
)

// ErrBudgetExceeded is matched (errors.Is) by every budget violation.
var ErrBudgetExceeded = budget.ErrExceeded

// NewBudget builds a budget; with no options it never trips.
func NewBudget(opts ...BudgetOption) *Budget { return budget.New(opts...) }

// BudgetFromContext derives a budget from a context's deadline and
// cancellation.
func BudgetFromContext(ctx context.Context) *Budget { return budget.FromContext(ctx) }

// WithTimeout caps a budget's wall-clock time.
func WithTimeout(d time.Duration) BudgetOption { return budget.WithTimeout(d) }

// WithMaxSteps caps a budget's abstract work counter.
func WithMaxSteps(n int64) BudgetOption { return budget.WithMaxSteps(n) }

// WithMaxNodes caps a budget's allocated-node (memory proxy) counter.
func WithMaxNodes(n int64) BudgetOption { return budget.WithMaxNodes(n) }

// IsInputError reports whether err (anywhere in its chain) is a typed
// input error — the caller handed the library something malformed, as
// opposed to a resource-budget trip or an internal failure.
func IsInputError(err error) bool { return hlerr.IsInput(err) }

// Re-exported core types: the design-improvement loop of Fig. 1.
type (
	// Candidate is one design option in an improvement loop.
	Candidate = core.Candidate
	// Estimator produces a power estimate for a candidate.
	Estimator = core.Estimator
	// EstimatorFunc adapts a closure into an Estimator.
	EstimatorFunc = core.Func
	// Ranking is an evaluated, power-ordered candidate list.
	Ranking = core.Ranking
	// Level is an abstraction level of the design flow.
	Level = core.Level
)

// Abstraction levels of the Fig. 1 flow.
const (
	Software   = core.Software
	Behavioral = core.Behavioral
	RTL        = core.RTL
	Gate       = core.Gate
)

// Rank evaluates candidates and orders them by estimated power — one
// turn of the design-improvement loop. A panicking estimator becomes
// that candidate's Err; the loop always completes.
func Rank(candidates []Candidate) Ranking { return core.Rank(candidates) }

// RankBudget is Rank under a resource budget: budget-aware estimators
// (core.BudgetEstimator) may return degraded figures, which still rank
// by power with exact results winning ties.
func RankBudget(b *Budget, candidates []Candidate) Ranking {
	return core.RankBudget(b, candidates)
}

// RankParallel is RankBudget with candidate estimators evaluated
// concurrently by a bounded worker pool (nonpositive workers means one
// per CPU). Candidate failures and panics stay per-candidate, each
// worker runs under a forked share of the budget, and for
// deterministic estimators the ranking is identical to the serial one.
func RankParallel(b *Budget, workers int, candidates []Candidate) Ranking {
	return core.RankParallel(b, workers, candidates)
}

// RankParallelMemo is RankParallel with per-candidate estimate
// memoization: candidates carrying a MemoKey reuse previously computed
// power figures, so re-ranking an overlapping candidate set only
// evaluates the new designs. Degraded and failed estimates are never
// stored, and a nil cache degrades to RankParallel.
func RankParallelMemo(b *Budget, workers int, c *EstimateCache, candidates []Candidate) Ranking {
	return core.RankParallelMemo(b, workers, c, candidates)
}

// Gate-level substrate.
type (
	// Netlist is a synchronous gate-level circuit.
	Netlist = logic.Netlist
	// Module is a standalone datapath block ready for characterization.
	Module = rtlib.Module
	// SimResult is a power-metered simulation outcome.
	SimResult = sim.Result
	// SimOptions configures delay model and clock accounting.
	SimOptions = sim.Options
)

// NewNetlist returns an empty netlist with the default capacitance model.
func NewNetlist() *Netlist { return logic.New() }

// NewAdder returns a gate-level ripple-carry adder module.
func NewAdder(width int) *Module { return rtlib.NewAdder(width) }

// NewMultiplier returns a gate-level array multiplier module.
func NewMultiplier(width int) *Module { return rtlib.NewMultiplier(width) }

// Simulate runs a netlist with switched-capacitance power metering.
// Malformed input (nil netlist, non-positive cycles, wrong-width
// vectors) is a typed error (IsInputError); any panic escaping the
// lower layers is converted to an error here rather than crashing the
// caller.
func Simulate(n *Netlist, inputs func(cycle int) []bool, cycles int, opts SimOptions) (res *SimResult, err error) {
	defer hlerr.RecoverAll(&err)
	return sim.Run(n, inputs, cycles, opts)
}

// SimulateBudget is Simulate governed by a resource budget.
func SimulateBudget(b *Budget, n *Netlist, inputs func(cycle int) []bool, cycles int, opts SimOptions) (res *SimResult, err error) {
	defer hlerr.RecoverAll(&err)
	return sim.RunBudget(b, n, inputs, cycles, opts)
}

// SimulatePacked is SimulateBudget on the compiled 64-lane bit-packed
// kernel: combinational netlists under the zero-delay model evaluate 64
// Monte Carlo vectors per machine word, an order of magnitude faster
// than the interpreted engine with bit-identical results. Ineligible
// workloads (sequential netlists, event-driven runs) transparently take
// the scalar path; Result.Kernel and Result.Fallback report which
// engine actually ran.
func SimulatePacked(b *Budget, n *Netlist, inputs func(cycle int) []bool, cycles int, opts SimOptions) (res *SimResult, err error) {
	defer hlerr.RecoverAll(&err)
	return sim.RunPackedBudget(b, n, inputs, cycles, opts)
}

// SimParallelOptions configures a vector-sharded Monte Carlo run.
type SimParallelOptions = sim.ParallelOptions

// SimulateParallel is SimulateBudget with the input vectors sharded
// across a bounded worker pool. Results are bit-identical to the
// serial path for the same workload — shards merge in canonical cycle
// order — at any worker count. The input provider must be safe for
// concurrent use; netlists with sequential elements fall back to the
// serial engine inside this call.
func SimulateParallel(b *Budget, n *Netlist, inputs func(cycle int) []bool, cycles int, opts SimParallelOptions) (res *SimResult, err error) {
	defer hlerr.RecoverAll(&err)
	return sim.RunParallel(b, n, inputs, cycles, opts)
}

// Compiled simulation. A CompiledSim is a netlist's reusable execution
// artifact — environment tables, the packed-kernel instruction stream,
// and a concurrency-safe pool of kernel scratch — so a batch of runs
// over one netlist pays compilation once instead of once per call.
type (
	// CompiledSim is a netlist compiled for repeated simulation runs.
	CompiledSim = sim.Compiled
	// CompiledRunOptions configures one run of a CompiledSim.
	CompiledRunOptions = sim.RunOptions
)

// CompileSim compiles a netlist once for any number of Run calls.
// Each Run is bit-identical to SimulateParallel with the same workload
// and options — including the Shards/Fallback/Kernel metadata.
func CompileSim(n *Netlist, opts SimOptions) (*CompiledSim, error) {
	return sim.Compile(n, opts)
}

// Content-addressed memoization. An EstimateCache keys results on a
// canonical encoding of everything that determines them — netlist
// structure, simulation options, cycle count, the input vectors — so a
// repeated estimate is answered in O(hash) and N concurrent identical
// requests collapse onto one computation.
type (
	// EstimateCache is a sharded LRU of estimation results keyed by
	// content, with singleflight request collapsing.
	EstimateCache = memo.Cache
	// EstimateCacheOptions sizes an EstimateCache.
	EstimateCacheOptions = memo.Options
	// EstimateCacheStats is a counter snapshot (hits, misses, collapsed
	// waiters, evictions, bytes).
	EstimateCacheStats = memo.Stats
	// EstimateKey is a 128-bit content key.
	EstimateKey = memo.Key
)

// NewEstimateCache builds a cache; the zero options get production
// defaults (64 MiB, 16 shards).
func NewEstimateCache(o EstimateCacheOptions) *EstimateCache { return memo.New(o) }

// SimulateMemo is SimulateBudget fronted by a content-addressed cache:
// the result is keyed on the netlist structure, the options, and the
// materialized input vectors, a repeat is replayed bit-identically
// without simulating, and concurrent identical calls share one run.
// Every caller — on a hit, a collapse, or the computing call itself —
// receives its own deep copy, so mutating a returned result can never
// poison the cache. Input errors are negative-cached; budget trips and
// runs under an armed fault-injection plan are never stored (the
// latter are not even looked up, so chaos always exercises the real
// path). With a nil cache it is exactly SimulateBudget.
func SimulateMemo(c *EstimateCache, b *Budget, n *Netlist, inputs func(cycle int) []bool, cycles int, opts SimOptions) (res *SimResult, err error) {
	defer hlerr.RecoverAll(&err)
	if c == nil || b.FaultArmed() {
		return sim.RunBudget(b, n, inputs, cycles, opts)
	}
	enc := memo.NewEnc()
	enc.String("hlpower/simulate/v1")
	if n == nil {
		enc.Bool(false)
	} else {
		enc.Bool(true)
		memo.HashNetlist(enc, n)
	}
	memo.HashSimOptions(enc, opts)
	if inputs == nil || cycles <= 0 {
		enc.Bool(false)
		enc.Int(cycles)
	} else {
		enc.Bool(true)
		memo.HashInputs(enc, inputs, cycles)
	}
	v, _, err := c.Do(enc.Key(), func() (any, int64, bool, error) {
		r, err := sim.RunBudget(b, n, inputs, cycles, opts)
		if err != nil {
			return nil, 0, false, err
		}
		return r, r.SizeBytes(), true, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*sim.Result).Clone(), nil
}

// Bus encoding (§III-G).
type (
	// BusEncoder is a stateful low-power bus code.
	BusEncoder = bus.Encoder
	// BusDecoder recovers the word stream.
	BusDecoder = bus.Decoder
)

// BusTransitionsPerWord measures a code's average bus-line transitions
// per transmitted word.
func BusTransitionsPerWord(e BusEncoder, stream []uint64) float64 {
	return bus.PerWord(e, stream)
}

// BusTransitionsPerWordBudget is BusTransitionsPerWord governed by a
// resource budget: each encoded word charges one step.
func BusTransitionsPerWordBudget(b *Budget, e BusEncoder, stream []uint64) (float64, error) {
	return bus.PerWordBudget(b, e, stream)
}

// Dynamic power management (§III-B).
type (
	// PMDevice is a power-managed resource's parameter set.
	PMDevice = dpm.Device
	// PMPolicy decides shutdowns from observed history.
	PMPolicy = dpm.Policy
	// PMResult aggregates a simulated management run.
	PMResult = dpm.Result
)

// SimulatePM runs a shutdown policy over an active/idle workload.
func SimulatePM(dev PMDevice, pol PMPolicy, workload []dpm.Period) PMResult {
	return dpm.Simulate(dev, pol, workload)
}

// SimulatePMBudget is SimulatePM governed by a resource budget: each
// workload period charges one step.
func SimulatePMBudget(b *Budget, dev PMDevice, pol PMPolicy, workload []dpm.Period) (PMResult, error) {
	return dpm.SimulateBudget(b, dev, pol, workload)
}

// Resilience primitives. The powerd service composes these around the
// estimation engines; they are exported here for callers embedding the
// engines in their own long-running systems.
type (
	// RetryPolicy re-executes failed operations with jittered
	// exponential backoff.
	RetryPolicy = resilience.RetryPolicy
	// Breaker is a circuit breaker guarding one failure-prone
	// subsystem.
	Breaker = resilience.Breaker
	// BreakerConfig parameterizes a Breaker.
	BreakerConfig = resilience.BreakerConfig
	// EstimationServer is the resilient HTTP estimation service.
	EstimationServer = powerd.Server
	// EstimationServerConfig tunes the service.
	EstimationServerConfig = powerd.Config
)

// ErrBreakerOpen is matched (errors.Is) when a circuit breaker rejects
// work while open.
var ErrBreakerOpen = resilience.ErrBreakerOpen

// DefaultRetry returns the standard three-attempt backoff policy.
func DefaultRetry() RetryPolicy { return resilience.DefaultRetry() }

// NewBreaker builds a circuit breaker.
func NewBreaker(cfg BreakerConfig) *Breaker { return resilience.NewBreaker(cfg) }

// PermanentError marks err non-retryable: retry loops stop on it and
// breakers do not count it as a subsystem failure.
func PermanentError(err error) error { return resilience.Permanent(err) }

// NewEstimationServer builds the resilient estimation service; serve
// its Handler() and stop it with Drain.
func NewEstimationServer(cfg EstimationServerConfig) *EstimationServer {
	return powerd.NewServer(cfg)
}
