package hlpower

import (
	"hlpower/internal/bus"
	"hlpower/internal/core"
	"hlpower/internal/dpm"
	"hlpower/internal/logic"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
)

// Re-exported core types: the design-improvement loop of Fig. 1.
type (
	// Candidate is one design option in an improvement loop.
	Candidate = core.Candidate
	// Estimator produces a power estimate for a candidate.
	Estimator = core.Estimator
	// EstimatorFunc adapts a closure into an Estimator.
	EstimatorFunc = core.Func
	// Ranking is an evaluated, power-ordered candidate list.
	Ranking = core.Ranking
	// Level is an abstraction level of the design flow.
	Level = core.Level
)

// Abstraction levels of the Fig. 1 flow.
const (
	Software   = core.Software
	Behavioral = core.Behavioral
	RTL        = core.RTL
	Gate       = core.Gate
)

// Rank evaluates candidates and orders them by estimated power — one
// turn of the design-improvement loop.
func Rank(candidates []Candidate) Ranking { return core.Rank(candidates) }

// Gate-level substrate.
type (
	// Netlist is a synchronous gate-level circuit.
	Netlist = logic.Netlist
	// Module is a standalone datapath block ready for characterization.
	Module = rtlib.Module
	// SimResult is a power-metered simulation outcome.
	SimResult = sim.Result
	// SimOptions configures delay model and clock accounting.
	SimOptions = sim.Options
)

// NewNetlist returns an empty netlist with the default capacitance model.
func NewNetlist() *Netlist { return logic.New() }

// NewAdder returns a gate-level ripple-carry adder module.
func NewAdder(width int) *Module { return rtlib.NewAdder(width) }

// NewMultiplier returns a gate-level array multiplier module.
func NewMultiplier(width int) *Module { return rtlib.NewMultiplier(width) }

// Simulate runs a netlist with switched-capacitance power metering.
func Simulate(n *Netlist, inputs func(cycle int) []bool, cycles int, opts SimOptions) (*SimResult, error) {
	return sim.Run(n, inputs, cycles, opts)
}

// Bus encoding (§III-G).
type (
	// BusEncoder is a stateful low-power bus code.
	BusEncoder = bus.Encoder
	// BusDecoder recovers the word stream.
	BusDecoder = bus.Decoder
)

// BusTransitionsPerWord measures a code's average bus-line transitions
// per transmitted word.
func BusTransitionsPerWord(e BusEncoder, stream []uint64) float64 {
	return bus.PerWord(e, stream)
}

// Dynamic power management (§III-B).
type (
	// PMDevice is a power-managed resource's parameter set.
	PMDevice = dpm.Device
	// PMPolicy decides shutdowns from observed history.
	PMPolicy = dpm.Policy
	// PMResult aggregates a simulated management run.
	PMResult = dpm.Result
)

// SimulatePM runs a shutdown policy over an active/idle workload.
func SimulatePM(dev PMDevice, pol PMPolicy, workload []dpm.Period) PMResult {
	return dpm.Simulate(dev, pol, workload)
}
