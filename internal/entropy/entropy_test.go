package entropy

import (
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/bitutil"
	"hlpower/internal/fsm"
	"hlpower/internal/rtlib"
	"hlpower/internal/trace"
)

// thin wrappers keep the test bodies readable
func rtlibNewAdder(w int) *rtlib.Module         { return rtlib.NewAdder(w) }
func bitutilFromBits(b []bool) uint64           { return bitutil.FromBits(b) }
func traceBitEntropy(s []uint64, w int) float64 { return trace.BitEntropy(s, w) }

func TestMarculescuHavgBetweenInOut(t *testing.T) {
	// For a shrinking pipeline the average line entropy lies between the
	// output and input entropies.
	h := MarculescuHavg(16, 8, 1.0, 0.4)
	if h <= 0.4 || h >= 1.0 {
		t.Errorf("havg = %v, want in (0.4, 1.0)", h)
	}
}

func TestMarculescuHavgDegenerate(t *testing.T) {
	if h := MarculescuHavg(8, 8, 0, 0.5); h != 0 {
		t.Errorf("hin=0 should give 0, got %v", h)
	}
	// hout == hin must not blow up.
	h := MarculescuHavg(8, 8, 0.8, 0.8)
	if math.IsNaN(h) || math.IsInf(h, 0) {
		t.Fatalf("singular point returned %v", h)
	}
	if math.Abs(h-0.8) > 0.05 {
		t.Errorf("hout==hin: havg = %v, want ~0.8", h)
	}
	// hout == 0 must not blow up either.
	h = MarculescuHavg(8, 4, 0.9, 0)
	if math.IsNaN(h) || math.IsInf(h, 0) || h < 0 {
		t.Errorf("hout=0 returned %v", h)
	}
}

func TestNemaniHavg(t *testing.T) {
	got := NemaniHavg(16, 8, 12, 6)
	want := 2.0 * 18 / (3 * 24)
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("NemaniHavg = %v, want %v", got, want)
	}
}

func TestPowerScaling(t *testing.T) {
	p1 := Power(100, 0.8, 1, 1)
	p2 := Power(100, 0.8, 2, 1)
	if math.Abs(p2/p1-4) > 1e-12 {
		t.Errorf("power should scale with V²: %v vs %v", p1, p2)
	}
	if Power(0, 1, 1, 1) != 0 {
		t.Error("zero capacitance means zero power")
	}
}

func TestChengAgrawalPessimisticAtLargeN(t *testing.T) {
	// The 2^n factor makes the estimate explode with n at fixed hout.
	small := ChengAgrawalCtot(8, 8, 0.9)
	big := ChengAgrawalCtot(16, 8, 0.9)
	if big < 100*small {
		t.Errorf("expected exponential growth: n=8 %v, n=16 %v", small, big)
	}
}

func TestFerrandiFitRecoversCoefficients(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	trueAlpha, trueBeta := 3.5, 42.0
	var samples []FerrandiSample
	for i := 0; i < 50; i++ {
		s := FerrandiSample{
			BDDNodes: 10 + rng.Intn(500),
			NumIn:    8 + rng.Intn(8),
			NumOut:   1 + rng.Intn(8),
			Hout:     0.2 + 0.8*rng.Float64(),
		}
		x := float64(s.NumOut) / float64(s.NumIn) * float64(s.BDDNodes) * s.Hout
		s.Ctot = trueAlpha*x + trueBeta + rng.NormFloat64()*0.1
		samples = append(samples, s)
	}
	alpha, beta, err := FitFerrandi(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(alpha-trueAlpha) > 0.05 || math.Abs(beta-trueBeta) > 1 {
		t.Errorf("fit = (%v, %v), want (%v, %v)", alpha, beta, trueAlpha, trueBeta)
	}
	// Prediction should be close on a fresh sample.
	pred := FerrandiCtot(alpha, beta, 100, 10, 5, 0.5)
	want := trueAlpha*(0.5*100*0.5) + trueBeta
	if math.Abs(pred-want)/want > 0.05 {
		t.Errorf("prediction %v, want ~%v", pred, want)
	}
}

func TestFitFerrandiErrors(t *testing.T) {
	if _, _, err := FitFerrandi(nil); err == nil {
		t.Error("expected error on empty sample set")
	}
}

func TestTransitionEntropy(t *testing.T) {
	// Uniform over 4 transitions: h = 2 bits.
	p := [][]float64{{0.25, 0.25}, {0.25, 0.25}}
	h, n := TransitionEntropy(p)
	if math.Abs(h-2) > 1e-12 || n != 4 {
		t.Errorf("h = %v (t=%d), want 2 (4)", h, n)
	}
}

func TestTyagiBoundHoldsForAllEncodings(t *testing.T) {
	// The bound must lower-bound the weighted Hamming switching of every
	// encoding of a sparse machine.
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		m := fsm.Random(24, 2, 1, 0.15, rng)
		p, err := m.TransitionProbabilities(nil)
		if err != nil {
			t.Fatal(err)
		}
		// Zero out the ergodicity epsilon noise: keep only edges that
		// exist structurally.
		structural := make(map[[2]int]bool)
		for s := 0; s < m.NumStates; s++ {
			for sym := 0; sym < m.NumSymbols(); sym++ {
				structural[[2]int{s, m.Next[s][sym]}] = true
			}
		}
		for i := range p {
			for j := range p[i] {
				if !structural[[2]int{i, j}] {
					p[i][j] = 0
				}
			}
		}
		bound := TyagiBound(p)
		rnd, err := fsm.RandomEncoding(m.NumStates, 8, rng)
		if err != nil {
			t.Fatal(err)
		}
		encs := []*fsm.Encoding{
			fsm.BinaryEncoding(m.NumStates),
			fsm.GrayEncoding(m.NumStates),
			fsm.OneHotEncoding(m.NumStates),
			rnd,
		}
		for _, e := range encs {
			cost := fsm.WeightedHamming(e, p)
			if cost < bound-1e-9 {
				t.Errorf("trial %d: encoding width %d beats the Tyagi bound: %v < %v",
					trial, e.Width, cost, bound)
			}
		}
	}
}

func TestSparse(t *testing.T) {
	// A cycle (T transitions over T states) is clearly sparse.
	T := 16
	p := make([][]float64, T)
	for i := range p {
		p[i] = make([]float64, T)
		p[i][(i+1)%T] = 1.0 / float64(T)
	}
	if !Sparse(p) {
		t.Error("a simple cycle should be sparse")
	}
}

func TestBitutilEntropyLink(t *testing.T) {
	// Sanity: the Hamming distance used in the FSM costs matches bitutil.
	if bitutil.Hamming(0b0110, 0b0101) != 2 {
		t.Error("unexpected Hamming result")
	}
}

func TestPropagationModelPredictsOutputEntropy(t *testing.T) {
	mod := rtlibNewAdder(8)
	pm, err := FitPropagation(mod, 512, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth at a fresh bias: simulate and measure.
	rng := rand.New(rand.NewSource(99))
	a := make([]uint64, 600)
	b := make([]uint64, 600)
	for i := range a {
		var va, vb uint64
		for bit := 0; bit < 8; bit++ {
			if rng.Float64() < 0.85 {
				va |= 1 << uint(bit)
			}
			if rng.Float64() < 0.85 {
				vb |= 1 << uint(bit)
			}
		}
		a[i], b[i] = va, vb
	}
	res, err := mod.SimulateStream(a, b, 0)
	if err != nil {
		t.Fatal(err)
	}
	outWords := make([]uint64, len(res.Outputs))
	for i, o := range res.Outputs {
		outWords[i] = bitutilFromBits(o)
	}
	nOut := len(mod.Net.Outputs)
	combined := append(append([]uint64{}, a...), b...)
	hin := traceBitEntropy(combined, 8) / 8
	houtTrue := traceBitEntropy(outWords, nOut) / float64(nOut)
	houtPred := pm.Predict(hin)
	if math.Abs(houtPred-houtTrue) > 0.12 {
		t.Errorf("propagated hout %v vs measured %v", houtPred, houtTrue)
	}
	// The full no-simulation power estimate must be positive and finite.
	p := pm.EstimatePower(mod, hin, 1, 1)
	if p <= 0 || math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("propagated power estimate = %v", p)
	}
}

func TestPropagationPredictClamps(t *testing.T) {
	m := &PropagationModel{C: [3]float64{-1, 0, 0}}
	if m.Predict(0.5) != 0 {
		t.Error("negative prediction should clamp to 0")
	}
	m = &PropagationModel{C: [3]float64{2, 0, 0}}
	if m.Predict(0.5) != 1 {
		t.Error("oversized prediction should clamp to 1")
	}
}

func TestFitQuadraticExact(t *testing.T) {
	// y = 1 + 2x + 3x² recovered from 5 points.
	xs := []float64{0, 0.25, 0.5, 0.75, 1}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 2*x + 3*x*x
	}
	c, err := fitQuadratic(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	want := [3]float64{1, 2, 3}
	for i := range want {
		if math.Abs(c[i]-want[i]) > 1e-6 {
			t.Errorf("c[%d] = %v, want %v", i, c[i], want[i])
		}
	}
	if _, err := fitQuadratic([]float64{1}, []float64{1}); err == nil {
		t.Error("too few points should fail")
	}
}
