// Package entropy implements the information-theoretic power models of
// §II-B1: the Marculescu–Marculescu–Pedram average-entropy expression for
// a linear gate distribution, the Nemani–Najm sectional-entropy variant,
// the Cheng–Agrawal and Ferrandi total-capacitance estimates, the
// entropic power estimate P = 0.5·V²·f·Ctot·E_avg with E_avg ≈ h_avg/2,
// and Tyagi's entropic lower bound on FSM register switching.
package entropy

import (
	"errors"
	"math"

	"hlpower/internal/stats"
)

// MarculescuHavg returns the average per-line entropy of a circuit with
// n inputs, m outputs, average input bit entropy hin and average output
// bit entropy hout, assuming the node count scales linearly from inputs
// to outputs and bit entropy decays exponentially per level ([9]).
func MarculescuHavg(n, m int, hin, hout float64) float64 {
	if hin <= 0 {
		return 0
	}
	if hout <= 0 {
		hout = 1e-6 * hin
	}
	// The expression is singular at hout == hin; nudge off the pole (the
	// limit is the average of in/out entropies).
	if math.Abs(hin-hout) < 1e-9*hin {
		hout = hin * (1 - 1e-6)
	}
	r := hout / hin
	ln := math.Log(hin / hout)
	fn := float64(n)
	fm := float64(m)
	lead := 2 * fn * hin / ((fn + fm) * ln)
	inner := 1 - (fm/fn)*r - (1-fm/fn)*(1-r)/ln
	return lead * inner
}

// NemaniHavg returns the Nemani–Najm average line entropy from the
// sectional (word-level) input and output entropies Hin and Hout ([10]):
// h_avg = 2/(3(n+m)) · (Hin + Hout).
func NemaniHavg(n, m int, Hin, Hout float64) float64 {
	return 2 * (Hin + Hout) / (3 * float64(n+m))
}

// Power returns the entropic power estimate
// P = 0.5·V²·f·Ctot·E_avg with the average line activity approximated by
// half the average line entropy (the temporal-independence upper bound).
func Power(ctot, havg, vdd, freq float64) float64 {
	return 0.5 * vdd * vdd * freq * ctot * (havg / 2)
}

// ChengAgrawalCtot estimates total module capacitance from the output
// entropy ([11]): Ctot = (m/n)·2^n·hout. The paper notes it becomes very
// pessimistic for large n.
func ChengAgrawalCtot(n, m int, hout float64) float64 {
	return float64(m) / float64(n) * math.Pow(2, float64(n)) * hout
}

// FerrandiCtot estimates total capacitance from the BDD node count N of
// the circuit's function ([12]): Ctot = α·(m/n)·N·hout + β.
func FerrandiCtot(alpha, beta float64, bddNodes, n, m int, hout float64) float64 {
	return alpha*float64(m)/float64(n)*float64(bddNodes)*hout + beta
}

// FerrandiSample is one circuit observation used to fit the Ferrandi
// capacitance model coefficients.
type FerrandiSample struct {
	BDDNodes int
	NumIn    int
	NumOut   int
	Hout     float64
	Ctot     float64 // measured total capacitance
}

// FitFerrandi performs the linear regression of [12], returning α and β.
func FitFerrandi(samples []FerrandiSample) (alpha, beta float64, err error) {
	if len(samples) < 2 {
		return 0, 0, errors.New("entropy: need at least 2 samples")
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		x := float64(s.NumOut) / float64(s.NumIn) * float64(s.BDDNodes) * s.Hout
		X[i] = []float64{1, x}
		y[i] = s.Ctot
	}
	fit, err := stats.OLS(X, y)
	if err != nil {
		return 0, 0, err
	}
	return fit.Beta[1], fit.Beta[0], nil
}

// TransitionEntropy returns the entropy h(p) = −Σ p_ij·log2 p_ij of a
// steady-state transition probability distribution, together with the
// number t of transitions with nonzero probability.
func TransitionEntropy(p [][]float64) (h float64, t int) {
	for i := range p {
		for _, pij := range p[i] {
			if pij <= 0 {
				continue
			}
			h -= pij * math.Log2(pij)
			t++
		}
	}
	return h, t
}

// TyagiBound returns Tyagi's entropic lower bound ([13]) on the expected
// state-register Hamming switching Σ p_ij·H(s_i,s_j) of a T-state FSM,
// valid for any encoding:
//
//	h(p) − 1.52·log2 T − 2.16 + 0.5·log2(log2 T)
//
// The bound applies to sparse machines (t ≤ 2.23·T^1.72/√log2 T); Sparse
// reports whether the machine qualifies. For small or dense machines the
// bound is typically vacuous (negative).
func TyagiBound(p [][]float64) float64 {
	T := float64(len(p))
	if T < 2 {
		return 0
	}
	h, _ := TransitionEntropy(p)
	logT := math.Log2(T)
	return h - 1.52*logT - 2.16 + 0.5*math.Log2(logT)
}

// Sparse reports whether the transition structure satisfies Tyagi's
// sparsity condition t ≤ 2.23·T^1.72/√(log2 T).
func Sparse(p [][]float64) bool {
	T := float64(len(p))
	if T < 2 {
		return true
	}
	_, t := TransitionEntropy(p)
	limit := 2.23 * math.Pow(T, 1.72) / math.Sqrt(math.Log2(T))
	return float64(t) <= limit
}
