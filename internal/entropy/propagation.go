package entropy

import (
	"errors"
	"math"

	"hlpower/internal/bitutil"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

// Entropy propagation for precharacterized library modules (§II-B1:
// h_out may be "calculated ... by empirical entropy propagation
// techniques for precharacterized library modules"): fit, once per
// module, a low-order polynomial mapping average input bit entropy to
// average output bit entropy; afterwards output entropy — and hence the
// whole entropic power estimate — needs no simulation of the target
// stream at all.

// PropagationModel maps input bit entropy to output bit entropy for one
// characterized module: hout ≈ c0 + c1·hin + c2·hin².
type PropagationModel struct {
	ModuleName string
	C          [3]float64
}

// FitPropagation characterizes the module by sweeping input streams of
// varying entropy (mixing a constant stream with a uniform one) and
// fitting the quadratic by least squares.
func FitPropagation(mod *rtlib.Module, samplesPerPoint int, seed int64) (*PropagationModel, error) {
	if samplesPerPoint < 64 {
		samplesPerPoint = 64
	}
	var hins, houts []float64
	rng := newRand(seed)
	w := len(mod.A)
	for _, bias := range []float64{0.5, 0.6, 0.7, 0.8, 0.9, 0.95, 0.99} {
		a := biasedStream(samplesPerPoint, w, bias, rng)
		b := biasedStream(samplesPerPoint, w, bias, rng)
		res, err := mod.SimulateStream(a, b, sim.ZeroDelay)
		if err != nil {
			return nil, err
		}
		outWords := make([]uint64, len(res.Outputs))
		for i, o := range res.Outputs {
			outWords[i] = bitutil.FromBits(o)
		}
		nOut := len(mod.Net.Outputs)
		combined := append(append([]uint64{}, a...), b...)
		hins = append(hins, trace.BitEntropy(combined, w)/float64(w))
		houts = append(houts, trace.BitEntropy(outWords, nOut)/float64(nOut))
	}
	c, err := fitQuadratic(hins, houts)
	if err != nil {
		return nil, err
	}
	return &PropagationModel{ModuleName: mod.Name, C: c}, nil
}

// Predict returns the propagated output bit entropy for an input bit
// entropy, clamped to [0, 1].
func (m *PropagationModel) Predict(hin float64) float64 {
	h := m.C[0] + m.C[1]*hin + m.C[2]*hin*hin
	if h < 0 {
		return 0
	}
	if h > 1 {
		return 1
	}
	return h
}

// EstimatePower combines the propagation model with the Marculescu
// average-entropy expression: a full §II-B1 estimate from nothing but
// the input stream's entropy and the module's structure.
func (m *PropagationModel) EstimatePower(mod *rtlib.Module, hin, vdd, freq float64) float64 {
	nIn := len(mod.Net.Inputs)
	nOut := len(mod.Net.Outputs)
	hout := m.Predict(hin)
	havg := MarculescuHavg(nIn, nOut, hin, hout)
	return Power(mod.Net.TotalCapacitance(), havg, vdd, freq)
}

// biasedStream draws words whose bits are 1 with probability bias —
// bit entropy H(bias) per line.
func biasedStream(n, w int, bias float64, next func() float64) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		var v uint64
		for b := 0; b < w; b++ {
			if next() < bias {
				v |= 1 << uint(b)
			}
		}
		out[i] = v
	}
	return out
}

// newRand returns a deterministic float64 source without importing
// math/rand at every call site.
func newRand(seed int64) func() float64 {
	s := uint64(seed)*6364136223846793005 + 1442695040888963407
	return func() float64 {
		s = s*6364136223846793005 + 1442695040888963407
		return float64(s>>11) / float64(1<<53)
	}
}

// fitQuadratic solves the 3-parameter least squares fit.
func fitQuadratic(x, y []float64) ([3]float64, error) {
	if len(x) != len(y) || len(x) < 3 {
		return [3]float64{}, errors.New("entropy: need >= 3 points")
	}
	var s [5]float64 // Σ x^k
	var t [3]float64 // Σ y·x^k
	for i := range x {
		xi := x[i]
		p := 1.0
		for k := 0; k < 5; k++ {
			s[k] += p
			if k < 3 {
				t[k] += y[i] * p
			}
			p *= xi
		}
	}
	A := [3][4]float64{
		{s[0], s[1], s[2], t[0]},
		{s[1], s[2], s[3], t[1]},
		{s[2], s[3], s[4], t[2]},
	}
	for col := 0; col < 3; col++ {
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(A[r][col]) > math.Abs(A[piv][col]) {
				piv = r
			}
		}
		if math.Abs(A[piv][col]) < 1e-12 {
			return [3]float64{}, errors.New("entropy: singular quadratic fit")
		}
		A[col], A[piv] = A[piv], A[col]
		for r := col + 1; r < 3; r++ {
			f := A[r][col] / A[col][col]
			for c := col; c < 4; c++ {
				A[r][c] -= f * A[col][c]
			}
		}
	}
	var c [3]float64
	for i := 2; i >= 0; i-- {
		v := A[i][3]
		for j := i + 1; j < 3; j++ {
			v -= A[i][j] * c[j]
		}
		c[i] = v / A[i][i]
	}
	return c, nil
}
