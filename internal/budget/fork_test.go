package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestForkSplitsRemainingSteps(t *testing.T) {
	b := New(WithMaxSteps(100))
	if err := b.Step(20); err != nil {
		t.Fatal(err)
	}
	kids, cancel := b.Fork(4)
	defer cancel()
	if len(kids) != 4 {
		t.Fatalf("got %d children, want 4", len(kids))
	}
	// Remaining 80 split 4 ways: each child trips past 20 steps.
	for i, k := range kids {
		if err := k.Step(20); err != nil {
			t.Fatalf("child %d tripped within its share: %v", i, err)
		}
	}
	if err := kids[0].Step(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("child exceeded its share without tripping: %v", err)
	}
}

func TestForkJoinChargesParent(t *testing.T) {
	b := New(WithMaxSteps(100))
	kids, cancel := b.Fork(2)
	defer cancel()
	kids[0].Step(30)
	kids[1].Step(40)
	if err := b.Join(kids...); err != nil {
		t.Fatalf("join within budget tripped: %v", err)
	}
	if got := b.StepsUsed(); got != 70 {
		t.Fatalf("parent charged %d steps, want 70", got)
	}
}

func TestForkNilParentStillCancellable(t *testing.T) {
	var b *Budget
	kids, cancel := b.Fork(2)
	if err := kids[0].Step(1 << 20); err != nil {
		t.Fatalf("nil-parent child has limits: %v", err)
	}
	cancel()
	// Cancellation is observed at the next slow check point.
	var err error
	for i := 0; i < DefaultCheckInterval+1 && err == nil; i++ {
		err = kids[1].Step(1)
	}
	if !errors.Is(err, ErrExceeded) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled child error = %v, want budget+context match", err)
	}
	if b.Join(kids...) != nil {
		t.Fatal("nil parent join must be a no-op")
	}
}

func TestForkTrippedParentYieldsTrippedChildren(t *testing.T) {
	b := New(WithMaxSteps(1))
	b.Step(5) // trips
	kids, cancel := b.Fork(2)
	defer cancel()
	if err := kids[0].Step(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("child of tripped parent ran: %v", err)
	}
}

func TestForkInheritsDeadline(t *testing.T) {
	b := New(WithDeadline(time.Now().Add(-time.Millisecond)), WithCheckInterval(1))
	kids, cancel := b.Fork(1)
	defer cancel()
	if err := kids[0].Step(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("expired deadline not inherited: %v", err)
	}
}

func TestForkZeroRemainingSteps(t *testing.T) {
	// The parent has consumed its exact allowance without tripping
	// (steps == maxSteps is still legal). Children of a zero-remainder
	// parent get the one-unit floor: they run one step and trip on the
	// next, never unbounded.
	b := New(WithMaxSteps(10))
	if err := b.Step(10); err != nil {
		t.Fatalf("exact allowance tripped early: %v", err)
	}
	kids, cancel := b.Fork(2)
	defer cancel()
	for i, k := range kids {
		if err := k.Step(1); err != nil {
			t.Fatalf("child %d denied its one-unit floor: %v", i, err)
		}
		if err := k.Step(1); !errors.Is(err, ErrExceeded) {
			t.Fatalf("child %d of an exhausted parent ran past the floor: %v", i, err)
		}
	}
	// Joining the children's consumption trips the parent: the region
	// cost more than the parent had left.
	if err := b.Join(kids...); !errors.Is(err, ErrExceeded) {
		t.Fatalf("join of over-budget children did not trip the parent: %v", err)
	}
}

func TestForkAfterDeadlineExpired(t *testing.T) {
	// The deadline passed but the parent never hit a slow check point,
	// so it has not tripped yet. Children inherit the stale deadline and
	// must trip on their first slow check.
	b := New(WithDeadline(time.Now().Add(-time.Second)))
	if b.Err() != nil {
		t.Fatal("parent tripped without a check point")
	}
	kids, cancel := b.Fork(3)
	defer cancel()
	for i, k := range kids {
		var err error
		for s := 0; s < DefaultCheckInterval+1 && err == nil; s++ {
			err = k.Step(1)
		}
		var ex *Exceeded
		if !errors.As(err, &ex) || ex.Resource != "deadline" {
			t.Fatalf("child %d: expired inherited deadline not enforced: %v", i, err)
		}
	}
}

func TestJoinAfterParentCancellation(t *testing.T) {
	ctx, cancelParent := context.WithCancel(context.Background())
	b := New(WithContext(ctx), WithMaxSteps(1000), WithCheckInterval(1))
	kids, cancel := b.Fork(2)
	defer cancel()
	if err := kids[0].Step(5); err != nil {
		t.Fatalf("child tripped before cancellation: %v", err)
	}
	cancelParent()
	// The child observes the parent's cancellation at its next check.
	if err := kids[1].Step(1); !errors.Is(err, context.Canceled) {
		t.Fatalf("child missed parent cancellation: %v", err)
	}
	// Join still charges the work done before the cut and reports the
	// parent's own (cancellation) violation stickily.
	err := b.Join(kids...)
	if !errors.Is(err, ErrExceeded) || !errors.Is(err, context.Canceled) {
		t.Fatalf("join after parent cancel = %v, want budget+context match", err)
	}
	if got := b.StepsUsed(); got < 5 {
		t.Fatalf("join dropped pre-cancel work: charged %d steps, want >= 5", got)
	}
	// Join is idempotent in error reporting: a second call keeps the
	// sticky violation rather than inventing a new one.
	if err2 := b.Join(); !errors.Is(err2, ErrExceeded) {
		t.Fatalf("sticky violation lost on re-join: %v", err2)
	}
}

func TestForkFaultPlanPerChild(t *testing.T) {
	b := New(WithFaultPlan(FaultPlan{FailAtCheck: 1}), WithCheckInterval(1))
	kids, cancel := b.Fork(3)
	defer cancel()
	for i, k := range kids {
		err := k.Step(1)
		var ex *Exceeded
		if !errors.As(err, &ex) || ex.Resource != FaultResource {
			t.Fatalf("child %d: fault plan not inherited: %v", i, err)
		}
	}
	// Prob-mode plans are reseeded per child, so the copies diverge.
	p := &FaultPlan{Prob: 0.5, Seed: 9}
	if c0, c1 := p.child(0), p.child(1); c0.Seed == c1.Seed {
		t.Fatal("prob-mode children share a seed")
	}
	if (*FaultPlan)(nil).child(0) != nil {
		t.Fatal("nil plan must fork to nil")
	}
}
