package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestForkSplitsRemainingSteps(t *testing.T) {
	b := New(WithMaxSteps(100))
	if err := b.Step(20); err != nil {
		t.Fatal(err)
	}
	kids, cancel := b.Fork(4)
	defer cancel()
	if len(kids) != 4 {
		t.Fatalf("got %d children, want 4", len(kids))
	}
	// Remaining 80 split 4 ways: each child trips past 20 steps.
	for i, k := range kids {
		if err := k.Step(20); err != nil {
			t.Fatalf("child %d tripped within its share: %v", i, err)
		}
	}
	if err := kids[0].Step(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("child exceeded its share without tripping: %v", err)
	}
}

func TestForkJoinChargesParent(t *testing.T) {
	b := New(WithMaxSteps(100))
	kids, cancel := b.Fork(2)
	defer cancel()
	kids[0].Step(30)
	kids[1].Step(40)
	if err := b.Join(kids...); err != nil {
		t.Fatalf("join within budget tripped: %v", err)
	}
	if got := b.StepsUsed(); got != 70 {
		t.Fatalf("parent charged %d steps, want 70", got)
	}
}

func TestForkNilParentStillCancellable(t *testing.T) {
	var b *Budget
	kids, cancel := b.Fork(2)
	if err := kids[0].Step(1 << 20); err != nil {
		t.Fatalf("nil-parent child has limits: %v", err)
	}
	cancel()
	// Cancellation is observed at the next slow check point.
	var err error
	for i := 0; i < DefaultCheckInterval+1 && err == nil; i++ {
		err = kids[1].Step(1)
	}
	if !errors.Is(err, ErrExceeded) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled child error = %v, want budget+context match", err)
	}
	if b.Join(kids...) != nil {
		t.Fatal("nil parent join must be a no-op")
	}
}

func TestForkTrippedParentYieldsTrippedChildren(t *testing.T) {
	b := New(WithMaxSteps(1))
	b.Step(5) // trips
	kids, cancel := b.Fork(2)
	defer cancel()
	if err := kids[0].Step(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("child of tripped parent ran: %v", err)
	}
}

func TestForkInheritsDeadline(t *testing.T) {
	b := New(WithDeadline(time.Now().Add(-time.Millisecond)), WithCheckInterval(1))
	kids, cancel := b.Fork(1)
	defer cancel()
	if err := kids[0].Step(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("expired deadline not inherited: %v", err)
	}
}

func TestForkFaultPlanPerChild(t *testing.T) {
	b := New(WithFaultPlan(FaultPlan{FailAtCheck: 1}), WithCheckInterval(1))
	kids, cancel := b.Fork(3)
	defer cancel()
	for i, k := range kids {
		err := k.Step(1)
		var ex *Exceeded
		if !errors.As(err, &ex) || ex.Resource != FaultResource {
			t.Fatalf("child %d: fault plan not inherited: %v", i, err)
		}
	}
	// Prob-mode plans are reseeded per child, so the copies diverge.
	p := &FaultPlan{Prob: 0.5, Seed: 9}
	if c0, c1 := p.child(0), p.child(1); c0.Seed == c1.Seed {
		t.Fatal("prob-mode children share a seed")
	}
	if (*FaultPlan)(nil).child(0) != nil {
		t.Fatal("nil plan must fork to nil")
	}
}
