// Fault injection: deterministic and randomized forcing of budget
// exhaustion and simulated allocation failure at check points. The
// harness is enabled per-budget via the WithFaultPlan option — there
// is no global state and no build tag, so tests can sweep trip points
// while production budgets pay one nil check per slow check point.
//
// Tests use it to prove that every pipeline stage unwinds cleanly:
// sweep FailAtCheck over 1..N (or fix Seed/Prob for a randomized
// soak), run the stage, and assert the outcome is a typed error or a
// Degraded result — never a panic, never a hang.
package budget

// FaultResource labels injected violations so tests can tell a real
// exhaustion from a forced one.
const FaultResource = "fault"

// FaultPlan forces budget violations at chosen slow check points
// (every CheckInterval steps). Exactly one of the two modes is
// typically used:
//
//   - FailAtCheck == k > 0 trips deterministically at the k-th check
//     point — sweeping k walks the failure through every stage of a
//     pipeline.
//   - Prob > 0 trips each check point with probability Prob using the
//     seeded generator — a randomized soak.
type FaultPlan struct {
	FailAtCheck int64   // 1-based check-point index to trip at (0 = off)
	Prob        float64 // per-check trip probability (0 = off)
	Seed        int64   // generator seed for Prob mode
	rng         uint64
}

// WithFaultPlan arms fault injection on a budget.
func WithFaultPlan(p FaultPlan) Option {
	return func(b *Budget) {
		p.rng = uint64(p.Seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
		b.fault = &p
	}
}

// child derives a per-shard copy of the plan for Fork: deterministic
// FailAtCheck plans are copied as-is (every child trips at the same
// check index), while Prob-mode plans are reseeded per child so a
// randomized soak exercises different trip points in each shard. A nil
// receiver yields nil, so unarmed budgets fork without allocation.
func (p *FaultPlan) child(i int) *FaultPlan {
	if p == nil {
		return nil
	}
	c := *p
	if c.Prob > 0 {
		c.Seed = p.Seed + int64(i) + 1
	}
	c.rng = uint64(c.Seed)*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03
	return &c
}

// trip decides whether check point number n fails.
func (p *FaultPlan) trip(n int64) error {
	if p.FailAtCheck > 0 && n >= p.FailAtCheck {
		return &Exceeded{Resource: FaultResource, Limit: p.FailAtCheck, Used: n}
	}
	if p.Prob > 0 && p.next() < p.Prob {
		return &Exceeded{Resource: FaultResource, Limit: -1, Used: n}
	}
	return nil
}

// next draws a uniform float64 in [0,1) from a splitmix64 stream —
// deterministic, allocation-free, independent of math/rand global
// state (so -race runs stay reproducible).
func (p *FaultPlan) next() float64 {
	p.rng += 0x9E3779B97F4A7C15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
