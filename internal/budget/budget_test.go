package budget

import (
	"context"
	"errors"
	"testing"
	"time"

	"hlpower/internal/hlerr"
)

func TestNilBudgetIsUnbounded(t *testing.T) {
	var b *Budget
	if err := b.Step(1 << 40); err != nil {
		t.Fatalf("nil budget tripped: %v", err)
	}
	if err := b.Nodes(1 << 40); err != nil {
		t.Fatalf("nil budget tripped on nodes: %v", err)
	}
	if !b.Ok() || b.Err() != nil {
		t.Fatal("nil budget should always be ok")
	}
	b.Check(1) // must not panic
}

func TestMaxSteps(t *testing.T) {
	b := New(WithMaxSteps(100))
	var err error
	for i := 0; i < 1000 && err == nil; i++ {
		err = b.Step(10)
	}
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("want ErrExceeded, got %v", err)
	}
	var ex *Exceeded
	if !errors.As(err, &ex) || ex.Resource != "steps" {
		t.Fatalf("want steps exceedance, got %+v", err)
	}
	// Sticky: later calls keep failing.
	if b.Step(1) == nil || b.Err() == nil {
		t.Fatal("violation must be sticky")
	}
}

func TestMaxNodes(t *testing.T) {
	b := New(WithMaxNodes(10))
	var err error
	for i := 0; i < 20 && err == nil; i++ {
		err = b.Nodes(1)
	}
	var ex *Exceeded
	if !errors.As(err, &ex) || ex.Resource != "nodes" {
		t.Fatalf("want nodes exceedance, got %v", err)
	}
}

func TestDeadline(t *testing.T) {
	b := New(WithTimeout(10*time.Millisecond), WithCheckInterval(64))
	start := time.Now()
	var err error
	for err == nil {
		err = b.Step(1)
		if time.Since(start) > 2*time.Second {
			t.Fatal("deadline never tripped")
		}
	}
	var ex *Exceeded
	if !errors.As(err, &ex) || ex.Resource != "deadline" {
		t.Fatalf("want deadline exceedance, got %v", err)
	}
	if el := time.Since(start); el > 500*time.Millisecond {
		t.Fatalf("deadline trip took %v, want ~10ms", el)
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(WithContext(ctx), WithCheckInterval(16))
	if err := b.Step(100); err != nil {
		t.Fatalf("unexpected trip: %v", err)
	}
	cancel()
	var err error
	for i := 0; i < 100 && err == nil; i++ {
		err = b.Step(16)
	}
	if !errors.Is(err, ErrExceeded) || !errors.Is(err, context.Canceled) {
		t.Fatalf("want ErrExceeded wrapping context.Canceled, got %v", err)
	}
}

func TestFromContextDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	b := FromContext(ctx)
	time.Sleep(10 * time.Millisecond)
	var err error
	for i := 0; i < 10_000 && err == nil; i++ {
		err = b.Step(256)
	}
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("context deadline did not trip budget: %v", err)
	}
}

func TestCheckPanicsTyped(t *testing.T) {
	b := New(WithMaxSteps(1))
	var err error
	func() {
		defer Recover(&err)
		for {
			b.Check(1)
		}
	}()
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("Check/Recover round trip failed: %v", err)
	}
}

func TestRecoverLeavesRealPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-budget panic must propagate through Recover")
		}
	}()
	var err error
	defer Recover(&err)
	panic("genuine bug")
}

func TestUnboundedBudgetNeverTrips(t *testing.T) {
	b := New()
	for i := 0; i < 10_000; i++ {
		if err := b.Step(1000); err != nil {
			t.Fatalf("unbounded budget tripped: %v", err)
		}
	}
}

func TestInputErrorThroughRecover(t *testing.T) {
	var err error
	func() {
		defer hlerr.Recover(&err)
		hlerr.Throwf("pkg.Op", "width %d out of range", -3)
	}()
	var ie *hlerr.InputError
	if !errors.As(err, &ie) || ie.Op != "pkg.Op" {
		t.Fatalf("want InputError from pkg.Op, got %v", err)
	}
}
