// Parallel budget splitting. A Budget is owned by one goroutine, so a
// fan-out cannot hand the same *Budget to every worker; instead Fork
// carves the remaining allowance into per-worker children that share
// the parent's wall-clock deadline, context, and fault plan, and Join
// charges the children's consumption back to the parent when the
// workers are done. The pair keeps the budget invariant across a
// parallel region: total work charged is the same as if the region had
// run serially, and a parent cancellation (or the cancel function
// returned by Fork) stops every child at its next check point.
package budget

import (
	"context"
	"time"
)

// Fork splits the budget for n parallel workers. Each child receives a
// 1/n share of the remaining step and node allowances, the parent's
// wall-clock deadline and check interval, and a per-child copy of the
// fault plan (Prob-mode plans are reseeded per child so randomized
// soaks differ across shards; deterministic FailAtCheck plans trip at
// the same check index in every child). The returned cancel function
// stops all children at their next slow check point; callers must
// invoke it once the parallel region ends to release the context.
//
// Fork is nil-safe: a nil parent yields unlimited children that still
// share one cancellable context, so worker pools get early-stop
// semantics even when no budget is in force. A parent whose budget has
// already tripped produces children that fail on their first check.
func (b *Budget) Fork(n int) ([]*Budget, context.CancelFunc) {
	if n < 1 {
		n = 1
	}
	base := context.Background()
	if b != nil && b.ctx != nil {
		base = b.ctx
	}
	ctx, cancel := context.WithCancel(base)
	kids := make([]*Budget, n)
	for i := range kids {
		k := &Budget{
			start:    time.Now(),
			interval: DefaultCheckInterval,
			ctx:      ctx,
		}
		if b != nil {
			k.interval = b.interval
			k.hasDeadline = b.hasDeadline
			k.deadline = b.deadline
			if b.maxSteps > 0 {
				k.maxSteps = share(b.maxSteps-b.steps, int64(n))
			}
			if b.maxNodes > 0 {
				k.maxNodes = share(b.maxNodes-b.nodes, int64(n))
			}
			k.fault = b.fault.child(i)
			k.err = b.err // a tripped parent yields tripped children
		}
		k.untilCheck = k.interval
		kids[i] = k
	}
	return kids, cancel
}

// share divides a remaining allowance between n children, never below
// one unit so an exhausted parent still produces children that trip
// immediately rather than running unbounded.
func share(remaining, n int64) int64 {
	s := remaining / n
	if s < 1 {
		s = 1
	}
	return s
}

// Join charges the children's consumed steps and nodes back to the
// parent, preserving the accounting invariant that a forked region
// costs the parent what a serial run would have. Join is nil-safe on
// the parent and skips nil children; it returns the parent's (possibly
// newly tripped) sticky violation.
func (b *Budget) Join(kids ...*Budget) error {
	if b == nil {
		return nil
	}
	for _, k := range kids {
		if k == nil {
			continue
		}
		if k.steps > 0 {
			b.Step(k.steps)
		}
		if k.nodes > 0 {
			b.Nodes(k.nodes)
		}
	}
	return b.Err()
}
