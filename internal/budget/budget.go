// Package budget provides resource governance for the estimation core.
// Every potentially exponential algorithm in this repository — BDD
// construction, Quine–McCluskey minimization, FSM synthesis, gate-level
// and ISA simulation — accepts a *Budget and stops with a typed
// *Exceeded error (or degrades to a cheaper estimate) instead of
// running without bound. A Budget combines a wall-clock deadline, an
// optional context.Context for cancellation, and step/node counters
// with cheap periodic check points: counter updates are a few integer
// operations, and the clock and context are only consulted every
// CheckInterval steps.
//
// All methods are safe on a nil *Budget (they are no-ops), so budgets
// thread through call chains without nil checks at every layer. A
// Budget is owned by one goroutine; share budgets across goroutines by
// giving each worker its own.
package budget

import (
	"context"
	"errors"
	"fmt"
	"time"

	"hlpower/internal/hlerr"
)

// ErrExceeded is the sentinel matched by errors.Is for every budget
// violation, whatever the exhausted resource.
var ErrExceeded = errors.New("budget exceeded")

// Exceeded reports which resource ran out. It matches ErrExceeded via
// errors.Is and context errors when the violation came from the
// wrapped context.
type Exceeded struct {
	Resource string // "deadline", "steps", "nodes", "canceled", or "fault"
	Limit    int64  // the configured ceiling (nanoseconds for deadlines)
	Used     int64  // consumption observed at the trip point
	Cause    error  // non-nil when a context cancellation tripped the budget
}

// Error formats the violation.
func (e *Exceeded) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("budget exceeded: %s (%v)", e.Resource, e.Cause)
	}
	return fmt.Sprintf("budget exceeded: %s (%d of %d)", e.Resource, e.Used, e.Limit)
}

// Is matches ErrExceeded.
func (e *Exceeded) Is(target error) bool { return target == ErrExceeded }

// Unwrap exposes the context error for errors.Is(err, context.Canceled)
// and friends.
func (e *Exceeded) Unwrap() error { return e.Cause }

// DefaultCheckInterval is how many steps pass between wall-clock and
// context consultations when WithCheckInterval is not given.
const DefaultCheckInterval = 1024

// Budget tracks resource consumption for one estimation run.
type Budget struct {
	ctx         context.Context
	deadline    time.Time
	hasDeadline bool
	start       time.Time

	maxSteps, steps int64
	maxNodes, nodes int64

	interval   int64
	untilCheck int64
	checks     int64 // completed slow check points (fault-injection hook)

	fault *FaultPlan
	err   error // sticky: first violation observed
}

// Option configures a Budget.
type Option func(*Budget)

// WithTimeout sets a wall-clock deadline d from now.
func WithTimeout(d time.Duration) Option {
	return func(b *Budget) {
		b.deadline = b.start.Add(d)
		b.hasDeadline = true
	}
}

// WithDeadline sets an absolute wall-clock deadline.
func WithDeadline(t time.Time) Option {
	return func(b *Budget) {
		b.deadline = t
		b.hasDeadline = true
	}
}

// WithContext ties the budget to ctx: cancellation and the context
// deadline both trip the budget at the next check point.
func WithContext(ctx context.Context) Option {
	return func(b *Budget) {
		b.ctx = ctx
		if t, ok := ctx.Deadline(); ok && (!b.hasDeadline || t.Before(b.deadline)) {
			b.deadline = t
			b.hasDeadline = true
		}
	}
}

// WithMaxSteps caps the abstract work counter (BDD operations, cube
// merges, simulated cycles·gates, executed instructions).
func WithMaxSteps(n int64) Option { return func(b *Budget) { b.maxSteps = n } }

// WithMaxNodes caps allocated nodes — the memory proxy for BDD and
// cover construction.
func WithMaxNodes(n int64) Option { return func(b *Budget) { b.maxNodes = n } }

// WithCheckInterval sets how many steps pass between clock/context
// consultations. Smaller means tighter deadline enforcement at more
// overhead.
func WithCheckInterval(n int64) Option {
	return func(b *Budget) {
		if n > 0 {
			b.interval = n
		}
	}
}

// New builds a budget. With no options it never trips — handy as an
// explicit "unbounded" value.
func New(opts ...Option) *Budget {
	b := &Budget{start: time.Now(), interval: DefaultCheckInterval}
	for _, o := range opts {
		o(b)
	}
	b.untilCheck = b.interval
	return b
}

// FromContext wraps a context as a budget: its deadline and
// cancellation govern the run.
func FromContext(ctx context.Context) *Budget {
	return New(WithContext(ctx))
}

// Err returns the sticky violation, or nil while the budget holds.
// nil-safe.
func (b *Budget) Err() error {
	if b == nil {
		return nil
	}
	return b.err
}

// Ok reports whether the budget still holds. nil-safe.
func (b *Budget) Ok() bool { return b.Err() == nil }

// FaultArmed reports whether a fault-injection plan is armed on this
// budget. Memoization layers consult it before caching: a result
// computed under injected chaos must never be stored as a fresh
// estimate, and lookups are bypassed so the injected fault always
// reaches the real estimation path. nil-safe.
func (b *Budget) FaultArmed() bool { return b != nil && b.fault != nil }

// StepsUsed returns the consumed step count. nil-safe.
func (b *Budget) StepsUsed() int64 {
	if b == nil {
		return 0
	}
	return b.steps
}

// NodesUsed returns the consumed node count. nil-safe.
func (b *Budget) NodesUsed() int64 {
	if b == nil {
		return 0
	}
	return b.nodes
}

// Step consumes n units of work and returns the (sticky) violation if
// the budget is exhausted. It is the cheap per-iteration check point:
// a few integer operations on the fast path.
func (b *Budget) Step(n int64) error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.steps += n
	if b.maxSteps > 0 && b.steps > b.maxSteps {
		b.err = &Exceeded{Resource: "steps", Limit: b.maxSteps, Used: b.steps}
		return b.err
	}
	b.untilCheck -= n
	if b.untilCheck <= 0 {
		b.untilCheck = b.interval
		return b.slowCheck()
	}
	return nil
}

// Nodes charges n allocated nodes against the memory ceiling.
func (b *Budget) Nodes(n int64) error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.nodes += n
	if b.maxNodes > 0 && b.nodes > b.maxNodes {
		b.err = &Exceeded{Resource: "nodes", Limit: b.maxNodes, Used: b.nodes}
		return b.err
	}
	return nil
}

// Check is Step for deep recursions without error plumbing: on
// violation it panics with a typed value that hlerr.Recover (or
// budget.Recover) converts back into an error at the entry point.
func (b *Budget) Check(n int64) {
	if err := b.Step(n); err != nil {
		hlerr.Throw(err)
	}
}

// CheckNodes is Nodes with the typed-panic reporting of Check.
func (b *Budget) CheckNodes(n int64) {
	if err := b.Nodes(n); err != nil {
		hlerr.Throw(err)
	}
}

// slowCheck consults the expensive signals: injected faults, context
// cancellation, and the wall clock.
func (b *Budget) slowCheck() error {
	b.checks++
	if b.fault != nil {
		if err := b.fault.trip(b.checks); err != nil {
			b.err = err
			return b.err
		}
	}
	if b.ctx != nil {
		if cause := b.ctx.Err(); cause != nil {
			b.err = &Exceeded{Resource: "canceled", Cause: cause}
			return b.err
		}
	}
	if b.hasDeadline && !time.Now().Before(b.deadline) {
		b.err = &Exceeded{
			Resource: "deadline",
			Limit:    int64(b.deadline.Sub(b.start)),
			Used:     int64(time.Since(b.start)),
		}
		return b.err
	}
	return nil
}

// Recover converts a Check/CheckNodes panic (or any hlerr.Throw) into
// *errp. It is a direct alias of hlerr.Recover (a wrapper would defeat
// recover(), which must be called by the deferred function itself), so
// budget users need only one import.
var Recover = hlerr.Recover
