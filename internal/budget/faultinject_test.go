package budget

import (
	"errors"
	"testing"
)

// drive consumes the budget in small steps until it trips or maxIter
// iterations pass; it returns the violation (nil if none).
func drive(b *Budget, maxIter int) error {
	for i := 0; i < maxIter; i++ {
		if err := b.Step(16); err != nil {
			return err
		}
	}
	return nil
}

func TestDeterministicFault(t *testing.T) {
	b := New(WithCheckInterval(16), WithFaultPlan(FaultPlan{FailAtCheck: 3}))
	err := drive(b, 1000)
	var ex *Exceeded
	if !errors.As(err, &ex) || ex.Resource != FaultResource {
		t.Fatalf("want injected fault, got %v", err)
	}
	if ex.Used != 3 {
		t.Fatalf("fault tripped at check %d, want 3", ex.Used)
	}
	if !errors.Is(err, ErrExceeded) {
		t.Fatal("injected faults must match ErrExceeded")
	}
}

func TestFaultSweepHitsEveryCheckpoint(t *testing.T) {
	for k := int64(1); k <= 20; k++ {
		b := New(WithCheckInterval(8), WithFaultPlan(FaultPlan{FailAtCheck: k}))
		err := drive(b, 10_000)
		var ex *Exceeded
		if !errors.As(err, &ex) || ex.Used != k {
			t.Fatalf("FailAtCheck=%d: got %v", k, err)
		}
	}
}

func TestRandomizedFaultDeterministicPerSeed(t *testing.T) {
	trip := func(seed int64) int64 {
		b := New(WithCheckInterval(8), WithFaultPlan(FaultPlan{Prob: 0.05, Seed: seed}))
		err := drive(b, 100_000)
		var ex *Exceeded
		if !errors.As(err, &ex) {
			t.Fatalf("seed %d: randomized fault never tripped: %v", seed, err)
		}
		return ex.Used
	}
	for seed := int64(0); seed < 5; seed++ {
		a, b := trip(seed), trip(seed)
		if a != b {
			t.Fatalf("seed %d not deterministic: %d vs %d", seed, a, b)
		}
	}
	if trip(1) == trip(2) && trip(2) == trip(3) {
		t.Fatal("different seeds should (almost surely) trip at different points")
	}
}

func TestNoFaultPlanNeverInjects(t *testing.T) {
	b := New(WithCheckInterval(1))
	if err := drive(b, 100_000); err != nil {
		t.Fatalf("plain budget injected a fault: %v", err)
	}
}
