package service

import (
	"context"
	"errors"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
)

// Batch pipeline. A batch is thousands of heterogeneous estimation
// items submitted as one request. The pipeline partitions them into
// groups that share compiled artifacts — every simulate item over one
// (circuit, width) shares a single sim.Compile (netlist tables + packed
// program + pooled kernel scratch), predict items share the module,
// bdd items share the materialized truth table — so per-request setup
// cost is paid once per group instead of once per item. Items are
// validated individually: a malformed item becomes a typed per-item
// error and never poisons its group, and a failed computation (budget
// trip, injected fault) fails only its own item. The serving layer
// grafts policy in through BatchHooks: per-item budgets, memoization
// and singleflight, breaker accounting, cluster routing of whole
// groups, and streaming emission.

// Batch ops, also the wire values of BatchItem.Op.
const (
	OpSimulate = "simulate"
	OpRank     = "rank"
	OpBDD      = "bdd"
	OpPredict  = "predict"
)

// MaxBatchItems bounds one batch request; transports reject larger
// batches before partitioning.
const MaxBatchItems = 10_000

// Batch error kinds, mirroring the HTTP error taxonomy of the serving
// layer so a per-item error and a whole-request error classify alike.
const (
	BatchErrInput       = "input"       // malformed item (never retryable)
	BatchErrBudget      = "budget"      // item or batch budget exhausted
	BatchErrUnavailable = "unavailable" // subsystem breaker open
	BatchErrCanceled    = "canceled"    // caller gone before the item ran
	BatchErrInternal    = "internal"
)

// BatchItem is one estimation request inside a batch: an op tag plus
// exactly the matching payload.
type BatchItem struct {
	// ID is an optional caller-chosen correlation tag echoed on the
	// item's result.
	ID       string           `json:"id,omitempty"`
	Op       string           `json:"op"`
	Simulate *SimulateRequest `json:"simulate,omitempty"`
	Rank     *RankRequest     `json:"rank,omitempty"`
	BDD      *BDDRequest      `json:"bdd,omitempty"`
	Predict  *PredictRequest  `json:"predict,omitempty"`
}

// BatchRequest is the batch wire type.
type BatchRequest struct {
	Items []BatchItem `json:"items"`
}

// BatchError is one item's typed failure.
type BatchError struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
}

// BatchItemResult is one item's outcome: the payload matching the op,
// or a typed error — never both.
type BatchItemResult struct {
	// Index is the item's position in the submitted batch; results are
	// always attributable even when streamed out of submission order.
	Index    int               `json:"index"`
	ID       string            `json:"id,omitempty"`
	Op       string            `json:"op,omitempty"`
	Simulate *SimulateResponse `json:"simulate,omitempty"`
	Rank     *RankResponse     `json:"rank,omitempty"`
	BDD      *BDDResponse      `json:"bdd,omitempty"`
	Predict  *PredictResponse  `json:"predict,omitempty"`
	Error    *BatchError       `json:"error,omitempty"`
}

// Cached reports whether the item's payload was replayed from an
// estimate cache.
func (r *BatchItemResult) Cached() bool {
	switch {
	case r.Simulate != nil:
		return r.Simulate.Cached
	case r.Rank != nil:
		return r.Rank.Cached
	case r.BDD != nil:
		return r.BDD.Cached
	case r.Predict != nil:
		return r.Predict.Cached
	}
	return false
}

// BatchResponse is the buffered batch wire type. Items holds one result
// per submitted item, in submission order.
type BatchResponse struct {
	Items []BatchItemResult `json:"items"`
	// Groups is how many shared-artifact groups the batch partitioned
	// into; Failed and Cached count items, StepsUsed is the aggregate
	// simulation step charge of every locally computed item.
	Groups    int   `json:"groups"`
	Failed    int   `json:"failed"`
	Cached    int   `json:"cached"`
	StepsUsed int64 `json:"steps_used"`
}

// BatchGroup is one partition cell: the items (by batch index, in
// submission order) that share one set of compiled artifacts. Exactly
// one of the Circuit/Width and Function/Vars pairs is meaningful,
// selected by Op; Rank groups key on Width alone.
type BatchGroup struct {
	Op       string `json:"op"`
	Circuit  string `json:"circuit,omitempty"`
	Width    int    `json:"width,omitempty"`
	Function string `json:"function,omitempty"`
	Vars     int    `json:"vars,omitempty"`
	Items    []int  `json:"items"`
}

// BatchPlan is the outcome of partitioning: groups in first-appearance
// order, plus the items rejected by validation, already carrying their
// typed errors. Every submitted index appears exactly once — in one
// group's Items or in Bad.
type BatchPlan struct {
	Groups []BatchGroup
	Bad    []BatchItemResult
}

// KnownCircuit reports whether name is a servable RT-library circuit
// (the set ModuleFor builds).
func KnownCircuit(name string) bool {
	switch name {
	case "adder", "carry-select", "multiplier", "subtractor", "comparator":
		return true
	}
	return false
}

// KnownFunction reports whether name is a servable boolean function
// (the set TruthTable materializes).
func KnownFunction(name string) bool {
	switch name {
	case "parity", "majority", "and":
		return true
	}
	return false
}

// KnownModel reports whether name is a servable macro-model type (the
// set Predict fits).
func KnownModel(name string) bool {
	switch name {
	case "pfa", "dbt", "bitwise", "io":
		return true
	}
	return false
}

func checkWidth(w int) error {
	if w < 2 || w > MaxWidth {
		return hlerr.Errorf("service.batch", "width %d out of range [2,%d]", w, MaxWidth)
	}
	return nil
}

// validateBatchItem is the partition-time item check: cheap range and
// vocabulary validation only, no artifact construction. Anything it
// accepts either computes or fails with the engine's own typed error.
func validateBatchItem(it BatchItem) error {
	switch it.Op {
	case OpSimulate:
		if it.Simulate == nil {
			return hlerr.Errorf("service.batch", "op %q without simulate payload", it.Op)
		}
		if !KnownCircuit(it.Simulate.Circuit) {
			return hlerr.Errorf("service.batch", "unknown circuit %q", it.Simulate.Circuit)
		}
		if err := checkWidth(it.Simulate.Width); err != nil {
			return err
		}
		return CheckCycles(it.Simulate.Cycles)
	case OpRank:
		if it.Rank == nil {
			return hlerr.Errorf("service.batch", "op %q without rank payload", it.Op)
		}
		if err := checkWidth(it.Rank.Width); err != nil {
			return err
		}
		return CheckCycles(it.Rank.Cycles)
	case OpBDD:
		if it.BDD == nil {
			return hlerr.Errorf("service.batch", "op %q without bdd payload", it.Op)
		}
		if !KnownFunction(it.BDD.Function) {
			return hlerr.Errorf("service.batch", "unknown function %q", it.BDD.Function)
		}
		if it.BDD.Vars < 1 || it.BDD.Vars > MaxBDDVars {
			return hlerr.Errorf("service.batch", "vars %d out of range [1,%d]", it.BDD.Vars, MaxBDDVars)
		}
		return nil
	case OpPredict:
		if it.Predict == nil {
			return hlerr.Errorf("service.batch", "op %q without predict payload", it.Op)
		}
		if !KnownCircuit(it.Predict.Circuit) {
			return hlerr.Errorf("service.batch", "unknown circuit %q", it.Predict.Circuit)
		}
		if !KnownModel(it.Predict.Model) {
			return hlerr.Errorf("service.batch", "unknown model %q", it.Predict.Model)
		}
		if err := checkWidth(it.Predict.Width); err != nil {
			return err
		}
		if err := CheckCycles(it.Predict.Train); err != nil {
			return err
		}
		return CheckCycles(it.Predict.Eval)
	default:
		return hlerr.Errorf("service.batch", "unknown op %q", it.Op)
	}
}

// groupCell derives the item's partition cell. Call only on validated
// items.
func groupCell(it BatchItem) BatchGroup {
	switch it.Op {
	case OpSimulate:
		return BatchGroup{Op: it.Op, Circuit: it.Simulate.Circuit, Width: it.Simulate.Width}
	case OpRank:
		return BatchGroup{Op: it.Op, Width: it.Rank.Width}
	case OpBDD:
		return BatchGroup{Op: it.Op, Function: it.BDD.Function, Vars: it.BDD.Vars}
	default: // OpPredict
		return BatchGroup{Op: it.Op, Circuit: it.Predict.Circuit, Width: it.Predict.Width}
	}
}

// PartitionBatch validates every item and partitions the valid ones
// into shared-artifact groups. The plan is deterministic: groups appear
// in order of their first item, each group's Items ascend, and every
// submitted index lands in exactly one group or exactly one Bad entry —
// the invariants FuzzBatchRequest pins.
func PartitionBatch(items []BatchItem) BatchPlan {
	type cellKey struct {
		op, name string
		n        int
	}
	var plan BatchPlan
	cells := make(map[cellKey]int) // cell -> index into plan.Groups
	for i, it := range items {
		if err := validateBatchItem(it); err != nil {
			plan.Bad = append(plan.Bad, BatchItemResult{
				Index: i, ID: it.ID, Op: it.Op,
				Error: &BatchError{Kind: BatchErrInput, Message: err.Error()},
			})
			continue
		}
		cell := groupCell(it)
		key := cellKey{op: cell.Op, name: cell.Circuit + cell.Function, n: cell.Width + cell.Vars}
		gi, ok := cells[key]
		if !ok {
			gi = len(plan.Groups)
			cells[key] = gi
			plan.Groups = append(plan.Groups, cell)
		}
		plan.Groups[gi].Items = append(plan.Groups[gi].Items, i)
	}
	return plan
}

// GroupRunner holds one group's compiled artifacts and computes its
// items. Safe for concurrent item runs (the artifacts are read-only and
// the kernel scratch pool is concurrency-safe).
type GroupRunner struct {
	l    *Local
	g    BatchGroup
	mod  *rtlib.Module // simulate, predict
	comp *sim.Compiled // simulate
	art  *artifact     // simulate: promotion hotness accounting
	tt   []bool        // bdd
}

// NewGroupRunner compiles the shared artifacts of one partition group:
// the module and packed-kernel program for simulate groups, the module
// for predict groups, the materialized truth table for bdd groups. An
// error fails the whole group — by construction it would fail every
// item identically.
func (l *Local) NewGroupRunner(g BatchGroup) (*GroupRunner, error) {
	r := &GroupRunner{l: l, g: g}
	var err error
	switch g.Op {
	case OpSimulate:
		// The shared artifact cache makes group compilation a map hit on
		// hot netlists: the compiled (fused) program and its scratch pool
		// persist across batches and are shared with the single-request
		// and rank paths.
		art, aerr := l.artifactFor(g.Circuit, g.Width)
		if aerr != nil {
			return nil, aerr
		}
		r.mod, r.comp, r.art = art.mod, art.comp, art
	case OpPredict:
		art, aerr := l.artifactFor(g.Circuit, g.Width)
		if aerr != nil {
			return nil, aerr
		}
		r.mod = art.mod
	case OpBDD:
		if r.tt, err = TruthTable(g.Function, g.Vars); err != nil {
			return nil, err
		}
	case OpRank:
		// Rank items share no precompiled artifact: each candidate set is
		// evaluated through the per-candidate memo keys instead.
	default:
		return nil, hlerr.Errorf("service.batch", "unknown op %q", g.Op)
	}
	return r, nil
}

// Group returns the partition cell this runner computes.
func (r *GroupRunner) Group() BatchGroup { return r.g }

// TruthTable returns the group's materialized truth table (bdd groups
// only), so caching layers can derive the same content key the
// single-request path uses without re-materializing it per item.
func (r *GroupRunner) TruthTable() []bool { return r.tt }

// Simulate runs one simulate item over the group's compiled netlist.
// Bit-identical to Local.Simulate for the same request — including the
// Shards/Fallback/Kernel metadata — with the setup already paid.
func (r *GroupRunner) Simulate(b *budget.Budget, req SimulateRequest) (*sim.Result, error) {
	if err := CheckCycles(req.Cycles); err != nil {
		return nil, err
	}
	as, bs := OperandStreams(req.Cycles, req.Width, req.Seed)
	prov := func(c int) []bool { return r.mod.InputVector(as[c], bs[c]) }
	// Words and Lean are pure accelerators: Words feeds the kernel the
	// same bits as prov without the per-cycle []bool, and Lean skips
	// Result fields the batch response never reads. Power, SwitchedCap,
	// and the execution metadata stay bit-identical to Local.Simulate.
	// Routing through runArtifact makes batch items count toward — and
	// benefit from — codegen promotion exactly like single requests.
	return r.l.runArtifact(b, r.art, prov, req.Cycles, sim.RunOptions{
		Workers: req.Workers,
		Words:   func(c int) uint64 { return r.mod.InputWord(as[c], bs[c]) },
		Lean:    true,
	})
}

// BDD runs one bdd item over the group's materialized truth table.
func (r *GroupRunner) BDD(ctx context.Context, b *budget.Budget, req BDDRequest) (BDDOutcome, error) {
	return r.l.BDD(ctx, b, req, r.tt)
}

// Rank runs one rank item; identical to Local.Rank.
func (r *GroupRunner) Rank(ctx context.Context, b *budget.Budget, req RankRequest) (RankResponse, error) {
	return r.l.Rank(ctx, b, req)
}

// Predict runs one predict item over the group's shared module.
func (r *GroupRunner) Predict(b *budget.Budget, req PredictRequest) (PredictResponse, error) {
	return r.l.predictWith(b, r.mod, req)
}

// RunItem computes one item into its wire result (without serving-layer
// metadata: Cached flags belong to the caching layer). The error, when
// non-nil, is the engine's typed failure for this item alone.
func (r *GroupRunner) RunItem(ctx context.Context, b *budget.Budget, idx int, it BatchItem) (BatchItemResult, error) {
	out := BatchItemResult{Index: idx, ID: it.ID, Op: it.Op}
	switch r.g.Op {
	case OpSimulate:
		res, err := r.Simulate(b, *it.Simulate)
		if err != nil {
			return out, err
		}
		out.Simulate = &SimulateResponse{
			Circuit:     it.Simulate.Circuit,
			Cycles:      res.Cycles,
			SwitchedCap: res.SwitchedCap,
			Power:       res.Power(),
			Shards:      res.Shards,
			Fallback:    res.Fallback,
			Kernel:      res.Kernel,
		}
	case OpRank:
		resp, err := r.Rank(ctx, b, *it.Rank)
		if err != nil {
			return out, err
		}
		out.Rank = &resp
	case OpBDD:
		val, err := r.BDD(ctx, b, *it.BDD)
		if err != nil {
			return out, err
		}
		out.BDD = &BDDResponse{
			Function: it.BDD.Function, Vars: it.BDD.Vars,
			Nodes: val.Nodes, Degraded: val.Degraded,
		}
	case OpPredict:
		resp, err := r.Predict(b, *it.Predict)
		if err != nil {
			return out, err
		}
		out.Predict = &resp
	}
	return out, nil
}

// BatchHooks is how a serving layer grafts policy into the batch
// pipeline. Every hook is optional; the zero value computes everything
// locally with nil (unlimited) budgets.
type BatchHooks struct {
	// Budget returns a fresh per-item budget. Budgets are sticky — a
	// tripped one poisons later checks — so each item gets its own,
	// exactly as each single request does; that is also what isolates a
	// failing item from the rest of its group.
	Budget func() *budget.Budget
	// Steps, when positive, is the whole-batch step ceiling: once the
	// aggregate StepsUsed of computed items reaches it, every remaining
	// item fails with a typed BatchErrBudget error.
	Steps int64
	// Group, when set, may take over a whole group's computation —
	// cluster mode forwards groups to their ring owners through it.
	// The returned results are positional (result j answers items[j]);
	// ok=false, or a result count mismatch, computes the group locally.
	Group func(ctx context.Context, g BatchGroup, items []BatchItem) ([]BatchItemResult, bool)
	// Item, when set, wraps one item's computation — the serving layer's
	// seam for memoization, singleflight, and breaker accounting. The
	// default is runner.RunItem.
	Item func(ctx context.Context, runner *GroupRunner, b *budget.Budget, idx int, it BatchItem) (BatchItemResult, error)
	// Emit, when set, receives every result as it is produced: rejected
	// items first, then each group's items in submission order. The
	// streaming transport writes NDJSON lines here.
	Emit func(res BatchItemResult)
	// GroupDone, when set, is called after a group's last result is
	// emitted — the streaming transport's flush point.
	GroupDone func(g BatchGroup)
}

// batchErrorFor maps an item's computation error onto the typed batch
// error taxonomy.
func batchErrorFor(err error) *BatchError {
	kind := BatchErrInternal
	switch {
	case hlerr.IsInput(err):
		kind = BatchErrInput
	case errors.Is(err, budget.ErrExceeded):
		kind = BatchErrBudget
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		kind = BatchErrCanceled
	}
	return &BatchError{Kind: kind, Message: err.Error()}
}

// Batch is the batched estimation pipeline: partition, compile each
// group once, compute every item, fold the results back into submission
// order. It never fails as a whole — every outcome, including a group
// compile failure or an exhausted batch budget, is expressed as typed
// per-item errors — so one poisoned item can never cost a caller the
// other 9,999.
func (l *Local) Batch(ctx context.Context, req BatchRequest, h BatchHooks) BatchResponse {
	plan := PartitionBatch(req.Items)
	results := make([]BatchItemResult, len(req.Items))
	emit := func(r BatchItemResult) {
		results[r.Index] = r
		if h.Emit != nil {
			h.Emit(r)
		}
	}
	for _, bad := range plan.Bad {
		emit(bad)
	}

	newBudget := func() *budget.Budget {
		if h.Budget == nil {
			return nil
		}
		return h.Budget()
	}
	runItem := h.Item
	if runItem == nil {
		runItem = func(ctx context.Context, r *GroupRunner, b *budget.Budget, idx int, it BatchItem) (BatchItemResult, error) {
			return r.RunItem(ctx, b, idx, it)
		}
	}

	var stepsUsed int64
	exhausted := false
	for _, g := range plan.Groups {
		if h.Group != nil && !exhausted && ctx.Err() == nil {
			items := make([]BatchItem, len(g.Items))
			for j, idx := range g.Items {
				items[j] = req.Items[idx]
			}
			if rs, ok := h.Group(ctx, g, items); ok && len(rs) == len(g.Items) {
				for j, r := range rs {
					r.Index = g.Items[j]
					emit(r)
				}
				if h.GroupDone != nil {
					h.GroupDone(g)
				}
				continue
			}
		}
		runner, rerr := l.NewGroupRunner(g)
		for _, idx := range g.Items {
			it := req.Items[idx]
			out := BatchItemResult{Index: idx, ID: it.ID, Op: it.Op}
			switch {
			case ctx.Err() != nil:
				out.Error = &BatchError{Kind: BatchErrCanceled, Message: ctx.Err().Error()}
			case exhausted:
				out.Error = &BatchError{Kind: BatchErrBudget, Message: "batch step budget exhausted"}
			case rerr != nil:
				out.Error = batchErrorFor(rerr)
			default:
				b := newBudget()
				r, err := runItem(ctx, runner, b, idx, it)
				if err != nil {
					out.Error = batchErrorFor(err)
				} else {
					out = r
					out.Index, out.ID, out.Op = idx, it.ID, it.Op
				}
				stepsUsed += b.StepsUsed()
				if h.Steps > 0 && stepsUsed >= h.Steps {
					exhausted = true
				}
			}
			emit(out)
		}
		if h.GroupDone != nil {
			h.GroupDone(g)
		}
	}

	resp := BatchResponse{Items: results, Groups: len(plan.Groups), StepsUsed: stepsUsed}
	for i := range results {
		if results[i].Error != nil {
			resp.Failed++
		} else if results[i].Cached() {
			resp.Cached++
		}
	}
	return resp
}
