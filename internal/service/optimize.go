package service

import (
	"hlpower/internal/hlerr"
	"hlpower/internal/recipe"
)

// Optimization-job limits. Candidate evaluations re-simulate the
// design, so the cycle limits sit far below the single-shot MaxCycles.
const (
	MaxJobCandidates   = 2000
	MaxJobCycles       = 8192
	MaxJobRecipeLen    = 8
	MaxJobTokenLen     = 128
	DefaultCandidates  = 32
	DefaultEvalCycles  = 256
	DefaultVerifyCycle = 128
	DefaultRecipeLen   = 4
)

// OptimizeRequest submits a recipe-search job over one design. Kind
// selects the design class; the per-class fields mirror recipe.Spec.
// Token is the client's idempotency key: resubmitting the same token
// with the same body always lands on the same job.
type OptimizeRequest struct {
	Token   string `json:"token,omitempty"`
	Kind    string `json:"kind"`
	Circuit string `json:"circuit,omitempty"`
	Width   int    `json:"width,omitempty"`
	States  int    `json:"states,omitempty"`
	Inputs  int    `json:"inputs,omitempty"`
	Outputs int    `json:"outputs,omitempty"`

	Seed         int64 `json:"seed"`
	Candidates   int   `json:"candidates,omitempty"`
	EvalCycles   int   `json:"eval_cycles,omitempty"`
	VerifyCycles int   `json:"verify_cycles,omitempty"`
	MaxRecipeLen int   `json:"max_recipe_len,omitempty"`
}

// Normalize fills defaulted fields in place.
func (r *OptimizeRequest) Normalize() {
	if r.Candidates == 0 {
		r.Candidates = DefaultCandidates
	}
	if r.EvalCycles == 0 {
		r.EvalCycles = DefaultEvalCycles
	}
	if r.VerifyCycles == 0 {
		r.VerifyCycles = DefaultVerifyCycle
	}
	if r.MaxRecipeLen == 0 {
		r.MaxRecipeLen = DefaultRecipeLen
	}
}

// Spec maps the request onto the recipe layer's design descriptor.
func (r OptimizeRequest) Spec() recipe.Spec {
	return recipe.Spec{
		Kind:    r.Kind,
		Circuit: r.Circuit,
		Width:   r.Width,
		States:  r.States,
		Inputs:  r.Inputs,
		Outputs: r.Outputs,
	}
}

// Validate checks a normalized request; violations are typed input
// errors (HTTP 400).
func (r OptimizeRequest) Validate() error {
	if err := r.Spec().Validate(); err != nil {
		return err
	}
	if len(r.Token) > MaxJobTokenLen {
		return hlerr.Errorf("service.optimize", "token longer than %d bytes", MaxJobTokenLen)
	}
	if r.Candidates < 1 || r.Candidates > MaxJobCandidates {
		return hlerr.Errorf("service.optimize", "candidates %d out of range [1,%d]", r.Candidates, MaxJobCandidates)
	}
	if r.EvalCycles < 2 || r.EvalCycles > MaxJobCycles {
		return hlerr.Errorf("service.optimize", "eval_cycles %d out of range [2,%d]", r.EvalCycles, MaxJobCycles)
	}
	if r.VerifyCycles < 2 || r.VerifyCycles > MaxJobCycles {
		return hlerr.Errorf("service.optimize", "verify_cycles %d out of range [2,%d]", r.VerifyCycles, MaxJobCycles)
	}
	if r.MaxRecipeLen < 1 || r.MaxRecipeLen > MaxJobRecipeLen {
		return hlerr.Errorf("service.optimize", "max_recipe_len %d out of range [1,%d]", r.MaxRecipeLen, MaxJobRecipeLen)
	}
	return nil
}
