package service

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"hlpower/internal/budget"
)

// batchFixture is a small heterogeneous batch covering every op, two
// simulate groups, and duplicate cells.
func batchFixture() []BatchItem {
	return []BatchItem{
		{ID: "s0", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 96, Seed: 1}},
		{ID: "s1", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 96, Seed: 2}},
		{ID: "m0", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "multiplier", Width: 4, Cycles: 64, Seed: 3}},
		{ID: "b0", Op: OpBDD, BDD: &BDDRequest{Function: "parity", Vars: 6}},
		{ID: "p0", Op: OpPredict, Predict: &PredictRequest{Circuit: "adder", Width: 6, Model: "pfa", Train: 64, Eval: 64, Seed: 4}},
		{ID: "r0", Op: OpRank, Rank: &RankRequest{Width: 5, Cycles: 64, Seed: 5}},
		{ID: "s2", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 128, Seed: 6}},
	}
}

// checkPlanInvariants asserts the partition invariants FuzzBatchRequest
// pins: every submitted index lands in exactly one group or exactly one
// Bad entry, group Items ascend, and every Bad entry carries a typed
// input error.
func checkPlanInvariants(t testing.TB, items []BatchItem, plan BatchPlan) {
	t.Helper()
	seen := make(map[int]int)
	for gi, g := range plan.Groups {
		if len(g.Items) == 0 {
			t.Fatalf("group %d is empty", gi)
		}
		prev := -1
		for _, idx := range g.Items {
			if idx < 0 || idx >= len(items) {
				t.Fatalf("group %d holds out-of-range index %d", gi, idx)
			}
			if idx <= prev {
				t.Fatalf("group %d items not ascending: %v", gi, g.Items)
			}
			prev = idx
			seen[idx]++
		}
	}
	for _, bad := range plan.Bad {
		if bad.Index < 0 || bad.Index >= len(items) {
			t.Fatalf("Bad holds out-of-range index %d", bad.Index)
		}
		if bad.Error == nil || bad.Error.Kind != BatchErrInput {
			t.Fatalf("Bad[%d] lacks a typed input error: %+v", bad.Index, bad.Error)
		}
		seen[bad.Index]++
	}
	for i := range items {
		if seen[i] != 1 {
			t.Fatalf("index %d appears %d times across groups+Bad, want exactly once", i, seen[i])
		}
	}
}

func TestPartitionBatch(t *testing.T) {
	items := batchFixture()
	items = append(items,
		BatchItem{ID: "bad0", Op: "no-such-op"},
		BatchItem{ID: "bad1", Op: OpSimulate}, // missing payload
		BatchItem{ID: "bad2", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "alu", Width: 6, Cycles: 10}}, // unknown circuit
		BatchItem{ID: "bad3", Op: OpBDD, BDD: &BDDRequest{Function: "parity", Vars: 99}},                        // vars out of range
	)
	plan := PartitionBatch(items)
	checkPlanInvariants(t, items, plan)
	// adder/6 (s0,s1,s2), multiplier/4, bdd parity/6, predict adder/6,
	// rank width 5 — five groups in first-appearance order.
	if len(plan.Groups) != 5 {
		t.Fatalf("got %d groups, want 5: %+v", len(plan.Groups), plan.Groups)
	}
	if g := plan.Groups[0]; g.Op != OpSimulate || g.Circuit != "adder" || len(g.Items) != 3 {
		t.Fatalf("first group wrong: %+v", g)
	}
	if len(plan.Bad) != 4 {
		t.Fatalf("got %d bad items, want 4", len(plan.Bad))
	}
}

// TestBatchBitIdenticalToSingleCalls is the tentpole acceptance test at
// the service layer: every item of a fused batch must be Float64bits-
// identical to the corresponding single-request call.
func TestBatchBitIdenticalToSingleCalls(t *testing.T) {
	svc := &Local{}
	ctx := context.Background()
	items := batchFixture()
	resp := svc.Batch(ctx, BatchRequest{Items: items}, BatchHooks{})
	if resp.Failed != 0 {
		t.Fatalf("batch failed %d items: %+v", resp.Failed, resp.Items)
	}
	if len(resp.Items) != len(items) {
		t.Fatalf("got %d results, want %d", len(resp.Items), len(items))
	}
	for i, it := range items {
		got := resp.Items[i]
		if got.Index != i || got.ID != it.ID || got.Op != it.Op {
			t.Fatalf("result %d misattributed: %+v", i, got)
		}
		switch it.Op {
		case OpSimulate:
			want, err := svc.Simulate(ctx, nil, *it.Simulate)
			if err != nil {
				t.Fatal(err)
			}
			g := got.Simulate
			if math.Float64bits(g.Power) != math.Float64bits(want.Power()) ||
				math.Float64bits(g.SwitchedCap) != math.Float64bits(want.SwitchedCap) {
				t.Fatalf("item %d (%s): batch %v/%v, single %v/%v",
					i, it.ID, g.Power, g.SwitchedCap, want.Power(), want.SwitchedCap)
			}
			if g.Shards != want.Shards || g.Fallback != want.Fallback || g.Kernel != want.Kernel {
				t.Fatalf("item %d (%s): metadata differs: %+v vs %d/%q/%q",
					i, it.ID, g, want.Shards, want.Fallback, want.Kernel)
			}
		case OpRank:
			want, err := svc.Rank(ctx, nil, *it.Rank)
			if err != nil {
				t.Fatal(err)
			}
			if len(got.Rank.Ranking) != len(want.Ranking) {
				t.Fatalf("item %d: ranking lengths differ", i)
			}
			for j := range want.Ranking {
				if got.Rank.Ranking[j].Name != want.Ranking[j].Name ||
					math.Float64bits(got.Rank.Ranking[j].Power) != math.Float64bits(want.Ranking[j].Power) {
					t.Fatalf("item %d entry %d differs", i, j)
				}
			}
		case OpBDD:
			tt, err := TruthTable(it.BDD.Function, it.BDD.Vars)
			if err != nil {
				t.Fatal(err)
			}
			want, err := svc.BDD(ctx, nil, *it.BDD, tt)
			if err != nil {
				t.Fatal(err)
			}
			if got.BDD.Nodes != want.Nodes || got.BDD.Degraded != want.Degraded {
				t.Fatalf("item %d: bdd differs: %+v vs %+v", i, got.BDD, want)
			}
		case OpPredict:
			want, err := svc.Predict(ctx, nil, *it.Predict)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got.Predict.Predicted) != math.Float64bits(want.Predicted) ||
				math.Float64bits(got.Predict.Measured) != math.Float64bits(want.Measured) {
				t.Fatalf("item %d: predict differs: %+v vs %+v", i, got.Predict, want)
			}
		}
	}
}

// TestBatchPartialFailure: one poisoned item fails typed while the rest
// of its own group succeeds — the isolation acceptance criterion.
func TestBatchPartialFailure(t *testing.T) {
	svc := &Local{}
	items := []BatchItem{
		{ID: "ok0", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: 1}},
		{ID: "poison", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 4000, Seed: 2}},
		{ID: "ok1", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: 3}},
	}
	// A per-item step allowance the 64-cycle items fit under and the
	// 4000-cycle one cannot.
	hooks := BatchHooks{Budget: func() *budget.Budget {
		return budget.New(budget.WithMaxSteps(30_000), budget.WithCheckInterval(64))
	}}
	resp := svc.Batch(context.Background(), BatchRequest{Items: items}, hooks)
	if resp.Failed != 1 {
		t.Fatalf("failed=%d, want 1: %+v", resp.Failed, resp.Items)
	}
	if e := resp.Items[1].Error; e == nil || e.Kind != BatchErrBudget {
		t.Fatalf("poisoned item error: %+v, want kind %q", resp.Items[1].Error, BatchErrBudget)
	}
	for _, i := range []int{0, 2} {
		if resp.Items[i].Error != nil || resp.Items[i].Simulate == nil {
			t.Fatalf("sibling item %d poisoned: %+v", i, resp.Items[i])
		}
	}
}

// TestBatchStepCeiling: the aggregate batch budget fails remaining
// items typed once crossed.
func TestBatchStepCeiling(t *testing.T) {
	svc := &Local{}
	var items []BatchItem
	for i := 0; i < 6; i++ {
		items = append(items, BatchItem{Op: OpSimulate,
			Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: int64(i)}})
	}
	resp := svc.Batch(context.Background(), BatchRequest{Items: items}, BatchHooks{
		Budget: func() *budget.Budget { return budget.New() },
		Steps:  1, // first computed item crosses it
	})
	if resp.Items[0].Error != nil {
		t.Fatalf("first item should compute: %+v", resp.Items[0].Error)
	}
	for i := 1; i < len(items); i++ {
		if e := resp.Items[i].Error; e == nil || e.Kind != BatchErrBudget {
			t.Fatalf("item %d: %+v, want kind %q", i, resp.Items[i].Error, BatchErrBudget)
		}
	}
	if resp.StepsUsed <= 0 {
		t.Fatalf("StepsUsed=%d, want positive", resp.StepsUsed)
	}
}

// TestBatchCancellation: a canceled context fails remaining items with
// the canceled kind rather than computing them.
func TestBatchCancellation(t *testing.T) {
	svc := &Local{}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items := batchFixture()
	resp := svc.Batch(ctx, BatchRequest{Items: items}, BatchHooks{})
	for i := range items {
		if e := resp.Items[i].Error; e == nil || e.Kind != BatchErrCanceled {
			t.Fatalf("item %d: %+v, want kind %q", i, resp.Items[i].Error, BatchErrCanceled)
		}
	}
}

// TestBatchGroupTakeover: a Group hook's positional results are
// remapped onto batch indices; a count mismatch falls back to local
// compute.
func TestBatchGroupTakeover(t *testing.T) {
	svc := &Local{}
	items := []BatchItem{
		{ID: "a", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: 1}},
		{ID: "b", Op: OpBDD, BDD: &BDDRequest{Function: "and", Vars: 4}},
		{ID: "c", Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: 2}},
	}
	var took []string
	hook := func(_ context.Context, g BatchGroup, gi []BatchItem) ([]BatchItemResult, bool) {
		if g.Op != OpSimulate {
			return nil, false
		}
		took = append(took, g.Circuit)
		rs := make([]BatchItemResult, len(gi))
		for j, it := range gi {
			rs[j] = BatchItemResult{ID: it.ID, Op: it.Op,
				Simulate: &SimulateResponse{Circuit: "taken-over"}}
		}
		return rs, true
	}
	resp := svc.Batch(context.Background(), BatchRequest{Items: items}, BatchHooks{Group: hook})
	if len(took) != 1 {
		t.Fatalf("group hook ran %d times, want 1", len(took))
	}
	for _, i := range []int{0, 2} {
		r := resp.Items[i]
		if r.Simulate == nil || r.Simulate.Circuit != "taken-over" || r.Index != i {
			t.Fatalf("item %d not remapped from takeover: %+v", i, r)
		}
	}
	if resp.Items[1].BDD == nil {
		t.Fatalf("bdd item should compute locally: %+v", resp.Items[1])
	}

	// Wrong result count: the pipeline must ignore the takeover and
	// compute locally.
	short := func(_ context.Context, g BatchGroup, gi []BatchItem) ([]BatchItemResult, bool) {
		return []BatchItemResult{{}}, true
	}
	resp = svc.Batch(context.Background(), BatchRequest{Items: items}, BatchHooks{Group: short})
	if resp.Failed != 0 || resp.Items[0].Simulate == nil || resp.Items[0].Simulate.Circuit != "adder" {
		t.Fatalf("count-mismatched takeover not recomputed locally: %+v", resp.Items[0])
	}
}

// TestBatchEmitOrder: Emit sees rejected items first, then each group's
// items in submission order, with GroupDone at every boundary.
func TestBatchEmitOrder(t *testing.T) {
	svc := &Local{}
	items := []BatchItem{
		{Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: 1}},
		{Op: "bogus"},
		{Op: OpSimulate, Simulate: &SimulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: 2}},
	}
	var order []int
	var groups int
	svc.Batch(context.Background(), BatchRequest{Items: items}, BatchHooks{
		Emit:      func(r BatchItemResult) { order = append(order, r.Index) },
		GroupDone: func(BatchGroup) { groups++ },
	})
	want := []int{1, 0, 2}
	if len(order) != len(want) {
		t.Fatalf("emitted %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("emit order %v, want %v", order, want)
		}
	}
	if groups != 1 {
		t.Fatalf("GroupDone ran %d times, want 1", groups)
	}
}

// TestBatchBudgetErrorMapping: an engine error from a nil-payload-free
// but uncomputable item maps onto the typed taxonomy (here: a budget
// trip injected through the per-item budget hook).
func TestBatchErrorTaxonomy(t *testing.T) {
	if k := batchErrorFor(budget.ErrExceeded); k.Kind != BatchErrBudget {
		t.Fatalf("budget error mapped to %q", k.Kind)
	}
	if k := batchErrorFor(context.Canceled); k.Kind != BatchErrCanceled {
		t.Fatalf("canceled mapped to %q", k.Kind)
	}
	if k := batchErrorFor(errors.New("boom")); k.Kind != BatchErrInternal {
		t.Fatalf("unknown mapped to %q", k.Kind)
	}
}

// FuzzBatchRequest drives arbitrary JSON through batch decoding and
// partitioning and asserts the plan invariants: no item lost, none
// duplicated, bad items isolated to typed input errors — and running
// the plan never panics and answers every item.
func FuzzBatchRequest(f *testing.F) {
	seed, _ := json.Marshal(BatchRequest{Items: batchFixture()})
	f.Add(seed)
	f.Add([]byte(`{"items":[{"op":"simulate"},{"op":"bdd","bdd":{"function":"and","vars":2}}]}`))
	f.Add([]byte(`{"items":[{"op":"simulate","simulate":{"circuit":"adder","width":-3,"cycles":1}}]}`))
	f.Add([]byte(`{"items":[]}`))
	f.Add([]byte(`garbage`))
	svc := &Local{}
	f.Fuzz(func(t *testing.T, data []byte) {
		var req BatchRequest
		if err := json.Unmarshal(data, &req); err != nil {
			return
		}
		if len(req.Items) > 64 {
			req.Items = req.Items[:64]
		}
		// Keep fuzzed workloads cheap: cap the cycle knobs so a valid
		// random item costs microseconds, without changing validity.
		for i := range req.Items {
			if s := req.Items[i].Simulate; s != nil && s.Cycles > 64 {
				s.Cycles = 64
			}
			if r := req.Items[i].Rank; r != nil && r.Cycles > 32 {
				r.Cycles = 32
			}
			if p := req.Items[i].Predict; p != nil {
				if p.Train > 32 {
					p.Train = 32
				}
				if p.Eval > 32 {
					p.Eval = 32
				}
			}
		}
		plan := PartitionBatch(req.Items)
		checkPlanInvariants(t, req.Items, plan)
		resp := svc.Batch(context.Background(), BatchRequest{Items: req.Items}, BatchHooks{
			Budget: func() *budget.Budget {
				return budget.New(budget.WithMaxSteps(1_000_000), budget.WithCheckInterval(64))
			},
		})
		if len(resp.Items) != len(req.Items) {
			t.Fatalf("%d results for %d items", len(resp.Items), len(req.Items))
		}
		for i, r := range resp.Items {
			if r.Index != i {
				t.Fatalf("result %d carries index %d", i, r.Index)
			}
			payloads := 0
			for _, p := range []bool{r.Simulate != nil, r.Rank != nil, r.BDD != nil, r.Predict != nil} {
				if p {
					payloads++
				}
			}
			if r.Error != nil && payloads != 0 {
				t.Fatalf("result %d carries both payload and error", i)
			}
			if r.Error == nil && payloads != 1 {
				t.Fatalf("result %d carries %d payloads and no error", i, payloads)
			}
		}
	})
}
