// Package service is the transport-agnostic estimation service layer:
// the Simulate/Rank/BDD/Predict operations powerd exposes over HTTP,
// expressed as plain Go interfaces over internal/core and the engine
// packages. Extracting it from the HTTP handlers lets any transport —
// the local HTTP daemon, a cluster peer endpoint, a test harness —
// invoke the same computations with the same validation, the same
// typed input errors, and the same content keys, without dragging in
// admission control, breakers, or JSON plumbing.
//
// The split is deliberate: everything that determines a response's
// bytes (circuit construction, operand streams, simulation, ranking,
// model fitting) lives here; everything that determines whether and
// how a request runs (budgets, retries, breakers, caching policy,
// cluster routing) stays with the caller. That is what makes cluster
// mode safe — a request forwarded to a peer and a request computed
// locally run the exact same code and produce bit-identical figures.
package service

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"

	"hlpower/internal/bdd"
	"hlpower/internal/bitutil"
	"hlpower/internal/budget"
	"hlpower/internal/core"
	"hlpower/internal/hlerr"
	"hlpower/internal/macromodel"
	"hlpower/internal/memo"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
)

// Request limits shared by every transport.
const (
	MaxWidth   = 16
	MaxCycles  = 200_000
	MaxBDDVars = 16
)

// SimulateRequest asks for the gate-level Monte Carlo power of one
// RT-library circuit.
type SimulateRequest struct {
	Circuit string `json:"circuit"`
	Width   int    `json:"width"`
	Cycles  int    `json:"cycles"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
}

// SimulateResponse is the simulate wire type. Hedged and Cached are
// execution metadata owned by the serving layer; the remaining fields
// are pure functions of the request.
type SimulateResponse struct {
	Circuit     string  `json:"circuit"`
	Cycles      int     `json:"cycles"`
	SwitchedCap float64 `json:"switched_cap"`
	Power       float64 `json:"power"`
	Shards      int     `json:"shards"`
	Fallback    string  `json:"fallback,omitempty"`
	// Kernel is "packed" when the 64-lane bit-packed kernel served the
	// request, empty when the interpreted scalar engine ran.
	Kernel string `json:"kernel,omitempty"`
	Hedged bool   `json:"hedged"`
	// Cached reports the response was replayed from the estimate cache
	// (or shared with a concurrent identical request) — bit-identical to
	// a recomputation, including the Shards/Fallback/Kernel metadata of
	// the run that produced it.
	Cached bool `json:"cached"`
}

// RankRequest asks for one improvement-loop turn over the adder
// alternatives.
type RankRequest struct {
	Width  int   `json:"width"`
	Cycles int   `json:"cycles"`
	Seed   int64 `json:"seed"`
}

// RankedEntry is one candidate's evaluated line in a RankResponse.
type RankedEntry struct {
	Name     string  `json:"name"`
	Power    float64 `json:"power"`
	Model    string  `json:"model"`
	Degraded bool    `json:"degraded"`
	// Cached marks a candidate whose power figure was reused from a
	// previous evaluation rather than simulated by this request.
	Cached bool   `json:"cached,omitempty"`
	Err    string `json:"error,omitempty"`
}

// RankResponse is the rank wire type.
type RankResponse struct {
	Best    string        `json:"best"`
	Ranking []RankedEntry `json:"ranking"`
	// Cached reports the whole response was replayed from the estimate
	// cache; per-entry Cached flags then describe the computation that
	// originally produced it.
	Cached bool `json:"cached"`
}

// BDDRequest asks for the BDD size of a named boolean function.
type BDDRequest struct {
	Function string `json:"function"` // "parity" | "majority" | "and"
	Vars     int    `json:"vars"`
	// AllowDegraded accepts a sampled size estimate when the budget
	// cuts off the exact BDD build; without it, a budget trip is an
	// error (and counts against the bdd breaker).
	AllowDegraded bool `json:"allow_degraded"`
}

// BDDResponse is the bdd wire type.
type BDDResponse struct {
	Function string `json:"function"`
	Vars     int    `json:"vars"`
	Nodes    int    `json:"nodes"`
	Degraded bool   `json:"degraded"`
	// Cached reports the node count was replayed from the estimate
	// cache. Degraded (sampled) estimates are never cached, so a cached
	// response is always an exact build.
	Cached bool `json:"cached"`
}

// BDDOutcome is the computed (pre-wire) outcome of one BDD size
// estimate: the node count and whether it is a sampled fallback.
type BDDOutcome struct {
	Nodes    int
	Degraded bool
}

// PredictRequest asks for a macro-model prediction checked against
// budgeted ground truth.
type PredictRequest struct {
	Circuit string `json:"circuit"`
	Width   int    `json:"width"`
	Model   string `json:"model"` // "pfa" | "dbt" | "bitwise" | "io"
	Train   int    `json:"train"`
	Eval    int    `json:"eval"`
	Seed    int64  `json:"seed"`
}

// PredictResponse is the predict wire type.
type PredictResponse struct {
	Circuit   string  `json:"circuit"`
	Model     string  `json:"model"`
	Predicted float64 `json:"predicted"`
	Measured  float64 `json:"measured"`
	AbsErrPct float64 `json:"abs_err_pct"`
	// Cached reports the response was replayed from the estimate cache.
	Cached bool `json:"cached"`
}

// CandEstimate is one rank candidate's evaluated power figure as it
// travels between cluster nodes: the scalar outcome plus the flags a
// requester needs to decide cacheability.
type CandEstimate struct {
	Power    float64 `json:"power"`
	Degraded bool    `json:"degraded"`
	// Cached reports the owner answered from its estimate cache (or an
	// in-flight identical evaluation) rather than simulating.
	Cached bool `json:"cached"`
}

// Service is the estimation service: every operation takes the
// caller's context (for remote hops the implementation may make) and a
// resource budget governing the computation. Implementations must be
// deterministic — two calls with equal requests and ample budgets
// return bit-identical figures — and must surface malformed requests
// as hlerr input errors.
type Service interface {
	Simulate(ctx context.Context, b *budget.Budget, req SimulateRequest) (*sim.Result, error)
	Rank(ctx context.Context, b *budget.Budget, req RankRequest) (RankResponse, error)
	BDD(ctx context.Context, b *budget.Budget, req BDDRequest, tt []bool) (BDDOutcome, error)
	Predict(ctx context.Context, b *budget.Budget, req PredictRequest) (PredictResponse, error)
}

// Local computes every operation in-process over internal/core and the
// engine packages. The zero value works; the optional hooks let a
// serving layer observe engine internals and graft in caching and
// cluster routing without this package knowing about either.
type Local struct {
	// Keys derives the content keys Rank uses for per-candidate
	// memoization; it must match the serving layer's key schema.
	Keys Keys
	// Cache, when set, supplies the estimate cache for per-candidate
	// rank memoization and predict ground-truth sharing. It is a
	// function, not a field, because the serving layer disables caching
	// dynamically (e.g. while a fault plan is armed); nil — or a nil
	// return — means no caching.
	Cache func() *memo.Cache
	// OnBDDStats, when set, observes each BDD manager's unique/ITE
	// table traffic, including partial builds abandoned by a budget
	// trip.
	OnBDDStats func(bdd.Stats)
	// RemoteCand, when set, may answer one rank candidate's estimate
	// from elsewhere (another node's cache or compute). Returning
	// ok=false falls back to local evaluation; errors are the remote
	// layer's to absorb, never to surface here.
	RemoteCand func(ctx context.Context, name string, req RankRequest) (CandEstimate, bool)
	// CodegenAfter is the artifact hotness threshold: after this many
	// non-degraded serves of one (circuit,width) shape, the service
	// builds its specialized (codegen) evaluator off the request path
	// and atomically swaps it in. Zero means DefaultCodegenAfter;
	// negative disables promotion entirely.
	CodegenAfter int

	// artifacts caches compiled simulation artifacts per (circuit,
	// width): the RT-library module plus its sim.Compiled (levelized +
	// fused program, pooled kernel scratch). The domain is bounded by
	// construction — artifactFor validates the 5 circuit names and the
	// width range before inserting — so the cache never needs eviction.
	// Each entry is singleflighted: exactly one goroutine compiles a
	// shape, concurrent first requests wait for it.
	artMu     sync.RWMutex
	artifacts map[artifactKey]*artifactEntry

	// buildCodegen builds an artifact's specialized evaluator; nil means
	// (*sim.Compiled).BuildCodegen. Tests inject failures through it.
	buildCodegen func(*sim.Compiled) error

	// Promotion and tier-ladder observability counters (KernelStats).
	artifactBuilds atomic.Int64
	codegenBuilds  atomic.Int64
	codegenFails   atomic.Int64
	promotions     atomic.Int64
	tierScalar     atomic.Int64
	tierPacked     atomic.Int64
	tierFused      atomic.Int64
	tierCodegen    atomic.Int64
}

// DefaultCodegenAfter is the artifact hotness threshold at which the
// service promotes a fused artifact to the codegen tier when the
// caller didn't configure one.
const DefaultCodegenAfter = 8

// artifactKey identifies one compiled serving artifact.
type artifactKey struct {
	circuit string
	width   int
}

// artifactEntry singleflights one artifact's compilation: the first
// goroutine to reach the entry builds under once, everyone else blocks
// on once and reads the settled result. Errors settle too — the
// circuit/width domain is validated before an entry is created, so a
// cached error is deterministic, not transient.
type artifactEntry struct {
	once sync.Once
	art  *artifact
	err  error
}

// artifact is the per-(circuit,width) hot-path state every estimation
// reuses: construction, levelization, fusion, and scratch pooling are
// paid once per netlist shape, not once per request. hits counts
// non-degraded serves toward codegen promotion; promoting guards the
// single background build; promoteFailed pins the artifact to the
// fused tier after a failed build.
type artifact struct {
	mod           *rtlib.Module
	comp          *sim.Compiled
	hits          atomic.Int64
	promoting     atomic.Bool
	promoteFailed atomic.Bool
}

// checkModule validates a (circuit,width) pair without building it.
func checkModule(circuit string, width int) error {
	if width < 2 || width > MaxWidth {
		return hlerr.Errorf("service.module", "width %d out of range [2,%d]", width, MaxWidth)
	}
	switch circuit {
	case "adder", "carry-select", "multiplier", "subtractor", "comparator":
		return nil
	default:
		return hlerr.Errorf("service.module", "unknown circuit %q", circuit)
	}
}

// artifactFor returns the compiled artifact for a circuit, building and
// caching it on first use. The hot path is one shared-lock map hit;
// first requests insert a singleflight entry under the write lock and
// compile under the entry's once, so concurrent cold requests for one
// shape perform exactly one construction+levelization+fusion.
func (l *Local) artifactFor(circuit string, width int) (*artifact, error) {
	// Validate before touching the cache: the key domain stays bounded
	// by construction and malformed requests leave no entry behind.
	if err := checkModule(circuit, width); err != nil {
		return nil, err
	}
	key := artifactKey{circuit, width}
	l.artMu.RLock()
	e := l.artifacts[key]
	l.artMu.RUnlock()
	if e == nil {
		l.artMu.Lock()
		if e = l.artifacts[key]; e == nil {
			if l.artifacts == nil {
				l.artifacts = make(map[artifactKey]*artifactEntry)
			}
			e = &artifactEntry{}
			l.artifacts[key] = e
		}
		l.artMu.Unlock()
	}
	e.once.Do(func() {
		l.artifactBuilds.Add(1)
		mod, err := ModuleFor(circuit, width)
		if err != nil {
			e.err = err
			return
		}
		comp, err := sim.Compile(mod.Net, sim.Options{Vdd: 1, Freq: 1})
		if err != nil {
			e.err = err
			return
		}
		e.art = &artifact{mod: mod, comp: comp}
	})
	return e.art, e.err
}

// codegenThreshold resolves the configured promotion threshold; zero
// means promotion is disabled.
func (l *Local) codegenThreshold() int64 {
	switch {
	case l.CodegenAfter < 0:
		return 0
	case l.CodegenAfter == 0:
		return DefaultCodegenAfter
	default:
		return int64(l.CodegenAfter)
	}
}

// noteServe advances an artifact's promotion hotness and kicks off the
// background codegen build when it crosses the threshold. It returns
// whether this request must avoid the codegen tier: fault-armed
// (chaos-degraded) requests never use — or advance toward — a promoted
// evaluator, so injected faults always exercise the tier a cold server
// would serve, and promotion can never launder a faulted result into
// the steady state.
func (l *Local) noteServe(a *artifact, faultArmed bool) (noCodegen bool) {
	thr := l.codegenThreshold()
	if faultArmed || thr == 0 {
		return true
	}
	if a.comp.HasCodegen() || a.promoteFailed.Load() {
		return false
	}
	if a.hits.Add(1) >= thr && a.promoting.CompareAndSwap(false, true) {
		go l.promote(a)
	}
	return false
}

// promote builds an artifact's specialized evaluator off the request
// path. Success swaps the evaluator in atomically — in-flight runs
// finish on the fused tier, the next run picks up codegen. Failure is
// silent and permanent for the artifact: it keeps serving the fused
// interpreter, and only the stats counters record the attempt.
func (l *Local) promote(a *artifact) {
	l.codegenBuilds.Add(1)
	build := l.buildCodegen
	if build == nil {
		build = (*sim.Compiled).BuildCodegen
	}
	if err := build(a.comp); err != nil {
		a.promoteFailed.Store(true)
		l.codegenFails.Add(1)
		return
	}
	l.promotions.Add(1)
}

// noteTier records which kernel tier actually served a run.
func (l *Local) noteTier(kernel string) {
	switch kernel {
	case sim.KernelCodegen:
		l.tierCodegen.Add(1)
	case sim.KernelFused:
		l.tierFused.Add(1)
	case sim.KernelPacked:
		l.tierPacked.Add(1)
	default:
		l.tierScalar.Add(1)
	}
}

// runArtifact executes one estimation over a cached artifact with the
// promotion lifecycle applied: hotness accounting, the fault-armed
// codegen bypass, and per-tier serve counters on success.
func (l *Local) runArtifact(b *budget.Budget, a *artifact, prov sim.InputProvider, cycles int, opts sim.RunOptions) (*sim.Result, error) {
	opts.NoCodegen = l.noteServe(a, b.FaultArmed())
	res, err := a.comp.Run(b, prov, cycles, opts)
	if err == nil {
		l.noteTier(res.Kernel)
	}
	return res, err
}

// KernelStats aggregates the fused-kernel and scratch-pool gauges over
// every compiled artifact this service has built. The serving layer
// surfaces it under /v1/stats.
type KernelStats struct {
	// Artifacts is the number of (circuit,width) shapes compiled so far.
	Artifacts int `json:"artifacts"`
	// FusedGroups and FusedAbsorbed sum, over artifacts, the fused
	// dispatch count per settle and the instructions fusion absorbed.
	FusedGroups   int `json:"fused_groups"`
	FusedAbsorbed int `json:"fused_absorbed"`
	// FusedMix is the summed fused-opcode mix across artifacts.
	FusedMix map[string]int64 `json:"fused_mix,omitempty"`
	// ScratchGets/ScratchNews count kernel scratch acquisitions and the
	// ones that had to allocate; HitRate is (gets−news)/gets.
	ScratchGets    int64   `json:"scratch_gets"`
	ScratchNews    int64   `json:"scratch_news"`
	ScratchHitRate float64 `json:"scratch_hit_rate"`
	// ArtifactBuilds counts artifact compilations — with the
	// singleflighted cache, at most one per (circuit,width) shape for
	// the process lifetime, however many requests race the cold start.
	ArtifactBuilds int64 `json:"artifact_builds"`
	// Tiers counts estimation runs served per kernel tier ("scalar",
	// "packed", "fused", "codegen") across every artifact path —
	// single requests, batch items, and rank candidates.
	Tiers map[string]int64 `json:"tiers,omitempty"`
	// Codegen promotion lifecycle: background specialized-evaluator
	// builds started, builds that failed (the artifact then serves the
	// fused tier forever), successful promotions, and the number of
	// artifacts currently holding a promoted evaluator.
	CodegenBuilds    int64 `json:"codegen_builds"`
	CodegenFailures  int64 `json:"codegen_failures"`
	Promotions       int64 `json:"promotions"`
	CodegenArtifacts int   `json:"codegen_artifacts"`
	// Hotness is each artifact's promotion hit counter, keyed
	// "circuit/width". Counting stops once an artifact is promoted (or
	// its build failed), so a steady-state value near the threshold is
	// expected.
	Hotness map[string]int64 `json:"hotness,omitempty"`
}

// KernelStats snapshots the fused-kernel observability gauges.
func (l *Local) KernelStats() KernelStats {
	l.artMu.RLock()
	defer l.artMu.RUnlock()
	st := KernelStats{
		ArtifactBuilds:  l.artifactBuilds.Load(),
		CodegenBuilds:   l.codegenBuilds.Load(),
		CodegenFailures: l.codegenFails.Load(),
		Promotions:      l.promotions.Load(),
	}
	for name, c := range map[string]int64{
		"scalar":  l.tierScalar.Load(),
		"packed":  l.tierPacked.Load(),
		"fused":   l.tierFused.Load(),
		"codegen": l.tierCodegen.Load(),
	} {
		if c == 0 {
			continue
		}
		if st.Tiers == nil {
			st.Tiers = make(map[string]int64)
		}
		st.Tiers[name] = c
	}
	for key, e := range l.artifacts {
		a := e.art
		if a == nil {
			continue // still building, or a settled error entry
		}
		st.Artifacts++
		st.FusedGroups += a.comp.FusedGroups()
		st.FusedAbsorbed += a.comp.FusedAbsorbed()
		for op, c := range a.comp.FusedMix() {
			if st.FusedMix == nil {
				st.FusedMix = make(map[string]int64)
			}
			st.FusedMix[op] += c
		}
		gets, news := a.comp.ScratchStats()
		st.ScratchGets += gets
		st.ScratchNews += news
		if a.comp.HasCodegen() {
			st.CodegenArtifacts++
		}
		if h := a.hits.Load(); h > 0 {
			if st.Hotness == nil {
				st.Hotness = make(map[string]int64)
			}
			st.Hotness[key.circuit+"/"+strconv.Itoa(key.width)] = h
		}
	}
	if st.ScratchGets > 0 {
		st.ScratchHitRate = float64(st.ScratchGets-st.ScratchNews) / float64(st.ScratchGets)
	}
	return st
}

// Enforce the interface.
var _ Service = (*Local)(nil)

func (l *Local) cache() *memo.Cache {
	if l.Cache == nil {
		return nil
	}
	return l.Cache()
}

// ModuleFor builds the requested RT-library circuit, or an input error.
func ModuleFor(circuit string, width int) (*rtlib.Module, error) {
	if width < 2 || width > MaxWidth {
		return nil, hlerr.Errorf("service.module", "width %d out of range [2,%d]", width, MaxWidth)
	}
	switch circuit {
	case "adder":
		return rtlib.NewAdder(width), nil
	case "carry-select":
		return rtlib.NewCarrySelectAdder(width), nil
	case "multiplier":
		return rtlib.NewMultiplier(width), nil
	case "subtractor":
		return rtlib.NewSubtractor(width), nil
	case "comparator":
		return rtlib.NewComparator(width), nil
	default:
		return nil, hlerr.Errorf("service.module", "unknown circuit %q", circuit)
	}
}

// CheckCycles validates a cycle count against the shared limits.
func CheckCycles(cycles int) error {
	if cycles < 2 || cycles > MaxCycles {
		return hlerr.Errorf("service.cycles", "cycles %d out of range [2,%d]", cycles, MaxCycles)
	}
	return nil
}

// OperandStreams draws the Monte Carlo operand pair for a module.
// Deterministic for a fixed (cycles, width, seed) triple — the basis
// for content-addressing requests by their raw fields. The generator
// is an inlined splitmix64: constant-time seeding and a couple of
// multiplies per word, where math/rand's lagged-Fibonacci source paid
// a ~10µs seed scramble per call — for batch items that setup cost
// dwarfed the 64-lane kernel itself. Every estimation path (single
// handlers, batch groups, rank candidates) funnels through this one
// function, so the streams — whatever their bits — are identical
// everywhere by construction.
func OperandStreams(cycles, width int, seed int64) (as, bs []uint64) {
	mask := bitutil.Mask(width)
	buf := make([]uint64, 2*cycles)
	x := uint64(seed)
	for i := range buf {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		buf[i] = (z ^ (z >> 31)) & mask
	}
	return buf[:cycles:cycles], buf[cycles:]
}

// TruthTable materializes the named boolean function over n variables.
func TruthTable(function string, n int) ([]bool, error) {
	if n < 1 || n > MaxBDDVars {
		return nil, hlerr.Errorf("service.bdd", "vars %d out of range [1,%d]", n, MaxBDDVars)
	}
	tt := make([]bool, 1<<uint(n))
	for i := range tt {
		ones := 0
		for b := 0; b < n; b++ {
			if i>>uint(b)&1 == 1 {
				ones++
			}
		}
		switch function {
		case "parity":
			tt[i] = ones%2 == 1
		case "majority":
			tt[i] = 2*ones > n
		case "and":
			tt[i] = ones == n
		default:
			return nil, hlerr.Errorf("service.bdd", "unknown function %q", function)
		}
	}
	return tt, nil
}

// Simulate runs the gate-level Monte Carlo estimate under b. Requests
// execute over the cached compiled artifact — fused kernel, pooled
// scratch, pre-packed input words, lean accumulation — so steady-state
// serving of a hot netlist does no per-request setup. The power figure
// is bit-identical to the former RunParallel path; the response is lean
// (no per-cycle outputs or group attribution), which the wire type
// never exposed anyway.
func (l *Local) Simulate(_ context.Context, b *budget.Budget, req SimulateRequest) (*sim.Result, error) {
	art, err := l.artifactFor(req.Circuit, req.Width)
	if err != nil {
		return nil, err
	}
	if err := CheckCycles(req.Cycles); err != nil {
		return nil, err
	}
	as, bs := OperandStreams(req.Cycles, req.Width, req.Seed)
	mod := art.mod
	prov := func(c int) []bool { return mod.InputVector(as[c], bs[c]) }
	return l.runArtifact(b, art, prov, req.Cycles, sim.RunOptions{
		Workers: req.Workers,
		Words:   func(c int) uint64 { return mod.InputWord(as[c], bs[c]) },
		Lean:    true,
	})
}

// EvalCand evaluates one rank candidate — (design, workload) pair —
// under b. It is the unit of work cluster mode distributes by key
// ownership, so it must stay a pure function of its arguments.
func (l *Local) EvalCand(b *budget.Budget, name string, req RankRequest) (power float64, degraded bool, err error) {
	if err := CheckCycles(req.Cycles); err != nil {
		return 0, false, err
	}
	as, bs := OperandStreams(req.Cycles, req.Width, req.Seed)
	return l.evalCandStreams(b, name, req.Width, as, bs)
}

// evalCandStreams is EvalCand with the operand streams precomputed, so
// Rank derives them once per request rather than once per candidate.
// Candidates run over the cached compiled artifact with Workers: 1,
// which forces the single-shard path — the caller's budget is charged
// directly, exactly as the former one-shot RunPackedBudget call did —
// while the fused kernel and pooled scratch keep the evaluation free of
// per-candidate setup allocations.
func (l *Local) evalCandStreams(b *budget.Budget, name string, width int, as, bs []uint64) (float64, bool, error) {
	art, err := l.artifactFor(name, width)
	if err != nil {
		return 0, false, err
	}
	mod := art.mod
	prov := func(c int) []bool { return mod.InputVector(as[c], bs[c]) }
	res, err := l.runArtifact(b, art, prov, len(as), sim.RunOptions{
		Workers: 1,
		Words:   func(c int) uint64 { return mod.InputWord(as[c], bs[c]) },
		Lean:    true,
	})
	if err != nil {
		return 0, false, err
	}
	return res.Power(), false, nil
}

// Rank runs one improvement-loop turn over the adder alternatives,
// with per-candidate memoization (when a cache is supplied) and
// optional remote candidate evaluation (when RemoteCand is set). The
// top-level Cached flag is left false — it belongs to the serving
// layer's whole-response cache.
func (l *Local) Rank(ctx context.Context, b *budget.Budget, req RankRequest) (RankResponse, error) {
	if err := CheckCycles(req.Cycles); err != nil {
		return RankResponse{}, err
	}
	as, bs := OperandStreams(req.Cycles, req.Width, req.Seed)
	cand := func(name string) core.Candidate {
		return core.Candidate{
			Name:    name,
			MemoKey: l.Keys.RankCand(name, req),
			Estimator: core.FuncB{
				EstimatorName:  "gate-mc:" + name,
				EstimatorLevel: core.Gate,
				Fn: func(cb *budget.Budget) (float64, bool, error) {
					if l.RemoteCand != nil {
						if est, ok := l.RemoteCand(ctx, name, req); ok {
							return est.Power, est.Degraded, nil
						}
					}
					return l.evalCandStreams(cb, name, req.Width, as, bs)
				},
			},
		}
	}
	ranking := core.RankParallelMemo(b, 1, l.cache(), []core.Candidate{
		cand("adder"), cand("carry-select"), cand("subtractor"),
	})
	best, err := ranking.Best()
	if err != nil {
		// Every candidate failed; surface the first failure so the
		// caller's breaker and retry loop see the real cause (e.g. an
		// injected budget fault), not a generic message.
		return RankResponse{}, ranking[0].Err
	}
	resp := RankResponse{Best: best.Candidate.Name}
	for _, rk := range ranking {
		e := RankedEntry{
			Name:     rk.Candidate.Name,
			Power:    rk.Estimate.Power,
			Model:    rk.Estimate.Model,
			Degraded: rk.Estimate.Degraded,
			Cached:   rk.Cached,
		}
		if rk.Err != nil {
			e.Err = rk.Err.Error()
		}
		resp.Ranking = append(resp.Ranking, e)
	}
	return resp, nil
}

// BDD builds the function's BDD under b and returns the exact node
// count, or — when the request allows it — a sampled estimate after a
// budget trip. tt must be the materialized table of req (callers
// validate and key on it first); a nil tt is materialized here.
func (l *Local) BDD(_ context.Context, b *budget.Budget, req BDDRequest, tt []bool) (BDDOutcome, error) {
	if tt == nil {
		var err error
		if tt, err = TruthTable(req.Function, req.Vars); err != nil {
			return BDDOutcome{}, err
		}
	}
	// The service owns the manager (rather than delegating to
	// bdd.SizeEstimate) so its unique/ITE table traffic can be observed
	// by the serving layer — including partial builds that a budget trip
	// abandoned.
	m := bdd.New(req.Vars)
	m.SetBudget(b)
	root, err := m.BuildTT(tt, req.Vars)
	if l.OnBDDStats != nil {
		l.OnBDDStats(m.Stats())
	}
	switch {
	case err == nil:
		return BDDOutcome{Nodes: m.NodeCount(root)}, nil
	case req.AllowDegraded && errors.Is(err, budget.ErrExceeded):
		return BDDOutcome{Nodes: bdd.SampledSize(tt, req.Vars), Degraded: true}, nil
	default:
		return BDDOutcome{}, err
	}
}

// Predict fits the requested macro-model and compares it against
// budgeted ground truth. The ground-truth trace of the evaluation
// stream is memoized when a cache is supplied (keyed on the module's
// netlist structure and the exact streams), so requesting the four
// model types for one circuit performs one evaluation simulation, not
// four.
func (l *Local) Predict(_ context.Context, b *budget.Budget, req PredictRequest) (PredictResponse, error) {
	art, err := l.artifactFor(req.Circuit, req.Width)
	if err != nil {
		return PredictResponse{}, err
	}
	return l.predictWith(b, art.mod, req)
}

// predictWith is Predict with the module already built, so a batch
// group fitting many models over one circuit constructs it once.
func (l *Local) predictWith(b *budget.Budget, mod *rtlib.Module, req PredictRequest) (PredictResponse, error) {
	if err := CheckCycles(req.Train); err != nil {
		return PredictResponse{}, err
	}
	if err := CheckCycles(req.Eval); err != nil {
		return PredictResponse{}, err
	}
	trainA, trainB := OperandStreams(req.Train, req.Width, req.Seed)
	evalA, evalB := OperandStreams(req.Eval, req.Width, req.Seed+1)
	var m macromodel.Model
	var err error
	switch req.Model {
	case "pfa":
		m, err = macromodel.FitPFA(mod, trainA, trainB, sim.ZeroDelay)
	case "dbt":
		m, err = macromodel.FitDBT(mod, trainA, trainB, sim.ZeroDelay)
	case "bitwise":
		m, err = macromodel.FitBitwise(mod, trainA, trainB, sim.ZeroDelay)
	case "io":
		m, err = macromodel.FitIO(mod, trainA, trainB, sim.ZeroDelay)
	default:
		return PredictResponse{}, hlerr.Errorf("service.predict", "unknown model %q", req.Model)
	}
	if err != nil {
		return PredictResponse{}, err
	}
	truth, err := macromodel.GroundTruthMemo(l.cache(), b, mod, evalA, evalB, sim.ZeroDelay)
	if err != nil {
		return PredictResponse{}, err
	}
	measured := macromodel.MeanAbs(truth)
	predicted := m.PredictStream(evalA, evalB)
	errPct := 0.0
	if measured != 0 {
		errPct = 100 * abs(predicted-measured) / measured
	}
	return PredictResponse{
		Circuit: req.Circuit, Model: req.Model,
		Predicted: predicted, Measured: measured, AbsErrPct: errPct,
	}, nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
