package service

import "hlpower/internal/memo"

// Keys derives the content keys of service requests. The request
// fields fully determine the derived netlist and operand streams
// (ModuleFor, OperandStreams, and TruthTable are deterministic), which
// makes the raw fields a canonical content encoding one level above
// the netlist hash the library layers use.
//
// MaxSteps is the serving layer's per-request step allowance. It is
// budget-relevant — it decides which requests trip or degrade — so two
// servers configured differently never share entries through a
// snapshot, and reconfiguring a server cannot replay results the new
// limits would have rejected. In a cluster every node must therefore
// run the same MaxSteps, or keys (and thus ownership) diverge by
// design: a peer with different limits is a different service.
type Keys struct {
	MaxSteps int64
}

// enc starts an endpoint's content key: a versioned endpoint tag plus
// the budget-relevant server options.
func (k Keys) enc(endpoint string) *memo.Enc {
	e := memo.NewEnc()
	e.String("powerd/" + endpoint + "/v1")
	e.Int64(k.MaxSteps)
	return e
}

// Simulate derives the content key of a simulate request. Workers is
// included because it changes the Shards metadata the response replays
// (the power figures themselves are bit-identical at any worker count).
func (k Keys) Simulate(req SimulateRequest) memo.Key {
	e := k.enc("simulate")
	e.String(req.Circuit)
	e.Int(req.Width)
	e.Int(req.Cycles)
	e.Int64(req.Seed)
	e.Int(req.Workers)
	return e.Key()
}

// Rank is the whole-response content key of a rank request.
func (k Keys) Rank(req RankRequest) memo.Key {
	e := k.enc("rank")
	e.Int(req.Width)
	e.Int(req.Cycles)
	e.Int64(req.Seed)
	return e.Key()
}

// RankCand identifies one candidate's (design, workload) pair, so
// overlapping candidate sets reuse per-candidate simulations even when
// the endpoint key misses — and so cluster mode can route each
// candidate to its key owner.
func (k Keys) RankCand(name string, req RankRequest) *memo.Key {
	e := k.enc("rank-cand")
	e.String(name)
	e.Int(req.Width)
	e.Int(req.Cycles)
	e.Int64(req.Seed)
	key := e.Key()
	return &key
}

// BDD hashes the materialized truth table rather than the function
// name, so any two requests naming the same boolean function share one
// entry ("majority" and "and" over one variable, say). AllowDegraded
// is deliberately excluded: it changes failure handling, not the exact
// result, and degraded outcomes are never stored.
func (k Keys) BDD(tt []bool, vars int) memo.Key {
	e := k.enc("bdd")
	e.Int(vars)
	e.Bools(tt)
	return e.Key()
}

// Group derives the routing key of one batch partition group: the
// group's shared-artifact identity (op plus netlist or function), one
// level above the per-item keys. Cluster mode hashes it onto the ring
// so every item over one netlist lands on the owner of that netlist's
// compiled artifacts and cache entries.
func (k Keys) Group(g BatchGroup) memo.Key {
	e := k.enc("batch-group")
	e.String(g.Op)
	e.String(g.Circuit)
	e.Int(g.Width)
	e.String(g.Function)
	e.Int(g.Vars)
	return e.Key()
}

// Predict derives the content key of a predict request.
func (k Keys) Predict(req PredictRequest) memo.Key {
	e := k.enc("predict")
	e.String(req.Circuit)
	e.Int(req.Width)
	e.String(req.Model)
	e.Int(req.Train)
	e.Int(req.Eval)
	e.Int64(req.Seed)
	return e.Key()
}
