package service

import (
	"context"
	"errors"
	"math"
	"testing"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/memo"
)

func ctxBG() context.Context { return context.Background() }

// Two calls with equal requests must be bit-identical — the property
// cluster mode's whole-request forwarding relies on.
func TestSimulateDeterministic(t *testing.T) {
	var svc Local
	req := SimulateRequest{Circuit: "adder", Width: 6, Cycles: 200, Seed: 11}
	a, err := svc.Simulate(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	b, err := svc.Simulate(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(a.Power()) != math.Float64bits(b.Power()) {
		t.Fatalf("repeat simulate diverged: %v vs %v", a.Power(), b.Power())
	}
	if a.Power() <= 0 {
		t.Fatalf("power %v, want > 0", a.Power())
	}
}

// The power figure must not depend on the worker count — only response
// metadata (Shards) may differ. Cluster nodes with different worker
// configurations would otherwise disagree on forwarded results.
func TestSimulateWorkerCountInvariant(t *testing.T) {
	var svc Local
	base := SimulateRequest{Circuit: "multiplier", Width: 4, Cycles: 160, Seed: 7}
	var powers []float64
	for _, w := range []int{1, 2, 4} {
		req := base
		req.Workers = w
		res, err := svc.Simulate(ctxBG(), nil, req)
		if err != nil {
			t.Fatal(err)
		}
		powers = append(powers, res.Power())
	}
	for i := 1; i < len(powers); i++ {
		if math.Float64bits(powers[i]) != math.Float64bits(powers[0]) {
			t.Fatalf("worker count changed the figure: %v vs %v", powers[i], powers[0])
		}
	}
}

// Malformed requests surface as hlerr input errors from every
// operation, so each transport maps them to its 400-equivalent the
// same way.
func TestInputErrors(t *testing.T) {
	var svc Local
	cases := []struct {
		name string
		call func() error
	}{
		{"unknown circuit", func() error {
			_, err := svc.Simulate(ctxBG(), nil, SimulateRequest{Circuit: "nand-farm", Width: 4, Cycles: 16})
			return err
		}},
		{"width too small", func() error {
			_, err := svc.Simulate(ctxBG(), nil, SimulateRequest{Circuit: "adder", Width: 1, Cycles: 16})
			return err
		}},
		{"width too large", func() error {
			_, err := svc.Simulate(ctxBG(), nil, SimulateRequest{Circuit: "adder", Width: MaxWidth + 1, Cycles: 16})
			return err
		}},
		{"cycles out of range", func() error {
			_, err := svc.Simulate(ctxBG(), nil, SimulateRequest{Circuit: "adder", Width: 4, Cycles: MaxCycles + 1})
			return err
		}},
		{"rank cycles", func() error {
			_, err := svc.Rank(ctxBG(), nil, RankRequest{Width: 4, Cycles: 0})
			return err
		}},
		{"bdd unknown function", func() error {
			_, err := svc.BDD(ctxBG(), nil, BDDRequest{Function: "xor3", Vars: 3}, nil)
			return err
		}},
		{"bdd vars out of range", func() error {
			_, err := svc.BDD(ctxBG(), nil, BDDRequest{Function: "parity", Vars: MaxBDDVars + 1}, nil)
			return err
		}},
		{"predict unknown model", func() error {
			_, err := svc.Predict(ctxBG(), nil, PredictRequest{Circuit: "adder", Width: 4, Model: "oracle", Train: 16, Eval: 16})
			return err
		}},
		{"predict bad circuit", func() error {
			_, err := svc.Predict(ctxBG(), nil, PredictRequest{Circuit: "flux", Width: 4, Model: "pfa", Train: 16, Eval: 16})
			return err
		}},
	}
	for _, tc := range cases {
		err := tc.call()
		if err == nil {
			t.Errorf("%s: no error", tc.name)
			continue
		}
		var ie *hlerr.InputError
		if !errors.As(err, &ie) {
			t.Errorf("%s: %v is not an input error", tc.name, err)
		}
	}
}

// Rank evaluates the fixed candidate set, picks the lowest power, and
// is deterministic across calls.
func TestRankDeterministicAndOrdered(t *testing.T) {
	var svc Local
	req := RankRequest{Width: 5, Cycles: 120, Seed: 3}
	a, err := svc.Rank(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Ranking) != 3 {
		t.Fatalf("ranking has %d entries, want 3", len(a.Ranking))
	}
	for i := 1; i < len(a.Ranking); i++ {
		if a.Ranking[i].Power < a.Ranking[i-1].Power {
			t.Fatalf("ranking not sorted: %v", a.Ranking)
		}
	}
	if a.Best != a.Ranking[0].Name {
		t.Fatalf("best %q != first-ranked %q", a.Best, a.Ranking[0].Name)
	}
	b, err := svc.Rank(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Ranking {
		if math.Float64bits(a.Ranking[i].Power) != math.Float64bits(b.Ranking[i].Power) {
			t.Fatalf("repeat rank diverged at %s", a.Ranking[i].Name)
		}
	}
}

// With a cache supplied, a second Rank replays every candidate from
// the per-candidate entries; the figures stay bit-identical.
func TestRankPerCandidateMemo(t *testing.T) {
	cache := memo.New(memo.Options{MaxBytes: 1 << 20})
	svc := Local{Keys: Keys{MaxSteps: 1 << 40}, Cache: func() *memo.Cache { return cache }}
	req := RankRequest{Width: 4, Cycles: 100, Seed: 9}
	cold, err := svc.Rank(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range cold.Ranking {
		if e.Cached {
			t.Fatalf("cold rank entry %s already cached", e.Name)
		}
	}
	warm, err := svc.Rank(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range warm.Ranking {
		if !e.Cached {
			t.Fatalf("warm rank entry %s not cached", e.Name)
		}
		if math.Float64bits(e.Power) != math.Float64bits(cold.Ranking[i].Power) {
			t.Fatalf("cached figure diverged for %s", e.Name)
		}
	}
}

// The RemoteCand hook substitutes for local evaluation when it answers
// ok=true, and falls back transparently when it declines — the exact
// contract the cluster's candidate routing depends on.
func TestRankRemoteCandHook(t *testing.T) {
	req := RankRequest{Width: 4, Cycles: 100, Seed: 5}
	var baseline Local
	local, err := baseline.Rank(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	localPower := map[string]float64{}
	for _, e := range local.Ranking {
		localPower[e.Name] = e.Power
	}

	// Decline every candidate: results must equal pure-local evaluation.
	declined := 0
	svc := Local{RemoteCand: func(_ context.Context, name string, r RankRequest) (CandEstimate, bool) {
		declined++
		return CandEstimate{}, false
	}}
	viaFallback, err := svc.Rank(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if declined != 3 {
		t.Fatalf("hook consulted %d times, want 3", declined)
	}
	for _, e := range viaFallback.Ranking {
		if math.Float64bits(e.Power) != math.Float64bits(localPower[e.Name]) {
			t.Fatalf("fallback diverged from local for %s", e.Name)
		}
	}

	// Answer one candidate remotely with the true local figure (as a
	// well-behaved peer would): ranking must be unchanged and the hook's
	// answer used verbatim.
	svc = Local{RemoteCand: func(_ context.Context, name string, r RankRequest) (CandEstimate, bool) {
		if name == "subtractor" {
			return CandEstimate{Power: localPower[name]}, true
		}
		return CandEstimate{}, false
	}}
	viaRemote, err := svc.Rank(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if viaRemote.Best != local.Best {
		t.Fatalf("remote answer changed best: %q vs %q", viaRemote.Best, local.Best)
	}
	for _, e := range viaRemote.Ranking {
		if math.Float64bits(e.Power) != math.Float64bits(localPower[e.Name]) {
			t.Fatalf("remote-answered ranking diverged for %s", e.Name)
		}
	}
}

// BDD returns the exact node count when the budget allows, a sampled
// degraded estimate when the request permits it, and a budget error
// otherwise. Degraded outcomes are flagged so callers never cache them.
func TestBDDDegradedContract(t *testing.T) {
	var svc Local
	req := BDDRequest{Function: "majority", Vars: 9}
	exact, err := svc.BDD(ctxBG(), nil, req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if exact.Degraded || exact.Nodes <= 0 {
		t.Fatalf("exact build: %+v", exact)
	}

	tight := func() *budget.Budget {
		return budget.New(budget.WithMaxNodes(4), budget.WithCheckInterval(1))
	}
	if _, err := svc.BDD(ctxBG(), tight(), req, nil); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("strict request under tight budget: %v, want ErrExceeded", err)
	}
	req.AllowDegraded = true
	deg, err := svc.BDD(ctxBG(), tight(), req, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded || deg.Nodes <= 0 {
		t.Fatalf("degraded build: %+v", deg)
	}
}

// Predict's error metric is consistent: AbsErrPct recomputes from the
// predicted and measured figures it reports.
func TestPredictSelfConsistent(t *testing.T) {
	var svc Local
	resp, err := svc.Predict(ctxBG(), nil, PredictRequest{
		Circuit: "adder", Width: 4, Model: "pfa", Train: 64, Eval: 64, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Measured <= 0 {
		t.Fatalf("measured %v, want > 0", resp.Measured)
	}
	want := 100 * math.Abs(resp.Predicted-resp.Measured) / resp.Measured
	if math.Abs(resp.AbsErrPct-want) > 1e-9 {
		t.Fatalf("abs_err_pct %v inconsistent with predicted/measured (want %v)", resp.AbsErrPct, want)
	}
}

// Content keys separate everything budget- or result-relevant: every
// request field, the endpoint, and the server's step allowance.
func TestKeysSensitivity(t *testing.T) {
	k := Keys{MaxSteps: 1000}
	base := SimulateRequest{Circuit: "adder", Width: 4, Cycles: 64, Seed: 1, Workers: 2}
	keys := map[memo.Key]string{k.Simulate(base): "base"}
	add := func(name string, key memo.Key) {
		if prev, dup := keys[key]; dup {
			t.Errorf("%s collides with %s", name, prev)
		}
		keys[key] = name
	}
	for _, m := range []struct {
		name string
		req  SimulateRequest
	}{
		{"circuit", SimulateRequest{Circuit: "subtractor", Width: 4, Cycles: 64, Seed: 1, Workers: 2}},
		{"width", SimulateRequest{Circuit: "adder", Width: 5, Cycles: 64, Seed: 1, Workers: 2}},
		{"cycles", SimulateRequest{Circuit: "adder", Width: 4, Cycles: 65, Seed: 1, Workers: 2}},
		{"seed", SimulateRequest{Circuit: "adder", Width: 4, Cycles: 64, Seed: 2, Workers: 2}},
		{"workers", SimulateRequest{Circuit: "adder", Width: 4, Cycles: 64, Seed: 1, Workers: 3}},
	} {
		add("simulate/"+m.name, k.Simulate(m.req))
	}
	// A reconfigured server is a different service: MaxSteps is keyed.
	add("maxsteps", Keys{MaxSteps: 2000}.Simulate(base))

	rr := RankRequest{Width: 4, Cycles: 64, Seed: 1}
	add("rank", k.Rank(rr))
	add("rank-cand/adder", *k.RankCand("adder", rr))
	add("rank-cand/subtractor", *k.RankCand("subtractor", rr))

	// Same (tt, vars) → same key regardless of the function name that
	// produced it; different vars → different key.
	ttMaj, err := TruthTable("majority", 1)
	if err != nil {
		t.Fatal(err)
	}
	ttAnd, err := TruthTable("and", 1)
	if err != nil {
		t.Fatal(err)
	}
	if k.BDD(ttMaj, 1) != k.BDD(ttAnd, 1) {
		t.Error("equivalent truth tables keyed differently")
	}
	add("bdd", k.BDD(ttMaj, 1))

	add("predict", k.Predict(PredictRequest{Circuit: "adder", Width: 4, Model: "pfa", Train: 16, Eval: 16, Seed: 1}))
	add("predict/model", k.Predict(PredictRequest{Circuit: "adder", Width: 4, Model: "dbt", Train: 16, Eval: 16, Seed: 1}))
}
