package service

import (
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/sim"
)

// waitFor polls until cond holds or the deadline lapses — promotion
// builds run on a background goroutine, so tests observing them must
// wait for the swap-in rather than assume it.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestArtifactSingleflight: concurrent first requests for one shape
// must compile it exactly once — the losing racers block on the
// singleflight entry instead of duplicating construction+fusion work —
// and every caller gets the same artifact.
func TestArtifactSingleflight(t *testing.T) {
	var svc Local
	const racers = 16
	arts := make([]*artifact, racers)
	errs := make([]error, racers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(racers)
	for i := 0; i < racers; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			arts[i], errs[i] = svc.artifactFor("multiplier", 8)
		}(i)
	}
	start.Done()
	done.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if arts[i] != arts[0] {
			t.Fatalf("racer %d got a different artifact", i)
		}
	}
	if got := svc.artifactBuilds.Load(); got != 1 {
		t.Fatalf("%d concurrent cold requests compiled %d times, want exactly 1", racers, got)
	}
	// A different shape is a fresh build; repeating it is not.
	if _, err := svc.artifactFor("multiplier", 6); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.artifactFor("multiplier", 6); err != nil {
		t.Fatal(err)
	}
	if got := svc.artifactBuilds.Load(); got != 2 {
		t.Fatalf("artifactBuilds = %d, want 2", got)
	}
	// Malformed requests never leave entries behind.
	if _, err := svc.artifactFor("no-such-circuit", 8); err == nil {
		t.Fatal("unknown circuit accepted")
	}
	if _, err := svc.artifactFor("adder", MaxWidth+1); err == nil {
		t.Fatal("oversized width accepted")
	}
	svc.artMu.RLock()
	n := len(svc.artifacts)
	svc.artMu.RUnlock()
	if n != 2 {
		t.Fatalf("cache holds %d entries, want 2 (invalid requests must not insert)", n)
	}
}

// TestPromotionLifecycle drives an artifact across the hotness
// threshold and pins the whole ladder: fused serves until the
// background build lands, the swap-in changes only the kernel tag —
// the power figures stay Float64bits-identical — and the stats
// counters tell the story.
func TestPromotionLifecycle(t *testing.T) {
	svc := Local{CodegenAfter: 3}
	req := SimulateRequest{Circuit: "multiplier", Width: 6, Cycles: 400, Seed: 7}

	var fusedPower, fusedCap float64
	for i := 0; i < 2; i++ {
		res, err := svc.Simulate(ctxBG(), nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kernel != sim.KernelFused {
			t.Fatalf("run %d: Kernel=%q, want fused below threshold", i, res.Kernel)
		}
		fusedPower, fusedCap = res.Power(), res.SwitchedCap
	}
	st := svc.KernelStats()
	if st.Hotness["multiplier/6"] != 2 {
		t.Fatalf("Hotness = %v, want multiplier/6: 2", st.Hotness)
	}
	if st.Promotions != 0 || st.CodegenArtifacts != 0 {
		t.Fatalf("premature promotion: %+v", st)
	}

	// Third serve crosses the threshold; the build is asynchronous.
	if _, err := svc.Simulate(ctxBG(), nil, req); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "promotion", func() bool { return svc.KernelStats().Promotions == 1 })

	res, err := svc.Simulate(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != sim.KernelCodegen {
		t.Fatalf("post-promotion Kernel=%q, want codegen", res.Kernel)
	}
	if math.Float64bits(res.Power()) != math.Float64bits(fusedPower) ||
		math.Float64bits(res.SwitchedCap) != math.Float64bits(fusedCap) {
		t.Fatalf("promotion changed the numbers: %v/%v vs %v/%v",
			res.Power(), res.SwitchedCap, fusedPower, fusedCap)
	}

	st = svc.KernelStats()
	if st.CodegenBuilds != 1 || st.CodegenFailures != 0 || st.CodegenArtifacts != 1 {
		t.Fatalf("stats after promotion: %+v", st)
	}
	if st.Tiers["fused"] < 3 || st.Tiers["codegen"] < 1 {
		t.Fatalf("tier counters %v, want ≥3 fused and ≥1 codegen", st.Tiers)
	}
}

// TestPromotionDisabled: a negative threshold turns the ladder off —
// no hotness accounting, no builds, fused forever.
func TestPromotionDisabled(t *testing.T) {
	svc := Local{CodegenAfter: -1}
	req := SimulateRequest{Circuit: "adder", Width: 6, Cycles: 300, Seed: 1}
	for i := 0; i < DefaultCodegenAfter+4; i++ {
		res, err := svc.Simulate(ctxBG(), nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kernel != sim.KernelFused {
			t.Fatalf("Kernel=%q with promotion disabled", res.Kernel)
		}
	}
	st := svc.KernelStats()
	if st.CodegenBuilds != 0 || len(st.Hotness) != 0 {
		t.Fatalf("disabled promotion still accounted: %+v", st)
	}
}

// TestPromotionBuildFailure: a failed background build must degrade
// the artifact to the fused tier permanently and silently — requests
// keep succeeding, the build is never retried, and only the failure
// counter records it.
func TestPromotionBuildFailure(t *testing.T) {
	svc := Local{CodegenAfter: 1}
	svc.buildCodegen = func(*sim.Compiled) error { return errors.New("injected build failure") }
	req := SimulateRequest{Circuit: "subtractor", Width: 5, Cycles: 250, Seed: 3}

	if _, err := svc.Simulate(ctxBG(), nil, req); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "failed build", func() bool { return svc.KernelStats().CodegenFailures == 1 })

	for i := 0; i < 5; i++ {
		res, err := svc.Simulate(ctxBG(), nil, req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kernel != sim.KernelFused {
			t.Fatalf("Kernel=%q after failed build, want permanent fused fallback", res.Kernel)
		}
	}
	st := svc.KernelStats()
	if st.CodegenBuilds != 1 {
		t.Fatalf("failed build retried: builds=%d", st.CodegenBuilds)
	}
	if st.Promotions != 0 || st.CodegenArtifacts != 0 {
		t.Fatalf("failed build counted as promotion: %+v", st)
	}
}

// TestFaultArmedNeverPromotes: chaos-degraded requests are invisible
// to the promotion ladder — they advance no hotness, trigger no build,
// and after a healthy promotion they are still served by the fused
// tier, so injected faults always exercise the unpromoted path.
func TestFaultArmedNeverPromotes(t *testing.T) {
	svc := Local{CodegenAfter: 1}
	req := SimulateRequest{Circuit: "comparator", Width: 6, Cycles: 300, Seed: 9}
	// Armed but never tripping: FailAtCheck far beyond the run's checks.
	armed := func() *budget.Budget {
		return budget.New(budget.WithFaultPlan(budget.FaultPlan{FailAtCheck: 1 << 40}))
	}

	for i := 0; i < 4; i++ {
		res, err := svc.Simulate(ctxBG(), armed(), req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Kernel != sim.KernelFused {
			t.Fatalf("fault-armed Kernel=%q, want fused", res.Kernel)
		}
	}
	st := svc.KernelStats()
	if st.CodegenBuilds != 0 || len(st.Hotness) != 0 {
		t.Fatalf("fault-armed requests advanced promotion: %+v", st)
	}

	// One healthy request promotes (threshold 1) …
	if _, err := svc.Simulate(ctxBG(), nil, req); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "promotion", func() bool { return svc.KernelStats().Promotions == 1 })
	res, err := svc.Simulate(ctxBG(), nil, req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Kernel != sim.KernelCodegen {
		t.Fatalf("healthy Kernel=%q, want codegen", res.Kernel)
	}
	// … and a fault-armed request still refuses the promoted tier.
	faulted, err := svc.Simulate(ctxBG(), armed(), req)
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Kernel != sim.KernelFused {
		t.Fatalf("fault-armed post-promotion Kernel=%q, want fused", faulted.Kernel)
	}
	if math.Float64bits(faulted.Power()) != math.Float64bits(res.Power()) {
		t.Fatalf("tier changed the numbers: %v vs %v", faulted.Power(), res.Power())
	}
}
