package memmodel

import (
	"math"
	"testing"
)

func TestMemoryValidation(t *testing.T) {
	p := DefaultMemoryParams()
	if _, err := Memory(p, 10, -1); err == nil {
		t.Error("negative k must fail")
	}
	if _, err := Memory(p, 10, 11); err == nil {
		t.Error("k > n must fail")
	}
}

func TestMemoryComponentsPositive(t *testing.T) {
	p := DefaultMemoryParams()
	b, err := Memory(p, 12, 6)
	if err != nil {
		t.Fatal(err)
	}
	for name, v := range map[string]float64{
		"cells": b.Cells, "rowdec": b.RowDecoder, "wordline": b.WordLine,
		"colsel": b.ColumnSel, "sense": b.SenseAmps,
	} {
		if v <= 0 {
			t.Errorf("%s = %v, want positive", name, v)
		}
	}
	if b.Total() <= b.Cells {
		t.Error("total must exceed any single component")
	}
}

func TestMemoryCellFormula(t *testing.T) {
	// Check the exact §II-C1 formula for the cell term.
	p := DefaultMemoryParams()
	n, k := 10, 4
	b, err := Memory(p, n, k)
	if err != nil {
		t.Fatal(err)
	}
	rows := math.Pow(2, float64(n-k))
	cols := math.Pow(2, float64(k))
	want := 0.5 * p.Vdd * p.Vswing * p.Freq * cols * (p.CInt + rows*p.CTr)
	if math.Abs(b.Cells-want) > 1e-9 {
		t.Errorf("cells = %v, want %v", b.Cells, want)
	}
}

func TestMemorySweepUShape(t *testing.T) {
	// Total power vs k must have an interior optimum: extremes (single
	// column / single row) are both worse than the best split.
	p := DefaultMemoryParams()
	n := 14
	sweep, err := MemorySweep(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep) != n+1 {
		t.Fatalf("sweep length %d, want %d", len(sweep), n+1)
	}
	best, err := OptimalK(p, n)
	if err != nil {
		t.Fatal(err)
	}
	if best == 0 || best == n {
		t.Errorf("optimal k = %d should be interior (0 < k < %d)", best, n)
	}
	if sweep[best].Total() >= sweep[0].Total() || sweep[best].Total() >= sweep[n].Total() {
		t.Error("interior optimum should beat both extremes")
	}
}

func TestMemoryMonotoneCellGrowth(t *testing.T) {
	// At fixed n the cell-array term grows with k (more columns swing).
	p := DefaultMemoryParams()
	prev := -1.0
	for k := 0; k <= 10; k++ {
		b, err := Memory(p, 10, k)
		if err != nil {
			t.Fatal(err)
		}
		if b.Cells <= prev {
			t.Errorf("cell power not increasing at k=%d", k)
		}
		prev = b.Cells
	}
}

func TestClockTree(t *testing.T) {
	if ClockTree(1, 1, 1, 1, 0, 10) != 0 {
		t.Error("no flip-flops should cost nothing")
	}
	small := ClockTree(1, 1, 1, 1, 64, 10)
	big := ClockTree(1, 1, 1, 1, 4096, 10)
	if big <= small {
		t.Error("bigger clock trees must cost more")
	}
	// V² scaling.
	if r := ClockTree(2, 1, 1, 1, 64, 10) / small; math.Abs(r-4) > 1e-9 {
		t.Errorf("clock power should scale V²: ratio %v", r)
	}
}

func TestInterconnectOffChipLogic(t *testing.T) {
	if Interconnect(1, 1, 10, 2, 32, 0.5) <= 0 {
		t.Error("interconnect power must be positive")
	}
	if OffChip(1, 1, 50, 0, 0.5) != 0 {
		t.Error("zero pins should cost nothing")
	}
	if RandomLogic(1, 1, 3, 1000, 0.2) <= RandomLogic(1, 1, 3, 100, 0.2) {
		t.Error("more gates must cost more")
	}
}

func TestProcessorBreakdown(t *testing.T) {
	c := ProcessorConfig{
		Mem: DefaultMemoryParams(), MemBits: 13, MemSplitK: 6,
		NumFF: 2048, DieSide: 10, LogicGates: 50000, Activity: 0.2,
		BusWidth: 32, BusLength: 8, Pins: 64, Vdd: 1, Freq: 1,
	}
	b, err := Processor(c)
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() <= 0 {
		t.Fatal("total must be positive")
	}
	// In a memory-heavy design the memory should dominate random logic's
	// per-gate share only if configured so; here just check all parts
	// contribute.
	for name, v := range map[string]float64{
		"mem": b.Memory, "clock": b.Clock, "logic": b.Logic,
		"bus": b.Bus, "pads": b.Pads,
	} {
		if v <= 0 {
			t.Errorf("%s component = %v, want positive", name, v)
		}
	}
	// Bad memory split propagates the error.
	c.MemSplitK = 99
	if _, err := Processor(c); err == nil {
		t.Error("expected error for invalid memory split")
	}
}
