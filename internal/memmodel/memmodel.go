// Package memmodel implements the Liu–Svensson parametric power models
// [42]: closed-form expressions for the power of on-chip SRAM (cell
// array, row decoder, word-line drive, column select, sense amplifiers),
// the H-tree clock network, global interconnect, off-chip drivers, and
// random logic, each as a function of organization parameters rather
// than a netlist. The SRAM model exposes the classic aspect-ratio
// tradeoff: a 2^n-bit array split into 2^(n-k) rows × 2^k columns.
package memmodel

import (
	"fmt"
	"math"
)

// MemoryParams are the technology constants of the SRAM model, in
// normalized capacitance/voltage units (absolute values are irrelevant
// to the shape of the tradeoffs; see DESIGN.md).
type MemoryParams struct {
	Vdd    float64 // supply voltage
	Vswing float64 // bit-line swing (read)
	Freq   float64 // access frequency

	CInt      float64 // wiring capacitance per cell along a row (bit-line pitch)
	CTr       float64 // drain capacitance per cell on a bit line
	CWordCell float64 // word-line capacitance per cell
	CDecNode  float64 // decoder internal capacitance per address bit per row
	CColMux   float64 // column-mux capacitance per column
	ESense    float64 // energy per sense amplifier + readout per access
}

// DefaultMemoryParams returns a reasonable normalized parameter set.
func DefaultMemoryParams() MemoryParams {
	return MemoryParams{
		Vdd: 1, Vswing: 0.2, Freq: 1,
		CInt: 1.0, CTr: 0.5, CWordCell: 1.0,
		CDecNode: 2.0, CColMux: 1.5, ESense: 20,
	}
}

// MemoryBreakdown is the per-component power of one SRAM organization,
// following the five parts enumerated in §II-C1.
type MemoryBreakdown struct {
	N, K       int // 2^n bits as 2^(n-k) rows × 2^k columns
	Cells      float64
	RowDecoder float64
	WordLine   float64
	ColumnSel  float64
	SenseAmps  float64
}

// Total returns the summed access power.
func (b MemoryBreakdown) Total() float64 {
	return b.Cells + b.RowDecoder + b.WordLine + b.ColumnSel + b.SenseAmps
}

// Memory evaluates the SRAM model for a 2^n-bit array with 2^k columns.
func Memory(p MemoryParams, n, k int) (MemoryBreakdown, error) {
	if k < 0 || k > n {
		return MemoryBreakdown{}, fmt.Errorf("memmodel: k=%d out of range [0,%d]", k, n)
	}
	rows := math.Pow(2, float64(n-k))
	cols := math.Pow(2, float64(k))
	b := MemoryBreakdown{N: n, K: k}
	// 1) Cell array: every cell on the selected row drives bit or /bit
	// through the swing voltage: 0.5·V·Vswing·2^k·(Cint + 2^(n-k)·Ctr).
	b.Cells = 0.5 * p.Vdd * p.Vswing * p.Freq * cols * (p.CInt + rows*p.CTr)
	// 2) Row decoder: n-k address bits into 2^(n-k) rows; activity is
	// dominated by the predecoder fan-in.
	b.RowDecoder = 0.5 * p.Vdd * p.Vdd * p.Freq * float64(n-k) * p.CDecNode * math.Sqrt(rows)
	// 3) Driving the selected word line: 2^k cells hang off it.
	b.WordLine = 0.5 * p.Vdd * p.Vdd * p.Freq * cols * p.CWordCell
	// 4) Column select: a 2^k-to-word multiplexer.
	b.ColumnSel = 0.5 * p.Vdd * p.Vdd * p.Freq * cols * p.CColMux
	// 5) Sense amplifiers and read-out inverters for the output word.
	b.SenseAmps = p.Freq * p.ESense
	return b, nil
}

// MemorySweep evaluates every legal column split for a 2^n-bit array.
func MemorySweep(p MemoryParams, n int) ([]MemoryBreakdown, error) {
	out := make([]MemoryBreakdown, 0, n+1)
	for k := 0; k <= n; k++ {
		b, err := Memory(p, n, k)
		if err != nil {
			return nil, err
		}
		out = append(out, b)
	}
	return out, nil
}

// OptimalK returns the column split minimizing total access power.
func OptimalK(p MemoryParams, n int) (int, error) {
	sweep, err := MemorySweep(p, n)
	if err != nil {
		return 0, err
	}
	best := 0
	for k, b := range sweep {
		if b.Total() < sweep[best].Total() {
			best = k
		}
	}
	return best, nil
}

// ClockTree models an H-tree clock network driving nFF flip-flops over a
// die of the given normalized side length: the wire capacitance doubles
// per level while segment length halves.
func ClockTree(vdd, freq, cWirePerUnit, cFF float64, nFF int, side float64) float64 {
	if nFF <= 0 {
		return 0
	}
	levels := int(math.Ceil(math.Log2(float64(nFF))))
	var wire float64
	segLen := side
	for l := 0; l < levels; l++ {
		wire += math.Pow(2, float64(l)) * segLen * cWirePerUnit
		segLen /= 2
	}
	load := float64(nFF) * cFF
	// Clock switches twice per cycle.
	return vdd * vdd * freq * (wire + load)
}

// Interconnect models a global bus: length·cPerUnit·width·activity.
func Interconnect(vdd, freq, length, cPerUnit float64, width int, activity float64) float64 {
	return 0.5 * vdd * vdd * freq * length * cPerUnit * float64(width) * activity
}

// OffChip models pad drivers: large fixed capacitance per pin.
func OffChip(vdd, freq, cPad float64, pins int, activity float64) float64 {
	return 0.5 * vdd * vdd * freq * cPad * float64(pins) * activity
}

// RandomLogic is the gate-equivalent logic estimate used for the glue
// parts of the processor model.
func RandomLogic(vdd, freq, cGate float64, gates int, activity float64) float64 {
	return 0.5 * vdd * vdd * freq * cGate * float64(gates) * activity
}

// ProcessorConfig aggregates a Liu–Svensson-style whole-chip estimate.
type ProcessorConfig struct {
	Mem        MemoryParams
	MemBits    int // memory size as 2^n bits
	MemSplitK  int
	NumFF      int
	DieSide    float64
	LogicGates int
	Activity   float64
	BusWidth   int
	BusLength  float64
	Pins       int
	Vdd, Freq  float64
}

// ProcessorBreakdown is the whole-chip component split.
type ProcessorBreakdown struct {
	Memory, Clock, Logic, Bus, Pads float64
}

// Total sums the components.
func (b ProcessorBreakdown) Total() float64 {
	return b.Memory + b.Clock + b.Logic + b.Bus + b.Pads
}

// Processor evaluates the whole-chip parametric model.
func Processor(c ProcessorConfig) (ProcessorBreakdown, error) {
	mem, err := Memory(c.Mem, c.MemBits, c.MemSplitK)
	if err != nil {
		return ProcessorBreakdown{}, err
	}
	return ProcessorBreakdown{
		Memory: mem.Total(),
		Clock:  ClockTree(c.Vdd, c.Freq, 1.0, 1.0, c.NumFF, c.DieSide),
		Logic:  RandomLogic(c.Vdd, c.Freq, 3.0, c.LogicGates, c.Activity),
		Bus:    Interconnect(c.Vdd, c.Freq, c.BusLength, 2.0, c.BusWidth, c.Activity),
		Pads:   OffChip(c.Vdd, c.Freq, 50.0, c.Pins, c.Activity/2),
	}, nil
}
