package vsched

import (
	"math"
	"testing"

	"hlpower/internal/cdfg"
)

func firTree() *cdfg.Graph {
	return cdfg.FIR([]int64{3, 5, 7, 2})
}

func TestDelayEnergyScaling(t *testing.T) {
	lib := DefaultLibrary()
	// Reference level: scale 1.
	if d := lib.Delay(cdfg.Mul, 0); d != cdfg.DefaultDelay(cdfg.Mul) {
		t.Errorf("reference delay = %d", d)
	}
	// Lower voltages: slower, cheaper.
	for l := 1; l < len(lib.Voltages); l++ {
		if lib.Delay(cdfg.Mul, l) < lib.Delay(cdfg.Mul, l-1) {
			t.Errorf("delay must grow as voltage drops (level %d)", l)
		}
		if lib.Energy(cdfg.Mul, l) >= lib.Energy(cdfg.Mul, l-1) {
			t.Errorf("energy must shrink as voltage drops (level %d)", l)
		}
	}
	// Energy scales exactly with V².
	e0 := lib.Energy(cdfg.Add, 0)
	e2 := lib.Energy(cdfg.Add, 2)
	want := e0 * (2.4 * 2.4) / (5.0 * 5.0)
	if math.Abs(e2-want) > 1e-12 {
		t.Errorf("energy scaling: %v, want %v", e2, want)
	}
}

func TestTreeValidation(t *testing.T) {
	// Poly2Direct shares x2 only through inputs; its op fanouts are 1 —
	// actually s1 feeds y only; check it is accepted.
	g := cdfg.Poly2Direct()
	if _, _, err := treeOf(g); err != nil {
		t.Errorf("Poly2Direct should be a tree: %v", err)
	}
	// Build a DAG: one op feeding two consumers.
	d := cdfg.New()
	x := d.Input("x")
	y := d.Input("y")
	shared := d.Op(cdfg.Add, x, y)
	a := d.Op(cdfg.Mul, shared, x)
	b := d.Op(cdfg.Mul, shared, y)
	d.MarkOutput(d.Op(cdfg.Add, a, b))
	if _, _, err := treeOf(d); err == nil {
		t.Error("shared operation should be rejected")
	}
	// Multiple outputs rejected.
	m := cdfg.New()
	xx := m.Input("x")
	o1 := m.Op(cdfg.Add, xx, xx)
	o2 := m.Op(cdfg.Mul, xx, xx)
	m.MarkOutput(o1)
	m.MarkOutput(o2)
	if _, _, err := treeOf(m); err == nil {
		t.Error("two outputs should be rejected")
	}
}

func TestTightLatencyForcesFullVoltage(t *testing.T) {
	g := firTree()
	lib := DefaultLibrary()
	cp := g.CriticalPath(nil)
	asg, err := Schedule(g, lib, cp)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Time > cp {
		t.Errorf("assignment time %d exceeds latency %d", asg.Time, cp)
	}
	// At the critical-path latency every critical op must be at the top
	// level; the energy equals (or nearly equals) the full-voltage run
	// since off-critical slack is minimal in this tree.
	full := FullVoltageEnergy(g, lib)
	if asg.Energy > full {
		t.Errorf("scheduled energy %v exceeds full-voltage %v", asg.Energy, full)
	}
}

func TestRelaxedLatencySavesEnergy(t *testing.T) {
	g := firTree()
	lib := DefaultLibrary()
	cp := g.CriticalPath(nil)
	tight, err := Schedule(g, lib, cp)
	if err != nil {
		t.Fatal(err)
	}
	relaxed, err := Schedule(g, lib, cp*3)
	if err != nil {
		t.Fatal(err)
	}
	if relaxed.Energy >= tight.Energy {
		t.Errorf("relaxed energy %v should beat tight %v", relaxed.Energy, tight.Energy)
	}
	full := FullVoltageEnergy(g, lib)
	if relaxed.Energy >= full {
		t.Errorf("multi-voltage energy %v should beat single-supply %v", relaxed.Energy, full)
	}
	// With generous latency some ops should sit at a reduced level.
	low := 0
	for _, l := range relaxed.Level {
		if l > 0 {
			low++
		}
	}
	if low == 0 {
		t.Error("no operation was assigned a reduced voltage")
	}
}

func TestInfeasibleLatency(t *testing.T) {
	g := firTree()
	lib := DefaultLibrary()
	if _, err := Schedule(g, lib, 0); err == nil {
		t.Error("zero latency must be infeasible")
	}
}

func TestCurveMonotone(t *testing.T) {
	g := firTree()
	lib := DefaultLibrary()
	times, energies, err := Curve(g, lib)
	if err != nil {
		t.Fatal(err)
	}
	if len(times) < 2 {
		t.Fatalf("curve has %d points, want a real tradeoff", len(times))
	}
	for i := 1; i < len(energies); i++ {
		if energies[i] >= energies[i-1] {
			t.Errorf("curve not strictly decreasing at %d", i)
		}
		if times[i] <= times[i-1] {
			t.Errorf("curve times not increasing at %d", i)
		}
	}
}

func TestLevelShifterCostMatters(t *testing.T) {
	// With enormous shifter energy, mixed-voltage solutions are
	// suppressed: at a mildly relaxed latency the schedule should prefer
	// uniform levels (fewer shifters) even if some slack remains.
	g := firTree()
	lib := DefaultLibrary()
	lib.LevelShifterEnergy = 1000
	cp := g.CriticalPath(nil)
	asg, err := Schedule(g, lib, cp)
	if err != nil {
		t.Fatal(err)
	}
	// Count voltage-differing tree edges: should be zero.
	_, children, err := treeOf(g)
	if err != nil {
		t.Fatal(err)
	}
	for id, kids := range children {
		if asg.Level[id] < 0 {
			continue
		}
		for _, k := range kids {
			if asg.Level[k] >= 0 && asg.Level[k] != asg.Level[id] {
				t.Fatalf("edge %d->%d crosses voltages despite huge shifter cost", k, id)
			}
		}
	}
}

func TestParetoPruning(t *testing.T) {
	pts := []point{
		{time: 3, energy: 10},
		{time: 3, energy: 8},
		{time: 5, energy: 9}, // dominated
		{time: 6, energy: 4},
	}
	out := pareto(pts)
	if len(out) != 2 {
		t.Fatalf("pareto kept %d points, want 2", len(out))
	}
	if out[0].time != 3 || out[0].energy != 8 || out[1].time != 6 {
		t.Errorf("pareto = %+v", out)
	}
}
