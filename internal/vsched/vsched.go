// Package vsched implements the multiple supply-voltage scheduling of
// Chang and Pedram [73] (§III-F): each operation of a tree-structured
// CDFG is assigned one of a fixed set of supply voltages so that total
// energy is minimized under a latency constraint. The algorithm computes
// a Pareto power-delay curve per node by a bottom-up dynamic program
// (inserting level-shifter costs where a child's voltage differs from
// its parent's) and recovers the assignment by a preorder traversal from
// the chosen root point.
package vsched

import (
	"fmt"
	"math"
	"sort"

	"hlpower/internal/cdfg"
)

// Voltage is one available supply level.
type Voltage struct {
	Name string
	V    float64
}

// DefaultVoltages returns the classic 5 V / 3.3 V / 2.4 V set of the
// multi-Vdd literature.
func DefaultVoltages() []Voltage {
	return []Voltage{{"5.0V", 5.0}, {"3.3V", 3.3}, {"2.4V", 2.4}}
}

// Library defines per-kind base delay and energy at the reference
// voltage (the highest), scaled per level: energy ∝ V², delay ∝
// V/(V−Vt)² (normalized so the reference level has scale 1).
type Library struct {
	Voltages []Voltage
	Vt       float64 // threshold voltage for the delay model
	// LevelShifterEnergy is charged per tree edge whose endpoint
	// voltages differ; LevelShifterDelay adds to the child's path.
	LevelShifterEnergy float64
	LevelShifterDelay  int
	BaseDelay          func(cdfg.OpKind) int
	BaseEnergy         func(cdfg.OpKind) float64
}

// DefaultLibrary returns the standard library over the default voltages.
func DefaultLibrary() *Library {
	return &Library{
		Voltages:           DefaultVoltages(),
		Vt:                 0.8,
		LevelShifterEnergy: 0.3,
		LevelShifterDelay:  0,
		BaseDelay:          cdfg.DefaultDelay,
		BaseEnergy:         cdfg.DefaultEnergy,
	}
}

// Delay returns the integer control-step delay of kind at level l.
func (lib *Library) Delay(k cdfg.OpKind, l int) int {
	base := lib.BaseDelay(k)
	if base == 0 {
		return 0
	}
	ref := lib.Voltages[0].V
	v := lib.Voltages[l].V
	scale := (v / ref) * math.Pow((ref-lib.Vt)/(v-lib.Vt), 2)
	return int(math.Ceil(float64(base) * scale))
}

// Energy returns the per-execution energy of kind at level l.
func (lib *Library) Energy(k cdfg.OpKind, l int) float64 {
	ref := lib.Voltages[0].V
	v := lib.Voltages[l].V
	return lib.BaseEnergy(k) * (v * v) / (ref * ref)
}

// point is one Pareto-optimal (time, energy) tradeoff of a subtree.
type point struct {
	time    int
	energy  float64
	level   int   // this node's voltage level
	choices []int // chosen point index per child (operation children only)
}

// Assignment is the result of scheduling: per-node voltage level
// (operations only; -1 elsewhere), total energy, and completion time.
type Assignment struct {
	Level  []int
	Energy float64
	Time   int
}

// Schedule computes the minimum-energy voltage assignment of a
// tree-structured CDFG meeting the latency bound (in control steps).
// It returns an error if the graph is not a tree over its operations or
// the latency is infeasible even at full voltage.
func Schedule(g *cdfg.Graph, lib *Library, latency int) (*Assignment, error) {
	root, children, err := treeOf(g)
	if err != nil {
		return nil, err
	}
	curves := make(map[int][]point)
	var build func(int) []point
	build = func(id int) []point {
		if pts, ok := curves[id]; ok {
			return pts
		}
		var kids []int
		for _, a := range children[id] {
			if g.Nodes[a].Kind.IsOperation() {
				kids = append(kids, a)
			}
		}
		kidCurves := make([][]point, len(kids))
		for i, k := range kids {
			kidCurves[i] = build(k)
		}
		var pts []point
		for l := range lib.Voltages {
			d := lib.Delay(g.Nodes[id].Kind, l)
			e := lib.Energy(g.Nodes[id].Kind, l)
			// Cross product of child choices, pruned to Pareto points.
			combos := [][]int{{}}
			for range kids {
				var next [][]int
				for _, c := range combos {
					for pi := range kidCurves[len(c)] {
						next = append(next, append(append([]int{}, c...), pi))
					}
				}
				combos = next
			}
			for _, combo := range combos {
				start := 0
				energy := e
				for i, pi := range combo {
					kp := kidCurves[i][pi]
					t := kp.time
					if kp.level != l {
						energy += lib.LevelShifterEnergy
						t += lib.LevelShifterDelay
					}
					if t > start {
						start = t
					}
					energy += kp.energy
				}
				pts = append(pts, point{
					time:    start + d,
					energy:  energy,
					level:   l,
					choices: combo,
				})
			}
		}
		pts = pareto(pts)
		curves[id] = pts
		return pts
	}
	rootPts := build(root)
	// Pick the cheapest point meeting the latency.
	best := -1
	for i, p := range rootPts {
		if p.time > latency {
			continue
		}
		if best < 0 || p.energy < rootPts[best].energy {
			best = i
		}
	}
	if best < 0 {
		return nil, fmt.Errorf("vsched: latency %d infeasible (fastest is %d)", latency, rootPts[0].time)
	}
	// Preorder traversal recovering levels.
	asg := &Assignment{Level: make([]int, len(g.Nodes))}
	for i := range asg.Level {
		asg.Level[i] = -1
	}
	var walk func(id, pi int)
	walk = func(id, pi int) {
		p := curves[id][pi]
		asg.Level[id] = p.level
		var kids []int
		for _, a := range children[id] {
			if g.Nodes[a].Kind.IsOperation() {
				kids = append(kids, a)
			}
		}
		for i, k := range kids {
			walk(k, p.choices[i])
		}
	}
	walk(root, best)
	asg.Energy = rootPts[best].energy
	asg.Time = rootPts[best].time
	return asg, nil
}

// pareto keeps the non-dominated points sorted by time.
func pareto(pts []point) []point {
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].time != pts[j].time {
			return pts[i].time < pts[j].time
		}
		return pts[i].energy < pts[j].energy
	})
	var out []point
	bestE := math.Inf(1)
	for _, p := range pts {
		if p.energy < bestE {
			out = append(out, p)
			bestE = p.energy
		}
	}
	return out
}

// Curve exposes the root's Pareto (time, energy) tradeoff — the set of
// solutions the designer chooses from — by sweeping the latency bound
// from the full-voltage critical path until the energy stops improving.
func Curve(g *cdfg.Graph, lib *Library) ([]int, []float64, error) {
	minLat := g.CriticalPath(lib.BaseDelay)
	var times []int
	var energies []float64
	prev := math.Inf(1)
	for lat := minLat; lat <= minLat*4+8; lat++ {
		a, err := Schedule(g, lib, lat)
		if err != nil {
			continue
		}
		if a.Energy < prev-1e-12 {
			times = append(times, lat)
			energies = append(energies, a.Energy)
			prev = a.Energy
		}
	}
	if len(times) == 0 {
		return nil, nil, fmt.Errorf("vsched: no feasible schedule found")
	}
	return times, energies, nil
}

// FullVoltageEnergy is the single-supply baseline.
func FullVoltageEnergy(g *cdfg.Graph, lib *Library) float64 {
	var e float64
	for _, n := range g.Nodes {
		if n.Kind.IsOperation() {
			e += lib.Energy(n.Kind, 0)
		}
	}
	return e
}

// treeOf verifies every operation node has at most one operation
// consumer and returns the root (single output) and the child lists.
func treeOf(g *cdfg.Graph) (int, [][]int, error) {
	if len(g.Outputs) != 1 {
		return 0, nil, fmt.Errorf("vsched: need exactly one output, have %d", len(g.Outputs))
	}
	fanout := make([]int, len(g.Nodes))
	children := make([][]int, len(g.Nodes))
	for _, n := range g.Nodes {
		if !n.Kind.IsOperation() {
			continue
		}
		for _, a := range n.Args {
			children[n.ID] = append(children[n.ID], a)
			if g.Nodes[a].Kind.IsOperation() {
				fanout[a]++
			}
		}
	}
	for id, n := range g.Nodes {
		if n.Kind.IsOperation() && fanout[id] > 1 {
			return 0, nil, fmt.Errorf("vsched: node %d has fanout %d; CDFG is not a tree", id, fanout[id])
		}
	}
	root := g.Outputs[0]
	if !g.Nodes[root].Kind.IsOperation() {
		return 0, nil, fmt.Errorf("vsched: output %d is not an operation", root)
	}
	return root, children, nil
}
