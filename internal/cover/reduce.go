package cover

import "math/bits"

// maxExpandBits caps the dimension a cube may reach during greedy
// expansion: validating a d-dimensional cube costs 2^d membership
// probes, so 12 bounds the per-cube work at 4096 lookups regardless of
// how large the input is.
const maxExpandBits = 12

// ReduceGreedy is the heuristic minimizer the budgeted entry points
// fall back to when exact Quine–McCluskey is out of reach: for each
// uncovered on-set minterm it greedily frees one variable at a time,
// keeping an expansion whenever every minterm of the grown cube stays
// inside on ∪ dc. The result is always a valid cover of the on-set
// (worst case the raw minterm cover), produced in
// O(|on|·n·2^maxExpandBits) bounded work with no budget interaction —
// it must still run after a budget has tripped.
func ReduceGreedy(on, dc []uint64, n int) *Cover {
	fullMask := uint64(1)<<uint(n) - 1
	if n >= 64 {
		fullMask = ^uint64(0)
	}
	allowed := make(map[uint64]bool, len(on)+len(dc))
	for _, m := range on {
		allowed[m&fullMask] = true
	}
	for _, m := range dc {
		allowed[m&fullMask] = true
	}
	cv := &Cover{NumVars: n}
	covered := make(map[uint64]bool, len(on))
	for _, m0 := range on {
		m := m0 & fullMask
		if covered[m] {
			continue
		}
		c := Cube{Mask: fullMask, Val: m}
		for i := 0; i < n; i++ {
			bit := uint64(1) << uint(i)
			if c.Mask&bit == 0 {
				continue
			}
			cand := Cube{Mask: c.Mask &^ bit, Val: c.Val &^ bit}
			if cubeAllowed(cand, fullMask, allowed) {
				c = cand
			}
		}
		cv.Cubes = append(cv.Cubes, c)
		for _, m2 := range on {
			if c.Contains(m2 & fullMask) {
				covered[m2&fullMask] = true
			}
		}
	}
	sortCubes(cv.Cubes)
	return cv
}

// cubeAllowed reports whether every minterm of c lies in allowed,
// declining cubes wider than maxExpandBits outright.
func cubeAllowed(c Cube, fullMask uint64, allowed map[uint64]bool) bool {
	free := fullMask &^ c.Mask
	if bits.OnesCount64(free) > maxExpandBits {
		return false
	}
	for sub := free; ; sub = (sub - 1) & free {
		if !allowed[(c.Val&c.Mask)|sub] {
			return false
		}
		if sub == 0 {
			return true
		}
	}
}
