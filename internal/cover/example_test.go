package cover_test

import (
	"fmt"

	"hlpower/internal/cover"
)

func ExampleFactor() {
	// f = ab + ac + ad over four variables (a = x0).
	cv := &cover.Cover{NumVars: 4, Cubes: []cover.Cube{
		{Mask: 0b0011, Val: 0b0011},
		{Mask: 0b0101, Val: 0b0101},
		{Mask: 0b1001, Val: 0b1001},
	}}
	e := cover.Factor(cv)
	fmt.Println(e)
	fmt.Println("two-level literals:", cv.Literals(), "factored:", e.Literals())
	// Output:
	// x0·(x1 + x2 + x3)
	// two-level literals: 6 factored: 4
}

func ExampleMinimize() {
	// The on-set of x0 over two variables: {01, 11} -> single literal.
	cv, err := cover.Minimize([]uint64{0b01, 0b11}, 2)
	if err != nil {
		panic(err)
	}
	fmt.Println(cv.Cubes[0].Pattern(2))
	// Output:
	// 1-
}
