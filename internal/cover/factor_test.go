package cover

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFactorEquivalentToCover(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(5)
		var ms []uint64
		for i := uint64(0); i < 1<<uint(n); i++ {
			if rng.Float64() < 0.4 {
				ms = append(ms, i)
			}
		}
		cv, err := Minimize(ms, n)
		if err != nil {
			return false
		}
		e := Factor(cv)
		for i := uint64(0); i < 1<<uint(n); i++ {
			if e.Eval(i) != cv.Eval(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFactorReducesLiterals(t *testing.T) {
	// f = ab + ac + ad factors to a(b+c+d): 6 -> 4 literals.
	cv := &Cover{NumVars: 4, Cubes: []Cube{
		{Mask: 0b0011, Val: 0b0011},
		{Mask: 0b0101, Val: 0b0101},
		{Mask: 0b1001, Val: 0b1001},
	}}
	e := Factor(cv)
	if cv.Literals() != 6 {
		t.Fatalf("two-level literals = %d, want 6", cv.Literals())
	}
	if e.Literals() != 4 {
		t.Errorf("factored literals = %d, want 4 (%s)", e.Literals(), e)
	}
	for i := uint64(0); i < 16; i++ {
		if e.Eval(i) != cv.Eval(i) {
			t.Fatalf("factored form differs at %d", i)
		}
	}
}

func TestFactorDegenerate(t *testing.T) {
	empty := Factor(&Cover{NumVars: 3})
	if empty.Kind != ExprConst || empty.Positive {
		t.Error("empty cover should factor to constant 0")
	}
	taut := Factor(&Cover{NumVars: 3, Cubes: []Cube{{}}})
	if taut.Kind != ExprConst || !taut.Positive {
		t.Error("tautology should factor to constant 1")
	}
	single := Factor(&Cover{NumVars: 3, Cubes: []Cube{{Mask: 0b1, Val: 0b1}}})
	if single.Kind != ExprLit {
		t.Errorf("single literal cover should stay a literal, got %s", single)
	}
}

func TestFactorString(t *testing.T) {
	cv := &Cover{NumVars: 2, Cubes: []Cube{
		{Mask: 0b11, Val: 0b01},
	}}
	e := Factor(cv)
	if e.String() == "" {
		t.Error("expression should render")
	}
}

func TestFactorNeverIncreasesLiterals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		var ms []uint64
		for i := uint64(0); i < 1<<uint(n); i++ {
			if rng.Float64() < 0.5 {
				ms = append(ms, i)
			}
		}
		cv, err := Minimize(ms, n)
		if err != nil {
			return false
		}
		return Factor(cv).Literals() <= cv.Literals()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
