package cover

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCubeContains(t *testing.T) {
	c := Cube{Mask: 0b011, Val: 0b001} // x0=1, x1=0, x2 free
	if !c.Contains(0b001) || !c.Contains(0b101) {
		t.Error("cube should contain 001 and 101")
	}
	if c.Contains(0b011) || c.Contains(0b000) {
		t.Error("cube should not contain 011 or 000")
	}
}

func TestCubeCovers(t *testing.T) {
	big := Cube{Mask: 0b001, Val: 0b001}   // x0=1
	small := Cube{Mask: 0b011, Val: 0b001} // x0=1, x1=0
	if !big.Covers(small) {
		t.Error("x0 should cover x0·x1'")
	}
	if small.Covers(big) {
		t.Error("x0·x1' should not cover x0")
	}
	if !big.Covers(big) {
		t.Error("cube should cover itself")
	}
}

func TestCubePattern(t *testing.T) {
	c := Cube{Mask: 0b011, Val: 0b001}
	if got := c.Pattern(3); got != "10-" {
		t.Errorf("Pattern = %q, want \"10-\"", got)
	}
}

func TestDimensionAndLiterals(t *testing.T) {
	c := Cube{Mask: 0b0101, Val: 0b0001}
	if c.Literals() != 2 {
		t.Errorf("Literals = %d, want 2", c.Literals())
	}
	if c.Dimension(4) != 2 {
		t.Errorf("Dimension = %d, want 2", c.Dimension(4))
	}
}

func TestPrimesXor(t *testing.T) {
	// XOR has no merging: primes are exactly the two minterms.
	primes := Primes([]uint64{0b01, 0b10}, 2)
	if len(primes) != 2 {
		t.Fatalf("xor primes = %v, want 2 minterms", primes)
	}
	for _, p := range primes {
		if p.Literals() != 2 {
			t.Errorf("xor prime %v should have 2 literals", p)
		}
	}
}

func TestPrimesAbsorption(t *testing.T) {
	// f = a (on-set {10,11} over 2 vars, a = x1): single prime x1.
	primes := Primes([]uint64{0b10, 0b11}, 2)
	if len(primes) != 1 {
		t.Fatalf("primes = %v, want 1", primes)
	}
	if primes[0].Mask != 0b10 || primes[0].Val != 0b10 {
		t.Errorf("prime = %+v, want mask=10 val=10", primes[0])
	}
}

func TestPrimesTautology(t *testing.T) {
	ms := []uint64{0, 1, 2, 3}
	primes := Primes(ms, 2)
	if len(primes) != 1 || primes[0].Mask != 0 {
		t.Fatalf("tautology primes = %v, want single empty cube", primes)
	}
}

func TestEssentialPrimes(t *testing.T) {
	// On-set {0,1,2,3,7}: primes are 0-- and -11, both essential.
	ms := []uint64{0, 1, 2, 3, 7}
	primes := Primes(ms, 3)
	ess := EssentialPrimes(primes, ms)
	if len(ess) != 2 {
		t.Fatalf("essential primes = %v, want 2", ess)
	}
	for _, e := range ess {
		unique := false
		for _, m := range ms {
			if !e.Contains(m) {
				continue
			}
			others := 0
			for _, p := range primes {
				if p != e && p.Contains(m) {
					others++
				}
			}
			if others == 0 {
				unique = true
			}
		}
		if !unique {
			t.Errorf("prime %v marked essential but uniquely covers nothing", e)
		}
	}
}

func TestCyclicCoverHasNoEssentials(t *testing.T) {
	// {0,1,2,5,6,7} over 3 vars is the classic cyclic core: every
	// minterm is covered by exactly two primes, so none is essential —
	// and Minimize must still produce a correct (greedy) cover.
	ms := []uint64{0, 1, 2, 5, 6, 7}
	primes := Primes(ms, 3)
	if len(primes) != 6 {
		t.Fatalf("cyclic core primes = %d, want 6", len(primes))
	}
	if ess := EssentialPrimes(primes, ms); len(ess) != 0 {
		t.Fatalf("cyclic core should have no essentials, got %v", ess)
	}
	cv, err := Minimize(ms, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 8; i++ {
		on := false
		for _, m := range ms {
			if m == i {
				on = true
			}
		}
		if cv.Eval(i) != on {
			t.Fatalf("cyclic cover wrong at %d", i)
		}
	}
	if len(cv.Cubes) > 4 {
		t.Errorf("cyclic cover used %d cubes, want <=4 (optimum is 3)", len(cv.Cubes))
	}
}

func TestMinimizeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(6)
		var ms []uint64
		tt := make([]bool, 1<<uint(n))
		for i := range tt {
			if rng.Float64() < 0.4 {
				tt[i] = true
				ms = append(ms, uint64(i))
			}
		}
		cv, err := Minimize(ms, n)
		if err != nil {
			t.Fatal(err)
		}
		for i := range tt {
			if cv.Eval(uint64(i)) != tt[i] {
				t.Fatalf("trial %d: minimized cover differs at input %d", trial, i)
			}
		}
		// Minimized cover must not exceed the minterm cover in cubes.
		if len(cv.Cubes) > len(ms) {
			t.Fatalf("trial %d: minimization grew the cover", trial)
		}
	}
}

func TestMinimizeEmptyAndFull(t *testing.T) {
	cv, err := Minimize(nil, 4)
	if err != nil || len(cv.Cubes) != 0 {
		t.Errorf("empty on-set: %v, %v", cv, err)
	}
	var all []uint64
	for i := uint64(0); i < 16; i++ {
		all = append(all, i)
	}
	cv, err = Minimize(all, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Cubes) != 1 || cv.Cubes[0].Literals() != 0 {
		t.Errorf("tautology should minimize to one empty cube, got %v", cv.Cubes)
	}
}

func TestMinimizeTooManyVars(t *testing.T) {
	if _, err := Minimize([]uint64{1}, 30); err == nil {
		t.Error("expected error for too many variables")
	}
}

func TestMinimizeReducesLiterals(t *testing.T) {
	// f = a over 4 vars: 8 minterms collapse to one 1-literal cube.
	var ms []uint64
	for i := uint64(0); i < 16; i++ {
		if i&1 == 1 {
			ms = append(ms, i)
		}
	}
	cv, err := Minimize(ms, 4)
	if err != nil {
		t.Fatal(err)
	}
	if cv.Literals() != 1 {
		t.Errorf("literals = %d, want 1", cv.Literals())
	}
}

func TestCoverEvalFromTruthTable(t *testing.T) {
	tt := []bool{false, true, true, false} // xor
	cv := FromTruthTable(tt, 2)
	for i := range tt {
		if cv.Eval(uint64(i)) != tt[i] {
			t.Errorf("eval mismatch at %d", i)
		}
	}
	ms := cv.Minterms()
	if len(ms) != 2 {
		t.Errorf("minterms = %v", ms)
	}
}

func TestPrimesCoverOnSetProperty(t *testing.T) {
	// Every minterm must be covered by at least one prime; no prime may
	// cover an off-set point.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		onset := make(map[uint64]bool)
		var ms []uint64
		for i := uint64(0); i < 1<<uint(n); i++ {
			if rng.Float64() < 0.5 {
				onset[i] = true
				ms = append(ms, i)
			}
		}
		primes := Primes(ms, n)
		for _, m := range ms {
			covered := false
			for _, p := range primes {
				if p.Contains(m) {
					covered = true
					break
				}
			}
			if !covered {
				return false
			}
		}
		for i := uint64(0); i < 1<<uint(n); i++ {
			if onset[i] {
				continue
			}
			for _, p := range primes {
				if p.Contains(i) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMinimizeDCExpandsThroughDontCares(t *testing.T) {
	// on = {00}, dc = {01, 10, 11} over 2 vars: with DCs the whole space
	// is coverable by the empty cube (constant 1).
	cv, err := MinimizeDC([]uint64{0}, []uint64{1, 2, 3}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(cv.Cubes) != 1 || cv.Cubes[0].Literals() != 0 {
		t.Errorf("expected constant-1 cover, got %v", cv.Cubes)
	}
	// Without DCs the same on-set needs 2 literals.
	plain, err := Minimize([]uint64{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Literals() != 2 {
		t.Errorf("plain cover literals = %d, want 2", plain.Literals())
	}
}

func TestMinimizeDCCoversOnSetOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 3 + rng.Intn(4)
		var on, dc []uint64
		offSet := make(map[uint64]bool)
		for i := uint64(0); i < 1<<uint(n); i++ {
			switch rng.Intn(3) {
			case 0:
				on = append(on, i)
			case 1:
				dc = append(dc, i)
			default:
				offSet[i] = true
			}
		}
		if len(on) == 0 {
			continue
		}
		cv, err := MinimizeDC(on, dc, n)
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range on {
			if !cv.Eval(m) {
				t.Fatalf("trial %d: on-set minterm %d uncovered", trial, m)
			}
		}
		for m := range offSet {
			if cv.Eval(m) {
				t.Fatalf("trial %d: off-set minterm %d covered", trial, m)
			}
		}
		// DC cover never uses more literals than the DC-free cover.
		plain, err := Minimize(on, n)
		if err != nil {
			t.Fatal(err)
		}
		if cv.Literals() > plain.Literals() {
			t.Fatalf("trial %d: DC cover (%d lits) worse than plain (%d)",
				trial, cv.Literals(), plain.Literals())
		}
	}
}

func TestMinimizeDCEmpty(t *testing.T) {
	cv, err := MinimizeDC(nil, []uint64{1, 2}, 3)
	if err != nil || len(cv.Cubes) != 0 {
		t.Errorf("empty on-set should give empty cover: %v %v", cv, err)
	}
}
