package cover

import (
	"fmt"

	"hlpower/internal/budget"
)

// MinimizeTTBudget minimizes the function given by its truth table —
// the adapter for re-synthesis passes that start from an extracted
// table rather than a minterm list. Budget-governed like
// MinimizeBudget: when the budget trips mid-minimization the result
// degrades to the greedy reducer and degraded is true.
func MinimizeTTBudget(b *budget.Budget, tt []bool, n int) (*Cover, bool, error) {
	if len(tt) != 1<<uint(n) {
		return nil, false, fmt.Errorf("cover: truth table size %d, want %d", len(tt), 1<<uint(n))
	}
	var on []uint64
	for i, v := range tt {
		if v {
			on = append(on, uint64(i))
		}
	}
	return MinimizeBudget(b, on, n)
}
