// Package cover implements two-level logic minimization over cube covers:
// Quine–McCluskey prime-implicant generation, essential-prime extraction,
// and greedy cover minimization. It is the stand-in for SIS/espresso that
// the complexity-based area models of §II-B2 (Nemani–Najm) regress
// against, and the source of minterm counts for the Landman–Rabaey
// controller power model.
package cover

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
)

// Cube is a product term over n variables: for each variable i, if mask
// bit i is set the literal is present with polarity given by bit i of
// val; otherwise the variable is a don't-care in this cube.
type Cube struct {
	Mask uint64 // which variables appear
	Val  uint64 // their required values (only bits under Mask are meaningful)
}

// Literals returns the number of literals in the cube.
func (c Cube) Literals() int { return bits.OnesCount64(c.Mask) }

// Dimension returns the number of free variables of the cube within an
// n-variable space; a cube of dimension d covers 2^d minterms. This is
// the "size" used by the Nemani–Najm linear measure.
func (c Cube) Dimension(n int) int { return n - c.Literals() }

// Contains reports whether the cube covers the minterm m.
func (c Cube) Contains(m uint64) bool { return m&c.Mask == c.Val&c.Mask }

// Covers reports whether cube c covers every minterm of cube d.
func (c Cube) Covers(d Cube) bool {
	// Every literal of c must be a literal of d with the same polarity.
	if c.Mask&^d.Mask != 0 {
		return false
	}
	return (c.Val^d.Val)&c.Mask&d.Mask == 0
}

// String renders the cube as a positional pattern over n variables,
// LSB-first: '0', '1', or '-'.
func (c Cube) String() string { return c.Pattern(64) }

// Pattern renders the first n variables of the cube.
func (c Cube) Pattern(n int) string {
	b := make([]byte, n)
	for i := 0; i < n; i++ {
		switch {
		case c.Mask>>uint(i)&1 == 0:
			b[i] = '-'
		case c.Val>>uint(i)&1 == 1:
			b[i] = '1'
		default:
			b[i] = '0'
		}
	}
	return string(b)
}

// Cover is a sum of cubes over NumVars variables.
type Cover struct {
	NumVars int
	Cubes   []Cube
}

// Eval evaluates the cover at the given input assignment.
func (cv *Cover) Eval(input uint64) bool {
	for _, c := range cv.Cubes {
		if c.Contains(input) {
			return true
		}
	}
	return false
}

// Literals returns the total literal count of the cover, the classic
// two-level area proxy.
func (cv *Cover) Literals() int {
	total := 0
	for _, c := range cv.Cubes {
		total += c.Literals()
	}
	return total
}

// Minterms enumerates the on-set of the cover (feasible for small NumVars).
func (cv *Cover) Minterms() []uint64 {
	var out []uint64
	for m := uint64(0); m < 1<<uint(cv.NumVars); m++ {
		if cv.Eval(m) {
			out = append(out, m)
		}
	}
	return out
}

// FromMinterms returns the canonical minterm cover of the given on-set.
func FromMinterms(minterms []uint64, n int) *Cover {
	mask := uint64(1)<<uint(n) - 1
	if n >= 64 {
		mask = ^uint64(0)
	}
	cv := &Cover{NumVars: n}
	for _, m := range minterms {
		cv.Cubes = append(cv.Cubes, Cube{Mask: mask, Val: m & mask})
	}
	return cv
}

// FromTruthTable returns the minterm cover of a truth table (bit j of the
// function for assignment j).
func FromTruthTable(tt []bool, n int) *Cover {
	var ms []uint64
	for i, v := range tt {
		if v {
			ms = append(ms, uint64(i))
		}
	}
	return FromMinterms(ms, n)
}

// Primes computes all prime implicants of the function whose on-set is
// the given minterm list, by iterated pairwise merging (Quine–McCluskey).
// Feasible up to ~14 variables for dense functions.
func Primes(minterms []uint64, n int) []Cube {
	return primesB(nil, minterms, n)
}

// primesB is Primes charging the budget one step per candidate merge
// pair; exhaustion unwinds through the hlerr panic channel to the
// nearest Recover boundary (MinimizeBudget/MinimizeDCBudget).
func primesB(b *budget.Budget, minterms []uint64, n int) []Cube {
	if len(minterms) == 0 {
		return nil
	}
	fullMask := uint64(1)<<uint(n) - 1
	current := make(map[Cube]bool)
	for _, m := range minterms {
		current[Cube{Mask: fullMask, Val: m & fullMask}] = true
	}
	var primes []Cube
	for len(current) > 0 {
		merged := make(map[Cube]bool)
		used := make(map[Cube]bool)
		cubes := make([]Cube, 0, len(current))
		for c := range current {
			cubes = append(cubes, c)
		}
		// Group by mask so only same-shape cubes merge.
		byMask := make(map[uint64][]Cube)
		for _, c := range cubes {
			byMask[c.Mask] = append(byMask[c.Mask], c)
		}
		for _, group := range byMask {
			for i := 0; i < len(group); i++ {
				b.Check(int64(len(group) - i - 1))
				for j := i + 1; j < len(group); j++ {
					d := (group[i].Val ^ group[j].Val) & group[i].Mask
					if bits.OnesCount64(d) == 1 {
						nc := Cube{Mask: group[i].Mask &^ d, Val: group[i].Val &^ d}
						nc.Val &= nc.Mask
						merged[nc] = true
						used[group[i]] = true
						used[group[j]] = true
					}
				}
			}
		}
		for _, c := range cubes {
			if !used[c] {
				primes = append(primes, c)
			}
		}
		current = merged
	}
	// Canonicalize Val under Mask and deduplicate.
	seen := make(map[Cube]bool)
	var out []Cube
	for _, p := range primes {
		p.Val &= p.Mask
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	sortCubes(out)
	return out
}

func sortCubes(cs []Cube) {
	sort.Slice(cs, func(i, j int) bool {
		if cs[i].Mask != cs[j].Mask {
			return cs[i].Mask < cs[j].Mask
		}
		return cs[i].Val < cs[j].Val
	})
}

// EssentialPrimes returns the primes that are the unique cover of at
// least one minterm, together with the set of minterms each essential
// prime distinctly covers.
func EssentialPrimes(primes []Cube, minterms []uint64) []Cube {
	var essential []Cube
	chosen := make(map[Cube]bool)
	for _, m := range minterms {
		var only *Cube
		count := 0
		for i := range primes {
			if primes[i].Contains(m) {
				count++
				only = &primes[i]
				if count > 1 {
					break
				}
			}
		}
		if count == 1 && !chosen[*only] {
			chosen[*only] = true
			essential = append(essential, *only)
		}
	}
	sortCubes(essential)
	return essential
}

// Minimize returns a small prime cover of the on-set: essential primes
// first, then greedy set cover over the remaining minterms (largest
// coverage, ties broken by fewer literals).
func Minimize(minterms []uint64, n int) (*Cover, error) {
	return minimizeCore(nil, minterms, nil, n)
}

// MinimizeDC minimizes with a don't-care set: primes are generated over
// the union of the on-set and DC minterms (so cubes may expand through
// don't-cares), but only the on-set must be covered. This is how the
// controller synthesis exploits unused state codes.
func MinimizeDC(on, dc []uint64, n int) (*Cover, error) {
	return minimizeCore(nil, on, dc, n)
}

// minimizeCore is the exact minimizer behind Minimize, MinimizeDC, and
// their budgeted variants. With a non-nil budget, prime generation and
// the set-cover loop charge steps and unwind via the hlerr panic
// channel on exhaustion.
func minimizeCore(b *budget.Budget, on, dc []uint64, n int) (*Cover, error) {
	if n > 24 {
		return nil, fmt.Errorf("cover: %d variables too many for exact minimization", n)
	}
	cv := &Cover{NumVars: n}
	if len(on) == 0 {
		return cv, nil
	}
	seen := make(map[uint64]bool, len(on)+len(dc))
	combined := make([]uint64, 0, len(on)+len(dc))
	for _, m := range on {
		if !seen[m] {
			seen[m] = true
			combined = append(combined, m)
		}
	}
	for _, m := range dc {
		if !seen[m] {
			seen[m] = true
			combined = append(combined, m)
		}
	}
	primes := primesB(b, combined, n)
	uncovered := make(map[uint64]bool, len(on))
	for _, m := range on {
		uncovered[m] = true
	}
	take := func(c Cube) {
		cv.Cubes = append(cv.Cubes, c)
		for m := range uncovered {
			if c.Contains(m) {
				delete(uncovered, m)
			}
		}
	}
	for _, e := range EssentialPrimes(primes, on) {
		take(e)
	}
	for len(uncovered) > 0 {
		best := -1
		bestCover := 0
		for i, p := range primes {
			b.Check(int64(len(uncovered)))
			cnt := 0
			for m := range uncovered {
				if p.Contains(m) {
					cnt++
				}
			}
			if cnt > bestCover || (cnt == bestCover && cnt > 0 && best >= 0 && p.Literals() < primes[best].Literals()) {
				bestCover = cnt
				best = i
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("cover: %d minterms uncoverable (internal error)", len(uncovered))
		}
		take(primes[best])
	}
	sortCubes(cv.Cubes)
	return cv, nil
}

// MinimizeBudget minimizes the on-set under a resource budget,
// degrading gracefully: if exact Quine–McCluskey exhausts the budget
// (or the variable count is beyond exact reach), the greedy cube
// reducer takes over and the result is flagged degraded. The returned
// cover is always a valid cover of the on-set.
func MinimizeBudget(b *budget.Budget, minterms []uint64, n int) (*Cover, bool, error) {
	return MinimizeDCBudget(b, minterms, nil, n)
}

// MinimizeDCBudget is MinimizeBudget with a don't-care set.
func MinimizeDCBudget(b *budget.Budget, on, dc []uint64, n int) (*Cover, bool, error) {
	if n < 0 || n > 63 {
		return nil, false, hlerr.Errorf("cover.MinimizeDCBudget",
			"variable count %d out of range [0,63]", n)
	}
	if n <= 24 {
		cv, err := func() (cv *Cover, err error) {
			defer hlerr.Recover(&err)
			return minimizeCore(b, on, dc, n)
		}()
		if err == nil {
			return cv, false, nil
		}
		if !errors.Is(err, budget.ErrExceeded) {
			return nil, false, err
		}
	}
	return ReduceGreedy(on, dc, n), true, nil
}
