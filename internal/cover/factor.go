package cover

import (
	"fmt"
	"sort"
	"strings"
)

// Algebraic factoring (§III-H, after Minato [98]): turn a two-level
// cover into a factored multilevel expression with fewer literals —
// the link from symbolic covers to multilevel logic optimization. The
// algorithm is classical quick factoring: recursively divide by the
// most frequent literal.

// ExprKind discriminates factored-expression nodes.
type ExprKind uint8

// Expression node kinds.
const (
	ExprLit ExprKind = iota
	ExprAnd
	ExprOr
	ExprConst
)

// Expr is a factored Boolean expression over the cover's variables.
type Expr struct {
	Kind     ExprKind
	Var      int  // ExprLit: variable index
	Positive bool // ExprLit: polarity; ExprConst: value
	Args     []*Expr
}

// Literals counts literal leaves — the factored-form area proxy.
func (e *Expr) Literals() int {
	switch e.Kind {
	case ExprLit:
		return 1
	case ExprConst:
		return 0
	default:
		n := 0
		for _, a := range e.Args {
			n += a.Literals()
		}
		return n
	}
}

// Eval evaluates the expression on an input assignment.
func (e *Expr) Eval(input uint64) bool {
	switch e.Kind {
	case ExprConst:
		return e.Positive
	case ExprLit:
		bit := input>>uint(e.Var)&1 == 1
		return bit == e.Positive
	case ExprAnd:
		for _, a := range e.Args {
			if !a.Eval(input) {
				return false
			}
		}
		return true
	default: // ExprOr
		for _, a := range e.Args {
			if a.Eval(input) {
				return true
			}
		}
		return false
	}
}

// String renders the expression with x<i> and ' for complements.
func (e *Expr) String() string {
	switch e.Kind {
	case ExprConst:
		if e.Positive {
			return "1"
		}
		return "0"
	case ExprLit:
		s := fmt.Sprintf("x%d", e.Var)
		if !e.Positive {
			s += "'"
		}
		return s
	case ExprAnd:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			p := a.String()
			if a.Kind == ExprOr {
				p = "(" + p + ")"
			}
			parts[i] = p
		}
		return strings.Join(parts, "·")
	default:
		parts := make([]string, len(e.Args))
		for i, a := range e.Args {
			parts[i] = a.String()
		}
		return strings.Join(parts, " + ")
	}
}

// Factor produces a factored expression equivalent to the cover.
func Factor(cv *Cover) *Expr {
	return factorCubes(cv.Cubes)
}

func constExpr(v bool) *Expr { return &Expr{Kind: ExprConst, Positive: v} }

func litExpr(v int, pos bool) *Expr { return &Expr{Kind: ExprLit, Var: v, Positive: pos} }

// cubeExpr renders a single cube as an AND of literals.
func cubeExpr(c Cube) *Expr {
	var lits []*Expr
	for v := 0; v < 64; v++ {
		if c.Mask>>uint(v)&1 == 0 {
			continue
		}
		lits = append(lits, litExpr(v, c.Val>>uint(v)&1 == 1))
	}
	switch len(lits) {
	case 0:
		return constExpr(true)
	case 1:
		return lits[0]
	default:
		return &Expr{Kind: ExprAnd, Args: lits}
	}
}

func factorCubes(cubes []Cube) *Expr {
	switch len(cubes) {
	case 0:
		return constExpr(false)
	case 1:
		return cubeExpr(cubes[0])
	}
	// Most frequent literal (variable, polarity).
	type lit struct {
		v   int
		pos bool
	}
	counts := make(map[lit]int)
	for _, c := range cubes {
		for v := 0; v < 64; v++ {
			if c.Mask>>uint(v)&1 == 0 {
				continue
			}
			counts[lit{v, c.Val>>uint(v)&1 == 1}]++
		}
	}
	var best lit
	bestCount := 0
	// Deterministic tie-break: sort keys.
	keys := make([]lit, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].v != keys[j].v {
			return keys[i].v < keys[j].v
		}
		return keys[i].pos && !keys[j].pos
	})
	for _, k := range keys {
		if counts[k] > bestCount {
			best, bestCount = k, counts[k]
		}
	}
	if bestCount <= 1 {
		// No sharing: plain sum of cubes.
		args := make([]*Expr, len(cubes))
		for i, c := range cubes {
			args[i] = cubeExpr(c)
		}
		return &Expr{Kind: ExprOr, Args: args}
	}
	// Divide: F = l·Q + R.
	var quotient, remainder []Cube
	bit := uint64(1) << uint(best.v)
	for _, c := range cubes {
		hasLit := c.Mask&bit != 0 && (c.Val&bit != 0) == best.pos
		if hasLit {
			q := Cube{Mask: c.Mask &^ bit, Val: c.Val &^ bit}
			quotient = append(quotient, q)
		} else {
			remainder = append(remainder, c)
		}
	}
	qe := factorCubes(quotient)
	le := litExpr(best.v, best.pos)
	var prod *Expr
	if qe.Kind == ExprConst && qe.Positive {
		prod = le
	} else {
		prod = &Expr{Kind: ExprAnd, Args: []*Expr{le, qe}}
	}
	if len(remainder) == 0 {
		return prod
	}
	re := factorCubes(remainder)
	return &Expr{Kind: ExprOr, Args: []*Expr{prod, re}}
}
