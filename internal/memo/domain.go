package memo

import (
	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

// HashNetlist writes the structural identity of a netlist: every gate's
// kind, fanin list, delay, reset value, and accounting group, the
// primary input and output lists, and the capacitance model. Signal
// names are deliberately excluded — they label results but never change
// them — so two structurally identical circuits share a key regardless
// of naming. A netlist carrying a sticky construction error encodes the
// error text, keeping malformed circuits distinct from well-formed ones
// (and from each other) for negative caching.
func HashNetlist(e *Enc, n *logic.Netlist) {
	e.String("netlist/v1")
	if err := n.Err(); err != nil {
		e.Bool(true)
		e.String(err.Error())
	} else {
		e.Bool(false)
	}
	e.Int(len(n.Gates))
	for _, g := range n.Gates {
		e.Uint64(uint64(g.Kind))
		e.Int(len(g.Fanin))
		for _, f := range g.Fanin {
			e.Int(f)
		}
		e.Int(g.Delay)
		e.Bool(g.Init)
		e.String(g.Group)
	}
	hashIntSlice(e, n.Inputs)
	hashIntSlice(e, n.Outputs)
	e.Float64(n.InputCap)
	e.Float64(n.WireCapPerFanout)
	e.Float64(n.OutputLoad)
	e.Float64(n.ClockCap)
}

func hashIntSlice(e *Enc, vs []int) {
	e.Int(len(vs))
	for _, v := range vs {
		e.Int(v)
	}
}

// HashSimOptions writes every option that changes a simulation result:
// the delay model, the electrical constants, and the clock-accounting
// switches.
func HashSimOptions(e *Enc, o sim.Options) {
	e.String("simopts/v1")
	e.Int(int(o.Model))
	e.Float64(o.Vdd)
	e.Float64(o.Freq)
	e.Bool(o.TrackClock)
	e.Bool(o.GateClock)
}

// HashInputs materializes an input provider over the given cycle range
// and writes every vector. This is the exact content identity of a
// workload — O(cycles·inputs) bits, far below the cost of simulating
// them — for callers that cannot name the stream more cheaply (for
// example by its RNG seed, which generators should prefer).
func HashInputs(e *Enc, inputs sim.InputProvider, cycles int) {
	e.String("inputs/v1")
	e.Int(cycles)
	for c := 0; c < cycles; c++ {
		e.Bools(inputs(c))
	}
}
