package memo

import (
	"sync"
	"sync/atomic"

	"hlpower/internal/hlerr"
)

// Options sizes a Cache. The zero value gets production defaults.
type Options struct {
	// MaxBytes is the total byte budget across all shards; when an
	// insertion would exceed a shard's share, least-recently-used
	// entries are evicted first. 0 means DefaultMaxBytes.
	MaxBytes int64
	// Shards is the number of independently locked cache segments,
	// rounded up to a power of two. 0 means DefaultShards.
	Shards int
}

// Defaults for Options' zero values.
const (
	DefaultMaxBytes = 64 << 20
	DefaultShards   = 16
)

// Stats is a point-in-time counter snapshot of a Cache.
type Stats struct {
	// Hits counts lookups answered from a stored entry; Collapsed
	// counts requests that attached to an identical in-flight
	// computation and shared its result; Misses counts computations
	// actually performed.
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Collapsed int64 `json:"collapsed"`
	// Stores and NegStores count successful-value and negative
	// (input-error) insertions; Evictions counts LRU removals forced by
	// the byte budget.
	Stores    int64 `json:"stores"`
	NegStores int64 `json:"neg_stores"`
	Evictions int64 `json:"evictions"`
	// Entries and Bytes describe current occupancy against MaxBytes.
	Entries  int64 `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
}

// HitRate returns the fraction of lookups served without computing —
// stored hits plus collapsed waiters over all lookups — or 0 before
// any traffic.
func (s Stats) HitRate() float64 {
	served := s.Hits + s.Collapsed
	total := served + s.Misses
	if total == 0 {
		return 0
	}
	return float64(served) / float64(total)
}

// entry is one cached result, linked into its shard's LRU list. Either
// val (a successful, immutable-by-convention result) or err (a
// negative-cached input error) is set.
type entry struct {
	key        Key
	val        any
	err        error
	size       int64
	prev, next *entry
}

// call is one in-flight computation that concurrent identical requests
// attach to.
type call struct {
	done chan struct{}
	val  any
	err  error
}

// shard is one independently locked cache segment: a map plus an LRU
// list under a byte budget, and the singleflight table for keys
// currently being computed.
type shard struct {
	mu       sync.Mutex
	items    map[Key]*entry
	flight   map[Key]*call
	head     *entry // most recently used
	tail     *entry // least recently used
	bytes    int64
	maxBytes int64
}

// Cache is the sharded content-addressed memoization layer. Create
// with New; it is safe for concurrent use.
type Cache struct {
	shards []*shard
	mask   uint64

	hits      atomic.Int64
	misses    atomic.Int64
	collapsed atomic.Int64
	stores    atomic.Int64
	negStores atomic.Int64
	evictions atomic.Int64
	entries   atomic.Int64
	bytes     atomic.Int64
	maxBytes  int64
}

// New builds a cache.
func New(o Options) *Cache {
	if o.MaxBytes <= 0 {
		o.MaxBytes = DefaultMaxBytes
	}
	if o.Shards <= 0 {
		o.Shards = DefaultShards
	}
	n := 1
	for n < o.Shards {
		n <<= 1
	}
	c := &Cache{
		shards:   make([]*shard, n),
		mask:     uint64(n - 1),
		maxBytes: o.MaxBytes,
	}
	per := o.MaxBytes / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = &shard{
			items:    make(map[Key]*entry),
			flight:   make(map[Key]*call),
			maxBytes: per,
		}
	}
	return c
}

func (c *Cache) shard(k Key) *shard { return c.shards[k.Lo&c.mask] }

// Stats snapshots the counters.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Collapsed: c.collapsed.Load(),
		Stores:    c.stores.Load(),
		NegStores: c.negStores.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.entries.Load(),
		Bytes:     c.bytes.Load(),
		MaxBytes:  c.maxBytes,
	}
}

// Do returns the value stored under k, or computes it. compute returns
// the value, its approximate in-memory size in bytes, whether the value
// may be stored (degraded or otherwise non-replayable results say
// false), and an error.
//
// Concurrent Do calls with the same key collapse: one caller computes,
// the rest block and share the outcome — value and error alike — so N
// identical requests perform one evaluation. A panicking computation is
// captured and delivered to every waiter (and the computing caller) as
// an error; typed hlerr panics keep their identity. Errors matching
// hlerr.IsInput are negative-cached: the same malformed input fails
// again in O(hash) without re-entering the engine. Other errors are
// never stored.
//
// The returned shared flag is true when the value came from the cache
// or from another caller's in-flight computation rather than from this
// call's own compute. Shared values are the stored originals: treat
// them as immutable, or clone before mutating.
func (c *Cache) Do(k Key, compute func() (val any, size int64, cacheable bool, err error)) (val any, shared bool, err error) {
	sh := c.shard(k)
	sh.mu.Lock()
	if e, ok := sh.items[k]; ok {
		sh.moveFront(e)
		sh.mu.Unlock()
		c.hits.Add(1)
		return e.val, true, e.err
	}
	if fl, ok := sh.flight[k]; ok {
		sh.mu.Unlock()
		c.collapsed.Add(1)
		<-fl.done
		return fl.val, true, fl.err
	}
	fl := &call{done: make(chan struct{})}
	sh.flight[k] = fl
	sh.mu.Unlock()
	c.misses.Add(1)

	val, size, cacheable, err := safeCompute(compute)
	fl.val, fl.err = val, err

	sh.mu.Lock()
	delete(sh.flight, k)
	switch {
	case err == nil && cacheable:
		if sh.store(c, &entry{key: k, val: val, size: size}) {
			c.stores.Add(1)
		}
	case err != nil && hlerr.IsInput(err):
		if sh.store(c, &entry{key: k, err: err, size: int64(len(err.Error())) + 64}) {
			c.negStores.Add(1)
		}
	}
	sh.mu.Unlock()
	close(fl.done)
	return val, false, err
}

// Get looks k up without computing on miss.
func (c *Cache) Get(k Key) (val any, ok bool, err error) {
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e, ok := sh.items[k]
	if !ok {
		return nil, false, nil
	}
	sh.moveFront(e)
	c.hits.Add(1)
	return e.val, true, e.err
}

// safeCompute contains panics so a crashing computation resolves the
// singleflight call instead of leaving waiters blocked forever.
func safeCompute(compute func() (any, int64, bool, error)) (val any, size int64, cacheable bool, err error) {
	defer func() {
		if r := recover(); r != nil {
			val, size, cacheable = nil, 0, false
			err = hlerr.FromPanic(r)
		}
	}()
	return compute()
}

// store inserts e as most recently used and evicts from the cold end
// until the shard fits its byte budget again. Entries larger than the
// whole shard budget are not stored at all. Caller holds sh.mu.
func (sh *shard) store(c *Cache, e *entry) bool {
	if e.size > sh.maxBytes {
		return false
	}
	if old, ok := sh.items[e.key]; ok {
		sh.unlink(old)
		sh.bytes -= old.size
		c.bytes.Add(-old.size)
		c.entries.Add(-1)
		delete(sh.items, old.key)
	}
	sh.items[e.key] = e
	sh.pushFront(e)
	sh.bytes += e.size
	c.bytes.Add(e.size)
	c.entries.Add(1)
	for sh.bytes > sh.maxBytes && sh.tail != nil && sh.tail != e {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.items, victim.key)
		sh.bytes -= victim.size
		c.bytes.Add(-victim.size)
		c.entries.Add(-1)
		c.evictions.Add(1)
	}
	return true
}

func (sh *shard) pushFront(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

func (sh *shard) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
}

func (sh *shard) moveFront(e *entry) {
	if sh.head == e {
		return
	}
	sh.unlink(e)
	sh.pushFront(e)
}
