package memo

import (
	"math"
	"testing"

	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	e := NewEnc()
	e.Uint64(0xdeadbeef)
	e.Int64(-42)
	e.Int(7)
	e.Bool(true)
	e.Bool(false)
	e.Float64(3.14159)
	e.Float64(math.Copysign(0, -1)) // -0 must survive as bits
	e.String("netlist/v1")
	e.String("")
	e.Bytes([]byte{1, 2, 3})
	e.Uint64s([]uint64{9, 8, 7})
	e.Bools([]bool{true, false, true, true, false, false, true, false, true}) // 9 bits: partial last byte
	e.Bools(nil)

	d := NewDec(e)
	if got := d.Uint64(); got != 0xdeadbeef {
		t.Fatalf("Uint64 = %x", got)
	}
	if got := d.Int64(); got != -42 {
		t.Fatalf("Int64 = %d", got)
	}
	if got := d.Int64(); got != 7 {
		t.Fatalf("Int = %d", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip failed")
	}
	if got := d.Float64(); got != 3.14159 {
		t.Fatalf("Float64 = %v", got)
	}
	if got := d.Float64(); math.Float64bits(got) != math.Float64bits(math.Copysign(0, -1)) {
		t.Fatalf("-0 became %v (bits %x)", got, math.Float64bits(got))
	}
	if got := d.String(); got != "netlist/v1" {
		t.Fatalf("String = %q", got)
	}
	if got := d.String(); got != "" {
		t.Fatalf("empty String = %q", got)
	}
	if got := d.Bytes(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Bytes = %v", got)
	}
	if got := d.Uint64s(); len(got) != 3 || got[0] != 9 || got[2] != 7 {
		t.Fatalf("Uint64s = %v", got)
	}
	want := []bool{true, false, true, true, false, false, true, false, true}
	got := d.Bools()
	if len(got) != len(want) {
		t.Fatalf("Bools len = %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Bools[%d] = %v", i, got[i])
		}
	}
	if got := d.Bools(); len(got) != 0 {
		t.Fatalf("nil Bools = %v", got)
	}
	if err := d.Err(); err != nil {
		t.Fatal(err)
	}
	if !d.Done() {
		t.Fatal("decoder did not consume the whole encoding")
	}
}

func TestDecoderRejectsTagMismatch(t *testing.T) {
	e := NewEnc()
	e.Uint64(1)
	d := NewDec(e)
	if d.Int64() != 0 || d.Err() == nil {
		t.Fatal("tag mismatch not detected")
	}
	// Sticky: subsequent reads keep failing.
	if d.Uint64() != 0 || d.Err() == nil {
		t.Fatal("decode error not sticky")
	}
}

// smallNetlist builds a 2-input circuit used by the sensitivity tests.
func smallNetlist() *logic.Netlist {
	n := logic.New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.Add(logic.And, a, b)
	y := n.Add(logic.Xor, a, x)
	n.MarkOutput(y)
	return n
}

func netlistKey(n *logic.Netlist) Key {
	e := NewEnc()
	HashNetlist(e, n)
	return e.Key()
}

// TestKeyDeterministic: identical inputs hash to identical keys across
// independent encoder instances.
func TestKeyDeterministic(t *testing.T) {
	if k1, k2 := netlistKey(smallNetlist()), netlistKey(smallNetlist()); k1 != k2 {
		t.Fatalf("identical netlists hash differently: %v vs %v", k1, k2)
	}
	mk := func() Key {
		e := NewEnc()
		e.String("tag")
		e.Uint64(12345) // seed
		e.Int(5000)     // cycles
		e.Int64(1 << 20)
		return e.Key()
	}
	if mk() != mk() {
		t.Fatal("identical scalar encodings hash differently")
	}
}

// TestKeySensitivity: mutating any single result-determining field —
// RNG seed, budget cap, gate kind, cycle count, electrical parameter —
// produces a different key.
func TestKeySensitivity(t *testing.T) {
	base := func(seed uint64, cycles int, cap int64) Key {
		e := NewEnc()
		e.String("powerd/simulate/v1")
		HashNetlist(e, smallNetlist())
		e.Uint64(seed)
		e.Int(cycles)
		e.Int64(cap)
		return e.Key()
	}
	ref := base(1, 100, 1<<20)
	if base(2, 100, 1<<20) == ref {
		t.Fatal("seed mutation did not change the key")
	}
	if base(1, 101, 1<<20) == ref {
		t.Fatal("cycle-count mutation did not change the key")
	}
	if base(1, 100, 1<<20+1) == ref {
		t.Fatal("step-cap mutation did not change the key")
	}

	// Gate-kind mutation.
	n1 := smallNetlist()
	n2 := logic.New()
	a := n2.AddInput("a")
	b := n2.AddInput("b")
	x := n2.Add(logic.Or, a, b) // And -> Or
	y := n2.Add(logic.Xor, a, x)
	n2.MarkOutput(y)
	if netlistKey(n1) == netlistKey(n2) {
		t.Fatal("gate-kind mutation did not change the key")
	}

	// Electrical parameter mutation.
	n3 := smallNetlist()
	n3.InputCap += 0.001
	if netlistKey(smallNetlist()) == netlistKey(n3) {
		t.Fatal("capacitance mutation did not change the key")
	}

	// Signal names are labels, not structure: renaming must NOT change
	// the key.
	n4 := smallNetlist()
	n4.SetName(2, "renamed_and_gate")
	if netlistKey(smallNetlist()) != netlistKey(n4) {
		t.Fatal("renaming a signal changed the key")
	}
}

func TestSimOptionsSensitivity(t *testing.T) {
	k := func(o sim.Options) Key {
		e := NewEnc()
		HashSimOptions(e, o)
		return e.Key()
	}
	ref := sim.Options{Vdd: 1, Freq: 1}
	if k(ref) != k(sim.Options{Vdd: 1, Freq: 1}) {
		t.Fatal("identical options hash differently")
	}
	for name, o := range map[string]sim.Options{
		"model":      {Model: sim.EventDriven, Vdd: 1, Freq: 1},
		"vdd":        {Vdd: 1.1, Freq: 1},
		"freq":       {Vdd: 1, Freq: 2},
		"trackClock": {Vdd: 1, Freq: 1, TrackClock: true},
	} {
		if k(o) == k(ref) {
			t.Fatalf("%s mutation did not change the key", name)
		}
	}
}

func TestHashInputsSensitivity(t *testing.T) {
	vec := func(bits ...bool) sim.InputProvider {
		return func(int) []bool { return bits }
	}
	k := func(in sim.InputProvider, cycles int) Key {
		e := NewEnc()
		HashInputs(e, in, cycles)
		return e.Key()
	}
	ref := k(vec(true, false), 10)
	if ref != k(vec(true, false), 10) {
		t.Fatal("identical input streams hash differently")
	}
	if k(vec(true, true), 10) == ref {
		t.Fatal("vector mutation did not change the key")
	}
	if k(vec(true, false), 11) == ref {
		t.Fatal("cycle-count mutation did not change the key")
	}
}
