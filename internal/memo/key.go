// Package memo provides content-addressed memoization for the
// estimation engines: a canonical binary encoding of estimation inputs
// hashed to a 128-bit structural key, a sharded LRU cache with a
// byte-budget eviction policy keyed on it, and a singleflight group
// that collapses concurrent identical computations into a single
// underlying evaluation whose result every waiter shares.
//
// The surveyed techniques all re-evaluate the same structures — the
// same netlist under the same vector distribution, the same trace
// under the same energy table — so a service fronting them sees heavy
// duplicate traffic. Content addressing turns a repeated estimate into
// O(hash) work: the key is derived from everything that determines the
// result (netlist structure, simulation options, cycle count, the RNG
// seed or the vectors themselves) and from nothing that does not
// (signal names, wall-clock deadlines).
//
// Cached values are shared across callers and must therefore be
// treated as immutable; callers that hand results to mutating
// consumers clone on the way out (see sim.Result.Clone). Results
// produced under an armed fault-injection plan or flagged degraded are
// never stored — the caching layers consult budget.FaultArmed and the
// per-result flags before deciding a value is cacheable — so chaos
// testing and graceful degradation cannot poison the cache.
package memo

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// Key is a 128-bit content hash of a canonical input encoding. Two
// inputs receive the same Key exactly when their canonical encodings
// are byte-identical (up to SHA-256 collisions, which this package
// treats as impossible).
type Key struct{ Hi, Lo uint64 }

// String renders the key as 32 hex digits.
func (k Key) String() string { return fmt.Sprintf("%016x%016x", k.Hi, k.Lo) }

// ParseKey inverts String: 32 lowercase hex digits back into a Key.
// ok is false for anything else. Useful where a key's hex form is used
// as an external identifier (job ids) and must be mapped back onto the
// ring.
func ParseKey(s string) (Key, bool) {
	if len(s) != 32 {
		return Key{}, false
	}
	var words [2]uint64
	for w := 0; w < 2; w++ {
		for i := 0; i < 16; i++ {
			c := s[w*16+i]
			var v uint64
			switch {
			case c >= '0' && c <= '9':
				v = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				v = uint64(c-'a') + 10
			default:
				return Key{}, false
			}
			words[w] = words[w]<<4 | v
		}
	}
	return Key{Hi: words[0], Lo: words[1]}, true
}

// Type tags make the canonical encoding injective: every primitive is
// written as a tag byte followed by a fixed-width or length-prefixed
// payload, so no concatenation of values can collide with a different
// concatenation of values.
const (
	tagUint64 byte = 1 + iota
	tagInt64
	tagBool
	tagFloat64
	tagString
	tagBytes
	tagUint64s
	tagBools
)

// Enc accumulates the canonical binary encoding of one estimation
// input. Write the fields that determine the result, in a fixed order,
// then derive the content key with Key. The zero value is NOT ready to
// use; call NewEnc.
type Enc struct{ buf []byte }

// NewEnc returns an empty encoder.
func NewEnc() *Enc { return &Enc{buf: make([]byte, 0, 256)} }

func (e *Enc) word(v uint64) {
	e.buf = binary.BigEndian.AppendUint64(e.buf, v)
}

// Uint64 appends an unsigned 64-bit value.
func (e *Enc) Uint64(v uint64) {
	e.buf = append(e.buf, tagUint64)
	e.word(v)
}

// Int64 appends a signed 64-bit value.
func (e *Enc) Int64(v int64) {
	e.buf = append(e.buf, tagInt64)
	e.word(uint64(v))
}

// Int appends a platform int as its 64-bit value.
func (e *Enc) Int(v int) { e.Int64(int64(v)) }

// Bool appends a boolean.
func (e *Enc) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, tagBool, b)
}

// Float64 appends a float by its IEEE-754 bit pattern, so the key
// distinguishes every representable value (including -0 from +0 and
// NaN payloads) and never depends on formatting.
func (e *Enc) Float64(v float64) {
	e.buf = append(e.buf, tagFloat64)
	e.word(math.Float64bits(v))
}

// String appends a length-prefixed string.
func (e *Enc) String(s string) {
	e.buf = append(e.buf, tagString)
	e.word(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Bytes appends a length-prefixed byte slice.
func (e *Enc) Bytes(b []byte) {
	e.buf = append(e.buf, tagBytes)
	e.word(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// Uint64s appends a length-prefixed slice of 64-bit values — the
// encoding of an operand stream.
func (e *Enc) Uint64s(vs []uint64) {
	e.buf = append(e.buf, tagUint64s)
	e.word(uint64(len(vs)))
	for _, v := range vs {
		e.word(v)
	}
}

// Bools appends a length-prefixed bit-packed boolean slice — the
// encoding of one input vector.
func (e *Enc) Bools(vs []bool) {
	e.buf = append(e.buf, tagBools)
	e.word(uint64(len(vs)))
	var acc byte
	for i, v := range vs {
		if v {
			acc |= 1 << (uint(i) & 7)
		}
		if i&7 == 7 {
			e.buf = append(e.buf, acc)
			acc = 0
		}
	}
	if len(vs)&7 != 0 {
		e.buf = append(e.buf, acc)
	}
}

// Len reports the canonical encoding's size in bytes.
func (e *Enc) Len() int { return len(e.buf) }

// Data returns a copy of the canonical encoding, for callers that
// persist the bytes themselves (checkpoint snapshots) rather than
// hashing them into a key.
func (e *Enc) Data() []byte { return append([]byte(nil), e.buf...) }

// Key hashes the canonical encoding to the 128-bit content key. The
// encoder remains usable; appending more fields and calling Key again
// yields the key of the extended encoding.
func (e *Enc) Key() Key {
	sum := sha256.Sum256(e.buf)
	return Key{
		Hi: binary.BigEndian.Uint64(sum[0:8]),
		Lo: binary.BigEndian.Uint64(sum[8:16]),
	}
}

// Dec reads a canonical encoding back, for round-trip verification of
// the format. Errors are sticky: after the first tag mismatch or
// truncation every subsequent read fails.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec wraps an encoder's accumulated bytes for decoding.
func NewDec(e *Enc) *Dec { return &Dec{buf: e.buf} }

// DecBytes wraps raw canonical-encoding bytes for decoding — the read
// side of Data. Every read validates its type tag, so feeding
// corrupted or truncated bytes yields a sticky error, never a panic.
func DecBytes(b []byte) *Dec { return &Dec{buf: b} }

// Err returns the sticky decode error, or nil.
func (d *Dec) Err() error { return d.err }

// Done reports whether the whole encoding was consumed cleanly.
func (d *Dec) Done() bool { return d.err == nil && d.off == len(d.buf) }

func (d *Dec) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("memo: decode at offset %d: %s", d.off, fmt.Sprintf(format, args...))
	}
}

func (d *Dec) tag(want byte) bool {
	if d.err != nil {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated: want tag %d", want)
		return false
	}
	if got := d.buf[d.off]; got != want {
		d.fail("tag mismatch: want %d, got %d", want, got)
		return false
	}
	d.off++
	return true
}

func (d *Dec) word() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("truncated word")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// Uint64 reads back an unsigned 64-bit value.
func (d *Dec) Uint64() uint64 {
	if !d.tag(tagUint64) {
		return 0
	}
	return d.word()
}

// Int64 reads back a signed 64-bit value.
func (d *Dec) Int64() int64 {
	if !d.tag(tagInt64) {
		return 0
	}
	return int64(d.word())
}

// Bool reads back a boolean.
func (d *Dec) Bool() bool {
	if !d.tag(tagBool) {
		return false
	}
	if d.off >= len(d.buf) {
		d.fail("truncated bool")
		return false
	}
	v := d.buf[d.off]
	d.off++
	if v > 1 {
		d.fail("bad bool byte %d", v)
		return false
	}
	return v == 1
}

// Float64 reads back a float's bit pattern.
func (d *Dec) Float64() float64 {
	if !d.tag(tagFloat64) {
		return 0
	}
	return math.Float64frombits(d.word())
}

// String reads back a length-prefixed string.
func (d *Dec) String() string {
	if !d.tag(tagString) {
		return ""
	}
	n := d.word()
	if d.err != nil {
		return ""
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("string length %d exceeds remaining %d", n, len(d.buf)-d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}

// Bytes reads back a length-prefixed byte slice.
func (d *Dec) Bytes() []byte {
	if !d.tag(tagBytes) {
		return nil
	}
	n := d.word()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off) {
		d.fail("bytes length %d exceeds remaining %d", n, len(d.buf)-d.off)
		return nil
	}
	b := append([]byte(nil), d.buf[d.off:d.off+int(n)]...)
	d.off += int(n)
	return b
}

// Uint64s reads back a slice of 64-bit values.
func (d *Dec) Uint64s() []uint64 {
	if !d.tag(tagUint64s) {
		return nil
	}
	n := d.word()
	if d.err != nil {
		return nil
	}
	if n > uint64(len(d.buf)-d.off)/8 {
		d.fail("uint64s length %d exceeds remaining %d bytes", n, len(d.buf)-d.off)
		return nil
	}
	vs := make([]uint64, n)
	for i := range vs {
		vs[i] = d.word()
	}
	return vs
}

// Bools reads back a bit-packed boolean slice.
func (d *Dec) Bools() []bool {
	if !d.tag(tagBools) {
		return nil
	}
	n := d.word()
	if d.err != nil {
		return nil
	}
	bytes := (n + 7) / 8
	if bytes > uint64(len(d.buf)-d.off) {
		d.fail("bools length %d exceeds remaining %d bytes", n, len(d.buf)-d.off)
		return nil
	}
	vs := make([]bool, n)
	for i := range vs {
		vs[i] = d.buf[d.off+i/8]>>(uint(i)&7)&1 == 1
	}
	d.off += int(bytes)
	return vs
}
