package memo

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hlpower/internal/hlerr"
)

func keyOf(parts ...uint64) Key {
	e := NewEnc()
	for _, p := range parts {
		e.Uint64(p)
	}
	return e.Key()
}

func TestDoComputesOnceThenHits(t *testing.T) {
	c := New(Options{})
	var computes atomic.Int64
	compute := func() (any, int64, bool, error) {
		computes.Add(1)
		return 42.0, 8, true, nil
	}
	k := keyOf(1)
	v, shared, err := c.Do(k, compute)
	if err != nil || shared || v.(float64) != 42.0 {
		t.Fatalf("first Do: v=%v shared=%v err=%v", v, shared, err)
	}
	v, shared, err = c.Do(k, compute)
	if err != nil || !shared || v.(float64) != 42.0 {
		t.Fatalf("second Do: v=%v shared=%v err=%v", v, shared, err)
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1", got)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Stores != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v", st)
	}
	if st.HitRate() != 0.5 {
		t.Fatalf("hit rate %v, want 0.5", st.HitRate())
	}
}

func TestNonCacheableValueIsReturnedNotStored(t *testing.T) {
	c := New(Options{})
	var computes atomic.Int64
	compute := func() (any, int64, bool, error) {
		computes.Add(1)
		return "degraded", 8, false, nil
	}
	k := keyOf(2)
	for i := 0; i < 3; i++ {
		v, shared, err := c.Do(k, compute)
		if err != nil || shared || v.(string) != "degraded" {
			t.Fatalf("Do %d: v=%v shared=%v err=%v", i, v, shared, err)
		}
	}
	if got := computes.Load(); got != 3 {
		t.Fatalf("compute ran %d times, want 3 (non-cacheable)", got)
	}
	if st := c.Stats(); st.Stores != 0 || st.Entries != 0 {
		t.Fatalf("non-cacheable value was stored: %+v", st)
	}
}

func TestNegativeCachingOfInputErrors(t *testing.T) {
	c := New(Options{})
	var computes atomic.Int64
	inputErr := hlerr.Errorf("memo.test", "width 99 out of range")
	compute := func() (any, int64, bool, error) {
		computes.Add(1)
		return nil, 0, false, inputErr
	}
	k := keyOf(3)
	for i := 0; i < 3; i++ {
		_, shared, err := c.Do(k, compute)
		if !hlerr.IsInput(err) {
			t.Fatalf("Do %d: err=%v, want input error", i, err)
		}
		if (i > 0) != shared {
			t.Fatalf("Do %d: shared=%v", i, shared)
		}
	}
	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want 1 (negative-cached)", got)
	}
	if st := c.Stats(); st.NegStores != 1 {
		t.Fatalf("stats %+v, want 1 neg store", st)
	}

	// Non-input errors must not be cached.
	var transient atomic.Int64
	kt := keyOf(4)
	for i := 0; i < 2; i++ {
		_, _, err := c.Do(kt, func() (any, int64, bool, error) {
			transient.Add(1)
			return nil, 0, false, errors.New("transient")
		})
		if err == nil {
			t.Fatal("want error")
		}
	}
	if got := transient.Load(); got != 2 {
		t.Fatalf("transient compute ran %d times, want 2", got)
	}
}

func TestByteBudgetEviction(t *testing.T) {
	// One shard, room for ~4 entries of 100 bytes.
	c := New(Options{MaxBytes: 400, Shards: 1})
	for i := 0; i < 10; i++ {
		k := keyOf(uint64(i))
		if _, _, err := c.Do(k, func() (any, int64, bool, error) {
			return i, 100, true, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Bytes > 400 {
		t.Fatalf("bytes %d exceed budget 400", st.Bytes)
	}
	if st.Evictions != 6 {
		t.Fatalf("evictions %d, want 6", st.Evictions)
	}
	if st.Entries != 4 {
		t.Fatalf("entries %d, want 4", st.Entries)
	}
	// The most recent entries survive; the oldest were evicted.
	if _, ok, _ := c.Get(keyOf(9)); !ok {
		t.Fatal("most recent entry evicted")
	}
	if _, ok, _ := c.Get(keyOf(0)); ok {
		t.Fatal("oldest entry survived a full wrap")
	}
	// An entry larger than the whole budget is never stored.
	kBig := keyOf(1000)
	if _, _, err := c.Do(kBig, func() (any, int64, bool, error) {
		return "huge", 10_000, true, nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := c.Get(kBig); ok {
		t.Fatal("oversized entry was stored")
	}
}

func TestLRUTouchOnHit(t *testing.T) {
	c := New(Options{MaxBytes: 300, Shards: 1})
	store := func(i int) {
		c.Do(keyOf(uint64(i)), func() (any, int64, bool, error) { return i, 100, true, nil })
	}
	store(0)
	store(1)
	store(2)
	// Touch 0 so 1 becomes the LRU victim.
	if _, ok, _ := c.Get(keyOf(0)); !ok {
		t.Fatal("entry 0 missing")
	}
	store(3) // evicts 1
	if _, ok, _ := c.Get(keyOf(0)); !ok {
		t.Fatal("touched entry was evicted")
	}
	if _, ok, _ := c.Get(keyOf(1)); ok {
		t.Fatal("LRU entry survived")
	}
}

// TestSingleflightCollapse is the acceptance check: N concurrent
// identical requests perform exactly one underlying computation and
// all share its result.
func TestSingleflightCollapse(t *testing.T) {
	c := New(Options{})
	const n = 32
	var computes atomic.Int64
	started := make(chan struct{})
	release := make(chan struct{})
	k := keyOf(7)

	// Leader enters compute and blocks; the chan handshake guarantees
	// every follower issues its Do while the computation is in flight.
	leaderDone := make(chan struct{})
	go func() {
		defer close(leaderDone)
		v, shared, err := c.Do(k, func() (any, int64, bool, error) {
			computes.Add(1)
			close(started)
			<-release
			return "result", 16, true, nil
		})
		if err != nil || shared || v.(string) != "result" {
			t.Errorf("leader: v=%v shared=%v err=%v", v, shared, err)
		}
	}()
	<-started

	var wg sync.WaitGroup
	for i := 0; i < n-1; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, shared, err := c.Do(k, func() (any, int64, bool, error) {
				computes.Add(1)
				return "follower-computed", 16, true, nil
			})
			if err != nil || !shared || v.(string) != "result" {
				t.Errorf("follower: v=%v shared=%v err=%v", v, shared, err)
			}
		}()
	}
	// Let every follower reach the in-flight wait before releasing.
	waitForCollapsed(t, c, n-1)
	close(release)
	wg.Wait()
	<-leaderDone

	if got := computes.Load(); got != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", got)
	}
	if st := c.Stats(); st.Collapsed != n-1 {
		t.Fatalf("collapsed %d, want %d", st.Collapsed, n-1)
	}
}

func waitForCollapsed(t *testing.T, c *Cache, want int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Collapsed < want {
		if time.Now().After(deadline) {
			t.Fatalf("only %d collapsed waiters after 5s, want %d", c.Stats().Collapsed, want)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSingleflightPanic is the acceptance check: a panicking
// computation fails the computing caller and every waiter with the
// captured error, and leaves no goroutines behind.
func TestSingleflightPanic(t *testing.T) {
	baseline := runtime.NumGoroutine()
	c := New(Options{})
	k := keyOf(8)
	started := make(chan struct{})
	release := make(chan struct{})

	errs := make(chan error, 9)
	go func() {
		_, _, err := c.Do(k, func() (any, int64, bool, error) {
			close(started)
			<-release
			panic("estimator exploded")
		})
		errs <- err
	}()
	<-started
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, _, err := c.Do(k, func() (any, int64, bool, error) {
				t.Error("waiter computed despite in-flight leader")
				return nil, 0, false, nil
			})
			errs <- err
		}()
	}
	waitForCollapsed(t, c, 8)
	close(release)
	wg.Wait()

	for i := 0; i < 9; i++ {
		err := <-errs
		if err == nil {
			t.Fatal("caller got nil error from panicking computation")
		}
		if want := "estimator exploded"; !contains(err.Error(), want) {
			t.Fatalf("err %q does not carry the captured panic %q", err, want)
		}
	}
	// Nothing stored, flight table drained, and a retry recomputes.
	if st := c.Stats(); st.Stores != 0 || st.NegStores != 0 {
		t.Fatalf("panic outcome was cached: %+v", st)
	}
	v, shared, err := c.Do(k, func() (any, int64, bool, error) { return "ok", 8, true, nil })
	if err != nil || shared || v.(string) != "ok" {
		t.Fatalf("retry after panic: v=%v shared=%v err=%v", v, shared, err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > baseline+1 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: baseline %d, now %d", baseline, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSingleflightTypedPanic checks that hlerr.Throw panics keep their
// typed identity through the singleflight capture: a thrown input
// error is an input error for every waiter (and gets negative-cached).
func TestSingleflightTypedPanic(t *testing.T) {
	c := New(Options{})
	k := keyOf(9)
	_, _, err := c.Do(k, func() (any, int64, bool, error) {
		hlerr.Throwf("memo.test", "malformed netlist")
		return nil, 0, false, nil
	})
	if !hlerr.IsInput(err) {
		t.Fatalf("thrown input error lost its type: %v", err)
	}
	var computes atomic.Int64
	_, shared, err2 := c.Do(k, func() (any, int64, bool, error) {
		computes.Add(1)
		return nil, 0, false, nil
	})
	if !hlerr.IsInput(err2) || !shared || computes.Load() != 0 {
		t.Fatalf("typed panic was not negative-cached: err=%v shared=%v computes=%d",
			err2, shared, computes.Load())
	}
}

func TestConcurrentMixedKeys(t *testing.T) {
	c := New(Options{MaxBytes: 1 << 20, Shards: 8})
	var wg sync.WaitGroup
	var computes atomic.Int64
	const workers, keys = 16, 64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := keyOf(uint64(i % keys))
				v, _, err := c.Do(k, func() (any, int64, bool, error) {
					computes.Add(1)
					return fmt.Sprintf("v%d", i%keys), 32, true, nil
				})
				if err != nil {
					t.Error(err)
					return
				}
				if want := fmt.Sprintf("v%d", i%keys); v.(string) != want {
					t.Errorf("key %d returned %v, want %s", i%keys, v, want)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Entries != keys {
		t.Fatalf("entries %d, want %d", st.Entries, keys)
	}
	if total := st.Hits + st.Collapsed + st.Misses; total != workers*200 {
		t.Fatalf("lookups %d, want %d", total, workers*200)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
