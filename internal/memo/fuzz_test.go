package memo

import (
	"bytes"
	"math"
	"testing"
)

// FuzzCanonicalKey drives arbitrary field sequences through the
// canonical encoder and checks the format invariants: encoding is
// deterministic, decoding round-trips every value and consumes the
// buffer exactly, and any single-byte corruption of the encoding either
// changes the key or fails to decode as the same field sequence.
func FuzzCanonicalKey(f *testing.F) {
	f.Add(uint64(1), int64(-1), true, 3.5, "adder", []byte{1, 2})
	f.Add(uint64(0), int64(0), false, 0.0, "", []byte{})
	f.Add(^uint64(0), int64(1)<<62, true, -0.0, "netlist/v1", []byte{0xff})
	f.Fuzz(func(t *testing.T, u uint64, i int64, b bool, fl float64, s string, bs []byte) {
		encode := func() *Enc {
			e := NewEnc()
			e.Uint64(u)
			e.Int64(i)
			e.Bool(b)
			e.Float64(fl)
			e.String(s)
			e.Bytes(bs)
			e.Uint64s([]uint64{u, ^u})
			e.Bools([]bool{b, !b, b})
			return e
		}
		e1, e2 := encode(), encode()
		if e1.Key() != e2.Key() {
			t.Fatal("identical inputs produced different keys")
		}
		if !bytes.Equal(e1.buf, e2.buf) {
			t.Fatal("identical inputs produced different encodings")
		}

		d := NewDec(e1)
		if got := d.Uint64(); got != u {
			t.Fatalf("Uint64 round trip: %d != %d", got, u)
		}
		if got := d.Int64(); got != i {
			t.Fatalf("Int64 round trip: %d != %d", got, i)
		}
		if got := d.Bool(); got != b {
			t.Fatalf("Bool round trip: %v != %v", got, b)
		}
		// Compare floats by bits so NaN round trips.
		if got := d.Float64(); floatBitsDiffer(got, fl) {
			t.Fatalf("Float64 round trip: %v != %v", got, fl)
		}
		if got := d.String(); got != s {
			t.Fatalf("String round trip: %q != %q", got, s)
		}
		if got := d.Bytes(); !bytes.Equal(got, bs) {
			t.Fatalf("Bytes round trip: %v != %v", got, bs)
		}
		if got := d.Uint64s(); len(got) != 2 || got[0] != u || got[1] != ^u {
			t.Fatalf("Uint64s round trip: %v", got)
		}
		if got := d.Bools(); len(got) != 3 || got[0] != b || got[1] == b || got[2] != b {
			t.Fatalf("Bools round trip: %v", got)
		}
		if err := d.Err(); err != nil {
			t.Fatal(err)
		}
		if !d.Done() {
			t.Fatalf("decoder left %d of %d bytes unread", len(e1.buf)-d.off, len(e1.buf))
		}

		// Mutating the seed field alone must change the key.
		e3 := NewEnc()
		e3.Uint64(u + 1)
		e3.Int64(i)
		e3.Bool(b)
		e3.Float64(fl)
		e3.String(s)
		e3.Bytes(bs)
		e3.Uint64s([]uint64{u, ^u})
		e3.Bools([]bool{b, !b, b})
		if e3.Key() == e1.Key() {
			t.Fatal("single-field mutation left the key unchanged")
		}
	})
}

func floatBitsDiffer(a, b float64) bool {
	return math.Float64bits(a) != math.Float64bits(b)
}
