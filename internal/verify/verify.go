// Package verify provides formal and simulation-based equivalence
// checking between netlists — the safety net every optimization in this
// repository is validated against. Combinational equivalence is decided
// exactly by canonical BDD comparison; sequential equivalence is checked
// by lockstep simulation over supplied or random stimuli.
package verify

import (
	"fmt"
	"math/rand"

	"hlpower/internal/bdd"
	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

// Combinational decides whether two combinational netlists with the same
// input and output counts compute identical functions, by building both
// in one BDD manager (canonical forms are equal iff the functions are).
// Inputs are matched positionally. Netlists containing state elements
// are rejected.
func Combinational(a, b *logic.Netlist) (bool, error) {
	if len(a.Inputs) != len(b.Inputs) {
		return false, fmt.Errorf("verify: input counts differ (%d vs %d)", len(a.Inputs), len(b.Inputs))
	}
	if len(a.Outputs) != len(b.Outputs) {
		return false, fmt.Errorf("verify: output counts differ (%d vs %d)", len(a.Outputs), len(b.Outputs))
	}
	n := len(a.Inputs)
	if n > 24 {
		return false, fmt.Errorf("verify: %d inputs too many for exact checking", n)
	}
	m := bdd.New(n)
	fa, err := OutputBDDs(m, a)
	if err != nil {
		return false, err
	}
	fb, err := OutputBDDs(m, b)
	if err != nil {
		return false, err
	}
	for i := range fa {
		if fa[i] != fb[i] {
			return false, nil
		}
	}
	return true, nil
}

// Counterexample returns an input assignment on which the two netlists
// disagree, or nil if they are equivalent.
func Counterexample(a, b *logic.Netlist) ([]bool, error) {
	n := len(a.Inputs)
	m := bdd.New(n)
	fa, err := OutputBDDs(m, a)
	if err != nil {
		return nil, err
	}
	fb, err := OutputBDDs(m, b)
	if err != nil {
		return nil, err
	}
	diff := bdd.False
	for i := range fa {
		diff = m.Or(diff, m.Xor(fa[i], fb[i]))
	}
	if diff == bdd.False {
		return nil, nil
	}
	// Walk to a satisfying assignment.
	asg := make([]bool, n)
	node := diff
	for node != bdd.True {
		v, lo, hi := m.Decompose(node)
		if hi != bdd.False {
			asg[v] = true
			node = hi
		} else {
			node = lo
		}
	}
	return asg, nil
}

// OutputBDDs builds the BDD of every primary output of a combinational
// netlist over the manager's variables (input i = variable i).
func OutputBDDs(m *bdd.Manager, n *logic.Netlist) ([]bdd.Node, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	nodes := make([]bdd.Node, len(n.Gates))
	inputIdx := make(map[int]int)
	for i, sig := range n.Inputs {
		inputIdx[sig] = i
	}
	for _, id := range order {
		g := n.Gates[id]
		switch g.Kind {
		case logic.Input:
			nodes[id] = m.Var(inputIdx[id])
		case logic.Const0:
			nodes[id] = bdd.False
		case logic.Const1:
			nodes[id] = bdd.True
		case logic.Buf:
			nodes[id] = nodes[g.Fanin[0]]
		case logic.Not:
			nodes[id] = m.Not(nodes[g.Fanin[0]])
		case logic.And, logic.Nand:
			r := bdd.True
			for _, f := range g.Fanin {
				r = m.And(r, nodes[f])
			}
			if g.Kind == logic.Nand {
				r = m.Not(r)
			}
			nodes[id] = r
		case logic.Or, logic.Nor:
			r := bdd.False
			for _, f := range g.Fanin {
				r = m.Or(r, nodes[f])
			}
			if g.Kind == logic.Nor {
				r = m.Not(r)
			}
			nodes[id] = r
		case logic.Xor:
			nodes[id] = m.Xor(nodes[g.Fanin[0]], nodes[g.Fanin[1]])
		case logic.Xnor:
			nodes[id] = m.Xnor(nodes[g.Fanin[0]], nodes[g.Fanin[1]])
		case logic.Mux:
			nodes[id] = m.ITE(nodes[g.Fanin[0]], nodes[g.Fanin[2]], nodes[g.Fanin[1]])
		default:
			return nil, fmt.Errorf("verify: netlist is not combinational (gate %d is %v)", id, g.Kind)
		}
	}
	out := make([]bdd.Node, len(n.Outputs))
	for i, o := range n.Outputs {
		out[i] = nodes[o]
	}
	return out, nil
}

// Sequential checks lockstep output equality of two netlists over the
// given number of random stimulus cycles (latency 0) and reports the
// first divergence. It is the pragmatic check for optimized sequential
// circuits whose state encodings differ.
func Sequential(a, b *logic.Netlist, cycles int, seed int64) (bool, int, error) {
	if len(a.Inputs) != len(b.Inputs) || len(a.Outputs) != len(b.Outputs) {
		return false, 0, fmt.Errorf("verify: interface mismatch")
	}
	rng := rand.New(rand.NewSource(seed))
	vectors := make([][]bool, cycles)
	for c := range vectors {
		vec := make([]bool, len(a.Inputs))
		for i := range vec {
			vec[i] = rng.Intn(2) == 1
		}
		vectors[c] = vec
	}
	ra, err := sim.Run(a, sim.VectorInputs(vectors), cycles, sim.Options{})
	if err != nil {
		return false, 0, err
	}
	rb, err := sim.Run(b, sim.VectorInputs(vectors), cycles, sim.Options{})
	if err != nil {
		return false, 0, err
	}
	for c := 0; c < cycles; c++ {
		for j := range ra.Outputs[c] {
			if ra.Outputs[c][j] != rb.Outputs[c][j] {
				return false, c, nil
			}
		}
	}
	return true, -1, nil
}
