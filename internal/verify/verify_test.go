package verify

import (
	"math/rand"
	"testing"

	"hlpower/internal/cover"
	"hlpower/internal/fsm"
	"hlpower/internal/logic"
)

// twoImpls builds two structurally different implementations of the same
// random function: two-level and factored multilevel.
func twoImpls(t *testing.T, seed int64) (*logic.Netlist, *logic.Netlist, int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(4)
	var ms []uint64
	for i := uint64(0); i < 1<<uint(n); i++ {
		if rng.Float64() < 0.45 {
			ms = append(ms, i)
		}
	}
	cv, err := cover.Minimize(ms, n)
	if err != nil {
		t.Fatal(err)
	}
	two := logic.New()
	in2 := two.AddInputBus("x", n)
	two.MarkOutput(logic.FromCover(two, cv, in2, "g"))
	ml := logic.New()
	inM := ml.AddInputBus("x", n)
	ml.MarkOutput(logic.FromExpr(ml, cover.Factor(cv), inM, "g"))
	return two, ml, n
}

func TestCombinationalEquivalent(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		a, b, _ := twoImpls(t, seed)
		eq, err := Combinational(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !eq {
			t.Fatalf("seed %d: factored form should be equivalent", seed)
		}
		if cex, err := Counterexample(a, b); err != nil || cex != nil {
			t.Fatalf("seed %d: unexpected counterexample %v (%v)", seed, cex, err)
		}
	}
}

func TestCombinationalDetectsBug(t *testing.T) {
	a, b, n := twoImpls(t, 42)
	// Inject a bug: flip one gate kind in b.
	for id := range b.Gates {
		if b.Gates[id].Kind == logic.And {
			b.Gates[id].Kind = logic.Or
			break
		}
	}
	eq, err := Combinational(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Skip("mutation happened to preserve the function; rare but possible")
	}
	cex, err := Counterexample(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if cex == nil {
		t.Fatal("no counterexample for inequivalent circuits")
	}
	if len(cex) != n {
		t.Fatalf("counterexample width %d, want %d", len(cex), n)
	}
	// The counterexample must actually distinguish the circuits.
	va := evalComb(t, a, cex)
	vb := evalComb(t, b, cex)
	same := true
	for i := range va {
		if va[i] != vb[i] {
			same = false
		}
	}
	if same {
		t.Error("counterexample does not distinguish the circuits")
	}
}

func evalComb(t *testing.T, n *logic.Netlist, in []bool) []bool {
	t.Helper()
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]bool, len(n.Gates))
	for i, sig := range n.Inputs {
		vals[sig] = in[i]
	}
	for _, id := range order {
		g := n.Gates[id]
		if g.Kind == logic.Input {
			continue
		}
		args := make([]bool, len(g.Fanin))
		for j, f := range g.Fanin {
			args[j] = vals[f]
		}
		vals[id] = logic.EvalGate(g.Kind, args)
	}
	out := make([]bool, len(n.Outputs))
	for i, o := range n.Outputs {
		out[i] = vals[o]
	}
	return out
}

func TestCombinationalRejectsSequential(t *testing.T) {
	a := logic.New()
	d := a.AddInput("d")
	a.MarkOutput(a.Add(logic.DFF, d))
	b := logic.New()
	d2 := b.AddInput("d")
	b.MarkOutput(b.Add(logic.Buf, d2))
	if _, err := Combinational(a, b); err == nil {
		t.Error("sequential netlist should be rejected")
	}
}

func TestCombinationalInterfaceMismatch(t *testing.T) {
	a := logic.New()
	a.AddInput("x")
	b := logic.New()
	b.AddInput("x")
	b.AddInput("y")
	if _, err := Combinational(a, b); err == nil {
		t.Error("input count mismatch should error")
	}
}

func TestSequentialEquivalenceAcrossEncodings(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := fsm.Random(6, 2, 2, 0.5, rng)
	n1, err := fsm.Synthesize(f, fsm.BinaryEncoding(6))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := fsm.Synthesize(f, fsm.GrayEncoding(6))
	if err != nil {
		t.Fatal(err)
	}
	eq, at, err := Sequential(n1, n2, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !eq {
		t.Fatalf("differently encoded controllers diverge at cycle %d", at)
	}
}

func TestSequentialDetectsDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	f := fsm.Random(6, 1, 2, 0.5, rng)
	g := fsm.Random(6, 1, 2, 0.5, rng)
	n1, err := fsm.Synthesize(f, fsm.BinaryEncoding(6))
	if err != nil {
		t.Fatal(err)
	}
	n2, err := fsm.Synthesize(g, fsm.BinaryEncoding(6))
	if err != nil {
		t.Fatal(err)
	}
	eq, _, err := Sequential(n1, n2, 300, 7)
	if err != nil {
		t.Fatal(err)
	}
	if eq {
		t.Skip("random machines happened to agree on this stimulus")
	}
}
