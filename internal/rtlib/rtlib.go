// Package rtlib generates gate-level implementations of the RT-level
// datapath components the macro-modeling sections characterize: ripple-
// carry adders/subtractors, array multipliers, comparators, shifters,
// incrementers, and simple ALUs. Builders compose into an existing
// netlist so larger datapaths (the FIR filter of Table I, the HLS
// datapaths of §III-E) can be assembled from them.
package rtlib

import (
	"fmt"

	"hlpower/internal/bitutil"
	"hlpower/internal/budget"
	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

// FullAdder adds one bit column and returns (sum, carry).
func FullAdder(n *logic.Netlist, a, b, cin int, group string) (sum, cout int) {
	axb := n.AddG(logic.Xor, group, a, b)
	sum = n.AddG(logic.Xor, group, axb, cin)
	ab := n.AddG(logic.And, group, a, b)
	cx := n.AddG(logic.And, group, axb, cin)
	cout = n.AddG(logic.Or, group, ab, cx)
	return sum, cout
}

// zeroBus records a width-mismatch construction error on the netlist
// (sticky; surfaced by Netlist.Err and every downstream consumer) and
// returns a constant-0 bus of the given width so callers keep valid
// signal ids.
func zeroBus(n *logic.Netlist, width int, group, op, format string, args ...any) logic.Bus {
	n.Failf(op, format, args...)
	zero := n.AddG(logic.Const0, group)
	out := make(logic.Bus, width)
	for i := range out {
		out[i] = zero
	}
	return out
}

// RippleAdder builds a width-|a| ripple-carry adder; cin < 0 means no
// carry-in (constant 0). Returns the sum bus and carry-out signal.
// Mismatched operand widths record a sticky error on the netlist.
func RippleAdder(n *logic.Netlist, a, b logic.Bus, cin int, group string) (logic.Bus, int) {
	if len(a) != len(b) {
		out := zeroBus(n, len(a), group, "rtlib.RippleAdder", "adder width mismatch %d vs %d", len(a), len(b))
		return out, n.AddG(logic.Const0, group)
	}
	if cin < 0 {
		cin = n.AddG(logic.Const0, group)
	}
	sum := make(logic.Bus, len(a))
	c := cin
	for i := range a {
		sum[i], c = FullAdder(n, a[i], b[i], c, group)
	}
	return sum, c
}

// RippleSubtractor computes a − b (two's complement) by adding the
// bitwise complement of b with carry-in 1. Returns difference and the
// final carry (1 means no borrow, i.e. a >= b unsigned).
func RippleSubtractor(n *logic.Netlist, a, b logic.Bus, group string) (logic.Bus, int) {
	nb := make(logic.Bus, len(b))
	for i, s := range b {
		nb[i] = n.AddG(logic.Not, group, s)
	}
	one := n.AddG(logic.Const1, group)
	return RippleAdderWithCarry(n, a, nb, one, group)
}

// RippleAdderWithCarry is RippleAdder with an explicit carry-in signal.
func RippleAdderWithCarry(n *logic.Netlist, a, b logic.Bus, cin int, group string) (logic.Bus, int) {
	return RippleAdder(n, a, b, cin, group)
}

// ArrayMultiplier builds an unsigned array multiplier producing the full
// 2·width product: AND-gate partial products reduced by ripple-adder
// rows. Its depth and reconvergence make it the glitchiest standard
// module — the paper's canonical "deep logic nesting" example.
func ArrayMultiplier(n *logic.Netlist, a, b logic.Bus, group string) logic.Bus {
	w := len(a)
	if len(b) != w {
		return zeroBus(n, 2*w, group, "rtlib.ArrayMultiplier", "multiplier width mismatch %d vs %d", w, len(b))
	}
	zero := n.AddG(logic.Const0, group)
	// acc holds the running sum, 2w bits.
	acc := make(logic.Bus, 2*w)
	for i := range acc {
		acc[i] = zero
	}
	for j := 0; j < w; j++ {
		// Partial product row j: a AND b[j], shifted left j.
		row := make(logic.Bus, w)
		for i := 0; i < w; i++ {
			row[i] = n.AddG(logic.And, group, a[i], b[j])
		}
		// Add row into acc[j : j+w] with ripple carry.
		c := zero
		for i := 0; i < w; i++ {
			acc[j+i], c = FullAdder(n, acc[j+i], row[i], c, group)
		}
		// Propagate the final carry up the remaining columns.
		for k := j + w; k < 2*w && c != zero; k++ {
			s := n.AddG(logic.Xor, group, acc[k], c)
			c = n.AddG(logic.And, group, acc[k], c)
			acc[k] = s
		}
	}
	return acc
}

// ConstShiftAdd multiplies a by the constant k using the shift-and-add
// decomposition (the §III-C strength-reduction transformation): one
// ripple adder per set bit of k beyond the first. The result is truncated
// to outWidth bits.
func ConstShiftAdd(n *logic.Netlist, a logic.Bus, k uint64, outWidth int, group string) logic.Bus {
	zero := n.AddG(logic.Const0, group)
	shifted := func(sh int) logic.Bus {
		out := make(logic.Bus, outWidth)
		for i := range out {
			src := i - sh
			if src >= 0 && src < len(a) {
				out[i] = a[src]
			} else {
				out[i] = zero
			}
		}
		return out
	}
	var acc logic.Bus
	for bit := 0; bit < 64 && bit < outWidth; bit++ {
		if k>>uint(bit)&1 == 0 {
			continue
		}
		term := shifted(bit)
		if acc == nil {
			acc = term
			continue
		}
		acc, _ = RippleAdder(n, acc, term, -1, group)
	}
	if acc == nil { // k == 0
		acc = make(logic.Bus, outWidth)
		for i := range acc {
			acc[i] = zero
		}
	}
	return acc
}

// EqualComparator returns a signal that is true when buses a and b are
// bitwise equal.
func EqualComparator(n *logic.Netlist, a, b logic.Bus, group string) int {
	if len(a) != len(b) {
		n.Failf("rtlib.EqualComparator", "comparator width mismatch %d vs %d", len(a), len(b))
		return n.AddG(logic.Const0, group)
	}
	xn := make([]int, len(a))
	for i := range a {
		xn[i] = n.AddG(logic.Xnor, group, a[i], b[i])
	}
	if len(xn) == 1 {
		return xn[0]
	}
	return n.AddG(logic.And, group, xn...)
}

// LessThanComparator returns a signal that is true when unsigned a < b,
// using the borrow of a ripple subtractor.
func LessThanComparator(n *logic.Netlist, a, b logic.Bus, group string) int {
	_, noBorrow := RippleSubtractor(n, a, b, group)
	return n.AddG(logic.Not, group, noBorrow)
}

// Incrementer returns a + 1 over the bus width (wrapping).
func Incrementer(n *logic.Netlist, a logic.Bus, group string) logic.Bus {
	out := make(logic.Bus, len(a))
	c := n.AddG(logic.Const1, group)
	for i := range a {
		out[i] = n.AddG(logic.Xor, group, a[i], c)
		if i < len(a)-1 {
			c = n.AddG(logic.And, group, a[i], c)
		}
	}
	return out
}

// Module is a standalone combinational datapath block with dedicated
// primary inputs, ready for characterization and macro-modeling.
type Module struct {
	Name string
	Net  *logic.Netlist
	A, B logic.Bus // operand input buses (B may be nil for unary blocks)
	Out  logic.Bus
}

// NewAdder returns a standalone width-bit adder module.
func NewAdder(width int) *Module {
	n := logic.New()
	a := n.AddInputBus("a", width)
	b := n.AddInputBus("b", width)
	sum, cout := RippleAdder(n, a, b, -1, "exec")
	n.MarkOutputBus(sum)
	n.MarkOutput(cout)
	return &Module{Name: fmt.Sprintf("add%d", width), Net: n, A: a, B: b, Out: append(append(logic.Bus{}, sum...), cout)}
}

// NewMultiplier returns a standalone width×width array multiplier.
func NewMultiplier(width int) *Module {
	n := logic.New()
	a := n.AddInputBus("a", width)
	b := n.AddInputBus("b", width)
	p := ArrayMultiplier(n, a, b, "exec")
	n.MarkOutputBus(p)
	return &Module{Name: fmt.Sprintf("mul%d", width), Net: n, A: a, B: b, Out: p}
}

// NewSubtractor returns a standalone width-bit subtractor.
func NewSubtractor(width int) *Module {
	n := logic.New()
	a := n.AddInputBus("a", width)
	b := n.AddInputBus("b", width)
	d, _ := RippleSubtractor(n, a, b, "exec")
	n.MarkOutputBus(d)
	return &Module{Name: fmt.Sprintf("sub%d", width), Net: n, A: a, B: b, Out: d}
}

// NewComparator returns a standalone unsigned less-than comparator.
func NewComparator(width int) *Module {
	n := logic.New()
	a := n.AddInputBus("a", width)
	b := n.AddInputBus("b", width)
	lt := LessThanComparator(n, a, b, "exec")
	n.MarkOutput(lt)
	return &Module{Name: fmt.Sprintf("cmp%d", width), Net: n, A: a, B: b, Out: logic.Bus{lt}}
}

// Width returns the operand width of the module.
func (m *Module) Width() int { return len(m.A) }

// InputVector packs operand words into the module's primary-input order.
func (m *Module) InputVector(a, b uint64) []bool {
	vec := make([]bool, 0, len(m.A)+len(m.B))
	vec = append(vec, bitutil.ToBits(a, len(m.A))...)
	if len(m.B) > 0 {
		vec = append(vec, bitutil.ToBits(b, len(m.B))...)
	}
	return vec
}

// InputWord packs operand words into one input word — bit i holds the
// value InputVector would put at position i — for the packed kernel's
// WordInputs fast path. The two must stay in lockstep: sim feeds both
// against the same primary-input order, and the batch pipeline's
// bit-identity rests on them agreeing.
func (m *Module) InputWord(a, b uint64) uint64 {
	w := a & bitutil.Mask(len(m.A))
	if len(m.B) > 0 {
		w |= (b & bitutil.Mask(len(m.B))) << uint(len(m.A))
	}
	return w
}

// OutputWord decodes the module's settled output bus into an integer.
func (m *Module) OutputWord(out []bool) uint64 {
	return bitutil.FromBits(out)
}

// SimulateStream runs the module over paired operand streams and returns
// the simulation result under the given delay model.
func (m *Module) SimulateStream(aStream, bStream []uint64, model sim.DelayModel) (*sim.Result, error) {
	return m.SimulateStreamBudget(nil, aStream, bStream, model) // nil budget never trips
}

// SimulateStreamBudget is SimulateStream governed by a resource budget,
// so characterization streams respect deadlines, cancellation, and
// injected faults like every other estimation stage.
func (m *Module) SimulateStreamBudget(bud *budget.Budget, aStream, bStream []uint64, model sim.DelayModel) (*sim.Result, error) {
	if len(bStream) > 0 && len(aStream) != len(bStream) {
		return nil, fmt.Errorf("rtlib: stream lengths differ (%d vs %d)", len(aStream), len(bStream))
	}
	prov := func(c int) []bool {
		var b uint64
		if len(bStream) > 0 {
			b = bStream[c]
		}
		return m.InputVector(aStream[c], b)
	}
	// The packed entry point auto-selects: rtlib modules are
	// combinational, so zero-delay streams ride the 64-lane kernel and
	// event-driven streams fall back to the scalar engine, with
	// bit-identical results and step accounting either way.
	return sim.RunPackedBudget(bud, m.Net, prov, len(aStream), sim.Options{Model: model})
}

// EnergyPerPair measures the average switched capacitance per input pair
// of the module under the given delay model — the ground truth the
// macro-models approximate.
func (m *Module) EnergyPerPair(aStream, bStream []uint64, model sim.DelayModel) (float64, error) {
	res, err := m.SimulateStream(aStream, bStream, model)
	if err != nil {
		return 0, err
	}
	if res.Cycles == 0 {
		return 0, nil
	}
	return res.SwitchedCap / float64(res.Cycles), nil
}

// CarrySelectAdder builds a two-block carry-select adder: the upper half
// is computed for both carry-in values and selected by the lower half's
// carry-out. Same function as RippleAdder with roughly half the depth at
// more area — the architectural alternative the §II-C1 macro-models are
// parameterized over.
func CarrySelectAdder(n *logic.Netlist, a, b logic.Bus, group string) (logic.Bus, int) {
	w := len(a)
	if len(b) != w {
		out := zeroBus(n, w, group, "rtlib.CarrySelectAdder", "adder width mismatch %d vs %d", w, len(b))
		return out, n.AddG(logic.Const0, group)
	}
	if w < 2 {
		return RippleAdder(n, a, b, -1, group)
	}
	half := w / 2
	sumLo, cLo := RippleAdder(n, a[:half], b[:half], -1, group)
	zero := n.AddG(logic.Const0, group)
	one := n.AddG(logic.Const1, group)
	sum0, c0 := RippleAdderWithCarry(n, a[half:], b[half:], zero, group)
	sum1, c1 := RippleAdderWithCarry(n, a[half:], b[half:], one, group)
	sumHi := n.MuxBus(cLo, sum0, sum1, group)
	cout := n.AddG(logic.Mux, group, cLo, c0, c1)
	return append(append(logic.Bus{}, sumLo...), sumHi...), cout
}

// NewCarrySelectAdder returns a standalone carry-select adder module.
func NewCarrySelectAdder(width int) *Module {
	n := logic.New()
	a := n.AddInputBus("a", width)
	b := n.AddInputBus("b", width)
	sum, cout := CarrySelectAdder(n, a, b, "exec")
	n.MarkOutputBus(sum)
	n.MarkOutput(cout)
	return &Module{Name: fmt.Sprintf("csel%d", width), Net: n, A: a, B: b,
		Out: append(append(logic.Bus{}, sum...), cout)}
}
