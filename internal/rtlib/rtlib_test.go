package rtlib

import (
	"math/rand"
	"testing"

	"hlpower/internal/bitutil"
	"hlpower/internal/logic"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

// runCombinational simulates a module for one vector per cycle and
// returns the decoded output words.
func runWords(t *testing.T, m *Module, as, bs []uint64) []uint64 {
	t.Helper()
	res, err := m.SimulateStream(as, bs, sim.ZeroDelay)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]uint64, len(res.Outputs))
	for i, o := range res.Outputs {
		out[i] = bitutil.FromBits(o)
	}
	return out
}

func TestAdderCorrect(t *testing.T) {
	m := NewAdder(8)
	rng := rand.New(rand.NewSource(1))
	as := trace.Uniform(200, 8, rng)
	bs := trace.Uniform(200, 8, rng)
	outs := runWords(t, m, as, bs)
	for i := range as {
		want := (as[i] + bs[i]) & 0x1FF // 8-bit sum + carry
		if outs[i] != want {
			t.Fatalf("add %d+%d = %d, want %d", as[i], bs[i], outs[i], want)
		}
	}
}

func TestAdderExhaustiveSmall(t *testing.T) {
	m := NewAdder(3)
	var as, bs []uint64
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			as = append(as, a)
			bs = append(bs, b)
		}
	}
	outs := runWords(t, m, as, bs)
	for i := range as {
		if outs[i] != as[i]+bs[i] {
			t.Fatalf("3-bit add %d+%d = %d", as[i], bs[i], outs[i])
		}
	}
}

func TestMultiplierCorrect(t *testing.T) {
	m := NewMultiplier(6)
	rng := rand.New(rand.NewSource(2))
	as := trace.Uniform(200, 6, rng)
	bs := trace.Uniform(200, 6, rng)
	outs := runWords(t, m, as, bs)
	for i := range as {
		if outs[i] != as[i]*bs[i] {
			t.Fatalf("mul %d*%d = %d, want %d", as[i], bs[i], outs[i], as[i]*bs[i])
		}
	}
}

func TestMultiplierExhaustiveSmall(t *testing.T) {
	m := NewMultiplier(3)
	var as, bs []uint64
	for a := uint64(0); a < 8; a++ {
		for b := uint64(0); b < 8; b++ {
			as = append(as, a)
			bs = append(bs, b)
		}
	}
	outs := runWords(t, m, as, bs)
	for i := range as {
		if outs[i] != as[i]*bs[i] {
			t.Fatalf("3-bit mul %d*%d = %d", as[i], bs[i], outs[i])
		}
	}
}

func TestSubtractorCorrect(t *testing.T) {
	m := NewSubtractor(8)
	rng := rand.New(rand.NewSource(3))
	as := trace.Uniform(200, 8, rng)
	bs := trace.Uniform(200, 8, rng)
	outs := runWords(t, m, as, bs)
	for i := range as {
		want := (as[i] - bs[i]) & 0xFF
		if outs[i] != want {
			t.Fatalf("sub %d-%d = %d, want %d", as[i], bs[i], outs[i], want)
		}
	}
}

func TestComparatorCorrect(t *testing.T) {
	m := NewComparator(6)
	rng := rand.New(rand.NewSource(4))
	as := trace.Uniform(300, 6, rng)
	bs := trace.Uniform(300, 6, rng)
	outs := runWords(t, m, as, bs)
	for i := range as {
		want := uint64(0)
		if as[i] < bs[i] {
			want = 1
		}
		if outs[i] != want {
			t.Fatalf("cmp %d<%d = %d, want %d", as[i], bs[i], outs[i], want)
		}
	}
}

func TestEqualComparator(t *testing.T) {
	n := logic.New()
	a := n.AddInputBus("a", 4)
	b := n.AddInputBus("b", 4)
	eq := EqualComparator(n, a, b, "exec")
	n.MarkOutput(eq)
	for i := uint64(0); i < 16; i++ {
		for j := uint64(0); j < 16; j++ {
			vec := append(bitutil.ToBits(i, 4), bitutil.ToBits(j, 4)...)
			res, err := sim.Run(n, sim.VectorInputs([][]bool{vec}), 1, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.Outputs[0][0] != (i == j) {
				t.Fatalf("eq(%d,%d) wrong", i, j)
			}
		}
	}
}

func TestIncrementer(t *testing.T) {
	n := logic.New()
	a := n.AddInputBus("a", 4)
	out := Incrementer(n, a, "exec")
	n.MarkOutputBus(out)
	for i := uint64(0); i < 16; i++ {
		res, err := sim.Run(n, sim.VectorInputs([][]bool{bitutil.ToBits(i, 4)}), 1, sim.Options{})
		if err != nil {
			t.Fatal(err)
		}
		got := bitutil.FromBits(res.Outputs[0])
		if got != (i+1)&0xF {
			t.Fatalf("inc(%d) = %d", i, got)
		}
	}
}

func TestConstShiftAddMatchesMultiplication(t *testing.T) {
	for _, k := range []uint64{0, 1, 2, 3, 5, 10, 13} {
		n := logic.New()
		a := n.AddInputBus("a", 6)
		out := ConstShiftAdd(n, a, k, 12, "exec")
		n.MarkOutputBus(out)
		rng := rand.New(rand.NewSource(int64(k) + 7))
		for trial := 0; trial < 30; trial++ {
			v := rng.Uint64() & 0x3F
			res, err := sim.Run(n, sim.VectorInputs([][]bool{bitutil.ToBits(v, 6)}), 1, sim.Options{})
			if err != nil {
				t.Fatal(err)
			}
			got := bitutil.FromBits(res.Outputs[0])
			want := (v * k) & 0xFFF
			if got != want {
				t.Fatalf("k=%d: %d*%d = %d, want %d", k, v, k, got, want)
			}
		}
	}
}

func TestConstShiftAddCheaperThanMultiplier(t *testing.T) {
	// The whole point of strength reduction: constant shift-add uses far
	// fewer gates than a general array multiplier.
	width := 8
	mul := NewMultiplier(width)
	n := logic.New()
	a := n.AddInputBus("a", width)
	out := ConstShiftAdd(n, a, 5, 2*width, "exec")
	n.MarkOutputBus(out)
	if n.NumCombinational() >= mul.Net.NumCombinational()/2 {
		t.Errorf("shift-add gates %d not well below multiplier %d",
			n.NumCombinational(), mul.Net.NumCombinational())
	}
}

func TestMultiplierGlitchesExceedAdder(t *testing.T) {
	// Deep reconvergent multiplier logic glitches far more than the adder
	// (the §II-C1 motivation for input-output macro-models).
	rng := rand.New(rand.NewSource(5))
	as := trace.Uniform(150, 8, rng)
	bs := trace.Uniform(150, 8, rng)
	add := NewAdder(8)
	mul := NewMultiplier(8)
	ea, err := add.EnergyPerPair(as, bs, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	em, err := mul.EnergyPerPair(as, bs, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	if em < 3*ea {
		t.Errorf("multiplier energy %v not well above adder %v", em, ea)
	}
}

func TestEnergyDataDependence(t *testing.T) {
	// One constant operand must dissipate less than two random operands —
	// the data dependence the PFA model misses (§II-C1).
	rng := rand.New(rand.NewSource(6))
	mul := NewMultiplier(8)
	as := trace.Uniform(200, 8, rng)
	bs := trace.Uniform(200, 8, rng)
	ones := trace.Constant(200, 8, 1)
	eRand, err := mul.EnergyPerPair(as, bs, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	eConst, err := mul.EnergyPerPair(ones, as, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	if eConst >= eRand {
		t.Errorf("constant-operand energy %v should be below random %v", eConst, eRand)
	}
}

func TestModuleStreamLengthMismatch(t *testing.T) {
	m := NewAdder(4)
	if _, err := m.SimulateStream([]uint64{1, 2}, []uint64{1}, sim.ZeroDelay); err == nil {
		t.Error("expected length mismatch error")
	}
}

func TestCarrySelectAdderCorrect(t *testing.T) {
	m := NewCarrySelectAdder(8)
	rng := rand.New(rand.NewSource(7))
	as := trace.Uniform(300, 8, rng)
	bs := trace.Uniform(300, 8, rng)
	outs := runWords(t, m, as, bs)
	for i := range as {
		want := (as[i] + bs[i]) & 0x1FF
		if outs[i] != want {
			t.Fatalf("csel %d+%d = %d, want %d", as[i], bs[i], outs[i], want)
		}
	}
}

func TestCarrySelectExhaustiveSmall(t *testing.T) {
	m := NewCarrySelectAdder(4)
	var as, bs []uint64
	for a := uint64(0); a < 16; a++ {
		for b := uint64(0); b < 16; b++ {
			as = append(as, a)
			bs = append(bs, b)
		}
	}
	outs := runWords(t, m, as, bs)
	for i := range as {
		if outs[i] != as[i]+bs[i] {
			t.Fatalf("4-bit csel %d+%d = %d", as[i], bs[i], outs[i])
		}
	}
}

func TestCarrySelectArchTradeoff(t *testing.T) {
	// Same function, different architecture: carry-select is shallower
	// (faster) but larger than ripple — the organization knob the
	// macro-models are parameterized by.
	ripple := NewAdder(16)
	csel := NewCarrySelectAdder(16)
	if csel.Net.Depth() >= ripple.Net.Depth() {
		t.Errorf("carry-select depth %d should beat ripple %d",
			csel.Net.Depth(), ripple.Net.Depth())
	}
	if csel.Net.NumCombinational() <= ripple.Net.NumCombinational() {
		t.Errorf("carry-select gates %d should exceed ripple %d",
			csel.Net.NumCombinational(), ripple.Net.NumCombinational())
	}
}

func TestArchitectureChangesMacroModel(t *testing.T) {
	// The two adder architectures need different characterizations: a
	// PFA constant fitted on one mispredicts the other.
	rng := rand.New(rand.NewSource(8))
	as := trace.Uniform(400, 8, rng)
	bs := trace.Uniform(400, 8, rng)
	ripple := NewAdder(8)
	csel := NewCarrySelectAdder(8)
	er, err := ripple.EnergyPerPair(as, bs, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	ec, err := csel.EnergyPerPair(as, bs, sim.EventDriven)
	if err != nil {
		t.Fatal(err)
	}
	if rel := (ec - er) / er; rel < 0.1 && rel > -0.1 {
		t.Errorf("architectures should differ measurably in energy: ripple %v csel %v", er, ec)
	}
}
