// Package resilience provides the fault-tolerance primitives of the
// estimation service: retry with exponential backoff and full jitter,
// per-subsystem circuit breakers, hedged requests for idempotent
// operations, and panic-safe work units. Everything time-dependent is
// driven through a Clock so tests replace the wall clock with a fake
// and assert transition sequences deterministically — the same design
// discipline budget.FaultPlan applies to failure injection.
package resilience

import (
	"context"
	"sync"
	"time"
)

// Clock abstracts the two time operations the package needs: reading
// the current instant and sleeping for a backoff interval. Production
// code uses Wall; tests use Fake to make every delay and breaker
// transition deterministic.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// Wall is the real wall clock.
type Wall struct{}

// Now returns time.Now().
func (Wall) Now() time.Time { return time.Now() }

// Sleep waits for d or the context, whichever ends first.
func (Wall) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Fake is a manual clock for tests. Sleep advances virtual time
// immediately and records the requested duration, so a retry loop under
// Fake runs its whole backoff schedule synchronously and the recorded
// sequence can be compared exactly. Advance moves time for components
// (like a breaker's open timeout) that only read Now.
type Fake struct {
	mu    sync.Mutex
	now   time.Time
	slept []time.Duration
}

// NewFake returns a fake clock starting at the given instant.
func NewFake(start time.Time) *Fake { return &Fake{now: start} }

// Now returns the current virtual time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Sleep advances virtual time by d and records it. A done context still
// wins, matching Wall's contract.
func (f *Fake) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if d > 0 {
		f.now = f.now.Add(d)
	}
	f.slept = append(f.slept, d)
	return nil
}

// Advance moves virtual time forward by d.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
}

// Slept returns a copy of the recorded sleep durations in order.
func (f *Fake) Slept() []time.Duration {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]time.Duration, len(f.slept))
	copy(out, f.slept)
	return out
}
