package resilience

import (
	"errors"
	"time"

	"context"
)

// RetryPolicy is retry with exponential backoff and full jitter: the
// delay before attempt k+1 is drawn uniformly from [0, min(MaxDelay,
// BaseDelay·Multiplier^k)). Full jitter (rather than equal or
// decorrelated jitter) spreads synchronized retry storms across the
// whole window, which is what an estimation service hammered by an
// optimizer loop needs. The jitter stream is seeded, so for a fixed
// Seed the backoff schedule is fully deterministic — tests pin the
// exact sequence under a Fake clock.
type RetryPolicy struct {
	MaxAttempts int           // total attempts including the first (0 or less means 1)
	BaseDelay   time.Duration // backoff ceiling before attempt 2
	MaxDelay    time.Duration // overall backoff cap (0 = BaseDelay·Multiplier^k uncapped)
	Multiplier  float64       // ceiling growth per attempt (0 means 2)
	Seed        uint64        // jitter stream seed
}

// DefaultRetry is a conservative service-side policy: three attempts
// with ceilings 10ms, 20ms.
func DefaultRetry() RetryPolicy {
	return RetryPolicy{MaxAttempts: 3, BaseDelay: 10 * time.Millisecond, MaxDelay: 100 * time.Millisecond, Multiplier: 2}
}

// permanentError marks an error that must not be retried (malformed
// input, an open circuit breaker). It unwraps to the cause so typed
// matching still works through it.
type permanentError struct{ err error }

func (p *permanentError) Error() string { return p.err.Error() }
func (p *permanentError) Unwrap() error { return p.err }

// Permanent wraps err so Do stops retrying and returns it immediately.
// A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err: err}
}

// IsPermanent reports whether err (anywhere in its chain) was marked
// with Permanent.
func IsPermanent(err error) bool {
	var p *permanentError
	return errors.As(err, &p)
}

// Backoff returns the pre-jitter ceiling for the delay after attempt
// number attempt (0-based): min(MaxDelay, BaseDelay·Multiplier^attempt).
func (p RetryPolicy) Backoff(attempt int) time.Duration {
	mult := p.Multiplier
	if mult <= 0 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 0; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			return p.MaxDelay
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		return p.MaxDelay
	}
	return time.Duration(d)
}

// Do runs op up to MaxAttempts times, sleeping a jittered backoff
// between attempts on c. It stops early on success, on a Permanent
// error, or when the context ends mid-backoff (returning the context
// error joined with the last attempt's error so both are matchable).
// The returned error is the last attempt's, unwrapped of the Permanent
// marker's effect only in classification — callers still match the
// cause with errors.Is/As.
func (p RetryPolicy) Do(ctx context.Context, c Clock, op func(attempt int) error) error {
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	if c == nil {
		c = Wall{}
	}
	rng := newSplitmix(p.Seed)
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		last = op(attempt)
		if last == nil || IsPermanent(last) {
			return last
		}
		if attempt == attempts-1 {
			break
		}
		ceiling := p.Backoff(attempt)
		delay := time.Duration(rng.float() * float64(ceiling))
		if err := c.Sleep(ctx, delay); err != nil {
			return errors.Join(last, err)
		}
	}
	return last
}

// splitmix is the same allocation-free deterministic generator the
// budget fault plan uses, so resilience jitter stays reproducible under
// -race and independent of math/rand global state.
type splitmix struct{ state uint64 }

func newSplitmix(seed uint64) *splitmix {
	return &splitmix{state: seed*0x9E3779B97F4A7C15 + 0xD1B54A32D192ED03}
}

func (s *splitmix) float() float64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}
