package resilience

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// transitionLog records breaker transitions with their fake-clock
// timestamps, so two identical runs can be compared exactly.
type transitionLog struct {
	mu      sync.Mutex
	entries []string
}

func (l *transitionLog) hook() func(string, BreakerState, BreakerState, time.Time) {
	return func(name string, from, to BreakerState, at time.Time) {
		l.mu.Lock()
		defer l.mu.Unlock()
		l.entries = append(l.entries, fmt.Sprintf("%s %v->%v @%d", name, from, to, at.UnixNano()))
	}
}

func (l *transitionLog) all() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.entries...)
}

// driveBreaker runs the canonical failure/recovery scenario against a
// fresh breaker on a fresh fake clock and returns the transition log.
func driveBreaker(t *testing.T) []string {
	t.Helper()
	clock := NewFake(time.Unix(100, 0))
	log := &transitionLog{}
	b := NewBreaker(BreakerConfig{
		Name:             "sim",
		FailureThreshold: 3,
		OpenTimeout:      50 * time.Millisecond,
		HalfOpenProbes:   2,
		Clock:            clock,
		OnTransition:     log.hook(),
	})

	// Two failures stay closed; the third opens.
	for i := 0; i < 2; i++ {
		if err := b.Do(func() error { return errBoom }); err == nil {
			t.Fatal("op error swallowed")
		}
		if b.State() != Closed {
			t.Fatalf("opened after %d failures, threshold is 3", i+1)
		}
	}
	if err := b.Do(func() error { return errBoom }); err == nil {
		t.Fatal("op error swallowed")
	}
	if b.State() != Open {
		t.Fatal("not open after reaching the failure threshold")
	}

	// Open fast-fails with the remaining window as Retry-After.
	clock.Advance(20 * time.Millisecond)
	err := b.Allow()
	var oe *OpenError
	if !errors.As(err, &oe) || !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker admitted a call: %v", err)
	}
	if oe.RetryAfter != 30*time.Millisecond {
		t.Fatalf("RetryAfter = %v, want the remaining 30ms window", oe.RetryAfter)
	}

	// After the timeout a single probe is admitted (half-open) and
	// concurrent calls are still rejected.
	clock.Advance(30 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected after open timeout: %v", err)
	}
	if b.State() != HalfOpen {
		t.Fatal("first post-timeout Allow should half-open")
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("second concurrent probe admitted: %v", err)
	}
	b.Record(nil) // probe 1 succeeds; still needs one more
	if b.State() != HalfOpen {
		t.Fatal("closed before HalfOpenProbes successes")
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatalf("probe 2 failed: %v", err)
	}
	if b.State() != Closed {
		t.Fatal("not closed after enough probe successes")
	}

	st := b.Stats()
	if st.Opened != 1 || st.HalfOpened != 1 || st.ClosedFromHalfOpen != 1 {
		t.Fatalf("transition counters = %+v, want 1/1/1", st)
	}
	if st.Rejected != 2 {
		t.Fatalf("rejected = %d, want 2", st.Rejected)
	}
	return log.all()
}

// TestBreakerTransitionsDeterministic is acceptance criterion (d) for
// the breaker: the full open/half-open/closed sequence, with
// timestamps, is identical across runs under the fake clock.
func TestBreakerTransitionsDeterministic(t *testing.T) {
	first := driveBreaker(t)
	second := driveBreaker(t)
	if len(first) != 3 {
		t.Fatalf("want 3 transitions (open, half-open, close), got %v", first)
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("runs diverge at transition %d: %q vs %q", i, first[i], second[i])
		}
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	clock := NewFake(time.Unix(0, 0))
	b := NewBreaker(BreakerConfig{Name: "x", FailureThreshold: 1, OpenTimeout: 10 * time.Millisecond, Clock: clock})
	b.Do(func() error { return errBoom })
	if b.State() != Open {
		t.Fatal("threshold 1 should open on first failure")
	}
	clock.Advance(11 * time.Millisecond)
	if err := b.Do(func() error { return errBoom }); err == nil {
		t.Fatal("probe error swallowed")
	}
	if b.State() != Open {
		t.Fatal("failed probe must reopen")
	}
	if got := b.Stats().Opened; got != 2 {
		t.Fatalf("opened counter = %d, want 2", got)
	}
	// The reopened window restarts from the probe failure.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("reopened breaker admitted a call: %v", err)
	}
}

func TestBreakerSuccessResetsFailureStreak(t *testing.T) {
	b := NewBreaker(BreakerConfig{Name: "x", FailureThreshold: 2, Clock: NewFake(time.Unix(0, 0))})
	b.Do(func() error { return errBoom })
	b.Do(func() error { return nil })
	b.Do(func() error { return errBoom })
	if b.State() != Closed {
		t.Fatal("non-consecutive failures must not open")
	}
}

func TestBreakerPermanentErrorsDoNotTrip(t *testing.T) {
	b := NewBreaker(BreakerConfig{Name: "x", FailureThreshold: 1, Clock: NewFake(time.Unix(0, 0))})
	for i := 0; i < 5; i++ {
		b.Do(func() error { return Permanent(errBoom) })
	}
	if b.State() != Closed {
		t.Fatal("input rejections (Permanent) counted as subsystem failures")
	}
	if st := b.Stats(); st.Successes != 5 || st.Failures != 0 {
		t.Fatalf("stats = %+v, want 5 successes", st)
	}
}

func TestBreakerConcurrentUse(t *testing.T) {
	b := NewBreaker(BreakerConfig{Name: "x", FailureThreshold: 3, OpenTimeout: time.Millisecond})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				b.Do(func() error {
					if (w+i)%3 == 0 {
						return errBoom
					}
					return nil
				})
			}
		}(w)
	}
	wg.Wait()
	st := b.Stats()
	if st.Successes+st.Failures+st.Rejected != 8*200 {
		t.Fatalf("accounting lost calls: %+v", st)
	}
}
