package resilience

import "hlpower/internal/hlerr"

// Safe runs op as a panic-safe work unit: any panic — typed hlerr
// throws and genuine bugs alike — comes back as the unit's error, the
// same containment policy the par worker pool and the hlpower facade
// apply. Service handlers wrap every estimation call in it so one bad
// request can never take the daemon down.
func Safe(op func() error) (err error) {
	defer hlerr.RecoverAll(&err)
	return op()
}

// SafeValue is Safe for value-returning operations.
func SafeValue[T any](op func() (T, error)) (v T, err error) {
	defer hlerr.RecoverAll(&err)
	return op()
}
