package resilience

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// openBreaker returns a breaker driven to Open on a fake clock, one
// tick away from admitting its first half-open probe.
func openBreaker(t *testing.T, probes int) (*Breaker, *Fake) {
	t.Helper()
	clock := NewFake(time.Unix(100, 0))
	b := NewBreaker(BreakerConfig{
		Name:             "ho",
		FailureThreshold: 1,
		OpenTimeout:      50 * time.Millisecond,
		HalfOpenProbes:   probes,
		Clock:            clock,
	})
	if err := b.Do(func() error { return errBoom }); err == nil {
		t.Fatal("op error swallowed")
	}
	if b.State() != Open {
		t.Fatal("setup: breaker not open")
	}
	clock.Advance(50 * time.Millisecond)
	return b, clock
}

// The half-open state admits exactly one probe at a time: a stampede
// of concurrent callers arriving the moment the open window expires
// must produce one admitted probe and reject the rest, however the
// goroutines interleave.
func TestBreakerHalfOpenConcurrentProbes(t *testing.T) {
	for round := 0; round < 50; round++ {
		b, _ := openBreaker(t, 1)
		const callers = 8
		var (
			admitted atomic.Int64
			rejected atomic.Int64
			start    sync.WaitGroup
			done     sync.WaitGroup
		)
		start.Add(1)
		for i := 0; i < callers; i++ {
			done.Add(1)
			go func() {
				defer done.Done()
				start.Wait()
				if err := b.Allow(); err != nil {
					if !errors.Is(err, ErrBreakerOpen) {
						t.Errorf("rejection is %v, want ErrBreakerOpen", err)
					}
					rejected.Add(1)
					return
				}
				admitted.Add(1)
				// Hold the probe slot briefly so siblings must decide while
				// it is busy, then succeed.
				time.Sleep(time.Millisecond)
				b.Record(nil)
			}()
		}
		start.Done()
		done.Wait()
		if a := admitted.Load(); a != 1 {
			t.Fatalf("round %d: %d probes admitted concurrently, want exactly 1", round, a)
		}
		if r := rejected.Load(); r != callers-1 {
			t.Fatalf("round %d: %d rejected, want %d", round, rejected.Load(), callers-1)
		}
		if b.State() != Closed {
			t.Fatalf("round %d: successful probe did not close the breaker", round)
		}
	}
}

// With HalfOpenProbes > 1, probes are still serialized: each Allow
// admits one probe only after the previous Record, and the breaker
// closes exactly at the configured probe count.
func TestBreakerHalfOpenSequentialProbeBudget(t *testing.T) {
	const probes = 3
	b, _ := openBreaker(t, probes)
	for i := 0; i < probes; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("probe %d not admitted: %v", i, err)
		}
		// While this probe is in flight, nothing else gets in.
		if err := b.Allow(); err == nil {
			t.Fatalf("probe %d: second concurrent probe admitted", i)
		}
		if i < probes-1 {
			b.Record(nil)
			if st := b.State(); st != HalfOpen {
				t.Fatalf("closed after %d/%d probe successes (state %v)", i+1, probes, st)
			}
		}
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatal("breaker not closed after full probe budget succeeded")
	}
}

// A probe failure at any point in the budget reopens immediately and
// resets the probe streak: the next half-open episode starts from
// zero, not from the prior episode's partial count.
func TestBreakerHalfOpenProbeStreakResets(t *testing.T) {
	b, clock := openBreaker(t, 2)
	// First probe succeeds, second fails: reopen.
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if err := b.Do(func() error { return errBoom }); err == nil {
		t.Fatal("op error swallowed")
	}
	if b.State() != Open {
		t.Fatal("probe failure did not reopen")
	}
	// Next episode: one success must NOT close (streak reset), two must.
	clock.Advance(50 * time.Millisecond)
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if st := b.State(); st != HalfOpen {
		t.Fatalf("state after first probe of new episode = %v, want half-open (streak must reset)", st)
	}
	if err := b.Do(func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if b.State() != Closed {
		t.Fatal("two fresh probe successes did not close")
	}
}

// Transition counters are monotone and mutually consistent under
// concurrent load: Opened >= HalfOpened >= ClosedFromHalfOpen at every
// observation point, and no counter ever decreases.
func TestBreakerTransitionCountersMonotonic(t *testing.T) {
	clock := NewFake(time.Unix(100, 0))
	b := NewBreaker(BreakerConfig{
		Name:             "mono",
		FailureThreshold: 2,
		OpenTimeout:      10 * time.Millisecond,
		HalfOpenProbes:   1,
		Clock:            clock,
	})
	var (
		load sync.WaitGroup
		stop atomic.Bool
		obs  sync.WaitGroup
		bad  atomic.Int64
	)
	// Observer: snapshots must never regress or violate the lattice.
	obs.Add(1)
	go func() {
		defer obs.Done()
		var prev BreakerStats
		for !stop.Load() {
			st := b.Stats()
			if st.Opened < prev.Opened || st.HalfOpened < prev.HalfOpened ||
				st.ClosedFromHalfOpen < prev.ClosedFromHalfOpen ||
				st.Successes < prev.Successes || st.Failures < prev.Failures ||
				st.Rejected < prev.Rejected {
				bad.Add(1)
			}
			// Every half-open came from an open, every half-open close from
			// a half-open entry.
			if st.HalfOpened > st.Opened || st.ClosedFromHalfOpen > st.HalfOpened {
				bad.Add(1)
			}
			prev = st
		}
	}()
	// Load: drive open/half-open/closed cycles from several goroutines
	// with a mix of outcomes while time advances.
	for w := 0; w < 4; w++ {
		load.Add(1)
		go func(seed int) {
			defer load.Done()
			for i := 0; i < 500; i++ {
				if err := b.Allow(); err == nil {
					// Failures come in bursts of two so even a single
					// goroutine's stream crosses the consecutive-failure
					// threshold and cycles the breaker.
					if (i/2+seed)%3 == 0 {
						b.Record(errBoom)
					} else {
						b.Record(nil)
					}
				}
				if i%20 == 0 {
					clock.Advance(10 * time.Millisecond)
				}
			}
		}(w)
	}
	load.Wait()
	stop.Store(true)
	obs.Wait()
	if bad.Load() != 0 {
		t.Fatalf("%d monotonicity/lattice violations observed", bad.Load())
	}
	st := b.Stats()
	if st.Opened == 0 || st.HalfOpened == 0 {
		t.Fatalf("load never cycled the breaker: %+v", st)
	}
}

// The hedge must cancel the losing attempt the moment a winner
// returns: the loser's context is done before Hedge itself returns.
func TestHedgeCancelsLosingAttempt(t *testing.T) {
	loserDone := make(chan struct{})
	v, attempt, err := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context, attempt int) (int, error) {
			if attempt == 0 {
				// The straggler: blocks until the hedge cancels it, then
				// proves it observed the cancellation.
				<-ctx.Done()
				close(loserDone)
				return 0, ctx.Err()
			}
			return 99, nil
		})
	if err != nil || v != 99 || attempt != 1 {
		t.Fatalf("got (%d, %d, %v), want backup win", v, attempt, err)
	}
	select {
	case <-loserDone:
		// The loser saw ctx.Done() — cancellation propagated.
	case <-time.After(2 * time.Second):
		t.Fatal("losing attempt never observed cancellation")
	}
}

// Symmetric case: the primary wins while the backup straggles; the
// backup must be cancelled rather than left running.
func TestHedgeCancelsStragglingBackup(t *testing.T) {
	primaryGate := make(chan struct{})
	backupLaunched := make(chan struct{})
	backupDone := make(chan struct{})
	go func() {
		// Release the primary only once the backup is actually running,
		// so both attempts are in flight and the backup must lose.
		<-backupLaunched
		close(primaryGate)
	}()
	v, attempt, err := Hedge(context.Background(), time.Millisecond,
		func(ctx context.Context, attempt int) (int, error) {
			if attempt == 1 {
				close(backupLaunched)
				<-ctx.Done()
				close(backupDone)
				return 0, ctx.Err()
			}
			<-primaryGate
			return 7, nil
		})
	if err != nil || v != 7 || attempt != 0 {
		t.Fatalf("got (%d, %d, %v), want primary win", v, attempt, err)
	}
	select {
	case <-backupDone:
	case <-time.After(2 * time.Second):
		t.Fatal("straggling backup never observed cancellation")
	}
}
