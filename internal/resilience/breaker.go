package resilience

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState int

// The three positions of the breaker state machine.
const (
	// Closed: requests flow; consecutive failures are counted.
	Closed BreakerState = iota
	// Open: requests fail fast until the open timeout elapses.
	Open
	// HalfOpen: a limited number of probe requests test recovery.
	HalfOpen
)

var stateNames = [...]string{Closed: "closed", Open: "open", HalfOpen: "half-open"}

func (s BreakerState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ErrBreakerOpen is the sentinel matched by errors.Is for every
// fast-fail rejection, whatever breaker issued it.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// OpenError is a fast-fail rejection from a specific breaker, carrying
// the wait the caller should impose before trying again (the basis for
// an HTTP Retry-After header).
type OpenError struct {
	Name       string
	RetryAfter time.Duration
}

// Error formats the rejection.
func (e *OpenError) Error() string {
	return fmt.Sprintf("resilience: %s breaker open, retry after %v", e.Name, e.RetryAfter)
}

// Is matches ErrBreakerOpen.
func (e *OpenError) Is(target error) bool { return target == ErrBreakerOpen }

// BreakerConfig parameterizes one breaker.
type BreakerConfig struct {
	Name             string
	FailureThreshold int           // consecutive failures that open the breaker (0 means 5)
	OpenTimeout      time.Duration // time in Open before probing (0 means 1s)
	HalfOpenProbes   int           // consecutive probe successes that close it (0 means 1)
	Clock            Clock         // nil means the wall clock
	// OnTransition, when set, observes every state change under the
	// breaker's clock. It is called outside the breaker lock.
	OnTransition func(name string, from, to BreakerState, at time.Time)
}

// BreakerStats is a point-in-time snapshot of one breaker, including
// cumulative transition counters — the observability surface the chaos
// soak asserts on.
type BreakerStats struct {
	Name                string `json:"name"`
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Successes           int64  `json:"successes"`
	Failures            int64  `json:"failures"`
	Rejected            int64  `json:"rejected"`
	Opened              int64  `json:"opened"`               // transitions into Open
	HalfOpened          int64  `json:"half_opened"`          // transitions Open -> HalfOpen
	ClosedFromHalfOpen  int64  `json:"closed_from_halfopen"` // transitions HalfOpen -> Closed
}

// Breaker is a closed/open/half-open circuit breaker. It opens after
// FailureThreshold consecutive failures, fails fast for OpenTimeout,
// then admits probes one at a time; HalfOpenProbes consecutive probe
// successes close it and any probe failure reopens it. All decisions
// read time from the injected Clock, so transition sequences are
// deterministic under a Fake clock. Safe for concurrent use.
type Breaker struct {
	cfg   BreakerConfig
	clock Clock

	mu          sync.Mutex
	state       BreakerState
	consecFails int
	openedAt    time.Time
	probeBusy   bool // a half-open probe is in flight
	probeOK     int  // consecutive probe successes this half-open episode
	stats       BreakerStats
}

// NewBreaker builds a breaker, applying config defaults.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenTimeout <= 0 {
		cfg.OpenTimeout = time.Second
	}
	if cfg.HalfOpenProbes <= 0 {
		cfg.HalfOpenProbes = 1
	}
	clock := cfg.Clock
	if clock == nil {
		clock = Wall{}
	}
	return &Breaker{cfg: cfg, clock: clock, stats: BreakerStats{Name: cfg.Name}}
}

// transition must be called with the lock held; it returns the callback
// to invoke once the lock is released.
func (b *Breaker) transition(to BreakerState, at time.Time) func() {
	from := b.state
	b.state = to
	switch to {
	case Open:
		b.stats.Opened++
		b.openedAt = at
		b.probeBusy = false
		b.probeOK = 0
	case HalfOpen:
		b.stats.HalfOpened++
		b.probeOK = 0
	case Closed:
		if from == HalfOpen {
			b.stats.ClosedFromHalfOpen++
		}
		b.consecFails = 0
	}
	if cb := b.cfg.OnTransition; cb != nil {
		name := b.cfg.Name
		return func() { cb(name, from, to, at) }
	}
	return nil
}

// Allow reports whether a call may proceed now. nil means yes — the
// caller must pair it with exactly one Record. A non-nil return is an
// *OpenError carrying the remaining fast-fail window.
func (b *Breaker) Allow() error {
	now := b.clock.Now()
	b.mu.Lock()
	var cb func()
	defer func() {
		b.mu.Unlock()
		if cb != nil {
			cb()
		}
	}()
	switch b.state {
	case Closed:
		return nil
	case Open:
		if wait := b.openedAt.Add(b.cfg.OpenTimeout).Sub(now); wait > 0 {
			b.stats.Rejected++
			return &OpenError{Name: b.cfg.Name, RetryAfter: wait}
		}
		cb = b.transition(HalfOpen, now)
		b.probeBusy = true
		return nil
	default: // HalfOpen
		if b.probeBusy {
			b.stats.Rejected++
			return &OpenError{Name: b.cfg.Name, RetryAfter: b.cfg.OpenTimeout}
		}
		b.probeBusy = true
		return nil
	}
}

// Record reports the outcome of a call previously admitted by Allow.
// A nil err — or one marked Permanent, which means the subsystem
// correctly rejected bad input rather than failing — counts as success.
func (b *Breaker) Record(err error) {
	failure := err != nil && !IsPermanent(err)
	now := b.clock.Now()
	b.mu.Lock()
	var cb func()
	defer func() {
		b.mu.Unlock()
		if cb != nil {
			cb()
		}
	}()
	if failure {
		b.stats.Failures++
	} else {
		b.stats.Successes++
	}
	switch b.state {
	case Closed:
		if failure {
			b.consecFails++
			if b.consecFails >= b.cfg.FailureThreshold {
				cb = b.transition(Open, now)
			}
		} else {
			b.consecFails = 0
		}
	case HalfOpen:
		b.probeBusy = false
		if failure {
			cb = b.transition(Open, now)
			return
		}
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenProbes {
			cb = b.transition(Closed, now)
		}
	case Open:
		// A call admitted before the trip finished late; its outcome is
		// already accounted in the totals and changes nothing else.
	}
}

// Do runs op under the breaker: fast-fails with *OpenError when the
// breaker rejects the call, otherwise records op's outcome.
func (b *Breaker) Do(op func() error) error {
	if err := b.Allow(); err != nil {
		return err
	}
	err := op()
	b.Record(err)
	return err
}

// State returns the current position.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Stats returns a snapshot of the breaker's counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	s := b.stats
	s.State = b.state.String()
	s.ConsecutiveFailures = b.consecFails
	return s
}
