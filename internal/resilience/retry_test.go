package resilience

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"
)

var errBoom = errors.New("boom")

// runSchedule drives a policy to exhaustion under a fake clock and
// returns the recorded backoff sequence.
func runSchedule(t *testing.T, p RetryPolicy) []time.Duration {
	t.Helper()
	clock := NewFake(time.Unix(0, 0))
	attempts := 0
	err := p.Do(context.Background(), clock, func(int) error {
		attempts++
		return errBoom
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("exhausted retry should return the last error, got %v", err)
	}
	if attempts != p.MaxAttempts {
		t.Fatalf("made %d attempts, want %d", attempts, p.MaxAttempts)
	}
	return clock.Slept()
}

// TestRetryBackoffDeterministic is acceptance criterion (d) for retry:
// for a fixed seed the full-jitter schedule is identical run to run,
// and every delay falls inside its exponential ceiling.
func TestRetryBackoffDeterministic(t *testing.T) {
	p := RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    80 * time.Millisecond,
		Multiplier:  2,
		Seed:        42,
	}
	first := runSchedule(t, p)
	second := runSchedule(t, p)
	if !reflect.DeepEqual(first, second) {
		t.Fatalf("same seed produced different schedules:\n%v\n%v", first, second)
	}
	if len(first) != p.MaxAttempts-1 {
		t.Fatalf("got %d sleeps, want %d", len(first), p.MaxAttempts-1)
	}
	for i, d := range first {
		ceiling := p.Backoff(i)
		if d < 0 || d >= ceiling {
			t.Errorf("sleep %d = %v outside [0, %v)", i, d, ceiling)
		}
	}
	// A different seed draws a different schedule (overwhelmingly likely
	// for 5 uniform draws; pinned here for these constants).
	p2 := p
	p2.Seed = 43
	if reflect.DeepEqual(first, runSchedule(t, p2)) {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestBackoffCeilingGrowthAndCap(t *testing.T) {
	p := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 35 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		35 * time.Millisecond, // capped: 40 > 35
		35 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i); got != w {
			t.Errorf("Backoff(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestRetryStopsOnSuccess(t *testing.T) {
	clock := NewFake(time.Unix(0, 0))
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	err := p.Do(context.Background(), clock, func(int) error {
		calls++
		if calls < 3 {
			return errBoom
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on third attempt", err, calls)
	}
	if got := len(clock.Slept()); got != 2 {
		t.Fatalf("slept %d times, want 2", got)
	}
}

func TestRetryPermanentStopsImmediately(t *testing.T) {
	clock := NewFake(time.Unix(0, 0))
	p := RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	calls := 0
	cause := errors.New("malformed request")
	err := p.Do(context.Background(), clock, func(int) error {
		calls++
		return Permanent(cause)
	})
	if calls != 1 {
		t.Fatalf("permanent error retried: %d calls", calls)
	}
	if !errors.Is(err, cause) || !IsPermanent(err) {
		t.Fatalf("got %v, want permanent wrapping of cause", err)
	}
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) must stay nil")
	}
}

func TestRetryContextCancelDuringBackoff(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond}
	err := p.Do(ctx, NewFake(time.Unix(0, 0)), func(int) error { return errBoom })
	if !errors.Is(err, context.Canceled) || !errors.Is(err, errBoom) {
		t.Fatalf("want joined context+attempt error, got %v", err)
	}
}

func TestWallSleepRespectsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	if err := (Wall{}).Sleep(ctx, time.Hour); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("cancelled sleep blocked")
	}
}
