package resilience

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestHedgeFastPrimaryWins(t *testing.T) {
	v, attempt, err := Hedge(context.Background(), time.Hour, func(ctx context.Context, attempt int) (int, error) {
		return 7, nil
	})
	if err != nil || v != 7 || attempt != 0 {
		t.Fatalf("got (%d, %d, %v), want primary success", v, attempt, err)
	}
}

func TestHedgeBackupRescuesStraggler(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	v, attempt, err := Hedge(context.Background(), time.Millisecond, func(ctx context.Context, attempt int) (int, error) {
		if attempt == 0 {
			select { // straggle until cancelled or the test ends
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-release:
				return 0, errors.New("too late")
			}
		}
		return 42, nil
	})
	if err != nil || v != 42 || attempt != 1 {
		t.Fatalf("got (%d, %d, %v), want backup success", v, attempt, err)
	}
}

func TestHedgeAllFailReturnsPrimaryError(t *testing.T) {
	primary := errors.New("primary failure")
	_, _, err := Hedge(context.Background(), time.Microsecond, func(ctx context.Context, attempt int) (int, error) {
		if attempt == 0 {
			time.Sleep(5 * time.Millisecond) // ensure the backup launches
			return 0, primary
		}
		return 0, errors.New("backup failure")
	})
	if !errors.Is(err, primary) {
		t.Fatalf("got %v, want the primary attempt's error", err)
	}
}

func TestHedgeZeroDelayRunsInline(t *testing.T) {
	before := runtime.NumGoroutine()
	v, attempt, err := Hedge(context.Background(), 0, func(ctx context.Context, attempt int) (string, error) {
		return "inline", nil
	})
	if err != nil || v != "inline" || attempt != 0 {
		t.Fatalf("got (%q, %d, %v)", v, attempt, err)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Fatalf("inline hedge spawned goroutines: %d -> %d", before, after)
	}
}

func TestHedgePanicContained(t *testing.T) {
	_, _, err := Hedge(context.Background(), time.Hour, func(ctx context.Context, attempt int) (int, error) {
		panic("estimator bug")
	})
	if err == nil {
		t.Fatal("panic in hedged op must surface as an error")
	}
}

// TestHedgeNoGoroutineLeak verifies a straggling loser that honours its
// context exits after the winner returns.
func TestHedgeNoGoroutineLeak(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 20; i++ {
		Hedge(context.Background(), 100*time.Microsecond, func(ctx context.Context, attempt int) (int, error) {
			if attempt == 0 {
				<-ctx.Done()
				return 0, ctx.Err()
			}
			return 1, nil
		})
	}
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > base+2 {
		t.Fatalf("goroutines leaked: %d at start, %d after", base, n)
	}
}

func TestSafeContainsPanics(t *testing.T) {
	if err := Safe(func() error { panic("boom") }); err == nil {
		t.Fatal("Safe let a panic escape as nil")
	}
	if err := Safe(func() error { return nil }); err != nil {
		t.Fatalf("Safe invented an error: %v", err)
	}
	v, err := SafeValue(func() (int, error) { return 3, nil })
	if v != 3 || err != nil {
		t.Fatalf("SafeValue = (%d, %v)", v, err)
	}
	if _, err := SafeValue(func() (int, error) { panic("boom") }); err == nil {
		t.Fatal("SafeValue let a panic escape")
	}
}
