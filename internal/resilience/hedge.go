package resilience

import (
	"context"
	"time"
)

// hedgeOutcome carries one attempt's result to the selector.
type hedgeOutcome[T any] struct {
	val     T
	err     error
	attempt int
}

// Hedge runs op and, if it has not finished within delay, launches one
// backup attempt of the same operation; the first success wins and the
// loser is cancelled through its context. Only use it for idempotent
// operations (power estimates are pure functions of their request).
// When every launched attempt fails, the primary attempt's error is
// returned — deterministic regardless of which attempt failed first.
// The result channel is buffered, so a straggling loser never leaks a
// goroutine even if it ignores cancellation.
//
// A nonpositive delay disables hedging and runs op inline. Hedging uses
// a real timer for the trigger: the race it resolves is physical
// (straggling goroutines), unlike retry backoff whose schedule tests
// pin with a fake clock.
func Hedge[T any](ctx context.Context, delay time.Duration, op func(ctx context.Context, attempt int) (T, error)) (T, int, error) {
	if delay <= 0 {
		v, err := op(ctx, 0)
		return v, 0, err
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan hedgeOutcome[T], 2)
	launch := func(attempt int) {
		go func() {
			v, err := SafeValue(func() (T, error) { return op(hctx, attempt) })
			results <- hedgeOutcome[T]{val: v, err: err, attempt: attempt}
		}()
	}
	launch(0)
	launched := 1
	timer := time.NewTimer(delay)
	defer timer.Stop()

	var primaryErr error
	failed := 0
	for {
		select {
		case <-timer.C:
			if launched == 1 {
				launch(1)
				launched = 2
			}
		case out := <-results:
			if out.err == nil {
				return out.val, out.attempt, nil
			}
			if out.attempt == 0 {
				primaryErr = out.err
			}
			failed++
			if failed == launched {
				// Everything launched has failed. If only the primary ran,
				// its error is the answer; otherwise prefer the primary's
				// error for determinism.
				if primaryErr == nil {
					primaryErr = out.err
				}
				var zero T
				return zero, 0, primaryErr
			}
		case <-ctx.Done():
			var zero T
			return zero, 0, ctx.Err()
		}
	}
}
