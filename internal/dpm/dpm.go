// Package dpm implements the system-level dynamic power management of
// §III-B: an event-driven device alternating Active and Idle states, a
// session-structured workload generator, and the shutdown policies the
// paper surveys — always-on, the clairvoyant oracle, the static timeout
// of Fig. 3, Srivastava's regression and threshold predictors [58], and
// the Hwang–Wu exponential-average predictor with prewakeup [59].
package dpm

import (
	"math"
	"math/rand"

	"hlpower/internal/budget"
)

// Period is one completed activity burst followed by its idle interval.
type Period struct {
	Active float64
	Idle   float64
}

// Device holds the power/transition parameters of the managed resource.
type Device struct {
	PActive  float64 // power while serving
	PIdle    float64 // power while idle but powered
	PSleep   float64 // power while shut down
	TRestart float64 // wake-up latency
	ERestart float64 // wake-up energy overhead
}

// DefaultDevice resembles the paper's X-server scenario: idling costs
// nearly as much as working, sleep is nearly free, and restarting is
// fast relative to session gaps.
func DefaultDevice() Device {
	return Device{PActive: 1.0, PIdle: 0.9, PSleep: 0.01, TRestart: 0.15, ERestart: 0.9}
}

// Breakeven returns the minimum idle length for which sleeping pays off.
func (d Device) Breakeven() float64 {
	if d.PIdle <= d.PSleep {
		return math.Inf(1)
	}
	return d.ERestart / (d.PIdle - d.PSleep)
}

// Decision is a policy's answer on entering the Idle state: sleep after
// Timeout (Inf = stay powered), and optionally pre-wake after Prewake
// time from idle start (0 = wake on demand only).
type Decision struct {
	Timeout float64
	Prewake float64
}

// Policy decides shutdowns from the observed history.
type Policy interface {
	Name() string
	// Decide is called at each idle-state entry with the just-finished
	// activity burst and the completed history.
	Decide(lastActive float64, history []Period) Decision
	Reset()
}

// Result aggregates a simulated run.
type Result struct {
	Energy       float64
	TotalTime    float64
	ActiveTime   float64
	IdleTime     float64
	Shutdowns    int
	LatencyCost  float64 // total restart delay suffered on demand wakes
	DelayPenalty float64 // LatencyCost / ActiveTime
	AvgPower     float64
}

// Simulate runs the policy over the workload.
func Simulate(dev Device, pol Policy, workload []Period) Result {
	res, _ := SimulateBudget(nil, dev, pol, workload) // nil budget never trips
	return res
}

// SimulateBudget is Simulate governed by a resource budget: each
// workload period charges one step (regression policies cost real work
// per decision), so long synthetic workloads respect deadlines,
// cancellation, and injected faults. On exhaustion the partial result
// is abandoned and the error matches budget.ErrExceeded.
func SimulateBudget(b *budget.Budget, dev Device, pol Policy, workload []Period) (Result, error) {
	pol.Reset()
	var res Result
	var history []Period
	for _, p := range workload {
		if err := b.Step(1); err != nil {
			return Result{}, err
		}
		res.ActiveTime += p.Active
		res.IdleTime += p.Idle
		res.Energy += dev.PActive * p.Active
		d := pol.Decide(p.Active, history)
		timeout := math.Max(d.Timeout, 0)
		if timeout >= p.Idle {
			// Never slept during this idle interval.
			res.Energy += dev.PIdle * p.Idle
		} else {
			res.Shutdowns++
			sleepStart := timeout
			sleepEnd := p.Idle
			wokeEarly := false
			if d.Prewake > 0 && d.Prewake > sleepStart && d.Prewake < p.Idle {
				sleepEnd = d.Prewake
				wokeEarly = true
			}
			res.Energy += dev.PIdle * sleepStart
			res.Energy += dev.PSleep * (sleepEnd - sleepStart)
			res.Energy += dev.ERestart
			if wokeEarly {
				// Pre-woken: the device polls for one TRestart window.
				// If demand arrives within it, the restart latency is
				// hidden; otherwise the device re-sleeps until demand.
				poll := dev.TRestart
				remaining := p.Idle - sleepEnd
				if remaining <= poll {
					res.Energy += dev.PIdle * remaining
				} else {
					res.Energy += dev.PIdle * poll
					res.Energy += dev.PSleep * (remaining - poll)
					res.Energy += dev.ERestart
					res.LatencyCost += dev.TRestart
				}
			} else {
				res.LatencyCost += dev.TRestart
			}
		}
		history = append(history, p)
	}
	res.TotalTime = res.ActiveTime + res.IdleTime
	if res.ActiveTime > 0 {
		res.DelayPenalty = res.LatencyCost / res.ActiveTime
	}
	if res.TotalTime > 0 {
		res.AvgPower = res.Energy / res.TotalTime
	}
	return res, nil
}

// MaxImprovement is the paper's upper bound on shutdown gains:
// 1 + TI/TA (achieved by free, instant sleeping of all idle time).
func MaxImprovement(workload []Period) float64 {
	var ta, ti float64
	for _, p := range workload {
		ta += p.Active
		ti += p.Idle
	}
	if ta == 0 {
		return math.Inf(1)
	}
	return 1 + ti/ta
}

// ---------------------------------------------------------------------
// Policies.

// AlwaysOn never sleeps.
type AlwaysOn struct{}

func (AlwaysOn) Name() string { return "always-on" }
func (AlwaysOn) Reset()       {}
func (AlwaysOn) Decide(float64, []Period) Decision {
	return Decision{Timeout: math.Inf(1)}
}

// Oracle knows each idle interval's length in advance and sleeps
// immediately exactly when it pays off. Construct with the workload.
type Oracle struct {
	Dev      Device
	Workload []Period
	idx      int
}

func (o *Oracle) Name() string { return "oracle" }
func (o *Oracle) Reset()       { o.idx = 0 }
func (o *Oracle) Decide(lastActive float64, history []Period) Decision {
	idle := o.Workload[o.idx].Idle
	o.idx++
	if idle > o.Dev.Breakeven()+o.Dev.TRestart {
		return Decision{Timeout: 0}
	}
	return Decision{Timeout: math.Inf(1)}
}

// StaticTimeout is the conventional Fig. 3 policy: sleep after a fixed
// wait T in the Idle state.
type StaticTimeout struct{ T float64 }

func (s *StaticTimeout) Name() string { return "static-timeout" }
func (s *StaticTimeout) Reset()       {}
func (s *StaticTimeout) Decide(float64, []Period) Decision {
	return Decision{Timeout: s.T}
}

// Threshold is Srivastava's simple predictive rule: when the activity
// burst that just ended is shorter than the threshold, the coming idle
// period is predicted long and the device sleeps at once; otherwise it
// stays powered.
type Threshold struct{ ActiveThreshold float64 }

func (t *Threshold) Name() string { return "srivastava-threshold" }
func (t *Threshold) Reset()       {}
func (t *Threshold) Decide(lastActive float64, history []Period) Decision {
	if lastActive < t.ActiveThreshold {
		return Decision{Timeout: 0}
	}
	return Decision{Timeout: math.Inf(1)}
}

// Regression is Srivastava's second scheme: an online least-squares fit
// predicting the next idle length from a quadratic function of the
// previous active and idle durations; sleep immediately when the
// prediction exceeds the breakeven.
type Regression struct {
	Dev    Device
	Window int // history window used for the fit (default 32)
}

func (r *Regression) Name() string { return "srivastava-regression" }
func (r *Regression) Reset()       {}

func (r *Regression) Decide(lastActive float64, history []Period) Decision {
	if len(history) < 4 {
		return Decision{Timeout: math.Inf(1)}
	}
	window := r.Window
	if window <= 0 {
		window = 32
	}
	start := len(history) - window
	if start < 1 {
		start = 1
	}
	// Fit idle_i ~ c0 + c1·active_i + c2·active_i² + c3·idle_{i-1} by
	// least squares on the window (a small normal-equations solve).
	var X [][]float64
	var y []float64
	for i := start; i < len(history); i++ {
		a := history[i].Active
		X = append(X, []float64{1, a, a * a, history[i-1].Idle})
		y = append(y, history[i].Idle)
	}
	pred, ok := predictOLS(X, y, []float64{1, lastActive, lastActive * lastActive, history[len(history)-1].Idle})
	if !ok {
		return Decision{Timeout: math.Inf(1)}
	}
	if pred > r.Dev.Breakeven()+r.Dev.TRestart {
		return Decision{Timeout: 0}
	}
	return Decision{Timeout: math.Inf(1)}
}

// predictOLS solves the tiny least-squares system inline (degenerate
// windows return ok=false).
func predictOLS(X [][]float64, y []float64, x []float64) (float64, bool) {
	p := len(x)
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p+1)
	}
	for r := range X {
		for i := 0; i < p; i++ {
			for j := 0; j < p; j++ {
				xtx[i][j] += X[r][i] * X[r][j]
			}
			xtx[i][p] += X[r][i] * y[r]
		}
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < p; col++ {
		piv := col
		for r := col + 1; r < p; r++ {
			if math.Abs(xtx[r][col]) > math.Abs(xtx[piv][col]) {
				piv = r
			}
		}
		if math.Abs(xtx[piv][col]) < 1e-9 {
			return 0, false
		}
		xtx[col], xtx[piv] = xtx[piv], xtx[col]
		for r := col + 1; r < p; r++ {
			f := xtx[r][col] / xtx[col][col]
			for c := col; c <= p; c++ {
				xtx[r][c] -= f * xtx[col][c]
			}
		}
	}
	beta := make([]float64, p)
	for i := p - 1; i >= 0; i-- {
		s := xtx[i][p]
		for j := i + 1; j < p; j++ {
			s -= xtx[i][j] * beta[j]
		}
		beta[i] = s / xtx[i][i]
	}
	var pred float64
	for i := range x {
		pred += beta[i] * x[i]
	}
	return pred, true
}

// HwangWu keeps an exponential average of idle lengths
// (I ← a·i + (1−a)·I), sleeps immediately when the prediction clears
// the breakeven, and pre-wakes at the predicted idle end to avoid the
// restart latency. The misprediction-correction mechanism of [59] is
// modeled as a watchdog: when the prediction says "stay powered," a
// fallback timeout still catches underpredicted long idles (default
// 5× breakeven).
type HwangWu struct {
	Dev      Device
	Alpha    float64 // smoothing constant (default 0.5)
	Prewake  bool
	Watchdog float64 // fallback timeout (default 5× breakeven)
	avg      float64
	seeded   bool
}

func (h *HwangWu) Name() string { return "hwang-wu" }
func (h *HwangWu) Reset()       { h.avg = 0; h.seeded = false }

func (h *HwangWu) Decide(lastActive float64, history []Period) Decision {
	alpha := h.Alpha
	if alpha == 0 {
		alpha = 0.5
	}
	if len(history) > 0 {
		last := history[len(history)-1].Idle
		if !h.seeded {
			h.avg = last
			h.seeded = true
		} else {
			h.avg = alpha*last + (1-alpha)*h.avg
		}
	}
	watchdog := h.Watchdog
	if watchdog == 0 {
		watchdog = 5 * h.Dev.Breakeven()
	}
	if !h.seeded || h.avg <= h.Dev.Breakeven()+h.Dev.TRestart {
		// Prediction says short idle: stay powered, but let the
		// watchdog correct an underprediction.
		return Decision{Timeout: watchdog}
	}
	d := Decision{Timeout: 0}
	if h.Prewake {
		// Wake slightly before the predicted idle end.
		d.Prewake = h.avg - h.Dev.TRestart
	}
	return d
}

// ---------------------------------------------------------------------
// Workload generation.

// WorkloadParams shapes the session-structured event-driven workload:
// within a session, substantial activity bursts with short gaps; the
// burst closing a session is brief (the user's final interaction) and is
// followed by a long inter-session idle — the correlation Srivastava's
// threshold predictor exploits.
type WorkloadParams struct {
	Sessions      int
	BurstsPer     int
	MeanActive    float64
	MeanShortIdle float64
	MeanFinalAct  float64
	MeanLongIdle  float64
}

// DefaultWorkload resembles interactive traces: activity seconds, gaps
// under a second, inter-session idles of minutes.
func DefaultWorkload() WorkloadParams {
	return WorkloadParams{
		Sessions: 60, BurstsPer: 6,
		MeanActive: 1.0, MeanShortIdle: 0.4,
		MeanFinalAct: 0.1, MeanLongIdle: 300,
	}
}

// Generate draws a workload.
func Generate(p WorkloadParams, rng *rand.Rand) []Period {
	var w []Period
	for s := 0; s < p.Sessions; s++ {
		for b := 0; b < p.BurstsPer; b++ {
			w = append(w, Period{
				Active: rng.ExpFloat64() * p.MeanActive,
				Idle:   rng.ExpFloat64() * p.MeanShortIdle,
			})
		}
		w = append(w, Period{
			Active: rng.ExpFloat64() * p.MeanFinalAct,
			Idle:   rng.ExpFloat64() * p.MeanLongIdle,
		})
	}
	return w
}

// Improvement returns the power-improvement factor of a policy result
// relative to a baseline result on the same workload.
func Improvement(baseline, policy Result) float64 {
	if policy.Energy == 0 {
		return math.Inf(1)
	}
	return baseline.Energy / policy.Energy
}
