package dpm

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/budget"
)

func testWorkload(seed int64) []Period {
	return Generate(DefaultWorkload(), rand.New(rand.NewSource(seed)))
}

func TestBreakeven(t *testing.T) {
	d := Device{PIdle: 1, PSleep: 0, ERestart: 5}
	if d.Breakeven() != 5 {
		t.Errorf("breakeven = %v, want 5", d.Breakeven())
	}
	d.PSleep = 1
	if !math.IsInf(d.Breakeven(), 1) {
		t.Error("no idle saving should mean infinite breakeven")
	}
}

func TestAlwaysOnEnergy(t *testing.T) {
	dev := DefaultDevice()
	w := []Period{{Active: 2, Idle: 3}, {Active: 1, Idle: 4}}
	res := Simulate(dev, AlwaysOn{}, w)
	want := dev.PActive*3 + dev.PIdle*7
	if math.Abs(res.Energy-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", res.Energy, want)
	}
	if res.Shutdowns != 0 || res.LatencyCost != 0 {
		t.Error("always-on must never sleep")
	}
}

func TestStaticTimeoutAccounting(t *testing.T) {
	dev := Device{PActive: 1, PIdle: 1, PSleep: 0, TRestart: 0.1, ERestart: 0.5}
	w := []Period{{Active: 1, Idle: 10}}
	res := Simulate(dev, &StaticTimeout{T: 2}, w)
	// active 1 + idle-powered 2 + sleep 8*0 + restart 0.5
	want := 1.0 + 2.0 + 0.5
	if math.Abs(res.Energy-want) > 1e-9 {
		t.Errorf("energy = %v, want %v", res.Energy, want)
	}
	if res.Shutdowns != 1 {
		t.Errorf("shutdowns = %d, want 1", res.Shutdowns)
	}
	if math.Abs(res.LatencyCost-0.1) > 1e-9 {
		t.Errorf("latency = %v, want 0.1", res.LatencyCost)
	}
}

func TestTimeoutLongerThanIdleNeverSleeps(t *testing.T) {
	dev := DefaultDevice()
	w := []Period{{Active: 1, Idle: 1}}
	res := Simulate(dev, &StaticTimeout{T: 5}, w)
	if res.Shutdowns != 0 {
		t.Error("timeout longer than idle must not sleep")
	}
}

func TestOracleBeatsEveryoneAndRespectsBound(t *testing.T) {
	dev := DefaultDevice()
	w := testWorkload(1)
	on := Simulate(dev, AlwaysOn{}, w)
	oracle := Simulate(dev, &Oracle{Dev: dev, Workload: w}, w)
	bound := MaxImprovement(w)
	imp := Improvement(on, oracle)
	if imp <= 1 {
		t.Fatalf("oracle improvement %v should exceed 1", imp)
	}
	// The oracle cannot beat the theoretical maximum... it can approach
	// it. Allow a tiny numeric margin.
	if imp > bound*1.001 {
		t.Errorf("oracle improvement %v exceeds the 1+TI/TA bound %v", imp, bound)
	}
	for _, pol := range []Policy{
		&StaticTimeout{T: 2},
		&Threshold{ActiveThreshold: 0.5},
		&HwangWu{Dev: dev, Prewake: true},
		&Regression{Dev: dev},
	} {
		res := Simulate(dev, pol, w)
		if res.Energy < oracle.Energy*0.999 {
			t.Errorf("%s beat the oracle: %v < %v", pol.Name(), res.Energy, oracle.Energy)
		}
	}
}

func TestPredictiveBeatsStaticTimeout(t *testing.T) {
	// The §III-B claim: predictive shutdown recovers the power a static
	// timeout wastes waiting out its timer in every long idle period.
	dev := DefaultDevice()
	w := testWorkload(2)
	on := Simulate(dev, AlwaysOn{}, w)
	static := Simulate(dev, &StaticTimeout{T: 5}, w)
	thr := Simulate(dev, &Threshold{ActiveThreshold: 0.5}, w)
	if thr.Energy >= static.Energy {
		t.Errorf("threshold predictor energy %v should beat static %v", thr.Energy, static.Energy)
	}
	impStatic := Improvement(on, static)
	impThr := Improvement(on, thr)
	if impThr <= impStatic {
		t.Errorf("predictive improvement %v should exceed static %v", impThr, impStatic)
	}
	// Large improvements over always-on with small delay penalty.
	if impThr < 3 {
		t.Errorf("threshold improvement %v unexpectedly small", impThr)
	}
	if thr.DelayPenalty > 0.10 {
		t.Errorf("delay penalty %v too high", thr.DelayPenalty)
	}
}

func TestRegressionPredictorWorks(t *testing.T) {
	dev := DefaultDevice()
	w := testWorkload(3)
	on := Simulate(dev, AlwaysOn{}, w)
	reg := Simulate(dev, &Regression{Dev: dev}, w)
	if Improvement(on, reg) < 2 {
		t.Errorf("regression predictor improvement %v too small", Improvement(on, reg))
	}
}

func TestHwangWuPrewakeCutsLatency(t *testing.T) {
	// Prewakeup pays off when idle lengths are predictable: on a
	// constant-idle workload the exponential average converges and the
	// scheduled wake lands within the poll window, hiding the restart
	// latency entirely.
	dev := DefaultDevice()
	var w []Period
	for i := 0; i < 100; i++ {
		w = append(w, Period{Active: 1, Idle: 20})
	}
	noPre := Simulate(dev, &HwangWu{Dev: dev, Prewake: false}, w)
	pre := Simulate(dev, &HwangWu{Dev: dev, Prewake: true}, w)
	if noPre.Shutdowns == 0 {
		t.Fatal("hwang-wu never slept; workload too tame")
	}
	if pre.LatencyCost >= noPre.LatencyCost/2 {
		t.Errorf("prewakeup latency %v should be well below %v", pre.LatencyCost, noPre.LatencyCost)
	}
	if pre.Energy > noPre.Energy*1.1 {
		t.Errorf("prewakeup energy %v should stay near %v", pre.Energy, noPre.Energy)
	}
}

func TestMaxImprovement(t *testing.T) {
	w := []Period{{Active: 1, Idle: 9}}
	if MaxImprovement(w) != 10 {
		t.Errorf("bound = %v, want 10", MaxImprovement(w))
	}
	if !math.IsInf(MaxImprovement([]Period{{Active: 0, Idle: 1}}), 1) {
		t.Error("all-idle workload should have infinite bound")
	}
}

func TestGenerateShape(t *testing.T) {
	p := DefaultWorkload()
	w := Generate(p, rand.New(rand.NewSource(5)))
	if len(w) != p.Sessions*(p.BurstsPer+1) {
		t.Fatalf("workload length %d", len(w))
	}
	for _, per := range w {
		if per.Active < 0 || per.Idle < 0 {
			t.Fatal("negative period")
		}
	}
	// Idle time should dominate (the premise of shutdown techniques).
	if MaxImprovement(w) < 3 {
		t.Errorf("workload not idle-dominated: bound %v", MaxImprovement(w))
	}
}

func TestSimulateDeterministic(t *testing.T) {
	dev := DefaultDevice()
	w := testWorkload(6)
	a := Simulate(dev, &Threshold{ActiveThreshold: 0.5}, w)
	b := Simulate(dev, &Threshold{ActiveThreshold: 0.5}, w)
	if a != b {
		t.Error("simulation must be deterministic")
	}
}

// TestSimulateFaultInjectionUnwinds sweeps deterministic fault trips
// through the budgeted policy simulation and asserts each one surfaces
// as a clean typed error with no partial result, across every policy.
func TestSimulateFaultInjectionUnwinds(t *testing.T) {
	dev := DefaultDevice()
	w := testWorkload(7)
	policies := []Policy{
		AlwaysOn{},
		&StaticTimeout{T: 2},
		&Threshold{ActiveThreshold: 0.5},
		&HwangWu{Dev: dev, Prewake: true},
		&Regression{Dev: dev},
		&Oracle{Dev: dev, Workload: w},
	}
	for _, pol := range policies {
		for k := int64(1); k <= 5; k++ {
			b := budget.New(
				budget.WithCheckInterval(1),
				budget.WithFaultPlan(budget.FaultPlan{FailAtCheck: k}),
			)
			res, err := SimulateBudget(b, dev, pol, w)
			var ex *budget.Exceeded
			if !errors.As(err, &ex) || ex.Resource != budget.FaultResource {
				t.Fatalf("%s fail@%d: want injected fault error, got %v", pol.Name(), k, err)
			}
			if res != (Result{}) {
				t.Fatalf("%s fail@%d: partial result leaked: %+v", pol.Name(), k, res)
			}
		}
	}
}

func TestSimulateBudgetExhaustionAndSticky(t *testing.T) {
	dev := DefaultDevice()
	w := testWorkload(8)
	b := budget.New(budget.WithMaxSteps(3))
	if _, err := SimulateBudget(b, dev, AlwaysOn{}, w); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want step exhaustion, got %v", err)
	}
	// Budgets are sticky: a tripped budget refuses further simulation.
	if _, err := SimulateBudget(b, dev, AlwaysOn{}, w[:1]); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("sticky violation lost, got %v", err)
	}
}

// TestSimulateBudgetMatchesUnbudgeted pins that governance does not
// change the physics: an ample budget reproduces Simulate exactly, and
// the charge equals one step per workload period.
func TestSimulateBudgetMatchesUnbudgeted(t *testing.T) {
	dev := DefaultDevice()
	w := testWorkload(9)
	want := Simulate(dev, &Threshold{ActiveThreshold: 0.5}, w)
	b := budget.New()
	got, err := SimulateBudget(b, dev, &Threshold{ActiveThreshold: 0.5}, w)
	if err != nil || got != want {
		t.Fatalf("budgeted result %+v (err %v), want %+v", got, err, want)
	}
	if int(b.StepsUsed()) != len(w) {
		t.Fatalf("charged %d steps for %d periods", b.StepsUsed(), len(w))
	}
}

func TestBreakevenTimeoutIsTwoCompetitive(t *testing.T) {
	// The classical ski-rental result: a static timeout equal to the
	// breakeven time never uses more than ~2x the oracle's energy beyond
	// the mandatory active energy, on any workload.
	dev := DefaultDevice()
	for seed := int64(0); seed < 10; seed++ {
		w := Generate(DefaultWorkload(), rand.New(rand.NewSource(seed)))
		static := Simulate(dev, &StaticTimeout{T: dev.Breakeven()}, w)
		oracle := Simulate(dev, &Oracle{Dev: dev, Workload: w}, w)
		activeE := dev.PActive * static.ActiveTime
		ratio := (static.Energy - activeE) / (oracle.Energy - activeE)
		if ratio > 2.05 {
			t.Errorf("seed %d: breakeven timeout competitive ratio %v > 2", seed, ratio)
		}
	}
}
