package trace

import (
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/bitutil"
)

func TestUniformActivity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s := Uniform(20000, 16, rng)
	if len(s) != 20000 {
		t.Fatalf("len = %d", len(s))
	}
	a := bitutil.MeanActivity(s, 16)
	if a < 0.48 || a > 0.52 {
		t.Errorf("uniform activity = %v, want ~0.5", a)
	}
}

func TestUniformMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, w := range Uniform(100, 8, rng) {
		if w > 0xFF {
			t.Fatalf("word %#x exceeds 8-bit mask", w)
		}
	}
}

func TestConstant(t *testing.T) {
	s := Constant(10, 8, 0x1AB)
	for _, w := range s {
		if w != 0xAB {
			t.Fatalf("constant = %#x, want 0xAB", w)
		}
	}
	if bitutil.Transitions(s, 8) != 0 {
		t.Error("constant stream should have zero transitions")
	}
}

func TestAR1SignBitsCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := AR1(50000, 16, 0.99, 0.02, rng)
	acts := bitutil.BitActivities(s, 16)
	// Low bits should switch like random data; the top (sign) bits far less.
	low := (acts[0] + acts[1]) / 2
	high := (acts[14] + acts[15]) / 2
	if high >= low/2 {
		t.Errorf("AR1 sign-bit activity %v not much below LSB activity %v", high, low)
	}
}

func TestGaussianWalkBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := GaussianWalk(10000, 12, 0.05, rng)
	for _, w := range s {
		if w > bitutil.Mask(12) {
			t.Fatalf("walk escaped the 12-bit range: %#x", w)
		}
	}
}

func TestSequential(t *testing.T) {
	s := Sequential(5, 16, 100)
	for i, w := range s {
		if w != uint64(100+i) {
			t.Fatalf("s[%d] = %d, want %d", i, w, 100+i)
		}
	}
	// Wraps at the mask.
	s = Sequential(3, 4, 15)
	if s[1] != 0 {
		t.Errorf("sequential wrap: got %d, want 0", s[1])
	}
}

func TestInterleavedZones(t *testing.T) {
	zones := []ZoneSpec{{Base: 0x1000, Length: 100}, {Base: 0x8000, Length: 100}}
	s := InterleavedZones(6, 32, zones)
	want := []uint64{0x1000, 0x8000, 0x1001, 0x8001, 0x1002, 0x8002}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("s[%d] = %#x, want %#x", i, s[i], want[i])
		}
	}
	if got := InterleavedZones(4, 32, nil); len(got) != 4 {
		t.Error("nil zones should still return n words")
	}
}

func TestBlockCorrelatedLowerActivity(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := BlockCorrelated(20000, 16, 4, 3, 0.95, rng)
	act := bitutil.MeanActivity(s, 16)
	if act >= 0.35 {
		t.Errorf("block-correlated activity = %v, want well below random 0.5", act)
	}
}

func TestPairs(t *testing.T) {
	p := Pairs([]uint64{1, 2, 3})
	if len(p) != 2 || p[0] != [2]uint64{1, 2} || p[1] != [2]uint64{2, 3} {
		t.Errorf("Pairs = %v", p)
	}
	if Pairs([]uint64{1}) != nil {
		t.Error("Pairs of single element should be nil")
	}
}

func TestEntropyUniformApproachesWidth(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	s := Uniform(1<<16, 4, rng)
	h := Entropy(s)
	if h < 3.95 || h > 4.0 {
		t.Errorf("entropy of uniform 4-bit stream = %v, want ~4", h)
	}
}

func TestEntropyConstantIsZero(t *testing.T) {
	if h := Entropy(Constant(100, 8, 5)); h != 0 {
		t.Errorf("entropy of constant = %v, want 0", h)
	}
	if h := Entropy(nil); h != 0 {
		t.Errorf("entropy of empty = %v, want 0", h)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if BinaryEntropy(0.5) != 1 {
		t.Errorf("H(0.5) = %v, want 1", BinaryEntropy(0.5))
	}
	if BinaryEntropy(0) != 0 || BinaryEntropy(1) != 0 {
		t.Error("H(0) and H(1) must be 0")
	}
	// Symmetry.
	if math.Abs(BinaryEntropy(0.3)-BinaryEntropy(0.7)) > 1e-12 {
		t.Error("binary entropy not symmetric")
	}
}

func TestBitEntropyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	s := Uniform(10000, 8, rng)
	h := BitEntropy(s, 8)
	if h < 7.9 || h > 8.0 {
		t.Errorf("bit entropy of uniform 8-bit = %v, want ~8", h)
	}
	// Bit entropy upper-bounds word entropy.
	c := BlockCorrelated(10000, 8, 4, 2, 0.9, rng)
	if BitEntropy(c, 8)+1e-9 < Entropy(c) {
		t.Errorf("bit entropy %v should upper-bound word entropy %v", BitEntropy(c, 8), Entropy(c))
	}
}

func TestMixed(t *testing.T) {
	m := Mixed([]uint64{1, 2}, []uint64{3})
	if len(m) != 3 || m[2] != 3 {
		t.Errorf("Mixed = %v", m)
	}
}

func TestCompactMarkovPreservesStatistics(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	full := AR1(20000, 12, 0.95, 0.1, rng)
	short := CompactMarkov(full, 12, 2500, rng)
	if len(short) != 2500 {
		t.Fatalf("length = %d", len(short))
	}
	pf := bitutil.BitProbabilities(full, 12)
	ps := bitutil.BitProbabilities(short, 12)
	af := bitutil.BitActivities(full, 12)
	as := bitutil.BitActivities(short, 12)
	for i := 0; i < 12; i++ {
		if d := ps[i] - pf[i]; d > 0.06 || d < -0.06 {
			t.Errorf("bit %d probability drifted: %v vs %v", i, ps[i], pf[i])
		}
		if d := as[i] - af[i]; d > 0.06 || d < -0.06 {
			t.Errorf("bit %d activity drifted: %v vs %v", i, as[i], af[i])
		}
	}
}

func TestCompactMarkovDegenerate(t *testing.T) {
	if CompactMarkov(nil, 8, 10, rand.New(rand.NewSource(1))) != nil {
		t.Error("empty source should return nil")
	}
	rng := rand.New(rand.NewSource(2))
	c := CompactMarkov(Constant(100, 8, 0xAA), 8, 50, rng)
	for _, w := range c {
		if w != 0xAA {
			t.Fatalf("constant stream should compact to itself, got %#x", w)
		}
	}
}
