// Package trace generates the input streams the surveyed estimation and
// optimization techniques are exercised with: uniform pseudorandom data
// (macro-model characterization), temporally correlated "speech-like"
// AR(1) streams (dual-bit-type model), signed Gaussian random walks,
// address streams with arithmetic sequentiality and interleaved working
// zones (bus encoding), and block-correlated streams (Beach code).
package trace

import (
	"math"
	"math/rand"

	"hlpower/internal/bitutil"
)

// Uniform returns n words of uniform random data over the low `width` bits.
func Uniform(n, width int, rng *rand.Rand) []uint64 {
	mask := bitutil.Mask(width)
	out := make([]uint64, n)
	for i := range out {
		out[i] = rng.Uint64() & mask
	}
	return out
}

// Constant returns n copies of value masked to width bits.
func Constant(n, width int, value uint64) []uint64 {
	mask := bitutil.Mask(width)
	out := make([]uint64, n)
	for i := range out {
		out[i] = value & mask
	}
	return out
}

// AR1 returns a temporally correlated stream of two's-complement words:
// x[t] = rho*x[t-1] + noise, quantized to `width` bits. This mimics
// speech/DSP data: high-order (sign) bits are strongly correlated while
// low-order bits look random — exactly the structure the dual-bit-type
// macro-model exploits. sigma sets the noise scale relative to full range.
func AR1(n, width int, rho, sigma float64, rng *rand.Rand) []uint64 {
	out := make([]uint64, n)
	amp := float64(int64(1) << uint(width-1)) // half range
	x := 0.0
	scale := sigma * amp
	for i := range out {
		x = rho*x + rng.NormFloat64()*scale
		// Clamp to representable range.
		if x > amp-1 {
			x = amp - 1
		}
		if x < -amp {
			x = -amp
		}
		out[i] = uint64(int64(x)) & bitutil.Mask(width)
	}
	return out
}

// GaussianWalk returns a signed random-walk stream (two's complement,
// width bits), a slowly varying signal whose sign bits rarely toggle.
func GaussianWalk(n, width int, step float64, rng *rand.Rand) []uint64 {
	out := make([]uint64, n)
	amp := float64(int64(1) << uint(width-1))
	x := 0.0
	for i := range out {
		x += rng.NormFloat64() * step * amp
		if x > amp-1 {
			x = amp - 1
		}
		if x < -amp {
			x = -amp
		}
		out[i] = uint64(int64(x)) & bitutil.Mask(width)
	}
	return out
}

// Sequential returns n consecutive addresses starting at start, masked to
// width bits (the in-sequence address streams Gray and T0 coding target).
func Sequential(n, width int, start uint64) []uint64 {
	mask := bitutil.Mask(width)
	out := make([]uint64, n)
	for i := range out {
		out[i] = (start + uint64(i)) & mask
	}
	return out
}

// ZoneSpec describes one working zone for InterleavedZones: a base
// address and the number of consecutive elements accessed in it.
type ZoneSpec struct {
	Base   uint64
	Length int
}

// InterleavedZones generates an address stream that round-robins between
// several working zones (e.g., multiple arrays accessed in the same loop),
// each individually sequential. This destroys global sequentiality — the
// stream the Working-Zone code is designed for.
func InterleavedZones(n, width int, zones []ZoneSpec) []uint64 {
	if len(zones) == 0 {
		return make([]uint64, n)
	}
	mask := bitutil.Mask(width)
	offsets := make([]uint64, len(zones))
	out := make([]uint64, n)
	for i := range out {
		z := i % len(zones)
		zone := zones[z]
		out[i] = (zone.Base + offsets[z]) & mask
		offsets[z]++
		if zone.Length > 0 && offsets[z] >= uint64(zone.Length) {
			offsets[z] = 0
		}
	}
	return out
}

// BlockCorrelated generates a stream whose bit lines exhibit strong
// block correlations without arithmetic sequentiality: bits are grouped
// into blocks and each block takes one of a few per-block patterns chosen
// by a slowly-mixing Markov process. This is the structure the Beach code
// detects and exploits.
func BlockCorrelated(n, width, blockWidth, patternsPerBlock int, pStay float64, rng *rand.Rand) []uint64 {
	if blockWidth <= 0 {
		blockWidth = 4
	}
	nBlocks := (width + blockWidth - 1) / blockWidth
	// Fixed dictionary of patterns per block.
	patterns := make([][]uint64, nBlocks)
	for b := range patterns {
		patterns[b] = make([]uint64, patternsPerBlock)
		for p := range patterns[b] {
			patterns[b][p] = rng.Uint64() & bitutil.Mask(blockWidth)
		}
	}
	state := make([]int, nBlocks)
	out := make([]uint64, n)
	for i := range out {
		var w uint64
		for b := 0; b < nBlocks; b++ {
			if rng.Float64() > pStay {
				state[b] = rng.Intn(patternsPerBlock)
			}
			w |= patterns[b][state[b]] << uint(b*blockWidth)
		}
		out[i] = w & bitutil.Mask(width)
	}
	return out
}

// Mixed concatenates several streams into one.
func Mixed(streams ...[]uint64) []uint64 {
	var out []uint64
	for _, s := range streams {
		out = append(out, s...)
	}
	return out
}

// Pairs converts a stream into consecutive (prev, cur) vector pairs; the
// cycle-accurate macro-models are functions of such pairs.
func Pairs(stream []uint64) [][2]uint64 {
	if len(stream) < 2 {
		return nil
	}
	out := make([][2]uint64, len(stream)-1)
	for i := 1; i < len(stream); i++ {
		out[i-1] = [2]uint64{stream[i-1], stream[i]}
	}
	return out
}

// Entropy returns the empirical word-level entropy (bits) of the stream.
func Entropy(stream []uint64) float64 {
	if len(stream) == 0 {
		return 0
	}
	counts := make(map[uint64]int)
	for _, w := range stream {
		counts[w]++
	}
	n := float64(len(stream))
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}

// BitEntropy returns the summed bit-level entropy (bits) of the low
// `width` bit lines, the independence upper bound h = Σ H(q_i) used by
// the information-theoretic estimators.
func BitEntropy(stream []uint64, width int) float64 {
	q := bitutil.BitProbabilities(stream, width)
	var h float64
	for _, qi := range q {
		h += BinaryEntropy(qi)
	}
	return h
}

// BinaryEntropy returns -q log2 q - (1-q) log2 (1-q), with H(0)=H(1)=0.
func BinaryEntropy(q float64) float64 {
	if q <= 0 || q >= 1 {
		return 0
	}
	return -q*math.Log2(q) - (1-q)*math.Log2(1-q)
}

// CompactMarkov generates a targetLen surrogate for the stream that
// preserves each bit line's signal probability and switching activity by
// fitting a per-bit first-order Markov chain — the bit-level rendition
// of the input-compaction techniques ([36]–[38]) used to shorten power
// simulations. Spatial correlations across lines are not preserved; the
// adaptive estimator of §II-C2 covers the residual bias.
func CompactMarkov(stream []uint64, width, targetLen int, rng *rand.Rand) []uint64 {
	if len(stream) == 0 || targetLen <= 0 {
		return nil
	}
	probs := bitutil.BitProbabilities(stream, width)
	acts := bitutil.BitActivities(stream, width)
	// Per-bit transition rates: stationarity p·P(1→0) = (1−p)·P(0→1)
	// and activity a = 2·p·P(1→0).
	rise := make([]float64, width) // P(0→1)
	fall := make([]float64, width) // P(1→0)
	for i := 0; i < width; i++ {
		p := probs[i]
		a := acts[i]
		switch {
		case p <= 0 || p >= 1:
			rise[i], fall[i] = 0, 0
		default:
			fall[i] = clamp01(a / (2 * p))
			rise[i] = clamp01(a / (2 * (1 - p)))
		}
	}
	out := make([]uint64, targetLen)
	// Start from the stationary distribution.
	var cur uint64
	for i := 0; i < width; i++ {
		if rng.Float64() < probs[i] {
			cur |= 1 << uint(i)
		}
	}
	out[0] = cur
	for t := 1; t < targetLen; t++ {
		var next uint64
		for i := 0; i < width; i++ {
			bit := cur>>uint(i)&1 == 1
			if bit {
				if rng.Float64() >= fall[i] {
					next |= 1 << uint(i)
				}
			} else {
				if rng.Float64() < rise[i] {
					next |= 1 << uint(i)
				}
			}
		}
		out[t] = next
		cur = next
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
