package recipe

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"hlpower/internal/budget"
	"hlpower/internal/bus"
	"hlpower/internal/cover"
	"hlpower/internal/fsm"
	"hlpower/internal/logic"
	"hlpower/internal/lopt"
)

// ErrNotApplicable marks a pass that cannot transform the given design
// (wrong structure, already applied, design too large). The search
// treats it as a degraded candidate, not a job failure.
var ErrNotApplicable = errors.New("recipe: pass not applicable to this design")

// ApplyFunc transforms a design. The budget governs the heavy lifting
// (cover minimization, truth-table extraction); rng feeds the pass's
// free choices (cut depth, predictor size, seeded encodings) so a
// recipe's outcome is a pure function of (design, pass name, seed).
type ApplyFunc func(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error)

// Pass is one named rewrite in the vocabulary.
type Pass struct {
	Name  string
	Kind  string // design kind the pass applies to
	Apply ApplyFunc
}

var (
	regMu    sync.RWMutex
	registry = map[string]Pass{}
)

// Register adds a pass to the vocabulary. Registering a duplicate name
// or an incomplete pass panics: the vocabulary is program structure,
// not runtime data.
func Register(p Pass) {
	if p.Name == "" || p.Apply == nil {
		panic("recipe: Register needs a name and an apply func")
	}
	switch p.Kind {
	case KindCircuit, KindFSM, KindBus:
	default:
		panic(fmt.Sprintf("recipe: Register %q: unknown kind %q", p.Name, p.Kind))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[p.Name]; dup {
		panic(fmt.Sprintf("recipe: duplicate pass %q", p.Name))
	}
	registry[p.Name] = p
}

// Lookup resolves a pass by name.
func Lookup(name string) (Pass, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Vocabulary lists the registered pass names for a design kind in
// sorted order — the deterministic index space candidate generation
// draws from.
func Vocabulary(kind string) []string {
	regMu.RLock()
	defer regMu.RUnlock()
	var names []string
	for n, p := range registry {
		if p.Kind == kind {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// maxResynthInputs bounds exhaustive truth-table extraction: 2^10 rows
// times the gate count is the largest table worth re-minimizing inside
// a per-candidate budget.
const maxResynthInputs = 10

func init() {
	// --- circuit passes (§III-I, §III-J) ---
	Register(Pass{Name: "guard", Kind: KindCircuit, Apply: passGuard})
	Register(Pass{Name: "retime", Kind: KindCircuit, Apply: passRetime})
	Register(Pass{Name: "resynth", Kind: KindCircuit, Apply: passResynth})
	Register(Pass{Name: "precompute", Kind: KindCircuit, Apply: passPrecompute})

	// --- controller passes (§III-H, §III-I) ---
	for _, enc := range []string{"binary", "gray", "one-hot", "random", "low-power"} {
		enc := enc
		Register(Pass{Name: "enc-" + enc, Kind: KindFSM,
			Apply: func(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error) {
				return passEncode(b, d, enc, rng)
			}})
	}
	Register(Pass{Name: "clock-gate", Kind: KindFSM, Apply: passClockGate})

	// --- bus coding passes (§III-G) ---
	for _, c := range bus.CoderNames() {
		c := c
		Register(Pass{Name: "bus-" + c, Kind: KindBus,
			Apply: func(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error) {
				return passBusCoder(d, c)
			}})
	}
}

// passGuard inserts transparent-latch guards on exclusive mux cones.
func passGuard(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error) {
	if err := b.Step(int64(len(d.Net.Gates))); err != nil {
		return nil, err
	}
	net, guarded := lopt.GuardEvaluation(d.Net)
	if guarded == 0 {
		return nil, ErrNotApplicable
	}
	out := *d
	out.Net = net
	return &out, nil
}

// passRetime pipelines the netlist at an rng-chosen cut depth,
// trading one cycle of latency for glitch filtering.
func passRetime(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error) {
	if !lopt.IsCombinational(d.Net) {
		return nil, ErrNotApplicable
	}
	depth := d.Net.Depth()
	if depth <= 1 {
		return nil, ErrNotApplicable
	}
	if err := b.Step(int64(len(d.Net.Gates))); err != nil {
		return nil, err
	}
	cut := 1 + rng.Intn(depth-1)
	net, err := lopt.PipelineCut(d.Net, cut)
	if err != nil {
		return nil, err
	}
	out := *d
	out.Net = net
	out.Latency = d.Latency + 1
	return &out, nil
}

// passResynth extracts every output's truth table and rebuilds the
// netlist from freshly minimized covers.
func passResynth(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error) {
	if !lopt.IsCombinational(d.Net) || len(d.Net.Inputs) > maxResynthInputs {
		return nil, ErrNotApplicable
	}
	tts, err := lopt.TruthTables(b, d.Net, maxResynthInputs)
	if err != nil {
		return nil, err
	}
	nIn := len(d.Net.Inputs)
	net := logic.New()
	net.InputCap = d.Net.InputCap
	net.WireCapPerFanout = d.Net.WireCapPerFanout
	net.OutputLoad = d.Net.OutputLoad
	net.ClockCap = d.Net.ClockCap
	in := net.AddInputBus("x", nIn)
	for _, tt := range tts {
		cv, _, err := cover.MinimizeTTBudget(b, tt, nIn)
		if err != nil {
			return nil, err
		}
		net.MarkOutput(logic.FromCover(net, cv, in, "resynth"))
	}
	if err := net.Err(); err != nil {
		return nil, err
	}
	out := *d
	out.Net = net
	return &out, nil
}

// passPrecompute applies the Fig. 6 precomputation architecture to a
// single-output function with an rng-chosen predictor subset size.
func passPrecompute(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error) {
	nIn := len(d.Net.Inputs)
	if !lopt.IsCombinational(d.Net) || len(d.Net.Outputs) != 1 || nIn < 2 || nIn > 8 {
		return nil, ErrNotApplicable
	}
	tts, err := lopt.TruthTables(b, d.Net, 8)
	if err != nil {
		return nil, err
	}
	// The BDD subset sweep enumerates C(n,k) quantifications.
	if err := b.Step(int64(1) << uint(2*nIn)); err != nil {
		return nil, err
	}
	k := 1 + rng.Intn(nIn-1)
	res, err := lopt.Precompute(tts[0], nIn, k)
	if err != nil {
		return nil, err
	}
	out := *d
	out.Net = res.Precomputed
	out.Latency = d.Latency + 1 // both Fig. 6 forms register their inputs
	return &out, nil
}

// passEncode re-encodes the controller's states and re-synthesizes it.
func passEncode(b *budget.Budget, d *Design, name string, rng *rand.Rand) (*Design, error) {
	enc, err := fsm.EncodingByName(d.F, name, rng)
	if err != nil {
		return nil, err
	}
	if sameEncoding(enc, d.Enc) {
		return nil, ErrNotApplicable
	}
	net, err := synthController(b, d.F, enc, d.Gated)
	if err != nil {
		return nil, err
	}
	out := *d
	out.Enc = enc
	out.Net = net
	return &out, nil
}

// passClockGate re-synthesizes the controller with a gated clock.
func passClockGate(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error) {
	if d.Gated {
		return nil, ErrNotApplicable
	}
	if err := b.Step(int64(d.F.NumStates * d.F.NumSymbols())); err != nil {
		return nil, err
	}
	net, err := lopt.GatedController(d.F, d.Enc)
	if err != nil {
		return nil, err
	}
	out := *d
	out.Net = net
	out.Gated = true
	return &out, nil
}

// synthController synthesizes the machine under the current gating
// mode, so re-encoding a gated controller keeps its gate.
func synthController(b *budget.Budget, f *fsm.FSM, enc *fsm.Encoding, gated bool) (*logic.Netlist, error) {
	if gated {
		if err := b.Step(int64(f.NumStates * f.NumSymbols())); err != nil {
			return nil, err
		}
		return lopt.GatedController(f, enc)
	}
	net, _, err := fsm.SynthesizeBudget(b, f, enc)
	return net, err
}

func sameEncoding(a, b *fsm.Encoding) bool {
	if a.Width != b.Width || len(a.Codes) != len(b.Codes) {
		return false
	}
	for i := range a.Codes {
		if a.Codes[i] != b.Codes[i] {
			return false
		}
	}
	return true
}

// passBusCoder switches the bus to a named coder.
func passBusCoder(d *Design, coder string) (*Design, error) {
	if d.Coder == coder {
		return nil, ErrNotApplicable
	}
	if _, _, err := bus.NewCoder(coder, d.Width); err != nil {
		return nil, err
	}
	out := *d
	out.Coder = coder
	return &out, nil
}
