package recipe

import (
	"fmt"
	"math/rand"

	"hlpower/internal/budget"
	"hlpower/internal/bus"
	"hlpower/internal/hlerr"
	"hlpower/internal/sim"
)

// PassError wraps whatever went wrong while applying or verifying one
// pass of a recipe, tagged with the pass name. It is the unit the job
// engine degrades on: a PassError fails the candidate, never the job.
type PassError struct {
	Pass string
	Err  error
}

func (e *PassError) Error() string { return fmt.Sprintf("recipe: pass %q: %v", e.Pass, e.Err) }
func (e *PassError) Unwrap() error { return e.Err }

// VerifyError reports a functional-equivalence violation introduced by
// a pass — the one error class that must never be degraded into a
// best-so-far result.
type VerifyError struct {
	Cycle  int
	Detail string
}

func (e *VerifyError) Error() string {
	return fmt.Sprintf("recipe: equivalence violated at cycle %d: %s", e.Cycle, e.Detail)
}

// Apply runs one named pass over the design with a seeded RNG and
// verifies the result is functionally equivalent to its input under
// the workload's verification stimulus. A panicking pass is contained
// via hlerr.FromPanic and surfaces as a *PassError like any other
// failure.
func Apply(b *budget.Budget, d *Design, w *Workload, name string, seed uint64) (*Design, error) {
	p, ok := Lookup(name)
	if !ok {
		return nil, &PassError{Pass: name, Err: hlerr.Errorf("recipe.apply", "unknown pass %q", name)}
	}
	if p.Kind != d.Kind {
		return nil, &PassError{Pass: name, Err: ErrNotApplicable}
	}
	out, err := applySafe(p, b, d, seed)
	if err != nil {
		return nil, &PassError{Pass: name, Err: err}
	}
	if err := Verify(b, d, out, w); err != nil {
		return nil, &PassError{Pass: name, Err: err}
	}
	return out, nil
}

// applySafe contains pass panics: a poisoned pass degrades the
// candidate with a typed error instead of unwinding the search loop.
func applySafe(p Pass, b *budget.Budget, d *Design, seed uint64) (out *Design, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = nil, hlerr.FromPanic(r)
		}
	}()
	rng := rand.New(rand.NewSource(int64(seed)))
	return p.Apply(b, d, rng)
}

// Verify checks that next preserves prev's observable behaviour on the
// workload's verification stimulus.
//
//   - circuit: lockstep zero-delay simulation of both netlists with
//     next's outputs read Δ = next.Latency − prev.Latency cycles later
//     (passes only ever add pipeline latency, so Δ ≥ 0); compared on
//     the region where both streams reflect real inputs.
//   - fsm: the synthesized controller is checked against the abstract
//     machine itself — stronger than checking against prev, since
//     errors cannot accumulate along a recipe.
//   - bus: exact decode(encode(w)) round-trip over the address trace.
func Verify(b *budget.Budget, prev, next *Design, w *Workload) error {
	switch next.Kind {
	case KindCircuit:
		return verifyCircuit(b, prev, next, w)
	case KindFSM:
		return verifyFSM(b, next, w)
	case KindBus:
		return verifyBus(b, next, w)
	default:
		return fmt.Errorf("recipe: verify of unknown kind %q", next.Kind)
	}
}

func verifyCircuit(b *budget.Budget, prev, next *Design, w *Workload) error {
	if len(prev.Net.Outputs) != len(next.Net.Outputs) {
		return &VerifyError{Detail: fmt.Sprintf("output count %d -> %d", len(prev.Net.Outputs), len(next.Net.Outputs))}
	}
	delta := next.Latency - prev.Latency
	if delta < 0 {
		return &VerifyError{Detail: fmt.Sprintf("latency decreased %d -> %d", prev.Latency, next.Latency)}
	}
	cycles := len(w.VerifyVecs)
	inputs := sim.VectorInputs(w.VerifyVecs)
	ref, err := sim.RunBudget(b, prev.Net, inputs, cycles, sim.Options{})
	if err != nil {
		return err
	}
	got, err := sim.RunBudget(b, next.Net, inputs, cycles, sim.Options{})
	if err != nil {
		return err
	}
	// prev's output at cycle c reflects input c−prev.Latency; next's at
	// c+Δ reflects the same input. Both are defined for c ≥ prev.Latency.
	for c := prev.Latency; c+delta < cycles; c++ {
		for o := range ref.Outputs[c] {
			if ref.Outputs[c][o] != got.Outputs[c+delta][o] {
				return &VerifyError{Cycle: c, Detail: fmt.Sprintf("output %d differs", o)}
			}
		}
	}
	return nil
}

func verifyFSM(b *budget.Budget, next *Design, w *Workload) error {
	if err := b.Step(int64(len(w.VerifySyms))); err != nil {
		return err
	}
	_, refOut := next.F.Simulate(w.VerifySyms)
	got, err := sim.RunBudget(b, next.Net, sim.VectorInputs(w.VerifyVecs), len(w.VerifyVecs), sim.Options{})
	if err != nil {
		return err
	}
	nOut := next.F.NumOutputs
	for c := range refOut {
		if len(got.Outputs[c]) != nOut {
			return &VerifyError{Cycle: c, Detail: fmt.Sprintf("output width %d, want %d", len(got.Outputs[c]), nOut)}
		}
		for o := 0; o < nOut; o++ {
			if got.Outputs[c][o] != (refOut[c]>>uint(o)&1 == 1) {
				return &VerifyError{Cycle: c, Detail: fmt.Sprintf("output %d differs from machine", o)}
			}
		}
	}
	return nil
}

func verifyBus(b *budget.Budget, next *Design, w *Workload) error {
	enc, dec, err := bus.NewCoder(next.Coder, next.Width)
	if err != nil {
		return err
	}
	if err := b.Step(int64(len(w.Stream))); err != nil {
		return err
	}
	enc.Reset()
	dec.Reset()
	mask := uint64(1)<<uint(next.Width) - 1
	for c, word := range w.Stream {
		if got := dec.Decode(enc.Encode(word)); got != word&mask {
			return &VerifyError{Cycle: c, Detail: fmt.Sprintf("round-trip %#x -> %#x", word&mask, got)}
		}
	}
	return nil
}
