package recipe

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
)

func testBudget() *budget.Budget {
	return budget.New(budget.WithMaxSteps(50_000_000), budget.WithCheckInterval(256))
}

func specs() []Spec {
	return []Spec{
		{Kind: KindCircuit, Circuit: "adder", Width: 4},
		{Kind: KindCircuit, Circuit: "comparator", Width: 4},
		{Kind: KindFSM, States: 5, Inputs: 2, Outputs: 2},
		{Kind: KindBus, Width: 8},
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []Spec{
		{Kind: "netlist"},
		{Kind: KindCircuit, Circuit: "adder", Width: 1},
		{Kind: KindCircuit, Circuit: "alu", Width: 4},
		{Kind: KindFSM, States: 1, Inputs: 1, Outputs: 1},
		{Kind: KindFSM, States: 4, Inputs: 9, Outputs: 1},
		{Kind: KindBus, Width: 64},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %+v: want error", s)
		} else if !hlerr.IsInput(err) {
			t.Errorf("spec %+v: error %v not typed input", s, err)
		}
	}
	for _, s := range specs() {
		if err := s.Validate(); err != nil {
			t.Errorf("spec %+v: unexpected %v", s, err)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	for _, s := range specs() {
		d1, w1, err := Build(s, 7, 128, 64)
		if err != nil {
			t.Fatalf("build %+v: %v", s, err)
		}
		d2, w2, err := Build(s, 7, 128, 64)
		if err != nil {
			t.Fatalf("rebuild %+v: %v", s, err)
		}
		s1, err := Score(testBudget(), d1, w1)
		if err != nil {
			t.Fatalf("score %+v: %v", s, err)
		}
		s2, err := Score(testBudget(), d2, w2)
		if err != nil {
			t.Fatalf("rescore %+v: %v", s, err)
		}
		if math.Float64bits(s1) != math.Float64bits(s2) {
			t.Errorf("spec %+v: baseline score %v != %v", s, s1, s2)
		}
		if s1 <= 0 {
			t.Errorf("spec %+v: suspicious baseline score %v", s, s1)
		}
	}
}

// TestApplyAllPassesVerified applies every registered pass of each
// kind to its baseline design across several seeds: a pass either
// succeeds (with equivalence verified inside Apply, and the result
// scorable) or reports a typed not-applicable/pass error — it never
// panics and never silently corrupts behaviour.
func TestApplyAllPassesVerified(t *testing.T) {
	for _, s := range specs() {
		d, w, err := Build(s, 11, 96, 64)
		if err != nil {
			t.Fatalf("build %+v: %v", s, err)
		}
		applied := 0
		for _, name := range Vocabulary(s.Kind) {
			for seed := uint64(0); seed < 3; seed++ {
				out, err := Apply(testBudget(), d, w, name, seed)
				if err != nil {
					var pe *PassError
					if !errors.As(err, &pe) {
						t.Errorf("%s on %+v: untyped error %v", name, s, err)
					}
					continue
				}
				applied++
				if _, err := Score(testBudget(), out, w); err != nil {
					t.Errorf("%s on %+v: result unscorable: %v", name, s, err)
				}
			}
		}
		if applied == 0 {
			t.Errorf("spec %+v: no pass applicable", s)
		}
	}
}

// TestApplySecondLevel chains a pass onto an already-transformed
// design (including latency-adding passes), exercising the shifted
// lockstep equivalence check.
func TestApplySecondLevel(t *testing.T) {
	s := Spec{Kind: KindCircuit, Circuit: "adder", Width: 3}
	d, w, err := Build(s, 3, 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	retimed, err := Apply(testBudget(), d, w, "retime", 5)
	if err != nil {
		t.Fatalf("retime: %v", err)
	}
	if retimed.Latency != 1 {
		t.Fatalf("retime latency = %d, want 1", retimed.Latency)
	}
	if _, err := Apply(testBudget(), retimed, w, "guard", 6); err != nil {
		var pe *PassError
		if !errors.As(err, &pe) || !errors.Is(err, ErrNotApplicable) {
			t.Fatalf("guard on retimed: %v", err)
		}
	}
}

func TestApplyUnknownAndWrongKind(t *testing.T) {
	s := Spec{Kind: KindBus, Width: 8}
	d, w, err := Build(s, 1, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Apply(testBudget(), d, w, "no-such-pass", 0); err == nil {
		t.Fatal("unknown pass: want error")
	}
	if _, err := Apply(testBudget(), d, w, "retime", 0); !errors.Is(err, ErrNotApplicable) {
		t.Fatalf("kind mismatch: got %v, want ErrNotApplicable", err)
	}
}

func TestApplyPanicContained(t *testing.T) {
	Register(Pass{Name: "zz-test-panic", Kind: KindBus,
		Apply: func(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error) {
			panic("poisoned pass")
		}})
	d, w, err := Build(Spec{Kind: KindBus, Width: 8}, 1, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(testBudget(), d, w, "zz-test-panic", 0)
	var pe *PassError
	if !errors.As(err, &pe) {
		t.Fatalf("panic not converted to PassError: %v", err)
	}
}

// TestVerifyCatchesBrokenPass registers a pass that silently inverts
// an output and checks the built-in equivalence gate rejects it.
func TestVerifyCatchesBrokenPass(t *testing.T) {
	Register(Pass{Name: "zz-test-broken", Kind: KindCircuit,
		Apply: func(b *budget.Budget, d *Design, rng *rand.Rand) (*Design, error) {
			out := *d
			net := d.Net.Clone()
			net.Outputs[0] = net.Add(logic.Not, net.Outputs[0])
			out.Net = net
			return &out, nil
		}})
	d, w, err := Build(Spec{Kind: KindCircuit, Circuit: "adder", Width: 3}, 2, 64, 64)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Apply(testBudget(), d, w, "zz-test-broken", 0)
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("broken pass not caught by verification: %v", err)
	}
}

func TestBudgetTripDegradesPass(t *testing.T) {
	d, w, err := Build(Spec{Kind: KindCircuit, Circuit: "adder", Width: 4}, 2, 96, 64)
	if err != nil {
		t.Fatal(err)
	}
	b := budget.New(budget.WithMaxSteps(10), budget.WithCheckInterval(4))
	_, err = Apply(b, d, w, "retime", 1)
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("tiny budget: got %v, want budget.ErrExceeded", err)
	}
}
