// Package recipe turns the library's power transformations —
// internal/lopt guards/retiming/precomputation, internal/fsm state
// encodings and gated clocks, internal/bus codings, internal/cover
// re-minimization — into a uniform vocabulary of named passes over a
// design, the substrate the job engine's recipe search explores
// (§III-I/§III-J of the paper; the explore/exploit framing of logic
// optimization as search over rewrite sequences).
//
// A Design is a tagged union over the three design classes the service
// layer already exposes: an RT-library combinational circuit, a random
// Mealy controller, and an address bus. Each registered pass maps a
// Design (plus a seeded RNG for its free choices) to a transformed
// Design, and Apply verifies functional equivalence against the input
// design after every application — a pass that changes behaviour is a
// typed verification error, never a silently wrong candidate.
package recipe

import (
	"fmt"
	"math/rand"

	"hlpower/internal/budget"
	"hlpower/internal/bus"
	"hlpower/internal/fsm"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
	"hlpower/internal/memo"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
)

// Design kinds.
const (
	KindCircuit = "circuit"
	KindFSM     = "fsm"
	KindBus     = "bus"
)

// Limits on the design specs a job may name. They are deliberately
// tighter than the service-wide simulation limits: every search step
// re-simulates the design, so specs are sized for thousands of
// evaluations, not one.
const (
	MaxSpecWidth   = 16
	MaxSpecStates  = 12
	MaxSpecInputs  = 4
	MaxSpecOutputs = 8
)

// Spec names a baseline design by content: the raw fields fully
// determine the built Design and workload for a given seed, which
// makes (Spec, seed) a canonical content encoding for job identity and
// prefix-cache keys.
type Spec struct {
	Kind    string `json:"kind"`
	Circuit string `json:"circuit,omitempty"` // circuit: RT-library name
	Width   int    `json:"width,omitempty"`   // circuit operand / bus line width
	States  int    `json:"states,omitempty"`  // fsm
	Inputs  int    `json:"inputs,omitempty"`  // fsm input bits
	Outputs int    `json:"outputs,omitempty"` // fsm output bits
}

// Validate checks the spec against the search-time limits.
func (s Spec) Validate() error {
	switch s.Kind {
	case KindCircuit:
		if s.Width < 2 || s.Width > MaxSpecWidth {
			return hlerr.Errorf("recipe.spec", "width %d out of range [2,%d]", s.Width, MaxSpecWidth)
		}
		switch s.Circuit {
		case "adder", "carry-select", "multiplier", "subtractor", "comparator":
		default:
			return hlerr.Errorf("recipe.spec", "unknown circuit %q", s.Circuit)
		}
	case KindFSM:
		if s.States < 2 || s.States > MaxSpecStates {
			return hlerr.Errorf("recipe.spec", "states %d out of range [2,%d]", s.States, MaxSpecStates)
		}
		if s.Inputs < 1 || s.Inputs > MaxSpecInputs {
			return hlerr.Errorf("recipe.spec", "inputs %d out of range [1,%d]", s.Inputs, MaxSpecInputs)
		}
		if s.Outputs < 1 || s.Outputs > MaxSpecOutputs {
			return hlerr.Errorf("recipe.spec", "outputs %d out of range [1,%d]", s.Outputs, MaxSpecOutputs)
		}
	case KindBus:
		if s.Width < 2 || s.Width > MaxSpecWidth {
			return hlerr.Errorf("recipe.spec", "bus width %d out of range [2,%d]", s.Width, MaxSpecWidth)
		}
	default:
		return hlerr.Errorf("recipe.spec", "unknown design kind %q", s.Kind)
	}
	return nil
}

// EncodeTo appends the spec's canonical encoding, the content basis of
// job identity and checkpoint snapshots.
func (s Spec) EncodeTo(e *memo.Enc) {
	e.String(s.Kind)
	e.String(s.Circuit)
	e.Int(s.Width)
	e.Int(s.States)
	e.Int(s.Inputs)
	e.Int(s.Outputs)
}

// DecodeFrom reads the canonical encoding back. Errors stick to the
// decoder.
func (s *Spec) DecodeFrom(d *memo.Dec) {
	s.Kind = d.String()
	s.Circuit = d.String()
	s.Width = int(d.Int64())
	s.States = int(d.Int64())
	s.Inputs = int(d.Int64())
	s.Outputs = int(d.Int64())
}

// Design is one point in the search space: a concrete, simulatable
// artifact plus the bookkeeping equivalence checking needs. Designs
// are immutable by convention — passes build new ones — so they are
// safe to share through the prefix memo-cache.
type Design struct {
	Kind string

	// Circuit and FSM kinds carry a gate-level netlist. For FSM designs
	// it is the synthesized controller for the current encoding; the
	// abstract machine F stays the behavioural reference.
	Net     *logic.Netlist
	Latency int // output delay in cycles added relative to the baseline

	F     *fsm.FSM
	Enc   *fsm.Encoding
	Gated bool

	// Bus designs are a coder choice over Width address lines.
	Width int
	Coder string
}

// SizeBytes estimates the design's resident size for cache accounting.
func (d *Design) SizeBytes() int64 {
	var sz int64 = 256
	if d.Net != nil {
		sz += int64(len(d.Net.Gates)) * 64
	}
	if d.F != nil {
		sz += int64(d.F.NumStates*d.F.NumSymbols()) * 16
	}
	if d.Enc != nil {
		sz += int64(len(d.Enc.Codes)) * 8
	}
	return sz
}

// Workload is the fixed stimulus a job scores and verifies candidates
// against. It is derived deterministically from (Spec, seed) at build
// time and shared read-only across every candidate evaluation.
type Workload struct {
	Kind       string
	EvalVecs   [][]bool // per-cycle primary-input vectors for scoring
	VerifyVecs [][]bool // independent vectors for equivalence checks
	VerifySyms []int    // fsm: verification symbol stream (VerifyVecs mirrors it)
	Stream     []uint64 // bus: address trace (scored and verified)
}

// splitmix is the canonical seeded word stream used for all workload
// derivation: O(1) seeding and deterministic across architectures.
func splitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// bitVecs draws cycles×width uniform bit vectors from the seed.
func bitVecs(seed uint64, cycles, width int) [][]bool {
	x := seed
	vecs := make([][]bool, cycles)
	for c := range vecs {
		w := splitmix(&x)
		v := make([]bool, width)
		for i := range v {
			v[i] = w>>uint(i%64)&1 == 1
		}
		vecs[c] = v
	}
	return vecs
}

// symStream draws a symbol trace with repeat bias: each cycle keeps
// the previous symbol with probability 1/2, so controllers dwell in
// states long enough for clock gating to matter (the idle-heavy
// workloads of §III-I).
func symStream(seed uint64, cycles, nsym int) []int {
	x := seed
	syms := make([]int, cycles)
	cur := int(splitmix(&x) % uint64(nsym))
	for c := range syms {
		w := splitmix(&x)
		if w&1 == 0 {
			cur = int(w >> 1 % uint64(nsym))
		}
		syms[c] = cur
	}
	return syms
}

// symVecs expands a symbol trace into primary-input vectors.
func symVecs(syms []int, width int) [][]bool {
	vecs := make([][]bool, len(syms))
	for c, s := range syms {
		v := make([]bool, width)
		for i := range v {
			v[i] = s>>uint(i)&1 == 1
		}
		vecs[c] = v
	}
	return vecs
}

// Build materializes the baseline design and its workload from a spec
// and seed. Deterministic: equal (spec, seed, evalCycles,
// verifyCycles) yield identical designs and stimuli, the property the
// checkpoint/resume bit-identity guarantee rests on.
func Build(spec Spec, seed int64, evalCycles, verifyCycles int) (*Design, *Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, nil, err
	}
	if evalCycles < 2 || verifyCycles < 2 {
		return nil, nil, hlerr.Errorf("recipe.build", "cycles %d/%d too small", evalCycles, verifyCycles)
	}
	evalSeed := uint64(seed)
	verifySeed := uint64(seed) ^ 0xd1b54a32d192ed03
	switch spec.Kind {
	case KindCircuit:
		mod, err := moduleFor(spec.Circuit, spec.Width)
		if err != nil {
			return nil, nil, err
		}
		nIn := len(mod.Net.Inputs)
		d := &Design{Kind: KindCircuit, Net: mod.Net}
		w := &Workload{
			Kind:       KindCircuit,
			EvalVecs:   bitVecs(evalSeed, evalCycles, nIn),
			VerifyVecs: bitVecs(verifySeed, verifyCycles, nIn),
		}
		return d, w, nil
	case KindFSM:
		f := fsm.Random(spec.States, spec.Inputs, spec.Outputs, 0.5, rand.New(rand.NewSource(seed)))
		enc := fsm.BinaryEncoding(spec.States)
		net, err := fsm.Synthesize(f, enc)
		if err != nil {
			return nil, nil, err
		}
		nsym := f.NumSymbols()
		verifySyms := symStream(verifySeed, verifyCycles, nsym)
		w := &Workload{
			Kind:       KindFSM,
			EvalVecs:   symVecs(symStream(evalSeed, evalCycles, nsym), spec.Inputs),
			VerifySyms: verifySyms,
			VerifyVecs: symVecs(verifySyms, spec.Inputs),
		}
		return &Design{Kind: KindFSM, Net: net, F: f, Enc: enc}, w, nil
	case KindBus:
		// Address traces interleave a few strided working zones — the
		// access pattern the coder family was designed for.
		x := evalSeed
		stream := make([]uint64, evalCycles)
		bases := [3]uint64{splitmix(&x), splitmix(&x), splitmix(&x)}
		ctrs := [3]uint64{}
		mask := uint64(1)<<uint(spec.Width) - 1
		for c := range stream {
			w := splitmix(&x)
			z := int(w % 3)
			if w>>2&7 == 0 { // occasional random jump
				stream[c] = splitmix(&x) & mask
				continue
			}
			ctrs[z]++
			stream[c] = (bases[z] + ctrs[z]) & mask
		}
		d := &Design{Kind: KindBus, Width: spec.Width, Coder: "binary"}
		return d, &Workload{Kind: KindBus, Stream: stream}, nil
	default:
		return nil, nil, hlerr.Errorf("recipe.build", "unknown design kind %q", spec.Kind)
	}
}

// moduleFor mirrors the service layer's RT-library switch. recipe
// cannot import internal/service (service imports recipe for the
// optimize wire types), so the five-name switch is duplicated here
// under recipe's own tighter limits.
func moduleFor(circuit string, width int) (*rtlib.Module, error) {
	switch circuit {
	case "adder":
		return rtlib.NewAdder(width), nil
	case "carry-select":
		return rtlib.NewCarrySelectAdder(width), nil
	case "multiplier":
		return rtlib.NewMultiplier(width), nil
	case "subtractor":
		return rtlib.NewSubtractor(width), nil
	case "comparator":
		return rtlib.NewComparator(width), nil
	default:
		return nil, hlerr.Errorf("recipe.build", "unknown circuit %q", circuit)
	}
}

// Score evaluates a design's power figure of merit under the
// workload, lower is better. Deterministic for a fixed (design,
// workload) pair; the budget governs the underlying simulation and a
// trip surfaces as a typed budget error (degrading the candidate).
func Score(b *budget.Budget, d *Design, w *Workload) (float64, error) {
	switch d.Kind {
	case KindCircuit:
		// Event-driven so glitch filtering (retiming, guards) is
		// visible; clock tracking so added registers pay their way.
		res, err := sim.RunBudget(b, d.Net, sim.VectorInputs(w.EvalVecs), len(w.EvalVecs),
			sim.Options{Model: sim.EventDriven, TrackClock: true, GateClock: true})
		if err != nil {
			return 0, err
		}
		return res.SwitchedCap, nil
	case KindFSM:
		res, err := sim.RunBudget(b, d.Net, sim.VectorInputs(w.EvalVecs), len(w.EvalVecs),
			sim.Options{TrackClock: true, GateClock: true})
		if err != nil {
			return 0, err
		}
		return res.SwitchedCap, nil
	case KindBus:
		enc, _, err := bus.NewCoder(d.Coder, d.Width)
		if err != nil {
			return 0, err
		}
		tr, err := bus.TransitionsBudget(b, enc, w.Stream)
		if err != nil {
			return 0, err
		}
		// Extra bus lines carry a per-cycle capacitance cost, so a coder
		// only wins when its transition savings beat its redundancy.
		extra := enc.BusWidth() - d.Width
		return float64(tr) + 0.05*float64(extra)*float64(len(w.Stream)), nil
	default:
		return 0, fmt.Errorf("recipe: score of unknown kind %q", d.Kind)
	}
}
