package sim

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/budget"
	"hlpower/internal/logic"
)

// mcNetlist builds a combinational multiplier-like block wide enough to
// make sharding meaningful, plus a seeded Monte Carlo vector stream.
func mcNetlist(t testing.TB, inputs, cycles int, seed int64) (*logic.Netlist, InputProvider) {
	if t != nil {
		t.Helper()
	}
	n := logic.New()
	var ids []int
	for i := 0; i < inputs; i++ {
		ids = append(ids, n.AddInput("x"))
	}
	// A few layers of mixed logic with reconvergent fanout.
	layer := ids
	for depth := 0; depth < 4; depth++ {
		var next []int
		for i := 0; i+1 < len(layer); i += 2 {
			kind := logic.And
			switch (depth + i) % 3 {
			case 1:
				kind = logic.Xor
			case 2:
				kind = logic.Or
			}
			next = append(next, n.AddG(kind, "exec", layer[i], layer[i+1]))
		}
		if len(next) < 2 {
			break
		}
		layer = next
	}
	for _, id := range layer {
		n.MarkOutput(id)
	}
	rng := rand.New(rand.NewSource(seed))
	vectors := make([][]bool, cycles)
	for c := range vectors {
		v := make([]bool, inputs)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		vectors[c] = v
	}
	return n, VectorInputs(vectors)
}

// sameResult asserts bit-identity, not approximate equality: the
// deterministic merge promises parallel == serial to the last ulp.
func sameResult(t *testing.T, serial, parallel *Result, label string) {
	t.Helper()
	if math.Float64bits(serial.SwitchedCap) != math.Float64bits(parallel.SwitchedCap) {
		t.Fatalf("%s: SwitchedCap differs: serial %v parallel %v", label, serial.SwitchedCap, parallel.SwitchedCap)
	}
	if serial.Cycles != parallel.Cycles {
		t.Fatalf("%s: cycles differ", label)
	}
	if len(serial.PerCycleCap) != len(parallel.PerCycleCap) {
		t.Fatalf("%s: PerCycleCap length differs", label)
	}
	for c := range serial.PerCycleCap {
		if math.Float64bits(serial.PerCycleCap[c]) != math.Float64bits(parallel.PerCycleCap[c]) {
			t.Fatalf("%s: PerCycleCap[%d] differs", label, c)
		}
	}
	if len(serial.ByGroup) != len(parallel.ByGroup) {
		t.Fatalf("%s: ByGroup keys differ: %v vs %v", label, serial.ByGroup, parallel.ByGroup)
	}
	for g, v := range serial.ByGroup {
		if math.Float64bits(v) != math.Float64bits(parallel.ByGroup[g]) {
			t.Fatalf("%s: ByGroup[%q] differs: %v vs %v", label, g, v, parallel.ByGroup[g])
		}
	}
	for id := range serial.Toggles {
		if serial.Toggles[id] != parallel.Toggles[id] {
			t.Fatalf("%s: Toggles[%d] differs", label, id)
		}
	}
	for c := range serial.Outputs {
		for i := range serial.Outputs[c] {
			if serial.Outputs[c][i] != parallel.Outputs[c][i] {
				t.Fatalf("%s: Outputs[%d][%d] differs", label, c, i)
			}
		}
	}
	for id := range serial.Final {
		if serial.Final[id] != parallel.Final[id] {
			t.Fatalf("%s: Final[%d] differs", label, id)
		}
	}
	if math.Float64bits(serial.Power()) != math.Float64bits(parallel.Power()) {
		t.Fatalf("%s: Power differs", label)
	}
}

// TestParallelBitIdenticalToSerial is the determinism acceptance test:
// for a fixed seed, the sharded Monte Carlo run must reproduce the
// serial result bit for bit, at every worker count and for both delay
// models.
func TestParallelBitIdenticalToSerial(t *testing.T) {
	for _, model := range []DelayModel{ZeroDelay, EventDriven} {
		n, inputs := mcNetlist(t, 16, 700, 42)
		opts := Options{Model: model, Vdd: 1.8, Freq: 2}
		serial, err := Run(n, inputs, 700, opts)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 7, 16} {
			res, err := RunParallel(nil, n, inputs, 700, ParallelOptions{
				Options: opts, Workers: workers, MinShard: 10,
			})
			if err != nil {
				t.Fatal(err)
			}
			sameResult(t, serial, res, "model/workers")
		}
	}
}

func TestParallelSequentialFallsBackToSerial(t *testing.T) {
	n := logic.New()
	in := n.AddInput("d")
	ff := n.Add(logic.DFF, in)
	n.MarkOutput(ff)
	if CanShard(n) {
		t.Fatal("sequential netlist reported shardable")
	}
	rng := rand.New(rand.NewSource(3))
	vectors := make([][]bool, 400)
	for c := range vectors {
		vectors[c] = []bool{rng.Intn(2) == 1}
	}
	serial, err := Run(n, VectorInputs(vectors), 400, Options{TrackClock: true})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := RunParallel(nil, n, VectorInputs(vectors), 400, ParallelOptions{
		Options: Options{TrackClock: true}, Workers: 8, MinShard: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, serial, parallel, "sequential-fallback")
}

// TestParallelFallbackObservable pins the observability contract: a
// degraded (serial) RunParallel names its reason in Result.Fallback and
// reports one shard, while a genuinely sharded run reports neither.
func TestParallelFallbackObservable(t *testing.T) {
	// Sequential netlist: fallback with the sequential reason.
	n := logic.New()
	in := n.AddInput("d")
	n.MarkOutput(n.Add(logic.DFF, in))
	vectors := make([][]bool, 200)
	for c := range vectors {
		vectors[c] = []bool{c%3 == 0}
	}
	res, err := RunParallel(nil, n, VectorInputs(vectors), 200, ParallelOptions{Workers: 8, MinShard: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback != FallbackSequential || res.Shards != 1 {
		t.Fatalf("sequential netlist: Fallback=%q Shards=%d, want %q/1", res.Fallback, res.Shards, FallbackSequential)
	}

	// Run shorter than two shards: fallback with the short-run reason.
	comb, inputs := mcNetlist(t, 8, 40, 2)
	res, err = RunParallel(nil, comb, inputs, 40, ParallelOptions{Workers: 8, MinShard: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback != FallbackShortRun || res.Shards != 1 {
		t.Fatalf("short run: Fallback=%q Shards=%d, want %q/1", res.Fallback, res.Shards, FallbackShortRun)
	}

	// A shardable run reports its shard count and no fallback.
	comb, inputs = mcNetlist(t, 8, 400, 2)
	res, err = RunParallel(nil, comb, inputs, 400, ParallelOptions{Workers: 4, MinShard: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback != "" || res.Shards < 2 {
		t.Fatalf("sharded run: Fallback=%q Shards=%d, want \"\" and >=2", res.Fallback, res.Shards)
	}

	// The serial entry point reports one shard and no fallback (it never
	// promised parallelism).
	res, err = Run(comb, inputs, 400, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Fallback != "" || res.Shards != 1 {
		t.Fatalf("serial run: Fallback=%q Shards=%d, want \"\"/1", res.Fallback, res.Shards)
	}
}

func TestCanShard(t *testing.T) {
	comb, _ := mcNetlist(t, 8, 1, 1)
	if !CanShard(comb) {
		t.Fatal("combinational netlist reported unshardable")
	}
	if CanShard(nil) {
		t.Fatal("nil netlist reported shardable")
	}
}

func TestParallelInputErrors(t *testing.T) {
	n, _ := mcNetlist(t, 8, 1, 1)
	if _, err := RunParallel(nil, nil, nil, 10, ParallelOptions{}); err == nil {
		t.Fatal("nil netlist accepted")
	}
	if _, err := RunParallel(nil, n, nil, 10, ParallelOptions{}); err == nil {
		t.Fatal("nil provider accepted")
	}
	// Wrong-width vectors must surface as a typed error from inside the
	// worker pool, not a panic.
	bad := func(cycle int) []bool { return []bool{true} }
	if _, err := RunParallel(nil, n, bad, 500, ParallelOptions{Workers: 4, MinShard: 10}); err == nil {
		t.Fatal("wrong-width vector accepted")
	}
}

// TestParallelBudgetExhaustion proves a budget trip inside one shard
// unwinds the whole pool to a typed error.
func TestParallelBudgetExhaustion(t *testing.T) {
	n, inputs := mcNetlist(t, 16, 2000, 5)
	b := budget.New(budget.WithMaxSteps(200))
	_, err := RunParallel(b, n, inputs, 2000, ParallelOptions{Workers: 4, MinShard: 10})
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want budget exhaustion, got %v", err)
	}
}

// TestParallelFaultInjectionUnwinds sweeps deterministic fault trips
// through the sharded simulation and asserts every failure mode is a
// clean typed error with the pool fully unwound.
func TestParallelFaultInjectionUnwinds(t *testing.T) {
	n, inputs := mcNetlist(t, 16, 1200, 9)
	for fail := int64(1); fail <= 5; fail++ {
		b := budget.New(
			budget.WithFaultPlan(budget.FaultPlan{FailAtCheck: fail}),
			budget.WithCheckInterval(64),
		)
		_, err := RunParallel(b, n, inputs, 1200, ParallelOptions{Workers: 4, MinShard: 10})
		var ex *budget.Exceeded
		if !errors.As(err, &ex) {
			t.Fatalf("fail@%d: want *budget.Exceeded, got %v", fail, err)
		}
	}
}

// TestParallelBudgetAccounting: a forked parallel run charges the
// parent budget the same total step count as the serial run.
func TestParallelBudgetAccounting(t *testing.T) {
	n, inputs := mcNetlist(t, 16, 600, 17)
	bs := budget.New()
	if _, err := RunBudget(bs, n, inputs, 600, Options{}); err != nil {
		t.Fatal(err)
	}
	bp := budget.New()
	if _, err := RunParallel(bp, n, inputs, 600, ParallelOptions{Workers: 4, MinShard: 10}); err != nil {
		t.Fatal(err)
	}
	if bs.StepsUsed() != bp.StepsUsed() {
		t.Fatalf("parallel charged %d steps, serial %d", bp.StepsUsed(), bs.StepsUsed())
	}
}

func BenchmarkShardedMC(b *testing.B) {
	n, inputs := mcNetlist(nil, 32, 20000, 23)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := RunParallel(nil, n, inputs, 20000, ParallelOptions{Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
