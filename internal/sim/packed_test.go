package sim

import (
	"errors"
	"math/rand"
	"testing"

	"hlpower/internal/budget"
	"hlpower/internal/logic"
)

// randComb builds a random combinational DAG exercising every packed
// opcode: multi-input And/Or/Nand/Nor, Xor/Xnor, Not/Buf, Mux, and
// constants, spread across a few accounting groups.
func randComb(rng *rand.Rand, nInputs, nGates int) *logic.Netlist {
	n := logic.New()
	var sigs []int
	for i := 0; i < nInputs; i++ {
		sigs = append(sigs, n.AddInput("x"))
	}
	sigs = append(sigs, n.Add(logic.Const0), n.Add(logic.Const1))
	groups := []string{"exec", "ctrl", "misc"}
	pick := func() int { return sigs[rng.Intn(len(sigs))] }
	for g := 0; g < nGates; g++ {
		grp := groups[rng.Intn(len(groups))]
		var id int
		switch rng.Intn(8) {
		case 0:
			id = n.AddG(logic.Not, grp, pick())
		case 1:
			id = n.AddG(logic.Buf, grp, pick())
		case 2:
			id = n.AddG(logic.Xor, grp, pick(), pick())
		case 3:
			id = n.AddG(logic.Xnor, grp, pick(), pick())
		case 4:
			id = n.AddG(logic.Mux, grp, pick(), pick(), pick())
		case 5:
			// 3-input gate: exercises the multi-fanin fold.
			kinds := []logic.Kind{logic.And, logic.Or, logic.Nand, logic.Nor}
			id = n.AddG(kinds[rng.Intn(len(kinds))], grp, pick(), pick(), pick())
		default:
			kinds := []logic.Kind{logic.And, logic.Or, logic.Nand, logic.Nor}
			id = n.AddG(kinds[rng.Intn(len(kinds))], grp, pick(), pick())
		}
		sigs = append(sigs, id)
	}
	n.MarkOutput(sigs[len(sigs)-1])
	n.MarkOutput(sigs[len(sigs)/2])
	return n
}

func randVectors(rng *rand.Rand, cycles, width int) InputProvider {
	vectors := make([][]bool, cycles)
	for c := range vectors {
		v := make([]bool, width)
		for i := range v {
			v[i] = rng.Intn(2) == 1
		}
		vectors[c] = v
	}
	return VectorInputs(vectors)
}

// TestPackedBitIdenticalToSerial is the packed kernel's core property:
// over random netlists and cycle counts straddling word boundaries —
// including counts not divisible by 64, which keep tail-lane masking on
// the hot path — every field of the result is bit-identical to the
// serial zero-delay engine.
func TestPackedBitIdenticalToSerial(t *testing.T) {
	cycleCounts := []int{1, 2, 63, 64, 65, 127, 128, 130, 320, 333}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		n := randComb(rng, 3+rng.Intn(6), 5+rng.Intn(40))
		for _, cycles := range cycleCounts {
			inputs := randVectors(rng, cycles, len(n.Inputs))
			serial, err := Run(n, inputs, cycles, Options{})
			if err != nil {
				t.Fatal(err)
			}
			packed, err := RunPacked(n, inputs, cycles, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if packed.Kernel != KernelPacked || packed.Fallback != "" {
				t.Fatalf("trial %d cycles %d: Kernel=%q Fallback=%q, want packed/\"\"",
					trial, cycles, packed.Kernel, packed.Fallback)
			}
			sameResult(t, serial, packed, "packed")
		}
	}
}

// TestPackedSequentialFallback: stateful netlists cannot bit-pack, so
// RunPacked must degrade to the scalar engine, say so, and still return
// the exact serial result.
func TestPackedSequentialFallback(t *testing.T) {
	n := logic.New()
	a := n.AddInput("a")
	q := n.Add(logic.DFF, a)
	n.MarkOutput(n.Add(logic.Xor, a, q))
	rng := rand.New(rand.NewSource(7))
	inputs := randVectors(rng, 100, 1)

	serial, err := Run(n, inputs, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := RunPacked(n, inputs, 100, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Fallback != FallbackSequential || packed.Kernel != "" {
		t.Fatalf("Fallback=%q Kernel=%q, want %q/\"\"", packed.Fallback, packed.Kernel, FallbackSequential)
	}
	sameResult(t, serial, packed, "sequential-fallback")
}

// TestPackedEventDrivenFallback: glitch-aware timing needs per-event
// ordering the bit-parallel evaluation cannot express.
func TestPackedEventDrivenFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := randComb(rng, 4, 20)
	inputs := randVectors(rng, 80, 4)

	serial, err := Run(n, inputs, 80, Options{Model: EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := RunPacked(n, inputs, 80, Options{Model: EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Fallback != FallbackEventDriven || packed.Kernel != "" {
		t.Fatalf("Fallback=%q Kernel=%q, want %q/\"\"", packed.Fallback, packed.Kernel, FallbackEventDriven)
	}
	sameResult(t, serial, packed, "event-driven-fallback")
}

// TestParallelUsesPackedKernel: RunParallel rides the packed kernel by
// default for eligible workloads, reports it, and stays bit-identical;
// the Scalar opt-out forces the interpreted kernel.
func TestParallelUsesPackedKernel(t *testing.T) {
	n, inputs := mcNetlist(t, 12, 2000, 42)
	serial, err := Run(n, inputs, 2000, Options{})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := RunParallel(nil, n, inputs, 2000, ParallelOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if packed.Kernel != KernelFused {
		t.Fatalf("parallel Kernel=%q, want %q", packed.Kernel, KernelFused)
	}
	sameResult(t, serial, packed, "parallel-packed")

	scalar, err := RunParallel(nil, n, inputs, 2000, ParallelOptions{Workers: 4, Scalar: true})
	if err != nil {
		t.Fatal(err)
	}
	if scalar.Kernel != "" {
		t.Fatalf("Scalar run reported Kernel=%q, want \"\"", scalar.Kernel)
	}
	sameResult(t, serial, scalar, "parallel-scalar")
}

// TestPackedBudgetAccounting: the packed kernel charges one step per
// gate per cycle exactly like the scalar engine, just in word-sized
// increments, so governed runs stay comparable across kernels.
func TestPackedBudgetAccounting(t *testing.T) {
	n, inputs := mcNetlist(t, 12, 1000, 5)
	bs := budget.New(budget.WithMaxSteps(1 << 40))
	if _, err := RunBudget(bs, n, inputs, 1000, Options{}); err != nil {
		t.Fatal(err)
	}
	bp := budget.New(budget.WithMaxSteps(1 << 40))
	if _, err := RunPackedBudget(bp, n, inputs, 1000, Options{}); err != nil {
		t.Fatal(err)
	}
	if bs.StepsUsed() != bp.StepsUsed() {
		t.Fatalf("packed charged %d steps, serial %d", bp.StepsUsed(), bs.StepsUsed())
	}
}

// TestPackedBudgetExhaustion: a too-small step allowance trips the
// typed budget error through the packed path.
func TestPackedBudgetExhaustion(t *testing.T) {
	n, inputs := mcNetlist(t, 12, 5000, 9)
	b := budget.New(budget.WithMaxSteps(200), budget.WithCheckInterval(1))
	_, err := RunPackedBudget(b, n, inputs, 5000, Options{})
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("err = %v, want budget.ErrExceeded", err)
	}
}

// TestPackedInputWidthMismatch: a wrong-width vector is the same typed
// input error the scalar engine reports.
func TestPackedInputWidthMismatch(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := randComb(rng, 4, 10)
	bad := func(int) []bool { return make([]bool, 1) }
	if _, err := RunPacked(n, bad, 10, Options{}); err == nil {
		t.Fatal("want width-mismatch error")
	}
}

// FuzzPackedEquivalence drives the bit-identity property from fuzzed
// corners: arbitrary seeds, netlist shapes, and cycle counts (the
// generator keeps them small; the interesting structure is cycles%64
// and the random DAG).
func FuzzPackedEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(20), uint16(65))
	f.Add(int64(2), uint8(1), uint8(1), uint16(1))
	f.Add(int64(3), uint8(8), uint8(60), uint16(257))
	f.Add(int64(99), uint8(3), uint8(12), uint16(64))
	f.Fuzz(func(t *testing.T, seed int64, nIn, nGates uint8, cyc uint16) {
		nInputs := 1 + int(nIn)%8
		gates := 1 + int(nGates)%48
		cycles := 1 + int(cyc)%300
		rng := rand.New(rand.NewSource(seed))
		n := randComb(rng, nInputs, gates)
		inputs := randVectors(rng, cycles, nInputs)
		serial, err := Run(n, inputs, cycles, Options{})
		if err != nil {
			t.Fatal(err)
		}
		packed, err := RunPacked(n, inputs, cycles, Options{})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, serial, packed, "fuzz-packed")
	})
}
