// Package sim simulates logic netlists and meters their power as
// switched capacitance. Two delay models are provided: the zero-delay
// model counts only functional (final-value) transitions, and the
// event-driven assigned-delay model additionally captures glitches —
// the spurious transitions whose suppression motivates the retiming and
// guarded-evaluation techniques of §III-I/J. Power follows the standard
// CMOS form P = 0.5·V²·f·ΣᵢCᵢEᵢ over all signal lines i.
//
// The engine is organized around contiguous cycle shards: a run is one
// or more [lo, hi) vector ranges simulated independently and folded
// together by a canonical per-cycle merge (see merge). The serial entry
// points run a single full-range shard; RunParallel splits the vector
// stream across a worker pool. Because every total — switched
// capacitance, per-group accounting, toggle counts — is reduced in
// cycle order regardless of sharding, parallel results are bit-identical
// to serial ones for the same seeded workload.
package sim

import (
	"sort"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
)

// DelayModel selects how transitions are counted.
type DelayModel int

const (
	// ZeroDelay evaluates each cycle to its fixed point and counts one
	// transition per line whose settled value changed.
	ZeroDelay DelayModel = iota
	// EventDriven propagates events through per-gate delays within each
	// cycle and counts every output change, including glitches.
	EventDriven
)

// Options configures a simulation run.
type Options struct {
	Model DelayModel
	// Vdd and Freq convert switched capacitance into power via
	// P = 0.5·V²·f·ΣC·E; they default to 1.
	Vdd, Freq float64
	// TrackClock charges ClockCap per flip-flop per cycle to the
	// "clock" group (suppressed for EnDFFs whose enable is low when
	// GateClock is set).
	TrackClock bool
	// GateClock suppresses the clock charge of disabled EnDFFs,
	// modeling a gated clock tree.
	GateClock bool
}

// Result accumulates the outcome of a simulation.
type Result struct {
	Cycles      int
	SwitchedCap float64            // total ΣC over all transitions
	ByGroup     map[string]float64 // switched cap per accounting group
	Toggles     []int64            // transitions per signal
	Final       []bool             // settled values after the last cycle
	Outputs     [][]bool           // per-cycle settled primary outputs
	PerCycleCap []float64          // switched capacitance per cycle
	// Shards is how many vector shards actually ran (1 on the serial
	// entry points and on RunParallel's serial fallback).
	Shards int
	// Fallback is non-empty when RunParallel degraded to the serial
	// engine, naming why (FallbackSequential or FallbackShortRun), so
	// callers that requested parallelism can observe the degradation
	// instead of silently paying serial latency.
	Fallback string
	// Kernel names the execution tier that produced the result (every
	// shard, for parallel runs): KernelPacked for the unfused 64-lane
	// interpreter, KernelFused for the fused-superinstruction
	// interpreter, KernelCodegen for the specialized evaluator of a
	// promoted netlist, empty for the interpreted scalar engine. All
	// tiers are Float64bits-identical; the tag reports where the cycles
	// were spent, never a different answer.
	Kernel    string
	vdd, freq float64
}

// Power converts the accumulated switched capacitance into average
// power: 0.5·V²·f·(ΣC·E)/cycles.
func (r *Result) Power() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return 0.5 * r.vdd * r.vdd * r.freq * r.SwitchedCap / float64(r.Cycles)
}

// Energy returns total switched energy 0.5·V²·ΣC.
func (r *Result) Energy() float64 { return 0.5 * r.vdd * r.vdd * r.SwitchedCap }

// Clone deep-copies the result, including the private electrical
// parameters, so memoization layers can hand each caller an isolated
// value while keeping the stored original immutable.
func (r *Result) Clone() *Result {
	if r == nil {
		return nil
	}
	cp := *r
	if r.ByGroup != nil {
		cp.ByGroup = make(map[string]float64, len(r.ByGroup))
		for k, v := range r.ByGroup {
			cp.ByGroup[k] = v
		}
	}
	cp.Toggles = append([]int64(nil), r.Toggles...)
	cp.Final = append([]bool(nil), r.Final...)
	cp.PerCycleCap = append([]float64(nil), r.PerCycleCap...)
	if r.Outputs != nil {
		cp.Outputs = make([][]bool, len(r.Outputs))
		for i, o := range r.Outputs {
			cp.Outputs[i] = append([]bool(nil), o...)
		}
	}
	return &cp
}

// SizeBytes approximates the result's in-memory footprint for cache
// byte accounting. It intentionally overcounts a little (map and slice
// headers) rather than under: eviction pressure should err toward
// keeping the cache below its budget.
func (r *Result) SizeBytes() int64 {
	if r == nil {
		return 0
	}
	size := int64(256) // struct, map header, slice headers
	size += int64(len(r.Toggles)) * 8
	size += int64(len(r.Final))
	size += int64(len(r.PerCycleCap)) * 8
	for k := range r.ByGroup {
		size += int64(len(k)) + 48
	}
	for _, o := range r.Outputs {
		size += int64(len(o)) + 24
	}
	return size
}

// InputProvider yields the primary-input assignment for each cycle.
type InputProvider func(cycle int) []bool

// VectorInputs adapts a pre-built list of input vectors. The returned
// provider is safe for concurrent use by RunParallel workers.
func VectorInputs(vectors [][]bool) InputProvider {
	return func(cycle int) []bool { return vectors[cycle] }
}

// Run simulates the netlist for the given number of cycles. A nil
// netlist, a non-positive cycle count, a missing input provider, or a
// wrong-width input vector is a typed input error (hlerr.IsInput).
func Run(n *logic.Netlist, inputs InputProvider, cycles int, opts Options) (*Result, error) {
	return RunBudget(nil, n, inputs, cycles, opts)
}

// RunBudget is Run governed by a resource budget: every simulated cycle
// charges one step per gate, so long runs on large netlists respect
// deadlines and cancellation. On exhaustion the returned error matches
// budget.ErrExceeded.
func RunBudget(b *budget.Budget, n *logic.Netlist, inputs InputProvider, cycles int, opts Options) (res *Result, err error) {
	defer hlerr.Recover(&err)
	e, err := prepare(n, inputs, cycles, opts)
	if err != nil {
		return nil, err
	}
	sh, err := runShard(b, e, inputs, 0, cycles)
	if err != nil {
		return nil, err
	}
	return merge(e, cycles, []*shard{sh}), nil
}

// env is the read-only, shard-shareable part of a run: netlist-derived
// tables computed once and read concurrently by every worker. Group
// names are interned to dense indices so shards can accumulate
// per-group capacitance in flat slices instead of maps.
type env struct {
	n          *logic.Netlist
	order      []int
	loads      []float64
	fanouts    [][]int
	groups     []string // dense group index -> name
	groupOf    []int    // gate id -> dense group index
	clockGI    int      // dense index of the "clock" group (-1 when untracked)
	opts       Options
	sequential bool // any DFF/EnDFF/Latch present
}

// prepare validates a run's inputs and builds the shared environment.
func prepare(n *logic.Netlist, inputs InputProvider, cycles int, opts Options) (*env, error) {
	if n == nil {
		return nil, hlerr.Errorf("sim.Run", "nil netlist")
	}
	if err := n.Err(); err != nil {
		return nil, err
	}
	if err := checkRun(inputs, cycles); err != nil {
		return nil, err
	}
	return prepareNet(n, opts)
}

// checkRun validates the per-run arguments (the parts of a run not
// fixed by a compiled netlist).
func checkRun(inputs InputProvider, cycles int) error {
	if cycles <= 0 {
		return hlerr.Errorf("sim.Run", "cycle count %d must be positive", cycles)
	}
	if inputs == nil {
		return hlerr.Errorf("sim.Run", "nil input provider")
	}
	return nil
}

// prepareNet builds the netlist-derived environment — the read-only
// tables every run over this netlist shares. Split from prepare so
// Compile can pay this once for a whole batch of runs.
func prepareNet(n *logic.Netlist, opts Options) (*env, error) {
	if n == nil {
		return nil, hlerr.Errorf("sim.Run", "nil netlist")
	}
	if err := n.Err(); err != nil {
		return nil, err
	}
	if opts.Vdd == 0 {
		opts.Vdd = 1
	}
	if opts.Freq == 0 {
		opts.Freq = 1
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &env{
		n:       n,
		order:   order,
		loads:   n.Loads(),
		groupOf: make([]int, len(n.Gates)),
		clockGI: -1,
		opts:    opts,
	}
	// Fanout adjacency is only read by the event-driven engine
	// (simulateEventDriven); zero-delay runs skip the per-gate slice
	// build, which dominated their setup allocations.
	if opts.Model == EventDriven {
		e.fanouts = n.Fanouts()
	}
	idx := map[string]int{}
	for id, g := range n.Gates {
		gi, ok := idx[g.Group]
		if !ok {
			gi = len(e.groups)
			idx[g.Group] = gi
			e.groups = append(e.groups, g.Group)
		}
		e.groupOf[id] = gi
		if g.Kind.IsSequential() || g.Kind == logic.Latch {
			e.sequential = true
		}
	}
	if opts.TrackClock {
		gi, ok := idx["clock"]
		if !ok {
			gi = len(e.groups)
			e.groups = append(e.groups, "clock")
		}
		e.clockGI = gi
	}
	return e, nil
}

// shard accumulates one contiguous cycle range [lo, hi). Every total is
// kept per cycle (capacitance, group deltas) or in an associative form
// (toggle counts), so any sharding of the run merges to bit-identical
// results.
type shard struct {
	lo, hi   int
	toggles  []int64
	capByCyc []float64   // switched cap per cycle, indexed cycle-lo
	grpByCyc [][]float64 // per cycle, per dense group index
	outputs  [][]bool
	final    []bool
}

// runShard simulates cycles [lo, hi). The first shard (lo == 0) starts
// from the reset state exactly as the original serial engine did; later
// shards — valid only for state-free netlists — rebuild their
// transition baseline by settling the previous shard's last input
// vector, so transition counting across the shard boundary matches a
// serial run cycle for cycle.
func runShard(b *budget.Budget, e *env, inputs InputProvider, lo, hi int) (sh *shard, err error) {
	defer hlerr.Recover(&err)
	n := e.n
	sh = &shard{
		lo: lo, hi: hi,
		toggles:  make([]int64, len(n.Gates)),
		capByCyc: make([]float64, hi-lo),
		grpByCyc: make([][]float64, hi-lo),
		outputs:  make([][]bool, 0, hi-lo),
	}
	grpFlat := make([]float64, (hi-lo)*len(e.groups))
	for i := range sh.grpByCyc {
		sh.grpByCyc[i] = grpFlat[i*len(e.groups) : (i+1)*len(e.groups)]
	}
	// Per-cycle output rows are views into one flat backing array; the
	// hot loop must not allocate per cycle.
	outFlat := make([]bool, (hi-lo)*len(n.Outputs))

	values := make([]bool, len(n.Gates)) // settled values
	state := make([]bool, len(n.Gates))  // DFF/EnDFF/Latch state
	for id, g := range n.Gates {
		if g.Kind.IsSequential() || g.Kind == logic.Latch {
			state[id] = g.Init
		}
	}

	cur := 0 // index of the cycle being simulated, relative to lo
	record := func(id int) {
		sh.toggles[id]++
		sh.capByCyc[cur] += e.loads[id]
		sh.grpByCyc[cur][e.groupOf[id]] += e.loads[id]
	}

	inVals := make([]bool, len(n.Inputs))
	faninBuf := make([]bool, 0, 8)
	evalSettled := func() {
		for _, id := range e.order {
			g := &n.Gates[id]
			switch g.Kind {
			case logic.Input, logic.Const1, logic.Const0:
				// already set (inputs) or constant
				if g.Kind == logic.Const1 {
					values[id] = true
				} else if g.Kind == logic.Const0 {
					values[id] = false
				}
			case logic.DFF, logic.EnDFF:
				values[id] = state[id]
			case logic.Latch:
				if values[g.Fanin[0]] {
					state[id] = values[g.Fanin[1]]
				}
				values[id] = state[id]
			default:
				faninBuf = faninBuf[:0]
				for _, f := range g.Fanin {
					faninBuf = append(faninBuf, values[f])
				}
				values[id] = logic.EvalGate(g.Kind, faninBuf)
			}
		}
	}
	fetch := func(cycle int) ([]bool, error) {
		vec := inputs(cycle)
		if len(vec) != len(n.Inputs) {
			return nil, hlerr.Errorf("sim.Run", "input vector width %d, want %d", len(vec), len(n.Inputs))
		}
		return vec, nil
	}

	// Baseline: transitions in the shard's first cycle are counted
	// against the settled values of the previous input vector (vector 0
	// for the first shard, matching the serial reset initialization).
	base := lo - 1
	if base < 0 {
		base = 0
	}
	vec, err := fetch(base)
	if err != nil {
		return nil, err
	}
	for i, sig := range n.Inputs {
		values[sig] = vec[i]
	}
	evalSettled()

	prev := make([]bool, len(n.Gates))
	var ed *edScratch
	if e.opts.Model == EventDriven {
		ed = newEDScratch()
	}
	for cycle := lo; cycle < hi; cycle++ {
		b.Check(int64(len(e.order)) + 1)
		cur = cycle - lo
		copy(prev, values)
		vec, err := fetch(cycle)
		if err != nil {
			return nil, err
		}
		copy(inVals, vec)

		// Clock edge between cycles: update flip-flop state from the
		// previous cycle's settled D. Cycle 0 runs from the reset state.
		if cycle > 0 {
			for _, id := range e.order {
				g := &n.Gates[id]
				switch g.Kind {
				case logic.DFF:
					state[id] = prev[g.Fanin[0]]
				case logic.EnDFF:
					if prev[g.Fanin[0]] {
						state[id] = prev[g.Fanin[1]]
					}
				}
			}
			// Clock tree power for this edge.
			if e.opts.TrackClock {
				for _, g := range n.Gates {
					if g.Kind == logic.DFF {
						sh.capByCyc[cur] += n.ClockCap
						sh.grpByCyc[cur][e.clockGI] += n.ClockCap
					} else if g.Kind == logic.EnDFF {
						if e.opts.GateClock && !prev[g.Fanin[0]] {
							continue
						}
						sh.capByCyc[cur] += n.ClockCap
						sh.grpByCyc[cur][e.clockGI] += n.ClockCap
					}
				}
			}
		}
		for i, sig := range n.Inputs {
			values[sig] = inVals[i]
		}

		if e.opts.Model == EventDriven {
			simulateEventDriven(b, n, e.fanouts, values, state, prev, record, ed)
		} else {
			evalSettled()
			for id := range values {
				if values[id] != prev[id] {
					record(id)
				}
			}
		}

		out := outFlat[cur*len(n.Outputs) : (cur+1)*len(n.Outputs) : (cur+1)*len(n.Outputs)]
		for i, o := range n.Outputs {
			out[i] = values[o]
		}
		sh.outputs = append(sh.outputs, out)
	}
	sh.final = values
	return sh, nil
}

// merge folds shards (contiguous, ascending) into a Result. All
// floating-point totals are reduced in canonical cycle order — never in
// shard-completion or per-load order — so the outcome is independent of
// how the run was sharded, including the 1-shard serial case.
func merge(e *env, cycles int, shards []*shard) *Result {
	// Lean shards (RunOptions.Lean) never materialized group rows or
	// output vectors; skip their Result fields rather than allocating
	// empties. Every numeric reduction below is untouched by leanness.
	lean := len(shards) > 0 && shards[0].grpByCyc == nil && cycles > 0
	res := &Result{
		Cycles:      cycles,
		Toggles:     make([]int64, len(e.n.Gates)),
		PerCycleCap: make([]float64, 0, cycles),
		Shards:      len(shards),
		vdd:         e.opts.Vdd,
		freq:        e.opts.Freq,
	}
	var grpTotal []float64
	if !lean {
		res.ByGroup = make(map[string]float64)
		res.Outputs = make([][]bool, 0, cycles)
		grpTotal = make([]float64, len(e.groups))
	}
	for _, sh := range shards {
		for id, tgl := range sh.toggles {
			res.Toggles[id] += tgl
		}
		res.PerCycleCap = append(res.PerCycleCap, sh.capByCyc...)
		for _, row := range sh.grpByCyc {
			for gi, v := range row {
				grpTotal[gi] += v
			}
		}
		if !lean {
			res.Outputs = append(res.Outputs, sh.outputs...)
		}
	}
	for _, c := range res.PerCycleCap {
		res.SwitchedCap += c
	}
	for gi, v := range grpTotal {
		if v != 0 {
			res.ByGroup[e.groups[gi]] = v
		}
	}
	if len(shards) > 0 {
		res.Final = shards[len(shards)-1].final
	}
	return res
}

// edScratch is the per-shard scratch of the event-driven engine. The
// simulator used to rebuild all of this every cycle — a pending map,
// its per-time gate sets, the sorted time list, the fanin and commit
// buffers — which dominated the allocation profile of glitch-aware
// runs. One instance now lives for a whole shard: maps are emptied and
// recycled through a free list, slices are truncated and regrown only
// past their high-water mark.
type edScratch struct {
	pending  map[int]map[int]bool // time -> set of gates awaiting eval
	free     []map[int]bool       // drained gate sets, ready for reuse
	times    []int
	ids      []int
	faninBuf []bool
	commits  []edCommit
}

type edCommit struct {
	gate int
	val  bool
}

func newEDScratch() *edScratch {
	return &edScratch{
		pending:  make(map[int]map[int]bool),
		faninBuf: make([]bool, 0, 8),
	}
}

// simulateEventDriven settles one clock cycle under per-gate delays,
// counting every output change (functional transitions and glitches).
// values holds the new source values (inputs and FF outputs already
// updated); prev holds last cycle's settled values. s carries reusable
// scratch across cycles and must not be shared between shards.
func simulateEventDriven(b *budget.Budget, n *logic.Netlist, fanouts [][]int, values, state, prev []bool, record func(int), s *edScratch) {
	schedule := func(t, g int) {
		m, ok := s.pending[t]
		if !ok {
			if k := len(s.free); k > 0 {
				m = s.free[k-1]
				s.free = s.free[:k-1]
			} else {
				m = make(map[int]bool)
			}
			s.pending[t] = m
		}
		m[g] = true
	}
	// Seed: any source whose value changed triggers its fanouts.
	for id, g := range n.Gates {
		isSource := g.Kind == logic.Input || g.Kind.IsSequential() ||
			g.Kind == logic.Const0 || g.Kind == logic.Const1
		if !isSource {
			continue
		}
		if g.Kind.IsSequential() {
			values[id] = state[id]
		}
		if values[id] != prev[id] {
			record(id)
			for _, f := range fanouts[id] {
				schedule(n.Gates[f].Delay, f)
			}
		}
	}
	for len(s.pending) > 0 {
		b.Check(1)
		// Pop the earliest time.
		s.times = s.times[:0]
		for t := range s.pending {
			s.times = append(s.times, t)
		}
		sort.Ints(s.times)
		t := s.times[0]
		gates := s.pending[t]
		delete(s.pending, t)
		// Phase 1: evaluate every gate scheduled at t against the values
		// as of time t (no in-step visibility, or glitches are lost).
		// Gates are processed in ascending id order — iterating the set
		// directly would commit (and accumulate capacitance) in map
		// order, making the floating-point totals vary run to run.
		s.ids = s.ids[:0]
		for id := range gates {
			s.ids = append(s.ids, id)
		}
		sort.Ints(s.ids)
		s.commits = s.commits[:0]
		for _, id := range s.ids {
			g := &n.Gates[id]
			if g.Kind == logic.Input || g.Kind.IsSequential() ||
				g.Kind == logic.Const0 || g.Kind == logic.Const1 {
				continue
			}
			var newVal bool
			if g.Kind == logic.Latch {
				v := state[id]
				if values[g.Fanin[0]] {
					v = values[g.Fanin[1]]
				}
				newVal = v
			} else {
				s.faninBuf = s.faninBuf[:0]
				for _, f := range g.Fanin {
					s.faninBuf = append(s.faninBuf, values[f])
				}
				newVal = logic.EvalGate(g.Kind, s.faninBuf)
			}
			if newVal != values[id] {
				s.commits = append(s.commits, edCommit{id, newVal})
			}
		}
		// Recycle the drained gate set (range-delete compiles to a map
		// clear) and commit phase 2: count transitions, schedule fanouts.
		for g := range gates {
			delete(gates, g)
		}
		s.free = append(s.free, gates)
		for _, c := range s.commits {
			values[c.gate] = c.val
			if n.Gates[c.gate].Kind == logic.Latch {
				state[c.gate] = c.val
			}
			record(c.gate)
			for _, f := range fanouts[c.gate] {
				schedule(t+n.Gates[f].Delay, f)
			}
		}
	}
}
