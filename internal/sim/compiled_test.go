package sim

import (
	"errors"
	"math"
	"testing"

	"hlpower/internal/bitutil"
	"hlpower/internal/budget"
	"hlpower/internal/logic"
)

// TestCompiledBitIdenticalToRunParallel is the compiled-artifact
// determinism contract: for any workload and worker count, a Compiled
// run must reproduce the one-shot RunParallel result bit for bit —
// including the Shards/Fallback/Kernel execution metadata.
func TestCompiledBitIdenticalToRunParallel(t *testing.T) {
	n, inputs := mcNetlist(t, 16, 700, 99)
	opts := Options{Vdd: 1.5, Freq: 2}
	c, err := Compile(n, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Packed() {
		t.Fatal("combinational zero-delay netlist compiled without the packed program")
	}
	for _, workers := range []int{1, 2, 3, 8} {
		want, err := RunParallel(nil, n, inputs, 700, ParallelOptions{
			Options: opts, Workers: workers, MinShard: 10,
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := c.Run(nil, inputs, 700, RunOptions{Workers: workers, MinShard: 10})
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, want, got, "compiled/workers")
		if got.Shards != want.Shards || got.Fallback != want.Fallback || got.Kernel != want.Kernel {
			t.Fatalf("workers=%d: metadata differs: got %d/%q/%q want %d/%q/%q",
				workers, got.Shards, got.Fallback, got.Kernel, want.Shards, want.Fallback, want.Kernel)
		}
	}
}

// TestCompiledScratchReuse pins the pooled-scratch safety property: a
// run after other workloads (different cycle counts, different vectors)
// over the same compiled netlist reproduces its first result exactly —
// no state leaks through the recycled word planes.
func TestCompiledScratchReuse(t *testing.T) {
	n, inA := mcNetlist(t, 12, 300, 1)
	_, inB := mcNetlist(t, 12, 257, 2)
	c, err := Compile(n, Options{Vdd: 1, Freq: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Run(nil, inA, 300, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Interleave a differently shaped workload (odd cycle count, so the
	// last word's tail lanes hold garbage) and an explicitly scalar run.
	if _, err := c.Run(nil, inB, 257, RunOptions{Workers: 3, MinShard: 10}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(nil, inB, 100, RunOptions{Scalar: true}); err != nil {
		t.Fatal(err)
	}
	again, err := c.Run(nil, inA, 300, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, first, again, "scratch-reuse")
}

// TestCompiledScalarOption: forcing the interpreted kernel changes the
// Kernel tag, never the numbers.
func TestCompiledScalarOption(t *testing.T) {
	n, inputs := mcNetlist(t, 12, 400, 7)
	c, err := Compile(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	packed, err := c.Run(nil, inputs, 400, RunOptions{Workers: 2, MinShard: 10})
	if err != nil {
		t.Fatal(err)
	}
	scalar, err := c.Run(nil, inputs, 400, RunOptions{Workers: 2, MinShard: 10, Scalar: true})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, packed, scalar, "scalar-option")
	if packed.Kernel != KernelFused || scalar.Kernel != "" {
		t.Fatalf("Kernel tags: packed=%q scalar=%q", packed.Kernel, scalar.Kernel)
	}
}

// TestCompiledSequentialFallback: a stateful netlist compiles to a
// scalar-only artifact whose runs degrade exactly like RunParallel.
func TestCompiledSequentialFallback(t *testing.T) {
	n := logic.New()
	in := n.AddInput("d")
	n.MarkOutput(n.Add(logic.DFF, in))
	c, err := Compile(n, Options{TrackClock: true})
	if err != nil {
		t.Fatal(err)
	}
	if c.Packed() {
		t.Fatal("sequential netlist compiled with a packed program")
	}
	vectors := make([][]bool, 200)
	for i := range vectors {
		vectors[i] = []bool{i%3 == 0}
	}
	want, err := RunParallel(nil, n, VectorInputs(vectors), 200, ParallelOptions{
		Options: Options{TrackClock: true}, Workers: 8, MinShard: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Run(nil, VectorInputs(vectors), 200, RunOptions{Workers: 8, MinShard: 10})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, want, got, "sequential")
	if got.Fallback != FallbackSequential || got.Shards != 1 {
		t.Fatalf("Fallback=%q Shards=%d, want %q/1", got.Fallback, got.Shards, FallbackSequential)
	}
}

// TestCompiledWordsLean pins the batch pipeline's two kernel
// accelerators. Words feeds pre-packed input words instead of per-cycle
// []bool vectors; Lean skips the Result fields a power figure never
// reads. Both must leave every number bit-identical to the full run —
// across word boundaries, odd tail lanes, and sharding — and Lean must
// actually suppress the skipped fields.
func TestCompiledWordsLean(t *testing.T) {
	n, inputs := mcNetlist(t, 14, 700, 5)
	c, err := Compile(n, Options{Vdd: 1.2, Freq: 3})
	if err != nil {
		t.Fatal(err)
	}
	words := func(cycle int) uint64 { return bitutil.FromBits(inputs(cycle)) }
	for _, cycles := range []int{3, 64, 65, 257, 700} {
		for _, workers := range []int{1, 4} {
			full, err := c.Run(nil, inputs, cycles, RunOptions{Workers: workers, MinShard: 10})
			if err != nil {
				t.Fatal(err)
			}
			lean, err := c.Run(nil, inputs, cycles, RunOptions{
				Workers: workers, MinShard: 10,
				Words: words, Lean: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(lean.Power()) != math.Float64bits(full.Power()) ||
				math.Float64bits(lean.SwitchedCap) != math.Float64bits(full.SwitchedCap) {
				t.Fatalf("cycles=%d workers=%d: lean power %v != full %v", cycles, workers, lean.Power(), full.Power())
			}
			for id := range full.Toggles {
				if lean.Toggles[id] != full.Toggles[id] {
					t.Fatalf("cycles=%d: toggle count differs at net %d", cycles, id)
				}
			}
			for i := range full.PerCycleCap {
				if math.Float64bits(lean.PerCycleCap[i]) != math.Float64bits(full.PerCycleCap[i]) {
					t.Fatalf("cycles=%d: per-cycle cap differs at cycle %d", cycles, i)
				}
			}
			if lean.Shards != full.Shards || lean.Kernel != full.Kernel || lean.Fallback != full.Fallback {
				t.Fatalf("cycles=%d: metadata differs: %d/%q/%q vs %d/%q/%q",
					cycles, lean.Shards, lean.Kernel, lean.Fallback, full.Shards, full.Kernel, full.Fallback)
			}
			if len(lean.Outputs) != 0 || lean.ByGroup != nil || lean.Final != nil {
				t.Fatalf("cycles=%d: lean run materialized skipped fields", cycles)
			}
		}
	}
	// Words alone (no Lean) must reproduce the full result exactly,
	// skipped fields included.
	full, err := c.Run(nil, inputs, 300, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	viaWords, err := c.Run(nil, inputs, 300, RunOptions{Words: words})
	if err != nil {
		t.Fatal(err)
	}
	sameResult(t, full, viaWords, "words-full")
}

// TestCompiledBudgetAccounting: a compiled run charges the budget the
// same step total as the one-shot paths.
func TestCompiledBudgetAccounting(t *testing.T) {
	n, inputs := mcNetlist(t, 16, 600, 17)
	bs := budget.New()
	if _, err := RunBudget(bs, n, inputs, 600, Options{}); err != nil {
		t.Fatal(err)
	}
	c, err := Compile(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bc := budget.New()
	if _, err := c.Run(bc, inputs, 600, RunOptions{Workers: 4, MinShard: 10}); err != nil {
		t.Fatal(err)
	}
	if bs.StepsUsed() != bc.StepsUsed() {
		t.Fatalf("compiled charged %d steps, serial %d", bc.StepsUsed(), bs.StepsUsed())
	}
	// Exhaustion still unwinds to a typed error.
	tight := budget.New(budget.WithMaxSteps(200))
	if _, err := c.Run(tight, inputs, 600, RunOptions{Workers: 4, MinShard: 10}); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want budget exhaustion, got %v", err)
	}
}

// TestCompileErrors: construction errors surface at Compile, run-shape
// errors at Run.
func TestCompileErrors(t *testing.T) {
	if _, err := Compile(nil, Options{}); err == nil {
		t.Fatal("nil netlist compiled")
	}
	n, inputs := mcNetlist(t, 8, 10, 1)
	c, err := Compile(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(nil, nil, 10, RunOptions{}); err == nil {
		t.Fatal("nil provider accepted")
	}
	if _, err := c.Run(nil, inputs, 0, RunOptions{}); err == nil {
		t.Fatal("zero cycles accepted")
	}
	bad := func(cycle int) []bool { return []bool{true} }
	if _, err := c.Run(nil, bad, 10, RunOptions{}); err == nil {
		t.Fatal("wrong-width vector accepted")
	}
}
