package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/budget"
)

// TestCodegenBitIdentity is the codegen tier's core property: across
// random netlists and cycle counts straddling word boundaries, a
// promoted Compiled run (specialized evaluator) is bit-identical in
// every result field to the serial engine and to the fused interpreter
// — full and lean, and with NoCodegen forcing the fused tier back.
func TestCodegenBitIdentity(t *testing.T) {
	cycleCounts := []int{1, 2, 63, 64, 65, 127, 128, 130, 333}
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(7000 + trial)))
		n := randComb(rng, 3+rng.Intn(6), 5+rng.Intn(40))
		c, err := Compile(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if c.HasCodegen() {
			t.Fatal("artifact born promoted; codegen must be explicit")
		}
		if err := c.BuildCodegen(); err != nil {
			t.Fatal(err)
		}
		if !c.HasCodegen() {
			t.Fatal("BuildCodegen did not install the evaluator")
		}
		for _, cycles := range cycleCounts {
			inputs := randVectors(rng, cycles, len(n.Inputs))
			serial, err := Run(n, inputs, cycles, Options{})
			if err != nil {
				t.Fatal(err)
			}
			fused, err := c.Run(nil, inputs, cycles, RunOptions{Workers: 1, NoCodegen: true})
			if err != nil {
				t.Fatal(err)
			}
			if fused.Kernel != KernelFused {
				t.Fatalf("trial %d cycles %d: NoCodegen Kernel=%q, want fused", trial, cycles, fused.Kernel)
			}
			gen, err := c.Run(nil, inputs, cycles, RunOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if gen.Kernel != KernelCodegen {
				t.Fatalf("trial %d cycles %d: Kernel=%q, want codegen", trial, cycles, gen.Kernel)
			}
			sameResult(t, serial, gen, "codegen-vs-serial")
			sameResult(t, fused, gen, "codegen-vs-fused")
		}
	}
}

// TestCodegenMultiplierWorkload pins the serving shape: the promoted
// multiplier artifact's lean+words run must agree with the fused tier
// to the bit on the power figure, with the evaluator actually built
// into level runs.
func TestCodegenMultiplierWorkload(t *testing.T) {
	const w, cycles = 8, 1000
	n, inputs, words := mulWorkload(w, cycles, 77)
	c, err := Compile(n, Options{Vdd: 1, Freq: 1})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := c.Run(nil, inputs, cycles, RunOptions{Workers: 1, Words: words, Lean: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BuildCodegen(); err != nil {
		t.Fatal(err)
	}
	runs, levels := c.CodegenStats()
	if runs == 0 || levels == 0 {
		t.Fatalf("codegen stats runs=%d levels=%d, want nonzero", runs, levels)
	}
	if runs > c.FusedGroups() {
		t.Fatalf("runs=%d exceeds fused groups %d: bucketing broken", runs, c.FusedGroups())
	}
	gen, err := c.Run(nil, inputs, cycles, RunOptions{Workers: 1, Words: words, Lean: true})
	if err != nil {
		t.Fatal(err)
	}
	if gen.Kernel != KernelCodegen {
		t.Fatalf("Kernel=%q, want codegen", gen.Kernel)
	}
	if math.Float64bits(fused.Power()) != math.Float64bits(gen.Power()) {
		t.Fatalf("Power differs: fused %v codegen %v", fused.Power(), gen.Power())
	}
	if math.Float64bits(fused.SwitchedCap) != math.Float64bits(gen.SwitchedCap) {
		t.Fatalf("SwitchedCap differs")
	}
}

// TestCodegenBudgetBoundary mirrors TestFusedBudgetBoundary: budget
// charging ignores the execution tier entirely, so a promoted run
// charges exactly the steps the unfused kernel charges and trips at
// exactly the same allowance boundary.
func TestCodegenBudgetBoundary(t *testing.T) {
	const w, cycles = 4, 500
	n, inputs, _ := mulWorkload(w, cycles, 9)
	c, err := Compile(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BuildCodegen(); err != nil {
		t.Fatal(err)
	}
	ref := budget.New(budget.WithMaxSteps(1 << 40))
	if _, err := RunPackedBudget(ref, n, inputs, cycles, Options{}); err != nil {
		t.Fatal(err)
	}
	need := ref.StepsUsed()

	exact := budget.New(budget.WithMaxSteps(need), budget.WithCheckInterval(1))
	if _, err := c.Run(exact, inputs, cycles, RunOptions{Workers: 1}); err != nil {
		t.Fatalf("exact budget failed: %v", err)
	}
	if exact.StepsUsed() != need {
		t.Fatalf("codegen charged %d steps, unfused %d", exact.StepsUsed(), need)
	}

	short := budget.New(budget.WithMaxSteps(need-1), budget.WithCheckInterval(1))
	if _, err := c.Run(short, inputs, cycles, RunOptions{Workers: 1}); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("err = %v, want budget.ErrExceeded", err)
	}
}

// TestCodegenScalarOnlyErrors: artifacts without a packed program have
// nothing to specialize; BuildCodegen must fail cleanly and leave the
// artifact serving its existing tier.
func TestCodegenScalarOnlyErrors(t *testing.T) {
	n, _ := mcNetlist(t, 4, 10, 3)
	c, err := Compile(n, Options{Model: EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	if c.Packed() {
		t.Fatal("event-driven artifact compiled a packed program")
	}
	if err := c.BuildCodegen(); err == nil {
		t.Fatal("BuildCodegen on a scalar-only artifact succeeded")
	}
	if c.HasCodegen() {
		t.Fatal("failed build left an evaluator installed")
	}
}

// TestCodegenSwapMidStream: building the evaluator between runs must
// not perturb results — the tier ladder is metadata, not math. Also
// covers multi-shard promoted runs sharing one codegenProgram.
func TestCodegenSwapMidStream(t *testing.T) {
	n, inputs, words := mulWorkload(6, 700, 31)
	c, err := Compile(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	before, err := c.Run(nil, inputs, 700, RunOptions{Workers: 4, MinShard: 10, Words: words})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.BuildCodegen(); err != nil {
		t.Fatal(err)
	}
	after, err := c.Run(nil, inputs, 700, RunOptions{Workers: 4, MinShard: 10, Words: words})
	if err != nil {
		t.Fatal(err)
	}
	if before.Kernel != KernelFused || after.Kernel != KernelCodegen {
		t.Fatalf("Kernel before=%q after=%q", before.Kernel, after.Kernel)
	}
	// Clear the tags so sameResult's field-by-field comparison checks
	// every number; the tags were asserted above.
	before.Kernel, after.Kernel = "", ""
	sameResult(t, before, after, "swap-mid-stream")
}

// FuzzCodegenEquivalence drives serial/fused/codegen Float64bits
// identity from fuzzed corners: arbitrary netlist shapes, cycle counts
// around word boundaries, and budget allowances that may exhaust
// mid-run — in which case the tiers must fail identically.
func FuzzCodegenEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(20), uint16(65), uint32(0))
	f.Add(int64(2), uint8(1), uint8(1), uint16(1), uint32(0))
	f.Add(int64(3), uint8(8), uint8(60), uint16(257), uint32(0))
	f.Add(int64(42), uint8(4), uint8(30), uint16(128), uint32(500))
	f.Fuzz(func(t *testing.T, seed int64, nIn, nGates uint8, cyc uint16, maxSteps uint32) {
		nInputs := 1 + int(nIn)%8
		gates := 1 + int(nGates)%48
		cycles := 1 + int(cyc)%300
		rng := rand.New(rand.NewSource(seed))
		n := randComb(rng, nInputs, gates)
		inputs := randVectors(rng, cycles, nInputs)
		c, err := Compile(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.BuildCodegen(); err != nil {
			t.Fatal(err)
		}
		var bs, bf, bg *budget.Budget
		if maxSteps > 0 {
			bs = budget.New(budget.WithMaxSteps(int64(maxSteps)), budget.WithCheckInterval(1))
			bf = budget.New(budget.WithMaxSteps(int64(maxSteps)), budget.WithCheckInterval(1))
			bg = budget.New(budget.WithMaxSteps(int64(maxSteps)), budget.WithCheckInterval(1))
		}
		serial, errS := RunBudget(bs, n, inputs, cycles, Options{})
		fused, errF := c.Run(bf, inputs, cycles, RunOptions{Workers: 1, NoCodegen: true})
		gen, errG := c.Run(bg, inputs, cycles, RunOptions{Workers: 1})
		if (errS == nil) != (errG == nil) || (errF == nil) != (errG == nil) {
			t.Fatalf("error divergence: serial=%v fused=%v codegen=%v", errS, errF, errG)
		}
		if errG != nil {
			if !errors.Is(errG, budget.ErrExceeded) || !errors.Is(errF, budget.ErrExceeded) {
				t.Fatalf("unexpected errors: %v / %v", errF, errG)
			}
			return
		}
		sameResult(t, serial, gen, "fuzz-codegen-serial")
		sameResult(t, fused, gen, "fuzz-codegen-fused")
	})
}

// BenchmarkCodegenKernelWorkload is BenchmarkPackedKernelWorkload on
// the promoted tier: same hot multiplier, pre-packed words, lean run,
// pooled scratch — only the evaluator differs. The A/B against the
// fused benchmark is the codegen tier's speedup claim.
func BenchmarkCodegenKernelWorkload(b *testing.B) {
	const w, cycles = 8, 4096
	n, inputs, words := mulWorkload(w, cycles, 123)
	c, err := Compile(n, Options{Vdd: 1, Freq: 1})
	if err != nil {
		b.Fatal(err)
	}
	if err := c.BuildCodegen(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(nil, inputs, cycles, RunOptions{Workers: 1, Words: words, Lean: true}); err != nil {
			b.Fatal(err)
		}
	}
}
