// Fused-superinstruction execution for the 64-lane packed kernel. The
// packed interpreter in execPacked pays one switch dispatch per compiled
// gate; execFused runs the logic.Fuse form of the same program, paying
// one dispatch per fused group (an AND4 chain, an AO22 carry cell, a
// NOT-absorbed pair) while still writing every intermediate net's word —
// per-net toggle counts and capacitive loads are observable results, so
// fusion removes dispatches, never nets. Because AND/OR/XOR words are
// bitwise-exact under regrouping, every net receives exactly the word
// execPacked would have written, which keeps fused runs Float64bits-
// identical to unfused ones (pinned by TestFusedBitIdentity and
// FuzzFusedEquivalence).
package sim

import (
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
)

// KernelFused in Result.Kernel marks a run executed by the fused-
// superinstruction interpreter — the default tier for compiled
// artifacts, between "packed" (unfused 64-lane interpreter) and
// "codegen" (specialized evaluator) on the kernel ladder.
const KernelFused = "fused"

// execFused runs the fused instruction stream over the packed value
// words, writing the identical word to every net that execPacked writes
// for the source program. Lanes beyond the valid count compute garbage
// that every consumer masks off, exactly as in execPacked.
func execFused(fp *logic.FusedProgram, words []uint64) {
	ops, argOff, args, outOff, outs := fp.Ops, fp.ArgOff, fp.Args, fp.OutOff, fp.Outs
	// Hot-loop shape: fixed-arity opcodes index the CSR arrays directly
	// off the instruction's base offsets instead of materializing two
	// sub-slice headers per dispatch — at one instruction per fused
	// group the header construction and its bounds checks were a
	// measurable share of the interpreter.
	for i := range ops {
		ai, oi := int(argOff[i]), int(outOff[i])
		switch ops[i] {
		case logic.FConst0:
			words[outs[oi]] = 0
		case logic.FConst1:
			words[outs[oi]] = ^uint64(0)
		case logic.FBuf:
			words[outs[oi]] = words[args[ai]]
		case logic.FNot:
			words[outs[oi]] = ^words[args[ai]]
		case logic.FAnd2:
			words[outs[oi]] = words[args[ai]] & words[args[ai+1]]
		case logic.FOr2:
			words[outs[oi]] = words[args[ai]] | words[args[ai+1]]
		case logic.FNand2:
			words[outs[oi]] = ^(words[args[ai]] & words[args[ai+1]])
		case logic.FNor2:
			words[outs[oi]] = ^(words[args[ai]] | words[args[ai+1]])
		case logic.FXor2:
			words[outs[oi]] = words[args[ai]] ^ words[args[ai+1]]
		case logic.FXnor2:
			words[outs[oi]] = ^(words[args[ai]] ^ words[args[ai+1]])
		case logic.FMux:
			sel := words[args[ai]]
			words[outs[oi]] = (^sel & words[args[ai+1]]) | (sel & words[args[ai+2]])
		case logic.FAndN:
			a := args[ai:argOff[i+1]]
			w := words[args[ai]] & words[args[ai+1]]
			for _, f := range a[2:] {
				w &= words[f]
			}
			words[outs[oi]] = w
		case logic.FOrN:
			a := args[ai:argOff[i+1]]
			w := words[args[ai]] | words[args[ai+1]]
			for _, f := range a[2:] {
				w |= words[f]
			}
			words[outs[oi]] = w
		case logic.FNandN:
			a := args[ai:argOff[i+1]]
			w := words[args[ai]] & words[args[ai+1]]
			for _, f := range a[2:] {
				w &= words[f]
			}
			words[outs[oi]] = ^w
		case logic.FNorN:
			a := args[ai:argOff[i+1]]
			w := words[args[ai]] | words[args[ai+1]]
			for _, f := range a[2:] {
				w |= words[f]
			}
			words[outs[oi]] = ^w
		case logic.FAnd3:
			t := words[args[ai]] & words[args[ai+1]]
			words[outs[oi]] = t
			words[outs[oi+1]] = t & words[args[ai+2]]
		case logic.FAnd4:
			t := words[args[ai]] & words[args[ai+1]]
			words[outs[oi]] = t
			u := t & words[args[ai+2]]
			words[outs[oi+1]] = u
			words[outs[oi+2]] = u & words[args[ai+3]]
		case logic.FOr3:
			t := words[args[ai]] | words[args[ai+1]]
			words[outs[oi]] = t
			words[outs[oi+1]] = t | words[args[ai+2]]
		case logic.FOr4:
			t := words[args[ai]] | words[args[ai+1]]
			words[outs[oi]] = t
			u := t | words[args[ai+2]]
			words[outs[oi+1]] = u
			words[outs[oi+2]] = u | words[args[ai+3]]
		case logic.FXor3:
			t := words[args[ai]] ^ words[args[ai+1]]
			words[outs[oi]] = t
			words[outs[oi+1]] = t ^ words[args[ai+2]]
		case logic.FXor4:
			t := words[args[ai]] ^ words[args[ai+1]]
			words[outs[oi]] = t
			u := t ^ words[args[ai+2]]
			words[outs[oi+1]] = u
			words[outs[oi+2]] = u ^ words[args[ai+3]]
		case logic.FAO21:
			t := words[args[ai]] & words[args[ai+1]]
			words[outs[oi]] = t
			words[outs[oi+1]] = t | words[args[ai+2]]
		case logic.FAO22:
			t := words[args[ai]] & words[args[ai+1]]
			u := words[args[ai+2]] & words[args[ai+3]]
			words[outs[oi]] = t
			words[outs[oi+1]] = u
			words[outs[oi+2]] = t | u
		case logic.FOA21:
			t := words[args[ai]] | words[args[ai+1]]
			words[outs[oi]] = t
			words[outs[oi+1]] = t & words[args[ai+2]]
		case logic.FOA22:
			t := words[args[ai]] | words[args[ai+1]]
			u := words[args[ai+2]] | words[args[ai+3]]
			words[outs[oi]] = t
			words[outs[oi+1]] = u
			words[outs[oi+2]] = t & u
		case logic.FAOI21:
			t := words[args[ai]] & words[args[ai+1]]
			words[outs[oi]] = t
			words[outs[oi+1]] = ^(t | words[args[ai+2]])
		case logic.FAOI22:
			t := words[args[ai]] & words[args[ai+1]]
			u := words[args[ai+2]] & words[args[ai+3]]
			words[outs[oi]] = t
			words[outs[oi+1]] = u
			words[outs[oi+2]] = ^(t | u)
		case logic.FOAI21:
			t := words[args[ai]] | words[args[ai+1]]
			words[outs[oi]] = t
			words[outs[oi+1]] = ^(t & words[args[ai+2]])
		case logic.FOAI22:
			t := words[args[ai]] | words[args[ai+1]]
			u := words[args[ai+2]] | words[args[ai+3]]
			words[outs[oi]] = t
			words[outs[oi+1]] = u
			words[outs[oi+2]] = ^(t & u)
		case logic.FAndNot:
			t := ^words[args[ai]]
			words[outs[oi]] = t
			words[outs[oi+1]] = t & words[args[ai+1]]
		case logic.FOrNot:
			t := ^words[args[ai]]
			words[outs[oi]] = t
			words[outs[oi+1]] = t | words[args[ai+1]]
		case logic.FXorNot:
			t := ^words[args[ai]]
			words[outs[oi]] = t
			words[outs[oi+1]] = t ^ words[args[ai+1]]
		default:
			hlerr.Throwf("sim.execFused", "unknown fused op %v", ops[i])
		}
	}
}
