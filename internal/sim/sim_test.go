package sim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"hlpower/internal/bitutil"
	"hlpower/internal/logic"
	"hlpower/internal/trace"
)

// buildXorChain makes a depth-`depth` chain x -> xor(x, prev) whose
// unbalanced arrivals glitch under the event-driven model.
func buildXorTree(inputsN int) (*logic.Netlist, logic.Bus) {
	n := logic.New()
	in := n.AddInputBus("x", inputsN)
	cur := in[0]
	for i := 1; i < inputsN; i++ {
		cur = n.Add(logic.Xor, cur, in[i])
	}
	n.MarkOutput(cur)
	return n, in
}

func boolsOf(w uint64, n int) []bool { return bitutil.ToBits(w, n) }

func TestZeroDelayFunctional(t *testing.T) {
	// 2-input AND observed over an exhaustive input pair sequence.
	n := logic.New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	y := n.Add(logic.And, a, b)
	n.MarkOutput(y)
	_ = a
	_ = b
	seq := [][]bool{{false, false}, {true, false}, {true, true}, {false, true}}
	res, err := Run(n, VectorInputs(seq), len(seq), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, false, true, false}
	for i, w := range want {
		if res.Outputs[i][0] != w {
			t.Errorf("cycle %d: out = %v, want %v", i, res.Outputs[i][0], w)
		}
	}
}

func TestDFFDelaysByOneCycle(t *testing.T) {
	n := logic.New()
	d := n.AddInput("d")
	q := n.Add(logic.DFF, d)
	n.MarkOutput(q)
	seq := [][]bool{{true}, {false}, {true}, {true}}
	res, err := Run(n, VectorInputs(seq), len(seq), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 0 shows the reset value; edge k captures cycle k-1's D.
	want := []bool{false, true, false, true}
	for i := range want {
		if res.Outputs[i][0] != want[i] {
			t.Errorf("cycle %d: q = %v, want %v", i, res.Outputs[i][0], want[i])
		}
	}
}

func TestEnDFFHolds(t *testing.T) {
	n := logic.New()
	en := n.AddInput("en")
	d := n.AddInput("d")
	q := n.Add(logic.EnDFF, en, d)
	n.MarkOutput(q)
	seq := [][]bool{
		{true, true},   // load 1 (visible cycle 1)
		{false, false}, // disabled: hold
		{false, false}, // disabled: hold
		{true, false},  // load 0 (visible cycle 4)
		{false, true},
	}
	res, err := Run(n, VectorInputs(seq), len(seq), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{false, true, true, true, false}
	for i := range want {
		if res.Outputs[i][0] != want[i] {
			t.Errorf("cycle %d: q = %v, want %v", i, res.Outputs[i][0], want[i])
		}
	}
}

func TestLatchTransparencyAndHold(t *testing.T) {
	n := logic.New()
	en := n.AddInput("en")
	d := n.AddInput("d")
	q := n.Add(logic.Latch, en, d)
	n.MarkOutput(q)
	seq := [][]bool{
		{true, true},   // transparent: q=1
		{false, false}, // opaque: hold 1
		{true, false},  // transparent: q=0
	}
	res, err := Run(n, VectorInputs(seq), len(seq), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, true, false}
	for i := range want {
		if res.Outputs[i][0] != want[i] {
			t.Errorf("cycle %d: q = %v, want %v", i, res.Outputs[i][0], want[i])
		}
	}
}

func TestSwitchedCapCountsTransitions(t *testing.T) {
	n := logic.New()
	a := n.AddInput("a")
	y := n.Add(logic.Not, a)
	n.MarkOutput(y)
	// a toggles every cycle: both a and y switch each cycle after the first.
	seq := [][]bool{{false}, {true}, {false}, {true}}
	res, err := Run(n, VectorInputs(seq), len(seq), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Toggles[a] != 3 || res.Toggles[y] != 3 {
		t.Errorf("toggles = a:%d y:%d, want 3 each", res.Toggles[a], res.Toggles[y])
	}
	if res.SwitchedCap <= 0 {
		t.Error("switched cap should be positive")
	}
	if res.Power() <= 0 {
		t.Error("power should be positive")
	}
}

func TestGroupAccounting(t *testing.T) {
	n := logic.New()
	a := n.AddInput("a")
	x := n.AddG(logic.Not, "exec", a)
	y := n.AddG(logic.Not, "ctrl", x)
	n.MarkOutput(y)
	seq := [][]bool{{false}, {true}, {false}}
	res, err := Run(n, VectorInputs(seq), len(seq), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ByGroup["exec"] <= 0 || res.ByGroup["ctrl"] <= 0 {
		t.Errorf("group accounting missing: %v", res.ByGroup)
	}
}

func TestEventDrivenCountsGlitches(t *testing.T) {
	// Unbalanced AND-of-XOR chain: zero-delay counts fewer transitions
	// than event-driven on random inputs.
	n, in := buildXorTree(8)
	_ = in
	rng := rand.New(rand.NewSource(21))
	stream := trace.Uniform(300, 8, rng)
	prov := func(c int) []bool { return boolsOf(stream[c], 8) }

	zd, err := Run(n, prov, len(stream), Options{Model: ZeroDelay})
	if err != nil {
		t.Fatal(err)
	}
	ed, err := Run(n, prov, len(stream), Options{Model: EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	if ed.SwitchedCap < zd.SwitchedCap {
		t.Errorf("event-driven cap %v < zero-delay %v: glitches lost", ed.SwitchedCap, zd.SwitchedCap)
	}
	// Functional outputs must agree between the models.
	for c := range zd.Outputs {
		if zd.Outputs[c][0] != ed.Outputs[c][0] {
			t.Fatalf("cycle %d: models disagree on output", c)
		}
	}
}

func TestEventDrivenXorChainGlitchCount(t *testing.T) {
	// In a linear xor chain a0^a1^...^a7, flipping a0 and a2 together
	// glitches stage 2: a2's flip toggles it at t=1 and the flipped
	// stage-1 value toggles it back at t=2, while its settled value is
	// unchanged. Event-driven must strictly exceed zero-delay here.
	n, _ := buildXorTree(8)
	p := func(w uint64) []bool { return boolsOf(w, 8) }
	seq := [][]bool{p(0), p(0b101), p(0), p(0b101)}
	zd, _ := Run(n, VectorInputs(seq), len(seq), Options{Model: ZeroDelay})
	ed, _ := Run(n, VectorInputs(seq), len(seq), Options{Model: EventDriven})
	if ed.SwitchedCap <= zd.SwitchedCap {
		t.Errorf("expected glitching: ed=%v zd=%v", ed.SwitchedCap, zd.SwitchedCap)
	}
}

func TestClockTracking(t *testing.T) {
	n := logic.New()
	en := n.AddInput("en")
	d := n.AddInput("d")
	q1 := n.Add(logic.DFF, d)
	q2 := n.Add(logic.EnDFF, en, d)
	n.MarkOutput(q1)
	n.MarkOutput(q2)
	// en low every cycle.
	seq := [][]bool{{false, true}, {false, false}, {false, true}, {false, false}}

	free, err := Run(n, VectorInputs(seq), len(seq), Options{TrackClock: true})
	if err != nil {
		t.Fatal(err)
	}
	gated, err := Run(n, VectorInputs(seq), len(seq), Options{TrackClock: true, GateClock: true})
	if err != nil {
		t.Fatal(err)
	}
	// Three clock edges over four cycles. Ungated: 2 FFs * 3 edges = 6.
	// Gated: only the plain DFF clocks (en is always low).
	if free.ByGroup["clock"] != 6*n.ClockCap {
		t.Errorf("free clock cap = %v, want 6", free.ByGroup["clock"])
	}
	if gated.ByGroup["clock"] != 3*n.ClockCap {
		t.Errorf("gated clock cap = %v, want 3", gated.ByGroup["clock"])
	}
}

func TestInputWidthMismatch(t *testing.T) {
	n := logic.New()
	n.AddInput("a")
	if _, err := Run(n, VectorInputs([][]bool{{true, false}}), 1, Options{}); err == nil {
		t.Error("expected width mismatch error")
	}
}

func TestZeroCycles(t *testing.T) {
	n := logic.New()
	n.AddInput("a")
	if _, err := Run(n, nil, 0, Options{}); err == nil {
		t.Fatal("zero-cycle run should be a typed input error")
	}
}

func TestRandomEquivalenceZeroVsEvent(t *testing.T) {
	// Functional (settled) outputs of both delay models must agree on
	// random sequential circuits.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 10; trial++ {
		n := logic.New()
		in := n.AddInputBus("x", 4)
		sigs := append(logic.Bus{}, in...)
		// Random DAG of gates.
		for g := 0; g < 15; g++ {
			a := sigs[rng.Intn(len(sigs))]
			b := sigs[rng.Intn(len(sigs))]
			kinds := []logic.Kind{logic.And, logic.Or, logic.Xor, logic.Nand, logic.Nor}
			sigs = append(sigs, n.Add(kinds[rng.Intn(len(kinds))], a, b))
		}
		// A couple of registers.
		r1 := n.Add(logic.DFF, sigs[len(sigs)-1])
		sigs = append(sigs, n.Add(logic.Xor, r1, sigs[4]))
		n.MarkOutput(sigs[len(sigs)-1])
		n.MarkOutput(sigs[len(sigs)-3])

		stream := trace.Uniform(50, 4, rng)
		prov := func(c int) []bool { return boolsOf(stream[c], 4) }
		zd, err := Run(n, prov, len(stream), Options{Model: ZeroDelay})
		if err != nil {
			t.Fatal(err)
		}
		ed, err := Run(n, prov, len(stream), Options{Model: EventDriven})
		if err != nil {
			t.Fatal(err)
		}
		for c := range zd.Outputs {
			for j := range zd.Outputs[c] {
				if zd.Outputs[c][j] != ed.Outputs[c][j] {
					t.Fatalf("trial %d cycle %d out %d: delay models disagree", trial, c, j)
				}
			}
		}
	}
}

func TestPropertyEventDrivenDominatesZeroDelay(t *testing.T) {
	// Invariant: glitch-aware counting can never record less switched
	// capacitance than functional-transition counting on the same
	// combinational circuit and stimulus.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := logic.New()
		in := n.AddInputBus("x", 5)
		sigs := append(logic.Bus{}, in...)
		for g := 0; g < 12; g++ {
			kinds := []logic.Kind{logic.And, logic.Or, logic.Xor, logic.Nand, logic.Nor}
			a := sigs[rng.Intn(len(sigs))]
			b := sigs[rng.Intn(len(sigs))]
			sigs = append(sigs, n.Add(kinds[rng.Intn(len(kinds))], a, b))
		}
		n.MarkOutput(sigs[len(sigs)-1])
		stream := trace.Uniform(40, 5, rng)
		prov := func(c int) []bool { return boolsOf(stream[c], 5) }
		zd, err := Run(n, prov, len(stream), Options{Model: ZeroDelay})
		if err != nil {
			return false
		}
		ed, err := Run(n, prov, len(stream), Options{Model: EventDriven})
		if err != nil {
			return false
		}
		return ed.SwitchedCap >= zd.SwitchedCap-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyPerCycleCapSumsToTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := logic.New()
		a := n.AddInput("a")
		b := n.AddInput("b")
		x := n.Add(logic.Xor, a, b)
		r := n.Add(logic.DFF, x)
		n.MarkOutput(n.Add(logic.And, r, a))
		stream := trace.Uniform(30, 2, rng)
		prov := func(c int) []bool { return boolsOf(stream[c], 2) }
		res, err := Run(n, prov, len(stream), Options{Model: EventDriven, TrackClock: true})
		if err != nil {
			return false
		}
		var sum float64
		for _, c := range res.PerCycleCap {
			sum += c
		}
		return math.Abs(sum-res.SwitchedCap) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPropertyGroupCapsSumToTotal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := logic.New()
		a := n.AddInput("a")
		b := n.AddInput("b")
		x := n.AddG(logic.And, "g1", a, b)
		y := n.AddG(logic.Or, "g2", x, a)
		n.MarkOutput(y)
		stream := trace.Uniform(25, 2, rng)
		prov := func(c int) []bool { return boolsOf(stream[c], 2) }
		res, err := Run(n, prov, len(stream), Options{})
		if err != nil {
			return false
		}
		var sum float64
		for _, v := range res.ByGroup {
			sum += v
		}
		return math.Abs(sum-res.SwitchedCap) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestAssignedGateDelays(t *testing.T) {
	// A slow gate (Delay 3) converging with a fast path makes the output
	// glitch for an input change that leaves the settled value alone.
	n := logic.New()
	a := n.AddInput("a")
	slow := n.Add(logic.Not, a)
	n.Gates[slow].Delay = 3
	fast := n.Add(logic.Buf, a)
	y := n.Add(logic.Xor, slow, fast) // settles to 1 always
	n.MarkOutput(y)
	seq := [][]bool{{false}, {true}, {false}}
	zd, err := Run(n, VectorInputs(seq), len(seq), Options{Model: ZeroDelay})
	if err != nil {
		t.Fatal(err)
	}
	ed, err := Run(n, VectorInputs(seq), len(seq), Options{Model: EventDriven})
	if err != nil {
		t.Fatal(err)
	}
	// Settled output is constant 1: zero-delay sees no output toggles.
	if zd.Toggles[y] != 0 {
		t.Errorf("zero-delay output toggles = %d, want 0", zd.Toggles[y])
	}
	// Event-driven: each input flip bounces y twice (fast edge then the
	// late slow edge), two flips after warm-up -> 4 toggles.
	if ed.Toggles[y] != 4 {
		t.Errorf("event-driven output toggles = %d, want 4", ed.Toggles[y])
	}
}
