// Vector-sharded Monte Carlo simulation. Switched-capacitance
// estimation over a stream of statistically independent input vectors
// is embarrassingly parallel: each worker simulates a contiguous block
// of the vector stream with a private accumulator, and the blocks are
// folded together by the canonical per-cycle merge, so the parallel
// result is bit-identical to the serial one — the property the
// determinism tests pin.
package sim

import (
	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
)

// DefaultMinShard is the smallest cycle block worth handing to a
// worker: below it, the extra baseline settle and merge bookkeeping
// cost more than the parallelism recovers.
const DefaultMinShard = 32

// ParallelOptions configures a sharded Monte Carlo run.
type ParallelOptions struct {
	Options
	// Workers bounds the worker pool; nonpositive means one worker per
	// available CPU (GOMAXPROCS). Callers that already parallelize at a
	// coarser grain (e.g. cmd/repro -j) should divide the machine
	// between the levels rather than multiply them.
	Workers int
	// MinShard is the minimum number of cycles per shard
	// (DefaultMinShard when zero). Runs shorter than two shards fall
	// back to the serial path.
	MinShard int
	// Scalar forces the interpreted scalar kernel inside each shard
	// even when the workload is eligible for the 64-lane bit-packed
	// kernel. Benchmarks use it to measure sharding and bit-packing
	// separately; results are bit-identical either way.
	Scalar bool
}

// Serial-fallback reasons reported in Result.Fallback when RunParallel
// degrades to one shard.
const (
	// FallbackSequential: the netlist carries state across cycles, so
	// vector sharding would be unsound (see CanShard).
	FallbackSequential = "sequential-netlist"
	// FallbackShortRun: the run could not be cut into at least two
	// MinShard-sized shards for the available workers, so parallelism
	// would cost more than it buys.
	FallbackShortRun = "short-run"
)

// CanShard reports whether a netlist is eligible for vector-sharded
// simulation. Monte Carlo sharding replays the previous vector to
// rebuild each shard's transition baseline, which is only sound when
// the circuit carries no state across cycles — any DFF, EnDFF, or
// latch forces the serial path.
func CanShard(n *logic.Netlist) bool {
	if n == nil {
		return false
	}
	for _, g := range n.Gates {
		if g.Kind.IsSequential() || g.Kind == logic.Latch {
			return false
		}
	}
	return true
}

// RunParallel is RunBudget with the input vectors split across a
// bounded worker pool. Each worker simulates a contiguous cycle block
// into a private accumulator under its own forked budget share; blocks
// merge in canonical cycle order, so for a fixed seeded workload the
// result is bit-identical to Run/RunBudget regardless of the worker
// count. The input provider must be safe for concurrent use
// (VectorInputs is). Netlists with sequential elements (see CanShard)
// and runs too short to shard take the serial path inside this call —
// same results, one goroutine — and the degradation is observable:
// Result.Fallback names the reason and Result.Shards reports 1.
func RunParallel(b *budget.Budget, n *logic.Netlist, inputs InputProvider, cycles int, opts ParallelOptions) (res *Result, err error) {
	defer hlerr.Recover(&err)
	if n == nil {
		return nil, hlerr.Errorf("sim.Run", "nil netlist")
	}
	if err := n.Err(); err != nil {
		return nil, err
	}
	if err := checkRun(inputs, cycles); err != nil {
		return nil, err
	}
	// Shards run on the bit-packed kernel whenever the workload allows
	// (combinational netlist, zero-delay model): same bit-identical
	// results, a fraction of the per-gate cost. Compilation — tables and
	// the levelized program, shared read-only by every worker — is the
	// one-shot form of what sim.Compile amortizes across a batch.
	c, err := compileNet(n, opts.Options, !opts.Scalar)
	if err != nil {
		return nil, err
	}
	return c.Run(b, inputs, cycles, RunOptions{
		Workers: opts.Workers, MinShard: opts.MinShard, Scalar: opts.Scalar,
	})
}
