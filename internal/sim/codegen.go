// Code-generated (specialized) execution tier for the 64-lane packed
// kernel. The fused interpreter pays one switch dispatch per fused
// group per settle; this tier removes the switch entirely by building,
// once per netlist, a block-threaded evaluator: fused groups are
// re-sorted by dependency level, bucketed into (level, opcode) runs,
// and each run becomes one specialized flat loop over contiguous
// operand slabs — the opcode dispatch is resolved at build time, the
// arities are constant-folded into the loop strides (logic.FusedOp.
// Shape), and the toggle/capacitance extraction is baked against the
// concrete net layout with interleaved scan chains. The evaluator runs
// through the same packedScratch pool as the other tiers, so steady-
// state execution allocates nothing.
//
// Bit-identity: re-sorting groups by level is sound because the fused
// stream is write-once dataflow within a settle and every externally
// read net is a group root (absorbed producers have a single consumer,
// inside their own group), so a group's fanins are always produced at a
// strictly lower level. Each group still computes exactly the words the
// interpreter computes — absorbed intermediates included — and the
// extraction accumulates capacitance per cycle bin in ascending net id
// order, the canonical order every engine uses. Budget charging counts
// source-program gates, unchanged. The result is Float64bits-identical
// to the fused and scalar engines, pinned by TestCodegenBitIdentity,
// TestCodegenBudgetBoundary, and FuzzCodegenEquivalence.
package sim

import (
	"math/bits"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
)

// KernelCodegen in Result.Kernel marks a run executed by the
// specialized (code-generated) evaluator of a promoted netlist.
const KernelCodegen = "codegen"

// codegenProgram is one netlist's specialized evaluator: the settle
// steps (one closure per (level, opcode) run, dispatch resolved at
// build time) plus the net-layout tables the baked extraction needs.
// Read-only after build; safe for concurrent use by shard workers.
type codegenProgram struct {
	steps   []func(words []uint64)
	runs    int // specialized loops (indirect calls per settle)
	levels  int // dependency depth of the fused stream
	loads   []float64
	groupOf []int
	ng      int
}

// settle evaluates one 64-cycle block: every net's word is written
// exactly as execFused would write it, in level order.
func (cg *codegenProgram) settle(words []uint64) {
	for _, st := range cg.steps {
		st(words)
	}
}

// newCodegenProgram specializes the fused program against the compiled
// environment. Deterministic: a fixed (fused, env) pair always builds
// the identical evaluator.
func newCodegenProgram(fp *logic.FusedProgram, e *env) *codegenProgram {
	nOps := fp.NumGroups()
	// producer[net] is the fused group writing net, -1 for primary
	// inputs (written by the gather, level 0).
	producer := make([]int32, fp.NumGates())
	for i := range producer {
		producer[i] = -1
	}
	for g := 0; g < nOps; g++ {
		_, _, outs := fp.Instr(g)
		for _, o := range outs {
			producer[o] = int32(g)
		}
	}
	// Group levels in one ascending pass: fused groups are emitted in
	// levelized root order, and every externally read net is a group
	// root, so a group's producers always precede it in the stream.
	glevel := make([]int32, nOps)
	maxLevel := int32(0)
	for g := 0; g < nOps; g++ {
		_, args, _ := fp.Instr(g)
		lv := int32(0)
		for _, a := range args {
			if p := producer[a]; p >= 0 && glevel[p] > lv {
				lv = glevel[p]
			}
		}
		glevel[g] = lv + 1
		if glevel[g] > maxLevel {
			maxLevel = glevel[g]
		}
	}
	byLevel := make([][]int32, maxLevel+1)
	for g := 0; g < nOps; g++ {
		byLevel[glevel[g]] = append(byLevel[glevel[g]], int32(g))
	}

	cg := &codegenProgram{
		levels:  int(maxLevel),
		loads:   e.loads,
		groupOf: e.groupOf,
		ng:      len(e.groups),
	}
	// Bucket each level's groups by opcode (ascending opcode, original
	// group order within a bucket — both orders are free: groups at one
	// level never read each other) and emit one specialized run per
	// non-empty bucket, its operands packed into contiguous slabs.
	for lv := int32(1); lv <= maxLevel; lv++ {
		var byOp [logic.FusedOpCount][]int32
		for _, g := range byLevel[lv] {
			op := fp.Ops[g]
			byOp[op] = append(byOp[op], g)
		}
		for op := 0; op < int(logic.FusedOpCount); op++ {
			bucket := byOp[op]
			if len(bucket) == 0 {
				continue
			}
			cg.steps = append(cg.steps, packRun(fp, logic.FusedOp(op), bucket).step())
			cg.runs++
		}
	}
	return cg
}

// cgRun is one (level, opcode) bucket with its operand slabs. Fixed-
// shape opcodes walk args/outs with constant strides; variadic ones
// carry per-instruction offsets.
type cgRun struct {
	op     logic.FusedOp
	args   []int32
	outs   []int32
	argOff []int32 // variadic ops only: len(instrs)+1 offsets into args
}

// packRun copies the bucket's operands into fresh contiguous slabs, so
// the run's loop touches one dense region instead of hopping through
// the CSR program.
func packRun(fp *logic.FusedProgram, op logic.FusedOp, bucket []int32) *cgRun {
	_, _, fixed := op.Shape()
	r := &cgRun{op: op}
	if !fixed {
		r.argOff = append(r.argOff, 0)
	}
	for _, g := range bucket {
		_, a, o := fp.Instr(int(g))
		r.args = append(r.args, a...)
		r.outs = append(r.outs, o...)
		if !fixed {
			r.argOff = append(r.argOff, int32(len(r.args)))
		}
	}
	return r
}

// step builds the run's specialized evaluator loop. This is the build-
// time dispatch: the opcode switch runs once per netlist here, never
// per settle. Each loop body mirrors the corresponding execFused case
// exactly — same word expressions, same output order — so every net
// receives the identical word.
func (r *cgRun) step() func(words []uint64) {
	args, outs := r.args, r.outs
	switch r.op {
	case logic.FConst0:
		return func(words []uint64) {
			for _, o := range outs {
				words[o] = 0
			}
		}
	case logic.FConst1:
		return func(words []uint64) {
			for _, o := range outs {
				words[o] = ^uint64(0)
			}
		}
	case logic.FBuf:
		return func(words []uint64) {
			for i, o := range outs {
				words[o] = words[args[i]]
			}
		}
	case logic.FNot:
		return func(words []uint64) {
			for i, o := range outs {
				words[o] = ^words[args[i]]
			}
		}
	case logic.FAnd2:
		return func(words []uint64) {
			j := 0
			for _, o := range outs {
				words[o] = words[args[j]] & words[args[j+1]]
				j += 2
			}
		}
	case logic.FOr2:
		return func(words []uint64) {
			j := 0
			for _, o := range outs {
				words[o] = words[args[j]] | words[args[j+1]]
				j += 2
			}
		}
	case logic.FNand2:
		return func(words []uint64) {
			j := 0
			for _, o := range outs {
				words[o] = ^(words[args[j]] & words[args[j+1]])
				j += 2
			}
		}
	case logic.FNor2:
		return func(words []uint64) {
			j := 0
			for _, o := range outs {
				words[o] = ^(words[args[j]] | words[args[j+1]])
				j += 2
			}
		}
	case logic.FXor2:
		return func(words []uint64) {
			j := 0
			for _, o := range outs {
				words[o] = words[args[j]] ^ words[args[j+1]]
				j += 2
			}
		}
	case logic.FXnor2:
		return func(words []uint64) {
			j := 0
			for _, o := range outs {
				words[o] = ^(words[args[j]] ^ words[args[j+1]])
				j += 2
			}
		}
	case logic.FMux:
		return func(words []uint64) {
			j := 0
			for _, o := range outs {
				sel := words[args[j]]
				words[o] = (^sel & words[args[j+1]]) | (sel & words[args[j+2]])
				j += 3
			}
		}
	case logic.FAndN:
		argOff := r.argOff
		return func(words []uint64) {
			for i, o := range outs {
				a := args[argOff[i]:argOff[i+1]]
				w := words[a[0]] & words[a[1]]
				for _, f := range a[2:] {
					w &= words[f]
				}
				words[o] = w
			}
		}
	case logic.FOrN:
		argOff := r.argOff
		return func(words []uint64) {
			for i, o := range outs {
				a := args[argOff[i]:argOff[i+1]]
				w := words[a[0]] | words[a[1]]
				for _, f := range a[2:] {
					w |= words[f]
				}
				words[o] = w
			}
		}
	case logic.FNandN:
		argOff := r.argOff
		return func(words []uint64) {
			for i, o := range outs {
				a := args[argOff[i]:argOff[i+1]]
				w := words[a[0]] & words[a[1]]
				for _, f := range a[2:] {
					w &= words[f]
				}
				words[o] = ^w
			}
		}
	case logic.FNorN:
		argOff := r.argOff
		return func(words []uint64) {
			for i, o := range outs {
				a := args[argOff[i]:argOff[i+1]]
				w := words[a[0]] | words[a[1]]
				for _, f := range a[2:] {
					w |= words[f]
				}
				words[o] = ^w
			}
		}
	case logic.FAnd3:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 3 {
				t := words[args[j]] & words[args[j+1]]
				words[outs[k]] = t
				words[outs[k+1]] = t & words[args[j+2]]
				k += 2
			}
		}
	case logic.FAnd4:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 4 {
				t := words[args[j]] & words[args[j+1]]
				words[outs[k]] = t
				u := t & words[args[j+2]]
				words[outs[k+1]] = u
				words[outs[k+2]] = u & words[args[j+3]]
				k += 3
			}
		}
	case logic.FOr3:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 3 {
				t := words[args[j]] | words[args[j+1]]
				words[outs[k]] = t
				words[outs[k+1]] = t | words[args[j+2]]
				k += 2
			}
		}
	case logic.FOr4:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 4 {
				t := words[args[j]] | words[args[j+1]]
				words[outs[k]] = t
				u := t | words[args[j+2]]
				words[outs[k+1]] = u
				words[outs[k+2]] = u | words[args[j+3]]
				k += 3
			}
		}
	case logic.FXor3:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 3 {
				t := words[args[j]] ^ words[args[j+1]]
				words[outs[k]] = t
				words[outs[k+1]] = t ^ words[args[j+2]]
				k += 2
			}
		}
	case logic.FXor4:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 4 {
				t := words[args[j]] ^ words[args[j+1]]
				words[outs[k]] = t
				u := t ^ words[args[j+2]]
				words[outs[k+1]] = u
				words[outs[k+2]] = u ^ words[args[j+3]]
				k += 3
			}
		}
	case logic.FAO21:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 3 {
				t := words[args[j]] & words[args[j+1]]
				words[outs[k]] = t
				words[outs[k+1]] = t | words[args[j+2]]
				k += 2
			}
		}
	case logic.FAO22:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 4 {
				t := words[args[j]] & words[args[j+1]]
				u := words[args[j+2]] & words[args[j+3]]
				words[outs[k]] = t
				words[outs[k+1]] = u
				words[outs[k+2]] = t | u
				k += 3
			}
		}
	case logic.FOA21:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 3 {
				t := words[args[j]] | words[args[j+1]]
				words[outs[k]] = t
				words[outs[k+1]] = t & words[args[j+2]]
				k += 2
			}
		}
	case logic.FOA22:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 4 {
				t := words[args[j]] | words[args[j+1]]
				u := words[args[j+2]] | words[args[j+3]]
				words[outs[k]] = t
				words[outs[k+1]] = u
				words[outs[k+2]] = t & u
				k += 3
			}
		}
	case logic.FAOI21:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 3 {
				t := words[args[j]] & words[args[j+1]]
				words[outs[k]] = t
				words[outs[k+1]] = ^(t | words[args[j+2]])
				k += 2
			}
		}
	case logic.FAOI22:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 4 {
				t := words[args[j]] & words[args[j+1]]
				u := words[args[j+2]] & words[args[j+3]]
				words[outs[k]] = t
				words[outs[k+1]] = u
				words[outs[k+2]] = ^(t | u)
				k += 3
			}
		}
	case logic.FOAI21:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 3 {
				t := words[args[j]] | words[args[j+1]]
				words[outs[k]] = t
				words[outs[k+1]] = ^(t & words[args[j+2]])
				k += 2
			}
		}
	case logic.FOAI22:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 4 {
				t := words[args[j]] | words[args[j+1]]
				u := words[args[j+2]] | words[args[j+3]]
				words[outs[k]] = t
				words[outs[k+1]] = u
				words[outs[k+2]] = ^(t & u)
				k += 3
			}
		}
	case logic.FAndNot:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 2 {
				t := ^words[args[j]]
				words[outs[k]] = t
				words[outs[k+1]] = t & words[args[j+1]]
				k += 2
			}
		}
	case logic.FOrNot:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 2 {
				t := ^words[args[j]]
				words[outs[k]] = t
				words[outs[k+1]] = t | words[args[j+1]]
				k += 2
			}
		}
	case logic.FXorNot:
		return func(words []uint64) {
			k := 0
			for j := 0; j < len(args); j += 2 {
				t := ^words[args[j]]
				words[outs[k]] = t
				words[outs[k+1]] = t ^ words[args[j+1]]
				k += 2
			}
		}
	default:
		hlerr.Throwf("sim.Codegen", "unknown fused op %v", r.op)
		return nil
	}
}

// extractFull is the non-lean extraction with per-group attribution —
// the reference loop shape, kept unspecialized because every serving
// path runs lean; it exists so full runs stay available (and bit-
// identical) on a promoted artifact.
func (cg *codegenProgram) extractFull(words, cb []uint64, tog []int64, capBuf *[64]float64, grpFlat []float64, w0 int, mask uint64) {
	loads := cg.loads[:len(words)]
	groupOf := cg.groupOf[:len(words)]
	cb = cb[:len(words)]
	tog = tog[:len(words)]
	ng := cg.ng
	for id := range words {
		cur := words[id]
		t := (cur ^ (cur<<1 | cb[id])) & mask
		cb[id] = cur >> 63
		if t == 0 {
			continue
		}
		tog[id] += int64(bits.OnesCount64(t))
		load := loads[id]
		if load == 0 {
			continue
		}
		gi := groupOf[id]
		for ; t != 0; t &= t - 1 {
			j := bits.TrailingZeros64(t) & 63
			capBuf[j] += load
			grpFlat[(w0+j)*ng+gi] += load
		}
	}
}

// runShardCodegen simulates cycles [lo, hi) on the specialized
// evaluator. The shard protocol — baseline settle, carry seeding, the
// per-64-cycle block loop, budget charging (source-program gates per
// cycle), input gather, lane masking — mirrors runShardPackedOpt line
// for line; only the settle and the extraction are the generated,
// layout-baked forms.
func runShardCodegen(b *budget.Budget, e *env, cg *codegenProgram, inputs InputProvider, words64 WordInputs, lean bool, lo, hi int, sc *packedScratch) (sh *shard, err error) {
	defer hlerr.Recover(&err)
	n := e.n
	cycles := hi - lo
	ng := len(e.groups)
	nOut := len(n.Outputs)
	if sc == nil {
		sc = newPackedScratch(len(n.Gates))
	}
	sh = &shard{
		lo: lo, hi: hi,
		toggles:  sc.togglesFor(len(n.Gates)),
		capByCyc: sc.capFor(cycles),
	}
	var grpFlat []float64
	var outFlat []bool
	if !lean {
		grpFlat, sh.grpByCyc = sc.grpFor(cycles, ng)
		sh.outputs = make([][]bool, 0, cycles)
		outFlat = make([]bool, cycles*nOut)
	}

	fetch := func(cycle int) ([]bool, error) {
		vec := inputs(cycle)
		if len(vec) != len(n.Inputs) {
			return nil, hlerr.Errorf("sim.Run", "input vector width %d, want %d", len(vec), len(n.Inputs))
		}
		return vec, nil
	}

	words, carry := sc.planes(len(n.Gates))

	// Baseline: settle the pre-shard vector in lane 0 and seed the
	// per-net carry bits from it, exactly as runShardPackedOpt does.
	base := lo - 1
	if base < 0 {
		base = 0
	}
	if words64 != nil {
		w := words64(base)
		for i, sig := range n.Inputs {
			words[sig] = w >> uint(i) & 1
		}
	} else {
		vec, err := fetch(base)
		if err != nil {
			return nil, err
		}
		for i, sig := range n.Inputs {
			var w uint64
			if vec[i] {
				w = 1
			}
			words[sig] = w
		}
	}
	cg.settle(words)
	for id, w := range words {
		carry[id] = w & 1
	}

	perCycle := int64(len(e.order)) + 1
	var capBuf [64]float64
	for w0 := 0; w0 < cycles; w0 += 64 {
		lanes := cycles - w0
		if lanes > 64 {
			lanes = 64
		}
		b.Check(int64(lanes) * perCycle)

		if words64 != nil {
			cyc := &sc.cyc
			for j := 0; j < lanes; j++ {
				cyc[j] = words64(lo + w0 + j)
			}
			if len(n.Inputs) >= 8 {
				for j := lanes; j < 64; j++ {
					cyc[j] = 0
				}
				transpose64(cyc)
				for i, sig := range n.Inputs {
					words[sig] = cyc[i]
				}
			} else {
				for i, sig := range n.Inputs {
					var w uint64
					for j := 0; j < lanes; j++ {
						w |= (cyc[j] >> uint(i) & 1) << uint(j)
					}
					words[sig] = w
				}
			}
		} else {
			for _, sig := range n.Inputs {
				words[sig] = 0
			}
			for j := 0; j < lanes; j++ {
				vec, err := fetch(lo + w0 + j)
				if err != nil {
					return nil, err
				}
				bit := uint64(1) << uint(j)
				for i, sig := range n.Inputs {
					if vec[i] {
						words[sig] |= bit
					}
				}
			}
		}

		cg.settle(words)

		mask := ^uint64(0)
		if lanes < 64 {
			mask = uint64(1)<<uint(lanes) - 1
		}
		capBuf = [64]float64{}
		if lean {
			// Lean toggle/capacitance extraction, inlined in the block
			// loop (sharing the compiler's bounds proofs with the code
			// around it) and scanning two bits per trip. The per-bin
			// accumulation order is exactly the interpreter's — nets
			// ascending by id, and the two bins touched in one trip are
			// always distinct — which is what pins Float64bits identity.
			loads := cg.loads[:len(words)]
			cb := carry[:len(words)]
			tog := sh.toggles[:len(words)]
			for id := range words {
				cur := words[id]
				t := (cur ^ (cur<<1 | cb[id])) & mask
				cb[id] = cur >> 63
				if t == 0 {
					continue
				}
				pc := bits.OnesCount64(t)
				tog[id] += int64(pc)
				load := loads[id]
				if load == 0 {
					continue
				}
				if pc&1 != 0 {
					capBuf[bits.TrailingZeros64(t)&63] += load
					t &= t - 1
				}
				for t != 0 {
					capBuf[bits.TrailingZeros64(t)&63] += load
					t &= t - 1
					capBuf[bits.TrailingZeros64(t)&63] += load
					t &= t - 1
				}
			}
		} else {
			cg.extractFull(words, carry, sh.toggles, &capBuf, grpFlat, w0, mask)
		}
		copy(sh.capByCyc[w0:], capBuf[:lanes])

		if lean {
			continue
		}
		for j := 0; j < lanes; j++ {
			row := outFlat[(w0+j)*nOut : (w0+j+1)*nOut : (w0+j+1)*nOut]
			for i, o := range n.Outputs {
				row[i] = words[o]>>uint(j)&1 == 1
			}
			sh.outputs = append(sh.outputs, row)
		}
	}

	if lean {
		return sh, nil
	}
	final := make([]bool, len(n.Gates))
	last := uint((cycles - 1) % 64)
	for id, w := range words {
		final[id] = w>>last&1 == 1
	}
	sh.final = final
	return sh, nil
}
