// 64-lane bit-packed Monte Carlo simulation. Zero-delay switched-
// capacitance estimation evaluates the same combinational netlist over
// thousands of statistically independent vectors; the classic compiled
// simulation trick (Burch/Najm-style Monte Carlo) packs 64 of those
// vectors into one machine word per net, so each gate costs a handful
// of bitwise ops per 64 cycles instead of 64 interpreted evaluations.
// Toggles fall out of popcounts on prev^next words, and the switched-
// capacitance floats are still accumulated in the canonical per-cycle,
// ascending-net order, so the packed result is bit-identical to the
// serial zero-delay engine — the property the equivalence fuzz tests
// pin. Glitch-aware (event-driven) runs and stateful netlists keep the
// interpreted path; entry points report that degradation through
// Result.Fallback exactly like RunParallel does.
package sim

import (
	"math/bits"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
)

// KernelPacked in Result.Kernel marks a run (or every shard of a run)
// executed by the 64-lane bit-packed kernel; an empty Kernel means the
// interpreted scalar engine ran.
const KernelPacked = "packed"

// FallbackEventDriven in Result.Fallback: the packed kernel was
// requested but the event-driven delay model needs per-event timing the
// bit-parallel evaluation cannot express, so the scalar engine ran.
const FallbackEventDriven = "event-driven-model"

// CanPack reports whether a netlist is eligible for the bit-packed
// kernel: packing evaluates each cycle as pure dataflow, so exactly the
// netlists that can vector-shard (no cross-cycle state) can pack.
func CanPack(n *logic.Netlist) bool { return CanShard(n) }

// RunPacked is Run on the 64-lane bit-packed kernel: bit-identical
// results at a fraction of the cost for combinational netlists under
// the zero-delay model. Ineligible workloads (sequential netlists,
// event-driven runs) degrade to the scalar engine with the reason in
// Result.Fallback, so callers always get the serial-equivalent answer.
func RunPacked(n *logic.Netlist, inputs InputProvider, cycles int, opts Options) (*Result, error) {
	return RunPackedBudget(nil, n, inputs, cycles, opts)
}

// RunPackedBudget is RunPacked governed by a resource budget. The
// packed kernel charges the budget identically to the scalar engine —
// one step per gate per simulated cycle — just in 64-cycle increments,
// so step accounting and exhaustion behavior match the serial path.
func RunPackedBudget(b *budget.Budget, n *logic.Netlist, inputs InputProvider, cycles int, opts Options) (res *Result, err error) {
	defer hlerr.Recover(&err)
	e, err := prepare(n, inputs, cycles, opts)
	if err != nil {
		return nil, err
	}
	reason := ""
	switch {
	case opts.Model == EventDriven:
		reason = FallbackEventDriven
	case e.sequential:
		reason = FallbackSequential
	}
	if reason != "" {
		sh, err := runShard(b, e, inputs, 0, cycles)
		if err != nil {
			return nil, err
		}
		res := merge(e, cycles, []*shard{sh})
		res.Fallback = reason
		return res, nil
	}
	prog, err := logic.Compile(n)
	if err != nil {
		return nil, err
	}
	sh, err := runShardPacked(b, e, prog, inputs, 0, cycles, nil)
	if err != nil {
		return nil, err
	}
	res = merge(e, cycles, []*shard{sh})
	res.Kernel = KernelPacked
	return res, nil
}

// execPacked runs the compiled instruction stream over the packed value
// words: words[id] holds 64 cycles of net id, one cycle per bit. Lanes
// beyond the valid count compute garbage that every consumer masks off.
func execPacked(p *logic.Program, words []uint64) {
	kinds, outs, argOff, args := p.Kinds, p.Outs, p.ArgOff, p.Args
	for i := range kinds {
		a := args[argOff[i]:argOff[i+1]]
		var w uint64
		switch kinds[i] {
		case logic.Const0:
			w = 0
		case logic.Const1:
			w = ^uint64(0)
		case logic.Buf:
			w = words[a[0]]
		case logic.Not:
			w = ^words[a[0]]
		case logic.And:
			w = words[a[0]] & words[a[1]]
			for _, f := range a[2:] {
				w &= words[f]
			}
		case logic.Or:
			w = words[a[0]] | words[a[1]]
			for _, f := range a[2:] {
				w |= words[f]
			}
		case logic.Nand:
			w = words[a[0]] & words[a[1]]
			for _, f := range a[2:] {
				w &= words[f]
			}
			w = ^w
		case logic.Nor:
			w = words[a[0]] | words[a[1]]
			for _, f := range a[2:] {
				w |= words[f]
			}
			w = ^w
		case logic.Xor:
			w = words[a[0]] ^ words[a[1]]
		case logic.Xnor:
			w = ^(words[a[0]] ^ words[a[1]])
		case logic.Mux:
			sel := words[a[0]]
			w = (^sel & words[a[1]]) | (sel & words[a[2]])
		default:
			hlerr.Throwf("sim.execPacked", "uncompilable kind %v", kinds[i])
		}
		words[outs[i]] = w
	}
}

// runShardPacked simulates cycles [lo, hi) on the bit-packed kernel.
// Lane layout: word k of the shard covers cycles lo+64k .. lo+64k+63,
// cycle c in bit c-lo-64k; the final word's tail lanes are masked out
// of every toggle count. The transition baseline is rebuilt exactly as
// the scalar shard does — by settling the previous vector (vector 0 for
// the first shard) — so shard boundaries and cycle 0 count transitions
// identically to a serial run. sc, when non-nil, supplies reusable word
// planes (every entry is rewritten before it is read, so recycled
// planes cannot leak state between runs); nil allocates fresh ones.
func runShardPacked(b *budget.Budget, e *env, prog *logic.Program, inputs InputProvider, lo, hi int, sc *packedScratch) (*shard, error) {
	return runShardPackedOpt(b, e, prog, inputs, nil, false, lo, hi, sc)
}

// runShardPackedOpt is runShardPacked with the batch pipeline's two
// accelerators: words (optional) feeds input cycles as pre-packed words
// — same bits as the provider, no per-cycle []bool — and lean skips the
// per-cycle outputs, group attribution, and final-value materialization
// that dominate per-run allocations when the caller only wants a power
// figure. Neither knob touches the toggle or capacitance accumulation
// paths, so the numbers that survive into the Result are bit-identical
// to a full run.
func runShardPackedOpt(b *budget.Budget, e *env, prog *logic.Program, inputs InputProvider, words64 WordInputs, lean bool, lo, hi int, sc *packedScratch) (sh *shard, err error) {
	defer hlerr.Recover(&err)
	n := e.n
	cycles := hi - lo
	ng := len(e.groups)
	nOut := len(n.Outputs)
	sh = &shard{
		lo: lo, hi: hi,
		toggles:  make([]int64, len(n.Gates)),
		capByCyc: make([]float64, cycles),
	}
	var grpFlat []float64
	var outFlat []bool
	if !lean {
		sh.grpByCyc = make([][]float64, cycles)
		sh.outputs = make([][]bool, 0, cycles)
		grpFlat = make([]float64, cycles*ng)
		for i := range sh.grpByCyc {
			sh.grpByCyc[i] = grpFlat[i*ng : (i+1)*ng]
		}
		outFlat = make([]bool, cycles*nOut)
	}

	fetch := func(cycle int) ([]bool, error) {
		vec := inputs(cycle)
		if len(vec) != len(n.Inputs) {
			return nil, hlerr.Errorf("sim.Run", "input vector width %d, want %d", len(vec), len(n.Inputs))
		}
		return vec, nil
	}

	if sc == nil {
		sc = newPackedScratch(len(n.Gates))
	}
	words, carry := sc.words, sc.carry

	// Baseline: settle the pre-shard vector in lane 0 and seed the
	// per-net carry bits from it, mirroring the scalar shard's baseline
	// settle (cycle 0 of the run therefore counts zero transitions).
	// Input words are written unconditionally — the planes may be
	// recycled from a previous run and carry stale bits.
	base := lo - 1
	if base < 0 {
		base = 0
	}
	if words64 != nil {
		w := words64(base)
		for i, sig := range n.Inputs {
			words[sig] = w >> uint(i) & 1
		}
	} else {
		vec, err := fetch(base)
		if err != nil {
			return nil, err
		}
		for i, sig := range n.Inputs {
			var w uint64
			if vec[i] {
				w = 1
			}
			words[sig] = w
		}
	}
	execPacked(prog, words)
	for id, w := range words {
		carry[id] = w & 1
	}

	perCycle := int64(len(e.order)) + 1
	for w0 := 0; w0 < cycles; w0 += 64 {
		lanes := cycles - w0
		if lanes > 64 {
			lanes = 64
		}
		b.Check(int64(lanes) * perCycle)

		// Gather: bit j of each input word is that input's value in
		// cycle lo+w0+j.
		if words64 != nil {
			// Word inputs: buffer the block's cycle words, then build
			// each input plane branchlessly in a register — a strided
			// bit transpose instead of per-cycle read-modify-writes.
			cyc := &sc.cyc
			for j := 0; j < lanes; j++ {
				cyc[j] = words64(lo + w0 + j)
			}
			for i, sig := range n.Inputs {
				var w uint64
				for j := 0; j < lanes; j++ {
					w |= (cyc[j] >> uint(i) & 1) << uint(j)
				}
				words[sig] = w
			}
		} else {
			for _, sig := range n.Inputs {
				words[sig] = 0
			}
			for j := 0; j < lanes; j++ {
				vec, err := fetch(lo + w0 + j)
				if err != nil {
					return nil, err
				}
				bit := uint64(1) << uint(j)
				for i, sig := range n.Inputs {
					if vec[i] {
						words[sig] |= bit
					}
				}
			}
		}

		execPacked(prog, words)

		mask := ^uint64(0)
		if lanes < 64 {
			mask = uint64(1)<<uint(lanes) - 1
		}
		// Toggle extraction. cur^(cur<<1 | carry) has a 1 wherever a
		// cycle's settled value differs from the previous cycle's; the
		// carry chains bit 63 across words (and the baseline into bit
		// 0). The net loop ascends ids, so for any fixed cycle the
		// float accumulations below land in exactly the order the
		// scalar engine's record() applies them — that ordering is what
		// makes the packed sums bit-identical, not just close.
		capByCyc := sh.capByCyc[w0:]
		for id := range words {
			cur := words[id]
			t := (cur ^ (cur<<1 | carry[id])) & mask
			carry[id] = cur >> 63
			if t == 0 {
				continue
			}
			sh.toggles[id] += int64(bits.OnesCount64(t))
			load := e.loads[id]
			if load == 0 {
				continue // adding ±0.0 never changes a nonnegative sum's bits
			}
			if lean {
				for ; t != 0; t &= t - 1 {
					capByCyc[bits.TrailingZeros64(t)] += load
				}
				continue
			}
			gi := e.groupOf[id]
			for ; t != 0; t &= t - 1 {
				j := bits.TrailingZeros64(t)
				capByCyc[j] += load
				grpFlat[(w0+j)*ng+gi] += load
			}
		}

		if lean {
			continue
		}
		// Per-cycle primary outputs, rows sliced from one flat buffer.
		for j := 0; j < lanes; j++ {
			row := outFlat[(w0+j)*nOut : (w0+j+1)*nOut : (w0+j+1)*nOut]
			for i, o := range n.Outputs {
				row[i] = words[o]>>uint(j)&1 == 1
			}
			sh.outputs = append(sh.outputs, row)
		}
	}

	if lean {
		return sh, nil
	}
	// Final settled values live in the top valid lane of the last word.
	final := make([]bool, len(n.Gates))
	last := uint((cycles - 1) % 64)
	for id, w := range words {
		final[id] = w>>last&1 == 1
	}
	sh.final = final
	return sh, nil
}
