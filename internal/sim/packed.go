// 64-lane bit-packed Monte Carlo simulation. Zero-delay switched-
// capacitance estimation evaluates the same combinational netlist over
// thousands of statistically independent vectors; the classic compiled
// simulation trick (Burch/Najm-style Monte Carlo) packs 64 of those
// vectors into one machine word per net, so each gate costs a handful
// of bitwise ops per 64 cycles instead of 64 interpreted evaluations.
// Toggles fall out of popcounts on prev^next words, and the switched-
// capacitance floats are still accumulated in the canonical per-cycle,
// ascending-net order, so the packed result is bit-identical to the
// serial zero-delay engine — the property the equivalence fuzz tests
// pin. Glitch-aware (event-driven) runs and stateful netlists keep the
// interpreted path; entry points report that degradation through
// Result.Fallback exactly like RunParallel does.
package sim

import (
	"math/bits"
	"sync"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
)

// KernelPacked in Result.Kernel marks a run (or every shard of a run)
// executed by the 64-lane bit-packed kernel; an empty Kernel means the
// interpreted scalar engine ran.
const KernelPacked = "packed"

// FallbackEventDriven in Result.Fallback: the packed kernel was
// requested but the event-driven delay model needs per-event timing the
// bit-parallel evaluation cannot express, so the scalar engine ran.
const FallbackEventDriven = "event-driven-model"

// CanPack reports whether a netlist is eligible for the bit-packed
// kernel: packing evaluates each cycle as pure dataflow, so exactly the
// netlists that can vector-shard (no cross-cycle state) can pack.
func CanPack(n *logic.Netlist) bool { return CanShard(n) }

// RunPacked is Run on the 64-lane bit-packed kernel: bit-identical
// results at a fraction of the cost for combinational netlists under
// the zero-delay model. Ineligible workloads (sequential netlists,
// event-driven runs) degrade to the scalar engine with the reason in
// Result.Fallback, so callers always get the serial-equivalent answer.
func RunPacked(n *logic.Netlist, inputs InputProvider, cycles int, opts Options) (*Result, error) {
	return RunPackedBudget(nil, n, inputs, cycles, opts)
}

// RunPackedBudget is RunPacked governed by a resource budget. The
// packed kernel charges the budget identically to the scalar engine —
// one step per gate per simulated cycle — just in 64-cycle increments,
// so step accounting and exhaustion behavior match the serial path.
func RunPackedBudget(b *budget.Budget, n *logic.Netlist, inputs InputProvider, cycles int, opts Options) (res *Result, err error) {
	defer hlerr.Recover(&err)
	e, err := prepare(n, inputs, cycles, opts)
	if err != nil {
		return nil, err
	}
	reason := ""
	switch {
	case opts.Model == EventDriven:
		reason = FallbackEventDriven
	case e.sequential:
		reason = FallbackSequential
	}
	if reason != "" {
		sh, err := runShard(b, e, inputs, 0, cycles)
		if err != nil {
			return nil, err
		}
		res := merge(e, cycles, []*shard{sh})
		res.Fallback = reason
		return res, nil
	}
	prog, err := logic.Compile(n)
	if err != nil {
		return nil, err
	}
	// One-shot runs borrow scratch from a package pool shared across
	// netlists (planes grow to the largest gate count seen). The pool is
	// returned only after merge has copied every accumulator value out
	// of the shard, so recycled memory can never alias a live Result.
	sc := oneShotScratch.Get().(*packedScratch)
	sh, err := runShardPacked(b, e, prog, inputs, 0, cycles, sc)
	if err != nil {
		oneShotScratch.Put(sc)
		return nil, err
	}
	res = merge(e, cycles, []*shard{sh})
	oneShotScratch.Put(sc)
	res.Kernel = KernelPacked
	return res, nil
}

// oneShotScratch pools packed-kernel scratch for the one-shot entry
// points (RunPacked/RunPackedBudget), which have no Compiled artifact to
// hang a per-netlist pool off. Scratch is sized lazily per run.
var oneShotScratch = sync.Pool{New: func() any { return &packedScratch{} }}

// execPacked runs the compiled instruction stream over the packed value
// words: words[id] holds 64 cycles of net id, one cycle per bit. Lanes
// beyond the valid count compute garbage that every consumer masks off.
func execPacked(p *logic.Program, words []uint64) {
	kinds, outs, argOff, args := p.Kinds, p.Outs, p.ArgOff, p.Args
	for i := range kinds {
		a := args[argOff[i]:argOff[i+1]]
		var w uint64
		switch kinds[i] {
		case logic.Const0:
			w = 0
		case logic.Const1:
			w = ^uint64(0)
		case logic.Buf:
			w = words[a[0]]
		case logic.Not:
			w = ^words[a[0]]
		case logic.And:
			w = words[a[0]] & words[a[1]]
			for _, f := range a[2:] {
				w &= words[f]
			}
		case logic.Or:
			w = words[a[0]] | words[a[1]]
			for _, f := range a[2:] {
				w |= words[f]
			}
		case logic.Nand:
			w = words[a[0]] & words[a[1]]
			for _, f := range a[2:] {
				w &= words[f]
			}
			w = ^w
		case logic.Nor:
			w = words[a[0]] | words[a[1]]
			for _, f := range a[2:] {
				w |= words[f]
			}
			w = ^w
		case logic.Xor:
			w = words[a[0]] ^ words[a[1]]
		case logic.Xnor:
			w = ^(words[a[0]] ^ words[a[1]])
		case logic.Mux:
			sel := words[a[0]]
			w = (^sel & words[a[1]]) | (sel & words[a[2]])
		default:
			hlerr.Throwf("sim.execPacked", "uncompilable kind %v", kinds[i])
		}
		words[outs[i]] = w
	}
}

// runShardPacked simulates cycles [lo, hi) on the bit-packed kernel.
// Lane layout: word k of the shard covers cycles lo+64k .. lo+64k+63,
// cycle c in bit c-lo-64k; the final word's tail lanes are masked out
// of every toggle count. The transition baseline is rebuilt exactly as
// the scalar shard does — by settling the previous vector (vector 0 for
// the first shard) — so shard boundaries and cycle 0 count transitions
// identically to a serial run. sc, when non-nil, supplies reusable word
// planes (every entry is rewritten before it is read, so recycled
// planes cannot leak state between runs); nil allocates fresh ones.
func runShardPacked(b *budget.Budget, e *env, prog *logic.Program, inputs InputProvider, lo, hi int, sc *packedScratch) (*shard, error) {
	return runShardPackedOpt(b, e, prog, nil, inputs, nil, false, lo, hi, sc)
}

// runShardPackedOpt is runShardPacked with the batch pipeline's two
// accelerators — words (optional) feeds input cycles as pre-packed words
// and lean skips the per-cycle outputs, group attribution, and
// final-value materialization — plus the fused-superinstruction tier:
// when fused is non-nil, the fused form of prog executes with one
// dispatch per fused group. Neither knob nor the fused tier touches the
// toggle or capacitance accumulation paths (fusion still writes every
// net's word), so the numbers that survive into the Result are
// bit-identical to a full unfused run. Budget charging also ignores
// fusion — steps count source-program gates — so exhaustion boundaries
// are identical. The shard's numeric accumulators (toggles, per-cycle
// cap, group rows) live on the scratch and are only valid until the
// scratch is recycled; merge must copy them out before the caller Puts
// sc back in a pool. Output rows and final values escape into the
// Result, so they are always freshly allocated.
// transpose64 transposes the 64×64 bit matrix held in a (row k = a[k],
// bit j of row k = column j) in place, so that afterwards bit j of row
// i is the old bit i of row j. Classic butterfly: six stages of
// block swaps between rows 2^s apart, each exchanging the high half-
// block of one row with the low half-block of its partner.
func transpose64(a *[64]uint64) {
	m := uint64(0x00000000FFFFFFFF)
	for j := 32; j != 0; j >>= 1 {
		for k := 0; k < 64; k = (k + j + 1) &^ j {
			t := (a[k]>>uint(j) ^ a[k+j]) & m
			a[k+j] ^= t
			a[k] ^= t << uint(j)
		}
		m ^= m << uint(j>>1)
	}
}

func runShardPackedOpt(b *budget.Budget, e *env, prog *logic.Program, fused *logic.FusedProgram, inputs InputProvider, words64 WordInputs, lean bool, lo, hi int, sc *packedScratch) (sh *shard, err error) {
	defer hlerr.Recover(&err)
	n := e.n
	cycles := hi - lo
	ng := len(e.groups)
	nOut := len(n.Outputs)
	if sc == nil {
		sc = newPackedScratch(len(n.Gates))
	}
	sh = &shard{
		lo: lo, hi: hi,
		toggles:  sc.togglesFor(len(n.Gates)),
		capByCyc: sc.capFor(cycles),
	}
	var grpFlat []float64
	var outFlat []bool
	if !lean {
		grpFlat, sh.grpByCyc = sc.grpFor(cycles, ng)
		sh.outputs = make([][]bool, 0, cycles)
		outFlat = make([]bool, cycles*nOut)
	}

	fetch := func(cycle int) ([]bool, error) {
		vec := inputs(cycle)
		if len(vec) != len(n.Inputs) {
			return nil, hlerr.Errorf("sim.Run", "input vector width %d, want %d", len(vec), len(n.Inputs))
		}
		return vec, nil
	}

	words, carry := sc.planes(len(n.Gates))
	settle := func() {
		if fused != nil {
			execFused(fused, words)
		} else {
			execPacked(prog, words)
		}
	}

	// Baseline: settle the pre-shard vector in lane 0 and seed the
	// per-net carry bits from it, mirroring the scalar shard's baseline
	// settle (cycle 0 of the run therefore counts zero transitions).
	// Input words are written unconditionally — the planes may be
	// recycled from a previous run and carry stale bits.
	base := lo - 1
	if base < 0 {
		base = 0
	}
	if words64 != nil {
		w := words64(base)
		for i, sig := range n.Inputs {
			words[sig] = w >> uint(i) & 1
		}
	} else {
		vec, err := fetch(base)
		if err != nil {
			return nil, err
		}
		for i, sig := range n.Inputs {
			var w uint64
			if vec[i] {
				w = 1
			}
			words[sig] = w
		}
	}
	settle()
	for id, w := range words {
		carry[id] = w & 1
	}

	perCycle := int64(len(e.order)) + 1
	var capBuf [64]float64
	for w0 := 0; w0 < cycles; w0 += 64 {
		lanes := cycles - w0
		if lanes > 64 {
			lanes = 64
		}
		b.Check(int64(lanes) * perCycle)

		// Gather: bit j of each input word is that input's value in
		// cycle lo+w0+j.
		if words64 != nil {
			// Word inputs: buffer the block's cycle words, then turn
			// them into input planes. Input i's plane is column i of
			// the 64×64 bit matrix of cycle words; with enough inputs
			// a butterfly transpose (log₂64 block-swap stages over the
			// whole matrix) beats extracting each column bit by bit.
			cyc := &sc.cyc
			for j := 0; j < lanes; j++ {
				cyc[j] = words64(lo + w0 + j)
			}
			if len(n.Inputs) >= 8 {
				// Dead tail lanes must transpose to zero bits, exactly
				// as the per-column loop leaves them.
				for j := lanes; j < 64; j++ {
					cyc[j] = 0
				}
				transpose64(cyc)
				for i, sig := range n.Inputs {
					words[sig] = cyc[i]
				}
			} else {
				for i, sig := range n.Inputs {
					var w uint64
					for j := 0; j < lanes; j++ {
						w |= (cyc[j] >> uint(i) & 1) << uint(j)
					}
					words[sig] = w
				}
			}
		} else {
			for _, sig := range n.Inputs {
				words[sig] = 0
			}
			for j := 0; j < lanes; j++ {
				vec, err := fetch(lo + w0 + j)
				if err != nil {
					return nil, err
				}
				bit := uint64(1) << uint(j)
				for i, sig := range n.Inputs {
					if vec[i] {
						words[sig] |= bit
					}
				}
			}
		}

		settle()

		mask := ^uint64(0)
		if lanes < 64 {
			mask = uint64(1)<<uint(lanes) - 1
		}
		// Toggle extraction. cur^(cur<<1 | carry) has a 1 wherever a
		// cycle's settled value differs from the previous cycle's; the
		// carry chains bit 63 across words (and the baseline into bit
		// 0). The net loop ascends ids, so for any fixed cycle the
		// float accumulations below land in exactly the order the
		// scalar engine's record() applies them — that ordering is what
		// makes the packed sums bit-identical, not just close.
		//
		// A cycle's accumulator is only ever touched by its own word
		// block, so the scatter lands in a block-local [64]float64 —
		// masked array indexing the compiler need not bounds-check, the
		// hottest loop in the kernel — and is copied (not added) into
		// the shard slice afterwards: same adds, same order, same bits.
		// The toggle/carry/load lookups are resliced to the word-plane
		// length up front so the id-indexed accesses drop their bounds
		// checks too.
		capBuf = [64]float64{}
		tog := sh.toggles[:len(words)]
		cb := carry[:len(words)]
		loads := e.loads[:len(words)]
		for id := range words {
			cur := words[id]
			t := (cur ^ (cur<<1 | cb[id])) & mask
			cb[id] = cur >> 63
			if t == 0 {
				continue
			}
			tog[id] += int64(bits.OnesCount64(t))
			load := loads[id]
			if load == 0 {
				continue // adding ±0.0 never changes a nonnegative sum's bits
			}
			if lean {
				for ; t != 0; t &= t - 1 {
					capBuf[bits.TrailingZeros64(t)&63] += load
				}
				continue
			}
			gi := e.groupOf[id]
			for ; t != 0; t &= t - 1 {
				j := bits.TrailingZeros64(t) & 63
				capBuf[j] += load
				grpFlat[(w0+j)*ng+gi] += load
			}
		}
		copy(sh.capByCyc[w0:], capBuf[:lanes])

		if lean {
			continue
		}
		// Per-cycle primary outputs, rows sliced from one flat buffer.
		for j := 0; j < lanes; j++ {
			row := outFlat[(w0+j)*nOut : (w0+j+1)*nOut : (w0+j+1)*nOut]
			for i, o := range n.Outputs {
				row[i] = words[o]>>uint(j)&1 == 1
			}
			sh.outputs = append(sh.outputs, row)
		}
	}

	if lean {
		return sh, nil
	}
	// Final settled values live in the top valid lane of the last word.
	final := make([]bool, len(n.Gates))
	last := uint((cycles - 1) % 64)
	for id, w := range words {
		final[id] = w>>last&1 == 1
	}
	sh.final = final
	return sh, nil
}
