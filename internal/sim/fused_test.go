package sim

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"hlpower/internal/budget"
	"hlpower/internal/logic"
)

// buildMul constructs a w×w array multiplier from primitive gates —
// the serving workload's gate mix (AND partial products, XOR/AND-OR
// full-adder cells) without importing rtlib, which would cycle back
// into sim. Returns the netlist and the input ids of a then b.
func buildMul(w int) (*logic.Netlist, []int) {
	n := logic.New()
	ins := make([]int, 0, 2*w)
	a := make([]int, w)
	b := make([]int, w)
	for i := range a {
		a[i] = n.AddInput("a")
		ins = append(ins, a[i])
	}
	for i := range b {
		b[i] = n.AddInput("b")
		ins = append(ins, b[i])
	}
	fullAdd := func(x, y, cin int) (sum, cout int) {
		axy := n.Add(logic.Xor, x, y)
		sum = n.Add(logic.Xor, axy, cin)
		cout = n.Add(logic.Or, n.Add(logic.And, x, y), n.Add(logic.And, axy, cin))
		return
	}
	zero := n.Add(logic.Const0)
	// acc holds the running sum of shifted partial-product rows.
	acc := make([]int, 2*w)
	for j := range acc {
		acc[j] = zero
	}
	for j := 0; j < w; j++ {
		acc[j] = n.Add(logic.And, a[0], b[j])
	}
	for i := 1; i < w; i++ {
		carry := zero
		for j := 0; j < w; j++ {
			pp := n.Add(logic.And, a[i], b[j])
			acc[i+j], carry = fullAdd(acc[i+j], pp, carry)
		}
		acc[i+w] = carry
	}
	for _, o := range acc {
		n.MarkOutput(o)
	}
	return n, ins
}

// mulWorkload pairs the multiplier with a seeded operand stream in both
// provider and packed-word form (bit i of the word is input i).
func mulWorkload(w, cycles int, seed int64) (*logic.Netlist, InputProvider, WordInputs) {
	n, ins := buildMul(w)
	rng := rand.New(rand.NewSource(seed))
	words := make([]uint64, cycles)
	for c := range words {
		words[c] = rng.Uint64() & (uint64(1)<<uint(len(ins)) - 1)
	}
	vectors := make([][]bool, cycles)
	for c := range vectors {
		v := make([]bool, len(ins))
		for i := range v {
			v[i] = words[c]>>uint(i)&1 == 1
		}
		vectors[c] = v
	}
	return n, VectorInputs(vectors), func(c int) uint64 { return words[c] }
}

// TestFusedBitIdentity is the fused tier's core property: across random
// netlists and cycle counts straddling word boundaries, a Compiled run
// (which executes the logic.Fuse form) is bit-identical in every result
// field to the serial engine and to the unfused one-shot packed kernel.
func TestFusedBitIdentity(t *testing.T) {
	cycleCounts := []int{1, 2, 63, 64, 65, 127, 128, 130, 333}
	sawFusion := false
	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(4000 + trial)))
		n := randComb(rng, 3+rng.Intn(6), 5+rng.Intn(40))
		c, err := Compile(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if c.FusedAbsorbed() > 0 {
			sawFusion = true
		}
		for _, cycles := range cycleCounts {
			inputs := randVectors(rng, cycles, len(n.Inputs))
			serial, err := Run(n, inputs, cycles, Options{})
			if err != nil {
				t.Fatal(err)
			}
			unfused, err := RunPacked(n, inputs, cycles, Options{})
			if err != nil {
				t.Fatal(err)
			}
			fused, err := c.Run(nil, inputs, cycles, RunOptions{Workers: 1})
			if err != nil {
				t.Fatal(err)
			}
			if fused.Kernel != KernelFused {
				t.Fatalf("trial %d cycles %d: Kernel=%q, want fused", trial, cycles, fused.Kernel)
			}
			sameResult(t, serial, fused, "fused-vs-serial")
			sameResult(t, unfused, fused, "fused-vs-unfused")
		}
	}
	if !sawFusion {
		t.Fatal("no trial produced any fused superinstruction; generator too narrow")
	}
}

// TestFusedMultiplierWorkload pins the serving workload: the array
// multiplier's carry cells must actually fuse (AO22-dominated mix), and
// the fused lean+words run — the exact shape powerd serves — must agree
// with the unfused kernel to the bit on the power figure.
func TestFusedMultiplierWorkload(t *testing.T) {
	const w, cycles = 8, 1000
	n, inputs, words := mulWorkload(w, cycles, 77)
	c, err := Compile(n, Options{Vdd: 1, Freq: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.FusedAbsorbed() == 0 {
		t.Fatal("multiplier fused nothing")
	}
	mix := c.FusedMix()
	if mix["ao22"] == 0 {
		t.Fatalf("mix = %v, want ao22 carry cells", mix)
	}
	unfused, err := RunPacked(n, inputs, cycles, Options{Vdd: 1, Freq: 1})
	if err != nil {
		t.Fatal(err)
	}
	fused, err := c.Run(nil, inputs, cycles, RunOptions{Workers: 1, Words: words, Lean: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(unfused.Power()) != math.Float64bits(fused.Power()) {
		t.Fatalf("Power differs: unfused %v fused %v", unfused.Power(), fused.Power())
	}
	if math.Float64bits(unfused.SwitchedCap) != math.Float64bits(fused.SwitchedCap) {
		t.Fatalf("SwitchedCap differs")
	}
	gets, news := c.ScratchStats()
	if gets == 0 || news > gets {
		t.Fatalf("scratch stats gets=%d news=%d", gets, news)
	}
}

// TestFusedBudgetBoundary: budget charging ignores fusion (steps count
// source-program gates), so exhaustion trips at exactly the same point
// fused and unfused — including the boundary where the allowance covers
// the run precisely.
func TestFusedBudgetBoundary(t *testing.T) {
	const w, cycles = 4, 500
	n, inputs, _ := mulWorkload(w, cycles, 9)
	c, err := Compile(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref := budget.New(budget.WithMaxSteps(1 << 40))
	if _, err := RunPackedBudget(ref, n, inputs, cycles, Options{}); err != nil {
		t.Fatal(err)
	}
	need := ref.StepsUsed()

	exact := budget.New(budget.WithMaxSteps(need), budget.WithCheckInterval(1))
	if _, err := c.Run(exact, inputs, cycles, RunOptions{Workers: 1}); err != nil {
		t.Fatalf("exact budget failed: %v", err)
	}
	if exact.StepsUsed() != need {
		t.Fatalf("fused charged %d steps, unfused %d", exact.StepsUsed(), need)
	}

	short := budget.New(budget.WithMaxSteps(need-1), budget.WithCheckInterval(1))
	if _, err := c.Run(short, inputs, cycles, RunOptions{Workers: 1}); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("err = %v, want budget.ErrExceeded", err)
	}
	shortU := budget.New(budget.WithMaxSteps(need-1), budget.WithCheckInterval(1))
	if _, err := RunPackedBudget(shortU, n, inputs, cycles, Options{}); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("unfused err = %v, want budget.ErrExceeded", err)
	}
}

// TestFusedScratchReuseNoAliasing: results must never alias pooled
// scratch — a Result obtained from one run has to stay byte-stable
// while later runs recycle the pool, including the one-shot pool.
func TestFusedScratchReuseNoAliasing(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := randComb(rng, 5, 30)
	c, err := Compile(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first, err := c.Run(nil, randVectors(rng, 200, 5), 200, RunOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	snap := first.Clone()
	for i := 0; i < 5; i++ {
		if _, err := c.Run(nil, randVectors(rng, 200, 5), 200, RunOptions{Workers: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := RunPacked(n, randVectors(rng, 200, 5), 200, Options{}); err != nil {
			t.Fatal(err)
		}
	}
	sameResult(t, snap, first, "result-aliasing")
	for c := range snap.Outputs {
		for i := range snap.Outputs[c] {
			if snap.Outputs[c][i] != first.Outputs[c][i] {
				t.Fatalf("Outputs[%d][%d] mutated by later pooled runs", c, i)
			}
		}
	}
}

// FuzzFusedEquivalence drives the fused/unfused bit-identity property
// from fuzzed corners: arbitrary netlist shapes, cycle counts around
// word boundaries, and budget allowances that may exhaust mid-run — in
// which case both tiers must fail identically.
func FuzzFusedEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(5), uint8(20), uint16(65), uint32(0))
	f.Add(int64(2), uint8(1), uint8(1), uint16(1), uint32(0))
	f.Add(int64(3), uint8(8), uint8(60), uint16(257), uint32(0))
	f.Add(int64(42), uint8(4), uint8(30), uint16(128), uint32(500))
	f.Fuzz(func(t *testing.T, seed int64, nIn, nGates uint8, cyc uint16, maxSteps uint32) {
		nInputs := 1 + int(nIn)%8
		gates := 1 + int(nGates)%48
		cycles := 1 + int(cyc)%300
		rng := rand.New(rand.NewSource(seed))
		n := randComb(rng, nInputs, gates)
		inputs := randVectors(rng, cycles, nInputs)
		c, err := Compile(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var bu, bf *budget.Budget
		if maxSteps > 0 {
			bu = budget.New(budget.WithMaxSteps(int64(maxSteps)), budget.WithCheckInterval(1))
			bf = budget.New(budget.WithMaxSteps(int64(maxSteps)), budget.WithCheckInterval(1))
		}
		unfused, errU := RunPackedBudget(bu, n, inputs, cycles, Options{})
		fused, errF := c.Run(bf, inputs, cycles, RunOptions{Workers: 1})
		if (errU == nil) != (errF == nil) {
			t.Fatalf("error divergence: unfused=%v fused=%v", errU, errF)
		}
		if errU != nil {
			if !errors.Is(errU, budget.ErrExceeded) || !errors.Is(errF, budget.ErrExceeded) {
				t.Fatalf("unexpected errors: %v / %v", errU, errF)
			}
			return
		}
		sameResult(t, unfused, fused, "fuzz-fused")
	})
}

// BenchmarkPackedKernelWorkload is the profile target (`make profile`):
// the serving-shaped fused run — hot multiplier, pre-packed words, lean
// — over the pooled compiled artifact.
func BenchmarkPackedKernelWorkload(b *testing.B) {
	const w, cycles = 8, 4096
	n, inputs, words := mulWorkload(w, cycles, 123)
	c, err := Compile(n, Options{Vdd: 1, Freq: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Run(nil, inputs, cycles, RunOptions{Workers: 1, Words: words, Lean: true}); err != nil {
			b.Fatal(err)
		}
	}
}
