// Compiled simulation artifacts. A single estimation request pays the
// whole netlist setup cost — validation, topological ordering, load and
// fanout tables, levelized compilation into the struct-of-arrays
// Program — before the first cycle simulates. A batched pipeline
// amortizes that cost: Compile performs the setup once and the
// resulting Compiled value runs any number of workloads (different
// cycle counts, seeds, worker counts) over the shared tables, reusing
// the packed kernel's word-plane scratch across runs through a pool.
// Every run is bit-identical to the corresponding one-shot entry point
// (Run/RunParallel/RunPacked) — the compiled artifact changes where the
// work happens, never what it computes.
package sim

import (
	"sync"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
	"hlpower/internal/par"
)

// Compiled is a netlist prepared once for repeated simulation runs
// under fixed electrical options: the shared environment tables plus —
// for combinational netlists under the zero-delay model — the levelized
// struct-of-arrays program the 64-lane packed kernel executes. Safe for
// concurrent use: the tables and program are read-only after Compile,
// and the mutable kernel scratch is pooled per run.
type Compiled struct {
	e    *env
	prog *logic.Program // nil: scalar-only (sequential or event-driven)

	// scratch pools the packed kernel's word planes (one words + one
	// carry lane block per concurrent shard) so a batch of thousands of
	// runs over one netlist allocates the planes a handful of times, not
	// once per run.
	scratch sync.Pool
}

// Compile prepares a netlist for repeated runs under opts. Sequential
// netlists and event-driven options compile to a scalar-only artifact
// (runs degrade exactly like RunParallel, with the reason in
// Result.Fallback); combinational zero-delay netlists additionally get
// the levelized packed-kernel program. Netlist construction errors and
// combinational cycles surface here, once, rather than on every run.
func Compile(n *logic.Netlist, opts Options) (c *Compiled, err error) {
	defer hlerr.Recover(&err)
	return compileNet(n, opts, true)
}

// compileNet builds the shared environment and, when wantProg allows it
// and the workload is eligible, the packed-kernel program.
func compileNet(n *logic.Netlist, opts Options, wantProg bool) (*Compiled, error) {
	e, err := prepareNet(n, opts)
	if err != nil {
		return nil, err
	}
	c := &Compiled{e: e}
	if wantProg && !e.sequential && opts.Model == ZeroDelay {
		if c.prog, err = logic.Compile(n); err != nil {
			return nil, err
		}
	}
	nGates := len(n.Gates)
	c.scratch.New = func() any { return newPackedScratch(nGates) }
	return c, nil
}

// NumGates returns the gate count of the compiled netlist.
func (c *Compiled) NumGates() int { return len(c.e.n.Gates) }

// Packed reports whether runs may execute on the 64-lane bit-packed
// kernel (combinational netlist, zero-delay model).
func (c *Compiled) Packed() bool { return c.prog != nil }

// WordInputs supplies a cycle's input vector pre-packed into one word:
// bit i holds the value of netlist input i. For callers whose operands
// already live in words (the service's Monte Carlo streams), this skips
// the per-cycle []bool round trip the InputProvider interface forces —
// the packed kernel reads the same bits either way.
type WordInputs func(cycle int) uint64

// RunOptions are the per-run execution knobs of a compiled netlist; the
// electrical options were fixed at Compile time.
type RunOptions struct {
	// Workers bounds the shard worker pool exactly as
	// ParallelOptions.Workers does.
	Workers int
	// MinShard is the minimum cycles per shard (DefaultMinShard if 0).
	MinShard int
	// Scalar forces the interpreted scalar kernel inside each shard.
	Scalar bool
	// Words, when non-nil, feeds the packed kernel pre-packed input
	// words instead of calling the InputProvider per cycle. It MUST
	// agree bit for bit with the provider — the provider remains the
	// source of truth for validation and for every scalar path (Scalar
	// option, sequential fallback), so a mismatch would silently break
	// the packed/scalar equivalence. Ignored when the netlist has more
	// than 64 inputs or the packed kernel is not running.
	Words WordInputs
	// Lean skips materializing the per-cycle output vectors, the
	// per-group energy attribution, and the final settled values —
	// Result.Outputs, Result.ByGroup, and Result.Final come back empty.
	// Everything a power figure is built from (SwitchedCap, Power,
	// PerCycleCap, Toggles, Shards/Fallback/Kernel) is computed in the
	// exact same canonical order and is bit-identical to a full run.
	Lean bool
}

// Run simulates one workload over the compiled netlist. It is
// bit-identical to RunParallel over the same netlist, options, and
// workload — including the Shards/Fallback/Kernel metadata — with the
// per-request setup already paid.
func (c *Compiled) Run(b *budget.Budget, inputs InputProvider, cycles int, opts RunOptions) (res *Result, err error) {
	defer hlerr.Recover(&err)
	if err := checkRun(inputs, cycles); err != nil {
		return nil, err
	}
	e := c.e
	prog := c.prog
	if opts.Scalar {
		prog = nil
	}
	words := opts.Words
	if len(e.n.Inputs) > 64 {
		words = nil
	}
	run := func(wb *budget.Budget, lo, hi int) (*shard, error) {
		if prog != nil {
			sc := c.scratch.Get().(*packedScratch)
			defer c.scratch.Put(sc)
			return runShardPackedOpt(wb, e, prog, inputs, words, opts.Lean, lo, hi, sc)
		}
		return runShard(wb, e, inputs, lo, hi)
	}
	minShard := opts.MinShard
	if minShard <= 0 {
		minShard = DefaultMinShard
	}
	workers := par.Workers(opts.Workers)
	parts := cycles / minShard
	if parts > workers {
		parts = workers
	}
	if e.sequential || parts < 2 {
		sh, err := run(b, 0, cycles)
		if err != nil {
			return nil, err
		}
		res := merge(e, cycles, []*shard{sh})
		if e.sequential {
			res.Fallback = FallbackSequential
		} else {
			res.Fallback = FallbackShortRun
		}
		if prog != nil {
			res.Kernel = KernelPacked
		}
		return res, nil
	}
	spans := par.Shards(cycles, parts)
	shards, err := par.Map(b, workers, len(spans), func(i int, wb *budget.Budget) (*shard, error) {
		return run(wb, spans[i].Lo, spans[i].Hi)
	})
	if err != nil {
		return nil, err
	}
	res = merge(e, cycles, shards)
	if prog != nil {
		res.Kernel = KernelPacked
	}
	return res, nil
}

// packedScratch is the packed kernel's per-shard mutable state: one
// 64-lane word plane of current values, one of cross-word carry bits,
// and a one-block buffer of cycle input words for the WordInputs
// gather. All fully rewritten by every run (so pooling them is safe).
type packedScratch struct {
	words []uint64
	carry []uint64
	cyc   [64]uint64
}

func newPackedScratch(nGates int) *packedScratch {
	return &packedScratch{
		words: make([]uint64, nGates),
		carry: make([]uint64, nGates),
	}
}
