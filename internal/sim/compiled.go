// Compiled simulation artifacts. A single estimation request pays the
// whole netlist setup cost — validation, topological ordering, load and
// fanout tables, levelized compilation into the struct-of-arrays
// Program — before the first cycle simulates. A batched pipeline
// amortizes that cost: Compile performs the setup once and the
// resulting Compiled value runs any number of workloads (different
// cycle counts, seeds, worker counts) over the shared tables, reusing
// the packed kernel's word-plane scratch across runs through a pool.
// Every run is bit-identical to the corresponding one-shot entry point
// (Run/RunParallel/RunPacked) — the compiled artifact changes where the
// work happens, never what it computes.
package sim

import (
	"sync"
	"sync/atomic"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
	"hlpower/internal/par"
)

// Compiled is a netlist prepared once for repeated simulation runs
// under fixed electrical options: the shared environment tables plus —
// for combinational netlists under the zero-delay model — the levelized
// struct-of-arrays program the 64-lane packed kernel executes, and its
// fused-superinstruction form (logic.Fuse) that runs get by default.
// Safe for concurrent use: the tables and programs are read-only after
// Compile, and the mutable kernel scratch is pooled per run.
type Compiled struct {
	e     *env
	prog  *logic.Program      // nil: scalar-only (sequential or event-driven)
	fused *logic.FusedProgram // fused form of prog (nil when prog is nil)

	// codegen holds the specialized evaluator once BuildCodegen has run.
	// An atomic pointer so a serving layer can swap it in off the request
	// path while runs are in flight: a run observes either nil (fused
	// tier) or a fully built program, never a partial one.
	codegen atomic.Pointer[codegenProgram]

	// scratch pools the packed kernel's per-shard mutable state — word
	// planes plus the shard's numeric accumulators — so steady-state
	// runs over a hot netlist allocate nothing in the kernel. Scratch
	// is returned only after merge has copied the accumulators out.
	scratch sync.Pool

	// Pool observability: Gets counts scratch acquisitions, News counts
	// the ones the pool had to allocate; Gets-News is the hit count.
	scratchGets atomic.Int64
	scratchNews atomic.Int64
}

// Compile prepares a netlist for repeated runs under opts. Sequential
// netlists and event-driven options compile to a scalar-only artifact
// (runs degrade exactly like RunParallel, with the reason in
// Result.Fallback); combinational zero-delay netlists additionally get
// the levelized packed-kernel program. Netlist construction errors and
// combinational cycles surface here, once, rather than on every run.
func Compile(n *logic.Netlist, opts Options) (c *Compiled, err error) {
	defer hlerr.Recover(&err)
	return compileNet(n, opts, true)
}

// compileNet builds the shared environment and, when wantProg allows it
// and the workload is eligible, the packed-kernel program.
func compileNet(n *logic.Netlist, opts Options, wantProg bool) (*Compiled, error) {
	e, err := prepareNet(n, opts)
	if err != nil {
		return nil, err
	}
	c := &Compiled{e: e}
	if wantProg && !e.sequential && opts.Model == ZeroDelay {
		if c.prog, err = logic.Compile(n); err != nil {
			return nil, err
		}
		c.fused = logic.Fuse(c.prog)
	}
	nGates := len(n.Gates)
	c.scratch.New = func() any {
		c.scratchNews.Add(1)
		return newPackedScratch(nGates)
	}
	return c, nil
}

// getScratch acquires pooled kernel scratch, counting the acquisition.
func (c *Compiled) getScratch() *packedScratch {
	c.scratchGets.Add(1)
	return c.scratch.Get().(*packedScratch)
}

// NumGates returns the gate count of the compiled netlist.
func (c *Compiled) NumGates() int { return len(c.e.n.Gates) }

// Packed reports whether runs may execute on the 64-lane bit-packed
// kernel (combinational netlist, zero-delay model).
func (c *Compiled) Packed() bool { return c.prog != nil }

// FusedMix returns the fused program's opcode mix — instruction count
// per fused-op name — or nil for scalar-only artifacts.
func (c *Compiled) FusedMix() map[string]int64 {
	if c.fused == nil {
		return nil
	}
	return c.fused.Mix()
}

// FusedGroups returns the fused instruction count (dispatches per
// settle), 0 for scalar-only artifacts.
func (c *Compiled) FusedGroups() int {
	if c.fused == nil {
		return 0
	}
	return c.fused.NumGroups()
}

// FusedAbsorbed returns how many source instructions fusion absorbed
// into superinstructions, 0 for scalar-only artifacts.
func (c *Compiled) FusedAbsorbed() int {
	if c.fused == nil {
		return 0
	}
	return c.fused.Absorbed()
}

// ScratchStats reports pool traffic: total scratch acquisitions and how
// many of them allocated (gets − news is the pool hit count).
func (c *Compiled) ScratchStats() (gets, news int64) {
	return c.scratchGets.Load(), c.scratchNews.Load()
}

// BuildCodegen builds the specialized (code-generated) evaluator for
// this artifact and atomically swaps it in: runs that start after the
// swap execute on the codegen tier (unless RunOptions.NoCodegen), runs
// already in flight finish on the fused tier — both produce Float64bits-
// identical results. Scalar-only artifacts (sequential netlists,
// event-driven options) have no fused program to specialize and return
// an error; callers are expected to keep serving the existing tier on
// any error. Safe for concurrent use; the last build wins.
func (c *Compiled) BuildCodegen() (err error) {
	defer hlerr.Recover(&err)
	if c.fused == nil {
		return hlerr.Errorf("sim.Codegen", "scalar-only artifact: no fused program to specialize")
	}
	c.codegen.Store(newCodegenProgram(c.fused, c.e))
	return nil
}

// HasCodegen reports whether the specialized evaluator is built and
// live for this artifact.
func (c *Compiled) HasCodegen() bool { return c.codegen.Load() != nil }

// CodegenStats reports the specialized evaluator's shape — number of
// (level, opcode) runs (indirect calls per settle) and dependency
// levels — or zeros when it is not built.
func (c *Compiled) CodegenStats() (runs, levels int) {
	cg := c.codegen.Load()
	if cg == nil {
		return 0, 0
	}
	return cg.runs, cg.levels
}

// WordInputs supplies a cycle's input vector pre-packed into one word:
// bit i holds the value of netlist input i. For callers whose operands
// already live in words (the service's Monte Carlo streams), this skips
// the per-cycle []bool round trip the InputProvider interface forces —
// the packed kernel reads the same bits either way.
type WordInputs func(cycle int) uint64

// RunOptions are the per-run execution knobs of a compiled netlist; the
// electrical options were fixed at Compile time.
type RunOptions struct {
	// Workers bounds the shard worker pool exactly as
	// ParallelOptions.Workers does.
	Workers int
	// MinShard is the minimum cycles per shard (DefaultMinShard if 0).
	MinShard int
	// Scalar forces the interpreted scalar kernel inside each shard.
	Scalar bool
	// NoCodegen forces the fused interpreter even when the specialized
	// evaluator is built. Serving layers use it to keep fault-armed
	// requests off the promoted tier; results are bit-identical either
	// way, only Result.Kernel differs.
	NoCodegen bool
	// Words, when non-nil, feeds the packed kernel pre-packed input
	// words instead of calling the InputProvider per cycle. It MUST
	// agree bit for bit with the provider — the provider remains the
	// source of truth for validation and for every scalar path (Scalar
	// option, sequential fallback), so a mismatch would silently break
	// the packed/scalar equivalence. Ignored when the netlist has more
	// than 64 inputs or the packed kernel is not running.
	Words WordInputs
	// Lean skips materializing the per-cycle output vectors, the
	// per-group energy attribution, and the final settled values —
	// Result.Outputs, Result.ByGroup, and Result.Final come back empty.
	// Everything a power figure is built from (SwitchedCap, Power,
	// PerCycleCap, Toggles, Shards/Fallback/Kernel) is computed in the
	// exact same canonical order and is bit-identical to a full run.
	Lean bool
}

// Run simulates one workload over the compiled netlist. It is
// bit-identical to RunParallel over the same netlist, options, and
// workload — including the Shards/Fallback/Kernel metadata — with the
// per-request setup already paid.
func (c *Compiled) Run(b *budget.Budget, inputs InputProvider, cycles int, opts RunOptions) (res *Result, err error) {
	defer hlerr.Recover(&err)
	if err := checkRun(inputs, cycles); err != nil {
		return nil, err
	}
	e := c.e
	prog := c.prog
	fused := c.fused
	var cg *codegenProgram
	if prog != nil && !opts.NoCodegen {
		cg = c.codegen.Load()
	}
	if opts.Scalar {
		prog, fused, cg = nil, nil, nil
	}
	// Kernel names the tier that actually executes: the specialized
	// evaluator when promoted, else the fused interpreter, else (for
	// scalar runs) the interpreted engine's empty tag.
	kernel := ""
	switch {
	case cg != nil:
		kernel = KernelCodegen
	case prog != nil:
		kernel = KernelFused
	}
	words := opts.Words
	if len(e.n.Inputs) > 64 {
		words = nil
	}
	// Shard accumulators live on pooled scratch, which merge reads;
	// every acquired scratch is therefore returned only at function
	// exit, after merge has copied the values into the Result.
	var scratches []*packedScratch
	defer func() {
		for _, sc := range scratches {
			c.scratch.Put(sc)
		}
	}()
	run := func(wb *budget.Budget, lo, hi int, sc *packedScratch) (*shard, error) {
		if cg != nil {
			return runShardCodegen(wb, e, cg, inputs, words, opts.Lean, lo, hi, sc)
		}
		if prog != nil {
			return runShardPackedOpt(wb, e, prog, fused, inputs, words, opts.Lean, lo, hi, sc)
		}
		return runShard(wb, e, inputs, lo, hi)
	}
	minShard := opts.MinShard
	if minShard <= 0 {
		minShard = DefaultMinShard
	}
	workers := par.Workers(opts.Workers)
	parts := cycles / minShard
	if parts > workers {
		parts = workers
	}
	if e.sequential || parts < 2 {
		var sc *packedScratch
		if prog != nil {
			sc = c.getScratch()
			scratches = append(scratches, sc)
		}
		sh, err := run(b, 0, cycles, sc)
		if err != nil {
			return nil, err
		}
		res := merge(e, cycles, []*shard{sh})
		if e.sequential {
			res.Fallback = FallbackSequential
		} else {
			res.Fallback = FallbackShortRun
		}
		res.Kernel = kernel
		return res, nil
	}
	spans := par.Shards(cycles, parts)
	if prog != nil {
		// Pre-acquire one scratch per shard: workers must never share
		// scratch, and acquisition inside the worker would race the pool.
		scratches = make([]*packedScratch, len(spans))
		for i := range scratches {
			scratches[i] = c.getScratch()
		}
	}
	shards, err := par.Map(b, workers, len(spans), func(i int, wb *budget.Budget) (*shard, error) {
		var sc *packedScratch
		if scratches != nil {
			sc = scratches[i]
		}
		return run(wb, spans[i].Lo, spans[i].Hi, sc)
	})
	if err != nil {
		return nil, err
	}
	res = merge(e, cycles, shards)
	res.Kernel = kernel
	return res, nil
}

// packedScratch is the packed kernel's per-shard mutable state: the
// 64-lane word and carry planes, the one-block cycle-word buffer for
// the WordInputs gather, and the shard's numeric accumulators (toggle
// counts, per-cycle capacitance, flat group rows). Planes are fully
// rewritten before they are read; accumulators are zeroed on
// acquisition — so recycled scratch cannot leak state between runs.
// Buffers grow to the largest request seen and are resliced per run:
// the word plane in particular must be exactly nGates long, because the
// toggle-extraction loop ranges over it.
type packedScratch struct {
	words    []uint64
	carry    []uint64
	cyc      [64]uint64
	toggles  []int64
	capByCyc []float64
	grpFlat  []float64
	grpRows  [][]float64
}

func newPackedScratch(nGates int) *packedScratch {
	return &packedScratch{
		words: make([]uint64, nGates),
		carry: make([]uint64, nGates),
	}
}

// planes returns the word and carry planes sized exactly to nGates.
func (sc *packedScratch) planes(nGates int) (words, carry []uint64) {
	if cap(sc.words) < nGates {
		sc.words = make([]uint64, nGates)
	}
	if cap(sc.carry) < nGates {
		sc.carry = make([]uint64, nGates)
	}
	sc.words, sc.carry = sc.words[:nGates], sc.carry[:nGates]
	return sc.words, sc.carry
}

// togglesFor returns the zeroed per-net toggle accumulator.
func (sc *packedScratch) togglesFor(nGates int) []int64 {
	if cap(sc.toggles) < nGates {
		sc.toggles = make([]int64, nGates)
	}
	sc.toggles = sc.toggles[:nGates]
	clear(sc.toggles)
	return sc.toggles
}

// capFor returns the zeroed per-cycle capacitance accumulator.
func (sc *packedScratch) capFor(cycles int) []float64 {
	if cap(sc.capByCyc) < cycles {
		sc.capByCyc = make([]float64, cycles)
	}
	sc.capByCyc = sc.capByCyc[:cycles]
	clear(sc.capByCyc)
	return sc.capByCyc
}

// grpFor returns the zeroed flat per-cycle-per-group accumulator and
// its per-cycle row views.
func (sc *packedScratch) grpFor(cycles, ng int) ([]float64, [][]float64) {
	if cap(sc.grpFlat) < cycles*ng {
		sc.grpFlat = make([]float64, cycles*ng)
	}
	sc.grpFlat = sc.grpFlat[:cycles*ng]
	clear(sc.grpFlat)
	if cap(sc.grpRows) < cycles {
		sc.grpRows = make([][]float64, cycles)
	}
	sc.grpRows = sc.grpRows[:cycles]
	for i := range sc.grpRows {
		sc.grpRows[i] = sc.grpFlat[i*ng : (i+1)*ng]
	}
	return sc.grpFlat, sc.grpRows
}
