package sim

import (
	"context"
	"errors"
	"testing"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/logic"
)

func toggleNetlist(t *testing.T) *logic.Netlist {
	t.Helper()
	n := logic.New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.AddG(logic.And, "and", a, b)
	n.MarkOutput(x)
	if err := n.Err(); err != nil {
		t.Fatal(err)
	}
	return n
}

func TestRunNilNetlist(t *testing.T) {
	_, err := Run(nil, VectorInputs([][]bool{{true}}), 1, Options{})
	if err == nil {
		t.Fatal("nil netlist should error")
	}
	if !hlerr.IsInput(err) {
		t.Errorf("want typed input error, got %T: %v", err, err)
	}
}

func TestRunNonPositiveCycles(t *testing.T) {
	n := toggleNetlist(t)
	for _, cycles := range []int{0, -1, -100} {
		_, err := Run(n, VectorInputs(nil), cycles, Options{})
		if err == nil {
			t.Fatalf("cycles=%d should error", cycles)
		}
		if !hlerr.IsInput(err) {
			t.Errorf("cycles=%d: want typed input error, got %T: %v", cycles, err, err)
		}
	}
}

func TestRunNilInputProvider(t *testing.T) {
	n := toggleNetlist(t)
	_, err := Run(n, nil, 4, Options{})
	if err == nil {
		t.Fatal("nil input provider should error")
	}
	if !hlerr.IsInput(err) {
		t.Errorf("want typed input error, got %T: %v", err, err)
	}
}

func TestRunWrongWidthInputs(t *testing.T) {
	n := toggleNetlist(t)
	for _, vec := range [][]bool{nil, {true}, {true, false, true}} {
		_, err := Run(n, VectorInputs([][]bool{vec}), 1, Options{})
		if err == nil {
			t.Fatalf("width-%d vector should error", len(vec))
		}
		if !hlerr.IsInput(err) {
			t.Errorf("width %d: want typed input error, got %T: %v", len(vec), err, err)
		}
	}
}

func TestRunWrongWidthMidRun(t *testing.T) {
	n := toggleNetlist(t)
	// First vector is fine; the third is short.
	vecs := [][]bool{{true, false}, {false, true}, {true}}
	_, err := Run(n, VectorInputs(vecs), 3, Options{})
	if err == nil {
		t.Fatal("mid-run width mismatch should error")
	}
	if !hlerr.IsInput(err) {
		t.Errorf("want typed input error, got %T: %v", err, err)
	}
}

func TestRunBrokenNetlistPropagates(t *testing.T) {
	n := logic.New()
	a := n.AddInput("a")
	n.AddG(logic.And, "bad", a, 9999) // dangling fanin -> sticky error
	_, err := Run(n, VectorInputs([][]bool{{true}}), 1, Options{})
	if err == nil {
		t.Fatal("broken netlist should error")
	}
	if !hlerr.IsInput(err) {
		t.Errorf("want typed input error, got %T: %v", err, err)
	}
}

func TestRunBudgetExceeded(t *testing.T) {
	n := toggleNetlist(t)
	inputs := func(cycle int) []bool { return []bool{cycle%2 == 0, cycle%3 == 0} }
	b := budget.New(budget.WithMaxSteps(50), budget.WithCheckInterval(1))
	_, err := RunBudget(b, n, inputs, 1_000_000, Options{})
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want budget.ErrExceeded, got %v", err)
	}
	var ex *budget.Exceeded
	if !errors.As(err, &ex) {
		t.Fatalf("want *budget.Exceeded, got %T", err)
	}
	if ex.Resource != "steps" {
		t.Errorf("resource = %q, want steps", ex.Resource)
	}
}

func TestRunBudgetCancelled(t *testing.T) {
	n := toggleNetlist(t)
	inputs := func(cycle int) []bool { return []bool{true, false} }
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	b := budget.New(budget.WithContext(ctx), budget.WithCheckInterval(1))
	_, err := RunBudget(b, n, inputs, 1_000_000, Options{})
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want budget.ErrExceeded after cancellation, got %v", err)
	}
}

func TestRunBudgetEventDriven(t *testing.T) {
	n := toggleNetlist(t)
	inputs := func(cycle int) []bool { return []bool{cycle%2 == 0, cycle%3 == 0} }
	b := budget.New(budget.WithMaxSteps(50), budget.WithCheckInterval(1))
	_, err := RunBudget(b, n, inputs, 1_000_000, Options{Model: EventDriven})
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want budget.ErrExceeded, got %v", err)
	}
}
