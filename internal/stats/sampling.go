package stats

import (
	"math"
	"math/rand"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleEstimate is the outcome of a sampling-based population-mean
// estimate: the point estimate, its standard error, and how many units
// were evaluated.
type SampleEstimate struct {
	Mean     float64
	StdErr   float64
	Units    int // units actually evaluated
	PopSize  int
	Estimate float64 // estimated population total/mean depending on estimator
}

// SimpleRandomSample estimates the population mean of eval(i), i in
// [0, popSize), by evaluating a simple random sample of the given size
// without replacement. This is the "sampler macro-modeling" primitive of
// Hsieh et al.: only the marked cycles are evaluated.
func SimpleRandomSample(popSize, sampleSize int, rng *rand.Rand, eval func(i int) float64) SampleEstimate {
	if sampleSize > popSize {
		sampleSize = popSize
	}
	idx := rng.Perm(popSize)[:sampleSize]
	xs := make([]float64, sampleSize)
	for j, i := range idx {
		xs[j] = eval(i)
	}
	m := Mean(xs)
	se := 0.0
	if sampleSize > 1 {
		fpc := 1 - float64(sampleSize)/float64(popSize)
		se = math.Sqrt(Variance(xs)/float64(sampleSize)) * math.Sqrt(math.Max(fpc, 0))
	}
	return SampleEstimate{Mean: m, StdErr: se, Units: sampleSize, PopSize: popSize, Estimate: m}
}

// MultiSampleMean draws k independent samples of the given size and
// returns the average of the sample means (the paper's "several samples
// of at least 30 units" variant). The returned Units is the total number
// of evaluations.
func MultiSampleMean(popSize, sampleSize, k int, rng *rand.Rand, eval func(i int) float64) SampleEstimate {
	means := make([]float64, k)
	total := 0
	for s := 0; s < k; s++ {
		est := SimpleRandomSample(popSize, sampleSize, rng, eval)
		means[s] = est.Mean
		total += est.Units
	}
	m := Mean(means)
	se := 0.0
	if k > 1 {
		se = math.Sqrt(Variance(means) / float64(k))
	}
	return SampleEstimate{Mean: m, StdErr: se, Units: total, PopSize: popSize, Estimate: m}
}

// StratifiedSample estimates the population mean by partitioning the
// population into equal contiguous strata and sampling each
// proportionally ([33]: stratification cuts estimator variance when the
// metric drifts over time, as power does across program phases).
func StratifiedSample(popSize, sampleSize, strata int, rng *rand.Rand, eval func(i int) float64) SampleEstimate {
	if strata <= 1 || popSize <= strata {
		return SimpleRandomSample(popSize, sampleSize, rng, eval)
	}
	perStratum := sampleSize / strata
	if perStratum < 1 {
		perStratum = 1
	}
	var mean float64
	total := 0
	var varSum float64
	for s := 0; s < strata; s++ {
		lo := popSize * s / strata
		hi := popSize * (s + 1) / strata
		size := hi - lo
		k := perStratum
		if k > size {
			k = size
		}
		idx := rng.Perm(size)[:k]
		xs := make([]float64, k)
		for j, i := range idx {
			xs[j] = eval(lo + i)
		}
		m := Mean(xs)
		weight := float64(size) / float64(popSize)
		mean += weight * m
		total += k
		if k > 1 {
			varSum += weight * weight * Variance(xs) / float64(k)
		}
	}
	return SampleEstimate{Mean: mean, StdErr: math.Sqrt(varSum), Units: total, PopSize: popSize, Estimate: mean}
}

// RatioEstimate implements the regression (ratio) estimator of the
// adaptive macro-modeling scheme: the cheap predictor cheap(i) is known
// for the whole population, the expensive ground truth costly(i) is
// evaluated only on a sample, and the population mean of costly is
// estimated as mean(cheap_population) * mean(costly_sample)/mean(cheap_sample).
func RatioEstimate(popSize, sampleSize int, rng *rand.Rand, cheap, costly func(i int) float64) SampleEstimate {
	if sampleSize > popSize {
		sampleSize = popSize
	}
	var popMean float64
	for i := 0; i < popSize; i++ {
		popMean += cheap(i)
	}
	popMean /= float64(popSize)

	idx := rng.Perm(popSize)[:sampleSize]
	ratios := make([]float64, 0, sampleSize)
	var sc, sy float64
	for _, i := range idx {
		c, yv := cheap(i), costly(i)
		sc += c
		sy += yv
		if c != 0 {
			ratios = append(ratios, yv/c)
		}
	}
	var ratio float64
	if sc != 0 {
		ratio = sy / sc
	} else {
		ratio = 1
	}
	est := popMean * ratio
	se := 0.0
	if len(ratios) > 1 {
		se = math.Abs(popMean) * math.Sqrt(Variance(ratios)/float64(len(ratios)))
	}
	return SampleEstimate{Mean: est, StdErr: se, Units: sampleSize, PopSize: popSize, Estimate: est}
}

// RelError returns |got-want|/|want| (or |got| when want == 0).
func RelError(got, want float64) float64 {
	if want == 0 {
		return math.Abs(got)
	}
	return math.Abs(got-want) / math.Abs(want)
}
