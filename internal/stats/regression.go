// Package stats supplies the statistical machinery the surveyed power
// models rely on: multi-variable least-squares regression, stepwise
// variable selection with partial-F tests, sampling estimators (simple
// random sampling and the ratio/regression estimator used by adaptive
// macro-modeling), and stationary distributions of Markov chains for FSM
// state probabilities.
package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a least-squares system has no unique
// solution (collinear regressors or too few observations).
var ErrSingular = errors.New("stats: singular system")

// LinearFit holds the result of an ordinary least-squares fit
// y ≈ X·beta. R2 is the coefficient of determination and RSS the
// residual sum of squares.
type LinearFit struct {
	Beta []float64
	R2   float64
	RSS  float64
	N    int // observations
	P    int // parameters
}

// Predict evaluates the fitted linear model at x (len(x) == len(Beta)).
func (f *LinearFit) Predict(x []float64) float64 {
	var y float64
	for i, b := range f.Beta {
		y += b * x[i]
	}
	return y
}

// OLS fits y ≈ X·beta by ordinary least squares using the normal
// equations. X is row-major: X[i] is the regressor vector of
// observation i. Callers that want an intercept should include a
// constant-1 column.
func OLS(X [][]float64, y []float64) (*LinearFit, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("stats: OLS needs matching nonempty X, y (got %d, %d)", n, len(y))
	}
	p := len(X[0])
	if p == 0 {
		return nil, errors.New("stats: OLS needs at least one regressor")
	}
	if n < p {
		return nil, ErrSingular
	}
	// Build XtX and Xty.
	xtx := make([][]float64, p)
	for i := range xtx {
		xtx[i] = make([]float64, p)
	}
	xty := make([]float64, p)
	for r := 0; r < n; r++ {
		row := X[r]
		if len(row) != p {
			return nil, fmt.Errorf("stats: OLS ragged row %d (len %d, want %d)", r, len(row), p)
		}
		for i := 0; i < p; i++ {
			xty[i] += row[i] * y[r]
			for j := i; j < p; j++ {
				xtx[i][j] += row[i] * row[j]
			}
		}
	}
	for i := 0; i < p; i++ {
		for j := 0; j < i; j++ {
			xtx[i][j] = xtx[j][i]
		}
	}
	beta, err := SolveLinear(xtx, xty)
	if err != nil {
		return nil, err
	}
	fit := &LinearFit{Beta: beta, N: n, P: p}
	var meanY float64
	for _, v := range y {
		meanY += v
	}
	meanY /= float64(n)
	var tss float64
	for r := 0; r < n; r++ {
		pred := fit.Predict(X[r])
		d := y[r] - pred
		fit.RSS += d * d
		t := y[r] - meanY
		tss += t * t
	}
	if tss > 0 {
		fit.R2 = 1 - fit.RSS/tss
	} else {
		fit.R2 = 1
	}
	return fit, nil
}

// SolveLinear solves A·x = b by Gaussian elimination with partial
// pivoting. A is modified-safe (a copy is taken).
func SolveLinear(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	if n == 0 || len(b) != n {
		return nil, errors.New("stats: SolveLinear dimension mismatch")
	}
	// Copy augmented matrix.
	m := make([][]float64, n)
	for i := range m {
		m[i] = make([]float64, n+1)
		copy(m[i], A[i])
		m[i][n] = b[i]
	}
	for col := 0; col < n; col++ {
		// Partial pivot.
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[piv][col]) {
				piv = r
			}
		}
		if math.Abs(m[piv][col]) < 1e-12 {
			return nil, ErrSingular
		}
		m[col], m[piv] = m[piv], m[col]
		inv := 1 / m[col][col]
		for r := col + 1; r < n; r++ {
			f := m[r][col] * inv
			if f == 0 {
				continue
			}
			for c := col; c <= n; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := m[i][n]
		for j := i + 1; j < n; j++ {
			s -= m[i][j] * x[j]
		}
		x[i] = s / m[i][i]
	}
	return x, nil
}

// StepwiseResult records a stepwise-selection outcome: the chosen
// variable indices (into the candidate columns) and the final fit.
type StepwiseResult struct {
	Selected []int
	Fit      *LinearFit
}

// Stepwise performs forward stepwise regression with a partial-F test,
// as used by the statistical macro-model construction of Wu et al.
// cols[i] is the i-th candidate regressor column (len == len(y)). An
// intercept column is always included implicitly. fEnter is the minimum
// partial-F statistic for a variable to enter (4.0 is the customary
// threshold); maxVars bounds the model size (<=0 means no bound).
func Stepwise(cols [][]float64, y []float64, fEnter float64, maxVars int) (*StepwiseResult, error) {
	n := len(y)
	if n == 0 {
		return nil, errors.New("stats: Stepwise needs observations")
	}
	if maxVars <= 0 || maxVars > len(cols) {
		maxVars = len(cols)
	}
	selected := []int{}
	inModel := make([]bool, len(cols))

	design := func(sel []int) [][]float64 {
		X := make([][]float64, n)
		for r := 0; r < n; r++ {
			row := make([]float64, 1+len(sel))
			row[0] = 1
			for j, c := range sel {
				row[1+j] = cols[c][r]
			}
			X[r] = row
		}
		return X
	}

	cur, err := OLS(design(selected), y)
	if err != nil {
		return nil, err
	}
	for len(selected) < maxVars {
		bestIdx := -1
		var bestFit *LinearFit
		bestF := fEnter
		for c := range cols {
			if inModel[c] {
				continue
			}
			trial := append(append([]int{}, selected...), c)
			fit, err := OLS(design(trial), y)
			if err != nil {
				continue
			}
			df := float64(n - fit.P)
			if df <= 0 || fit.RSS <= 0 {
				// Perfect fit: accept immediately.
				if cur.RSS > fit.RSS {
					bestIdx, bestFit = c, fit
					bestF = math.Inf(1)
				}
				continue
			}
			F := (cur.RSS - fit.RSS) / (fit.RSS / df)
			if F > bestF {
				bestF, bestIdx, bestFit = F, c, fit
			}
		}
		if bestIdx < 0 {
			break
		}
		selected = append(selected, bestIdx)
		inModel[bestIdx] = true
		cur = bestFit
	}
	return &StepwiseResult{Selected: selected, Fit: cur}, nil
}

// Pearson returns the Pearson correlation coefficient of x and y.
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return 0
	}
	var mx, my float64
	for i := 0; i < n; i++ {
		mx += x[i]
		my += y[i]
	}
	mx /= float64(n)
	my /= float64(n)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
