package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOLSExact(t *testing.T) {
	// y = 2 + 3x recovered exactly from noiseless data.
	X := [][]float64{{1, 0}, {1, 1}, {1, 2}, {1, 3}}
	y := []float64{2, 5, 8, 11}
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Beta[0]-2) > 1e-9 || math.Abs(fit.Beta[1]-3) > 1e-9 {
		t.Errorf("beta = %v, want [2 3]", fit.Beta)
	}
	if fit.R2 < 0.999999 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestOLSNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 500
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x1, x2 := rng.Float64()*10, rng.Float64()*10
		X[i] = []float64{1, x1, x2}
		y[i] = 1.5 + 0.5*x1 - 2*x2 + rng.NormFloat64()*0.01
	}
	fit, err := OLS(X, y)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1.5, 0.5, -2}
	for i, w := range want {
		if math.Abs(fit.Beta[i]-w) > 0.01 {
			t.Errorf("beta[%d] = %v, want ~%v", i, fit.Beta[i], w)
		}
	}
}

func TestOLSSingular(t *testing.T) {
	// Two identical columns.
	X := [][]float64{{1, 1}, {2, 2}, {3, 3}}
	y := []float64{1, 2, 3}
	if _, err := OLS(X, y); err == nil {
		t.Error("expected singular error for collinear design")
	}
}

func TestOLSErrors(t *testing.T) {
	if _, err := OLS(nil, nil); err == nil {
		t.Error("expected error on empty input")
	}
	if _, err := OLS([][]float64{{1}, {2}}, []float64{1}); err == nil {
		t.Error("expected error on length mismatch")
	}
	if _, err := OLS([][]float64{{1, 2}, {3}}, []float64{1, 2}); err == nil {
		t.Error("expected error on ragged rows")
	}
}

func TestSolveLinear(t *testing.T) {
	A := [][]float64{{2, 1}, {1, 3}}
	b := []float64{3, 5}
	x, err := SolveLinear(A, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(x[0]-0.8) > 1e-9 || math.Abs(x[1]-1.4) > 1e-9 {
		t.Errorf("x = %v, want [0.8 1.4]", x)
	}
}

func TestSolveLinearSingular(t *testing.T) {
	A := [][]float64{{1, 2}, {2, 4}}
	if _, err := SolveLinear(A, []float64{1, 2}); err == nil {
		t.Error("expected singular error")
	}
}

func TestStepwisePicksTrueVariables(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 400
	cols := make([][]float64, 6)
	for c := range cols {
		cols[c] = make([]float64, n)
		for i := range cols[c] {
			cols[c][i] = rng.Float64()
		}
	}
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		// Depends only on columns 1 and 4.
		y[i] = 3*cols[1][i] - 2*cols[4][i] + rng.NormFloat64()*0.02
	}
	res, err := Stepwise(cols, y, 4.0, 0)
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]bool{}
	for _, c := range res.Selected {
		got[c] = true
	}
	if !got[1] || !got[4] {
		t.Errorf("selected = %v, want to include 1 and 4", res.Selected)
	}
	if len(res.Selected) > 3 {
		t.Errorf("selected too many variables: %v", res.Selected)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4}
	y := []float64{2, 4, 6, 8}
	if r := Pearson(x, y); math.Abs(r-1) > 1e-12 {
		t.Errorf("Pearson = %v, want 1", r)
	}
	y2 := []float64{8, 6, 4, 2}
	if r := Pearson(x, y2); math.Abs(r+1) > 1e-12 {
		t.Errorf("Pearson = %v, want -1", r)
	}
	if r := Pearson(x, []float64{5, 5, 5, 5}); r != 0 {
		t.Errorf("Pearson constant = %v, want 0", r)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(xs); m != 5 {
		t.Errorf("Mean = %v, want 5", m)
	}
	if v := Variance(xs); math.Abs(v-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", v, 32.0/7.0)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("degenerate inputs should be 0")
	}
}

func TestSimpleRandomSample(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	pop := make([]float64, 10000)
	var trueMean float64
	for i := range pop {
		pop[i] = rng.Float64() * 100
		trueMean += pop[i]
	}
	trueMean /= float64(len(pop))
	est := SimpleRandomSample(len(pop), 500, rng, func(i int) float64 { return pop[i] })
	if RelError(est.Mean, trueMean) > 0.05 {
		t.Errorf("sample mean %v too far from %v", est.Mean, trueMean)
	}
	if est.Units != 500 {
		t.Errorf("Units = %d, want 500", est.Units)
	}
}

func TestSampleFullPopulation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	est := SimpleRandomSample(10, 50, rng, func(i int) float64 { return float64(i) })
	if est.Units != 10 {
		t.Errorf("oversized sample should clamp to population, got %d", est.Units)
	}
	if est.Mean != 4.5 {
		t.Errorf("full-population mean = %v, want 4.5", est.Mean)
	}
}

func TestRatioEstimateReducesError(t *testing.T) {
	// Ground truth = 1.3 * predictor with small noise: the ratio
	// estimator should land very close to the true mean even with a
	// small sample.
	rng := rand.New(rand.NewSource(5))
	n := 5000
	pred := make([]float64, n)
	truth := make([]float64, n)
	var trueMean float64
	for i := 0; i < n; i++ {
		pred[i] = 10 + rng.Float64()*90
		truth[i] = 1.3*pred[i] + rng.NormFloat64()
		trueMean += truth[i]
	}
	trueMean /= float64(n)
	est := RatioEstimate(n, 40, rng,
		func(i int) float64 { return pred[i] },
		func(i int) float64 { return truth[i] })
	if RelError(est.Mean, trueMean) > 0.01 {
		t.Errorf("ratio estimate %v vs true %v: error too large", est.Mean, trueMean)
	}
}

func TestStationaryTwoState(t *testing.T) {
	// P = [[0.9 0.1],[0.5 0.5]] has stationary pi = [5/6, 1/6].
	P := [][]float64{{0.9, 0.1}, {0.5, 0.5}}
	pi, err := Stationary(P, 1e-12, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(pi[0]-5.0/6.0) > 1e-6 || math.Abs(pi[1]-1.0/6.0) > 1e-6 {
		t.Errorf("pi = %v, want [0.8333 0.1667]", pi)
	}
}

func TestStationaryValidation(t *testing.T) {
	if _, err := Stationary(nil, 0, 0); err == nil {
		t.Error("expected error for empty chain")
	}
	if _, err := Stationary([][]float64{{0.5, 0.2}, {0.5, 0.5}}, 0, 0); err == nil {
		t.Error("expected error for non-stochastic row")
	}
	if _, err := Stationary([][]float64{{1}}, 0, 0); err != nil {
		t.Errorf("1-state chain should work: %v", err)
	}
}

func TestStationarySumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		P := make([][]float64, n)
		for i := range P {
			P[i] = make([]float64, n)
			var s float64
			for j := range P[i] {
				P[i][j] = rng.Float64() + 0.01
				s += P[i][j]
			}
			for j := range P[i] {
				P[i][j] /= s
			}
		}
		pi, err := Stationary(P, 1e-10, 0)
		if err != nil {
			return false
		}
		var s float64
		for _, p := range pi {
			s += p
		}
		return math.Abs(s-1) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestTransitionProbabilities(t *testing.T) {
	counts := [][]int{{1, 3}, {0, 0}}
	P := TransitionProbabilities(counts)
	if P[0][0] != 0.25 || P[0][1] != 0.75 {
		t.Errorf("row 0 = %v", P[0])
	}
	if P[1][1] != 1 {
		t.Errorf("empty row should self-loop, got %v", P[1])
	}
}

func TestRelError(t *testing.T) {
	if RelError(110, 100) != 0.1 {
		t.Error("RelError(110,100) != 0.1")
	}
	if RelError(0.5, 0) != 0.5 {
		t.Error("RelError with zero want should return |got|")
	}
}

func TestStratifiedSampleBeatsSimpleOnDriftingData(t *testing.T) {
	// A population whose mean drifts over time (program phases): the
	// stratified estimator should have lower error than simple random
	// sampling at the same budget, on average over repetitions.
	pop := make([]float64, 12000)
	var trueMean float64
	base := rand.New(rand.NewSource(31))
	for i := range pop {
		phase := float64(i) / float64(len(pop)) * 40 // strong drift
		pop[i] = phase + base.Float64()
		trueMean += pop[i]
	}
	trueMean /= float64(len(pop))
	var errSimple, errStrat float64
	const reps = 40
	for r := 0; r < reps; r++ {
		rng := rand.New(rand.NewSource(int64(100 + r)))
		s1 := SimpleRandomSample(len(pop), 60, rng, func(i int) float64 { return pop[i] })
		s2 := StratifiedSample(len(pop), 60, 10, rng, func(i int) float64 { return pop[i] })
		errSimple += math.Abs(s1.Mean - trueMean)
		errStrat += math.Abs(s2.Mean - trueMean)
	}
	if errStrat >= errSimple {
		t.Errorf("stratified error %v should beat simple %v on drifting data", errStrat/reps, errSimple/reps)
	}
}

func TestStratifiedSampleDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	// One stratum falls back to simple sampling.
	est := StratifiedSample(100, 20, 1, rng, func(i int) float64 { return float64(i) })
	if est.Units != 20 {
		t.Errorf("fallback units = %d", est.Units)
	}
}
