package stats

import (
	"errors"
	"fmt"
	"math"
)

// Stationary computes the stationary distribution pi of the row-
// stochastic transition matrix P (pi·P = pi, sum(pi) = 1) by power
// iteration with a uniform start. It returns an error if the iteration
// does not converge, which in practice indicates a periodic or
// disconnected chain; callers generating FSMs should add self-loops or
// restart probability to guarantee ergodicity.
func Stationary(P [][]float64, tol float64, maxIter int) ([]float64, error) {
	n := len(P)
	if n == 0 {
		return nil, errors.New("stats: empty chain")
	}
	for i, row := range P {
		if len(row) != n {
			return nil, errors.New("stats: transition matrix not square")
		}
		var s float64
		for _, p := range row {
			if p < 0 {
				return nil, errors.New("stats: negative transition probability")
			}
			s += p
		}
		if math.Abs(s-1) > 1e-6 {
			return nil, fmt.Errorf("stats: transition matrix row %d sums to %v, want 1", i, s)
		}
	}
	if tol <= 0 {
		tol = 1e-12
	}
	if maxIter <= 0 {
		maxIter = 100000
	}
	pi := make([]float64, n)
	next := make([]float64, n)
	for i := range pi {
		pi[i] = 1 / float64(n)
	}
	for iter := 0; iter < maxIter; iter++ {
		for j := range next {
			next[j] = 0
		}
		for i := 0; i < n; i++ {
			pii := pi[i]
			if pii == 0 {
				continue
			}
			row := P[i]
			for j := 0; j < n; j++ {
				next[j] += pii * row[j]
			}
		}
		var diff float64
		for j := 0; j < n; j++ {
			diff += math.Abs(next[j] - pi[j])
		}
		pi, next = next, pi
		if diff < tol {
			return pi, nil
		}
	}
	return nil, errors.New("stats: stationary distribution did not converge")
}

// TransitionProbabilities converts counted transitions into a row-
// stochastic matrix; rows with no outgoing transitions get a self-loop.
func TransitionProbabilities(counts [][]int) [][]float64 {
	n := len(counts)
	P := make([][]float64, n)
	for i := range P {
		P[i] = make([]float64, n)
		total := 0
		for _, c := range counts[i] {
			total += c
		}
		if total == 0 {
			P[i][i] = 1
			continue
		}
		for j, c := range counts[i] {
			P[i][j] = float64(c) / float64(total)
		}
	}
	return P
}
