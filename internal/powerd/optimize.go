package powerd

import (
	"errors"
	"net/http"

	"hlpower/internal/hlerr"
	"hlpower/internal/jobs"
	"hlpower/internal/memo"
	"hlpower/internal/service"
)

// handleOptimize serves POST /v1/optimize: submit (or idempotently
// re-attach to) a recipe-search job. The response is 202 with the job's
// status; clients poll GET /v1/jobs/{id}. In cluster mode the request
// routes to the ring owner of the job's content key, so the same job
// submitted anywhere lands on one node (and its memo cache accumulates
// that job's recipe prefixes).
func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.rejectDraining(w)
		return
	}
	var req service.OptimizeRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	req.Normalize()
	if err := req.Validate(); err != nil {
		s.fail(w, err)
		return
	}
	p := jobs.Params{
		Spec:          req.Spec(),
		Token:         req.Token,
		Seed:          req.Seed,
		Candidates:    req.Candidates,
		EvalCycles:    req.EvalCycles,
		VerifyCycles:  req.VerifyCycles,
		MaxRecipeLen:  req.MaxRecipeLen,
		EvalSteps:     s.cfg.JobEvalSteps,
		CheckInterval: s.cfg.CheckInterval,
		MaxTotalSteps: s.cfg.JobMaxTotalSteps,
	}
	if s.tryForward(w, r, "/v1/optimize", p.Key(), req) {
		return
	}
	st, err := s.jobsMgr.Submit(p)
	if err != nil {
		s.failJob(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusAccepted, st)
}

// handleJobGet serves GET /v1/jobs/{id}. A job unknown locally may
// live on the ring owner of its key (the id is the key's hex form), so
// unresolved lookups take one forwarding hop before answering 404.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if st, ok := s.jobsMgr.Get(id); ok {
		writeJSON(w, http.StatusOK, st)
		return
	}
	if s.forwardJobOp(w, r, http.MethodGet, id) {
		return
	}
	s.reject(w, http.StatusNotFound, "unknown job "+id, 0)
}

// handleJobCancel serves DELETE /v1/jobs/{id}: cooperative
// cancellation through the job's budget context. The canceled status
// is returned; canceling a finished job is a no-op that reports its
// terminal state.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	if st, ok := s.jobsMgr.Cancel(id); ok {
		writeJSON(w, http.StatusOK, st)
		return
	}
	if s.forwardJobOp(w, r, http.MethodDelete, id) {
		return
	}
	s.reject(w, http.StatusNotFound, "unknown job "+id, 0)
}

// forwardJobOp routes a GET/DELETE job operation to the ring owner of
// the job id (which is the job's content key in hex). Same contract as
// tryForward: true only when it wrote the response; loops are broken
// by the forwarded-hop header, and any owner trouble falls back to the
// caller's local answer (a 404).
func (s *Server) forwardJobOp(w http.ResponseWriter, r *http.Request, method, id string) bool {
	if s.cluster == nil || r.Header.Get(ForwardedHeader) != "" {
		return false
	}
	k, ok := memo.ParseKey(id)
	if !ok {
		return false
	}
	owner, remote := s.cluster.Owner(k)
	if !remote {
		return false
	}
	status, body, hdr, err := s.cluster.ForwardMethod(r.Context(), owner, method, "/v1/jobs/"+id, nil,
		map[string]string{ForwardedHeader: s.cluster.SelfID()})
	if err != nil || status < 200 || status >= 500 {
		s.fallbacks.Add(1)
		return false
	}
	s.forwarded.Add(1)
	relay(w, status, body, hdr, owner.ID)
	return true
}

// failJob maps job submission errors onto HTTP statuses: a full job
// queue sheds with 429, a draining engine answers 503, and everything
// else goes through the standard error mapping (validation failures
// are typed input errors, so 400).
func (s *Server) failJob(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		s.shed.Add(1)
		s.reject(w, http.StatusTooManyRequests, err.Error(), s.retryAfterHint())
	case errors.Is(err, jobs.ErrDraining):
		s.rejectDraining(w)
	case hlerr.IsInput(err):
		s.reject(w, http.StatusBadRequest, err.Error(), 0)
	default:
		s.reject(w, http.StatusInternalServerError, err.Error(), 0)
	}
}
