package powerd

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"

	"hlpower/internal/bdd"
	"hlpower/internal/budget"
	"hlpower/internal/core"
	"hlpower/internal/hlerr"
	"hlpower/internal/macromodel"
	"hlpower/internal/memo"
	"hlpower/internal/resilience"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

const (
	maxWidth  = 16
	maxCycles = 200_000
)

// moduleFor builds the requested RT-library circuit, or an input error.
func moduleFor(circuit string, width int) (*rtlib.Module, error) {
	if width < 2 || width > maxWidth {
		return nil, hlerr.Errorf("powerd.module", "width %d out of range [2,%d]", width, maxWidth)
	}
	switch circuit {
	case "adder":
		return rtlib.NewAdder(width), nil
	case "carry-select":
		return rtlib.NewCarrySelectAdder(width), nil
	case "multiplier":
		return rtlib.NewMultiplier(width), nil
	case "subtractor":
		return rtlib.NewSubtractor(width), nil
	case "comparator":
		return rtlib.NewComparator(width), nil
	default:
		return nil, hlerr.Errorf("powerd.module", "unknown circuit %q", circuit)
	}
}

func checkCycles(cycles int) error {
	if cycles < 2 || cycles > maxCycles {
		return hlerr.Errorf("powerd.cycles", "cycles %d out of range [2,%d]", cycles, maxCycles)
	}
	return nil
}

// operandStreams draws the Monte Carlo operand pair for a module.
func operandStreams(cycles, width int, seed int64) (as, bs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	return trace.Uniform(cycles, width, rng), trace.Uniform(cycles, width, rng)
}

// keyEnc starts an endpoint's content key: a versioned endpoint tag
// plus the server options that can change a response. The step
// allowance is budget-relevant — it decides which requests trip or
// degrade — so two servers configured differently never share entries
// through a snapshot, and reconfiguring a server cannot replay results
// the new limits would have rejected. Request fields are appended by
// the caller; they fully determine the derived netlist and operand
// streams (moduleFor and operandStreams are deterministic), which makes
// the raw fields a canonical content encoding one level above the
// netlist hash the library layers use.
func (s *Server) keyEnc(endpoint string) *memo.Enc {
	e := memo.NewEnc()
	e.String("powerd/" + endpoint + "/v1")
	e.Int64(s.cfg.MaxSteps)
	return e
}

// ---------------------------------------------------------------------
// POST /v1/simulate — gate-level Monte Carlo power of one circuit.

type simulateRequest struct {
	Circuit string `json:"circuit"`
	Width   int    `json:"width"`
	Cycles  int    `json:"cycles"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
}

type simulateResponse struct {
	Circuit     string  `json:"circuit"`
	Cycles      int     `json:"cycles"`
	SwitchedCap float64 `json:"switched_cap"`
	Power       float64 `json:"power"`
	Shards      int     `json:"shards"`
	Fallback    string  `json:"fallback,omitempty"`
	// Kernel is "packed" when the 64-lane bit-packed kernel served the
	// request, empty when the interpreted scalar engine ran.
	Kernel string `json:"kernel,omitempty"`
	Hedged bool   `json:"hedged"`
	// Cached reports the response was replayed from the estimate cache
	// (or shared with a concurrent identical request) — bit-identical to
	// a recomputation, including the Shards/Fallback/Kernel metadata of
	// the run that produced it.
	Cached bool `json:"cached"`
}

// simulateKey derives the content key of a simulate request. Workers is
// included because it changes the Shards metadata the response replays
// (the power figures themselves are bit-identical at any worker count).
func (s *Server) simulateKey(req simulateRequest) memo.Key {
	e := s.keyEnc("simulate")
	e.String(req.Circuit)
	e.Int(req.Width)
	e.Int(req.Cycles)
	e.Int64(req.Seed)
	e.Int(req.Workers)
	return e.Key()
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req simulateRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	// Hedging is a property of this request's execution, never replayed
	// from the cache; the stored response always carries Hedged=false.
	var hedged bool
	v, cached, err := s.memoDo(s.simulateKey(req), func() (any, int64, bool, error) {
		res, hedgeAttempt, err := s.simulateHedged(r, req)
		if err != nil {
			return nil, 0, false, err
		}
		hedged = hedgeAttempt > 0
		return simulateResponse{
			Circuit:     req.Circuit,
			Cycles:      res.Cycles,
			SwitchedCap: res.SwitchedCap,
			Power:       res.Power(),
			Shards:      res.Shards,
			Fallback:    res.Fallback,
			Kernel:      res.Kernel,
		}, 160, true, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := v.(simulateResponse)
	resp.Hedged = hedged
	resp.Cached = cached
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// simulateHedged runs the simulate op through hedging (when armed) and
// the resilient execute path. Simulation is deterministic for a fixed
// seed and mutates nothing, so it is safe to hedge: a straggling
// primary attempt gets a backup after HedgeDelay and the first result
// wins.
func (s *Server) simulateHedged(r *http.Request, req simulateRequest) (*sim.Result, int, error) {
	op := func(ctx context.Context) (any, error) {
		return s.execute(ctx, "sim", func(b *budget.Budget) (any, error) {
			mod, err := moduleFor(req.Circuit, req.Width)
			if err != nil {
				return nil, err
			}
			if err := checkCycles(req.Cycles); err != nil {
				return nil, err
			}
			as, bs := operandStreams(req.Cycles, req.Width, req.Seed)
			prov := func(c int) []bool { return mod.InputVector(as[c], bs[c]) }
			return sim.RunParallel(b, mod.Net, prov, req.Cycles, sim.ParallelOptions{
				Options: sim.Options{Vdd: 1, Freq: 1},
				Workers: req.Workers,
			})
		})
	}
	if s.cfg.HedgeDelay <= 0 {
		v, err := op(r.Context())
		if err != nil {
			return nil, 0, err
		}
		return v.(*sim.Result), 0, nil
	}
	v, attempt, err := resilience.Hedge(r.Context(), s.cfg.HedgeDelay,
		func(hctx context.Context, _ int) (any, error) { return op(hctx) })
	if err != nil {
		return nil, attempt, err
	}
	return v.(*sim.Result), attempt, nil
}

// ---------------------------------------------------------------------
// POST /v1/rank — one improvement-loop turn over adder alternatives.

type rankRequest struct {
	Width  int   `json:"width"`
	Cycles int   `json:"cycles"`
	Seed   int64 `json:"seed"`
}

type rankedEntry struct {
	Name     string  `json:"name"`
	Power    float64 `json:"power"`
	Model    string  `json:"model"`
	Degraded bool    `json:"degraded"`
	// Cached marks a candidate whose power figure was reused from a
	// previous evaluation rather than simulated by this request.
	Cached bool   `json:"cached,omitempty"`
	Err    string `json:"error,omitempty"`
}

type rankResponse struct {
	Best    string        `json:"best"`
	Ranking []rankedEntry `json:"ranking"`
	// Cached reports the whole response was replayed from the estimate
	// cache; per-entry Cached flags then describe the computation that
	// originally produced it.
	Cached bool `json:"cached"`
}

// rankKey is the whole-response content key; rankCandKey identifies one
// candidate's (design, workload) pair, so overlapping candidate sets
// reuse per-candidate simulations even when the endpoint key misses.
func (s *Server) rankKey(req rankRequest) memo.Key {
	e := s.keyEnc("rank")
	e.Int(req.Width)
	e.Int(req.Cycles)
	e.Int64(req.Seed)
	return e.Key()
}

func (s *Server) rankCandKey(name string, req rankRequest) *memo.Key {
	e := s.keyEnc("rank-cand")
	e.String(name)
	e.Int(req.Width)
	e.Int(req.Cycles)
	e.Int64(req.Seed)
	k := e.Key()
	return &k
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req rankRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	v, cached, err := s.memoDo(s.rankKey(req), func() (any, int64, bool, error) {
		resp, err := s.rankCompute(r.Context(), req)
		if err != nil {
			return nil, 0, false, err
		}
		// Only an all-exact ranking is replayable as fresh: a degraded
		// or partially failed one reflects transient conditions (budget
		// pressure, injected faults) a recomputation might not repeat.
		cacheable := true
		for _, e := range resp.Ranking {
			if e.Degraded || e.Err != "" {
				cacheable = false
				break
			}
		}
		return resp, int64(64 + 96*len(resp.Ranking)), cacheable, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := v.(rankResponse)
	resp.Cached = cached
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// rankCompute runs one improvement-loop turn through the resilient
// execute path, with per-candidate estimate memoization.
func (s *Server) rankCompute(ctx context.Context, req rankRequest) (rankResponse, error) {
	v, err := s.execute(ctx, "rank", func(b *budget.Budget) (any, error) {
		if err := checkCycles(req.Cycles); err != nil {
			return nil, err
		}
		as, bs := operandStreams(req.Cycles, req.Width, req.Seed)
		cand := func(name string) core.Candidate {
			return core.Candidate{
				Name:    name,
				MemoKey: s.rankCandKey(name, req),
				Estimator: core.FuncB{
					EstimatorName:  "gate-mc:" + name,
					EstimatorLevel: core.Gate,
					Fn: func(cb *budget.Budget) (float64, bool, error) {
						mod, err := moduleFor(name, req.Width)
						if err != nil {
							return 0, false, err
						}
						res, err := mod.SimulateStreamBudget(cb, as, bs, sim.ZeroDelay)
						if err != nil {
							return 0, false, err
						}
						return res.Power(), false, nil
					},
				},
			}
		}
		ranking := core.RankParallelMemo(b, 1, s.estimateCache(), []core.Candidate{
			cand("adder"), cand("carry-select"), cand("subtractor"),
		})
		best, err := ranking.Best()
		if err != nil {
			// Every candidate failed; surface the first failure so the
			// breaker and retry loop see the real cause (e.g. an
			// injected budget fault), not a generic message.
			return nil, ranking[0].Err
		}
		resp := rankResponse{Best: best.Candidate.Name}
		for _, rk := range ranking {
			e := rankedEntry{
				Name:     rk.Candidate.Name,
				Power:    rk.Estimate.Power,
				Model:    rk.Estimate.Model,
				Degraded: rk.Estimate.Degraded,
				Cached:   rk.Cached,
			}
			if rk.Err != nil {
				e.Err = rk.Err.Error()
			}
			resp.Ranking = append(resp.Ranking, e)
		}
		return resp, nil
	})
	if err != nil {
		return rankResponse{}, err
	}
	return v.(rankResponse), nil
}

// ---------------------------------------------------------------------
// POST /v1/bdd — BDD size estimate of a named boolean function.

type bddRequest struct {
	Function string `json:"function"` // "parity" | "majority" | "and"
	Vars     int    `json:"vars"`
	// AllowDegraded accepts a sampled size estimate when the budget
	// cuts off the exact BDD build; without it, a budget trip is an
	// error (and counts against the bdd breaker).
	AllowDegraded bool `json:"allow_degraded"`
}

type bddResponse struct {
	Function string `json:"function"`
	Vars     int    `json:"vars"`
	Nodes    int    `json:"nodes"`
	Degraded bool   `json:"degraded"`
	// Cached reports the node count was replayed from the estimate
	// cache. Degraded (sampled) estimates are never cached, so a cached
	// response is always an exact build.
	Cached bool `json:"cached"`
}

// bddVal is the cached outcome of one BDD size estimate.
type bddVal struct {
	Nodes    int
	Degraded bool
}

// bddKey hashes the materialized truth table rather than the function
// name, so any two requests naming the same boolean function share one
// entry ("majority" and "and" over one variable, say). AllowDegraded is
// deliberately excluded: it changes failure handling, not the exact
// result, and degraded outcomes are never stored.
func (s *Server) bddKey(tt []bool, vars int) memo.Key {
	e := s.keyEnc("bdd")
	e.Int(vars)
	e.Bools(tt)
	return e.Key()
}

// truthTable materializes the named function over n variables.
func truthTable(function string, n int) ([]bool, error) {
	if n < 1 || n > 16 {
		return nil, hlerr.Errorf("powerd.bdd", "vars %d out of range [1,16]", n)
	}
	tt := make([]bool, 1<<uint(n))
	for i := range tt {
		ones := 0
		for b := 0; b < n; b++ {
			if i>>uint(b)&1 == 1 {
				ones++
			}
		}
		switch function {
		case "parity":
			tt[i] = ones%2 == 1
		case "majority":
			tt[i] = 2*ones > n
		case "and":
			tt[i] = ones == n
		default:
			return nil, hlerr.Errorf("powerd.bdd", "unknown function %q", function)
		}
	}
	return tt, nil
}

func (s *Server) handleBDD(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req bddRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	// Materializing the table is also the request validation, so it runs
	// before the cache lookup and bad requests fail without a key.
	tt, err := truthTable(req.Function, req.Vars)
	if err != nil {
		s.fail(w, err)
		return
	}
	v, cached, err := s.memoDo(s.bddKey(tt, req.Vars), func() (any, int64, bool, error) {
		val, err := s.bddCompute(r.Context(), req, tt)
		if err != nil {
			return nil, 0, false, err
		}
		// A sampled estimate reflects a budget trip this run; an exact
		// rebuild might succeed, so only exact counts are replayable.
		return val, 32, !val.Degraded, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	val := v.(bddVal)
	// A caller that demanded an exact count can collapse onto a
	// concurrent identical request whose leader accepted degradation;
	// surface the underlying budget trip instead of a result this
	// caller's contract forbids. (Degraded values are never stored, so
	// this only arises from in-flight sharing.)
	if val.Degraded && !req.AllowDegraded {
		s.fail(w, fmt.Errorf("powerd: exact build cut off by budget: %w", budget.ErrExceeded))
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, bddResponse{
		Function: req.Function, Vars: req.Vars,
		Nodes: val.Nodes, Degraded: val.Degraded, Cached: cached,
	})
}

// bddCompute builds the BDD through the resilient execute path and
// returns the exact or (when allowed) sampled node count.
func (s *Server) bddCompute(ctx context.Context, req bddRequest, tt []bool) (bddVal, error) {
	v, err := s.execute(ctx, "bdd", func(b *budget.Budget) (any, error) {
		// The handler owns the manager (rather than delegating to
		// bdd.SizeEstimate) so its unique/ITE table traffic can be folded
		// into the /v1/stats counters — including partial builds that a
		// budget trip abandoned.
		m := bdd.New(req.Vars)
		m.SetBudget(b)
		root, err := m.BuildTT(tt, req.Vars)
		s.recordBDDStats(m.Stats())
		switch {
		case err == nil:
			return bddVal{Nodes: m.NodeCount(root)}, nil
		case req.AllowDegraded && errors.Is(err, budget.ErrExceeded):
			return bddVal{Nodes: bdd.SampledSize(tt, req.Vars), Degraded: true}, nil
		default:
			return nil, err
		}
	})
	if err != nil {
		return bddVal{}, err
	}
	return v.(bddVal), nil
}

// ---------------------------------------------------------------------
// POST /v1/predict — macro-model prediction vs budgeted ground truth.

type predictRequest struct {
	Circuit string `json:"circuit"`
	Width   int    `json:"width"`
	Model   string `json:"model"` // "pfa" | "dbt" | "bitwise" | "io"
	Train   int    `json:"train"`
	Eval    int    `json:"eval"`
	Seed    int64  `json:"seed"`
}

type predictResponse struct {
	Circuit   string  `json:"circuit"`
	Model     string  `json:"model"`
	Predicted float64 `json:"predicted"`
	Measured  float64 `json:"measured"`
	AbsErrPct float64 `json:"abs_err_pct"`
	// Cached reports the response was replayed from the estimate cache.
	Cached bool `json:"cached"`
}

func (s *Server) predictKey(req predictRequest) memo.Key {
	e := s.keyEnc("predict")
	e.String(req.Circuit)
	e.Int(req.Width)
	e.String(req.Model)
	e.Int(req.Train)
	e.Int(req.Eval)
	e.Int64(req.Seed)
	return e.Key()
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req predictRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	v, cached, err := s.memoDo(s.predictKey(req), func() (any, int64, bool, error) {
		resp, err := s.predictCompute(r.Context(), req)
		if err != nil {
			return nil, 0, false, err
		}
		return resp, 128, true, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := v.(predictResponse)
	resp.Cached = cached
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// predictCompute fits the requested macro-model and compares it against
// budgeted ground truth. The ground-truth trace of the evaluation
// stream is itself memoized (keyed on the module's netlist structure
// and the exact streams), so requesting the four model types for one
// circuit performs one evaluation simulation, not four.
func (s *Server) predictCompute(ctx context.Context, req predictRequest) (predictResponse, error) {
	v, err := s.execute(ctx, "predict", func(b *budget.Budget) (any, error) {
		mod, err := moduleFor(req.Circuit, req.Width)
		if err != nil {
			return nil, err
		}
		if err := checkCycles(req.Train); err != nil {
			return nil, err
		}
		if err := checkCycles(req.Eval); err != nil {
			return nil, err
		}
		trainA, trainB := operandStreams(req.Train, req.Width, req.Seed)
		evalA, evalB := operandStreams(req.Eval, req.Width, req.Seed+1)
		var m macromodel.Model
		switch req.Model {
		case "pfa":
			m, err = macromodel.FitPFA(mod, trainA, trainB, sim.ZeroDelay)
		case "dbt":
			m, err = macromodel.FitDBT(mod, trainA, trainB, sim.ZeroDelay)
		case "bitwise":
			m, err = macromodel.FitBitwise(mod, trainA, trainB, sim.ZeroDelay)
		case "io":
			m, err = macromodel.FitIO(mod, trainA, trainB, sim.ZeroDelay)
		default:
			return nil, hlerr.Errorf("powerd.predict", "unknown model %q", req.Model)
		}
		if err != nil {
			return nil, err
		}
		truth, err := macromodel.GroundTruthMemo(s.estimateCache(), b, mod, evalA, evalB, sim.ZeroDelay)
		if err != nil {
			return nil, err
		}
		measured := macromodel.MeanAbs(truth)
		predicted := m.PredictStream(evalA, evalB)
		errPct := 0.0
		if measured != 0 {
			errPct = 100 * abs(predicted-measured) / measured
		}
		return predictResponse{
			Circuit: req.Circuit, Model: req.Model,
			Predicted: predicted, Measured: measured, AbsErrPct: errPct,
		}, nil
	})
	if err != nil {
		return predictResponse{}, err
	}
	return v.(predictResponse), nil
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
