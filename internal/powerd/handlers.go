package powerd

import (
	"context"
	"fmt"
	"net/http"

	"hlpower/internal/budget"
	"hlpower/internal/resilience"
	"hlpower/internal/service"
	"hlpower/internal/sim"
)

// The wire types are owned by the transport-agnostic service layer;
// the aliases keep this package's handlers and tests reading naturally.
type (
	simulateRequest  = service.SimulateRequest
	simulateResponse = service.SimulateResponse
	rankRequest      = service.RankRequest
	rankedEntry      = service.RankedEntry
	rankResponse     = service.RankResponse
	bddRequest       = service.BDDRequest
	bddResponse      = service.BDDResponse
	bddVal           = service.BDDOutcome
	predictRequest   = service.PredictRequest
	predictResponse  = service.PredictResponse
)

// ---------------------------------------------------------------------
// POST /v1/simulate — gate-level Monte Carlo power of one circuit.

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req simulateRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if s.tryForward(w, r, "/v1/simulate", s.keys.Simulate(req), req) {
		return
	}
	// Hedging is a property of this request's execution, never replayed
	// from the cache; the stored response always carries Hedged=false.
	var hedged bool
	v, cached, err := s.memoDo(s.keys.Simulate(req), func() (any, int64, bool, error) {
		res, hedgeAttempt, err := s.simulateHedged(r, req)
		if err != nil {
			return nil, 0, false, err
		}
		hedged = hedgeAttempt > 0
		return simulateResponse{
			Circuit:     req.Circuit,
			Cycles:      res.Cycles,
			SwitchedCap: res.SwitchedCap,
			Power:       res.Power(),
			Shards:      res.Shards,
			Fallback:    res.Fallback,
			Kernel:      res.Kernel,
		}, 160, true, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := v.(simulateResponse)
	resp.Hedged = hedged
	resp.Cached = cached
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// simulateHedged runs the simulate op through hedging (when armed) and
// the resilient execute path. Simulation is deterministic for a fixed
// seed and mutates nothing, so it is safe to hedge: a straggling
// primary attempt gets a backup after HedgeDelay and the first result
// wins.
func (s *Server) simulateHedged(r *http.Request, req simulateRequest) (*sim.Result, int, error) {
	op := func(ctx context.Context) (any, error) {
		return s.execute(ctx, "sim", func(b *budget.Budget) (any, error) {
			return s.svc.Simulate(ctx, b, req)
		})
	}
	if s.cfg.HedgeDelay <= 0 {
		v, err := op(r.Context())
		if err != nil {
			return nil, 0, err
		}
		return v.(*sim.Result), 0, nil
	}
	v, attempt, err := resilience.Hedge(r.Context(), s.cfg.HedgeDelay,
		func(hctx context.Context, _ int) (any, error) { return op(hctx) })
	if err != nil {
		return nil, attempt, err
	}
	return v.(*sim.Result), attempt, nil
}

// ---------------------------------------------------------------------
// POST /v1/rank — one improvement-loop turn over adder alternatives.
//
// Rank is a fan-out job, so cluster mode does not forward the whole
// request: the node that received it aggregates, and each candidate's
// evaluation is routed to that candidate key's owner (see remoteCand),
// which is where cross-node singleflight collapses duplicates.

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req rankRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	v, cached, err := s.memoDo(s.keys.Rank(req), func() (any, int64, bool, error) {
		resp, err := s.rankCompute(r.Context(), req)
		if err != nil {
			return nil, 0, false, err
		}
		// Only an all-exact ranking is replayable as fresh: a degraded
		// or partially failed one reflects transient conditions (budget
		// pressure, injected faults) a recomputation might not repeat.
		cacheable := true
		for _, e := range resp.Ranking {
			if e.Degraded || e.Err != "" {
				cacheable = false
				break
			}
		}
		return resp, int64(64 + 96*len(resp.Ranking)), cacheable, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := v.(rankResponse)
	resp.Cached = cached
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// rankCompute runs one improvement-loop turn through the resilient
// execute path, with per-candidate estimate memoization (and, in
// cluster mode, ownership-aware candidate distribution).
func (s *Server) rankCompute(ctx context.Context, req rankRequest) (rankResponse, error) {
	v, err := s.execute(ctx, "rank", func(b *budget.Budget) (any, error) {
		resp, err := s.svc.Rank(ctx, b, req)
		if err != nil {
			return nil, err
		}
		return resp, nil
	})
	if err != nil {
		return rankResponse{}, err
	}
	return v.(rankResponse), nil
}

// ---------------------------------------------------------------------
// POST /v1/bdd — BDD size estimate of a named boolean function.

func (s *Server) handleBDD(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req bddRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	// Materializing the table is also the request validation, so it runs
	// before the cache lookup and bad requests fail without a key.
	tt, err := service.TruthTable(req.Function, req.Vars)
	if err != nil {
		s.fail(w, err)
		return
	}
	if s.tryForward(w, r, "/v1/bdd", s.keys.BDD(tt, req.Vars), req) {
		return
	}
	v, cached, err := s.memoDo(s.keys.BDD(tt, req.Vars), func() (any, int64, bool, error) {
		val, err := s.bddCompute(r.Context(), req, tt)
		if err != nil {
			return nil, 0, false, err
		}
		// A sampled estimate reflects a budget trip this run; an exact
		// rebuild might succeed, so only exact counts are replayable.
		return val, 32, !val.Degraded, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	val := v.(bddVal)
	// A caller that demanded an exact count can collapse onto a
	// concurrent identical request whose leader accepted degradation;
	// surface the underlying budget trip instead of a result this
	// caller's contract forbids. (Degraded values are never stored, so
	// this only arises from in-flight sharing.)
	if val.Degraded && !req.AllowDegraded {
		s.fail(w, fmt.Errorf("powerd: exact build cut off by budget: %w", budget.ErrExceeded))
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, bddResponse{
		Function: req.Function, Vars: req.Vars,
		Nodes: val.Nodes, Degraded: val.Degraded, Cached: cached,
	})
}

// bddCompute builds the BDD through the resilient execute path and
// returns the exact or (when allowed) sampled node count.
func (s *Server) bddCompute(ctx context.Context, req bddRequest, tt []bool) (bddVal, error) {
	v, err := s.execute(ctx, "bdd", func(b *budget.Budget) (any, error) {
		val, err := s.svc.BDD(ctx, b, req, tt)
		if err != nil {
			return nil, err
		}
		return val, nil
	})
	if err != nil {
		return bddVal{}, err
	}
	return v.(bddVal), nil
}

// ---------------------------------------------------------------------
// POST /v1/predict — macro-model prediction vs budgeted ground truth.

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req predictRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	if s.tryForward(w, r, "/v1/predict", s.keys.Predict(req), req) {
		return
	}
	v, cached, err := s.memoDo(s.keys.Predict(req), func() (any, int64, bool, error) {
		resp, err := s.predictCompute(r.Context(), req)
		if err != nil {
			return nil, 0, false, err
		}
		return resp, 128, true, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	resp := v.(predictResponse)
	resp.Cached = cached
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// predictCompute fits the requested macro-model through the resilient
// execute path.
func (s *Server) predictCompute(ctx context.Context, req predictRequest) (predictResponse, error) {
	v, err := s.execute(ctx, "predict", func(b *budget.Budget) (any, error) {
		resp, err := s.svc.Predict(ctx, b, req)
		if err != nil {
			return nil, err
		}
		return resp, nil
	})
	if err != nil {
		return predictResponse{}, err
	}
	return v.(predictResponse), nil
}
