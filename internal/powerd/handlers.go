package powerd

import (
	"context"
	"errors"
	"math/rand"
	"net/http"

	"hlpower/internal/bdd"
	"hlpower/internal/budget"
	"hlpower/internal/core"
	"hlpower/internal/hlerr"
	"hlpower/internal/macromodel"
	"hlpower/internal/resilience"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

const (
	maxWidth  = 16
	maxCycles = 200_000
)

// moduleFor builds the requested RT-library circuit, or an input error.
func moduleFor(circuit string, width int) (*rtlib.Module, error) {
	if width < 2 || width > maxWidth {
		return nil, hlerr.Errorf("powerd.module", "width %d out of range [2,%d]", width, maxWidth)
	}
	switch circuit {
	case "adder":
		return rtlib.NewAdder(width), nil
	case "carry-select":
		return rtlib.NewCarrySelectAdder(width), nil
	case "multiplier":
		return rtlib.NewMultiplier(width), nil
	case "subtractor":
		return rtlib.NewSubtractor(width), nil
	case "comparator":
		return rtlib.NewComparator(width), nil
	default:
		return nil, hlerr.Errorf("powerd.module", "unknown circuit %q", circuit)
	}
}

func checkCycles(cycles int) error {
	if cycles < 2 || cycles > maxCycles {
		return hlerr.Errorf("powerd.cycles", "cycles %d out of range [2,%d]", cycles, maxCycles)
	}
	return nil
}

// operandStreams draws the Monte Carlo operand pair for a module.
func operandStreams(cycles, width int, seed int64) (as, bs []uint64) {
	rng := rand.New(rand.NewSource(seed))
	return trace.Uniform(cycles, width, rng), trace.Uniform(cycles, width, rng)
}

// ---------------------------------------------------------------------
// POST /v1/simulate — gate-level Monte Carlo power of one circuit.

type simulateRequest struct {
	Circuit string `json:"circuit"`
	Width   int    `json:"width"`
	Cycles  int    `json:"cycles"`
	Seed    int64  `json:"seed"`
	Workers int    `json:"workers"`
}

type simulateResponse struct {
	Circuit     string  `json:"circuit"`
	Cycles      int     `json:"cycles"`
	SwitchedCap float64 `json:"switched_cap"`
	Power       float64 `json:"power"`
	Shards      int     `json:"shards"`
	Fallback    string  `json:"fallback,omitempty"`
	// Kernel is "packed" when the 64-lane bit-packed kernel served the
	// request, empty when the interpreted scalar engine ran.
	Kernel string `json:"kernel,omitempty"`
	Hedged bool   `json:"hedged"`
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req simulateRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	res, hedgeAttempt, err := s.simulateHedged(r, req)
	if err != nil {
		s.fail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, simulateResponse{
		Circuit:     req.Circuit,
		Cycles:      res.Cycles,
		SwitchedCap: res.SwitchedCap,
		Power:       res.Power(),
		Shards:      res.Shards,
		Fallback:    res.Fallback,
		Kernel:      res.Kernel,
		Hedged:      hedgeAttempt > 0,
	})
}

// simulateHedged runs the simulate op through hedging (when armed) and
// the resilient execute path. Simulation is deterministic for a fixed
// seed and mutates nothing, so it is safe to hedge: a straggling
// primary attempt gets a backup after HedgeDelay and the first result
// wins.
func (s *Server) simulateHedged(r *http.Request, req simulateRequest) (*sim.Result, int, error) {
	op := func(ctx context.Context) (any, error) {
		return s.execute(ctx, "sim", func(b *budget.Budget) (any, error) {
			mod, err := moduleFor(req.Circuit, req.Width)
			if err != nil {
				return nil, err
			}
			if err := checkCycles(req.Cycles); err != nil {
				return nil, err
			}
			as, bs := operandStreams(req.Cycles, req.Width, req.Seed)
			prov := func(c int) []bool { return mod.InputVector(as[c], bs[c]) }
			return sim.RunParallel(b, mod.Net, prov, req.Cycles, sim.ParallelOptions{
				Options: sim.Options{Vdd: 1, Freq: 1},
				Workers: req.Workers,
			})
		})
	}
	if s.cfg.HedgeDelay <= 0 {
		v, err := op(r.Context())
		if err != nil {
			return nil, 0, err
		}
		return v.(*sim.Result), 0, nil
	}
	v, attempt, err := resilience.Hedge(r.Context(), s.cfg.HedgeDelay,
		func(hctx context.Context, _ int) (any, error) { return op(hctx) })
	if err != nil {
		return nil, attempt, err
	}
	return v.(*sim.Result), attempt, nil
}

// ---------------------------------------------------------------------
// POST /v1/rank — one improvement-loop turn over adder alternatives.

type rankRequest struct {
	Width  int   `json:"width"`
	Cycles int   `json:"cycles"`
	Seed   int64 `json:"seed"`
}

type rankedEntry struct {
	Name     string  `json:"name"`
	Power    float64 `json:"power"`
	Model    string  `json:"model"`
	Degraded bool    `json:"degraded"`
	Err      string  `json:"error,omitempty"`
}

type rankResponse struct {
	Best    string        `json:"best"`
	Ranking []rankedEntry `json:"ranking"`
}

func (s *Server) handleRank(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req rankRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.execute(r.Context(), "rank", func(b *budget.Budget) (any, error) {
		if err := checkCycles(req.Cycles); err != nil {
			return nil, err
		}
		as, bs := operandStreams(req.Cycles, req.Width, req.Seed)
		cand := func(name string) core.Candidate {
			return core.Candidate{Name: name, Estimator: core.FuncB{
				EstimatorName:  "gate-mc:" + name,
				EstimatorLevel: core.Gate,
				Fn: func(cb *budget.Budget) (float64, bool, error) {
					mod, err := moduleFor(name, req.Width)
					if err != nil {
						return 0, false, err
					}
					res, err := mod.SimulateStreamBudget(cb, as, bs, sim.ZeroDelay)
					if err != nil {
						return 0, false, err
					}
					return res.Power(), false, nil
				},
			}}
		}
		ranking := core.RankBudget(b, []core.Candidate{
			cand("adder"), cand("carry-select"), cand("subtractor"),
		})
		best, err := ranking.Best()
		if err != nil {
			// Every candidate failed; surface the first failure so the
			// breaker and retry loop see the real cause (e.g. an
			// injected budget fault), not a generic message.
			return nil, ranking[0].Err
		}
		resp := rankResponse{Best: best.Candidate.Name}
		for _, rk := range ranking {
			e := rankedEntry{
				Name:     rk.Candidate.Name,
				Power:    rk.Estimate.Power,
				Model:    rk.Estimate.Model,
				Degraded: rk.Estimate.Degraded,
			}
			if rk.Err != nil {
				e.Err = rk.Err.Error()
			}
			resp.Ranking = append(resp.Ranking, e)
		}
		return resp, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, v)
}

// ---------------------------------------------------------------------
// POST /v1/bdd — BDD size estimate of a named boolean function.

type bddRequest struct {
	Function string `json:"function"` // "parity" | "majority" | "and"
	Vars     int    `json:"vars"`
	// AllowDegraded accepts a sampled size estimate when the budget
	// cuts off the exact BDD build; without it, a budget trip is an
	// error (and counts against the bdd breaker).
	AllowDegraded bool `json:"allow_degraded"`
}

type bddResponse struct {
	Function string `json:"function"`
	Vars     int    `json:"vars"`
	Nodes    int    `json:"nodes"`
	Degraded bool   `json:"degraded"`
}

// truthTable materializes the named function over n variables.
func truthTable(function string, n int) ([]bool, error) {
	if n < 1 || n > 16 {
		return nil, hlerr.Errorf("powerd.bdd", "vars %d out of range [1,16]", n)
	}
	tt := make([]bool, 1<<uint(n))
	for i := range tt {
		ones := 0
		for b := 0; b < n; b++ {
			if i>>uint(b)&1 == 1 {
				ones++
			}
		}
		switch function {
		case "parity":
			tt[i] = ones%2 == 1
		case "majority":
			tt[i] = 2*ones > n
		case "and":
			tt[i] = ones == n
		default:
			return nil, hlerr.Errorf("powerd.bdd", "unknown function %q", function)
		}
	}
	return tt, nil
}

func (s *Server) handleBDD(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req bddRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.execute(r.Context(), "bdd", func(b *budget.Budget) (any, error) {
		tt, err := truthTable(req.Function, req.Vars)
		if err != nil {
			return nil, err
		}
		// The handler owns the manager (rather than delegating to
		// bdd.SizeEstimate) so its unique/ITE table traffic can be folded
		// into the /v1/stats counters — including partial builds that a
		// budget trip abandoned.
		m := bdd.New(req.Vars)
		m.SetBudget(b)
		root, err := m.BuildTT(tt, req.Vars)
		s.recordBDDStats(m.Stats())
		var (
			nodes    int
			degraded bool
		)
		switch {
		case err == nil:
			nodes = m.NodeCount(root)
		case req.AllowDegraded && errors.Is(err, budget.ErrExceeded):
			nodes = bdd.SampledSize(tt, req.Vars)
			degraded = true
		default:
			return nil, err
		}
		return bddResponse{Function: req.Function, Vars: req.Vars, Nodes: nodes, Degraded: degraded}, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, v)
}

// ---------------------------------------------------------------------
// POST /v1/predict — macro-model prediction vs budgeted ground truth.

type predictRequest struct {
	Circuit string `json:"circuit"`
	Width   int    `json:"width"`
	Model   string `json:"model"` // "pfa" | "dbt" | "bitwise" | "io"
	Train   int    `json:"train"`
	Eval    int    `json:"eval"`
	Seed    int64  `json:"seed"`
}

type predictResponse struct {
	Circuit   string  `json:"circuit"`
	Model     string  `json:"model"`
	Predicted float64 `json:"predicted"`
	Measured  float64 `json:"measured"`
	AbsErrPct float64 `json:"abs_err_pct"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req predictRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	v, err := s.execute(r.Context(), "predict", func(b *budget.Budget) (any, error) {
		mod, err := moduleFor(req.Circuit, req.Width)
		if err != nil {
			return nil, err
		}
		if err := checkCycles(req.Train); err != nil {
			return nil, err
		}
		if err := checkCycles(req.Eval); err != nil {
			return nil, err
		}
		trainA, trainB := operandStreams(req.Train, req.Width, req.Seed)
		evalA, evalB := operandStreams(req.Eval, req.Width, req.Seed+1)
		var m macromodel.Model
		switch req.Model {
		case "pfa":
			m, err = macromodel.FitPFA(mod, trainA, trainB, sim.ZeroDelay)
		case "dbt":
			m, err = macromodel.FitDBT(mod, trainA, trainB, sim.ZeroDelay)
		case "bitwise":
			m, err = macromodel.FitBitwise(mod, trainA, trainB, sim.ZeroDelay)
		case "io":
			m, err = macromodel.FitIO(mod, trainA, trainB, sim.ZeroDelay)
		default:
			return nil, hlerr.Errorf("powerd.predict", "unknown model %q", req.Model)
		}
		if err != nil {
			return nil, err
		}
		truth, err := macromodel.GroundTruthBudget(b, mod, evalA, evalB, sim.ZeroDelay)
		if err != nil {
			return nil, err
		}
		measured := macromodel.MeanAbs(truth)
		predicted := m.PredictStream(evalA, evalB)
		errPct := 0.0
		if measured != 0 {
			errPct = 100 * abs(predicted-measured) / measured
		}
		return predictResponse{
			Circuit: req.Circuit, Model: req.Model,
			Predicted: predicted, Measured: measured, AbsErrPct: errPct,
		}, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	s.served.Add(1)
	writeJSON(w, http.StatusOK, v)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
