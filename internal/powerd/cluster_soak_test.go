package powerd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hlpower/internal/cluster"
	"hlpower/internal/memo"
	"hlpower/internal/resilience"
	"hlpower/internal/service"
)

// ---------------------------------------------------------------------
// Chaos fabric: a fault matrix between nodes, injected as each node's
// HTTP transport. Client->node traffic does not pass through it; only
// node->node forwards and gossip do, which is exactly the network a
// real partition would cut.

type chaosNet struct {
	mu       sync.Mutex
	idByAddr map[string]string // "host:port" -> node ID
	blocked  map[[2]string]bool
	delay    map[[2]string]time.Duration
}

func newChaosNet() *chaosNet {
	return &chaosNet{
		idByAddr: map[string]string{},
		blocked:  map[[2]string]bool{},
		delay:    map[[2]string]time.Duration{},
	}
}

func (c *chaosNet) register(id, rawURL string) {
	u, err := url.Parse(rawURL)
	if err != nil {
		panic(err)
	}
	c.mu.Lock()
	c.idByAddr[u.Host] = id
	c.mu.Unlock()
}

// partition blocks both directions of one link.
func (c *chaosNet) partition(a, b string, on bool) {
	c.mu.Lock()
	c.blocked[[2]string{a, b}] = on
	c.blocked[[2]string{b, a}] = on
	c.mu.Unlock()
}

// kill isolates a node completely: every link to and from it drops.
func (c *chaosNet) kill(id string, others []string) {
	for _, o := range others {
		if o != id {
			c.partition(id, o, true)
		}
	}
}

// slow injects latency on the a->b data path (gossip is exempt, so
// liveness and slowness stay independent failure modes).
func (c *chaosNet) slow(a, b string, d time.Duration) {
	c.mu.Lock()
	c.delay[[2]string{a, b}] = d
	c.mu.Unlock()
}

func (c *chaosNet) rules(from, to string) (bool, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.blocked[[2]string{from, to}], c.delay[[2]string{from, to}]
}

type chaosTransport struct {
	net  *chaosNet
	from string
	base *http.Transport
}

func (t *chaosTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.net.mu.Lock()
	to := t.net.idByAddr[req.URL.Host]
	t.net.mu.Unlock()
	blocked, delay := t.net.rules(t.from, to)
	if blocked {
		return nil, fmt.Errorf("chaos: partition %s->%s", t.from, to)
	}
	if delay > 0 && req.URL.Path != "/cluster/v1/gossip" {
		select {
		case <-req.Context().Done():
			return nil, req.Context().Err()
		case <-time.After(delay):
		}
	}
	return t.base.RoundTrip(req)
}

func (t *chaosTransport) CloseIdleConnections() { t.base.CloseIdleConnections() }

// swapHandler lets an httptest server start (so its URL is known)
// before the powerd server that needs that URL in its peer list exists.
type swapHandler struct{ h atomic.Pointer[http.Handler] }

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h := s.h.Load(); h != nil {
		(*h).ServeHTTP(w, r)
		return
	}
	http.Error(w, "not wired", http.StatusServiceUnavailable)
}

// ---------------------------------------------------------------------

// TestClusterChaosSoak is the acceptance harness for cluster mode: an
// in-process ring of four powerd instances under injected partitions,
// a full node kill mid-load, a slow peer, and clock-skewed health
// reports, asserting
//
//	(a) no lost requests — every request fired in every phase answers
//	    200, whatever the fabric is doing;
//	(b) results are bit-identical to a single-node reference server;
//	(c) no duplicated work — K concurrent identical requests through
//	    non-owner fronts cost the owner exactly one computation
//	    (singleflight holds across the ring) and the fronts zero;
//	(d) a dead or partitioned owner sheds cleanly to local compute,
//	    and once suspected is not even attempted;
//	(e) a slow peer trips its per-peer breaker and recovers through
//	    half-open once healed;
//	(f) liveness is immune to peers' clock skew;
//	(g) teardown leaks no goroutines.
func TestClusterChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster soak skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	ids := []string{"n0", "n1", "n2", "n3"}
	cfg := Config{
		Workers:          4,
		QueueDepth:       32,
		RequestTimeout:   2 * time.Second,
		MaxSteps:         20_000_000,
		Retry:            resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Multiplier: 2},
		FailureThreshold: 3,
		OpenTimeout:      100 * time.Millisecond,
		HalfOpenProbes:   1,
		// Codegen promotion is warmth-dependent per node; this soak
		// asserts forwarded responses match the reference server's
		// Kernel metadata exactly, so it pins every node to the fused
		// tier. TestPromotionChaosSoak covers promotion under faults.
		CodegenAfter: -1,
	}

	// Reference: one plain single-node server with identical config.
	ref := NewServer(cfg)
	refTS := httptest.NewServer(ref.Handler())

	// The ring: httptest listeners first (URLs before servers), then the
	// powerd instances, then wire handlers in.
	net := newChaosNet()
	swaps := make([]*swapHandler, len(ids))
	tss := make([]*httptest.Server, len(ids))
	peers := make([]cluster.Peer, len(ids))
	for i, id := range ids {
		swaps[i] = &swapHandler{}
		tss[i] = httptest.NewServer(swaps[i])
		peers[i] = cluster.Peer{ID: id, URL: tss[i].URL}
		net.register(id, tss[i].URL)
	}
	nodes := make([]*Server, len(ids))
	for i, id := range ids {
		nodes[i] = NewServer(cfg)
		err := nodes[i].EnableCluster(cluster.Config{
			Self:             peers[i],
			Peers:            peers,
			GossipInterval:   25 * time.Millisecond,
			SuspectAfter:     300 * time.Millisecond,
			ForwardTimeout:   500 * time.Millisecond,
			FailureThreshold: 3,
			OpenTimeout:      200 * time.Millisecond,
			HalfOpenProbes:   1,
			Retry:            resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
			Transport:        &chaosTransport{net: net, from: id, base: &http.Transport{}},
		})
		if err != nil {
			t.Fatalf("enable cluster %s: %v", id, err)
		}
		h := nodes[i].Handler()
		swaps[i].h.Store(&h)
	}
	byID := map[string]*Server{}
	for i, id := range ids {
		byID[id] = nodes[i]
	}
	// The test's own copy of the ring, for choosing owners and fronts.
	ring := cluster.NewRing(ids, 0)
	frontNot := func(owner string) int {
		for i, id := range ids {
			if id != owner && id != "n3" { // n3 dies mid-test; never a front
				return i
			}
		}
		t.Fatal("no front available")
		return -1
	}

	client := &http.Client{}
	fire := func(ts *httptest.Server, path string, body any) (int, []byte, http.Header) {
		t.Helper()
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("%s: transport error (no lost requests allowed): %v", path, err)
		}
		defer resp.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("%s: body read: %v", path, err)
		}
		return resp.StatusCode, buf.Bytes(), resp.Header
	}
	bitEq := func(what string, a, b float64) {
		t.Helper()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: %v != %v (bit-identity violated)", what, a, b)
		}
	}
	alive := func(s *Server, id string) bool {
		for _, p := range s.Cluster().Stats().Peers {
			if p.ID == id {
				return p.Health.Alive
			}
		}
		return false
	}

	// --- Phase 1: forwarded requests are bit-identical to the
	// single-node reference, and are actually served by the owner.
	simSpecs := []simulateRequest{
		{Circuit: "adder", Width: 6, Cycles: 150, Seed: 11},
		{Circuit: "multiplier", Width: 4, Cycles: 120, Seed: 12},
		{Circuit: "carry-select", Width: 8, Cycles: 100, Seed: 13},
	}
	for _, spec := range simSpecs {
		owner := ring.Owner(nodes[0].keys.Simulate(spec))
		front := frontNot(owner)
		code, body, hdr := fire(tss[front], "/v1/simulate", spec)
		if code != http.StatusOK {
			t.Fatalf("simulate via %s: %d: %s", ids[front], code, body)
		}
		if got := hdr.Get(ServedByHeader); got != owner {
			t.Fatalf("simulate %v: served by %q, want owner %q", spec, got, owner)
		}
		rcode, rbody, _ := fire(refTS, "/v1/simulate", spec)
		if rcode != http.StatusOK {
			t.Fatalf("reference simulate: %d", rcode)
		}
		var got, want simulateResponse
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(rbody, &want); err != nil {
			t.Fatal(err)
		}
		bitEq("power", got.Power, want.Power)
		bitEq("switched_cap", got.SwitchedCap, want.SwitchedCap)
		if got.Cycles != want.Cycles || got.Kernel != want.Kernel || got.Fallback != want.Fallback {
			t.Fatalf("forwarded response diverged: %+v vs %+v", got, want)
		}
	}

	// BDD through a non-owner front, against the reference.
	bddSpec := bddRequest{Function: "majority", Vars: 10}
	{
		tt, err := service.TruthTable(bddSpec.Function, bddSpec.Vars)
		if err != nil {
			t.Fatal(err)
		}
		owner := ring.Owner(nodes[0].keys.BDD(tt, bddSpec.Vars))
		code, body, hdr := fire(tss[frontNot(owner)], "/v1/bdd", bddSpec)
		if code != http.StatusOK {
			t.Fatalf("bdd: %d: %s", code, body)
		}
		if got := hdr.Get(ServedByHeader); got != owner {
			t.Fatalf("bdd served by %q, want %q", got, owner)
		}
		_, rbody, _ := fire(refTS, "/v1/bdd", bddSpec)
		var got, want bddResponse
		_ = json.Unmarshal(body, &got)
		_ = json.Unmarshal(rbody, &want)
		if got.Nodes != want.Nodes || got.Degraded != want.Degraded {
			t.Fatalf("bdd diverged: %+v vs %+v", got, want)
		}
	}

	// Rank is a fan-out: the front aggregates, candidates route to their
	// key owners. Count how many of the three candidates live remotely
	// from the front and check the owners did exactly that much work.
	rankSpec := rankRequest{Width: 5, Cycles: 100, Seed: 21}
	{
		front := 0
		remoteCands := 0
		for _, name := range []string{"adder", "carry-select", "subtractor"} {
			if ring.Owner(*nodes[0].keys.RankCand(name, rankSpec)) != ids[front] {
				remoteCands++
			}
		}
		var beforePeer int64
		for _, n := range nodes {
			beforePeer += n.peerServed.Load()
		}
		code, body, _ := fire(tss[front], "/v1/rank", rankSpec)
		if code != http.StatusOK {
			t.Fatalf("rank: %d: %s", code, body)
		}
		_, rbody, _ := fire(refTS, "/v1/rank", rankSpec)
		var got, want rankResponse
		_ = json.Unmarshal(body, &got)
		_ = json.Unmarshal(rbody, &want)
		if got.Best != want.Best || len(got.Ranking) != len(want.Ranking) {
			t.Fatalf("rank diverged: %+v vs %+v", got, want)
		}
		for i := range got.Ranking {
			if got.Ranking[i].Name != want.Ranking[i].Name {
				t.Fatalf("rank order diverged: %+v vs %+v", got, want)
			}
			bitEq("rank "+got.Ranking[i].Name, got.Ranking[i].Power, want.Ranking[i].Power)
		}
		var afterPeer int64
		for _, n := range nodes {
			afterPeer += n.peerServed.Load()
		}
		if int(afterPeer-beforePeer) != remoteCands {
			t.Fatalf("rank fan-out: peers served %d candidate evaluations, want %d",
				afterPeer-beforePeer, remoteCands)
		}
	}

	// --- Phase 2: cross-ring singleflight. K concurrent identical
	// requests through non-owner fronts must cost the owner exactly one
	// computation and the fronts zero.
	{
		spec := simulateRequest{Circuit: "subtractor", Width: 7, Cycles: 140, Seed: 31}
		ownerID := ring.Owner(nodes[0].keys.Simulate(spec))
		owner := byID[ownerID]
		fronts := []int{}
		for i, id := range ids {
			if id != ownerID && id != "n3" {
				fronts = append(fronts, i)
			}
		}
		before := owner.Snapshot().Memo
		frontBefore := map[int]memo.Stats{}
		for _, f := range fronts {
			frontBefore[f] = nodes[f].Snapshot().Memo
		}
		const k = 12
		var wg sync.WaitGroup
		for i := 0; i < k; i++ {
			f := fronts[i%len(fronts)]
			wg.Add(1)
			go func(f int) {
				defer wg.Done()
				code, body, _ := fire(tss[f], "/v1/simulate", spec)
				if code != http.StatusOK {
					t.Errorf("singleflight fan-in via %s: %d: %s", ids[f], code, body)
				}
			}(f)
		}
		wg.Wait()
		after := owner.Snapshot().Memo
		if missΔ := after.Misses - before.Misses; missΔ != 1 {
			t.Fatalf("owner computed %d times for %d identical requests, want exactly 1", missΔ, k)
		}
		if sharedΔ := (after.Hits + after.Collapsed) - (before.Hits + before.Collapsed); sharedΔ != k-1 {
			t.Fatalf("owner shared %d results, want %d", sharedΔ, k-1)
		}
		for _, f := range fronts {
			fm := nodes[f].Snapshot().Memo
			if fm.Misses != frontBefore[f].Misses {
				t.Fatalf("front %s computed locally during fan-in (duplicated work)", ids[f])
			}
		}
	}

	// --- Phase 3: single-link partition. The front can no longer reach
	// the owner, but third parties can: the very first request falls
	// back to local compute (never an error), the result still matches
	// the reference, and transitive gossip keeps the owner marked alive.
	{
		spec := simulateRequest{Circuit: "adder", Width: 9, Cycles: 110, Seed: 41}
		ownerID := ring.Owner(nodes[0].keys.Simulate(spec))
		front := frontNot(ownerID)
		frontSrv := nodes[front]
		net.partition(ids[front], ownerID, true)
		fb := frontSrv.fallbacks.Load()
		code, body, hdr := fire(tss[front], "/v1/simulate", spec)
		if code != http.StatusOK {
			t.Fatalf("partitioned simulate: %d: %s", code, body)
		}
		if sb := hdr.Get(ServedByHeader); sb != "" {
			t.Fatalf("partitioned request claims remote serve by %q", sb)
		}
		if frontSrv.fallbacks.Load() <= fb {
			t.Fatal("partition did not register as a fallback")
		}
		var got simulateResponse
		_ = json.Unmarshal(body, &got)
		_, rbody, _ := fire(refTS, "/v1/simulate", spec)
		var want simulateResponse
		_ = json.Unmarshal(rbody, &want)
		bitEq("partition-fallback power", got.Power, want.Power)
		// Transitive liveness: n_front hears about the owner through the
		// unblocked nodes, so the owner must still be alive in its view.
		time.Sleep(350 * time.Millisecond)
		if !alive(frontSrv, ownerID) {
			t.Fatalf("single-link partition killed %s in %s's view despite transitive gossip", ownerID, ids[front])
		}
		net.partition(ids[front], ownerID, false)
		// Heal: the per-peer breaker recovers and forwarding resumes.
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, _, hdr := fire(tss[front], "/v1/simulate", spec)
			if hdr.Get(ServedByHeader) == ownerID {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("forwarding %s->%s never resumed after heal", ids[front], ownerID)
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// --- Phase 4: slow peer. Data-path latency above the forward
	// timeout trips the front's per-peer breaker (requests still answer
	// 200 from local compute); once healed, the breaker recovers
	// through half-open and forwarding resumes.
	{
		slowID := "n2"
		front := 1 // n1: its peer/n2 breaker is untouched so far
		var spec simulateRequest
		for seed := int64(50); ; seed++ {
			spec = simulateRequest{Circuit: "comparator", Width: 6, Cycles: 90, Seed: seed}
			if ring.Owner(nodes[0].keys.Simulate(spec)) == slowID {
				break
			}
		}
		net.slow(ids[front], slowID, 800*time.Millisecond)
		for i := 0; i < 3; i++ {
			code, body, _ := fire(tss[front], "/v1/simulate", spec)
			if code != http.StatusOK {
				t.Fatalf("slow-peer request %d: %d: %s (slow owner must shed, not fail)", i, code, body)
			}
		}
		brState := func() string {
			for _, p := range nodes[front].Cluster().Stats().Peers {
				if p.ID == slowID {
					return p.Breaker.State
				}
			}
			return "?"
		}
		if st := brState(); st != "open" {
			t.Fatalf("peer breaker %s->%s is %s after repeated timeouts, want open", ids[front], slowID, st)
		}
		// While open: fail-fast fallback, still 200, and quick (no 800ms
		// stall — the whole point of the breaker).
		start := time.Now()
		if code, _, _ := fire(tss[front], "/v1/simulate", spec); code != http.StatusOK {
			t.Fatal("fail-fast fallback must still answer 200")
		}
		if el := time.Since(start); el > 600*time.Millisecond {
			t.Fatalf("open-breaker request took %v, want fast local fallback", el)
		}
		net.slow(ids[front], slowID, 0)
		deadline := time.Now().Add(5 * time.Second)
		for {
			_, _, hdr := fire(tss[front], "/v1/simulate", spec)
			if hdr.Get(ServedByHeader) == slowID {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("forwarding to healed slow peer never resumed (breaker %s)", brState())
			}
			time.Sleep(30 * time.Millisecond)
		}
		var bs resilience.BreakerStats
		for _, p := range nodes[front].Cluster().Stats().Peers {
			if p.ID == slowID {
				bs = p.Breaker
			}
		}
		if bs.Opened < 1 || bs.ClosedFromHalfOpen < 1 {
			t.Fatalf("peer breaker never cycled open -> half-open -> closed: %+v", bs)
		}
	}

	// --- Phase 5: node kill mid-load. n3 is isolated (all links cut)
	// while concurrent mixed traffic runs through the other fronts; not
	// one request may be lost. Afterwards every survivor suspects n3
	// and stops even attempting forwards to it.
	{
		specs := []struct {
			path string
			body any
		}{
			{"/v1/simulate", simulateRequest{Circuit: "adder", Width: 6, Cycles: 150, Seed: 61}},
			{"/v1/simulate", simulateRequest{Circuit: "multiplier", Width: 4, Cycles: 120, Seed: 62}},
			{"/v1/rank", rankRequest{Width: 5, Cycles: 100, Seed: 63}},
			{"/v1/bdd", bddRequest{Function: "parity", Vars: 12}},
			{"/v1/simulate", simulateRequest{Circuit: "subtractor", Width: 8, Cycles: 130, Seed: 64}},
		}
		const total = 300
		const concurrency = 8
		var next, done, notOK atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := next.Add(1) - 1
					if i >= total {
						return
					}
					spec := specs[i%int64(len(specs))]
					front := int(i) % 3 // n0..n2 only
					code, _, _ := fire(tss[front], spec.path, spec.body)
					if code != http.StatusOK {
						notOK.Add(1)
					}
					done.Add(1)
				}
			}()
		}
		// Kill n3 while the load is in flight.
		for done.Load() < total/3 {
			time.Sleep(time.Millisecond)
		}
		net.kill("n3", ids)
		wg.Wait()
		if n := notOK.Load(); n != 0 {
			t.Fatalf("%d of %d requests lost during node kill, want 0", n, total)
		}
		// All survivors must suspect n3.
		deadline := time.Now().Add(5 * time.Second)
		for _, id := range ids[:3] {
			for alive(byID[id], "n3") {
				if time.Now().After(deadline) {
					t.Fatalf("%s still considers killed n3 alive", id)
				}
				time.Sleep(20 * time.Millisecond)
			}
		}
		// A fresh n3-owned key via a survivor: answered locally with no
		// forward attempt at all — shedding is now free.
		var spec simulateRequest
		for seed := int64(70); ; seed++ {
			spec = simulateRequest{Circuit: "adder", Width: 5, Cycles: 80, Seed: seed}
			if ring.Owner(nodes[0].keys.Simulate(spec)) == "n3" {
				break
			}
		}
		fwd, fb := nodes[0].forwarded.Load(), nodes[0].fallbacks.Load()
		code, _, hdr := fire(tss[0], "/v1/simulate", spec)
		if code != http.StatusOK {
			t.Fatalf("n3-owned request post-kill: %d", code)
		}
		if hdr.Get(ServedByHeader) != "" {
			t.Fatal("post-kill request claims remote serve")
		}
		if nodes[0].forwarded.Load() != fwd || nodes[0].fallbacks.Load() != fb {
			t.Fatal("suspected-dead owner was still attempted")
		}
	}

	// --- Phase 6: clock-skewed health reports. Hand-crafted gossip with
	// SentAt six hours in the future must neither fail a live peer nor
	// resurrect the dead one; liveness follows sequence advance only.
	{
		stats := nodes[0].Cluster().Stats()
		seqOf := func(id string) uint64 {
			for _, p := range stats.Peers {
				if p.ID == id {
					return p.Health.Seq
				}
			}
			return 0
		}
		msg := cluster.GossipMessage{
			From: "n1",
			View: map[string]uint64{
				"n1": seqOf("n1") + 2, // advancing: stays alive
				"n3": seqOf("n3"),     // not advancing: stays dead
			},
			SentAt: time.Now().Add(6 * time.Hour).UnixNano(),
		}
		b, _ := json.Marshal(msg)
		resp, err := client.Post(tss[0].URL+"/cluster/v1/gossip", "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNoContent {
			t.Fatalf("skewed gossip rejected: %d", resp.StatusCode)
		}
		if !alive(nodes[0], "n1") {
			t.Fatal("future-dated gossip killed a live peer")
		}
		if alive(nodes[0], "n3") {
			t.Fatal("future-dated gossip resurrected a dead peer without sequence advance")
		}
		skewSeen := false
		for _, p := range nodes[0].Cluster().Stats().Peers {
			if p.ID == "n1" && p.Health.SkewNano > int64(time.Hour) {
				skewSeen = true
			}
		}
		if !skewSeen {
			t.Fatal("observed clock skew not surfaced in stats")
		}
	}

	// --- Phase 7: drain everything and verify zero goroutine leaks.
	// Draining stops each node's gossip loop; mid-drain requests carry
	// Connection: close (covered by TestDrain* unit tests).
	for i := range nodes {
		drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		if err := nodes[i].Drain(drainCtx); err != nil {
			t.Fatalf("drain %s: %v", ids[i], err)
		}
		cancel()
	}
	refCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := ref.Drain(refCtx); err != nil {
		t.Fatalf("drain reference: %v", err)
	}
	cancel()
	for _, ts := range tss {
		ts.Close()
	}
	refTS.Close()
	client.CloseIdleConnections()

	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after cluster teardown: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
	var fwd, fb, peer int64
	for _, n := range nodes {
		fwd += n.forwarded.Load()
		fb += n.fallbacks.Load()
		peer += n.peerServed.Load()
	}
	t.Logf("cluster soak complete: %d forwards, %d fallbacks, %d peer-served candidates", fwd, fb, peer)
}
