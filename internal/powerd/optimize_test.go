package powerd

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hlpower/internal/cluster"
	"hlpower/internal/jobs"
	"hlpower/internal/resilience"
	"hlpower/internal/service"
)

func jobConfig() Config {
	cfg := testConfig()
	cfg.JobWorkers = 2
	cfg.JobQueueDepth = 4
	cfg.JobCheckpointEvery = 1
	return cfg
}

func getJSON(t *testing.T, ts *httptest.Server, path string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: undecodable body: %v", path, err)
	}
	return resp, out
}

func del(t *testing.T, ts *httptest.Server, path string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodDelete, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: undecodable body: %v", path, err)
	}
	return resp, out
}

func pollJob(t *testing.T, ts *httptest.Server, id string, until func(map[string]any) bool) map[string]any {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, out := getJSON(t, ts, "/v1/jobs/"+id)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("poll %s: %d %v", id, resp.StatusCode, out)
		}
		if until(out) {
			return out
		}
		if time.Now().After(deadline) {
			t.Fatalf("poll %s: condition never met; last %v", id, out)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func terminal(out map[string]any) bool {
	switch out["phase"] {
	case "done", "failed", "canceled":
		return true
	}
	return false
}

func TestOptimizeLifecycle(t *testing.T) {
	s := NewServer(jobConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	req := service.OptimizeRequest{Kind: "circuit", Circuit: "adder", Width: 4, Seed: 5, Candidates: 10}
	resp, out := post(t, ts, "/v1/optimize", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("optimize: %d %v", resp.StatusCode, out)
	}
	id, _ := out["id"].(string)
	if len(id) != 32 {
		t.Fatalf("job id %q", id)
	}

	// Idempotent resubmission lands on the same job.
	resp, out2 := post(t, ts, "/v1/optimize", req)
	if resp.StatusCode != http.StatusAccepted || out2["id"] != id {
		t.Fatalf("resubmit: %d %v", resp.StatusCode, out2)
	}

	fin := pollJob(t, ts, id, terminal)
	if fin["phase"] != "done" {
		t.Fatalf("job finished %v", fin)
	}
	if fin["best_score"].(float64) <= 0 || fin["best_score"].(float64) > fin["base_score"].(float64) {
		t.Fatalf("scores: %v", fin)
	}
	if int(fin["step"].(float64)) != 10 {
		t.Fatalf("step: %v", fin)
	}

	// Cancel after completion reports the terminal state.
	resp, out = del(t, ts, "/v1/jobs/"+id)
	if resp.StatusCode != http.StatusOK || out["phase"] != "done" {
		t.Fatalf("cancel finished job: %d %v", resp.StatusCode, out)
	}

	// Stats carry the job gauges.
	_, stats := getJSON(t, ts, "/v1/stats")
	jm, ok := stats["jobs"].(map[string]any)
	if !ok || jm["completed"].(float64) < 1 || jm["checkpointed"].(float64) < 1 {
		t.Fatalf("stats jobs: %v", stats["jobs"])
	}
}

func TestOptimizeRejectsBadRequests(t *testing.T) {
	s := NewServer(jobConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	for name, req := range map[string]service.OptimizeRequest{
		"kind":       {Kind: "netlist", Seed: 1},
		"circuit":    {Kind: "circuit", Circuit: "alu", Width: 4, Seed: 1},
		"width":      {Kind: "circuit", Circuit: "adder", Width: 99, Seed: 1},
		"candidates": {Kind: "circuit", Circuit: "adder", Width: 4, Seed: 1, Candidates: 100000},
	} {
		resp, out := post(t, ts, "/v1/optimize", req)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d %v", name, resp.StatusCode, out)
		}
	}

	if resp, out := getJSON(t, ts, "/v1/jobs/ffffffffffffffffffffffffffffffff"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d %v", resp.StatusCode, out)
	}
	if resp, out := del(t, ts, "/v1/jobs/not-a-key"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("bad job id: %d %v", resp.StatusCode, out)
	}
}

func TestOptimizeQueueSheds(t *testing.T) {
	cfg := jobConfig()
	cfg.JobWorkers = 1
	cfg.JobQueueDepth = 1
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer drainServer(t, s)

	var ids []string
	shed := false
	for i := 0; i < 4; i++ {
		req := service.OptimizeRequest{Kind: "circuit", Circuit: "adder", Width: 4,
			Seed: int64(100 + i), Candidates: 2000, EvalCycles: 512}
		resp, out := post(t, ts, "/v1/optimize", req)
		switch resp.StatusCode {
		case http.StatusAccepted:
			ids = append(ids, out["id"].(string))
		case http.StatusTooManyRequests:
			shed = true
			if resp.Header.Get("Retry-After") == "" {
				t.Fatal("429 without Retry-After")
			}
		default:
			t.Fatalf("submit %d: %d %v", i, resp.StatusCode, out)
		}
	}
	if !shed {
		t.Fatal("no submission was shed")
	}
	for _, id := range ids {
		del(t, ts, "/v1/jobs/"+id)
	}
	for _, id := range ids {
		pollJob(t, ts, id, terminal)
	}
}

func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestOptimizeDrainRestartBitIdentity is the serving-layer durability
// acceptance check: a node drained mid-job and "restarted" (a fresh
// Server over the same checkpoint store, which auto-recovers) finishes
// the job with a Float64bits-identical best recipe and score versus an
// uninterrupted server.
func TestOptimizeDrainRestartBitIdentity(t *testing.T) {
	for _, candidates := range []int{150, 600, 2000} {
		req := service.OptimizeRequest{Kind: "circuit", Circuit: "adder", Width: 4,
			Seed: 9, Candidates: candidates}

		// Uninterrupted reference.
		refS := NewServer(jobConfig())
		refTS := httptest.NewServer(refS.Handler())
		resp, out := post(t, refTS, "/v1/optimize", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("reference submit: %d %v", resp.StatusCode, out)
		}
		id := out["id"].(string)
		ref := pollJob(t, refTS, id, terminal)
		refTS.Close()
		drainServer(t, refS)
		if ref["phase"] != "done" {
			t.Fatalf("reference: %v", ref)
		}

		// Interrupted node over a shared store.
		store := jobs.NewMemStore()
		cfg1 := jobConfig()
		cfg1.JobStore = store
		s1 := NewServer(cfg1)
		ts1 := httptest.NewServer(s1.Handler())
		if resp, out := post(t, ts1, "/v1/optimize", req); resp.StatusCode != http.StatusAccepted || out["id"] != id {
			t.Fatalf("submit: %d %v", resp.StatusCode, out)
		}
		pollJob(t, ts1, id, func(out map[string]any) bool {
			return out["step"].(float64) >= 3 || terminal(out)
		})
		drainServer(t, s1)
		ts1.Close()

		snap, ok, _ := store.Load(id)
		if !ok {
			t.Fatal("no checkpoint after drain")
		}
		mid, err := jobs.DecodeState(snap)
		if err != nil {
			t.Fatalf("drain checkpoint: %v", err)
		}
		if mid.Phase != jobs.PhaseRunning || mid.Step == 0 || mid.Step >= candidates {
			continue // job fit before the drain; retry with a longer one
		}

		// "Restarted" node: NewServer recovers the checkpoint on its own.
		cfg2 := jobConfig()
		cfg2.JobStore = store
		s2 := NewServer(cfg2)
		ts2 := httptest.NewServer(s2.Handler())
		fin := pollJob(t, ts2, id, terminal)
		ts2.Close()
		defer drainServer(t, s2)
		if fin["phase"] != "done" {
			t.Fatalf("resumed job: %v", fin)
		}
		if math.Float64bits(fin["best_score"].(float64)) != math.Float64bits(ref["best_score"].(float64)) {
			t.Fatalf("best score %v != reference %v", fin["best_score"], ref["best_score"])
		}
		if fmt.Sprint(fin["best_recipe"]) != fmt.Sprint(ref["best_recipe"]) {
			t.Fatalf("best recipe %v != reference %v", fin["best_recipe"], ref["best_recipe"])
		}
		if fin["steps_used"].(float64) != ref["steps_used"].(float64) {
			t.Fatalf("steps used %v != reference %v", fin["steps_used"], ref["steps_used"])
		}
		if s2.Snapshot().Jobs.Resumed != 1 {
			t.Fatal("restarted node did not count a resume")
		}
		return
	}
	t.Fatal("drain never landed mid-search even on the largest job")
}

// TestOptimizeClusterRouting submits the same job through both nodes
// of a two-node ring: the ring owner runs it exactly once, the other
// node forwards submission, polling, and cancellation.
func TestOptimizeClusterRouting(t *testing.T) {
	ids := []string{"n0", "n1"}
	swaps := make([]*swapHandler, len(ids))
	tss := make([]*httptest.Server, len(ids))
	peers := make([]cluster.Peer, len(ids))
	for i := range ids {
		swaps[i] = &swapHandler{}
		tss[i] = httptest.NewServer(swaps[i])
		defer tss[i].Close()
		peers[i] = cluster.Peer{ID: ids[i], URL: tss[i].URL}
	}
	nodes := make([]*Server, len(ids))
	for i := range ids {
		nodes[i] = NewServer(jobConfig())
		err := nodes[i].EnableCluster(cluster.Config{
			Self:             peers[i],
			Peers:            peers,
			GossipInterval:   25 * time.Millisecond,
			SuspectAfter:     time.Second,
			ForwardTimeout:   5 * time.Second,
			FailureThreshold: 3,
			OpenTimeout:      200 * time.Millisecond,
			HalfOpenProbes:   1,
			Retry:            resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Multiplier: 2},
		})
		if err != nil {
			t.Fatal(err)
		}
		h := nodes[i].Handler()
		swaps[i].h.Store(&h)
		defer drainServer(t, nodes[i])
	}

	req := service.OptimizeRequest{Kind: "circuit", Circuit: "adder", Width: 4, Seed: 77, Candidates: 8}
	var jobID string
	for i := range nodes {
		resp, out := post(t, tss[i], "/v1/optimize", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit via %s: %d %v", ids[i], resp.StatusCode, out)
		}
		if jobID == "" {
			jobID = out["id"].(string)
		} else if out["id"] != jobID {
			t.Fatalf("nodes disagree on job id: %v vs %s", out["id"], jobID)
		}
	}

	// Exactly one node owns (and runs) the job.
	owners := 0
	ownerIdx := -1
	for i := range nodes {
		if n := nodes[i].Snapshot().Jobs.Submitted; n > 0 {
			owners++
			ownerIdx = i
		}
	}
	if owners != 1 {
		t.Fatalf("job ran on %d nodes, want exactly 1", owners)
	}
	other := 1 - ownerIdx
	if nodes[other].Snapshot().Forwarded == 0 {
		t.Fatal("non-owner did not forward the submission")
	}

	// Polling through the non-owner follows the ring to the owner.
	fin := pollJob(t, tss[other], jobID, terminal)
	if fin["phase"] != "done" {
		t.Fatalf("job via non-owner: %v", fin)
	}
	// And cancellation of the finished job relays its terminal status.
	resp, out := del(t, tss[other], "/v1/jobs/"+jobID)
	if resp.StatusCode != http.StatusOK || out["phase"] != "done" {
		t.Fatalf("cancel via non-owner: %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get(ServedByHeader) != ids[ownerIdx] {
		t.Fatalf("served-by %q, want %s", resp.Header.Get(ServedByHeader), ids[ownerIdx])
	}
}
