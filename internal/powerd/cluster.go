package powerd

import (
	"context"
	"encoding/json"
	"net/http"

	"hlpower/internal/budget"
	"hlpower/internal/cluster"
	"hlpower/internal/core"
	"hlpower/internal/memo"
	"hlpower/internal/service"
)

// Forwarding headers. A request carrying ForwardedHeader has already
// made one hop: the receiver computes locally no matter who owns the
// key, so routing disagreements during membership churn degenerate to
// one extra hop instead of a forwarding loop. ServedByHeader tells the
// client (and the chaos soak) which node actually answered.
const (
	ForwardedHeader = "X-Powerd-Forwarded"
	ServedByHeader  = "X-Powerd-Served-By"
)

// EnableCluster joins this server to a powerd ring: it builds the
// cluster node, mounts the peer endpoints (gossip and candidate
// evaluation) on the server's mux, and starts the gossip loop. Call it
// after NewServer and before serving traffic; Drain stops the loop.
// Single-node operation is simply never calling this.
func (s *Server) EnableCluster(ccfg cluster.Config) error {
	if ccfg.Clock == nil {
		ccfg.Clock = s.cfg.Clock
	}
	n, err := cluster.New(ccfg)
	if err != nil {
		return err
	}
	s.cluster = n
	s.mux.Handle("POST /cluster/v1/gossip", n.Handler())
	s.mux.HandleFunc("POST /cluster/v1/cand", s.handleClusterCand)
	n.Start()
	return nil
}

// Cluster exposes the ring membership (nil in single-node mode) for
// tests and operators.
func (s *Server) Cluster() *cluster.Node { return s.cluster }

// tryForward routes a whole request to the key owner's public endpoint
// when a live peer owns it. It reports true only when it wrote the
// response; every failure path returns false and the caller computes
// locally — ring routing is an optimization for cache locality and
// request collapsing, never a correctness dependency.
//
// A forward is skipped entirely (not just shed) when:
//   - single-node mode, or this node owns the key, or the owner is
//     suspected dead;
//   - the request already made a hop (loop prevention);
//   - a fault plan is armed — chaos must exercise this node's own
//     estimation path, not be absorbed by a healthy peer.
func (s *Server) tryForward(w http.ResponseWriter, r *http.Request, path string, k memo.Key, req any) bool {
	if s.cluster == nil || r.Header.Get(ForwardedHeader) != "" || s.plan.Load() != nil {
		return false
	}
	owner, remote := s.cluster.Owner(k)
	if !remote {
		return false
	}
	body, err := json.Marshal(req)
	if err != nil {
		return false
	}
	status, respBody, respHdr, err := s.cluster.Forward(r.Context(), owner, path, body,
		map[string]string{ForwardedHeader: s.cluster.SelfID()})
	if err != nil {
		// Transport failure or open breaker: shed to local compute.
		s.fallbacks.Add(1)
		return false
	}
	switch {
	case status == http.StatusOK, status == http.StatusAccepted:
		// The owner's answer is bit-identical to what local compute would
		// produce (same engines, same keys), so relay it verbatim. 202 is
		// an accepted job submission: the owner now runs the job and its
		// memo cache collects the recipe prefixes.
		s.forwarded.Add(1)
		s.served.Add(1)
		relay(w, status, respBody, respHdr, owner.ID)
		return true
	case status == http.StatusBadRequest:
		// The owner judged the request malformed; this node would too.
		// Relaying keeps input errors deterministic instead of depending
		// on which node happened to validate them.
		s.forwarded.Add(1)
		s.rejected.Add(1)
		relay(w, status, respBody, respHdr, owner.ID)
		return true
	default:
		// 429, 503, 500...: the owner is alive but unable; its capacity
		// problem must not become this client's error.
		s.fallbacks.Add(1)
		return false
	}
}

// relay writes a peer's response through to the client.
func relay(w http.ResponseWriter, status int, body []byte, hdr http.Header, ownerID string) {
	if ct := hdr.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if ra := hdr.Get("Retry-After"); ra != "" {
		w.Header().Set("Retry-After", ra)
	}
	w.Header().Set(ServedByHeader, ownerID)
	w.WriteHeader(status)
	_, _ = w.Write(body)
}

// clusterCandRequest is the peer-to-peer unit of rank work: one named
// candidate under one workload.
type clusterCandRequest struct {
	Name   string `json:"name"`
	Width  int    `json:"width"`
	Cycles int    `json:"cycles"`
	Seed   int64  `json:"seed"`
}

// remoteCand is the service layer's RemoteCand hook: when a live peer
// owns a rank candidate's key, evaluate it there — landing on the
// owner's cache and singleflight so concurrent rankings across the
// whole ring collapse onto one simulation. Any failure, non-200, or
// undecodable reply returns ok=false and the candidate is evaluated
// locally.
func (s *Server) remoteCand(ctx context.Context, name string, req service.RankRequest) (service.CandEstimate, bool) {
	if s.cluster == nil || s.plan.Load() != nil {
		return service.CandEstimate{}, false
	}
	owner, remote := s.cluster.Owner(*s.keys.RankCand(name, req))
	if !remote {
		return service.CandEstimate{}, false
	}
	body, err := json.Marshal(clusterCandRequest{
		Name: name, Width: req.Width, Cycles: req.Cycles, Seed: req.Seed,
	})
	if err != nil {
		return service.CandEstimate{}, false
	}
	status, respBody, _, err := s.cluster.Forward(ctx, owner, "/cluster/v1/cand", body,
		map[string]string{ForwardedHeader: s.cluster.SelfID()})
	if err != nil || status != http.StatusOK {
		s.fallbacks.Add(1)
		return service.CandEstimate{}, false
	}
	var est service.CandEstimate
	if err := json.Unmarshal(respBody, &est); err != nil {
		s.fallbacks.Add(1)
		return service.CandEstimate{}, false
	}
	return est, true
}

// handleClusterCand serves POST /cluster/v1/cand: one rank candidate
// evaluated under this node's admission control, breaker, budget, and
// — crucially — the same cache entries (core.CandidateEstimate under
// the RankCand key) its own local rankings use, so a peer's fan-out
// and a local ranking collapse onto one evaluation.
func (s *Server) handleClusterCand(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	var req clusterCandRequest
	if err := decode(r, &req); err != nil {
		s.fail(w, err)
		return
	}
	rr := service.RankRequest{Width: req.Width, Cycles: req.Cycles, Seed: req.Seed}
	v, cached, err := s.memoDo(*s.keys.RankCand(req.Name, rr), func() (any, int64, bool, error) {
		ev, err := s.execute(r.Context(), "rank", func(b *budget.Budget) (any, error) {
			p, deg, err := s.svc.EvalCand(b, req.Name, rr)
			if err != nil {
				return nil, err
			}
			return core.CandidateEstimate{Power: p, Degraded: deg}, nil
		})
		if err != nil {
			return nil, 0, false, err
		}
		ce := ev.(core.CandidateEstimate)
		return ce, 32, !ce.Degraded, nil
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	ce := v.(core.CandidateEstimate)
	s.peerServed.Add(1)
	writeJSON(w, http.StatusOK, service.CandEstimate{
		Power: ce.Power, Degraded: ce.Degraded, Cached: cached,
	})
}
