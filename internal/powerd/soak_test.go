package powerd

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/resilience"
)

// TestChaosSoak is the acceptance harness for the resilient service:
// it hammers powerd with >= 1000 requests while a fault plan injects
// budget trips into the sim, rank (core), and bdd estimation paths,
// and asserts that
//
//	(a) draining leaves no goroutines behind,
//	(b) every chaos-targeted breaker observed an open transition AND a
//	    half-open -> closed recovery,
//	(c) overload is shed with 429 + Retry-After,
//
// while the service keeps answering every request with a typed JSON
// error rather than a hang, panic, or connection reset. (Criterion (d),
// deterministic retry/backoff and breaker schedules under a fake
// clock, is pinned by the resilience package's unit tests.)
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in -short mode")
	}
	baseline := runtime.NumGoroutine()

	cfg := Config{
		Workers:          4,
		QueueDepth:       8,
		RequestTimeout:   2 * time.Second,
		MaxSteps:         20_000_000,
		CheckInterval:    32,
		Retry:            resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond, Multiplier: 2},
		FailureThreshold: 3,
		OpenTimeout:      50 * time.Millisecond,
		HalfOpenProbes:   1,
	}
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	client := ts.Client()

	var underPlan atomic.Int64 // requests completed while a fault plan was armed

	type reqSpec struct {
		path string
		body any
	}
	specs := []reqSpec{
		{"/v1/simulate", simulateRequest{Circuit: "adder", Width: 6, Cycles: 150, Seed: 1}},
		{"/v1/rank", rankRequest{Width: 5, Cycles: 100, Seed: 2}},
		{"/v1/bdd", bddRequest{Function: "majority", Vars: 10}},
		{"/v1/simulate", simulateRequest{Circuit: "multiplier", Width: 4, Cycles: 120, Seed: 3}},
		{"/v1/bdd", bddRequest{Function: "parity", Vars: 12}},
	}
	fire := func(spec reqSpec) (int, http.Header) {
		body, err := json.Marshal(spec.body)
		if err != nil {
			t.Error(err)
			return 0, nil
		}
		resp, err := client.Post(ts.URL+spec.path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Errorf("%s: transport error (want typed JSON error): %v", spec.path, err)
			return 0, nil
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Errorf("%s: %d with undecodable body: %v", spec.path, resp.StatusCode, err)
		}
		return resp.StatusCode, resp.Header
	}

	// --- Phase 1: deterministic kill. FailAtCheck=1 trips the budget at
	// the first checkpoint of every estimation, so each chaos-targeted
	// breaker must reach open within a handful of requests.
	s.SetFaultPlan(budget.FaultPlan{FailAtCheck: 1})
	targets := map[string]reqSpec{
		"sim":  specs[0],
		"rank": specs[1],
		"bdd":  specs[2],
	}
	for name, spec := range targets {
		for i := 0; i < 20 && s.Breaker(name).State() != resilience.Open; i++ {
			code, _ := fire(spec)
			underPlan.Add(1)
			if code != http.StatusServiceUnavailable {
				t.Fatalf("phase 1: %s request under FailAtCheck=1 returned %d, want 503", name, code)
			}
		}
		if st := s.Breaker(name).State(); st != resilience.Open {
			t.Fatalf("phase 1: breaker %s never opened (state %v)", name, st)
		}
	}

	// --- Phase 2: probabilistic chaos. Each request derives its own
	// fault-plan seed; some trip mid-estimation, some survive. The
	// service must answer all of them. Breakers flap (open under
	// bursts of failures, recover through half-open probes) while the
	// load runs.
	s.SetFaultPlan(budget.FaultPlan{Prob: 0.002, Seed: 99})
	// First let each breaker recover *under the active chaos plan*: a
	// well-behaved client backs off while the breaker is open, so pace
	// requests until the half-open probe gets through. Without this the
	// hammer below can burn all its requests into fail-fast rejections
	// before the first open window ever expires.
	for name, spec := range targets {
		deadline := time.Now().Add(10 * time.Second)
		for s.Breaker(name).State() != resilience.Closed {
			fire(spec)
			underPlan.Add(1)
			if time.Now().After(deadline) {
				t.Fatalf("phase 2: breaker %s still %v under Prob chaos", name, s.Breaker(name).State())
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	const chaosRequests = 1000
	const concurrency = 12
	var (
		wg      sync.WaitGroup
		tallyMu sync.Mutex
		tally   = map[int]int{}
	)
	next := atomic.Int64{}
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if i >= chaosRequests {
					return
				}
				code, _ := fire(specs[i%int64(len(specs))])
				underPlan.Add(1)
				tallyMu.Lock()
				tally[code]++
				tallyMu.Unlock()
			}
		}()
	}
	wg.Wait()
	if got := underPlan.Load(); got < 1000 {
		t.Fatalf("served %d requests under an active fault plan, want >= 1000", got)
	}
	if tally[http.StatusOK] == 0 {
		t.Fatalf("chaos phase produced no successes: %v", tally)
	}
	if tally[http.StatusServiceUnavailable] == 0 {
		t.Fatalf("chaos phase produced no injected failures: %v", tally)
	}
	t.Logf("chaos phase status tally: %v", tally)

	// --- Phase 3: overload. With every worker slot held and the queue
	// saturated, the overflow must shed with 429 + Retry-After.
	for i := 0; i < cfg.Workers; i++ {
		s.slots <- struct{}{}
	}
	const burst = 16 // QueueDepth waiters + 8 shed
	var shedCount, shedWithHint atomic.Int64
	var burstWG sync.WaitGroup
	for i := 0; i < burst; i++ {
		burstWG.Add(1)
		go func() {
			defer burstWG.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			defer cancel()
			body, _ := json.Marshal(specs[0].body)
			req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+specs[0].path, bytes.NewReader(body))
			resp, err := client.Do(req)
			if err != nil {
				return // queued until client timeout: not shed
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests {
				shedCount.Add(1)
				if resp.Header.Get("Retry-After") != "" {
					shedWithHint.Add(1)
				}
			}
		}()
	}
	burstWG.Wait()
	for i := 0; i < cfg.Workers; i++ {
		<-s.slots
	}
	if shedCount.Load() == 0 {
		t.Fatal("overload burst shed nothing")
	}
	if shedWithHint.Load() != shedCount.Load() {
		t.Fatalf("%d shed responses, only %d carried Retry-After", shedCount.Load(), shedWithHint.Load())
	}

	// Phases 1-3 all ran under an armed fault plan, so the estimate
	// cache must have been bypassed completely: no lookups absorbed
	// chaos traffic, and no fault-shaped result was stored.
	if m := s.Snapshot().Memo; m.Hits != 0 || m.Misses != 0 || m.Collapsed != 0 || m.Stores != 0 || m.NegStores != 0 {
		t.Fatalf("estimate cache touched while a fault plan was armed: %+v", m)
	}

	// --- Phase 4: recovery. With the plan cleared, every breaker must
	// come back through a half-open probe to closed, and requests
	// succeed again.
	s.SetFaultPlan(budget.FaultPlan{})
	for name, spec := range targets {
		deadline := time.Now().Add(10 * time.Second)
		for {
			if code, _ := fire(spec); code == http.StatusOK {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("phase 4: subsystem %s never recovered", name)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	for name := range targets {
		st := s.Breaker(name).Stats()
		if st.Opened < 1 {
			t.Errorf("breaker %s never opened: %+v", name, st)
		}
		if st.HalfOpened < 1 || st.ClosedFromHalfOpen < 1 {
			t.Errorf("breaker %s never recovered half-open -> closed: %+v", name, st)
		}
	}

	// With the plan cleared, caching resumes: the recovery successes
	// above stored entries, and re-firing a recovered request now hits.
	m := s.Snapshot().Memo
	if m.Stores == 0 {
		t.Fatalf("recovery phase stored nothing in the estimate cache: %+v", m)
	}
	hitsBefore := m.Hits
	if code, _ := fire(specs[0]); code != http.StatusOK {
		t.Fatalf("post-recovery refire answered %d, want 200", code)
	}
	if m2 := s.Snapshot().Memo; m2.Hits <= hitsBefore {
		t.Fatalf("post-recovery refire did not hit the estimate cache: %+v", m2)
	}

	// --- Phase 5: drain. No in-flight work remains, so Drain returns
	// promptly; afterwards new work is refused and no goroutines leak.
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Drain(drainCtx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code, _ := fire(specs[0]); code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request answered %d, want 503", code)
	}
	ts.Close()
	client.CloseIdleConnections()

	leakDeadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(leakDeadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak after drain: baseline %d, now %d\n%s",
				baseline, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Logf("soak complete: %d requests under chaos, final stats %+v",
		underPlan.Load(), s.Snapshot().Breakers)
}
