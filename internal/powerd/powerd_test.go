package powerd

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/resilience"
)

// testConfig is a small, fast configuration for unit tests.
func testConfig() Config {
	return Config{
		Workers:          2,
		QueueDepth:       2,
		RequestTimeout:   2 * time.Second,
		MaxSteps:         5_000_000,
		CheckInterval:    64,
		Retry:            resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond, Multiplier: 2},
		FailureThreshold: 3,
		OpenTimeout:      50 * time.Millisecond,
		HalfOpenProbes:   1,
	}
}

func post(t *testing.T, ts *httptest.Server, path string, body any) (*http.Response, map[string]any) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("%s: undecodable body: %v", path, err)
	}
	return resp, out
}

func TestEndpointsHappyPath(t *testing.T) {
	s := NewServer(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := post(t, ts, "/v1/simulate", simulateRequest{Circuit: "adder", Width: 8, Cycles: 200, Seed: 1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %v", resp.StatusCode, out)
	}
	if out["power"].(float64) <= 0 {
		t.Fatalf("simulate returned nonpositive power: %v", out)
	}

	resp, out = post(t, ts, "/v1/rank", rankRequest{Width: 6, Cycles: 120, Seed: 2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rank: %d %v", resp.StatusCode, out)
	}
	if out["best"] == "" {
		t.Fatalf("rank picked no winner: %v", out)
	}

	resp, out = post(t, ts, "/v1/bdd", bddRequest{Function: "majority", Vars: 9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("bdd: %d %v", resp.StatusCode, out)
	}
	if out["nodes"].(float64) <= 0 {
		t.Fatalf("bdd returned no nodes: %v", out)
	}

	resp, out = post(t, ts, "/v1/predict", predictRequest{Circuit: "adder", Width: 4, Model: "pfa", Train: 150, Eval: 100, Seed: 3})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict: %d %v", resp.StatusCode, out)
	}
	if out["measured"].(float64) <= 0 {
		t.Fatalf("predict measured nothing: %v", out)
	}

	if got := s.Snapshot().Served; got != 4 {
		t.Fatalf("served counter = %d, want 4", got)
	}
}

func TestInputErrorsAre400(t *testing.T) {
	s := NewServer(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		path string
		body any
	}{
		{"/v1/simulate", simulateRequest{Circuit: "nonsense", Width: 8, Cycles: 100}},
		{"/v1/simulate", simulateRequest{Circuit: "adder", Width: 99, Cycles: 100}},
		{"/v1/simulate", simulateRequest{Circuit: "adder", Width: 8, Cycles: -1}},
		{"/v1/bdd", bddRequest{Function: "bogus", Vars: 4}},
		{"/v1/bdd", bddRequest{Function: "parity", Vars: 99}},
		{"/v1/predict", predictRequest{Circuit: "adder", Width: 4, Model: "bogus", Train: 100, Eval: 100}},
		{"/v1/rank", map[string]any{"width": 4, "cycles": 100, "unknown_field": 1}},
	}
	for _, c := range cases {
		resp, out := post(t, ts, c.path, c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s %v: got %d %v, want 400", c.path, c.body, resp.StatusCode, out)
		}
	}
	// Input errors must not have tripped any breaker.
	for _, name := range Subsystems {
		if st := s.Breaker(name).Stats(); st.Opened > 0 {
			t.Fatalf("breaker %s opened on input errors: %+v", name, st)
		}
	}
}

// TestInjectedFaultsOpenBreakerThen503 drives the deterministic fault
// plan through the serving path: requests fail with 503, the breaker
// opens at the threshold, and subsequent requests are rejected by the
// breaker itself with a Retry-After hint.
func TestInjectedFaultsOpenBreakerThen503(t *testing.T) {
	cfg := testConfig()
	cfg.CheckInterval = 1
	cfg.Retry.MaxAttempts = 1 // one attempt per request: threshold == request count
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	s.SetFaultPlan(budget.FaultPlan{FailAtCheck: 1})
	for i := 0; i < cfg.FailureThreshold; i++ {
		resp, out := post(t, ts, "/v1/simulate", simulateRequest{Circuit: "adder", Width: 4, Cycles: 100, Seed: 1})
		if resp.StatusCode != http.StatusServiceUnavailable || out["kind"] != "budget-exceeded" {
			t.Fatalf("faulted request %d: got %d %v", i, resp.StatusCode, out)
		}
	}
	if st := s.Breaker("sim").State(); st != resilience.Open {
		t.Fatalf("breaker state after threshold failures = %v, want open", st)
	}
	resp, out := post(t, ts, "/v1/simulate", simulateRequest{Circuit: "adder", Width: 4, Cycles: 100, Seed: 1})
	if resp.StatusCode != http.StatusServiceUnavailable || out["kind"] != "breaker-open" {
		t.Fatalf("open-breaker request: got %d %v", resp.StatusCode, out)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("open-breaker rejection missing Retry-After")
	}

	// Clearing the plan and waiting out the open window recovers: the
	// half-open probe succeeds and the breaker closes.
	s.SetFaultPlan(budget.FaultPlan{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := post(t, ts, "/v1/simulate", simulateRequest{Circuit: "adder", Width: 4, Cycles: 100, Seed: 1})
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("breaker never recovered after plan cleared")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := s.Breaker("sim").Stats()
	if st.Opened < 1 || st.HalfOpened < 1 || st.ClosedFromHalfOpen < 1 {
		t.Fatalf("breaker lifecycle incomplete: %+v", st)
	}
}

// TestShedWith429RetryAfter fills every worker slot and the whole wait
// queue, then asserts the overflow is shed with 429 + Retry-After.
func TestShedWith429RetryAfter(t *testing.T) {
	cfg := testConfig()
	cfg.Workers = 1
	cfg.QueueDepth = 1
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Occupy the only worker slot directly.
	s.slots <- struct{}{}
	defer func() { <-s.slots }()

	// Overfill the queue: QueueDepth+3 concurrent requests while no
	// slot can free up. At least 3 must shed.
	const extra = 3
	total := cfg.QueueDepth + extra
	codes := make(chan int, total)
	retryAfter := make(chan string, total)
	var wg sync.WaitGroup
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 500*time.Millisecond)
			defer cancel()
			body, _ := json.Marshal(simulateRequest{Circuit: "adder", Width: 4, Cycles: 100})
			req, _ := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/simulate", bytes.NewReader(body))
			resp, err := ts.Client().Do(req)
			if err != nil {
				codes <- 0
				return
			}
			resp.Body.Close()
			codes <- resp.StatusCode
			retryAfter <- resp.Header.Get("Retry-After")
		}()
	}
	wg.Wait()
	close(codes)
	close(retryAfter)
	shed := 0
	for c := range codes {
		if c == http.StatusTooManyRequests {
			shed++
		}
	}
	if shed < extra {
		t.Fatalf("shed %d requests, want >= %d", shed, extra)
	}
	for ra := range retryAfter {
		if ra == "" {
			t.Fatal("a 429/queued response is missing Retry-After")
		}
	}
	if s.Snapshot().Shed < int64(extra) {
		t.Fatalf("shed counter %d, want >= %d", s.Snapshot().Shed, extra)
	}
}

func TestDrainRejectsNewWorkAndWaits(t *testing.T) {
	s := NewServer(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain with no in-flight work: %v", err)
	}
	resp, out := post(t, ts, "/v1/simulate", simulateRequest{Circuit: "adder", Width: 4, Cycles: 100})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request: got %d %v, want 503", resp.StatusCode, out)
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining = %d, want 503", resp.StatusCode)
	}
}

// Mid-drain requests must tell the client two things: do not reuse
// this connection (it is going away), and how long to wait before
// retrying — the rest of the drain window, after which a restarted
// listener can serve the retry.
func TestDrainMidDrainHeaders(t *testing.T) {
	cfg := testConfig()
	cfg.DrainTimeout = 45 * time.Second
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if err := s.Drain(context.Background()); err != nil {
		t.Fatalf("drain: %v", err)
	}
	buf, _ := json.Marshal(simulateRequest{Circuit: "adder", Width: 4, Cycles: 100})
	resp, err := ts.Client().Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mid-drain request = %d, want 503", resp.StatusCode)
	}
	if !resp.Close {
		t.Error("mid-drain response did not carry Connection: close")
	}
	ra := resp.Header.Get("Retry-After")
	if ra == "" {
		t.Fatal("mid-drain response has no Retry-After")
	}
	secs, err := strconv.Atoi(ra)
	if err != nil {
		t.Fatalf("Retry-After %q not an integer", ra)
	}
	// The hint is the remaining drain window: a little under the full
	// 45s by the time the request lands, never the 2s request timeout.
	if secs < 40 || secs > 45 {
		t.Errorf("Retry-After = %ds, want within the 45s drain window", secs)
	}
}

func TestHealthReadyStats(t *testing.T) {
	s := NewServer(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for _, path := range []string{"/healthz", "/readyz", "/v1/stats"} {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s = %d, want 200", path, resp.StatusCode)
		}
	}
	var st Stats
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(st.Breakers) != len(Subsystems) {
		t.Fatalf("stats exposes %d breakers, want %d", len(st.Breakers), len(Subsystems))
	}
}

// TestSimulateMatchesLibrary pins that the service returns the same
// physics as calling the estimation engine directly.
func TestSimulateMatchesLibrary(t *testing.T) {
	s := NewServer(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := post(t, ts, "/v1/simulate", simulateRequest{Circuit: "multiplier", Width: 4, Cycles: 300, Seed: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %v", resp.StatusCode, out)
	}
	res, _, err := s.simulateHedged(httptest.NewRequest("POST", "/v1/simulate", nil),
		simulateRequest{Circuit: "multiplier", Width: 4, Cycles: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if got := out["switched_cap"].(float64); got != res.SwitchedCap {
		t.Fatalf("service switched_cap %v != library %v", got, res.SwitchedCap)
	}
}

func TestHedgedSimulate(t *testing.T) {
	cfg := testConfig()
	cfg.HedgeDelay = time.Nanosecond // backup fires essentially immediately
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := post(t, ts, "/v1/simulate", simulateRequest{Circuit: "adder", Width: 6, Cycles: 400, Seed: 11})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("hedged simulate: %d %v", resp.StatusCode, out)
	}
	if out["power"].(float64) <= 0 {
		t.Fatalf("hedged simulate returned nonpositive power: %v", out)
	}
}

func TestRetryAfterHintFloor(t *testing.T) {
	s := NewServer(testConfig())
	if s.retryAfterHint() < time.Second {
		t.Fatal("Retry-After hint below one second floor")
	}
}

func ExampleServer() {
	s := NewServer(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	body, _ := json.Marshal(simulateRequest{Circuit: "adder", Width: 4, Cycles: 100, Seed: 1})
	resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		fmt.Println(err)
		return
	}
	defer resp.Body.Close()
	var out simulateResponse
	_ = json.NewDecoder(resp.Body).Decode(&out)
	fmt.Println(resp.StatusCode, out.Circuit, out.Cycles)
	// Output: 200 adder 100
}

// TestStatsSurfaceBDDTables: serving BDD requests must accumulate the
// manager's unique/ITE table counters into /v1/stats, with the
// hits+misses == lookups invariant intact, and the simulate endpoint
// must report which kernel served it.
func TestStatsSurfaceBDDTables(t *testing.T) {
	s := NewServer(testConfig())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, out := post(t, ts, "/v1/simulate", simulateRequest{Circuit: "multiplier", Width: 6, Cycles: 500, Seed: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %v", resp.StatusCode, out)
	}
	if out["kernel"] != "fused" {
		t.Fatalf("combinational zero-delay simulate served by kernel %v, want fused", out["kernel"])
	}

	for i := 0; i < 3; i++ {
		resp, out = post(t, ts, "/v1/bdd", bddRequest{Function: "parity", Vars: 8})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("bdd: %d %v", resp.StatusCode, out)
		}
	}
	st := s.Snapshot().BDDTables
	// Truth-table builds hash-cons through the unique table; the ITE
	// computed table only sees traffic from boolean operations, so its
	// counters may legitimately be zero here — the invariant must hold
	// for both either way.
	if st.Unique.Lookups == 0 {
		t.Fatal("unique: no lookups accumulated in /v1/stats")
	}
	if st.Unique.Hits+st.Unique.Misses != st.Unique.Lookups {
		t.Fatalf("unique: hits %d + misses %d != lookups %d", st.Unique.Hits, st.Unique.Misses, st.Unique.Lookups)
	}
	if st.ITE.Hits+st.ITE.Misses != st.ITE.Lookups {
		t.Fatalf("ite: hits %d + misses %d != lookups %d", st.ITE.Hits, st.ITE.Misses, st.ITE.Lookups)
	}

	// The JSON endpoint exposes the same counters.
	httpResp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var body struct {
		BDDTables struct {
			Unique struct {
				Lookups int64 `json:"lookups"`
			} `json:"unique"`
		} `json:"bdd_tables"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.BDDTables.Unique.Lookups != st.Unique.Lookups {
		t.Fatalf("JSON stats lookups %d != snapshot %d", body.BDDTables.Unique.Lookups, st.Unique.Lookups)
	}
}
