package powerd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"hlpower/internal/budget"
	"hlpower/internal/hlerr"
	"hlpower/internal/resilience"
	"hlpower/internal/service"
	"hlpower/internal/sim"
)

// Batched estimation endpoints. POST /v1/batch accepts up to
// service.MaxBatchItems heterogeneous items and answers them all in one
// buffered response; POST /v1/batch/stream answers the same request as
// NDJSON, flushing each partition group's results as it completes. Both
// run the transport-agnostic service.Batch pipeline with this server's
// policy grafted in through hooks: fresh per-item budgets, the same
// content-addressed memo keys (and singleflight) the single-item
// endpoints use — so a batch item and a single request populate and hit
// the same cache entries — per-item breaker accounting, and, in cluster
// mode, whole-group forwarding to each group's ring owner with the
// established shed-to-local fallback. A batch is admitted as one
// request (one worker slot): its parallelism comes from per-item
// Workers and from group fan-out across the ring, not from occupying
// the admission queue.

// ---------------------------------------------------------------------
// POST /v1/batch — buffered batched estimation.

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	req, ok := s.decodeBatchRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.BatchTimeout)
	defer cancel()
	resp := s.svc.Batch(ctx, req, s.batchHooks(ctx, r, nil, nil))
	s.batches.Add(1)
	s.batchItems.Add(int64(len(req.Items)))
	s.served.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

// batchStreamSummary is the trailing NDJSON line of a streamed batch:
// everything BatchResponse carries except the items, which already went
// out line by line.
type batchStreamSummary struct {
	Done      bool  `json:"done"`
	Groups    int   `json:"groups"`
	Failed    int   `json:"failed"`
	Cached    int   `json:"cached"`
	StepsUsed int64 `json:"steps_used"`
}

// ---------------------------------------------------------------------
// POST /v1/batch/stream — NDJSON streaming batched estimation: one
// BatchItemResult per line (rejected items first, then each group's
// results in submission order), flushed at every group boundary, closed
// by a summary line.

func (s *Server) handleBatchStream(w http.ResponseWriter, r *http.Request) {
	release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	req, ok := s.decodeBatchRequest(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.BatchTimeout)
	defer cancel()
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	emit := func(res service.BatchItemResult) { _ = enc.Encode(res) }
	groupDone := func(service.BatchGroup) { flush() }
	resp := s.svc.Batch(ctx, req, s.batchHooks(ctx, r, emit, groupDone))
	_ = enc.Encode(batchStreamSummary{
		Done: true, Groups: resp.Groups, Failed: resp.Failed,
		Cached: resp.Cached, StepsUsed: resp.StepsUsed,
	})
	flush()
	s.batches.Add(1)
	s.batchItems.Add(int64(len(req.Items)))
	s.served.Add(1)
}

// decodeBatchRequest decodes and bounds a batch body. Batches are
// bounded by item count, so the byte cap is generous next to the 1 MiB
// single-request cap.
func (s *Server) decodeBatchRequest(w http.ResponseWriter, r *http.Request) (service.BatchRequest, bool) {
	var req service.BatchRequest
	if err := decodeLimit(r, &req, 64<<20); err != nil {
		s.fail(w, err)
		return req, false
	}
	if len(req.Items) == 0 {
		s.fail(w, hlerr.Errorf("powerd.batch", "empty batch"))
		return req, false
	}
	if len(req.Items) > service.MaxBatchItems {
		s.fail(w, hlerr.Errorf("powerd.batch", "batch of %d items exceeds limit %d", len(req.Items), service.MaxBatchItems))
		return req, false
	}
	return req, true
}

// batchHooks assembles this server's policy hooks for one batch run.
func (s *Server) batchHooks(ctx context.Context, r *http.Request, emit func(service.BatchItemResult), groupDone func(service.BatchGroup)) service.BatchHooks {
	h := service.BatchHooks{
		Budget:    func() *budget.Budget { return s.newBudget(ctx) },
		Steps:     s.cfg.BatchSteps,
		Item:      s.batchItem,
		Emit:      emit,
		GroupDone: groupDone,
	}
	// Whole groups route to their ring owners under exactly the
	// conditions tryForward uses: never a second hop, never while chaos
	// is armed.
	if s.cluster != nil && r.Header.Get(ForwardedHeader) == "" {
		h.Group = s.batchForward
	}
	return h
}

// batchExec runs one batch item's computation behind the named
// subsystem breaker — Allow, panic containment, Record — without the
// single-request retry loop: a failed item is reported as a typed
// per-item error and the caller resubmits just that item. Input errors
// are marked Permanent for Record exactly as execute does, so malformed
// items never trip a breaker.
func (s *Server) batchExec(name string, b *budget.Budget, op func(*budget.Budget) (any, error)) (any, error) {
	br := s.breakers[name]
	if err := br.Allow(); err != nil {
		return nil, err
	}
	v, err := resilience.SafeValue(func() (any, error) { return op(b) })
	rerr := err
	if rerr != nil && hlerr.IsInput(rerr) {
		rerr = resilience.Permanent(rerr)
	}
	br.Record(rerr)
	return v, err
}

// batchItem computes one item with this server's caching and breaker
// policy. It mirrors the single-item handlers exactly — same memo keys,
// same stored value types, same cacheability rules — so a batch item is
// indistinguishable from a single request in the cache: either can
// populate an entry the other replays, bit for bit.
func (s *Server) batchItem(ctx context.Context, runner *service.GroupRunner, b *budget.Budget, idx int, it service.BatchItem) (service.BatchItemResult, error) {
	out := service.BatchItemResult{Index: idx, ID: it.ID, Op: it.Op}
	var err error
	switch it.Op {
	case service.OpSimulate:
		req := *it.Simulate
		var v any
		var cached bool
		v, cached, err = s.memoDo(s.keys.Simulate(req), func() (any, int64, bool, error) {
			rv, err := s.batchExec("sim", b, func(eb *budget.Budget) (any, error) {
				return runner.Simulate(eb, req)
			})
			if err != nil {
				return nil, 0, false, err
			}
			res := rv.(*sim.Result)
			return simulateResponse{
				Circuit:     req.Circuit,
				Cycles:      res.Cycles,
				SwitchedCap: res.SwitchedCap,
				Power:       res.Power(),
				Shards:      res.Shards,
				Fallback:    res.Fallback,
				Kernel:      res.Kernel,
			}, 160, true, nil
		})
		if err == nil {
			resp := v.(simulateResponse)
			resp.Cached = cached
			out.Simulate = &resp
		}
	case service.OpRank:
		req := *it.Rank
		var v any
		var cached bool
		v, cached, err = s.memoDo(s.keys.Rank(req), func() (any, int64, bool, error) {
			rv, err := s.batchExec("rank", b, func(eb *budget.Budget) (any, error) {
				return runner.Rank(ctx, eb, req)
			})
			if err != nil {
				return nil, 0, false, err
			}
			resp := rv.(rankResponse)
			cacheable := true
			for _, e := range resp.Ranking {
				if e.Degraded || e.Err != "" {
					cacheable = false
					break
				}
			}
			return resp, int64(64 + 96*len(resp.Ranking)), cacheable, nil
		})
		if err == nil {
			resp := v.(rankResponse)
			resp.Cached = cached
			out.Rank = &resp
		}
	case service.OpBDD:
		req := *it.BDD
		tt := runner.TruthTable()
		var v any
		var cached bool
		v, cached, err = s.memoDo(s.keys.BDD(tt, req.Vars), func() (any, int64, bool, error) {
			rv, err := s.batchExec("bdd", b, func(eb *budget.Budget) (any, error) {
				return runner.BDD(ctx, eb, req)
			})
			if err != nil {
				return nil, 0, false, err
			}
			val := rv.(bddVal)
			return val, 32, !val.Degraded, nil
		})
		if err == nil {
			val := v.(bddVal)
			// Same in-flight-sharing corner as handleBDD: an exact-only
			// caller must not receive a degraded value a concurrent
			// degradation-tolerant leader computed.
			if val.Degraded && !req.AllowDegraded {
				err = fmt.Errorf("powerd: exact build cut off by budget: %w", budget.ErrExceeded)
			} else {
				out.BDD = &bddResponse{
					Function: req.Function, Vars: req.Vars,
					Nodes: val.Nodes, Degraded: val.Degraded, Cached: cached,
				}
			}
		}
	case service.OpPredict:
		req := *it.Predict
		var v any
		var cached bool
		v, cached, err = s.memoDo(s.keys.Predict(req), func() (any, int64, bool, error) {
			rv, err := s.batchExec("predict", b, func(eb *budget.Budget) (any, error) {
				return runner.Predict(eb, req)
			})
			if err != nil {
				return nil, 0, false, err
			}
			return rv.(predictResponse), 128, true, nil
		})
		if err == nil {
			resp := v.(predictResponse)
			resp.Cached = cached
			out.Predict = &resp
		}
	}
	if err != nil {
		// Breaker-open is this serving layer's condition, not the
		// engine's; classify it here and let the pipeline map the rest.
		var open *resilience.OpenError
		if errors.As(err, &open) {
			out.Error = &service.BatchError{Kind: service.BatchErrUnavailable, Message: err.Error()}
			return out, nil
		}
		return out, err
	}
	return out, nil
}

// batchForward is the batch pipeline's Group hook: when a live peer
// owns a group's routing key, the whole group is forwarded to it as a
// sub-batch, landing every item on the owner's compiled artifacts,
// cache entries, and singleflight. Any failure — suspected owner, open
// peer breaker, transport error, an overloaded or draining owner —
// returns ok=false and the group computes locally, exactly the
// shed-to-local contract of tryForward.
func (s *Server) batchForward(ctx context.Context, g service.BatchGroup, items []service.BatchItem) ([]service.BatchItemResult, bool) {
	if s.cluster == nil || s.plan.Load() != nil {
		return nil, false
	}
	owner, remote := s.cluster.Owner(s.keys.Group(g))
	if !remote {
		return nil, false
	}
	body, err := json.Marshal(service.BatchRequest{Items: items})
	if err != nil {
		return nil, false
	}
	status, respBody, _, err := s.cluster.Forward(ctx, owner, "/v1/batch", body,
		map[string]string{ForwardedHeader: s.cluster.SelfID()})
	if err != nil || status != http.StatusOK {
		s.fallbacks.Add(1)
		return nil, false
	}
	var resp service.BatchResponse
	if err := json.Unmarshal(respBody, &resp); err != nil || len(resp.Items) != len(items) {
		s.fallbacks.Add(1)
		return nil, false
	}
	s.forwarded.Add(1)
	return resp.Items, true
}
