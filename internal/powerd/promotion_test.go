package powerd

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hlpower/internal/budget"
)

// waitStats polls the server's stats snapshot until cond holds or the
// deadline lapses — codegen promotion builds run off the request path,
// so tests must wait for the swap-in rather than assume it.
func waitStats(t *testing.T, s *Server, what string, cond func(Stats) bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond(s.Snapshot()) {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s; stats: %+v", what, s.Snapshot().Kernel)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestPromotionObservable drives one netlist shape past the hotness
// threshold through the HTTP surface and asserts the whole lifecycle
// is visible from outside: the response kernel field flips from fused
// to codegen, and /v1/stats reports the tier counters, the promotion,
// and the artifact's hotness.
func TestPromotionObservable(t *testing.T) {
	cfg := testConfig()
	cfg.CodegenAfter = 2
	cfg.MemoMaxBytes = -1 // every request must reach the artifact, not the estimate cache
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req := simulateRequest{Circuit: "adder", Width: 8, Cycles: 200, Seed: 5}
	var fusedPower float64
	for i := 0; i < 2; i++ {
		resp, out := post(t, ts, "/v1/simulate", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("simulate %d: %d %v", i, resp.StatusCode, out)
		}
		if out["kernel"] != "fused" {
			t.Fatalf("request %d below threshold served by %v, want fused", i, out["kernel"])
		}
		fusedPower = out["power"].(float64)
	}
	waitStats(t, s, "promotion", func(st Stats) bool { return st.Kernel.Promotions == 1 })

	resp, out := post(t, ts, "/v1/simulate", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-promotion simulate: %d %v", resp.StatusCode, out)
	}
	if out["kernel"] != "codegen" {
		t.Fatalf("post-promotion kernel = %v, want codegen", out["kernel"])
	}
	if math.Float64bits(out["power"].(float64)) != math.Float64bits(fusedPower) {
		t.Fatalf("promotion changed power: %v vs %v", out["power"], fusedPower)
	}

	// The same story over the wire.
	httpResp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer httpResp.Body.Close()
	var body struct {
		Kernel struct {
			Tiers            map[string]int64 `json:"tiers"`
			CodegenBuilds    int64            `json:"codegen_builds"`
			Promotions       int64            `json:"promotions"`
			CodegenArtifacts int              `json:"codegen_artifacts"`
			Hotness          map[string]int64 `json:"hotness"`
		} `json:"kernel"`
	}
	if err := json.NewDecoder(httpResp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	k := body.Kernel
	if k.Promotions != 1 || k.CodegenBuilds != 1 || k.CodegenArtifacts != 1 {
		t.Fatalf("/v1/stats kernel lifecycle: %+v", k)
	}
	if k.Tiers["fused"] < 2 || k.Tiers["codegen"] < 1 {
		t.Fatalf("/v1/stats tiers = %v, want ≥2 fused and ≥1 codegen", k.Tiers)
	}
	if k.Hotness["adder/8"] < 2 {
		t.Fatalf("/v1/stats hotness = %v, want adder/8 ≥ 2", k.Hotness)
	}
}

// TestPromotionChaosSoak extends the chaos story to the promotion
// ladder on a single node:
//
//	(a) promotion lands mid-flight under load and never changes a
//	    single bit of any answer — every successful response matches a
//	    codegen-disabled reference server exactly;
//	(b) while chaos is armed, requests are invisible to the ladder:
//	    they neither advance hotness nor trigger builds, and even an
//	    already-promoted artifact serves them from the fused tier;
//	(c) disarming chaos restores codegen serving, still bit-identical.
func TestPromotionChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("promotion soak skipped in -short mode")
	}
	cfg := testConfig()
	cfg.Workers = 4
	cfg.QueueDepth = 32
	cfg.MemoMaxBytes = -1 // the estimate cache would hide the tier ladder entirely
	cfg.CodegenAfter = 3

	refCfg := cfg
	refCfg.CodegenAfter = -1 // the reference never promotes: pure fused answers
	ref := NewServer(refCfg)
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()

	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	specs := []simulateRequest{
		{Circuit: "multiplier", Width: 6, Cycles: 300, Seed: 21}, // the hot shape
		{Circuit: "adder", Width: 8, Cycles: 250, Seed: 22},
		{Circuit: "carry-select", Width: 6, Cycles: 200, Seed: 23},
	}
	refPower := map[string]float64{}
	for _, spec := range specs {
		resp, out := post(t, refTS, "/v1/simulate", spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("reference %v: %d %v", spec, resp.StatusCode, out)
		}
		refPower[spec.Circuit] = out["power"].(float64)
	}
	check := func(phase string, spec simulateRequest, out map[string]any) {
		t.Helper()
		if math.Float64bits(out["power"].(float64)) != math.Float64bits(refPower[spec.Circuit]) {
			t.Fatalf("%s: %s power %v != reference %v (bit-identity violated)",
				phase, spec.Circuit, out["power"], refPower[spec.Circuit])
		}
	}

	// --- Phase 1: healthy load hot enough to promote the multiplier
	// mid-flight. Whatever tier serves each request, the bits match.
	for i := 0; i < 12; i++ {
		spec := specs[i%len(specs)]
		resp, out := post(t, ts, "/v1/simulate", spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("phase 1 request %d: %d %v", i, resp.StatusCode, out)
		}
		check("phase 1", spec, out)
	}
	waitStats(t, s, "all shapes promoted", func(st Stats) bool { return st.Kernel.Promotions == 3 })
	resp, out := post(t, ts, "/v1/simulate", specs[0])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promoted simulate: %d %v", resp.StatusCode, out)
	}
	if out["kernel"] != "codegen" {
		t.Fatalf("phase 1: promoted shape served by %v, want codegen", out["kernel"])
	}
	check("phase 1 promoted", specs[0], out)
	buildsAfterPhase1 := s.Snapshot().Kernel.CodegenBuilds

	// --- Phase 2: chaos armed but never tripping (FailAtCheck far past
	// any run). Every request succeeds, which pins the gating exactly:
	// armed requests are served from the fused tier even for promoted
	// artifacts, never advance hotness, and never trigger builds.
	s.SetFaultPlan(budget.FaultPlan{FailAtCheck: 1 << 40})
	cold := simulateRequest{Circuit: "comparator", Width: 7, Cycles: 200, Seed: 24}
	refResp, refOut := post(t, refTS, "/v1/simulate", cold)
	if refResp.StatusCode != http.StatusOK {
		t.Fatalf("reference cold: %d %v", refResp.StatusCode, refOut)
	}
	refPower[cold.Circuit] = refOut["power"].(float64)
	for i := 0; i < 12; i++ {
		spec := specs[i%2] // the promoted multiplier and adder
		if i%4 == 3 {
			spec = cold
		}
		resp, out := post(t, ts, "/v1/simulate", spec)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("phase 2 request %d: %d %v (plan never trips)", i, resp.StatusCode, out)
		}
		check("phase 2", spec, out)
		if out["kernel"] != "fused" {
			t.Fatalf("phase 2: fault-armed request served by %v, want fused", out["kernel"])
		}
	}
	st := s.Snapshot().Kernel
	if st.CodegenBuilds != buildsAfterPhase1 {
		t.Fatalf("phase 2: fault-armed traffic triggered builds: %d -> %d", buildsAfterPhase1, st.CodegenBuilds)
	}
	if _, hot := st.Hotness["comparator/7"]; hot {
		t.Fatalf("phase 2: fault-armed traffic advanced hotness: %v", st.Hotness)
	}

	// --- Phase 3: real probabilistic chaos. Some requests degrade to
	// errors — allowed — but every answer that does come back is still
	// bit-identical to the reference, whatever mix of retries, open
	// breakers, and tier gating produced it.
	s.SetFaultPlan(budget.FaultPlan{Prob: 0.0002, Seed: 99})
	okCount := 0
	for i := 0; i < 20; i++ {
		spec := specs[i%len(specs)]
		resp, out := post(t, ts, "/v1/simulate", spec)
		if resp.StatusCode != http.StatusOK {
			// Give an open breaker room to half-open so later requests flow.
			time.Sleep(5 * time.Millisecond)
			continue
		}
		okCount++
		check("phase 3", spec, out)
		if out["kernel"] != "fused" {
			t.Fatalf("phase 3: chaos-armed request served by %v, want fused", out["kernel"])
		}
	}
	if okCount == 0 {
		t.Fatal("phase 3: every request degraded; soak exercised nothing")
	}

	// --- Phase 4: chaos disarmed; the promoted tier resumes serving.
	s.SetFaultPlan(budget.FaultPlan{})
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, out = post(t, ts, "/v1/simulate", specs[0])
		if resp.StatusCode == http.StatusOK {
			break // a breaker opened by phase 3 may still be half-open
		}
		if time.Now().After(deadline) {
			t.Fatalf("phase 4: breaker never recovered: %d %v", resp.StatusCode, out)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if out["kernel"] != "codegen" {
		t.Fatalf("phase 4: kernel = %v, want codegen restored", out["kernel"])
	}
	check("phase 4", specs[0], out)
}
