package powerd

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hlpower/internal/cluster"
	"hlpower/internal/resilience"
	"hlpower/internal/service"
)

func batchTestItems() []service.BatchItem {
	return []service.BatchItem{
		{ID: "s0", Op: service.OpSimulate, Simulate: &simulateRequest{Circuit: "adder", Width: 6, Cycles: 96, Seed: 1}},
		{ID: "s1", Op: service.OpSimulate, Simulate: &simulateRequest{Circuit: "adder", Width: 6, Cycles: 96, Seed: 2}},
		{ID: "m0", Op: service.OpSimulate, Simulate: &simulateRequest{Circuit: "multiplier", Width: 4, Cycles: 64, Seed: 3}},
		{ID: "b0", Op: service.OpBDD, BDD: &bddRequest{Function: "parity", Vars: 6}},
		{ID: "p0", Op: service.OpPredict, Predict: &predictRequest{Circuit: "adder", Width: 6, Model: "pfa", Train: 64, Eval: 64, Seed: 4}},
		{ID: "r0", Op: service.OpRank, Rank: &rankRequest{Width: 5, Cycles: 64, Seed: 5}},
	}
}

// TestBatchHTTPBitIdenticalToSingleCalls is the tentpole acceptance
// test at the wire: every item of one fused POST /v1/batch must be
// Float64bits-identical to the same request against the single-item
// endpoints (here on a second server, both uncached, so replay cannot
// mask a kernel divergence).
func TestBatchHTTPBitIdenticalToSingleCalls(t *testing.T) {
	cfg := testConfig()
	cfg.MemoMaxBytes = -1
	_, batchTS := newMemoTestServer(t, cfg)
	_, singleTS := newMemoTestServer(t, cfg)

	items := batchTestItems()
	status, resp := postAs[service.BatchResponse](t, batchTS, "/v1/batch", service.BatchRequest{Items: items})
	if status != http.StatusOK {
		t.Fatalf("batch status %d", status)
	}
	if resp.Failed != 0 || len(resp.Items) != len(items) {
		t.Fatalf("failed=%d items=%d: %+v", resp.Failed, len(resp.Items), resp.Items)
	}
	bitEq := func(what string, a, b float64) {
		t.Helper()
		if math.Float64bits(a) != math.Float64bits(b) {
			t.Fatalf("%s: %v != %v (bit-identity violated)", what, a, b)
		}
	}
	for i, it := range items {
		got := resp.Items[i]
		if got.ID != it.ID || got.Index != i {
			t.Fatalf("item %d misattributed: %+v", i, got)
		}
		switch it.Op {
		case service.OpSimulate:
			st, want := postAs[simulateResponse](t, singleTS, "/v1/simulate", it.Simulate)
			if st != http.StatusOK {
				t.Fatalf("single simulate status %d", st)
			}
			bitEq("power", got.Simulate.Power, want.Power)
			bitEq("switched_cap", got.Simulate.SwitchedCap, want.SwitchedCap)
			if got.Simulate.Shards != want.Shards || got.Simulate.Fallback != want.Fallback ||
				got.Simulate.Kernel != want.Kernel || got.Simulate.Cycles != want.Cycles {
				t.Fatalf("simulate metadata differs: %+v vs %+v", got.Simulate, want)
			}
		case service.OpRank:
			st, want := postAs[rankResponse](t, singleTS, "/v1/rank", it.Rank)
			if st != http.StatusOK {
				t.Fatalf("single rank status %d", st)
			}
			if len(got.Rank.Ranking) != len(want.Ranking) {
				t.Fatalf("ranking lengths differ")
			}
			for j := range want.Ranking {
				if got.Rank.Ranking[j].Name != want.Ranking[j].Name {
					t.Fatalf("ranking order differs at %d", j)
				}
				bitEq("rank power", got.Rank.Ranking[j].Power, want.Ranking[j].Power)
			}
		case service.OpBDD:
			st, want := postAs[bddResponse](t, singleTS, "/v1/bdd", it.BDD)
			if st != http.StatusOK {
				t.Fatalf("single bdd status %d", st)
			}
			if got.BDD.Nodes != want.Nodes || got.BDD.Degraded != want.Degraded {
				t.Fatalf("bdd differs: %+v vs %+v", got.BDD, want)
			}
		case service.OpPredict:
			st, want := postAs[predictResponse](t, singleTS, "/v1/predict", it.Predict)
			if st != http.StatusOK {
				t.Fatalf("single predict status %d", st)
			}
			bitEq("predicted", got.Predict.Predicted, want.Predicted)
			bitEq("measured", got.Predict.Measured, want.Measured)
			bitEq("abs_err_pct", got.Predict.AbsErrPct, want.AbsErrPct)
		}
	}
}

// TestBatchHTTPPartialFailure: one poisoned item (a workload its budget
// cannot fit) fails with a typed per-item budget error while the other
// items of its own group succeed — and the response is still 200.
func TestBatchHTTPPartialFailure(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSteps = 30_000
	_, ts := newMemoTestServer(t, cfg)
	items := []service.BatchItem{
		{ID: "ok0", Op: service.OpSimulate, Simulate: &simulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: 1}},
		{ID: "poison", Op: service.OpSimulate, Simulate: &simulateRequest{Circuit: "adder", Width: 6, Cycles: 4000, Seed: 2}},
		{ID: "ok1", Op: service.OpSimulate, Simulate: &simulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: 3}},
		{ID: "badop", Op: "no-such-op"},
	}
	status, resp := postAs[service.BatchResponse](t, ts, "/v1/batch", service.BatchRequest{Items: items})
	if status != http.StatusOK {
		t.Fatalf("status %d, want 200 despite per-item failures", status)
	}
	if resp.Failed != 2 {
		t.Fatalf("failed=%d, want 2: %+v", resp.Failed, resp.Items)
	}
	if e := resp.Items[1].Error; e == nil || e.Kind != service.BatchErrBudget {
		t.Fatalf("poisoned item: %+v, want kind %q", resp.Items[1].Error, service.BatchErrBudget)
	}
	if e := resp.Items[3].Error; e == nil || e.Kind != service.BatchErrInput {
		t.Fatalf("bad-op item: %+v, want kind %q", resp.Items[3].Error, service.BatchErrInput)
	}
	for _, i := range []int{0, 2} {
		if resp.Items[i].Error != nil || resp.Items[i].Simulate == nil {
			t.Fatalf("sibling %d poisoned: %+v", i, resp.Items[i])
		}
	}
}

// TestBatchHTTPValidation: an empty batch and an oversized batch are
// whole-request input errors.
func TestBatchHTTPValidation(t *testing.T) {
	_, ts := newMemoTestServer(t, testConfig())
	status, _ := postAs[map[string]any](t, ts, "/v1/batch", service.BatchRequest{})
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch: status %d, want 400", status)
	}
	big := service.BatchRequest{Items: make([]service.BatchItem, service.MaxBatchItems+1)}
	status, _ = postAs[map[string]any](t, ts, "/v1/batch", big)
	if status != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", status)
	}
}

// TestBatchStreamNDJSON: the streaming variant emits one result line
// per item plus a trailing summary, and the lines cover every submitted
// index exactly once.
func TestBatchStreamNDJSON(t *testing.T) {
	_, ts := newMemoTestServer(t, testConfig())
	items := batchTestItems()
	buf, err := json.Marshal(service.BatchRequest{Items: items})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/batch/stream", "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("Content-Type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	seen := map[int]bool{}
	var summary *batchStreamSummary
	for sc.Scan() {
		line := sc.Bytes()
		if summary != nil {
			t.Fatalf("line after summary: %s", line)
		}
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			t.Fatalf("undecodable line %q: %v", line, err)
		}
		if probe.Done != nil {
			var s batchStreamSummary
			if err := json.Unmarshal(line, &s); err != nil {
				t.Fatal(err)
			}
			summary = &s
			continue
		}
		var r service.BatchItemResult
		if err := json.Unmarshal(line, &r); err != nil {
			t.Fatal(err)
		}
		if seen[r.Index] {
			t.Fatalf("index %d streamed twice", r.Index)
		}
		seen[r.Index] = true
		if r.Error != nil {
			t.Fatalf("item %d failed: %+v", r.Index, r.Error)
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if summary == nil || !summary.Done {
		t.Fatal("no summary line")
	}
	if len(seen) != len(items) {
		t.Fatalf("streamed %d items, want %d", len(seen), len(items))
	}
	if summary.Failed != 0 || summary.Groups == 0 || summary.StepsUsed <= 0 {
		t.Fatalf("summary: %+v", summary)
	}
}

// TestBatchMemoIntegration: batch items and single requests share the
// same cache entries — duplicates inside one batch collapse, a repeated
// batch replays entirely, and a later single request hits what the
// batch stored.
func TestBatchMemoIntegration(t *testing.T) {
	srv, ts := newMemoTestServer(t, testConfig())
	req := simulateRequest{Circuit: "adder", Width: 6, Cycles: 96, Seed: 7}
	items := []service.BatchItem{
		{ID: "a", Op: service.OpSimulate, Simulate: &req},
		{ID: "dup", Op: service.OpSimulate, Simulate: &req},
	}
	status, first := postAs[service.BatchResponse](t, ts, "/v1/batch", service.BatchRequest{Items: items})
	if status != http.StatusOK || first.Failed != 0 {
		t.Fatalf("first batch: status=%d %+v", status, first)
	}
	if first.Items[0].Simulate.Cached {
		t.Fatal("first occurrence should compute")
	}
	if !first.Items[1].Simulate.Cached {
		t.Fatal("duplicate inside one batch should replay from cache")
	}
	status, second := postAs[service.BatchResponse](t, ts, "/v1/batch", service.BatchRequest{Items: items})
	if status != http.StatusOK || second.Cached != 2 {
		t.Fatalf("second batch: status=%d cached=%d, want 2", status, second.Cached)
	}
	if math.Float64bits(second.Items[0].Simulate.Power) != math.Float64bits(first.Items[0].Simulate.Power) {
		t.Fatal("cached replay not bit-identical")
	}
	st, single := postAs[simulateResponse](t, ts, "/v1/simulate", req)
	if st != http.StatusOK || !single.Cached {
		t.Fatalf("single call after batch: status=%d cached=%v, want a hit", st, single.Cached)
	}
	if math.Float64bits(single.Power) != math.Float64bits(first.Items[0].Simulate.Power) {
		t.Fatal("single-path replay of a batch-stored entry not bit-identical")
	}
	if hits := srv.memo.Stats().Hits; hits < 4 {
		t.Fatalf("memo hits=%d, want >=4", hits)
	}
}

// TestBatchStepsCeiling: the per-batch aggregate step budget fails the
// tail of the batch with typed budget errors while the head computes.
func TestBatchStepsCeiling(t *testing.T) {
	cfg := testConfig()
	cfg.MemoMaxBytes = -1
	cfg.BatchSteps = 1
	_, ts := newMemoTestServer(t, cfg)
	var items []service.BatchItem
	for i := 0; i < 4; i++ {
		items = append(items, service.BatchItem{Op: service.OpSimulate,
			Simulate: &simulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: int64(i)}})
	}
	status, resp := postAs[service.BatchResponse](t, ts, "/v1/batch", service.BatchRequest{Items: items})
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if resp.Items[0].Error != nil {
		t.Fatalf("first item should compute: %+v", resp.Items[0].Error)
	}
	for i := 1; i < len(items); i++ {
		if e := resp.Items[i].Error; e == nil || e.Kind != service.BatchErrBudget {
			t.Fatalf("item %d: %+v, want kind %q", i, resp.Items[i].Error, service.BatchErrBudget)
		}
	}
}

// TestBatchClusterForward: in a two-node ring, a group whose routing
// key a peer owns is forwarded there whole — the peer's batch counters
// move, the front records the forward, and the results are identical to
// a single-node reference.
func TestBatchClusterForward(t *testing.T) {
	cfg := testConfig()
	cfg.MaxSteps = 20_000_000

	ids := []string{"n0", "n1"}
	swaps := make([]*swapHandler, len(ids))
	tss := make([]*httptest.Server, len(ids))
	peers := make([]cluster.Peer, len(ids))
	for i := range ids {
		swaps[i] = &swapHandler{}
		tss[i] = httptest.NewServer(swaps[i])
		t.Cleanup(tss[i].Close)
		peers[i] = cluster.Peer{ID: ids[i], URL: tss[i].URL}
	}
	nodes := make([]*Server, len(ids))
	for i := range ids {
		nodes[i] = NewServer(cfg)
		err := nodes[i].EnableCluster(cluster.Config{
			Self:           peers[i],
			Peers:          peers,
			GossipInterval: 20 * time.Millisecond,
			SuspectAfter:   500 * time.Millisecond,
			ForwardTimeout: 2 * time.Second,
			Retry:          resilience.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
		})
		if err != nil {
			t.Fatal(err)
		}
		h := nodes[i].Handler()
		swaps[i].h.Store(&h)
	}
	defer nodes[0].Cluster().Stop()
	defer nodes[1].Cluster().Stop()

	alive := func(s *Server, id string) bool {
		for _, p := range s.Cluster().Stats().Peers {
			if p.ID == id {
				return p.Health.Alive
			}
		}
		return false
	}
	deadline := time.Now().Add(3 * time.Second)
	for !(alive(nodes[0], "n1") && alive(nodes[1], "n0")) {
		if time.Now().After(deadline) {
			t.Fatal("ring never converged")
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Pick a simulate group the peer owns, using the same ring function
	// the servers use.
	keys := service.Keys{MaxSteps: cfg.MaxSteps}
	ring := cluster.NewRing(ids, 0)
	var group *service.BatchGroup
	for _, c := range []string{"adder", "multiplier", "subtractor", "comparator", "carry-select"} {
		for w := 4; w <= 8; w++ {
			g := service.BatchGroup{Op: service.OpSimulate, Circuit: c, Width: w}
			if ring.Owner(keys.Group(g)) == "n1" {
				group = &g
				break
			}
		}
		if group != nil {
			break
		}
	}
	if group == nil {
		t.Fatal("no peer-owned simulate group found")
	}
	items := []service.BatchItem{
		{ID: "f0", Op: service.OpSimulate, Simulate: &simulateRequest{Circuit: group.Circuit, Width: group.Width, Cycles: 96, Seed: 1}},
		{ID: "f1", Op: service.OpSimulate, Simulate: &simulateRequest{Circuit: group.Circuit, Width: group.Width, Cycles: 96, Seed: 2}},
	}

	front := httptest.NewServer(nodes[0].Handler())
	t.Cleanup(front.Close)
	status, resp := postAs[service.BatchResponse](t, front, "/v1/batch", service.BatchRequest{Items: items})
	if status != http.StatusOK || resp.Failed != 0 {
		t.Fatalf("status=%d failed=%d: %+v", status, resp.Failed, resp.Items)
	}
	if got := nodes[0].Snapshot().Forwarded; got < 1 {
		t.Fatalf("front forwarded %d groups, want >=1", got)
	}
	if got := nodes[1].Snapshot().Batches; got < 1 {
		t.Fatalf("owner served %d batches, want >=1", got)
	}

	// Results relayed from the owner are identical to a single-node
	// reference.
	refS := NewServer(cfg)
	ref := httptest.NewServer(refS.Handler())
	t.Cleanup(ref.Close)
	for i, it := range items {
		st, want := postAs[simulateResponse](t, ref, "/v1/simulate", it.Simulate)
		if st != http.StatusOK {
			t.Fatalf("reference status %d", st)
		}
		if math.Float64bits(resp.Items[i].Simulate.Power) != math.Float64bits(want.Power) {
			t.Fatalf("item %d: forwarded power %v != reference %v", i, resp.Items[i].Simulate.Power, want.Power)
		}
	}
}

// Benchmarks for the fused-vs-looped comparison benchjson snapshots.
func BenchmarkBatchFused(b *testing.B) {
	cfg := testConfig()
	cfg.MemoMaxBytes = -1
	cfg.RequestTimeout = time.Minute
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	items := make([]service.BatchItem, 256)
	for i := range items {
		items[i] = service.BatchItem{Op: service.OpSimulate,
			Simulate: &simulateRequest{Circuit: "adder", Width: 6, Cycles: 64, Seed: int64(i)}}
	}
	buf, _ := json.Marshal(service.BatchRequest{Items: items})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := ts.Client().Post(ts.URL+"/v1/batch", "application/json", bytes.NewReader(buf))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			b.Fatal(resp.StatusCode)
		}
	}
}
