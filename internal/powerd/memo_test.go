package powerd

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"hlpower/internal/budget"
	"hlpower/internal/resilience"
)

func newMemoTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := NewServer(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// postAs fires a JSON POST and decodes the response into T. Must only
// be called from the test goroutine (it uses t.Fatal).
func postAs[T any](t *testing.T, ts *httptest.Server, path string, body any) (int, T) {
	t.Helper()
	var out T
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Post(ts.URL+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatalf("%s: status %d, undecodable body %q: %v", path, resp.StatusCode, raw, err)
	}
	return resp.StatusCode, out
}

// TestMemoCachedReplayBitIdentical is the replay-fidelity property test:
// a response served from the estimate cache must be bit-identical —
// math.Float64bits on every float field, metadata verbatim — to the
// same request recomputed by a server with memoization disabled.
func TestMemoCachedReplayBitIdentical(t *testing.T) {
	base := Config{Workers: 4, QueueDepth: 16, RequestTimeout: 10 * time.Second, MaxSteps: 50_000_000}
	plain := base
	plain.MemoMaxBytes = -1
	_, mts := newMemoTestServer(t, base)
	_, pts := newMemoTestServer(t, plain)

	// Simulate: the richest metadata (shards, kernel, fallback).
	simReq := simulateRequest{Circuit: "multiplier", Width: 5, Cycles: 300, Seed: 42, Workers: 3}
	if code, first := postAs[simulateResponse](t, mts, "/v1/simulate", simReq); code != http.StatusOK || first.Cached {
		t.Fatalf("first simulate: code %d cached %v, want fresh 200", code, first.Cached)
	}
	code, sim2 := postAs[simulateResponse](t, mts, "/v1/simulate", simReq)
	if code != http.StatusOK || !sim2.Cached {
		t.Fatalf("repeat simulate: code %d cached %v, want cached 200", code, sim2.Cached)
	}
	code, simRef := postAs[simulateResponse](t, pts, "/v1/simulate", simReq)
	if code != http.StatusOK || simRef.Cached {
		t.Fatalf("memo-disabled simulate: code %d cached %v, want fresh 200", code, simRef.Cached)
	}
	if math.Float64bits(sim2.Power) != math.Float64bits(simRef.Power) {
		t.Errorf("cached power bits %016x != recomputed %016x", math.Float64bits(sim2.Power), math.Float64bits(simRef.Power))
	}
	if math.Float64bits(sim2.SwitchedCap) != math.Float64bits(simRef.SwitchedCap) {
		t.Errorf("cached switched_cap bits %016x != recomputed %016x", math.Float64bits(sim2.SwitchedCap), math.Float64bits(simRef.SwitchedCap))
	}
	if sim2.Cycles != simRef.Cycles || sim2.Shards != simRef.Shards || sim2.Fallback != simRef.Fallback || sim2.Kernel != simRef.Kernel {
		t.Errorf("cached metadata diverged: cached %+v, recomputed %+v", sim2, simRef)
	}
	if sim2.Hedged {
		t.Error("cached response replayed a Hedged flag; hedging is per-request execution state")
	}

	// Predict: ground truth memoized underneath, response cached on top.
	pReq := predictRequest{Circuit: "adder", Width: 6, Model: "dbt", Train: 400, Eval: 300, Seed: 9}
	postAs[predictResponse](t, mts, "/v1/predict", pReq)
	code, pr2 := postAs[predictResponse](t, mts, "/v1/predict", pReq)
	if code != http.StatusOK || !pr2.Cached {
		t.Fatalf("repeat predict: code %d cached %v, want cached 200", code, pr2.Cached)
	}
	code, prRef := postAs[predictResponse](t, pts, "/v1/predict", pReq)
	if code != http.StatusOK {
		t.Fatalf("memo-disabled predict: code %d", code)
	}
	for _, f := range []struct {
		name      string
		got, want float64
	}{
		{"predicted", pr2.Predicted, prRef.Predicted},
		{"measured", pr2.Measured, prRef.Measured},
		{"abs_err_pct", pr2.AbsErrPct, prRef.AbsErrPct},
	} {
		if math.Float64bits(f.got) != math.Float64bits(f.want) {
			t.Errorf("cached predict %s bits %016x != recomputed %016x", f.name, math.Float64bits(f.got), math.Float64bits(f.want))
		}
	}

	// Rank: whole-ranking replay, per-entry figures bit-identical.
	rReq := rankRequest{Width: 5, Cycles: 200, Seed: 3}
	postAs[rankResponse](t, mts, "/v1/rank", rReq)
	code, rk2 := postAs[rankResponse](t, mts, "/v1/rank", rReq)
	if code != http.StatusOK || !rk2.Cached {
		t.Fatalf("repeat rank: code %d cached %v, want cached 200", code, rk2.Cached)
	}
	code, rkRef := postAs[rankResponse](t, pts, "/v1/rank", rReq)
	if code != http.StatusOK {
		t.Fatalf("memo-disabled rank: code %d", code)
	}
	if rk2.Best != rkRef.Best || len(rk2.Ranking) != len(rkRef.Ranking) {
		t.Fatalf("cached ranking shape diverged: cached %+v, recomputed %+v", rk2, rkRef)
	}
	for i := range rk2.Ranking {
		got, want := rk2.Ranking[i], rkRef.Ranking[i]
		if got.Name != want.Name || got.Model != want.Model || got.Degraded != want.Degraded || got.Err != want.Err {
			t.Errorf("ranking[%d] metadata diverged: cached %+v, recomputed %+v", i, got, want)
		}
		if math.Float64bits(got.Power) != math.Float64bits(want.Power) {
			t.Errorf("ranking[%d] power bits %016x != recomputed %016x", i, math.Float64bits(got.Power), math.Float64bits(want.Power))
		}
	}

	// BDD: exact node counts replay.
	bReq := bddRequest{Function: "majority", Vars: 10}
	postAs[bddResponse](t, mts, "/v1/bdd", bReq)
	code, bd2 := postAs[bddResponse](t, mts, "/v1/bdd", bReq)
	if code != http.StatusOK || !bd2.Cached {
		t.Fatalf("repeat bdd: code %d cached %v, want cached 200", code, bd2.Cached)
	}
	code, bdRef := postAs[bddResponse](t, pts, "/v1/bdd", bReq)
	if code != http.StatusOK {
		t.Fatalf("memo-disabled bdd: code %d", code)
	}
	if bd2.Nodes != bdRef.Nodes || bd2.Degraded != bdRef.Degraded {
		t.Errorf("cached bdd diverged: cached %+v, recomputed %+v", bd2, bdRef)
	}
}

// TestMemoStatsEndpoint checks the /v1/stats memo gauges: enabled flag,
// hit/miss/store counters, and the derived hit rate.
func TestMemoStatsEndpoint(t *testing.T) {
	_, ts := newMemoTestServer(t, Config{Workers: 2, QueueDepth: 8, RequestTimeout: 10 * time.Second, MaxSteps: 50_000_000})
	req := simulateRequest{Circuit: "adder", Width: 4, Cycles: 100, Seed: 1}
	for i := 0; i < 2; i++ {
		if code, _ := postAs[simulateResponse](t, ts, "/v1/simulate", req); code != http.StatusOK {
			t.Fatalf("simulate %d: code %d", i, code)
		}
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if !st.MemoEnabled {
		t.Error("stats report memo_enabled=false on a memo-enabled server")
	}
	if st.Memo.Misses < 1 || st.Memo.Hits < 1 || st.Memo.Stores < 1 {
		t.Errorf("memo gauges missing traffic after hit+miss: %+v", st.Memo)
	}
	if st.MemoHitRate <= 0 {
		t.Errorf("memo_hit_rate = %v after a cache hit, want > 0", st.MemoHitRate)
	}

	// A disabled server reports the flag off and zero gauges.
	_, dts := newMemoTestServer(t, Config{Workers: 2, QueueDepth: 8, RequestTimeout: 10 * time.Second, MaxSteps: 50_000_000, MemoMaxBytes: -1})
	if code, r := postAs[simulateResponse](t, dts, "/v1/simulate", req); code != http.StatusOK || r.Cached {
		t.Fatalf("memo-disabled simulate: code %d cached %v", code, r.Cached)
	}
	dresp, err := dts.Client().Get(dts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	var dst Stats
	if err := json.NewDecoder(dresp.Body).Decode(&dst); err != nil {
		t.Fatal(err)
	}
	if dst.MemoEnabled || dst.Memo.Misses != 0 {
		t.Errorf("memo-disabled server reports memo stats: %+v", dst.Memo)
	}
}

// TestMemoSingleflightHTTP drives request collapsing end to end: N
// concurrent identical simulate requests perform exactly one
// computation, and exactly one response reports itself fresh.
func TestMemoSingleflightHTTP(t *testing.T) {
	const n = 8
	s, ts := newMemoTestServer(t, Config{Workers: n, QueueDepth: 2 * n, RequestTimeout: 10 * time.Second, MaxSteps: 50_000_000})
	req := simulateRequest{Circuit: "multiplier", Width: 5, Cycles: 400, Seed: 7}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		code int
		resp simulateResponse
		err  error
	}
	results := make(chan result, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := ts.Client().Post(ts.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
			if err != nil {
				results <- result{err: err}
				return
			}
			defer resp.Body.Close()
			var out simulateResponse
			err = json.NewDecoder(resp.Body).Decode(&out)
			results <- result{code: resp.StatusCode, resp: out, err: err}
		}()
	}
	fresh := 0
	for i := 0; i < n; i++ {
		r := <-results
		if r.err != nil {
			t.Fatal(r.err)
		}
		if r.code != http.StatusOK {
			t.Fatalf("concurrent simulate answered %d, want 200", r.code)
		}
		if !r.resp.Cached {
			fresh++
		}
	}
	if fresh != 1 {
		t.Errorf("%d of %d identical concurrent requests computed, want exactly 1", fresh, n)
	}
	m := s.Snapshot().Memo
	if m.Misses != 1 || m.Stores != 1 {
		t.Errorf("want 1 computation and 1 store across %d identical requests, got %+v", n, m)
	}
	if m.Hits+m.Collapsed != n-1 {
		t.Errorf("want %d requests served without computing (hits+collapsed), got %+v", n-1, m)
	}
}

// TestMemoFaultPlanRegression pins the cache-poisoning fix: while a
// fault plan is armed the estimate cache is bypassed entirely — chaos
// traffic is neither absorbed by earlier entries nor able to store
// fault-shaped results — and caching resumes once the plan clears.
func TestMemoFaultPlanRegression(t *testing.T) {
	s, ts := newMemoTestServer(t, Config{
		Workers: 2, QueueDepth: 8, RequestTimeout: 5 * time.Second,
		MaxSteps: 20_000_000, CheckInterval: 32,
		Retry:            resilience.RetryPolicy{MaxAttempts: 1, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond, Multiplier: 1},
		FailureThreshold: 1000, // keep the breaker out of this test
	})
	req := simulateRequest{Circuit: "adder", Width: 6, Cycles: 200, Seed: 5}

	code, warm := postAs[simulateResponse](t, ts, "/v1/simulate", req)
	if code != http.StatusOK || warm.Cached {
		t.Fatalf("warm-up: code %d cached %v, want fresh 200", code, warm.Cached)
	}
	st1 := s.Snapshot().Memo
	if st1.Stores == 0 {
		t.Fatalf("warm-up did not store: %+v", st1)
	}

	// Armed: the identical request has a cached answer available, but it
	// must NOT be served — the injected fault has to surface.
	s.SetFaultPlan(budget.FaultPlan{FailAtCheck: 1})
	for i := 0; i < 3; i++ {
		code, body := postAs[map[string]any](t, ts, "/v1/simulate", req)
		if code != http.StatusServiceUnavailable {
			t.Fatalf("request %d under FailAtCheck=1 answered %d (body %v), want 503: the cache must not mask injected faults", i, code, body)
		}
	}
	if st2 := s.Snapshot().Memo; st2 != st1 {
		t.Fatalf("estimate cache touched while a fault plan was armed:\n before %+v\n after  %+v", st1, st2)
	}

	// Disarmed: the pre-chaos entry is intact and replays bit-identically.
	s.SetFaultPlan(budget.FaultPlan{})
	code, replay := postAs[simulateResponse](t, ts, "/v1/simulate", req)
	if code != http.StatusOK || !replay.Cached {
		t.Fatalf("post-chaos replay: code %d cached %v, want cached 200", code, replay.Cached)
	}
	st3 := s.Snapshot().Memo
	if st3.Hits != st1.Hits+1 {
		t.Errorf("post-chaos replay did not hit: before %+v, after %+v", st1, st3)
	}
	if st3.Stores != st1.Stores {
		t.Errorf("post-chaos replay re-stored: before %+v, after %+v", st1, st3)
	}
	if math.Float64bits(replay.Power) != math.Float64bits(warm.Power) {
		t.Errorf("replayed power bits %016x != original %016x", math.Float64bits(replay.Power), math.Float64bits(warm.Power))
	}
}

// TestMemoDegradedNeverCached pins the other half of the honesty
// invariant: a naturally budget-degraded result (no fault plan — the
// step allowance is simply too small for an exact BDD build) is
// recomputed every time, never stored, never served as cached.
func TestMemoDegradedNeverCached(t *testing.T) {
	s, ts := newMemoTestServer(t, Config{
		Workers: 2, QueueDepth: 8, RequestTimeout: 5 * time.Second,
		MaxSteps: 2_000, CheckInterval: 8,
	})
	req := bddRequest{Function: "parity", Vars: 12, AllowDegraded: true}
	for i := 0; i < 2; i++ {
		code, resp := postAs[bddResponse](t, ts, "/v1/bdd", req)
		if code != http.StatusOK {
			t.Fatalf("bdd %d: code %d", i, code)
		}
		if !resp.Degraded {
			t.Fatalf("bdd %d: MaxSteps=2000 did not degrade the exact build; tighten the budget", i)
		}
		if resp.Cached {
			t.Fatalf("bdd %d: degraded estimate served from cache", i)
		}
	}
	m := s.Snapshot().Memo
	if m.Stores != 0 || m.NegStores != 0 {
		t.Fatalf("degraded result was stored: %+v", m)
	}
	if m.Misses != 2 {
		t.Errorf("want 2 computations for 2 degraded requests, got %+v", m)
	}
}
