// Package powerd is the resilient estimation service: it exposes the
// repo's estimation engines (gate-level simulation, candidate ranking,
// BDD sizing, macro-model prediction) over HTTP/JSON and keeps them
// available under partial failure. Every request runs under a fresh
// resource budget (deadline + step allowance), behind a per-subsystem
// circuit breaker, inside a retry loop with jittered exponential
// backoff. Admission control bounds the number of queued requests and
// sheds the excess with 429 + Retry-After instead of letting latency
// grow without bound. A runtime-settable fault plan injects budget
// trips into the live serving path, which is how the chaos soak test
// exercises the whole failure lattice.
package powerd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"hlpower/internal/bdd"
	"hlpower/internal/budget"
	"hlpower/internal/cluster"
	"hlpower/internal/hlerr"
	"hlpower/internal/jobs"
	"hlpower/internal/memo"
	"hlpower/internal/resilience"
	"hlpower/internal/service"
)

// Subsystems is the set of breaker-guarded estimation engines, one per
// endpoint. Each has an independent breaker so a faulting simulator
// does not take down ranking or BDD sizing.
var Subsystems = []string{"sim", "rank", "bdd", "predict"}

// Config tunes the service. The zero value is usable: DefaultConfig
// fills every field NewServer would otherwise default.
type Config struct {
	// Workers is the number of requests estimated concurrently.
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a
	// worker slot before the server starts shedding with 429.
	QueueDepth int
	// RequestTimeout is the per-request budget deadline.
	RequestTimeout time.Duration
	// MaxSteps is the per-request step allowance (0 = unlimited).
	MaxSteps int64
	// CheckInterval is the budget check spacing; small values make
	// injected faults fire early, large values amortize check cost.
	CheckInterval int64
	// Retry governs re-execution of failed estimation attempts.
	Retry resilience.RetryPolicy
	// FailureThreshold, OpenTimeout, HalfOpenProbes parameterize every
	// subsystem breaker.
	FailureThreshold int
	OpenTimeout      time.Duration
	HalfOpenProbes   int
	// HedgeDelay, when positive, arms a hedged backup attempt for
	// idempotent simulation requests that straggle past the delay.
	HedgeDelay time.Duration
	// MemoMaxBytes sizes the content-addressed estimate cache: 0 means
	// the memo package default (64 MiB), negative disables memoization
	// entirely.
	MemoMaxBytes int64
	// MemoShards is the estimate cache's shard count (0 = default).
	MemoShards int
	// DrainTimeout bounds graceful shutdown: how long Drain waits for
	// in-flight requests, and the Retry-After hint handed to requests
	// arriving mid-drain (0 = DefaultConfig's 30s).
	DrainTimeout time.Duration
	// BatchTimeout bounds one whole /v1/batch request, buffered or
	// streamed; each item inside it still runs under a fresh
	// RequestTimeout/MaxSteps budget of its own (0 = DefaultConfig's 2m).
	BatchTimeout time.Duration
	// BatchSteps is the aggregate step ceiling across one batch's
	// locally computed items: once the batch's summed StepsUsed reaches
	// it, every remaining item fails with a typed budget error (0 =
	// DefaultConfig's 64 requests' worth of MaxSteps; negative =
	// unlimited).
	BatchSteps int64
	// JobWorkers is the number of optimization jobs run concurrently
	// (default 2); JobQueueDepth bounds queued-but-unstarted jobs before
	// /v1/optimize sheds with 429 (default 16).
	JobWorkers    int
	JobQueueDepth int
	// JobCheckpointEvery is how many candidate evaluations may elapse
	// between periodic checkpoints (default 8); JobStallTimeout is the
	// per-candidate watchdog limit (default 30s).
	JobCheckpointEvery int
	JobStallTimeout    time.Duration
	// JobEvalSteps is the per-candidate step budget (0 = MaxSteps);
	// JobMaxTotalSteps caps one job's aggregate steps across all its
	// candidates (0 = unlimited).
	JobEvalSteps     int64
	JobMaxTotalSteps int64
	// JobStore persists job checkpoints. nil means in-memory (jobs
	// survive drain within the process, not a restart); cmd/powerd
	// passes a file-backed store for crash recovery.
	JobStore jobs.Store
	// CodegenAfter is the artifact hotness threshold after which a hot
	// netlist's compiled artifact is promoted to the specialized
	// (codegen) kernel tier, built off the request path. Zero means
	// service.DefaultCodegenAfter; negative disables promotion.
	CodegenAfter int
	// Clock drives retry backoff and breaker timeouts; tests swap in
	// resilience.Fake for deterministic schedules.
	Clock resilience.Clock
}

// DefaultConfig returns production-shaped settings.
func DefaultConfig() Config {
	return Config{
		Workers:          runtime.GOMAXPROCS(0),
		QueueDepth:       64,
		RequestTimeout:   5 * time.Second,
		MaxSteps:         50_000_000,
		CheckInterval:    budget.DefaultCheckInterval,
		Retry:            resilience.DefaultRetry(),
		FailureThreshold: 5,
		OpenTimeout:      time.Second,
		HalfOpenProbes:   1,
		DrainTimeout:     30 * time.Second,
		BatchTimeout:     2 * time.Minute,
		BatchSteps:       64 * 50_000_000,
		Clock:            resilience.Wall{},
	}
}

func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.Workers <= 0 {
		c.Workers = d.Workers
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.MaxSteps == 0 {
		c.MaxSteps = d.MaxSteps
	}
	if c.CheckInterval <= 0 {
		c.CheckInterval = d.CheckInterval
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry = d.Retry
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = d.FailureThreshold
	}
	if c.OpenTimeout <= 0 {
		c.OpenTimeout = d.OpenTimeout
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = d.HalfOpenProbes
	}
	if c.DrainTimeout <= 0 {
		c.DrainTimeout = d.DrainTimeout
	}
	if c.BatchTimeout <= 0 {
		c.BatchTimeout = d.BatchTimeout
	}
	if c.BatchSteps == 0 {
		c.BatchSteps = d.BatchSteps
	}
	if c.Clock == nil {
		c.Clock = d.Clock
	}
	if c.JobEvalSteps == 0 {
		c.JobEvalSteps = c.MaxSteps
	}
	return c
}

// Transition is one recorded breaker state change, for observability.
type Transition struct {
	Breaker string    `json:"breaker"`
	From    string    `json:"from"`
	To      string    `json:"to"`
	At      time.Time `json:"at"`
}

// Server is the estimation service. Create with NewServer; serve its
// Handler; stop with Drain.
type Server struct {
	cfg      Config
	clock    resilience.Clock
	slots    chan struct{}
	waiting  atomic.Int64
	draining atomic.Bool
	inflight sync.WaitGroup
	breakers map[string]*resilience.Breaker
	plan     atomic.Pointer[budget.FaultPlan]
	reqSeq   atomic.Int64
	memo     *memo.Cache // nil when Config.MemoMaxBytes < 0

	// keys and svc are the transport-agnostic estimation layer: keys
	// derives content identities, svc computes responses. The handlers
	// in this package only decode, admit, cache, and route.
	keys service.Keys
	svc  *service.Local
	// cluster is this server's ring membership, nil in single-node mode.
	// Written once by EnableCluster before serving starts.
	cluster *cluster.Node
	// jobsMgr is the durable optimization-job engine behind /v1/optimize.
	jobsMgr *jobs.Manager

	drainAt atomic.Int64 // drain deadline, unix nanos (0 = not draining)

	served     atomic.Int64 // requests answered 200
	rejected   atomic.Int64 // requests answered 4xx/5xx
	shed       atomic.Int64 // subset of rejected: 429 load-shed
	forwarded  atomic.Int64 // requests answered by a peer's response
	fallbacks  atomic.Int64 // forward attempts shed to local compute
	peerServed atomic.Int64 // candidate evaluations served for peers
	batches    atomic.Int64 // batch requests served (buffered + streamed)
	batchItems atomic.Int64 // items carried by those batches

	mu          sync.Mutex
	transitions []Transition
	bddTables   bdd.Stats // cumulative manager table traffic (under mu)

	mux *http.ServeMux
}

// NewServer builds a ready-to-serve estimation service.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		clock:    cfg.Clock,
		slots:    make(chan struct{}, cfg.Workers),
		breakers: make(map[string]*resilience.Breaker, len(Subsystems)),
	}
	if cfg.MemoMaxBytes >= 0 {
		s.memo = memo.New(memo.Options{MaxBytes: cfg.MemoMaxBytes, Shards: cfg.MemoShards})
	}
	for _, name := range Subsystems {
		s.breakers[name] = resilience.NewBreaker(resilience.BreakerConfig{
			Name:             name,
			FailureThreshold: cfg.FailureThreshold,
			OpenTimeout:      cfg.OpenTimeout,
			HalfOpenProbes:   cfg.HalfOpenProbes,
			Clock:            cfg.Clock,
			OnTransition:     s.recordTransition,
		})
	}
	s.keys = service.Keys{MaxSteps: cfg.MaxSteps}
	s.svc = &service.Local{
		Keys:         s.keys,
		Cache:        s.estimateCache,
		OnBDDStats:   s.recordBDDStats,
		RemoteCand:   s.remoteCand,
		CodegenAfter: cfg.CodegenAfter,
	}
	s.jobsMgr = jobs.New(jobs.Config{
		Workers:         cfg.JobWorkers,
		QueueDepth:      cfg.JobQueueDepth,
		CheckpointEvery: cfg.JobCheckpointEvery,
		StallTimeout:    cfg.JobStallTimeout,
		Store:           cfg.JobStore,
		Cache:           s.estimateCache,
		Plan:            s.plan.Load,
	})
	// Pick up whatever non-terminal checkpoints the store already holds
	// (a restarted node, or snapshots inherited from a dead ring peer).
	// Corrupt snapshots are skipped fail-closed and surface through the
	// engine's save_errors counter.
	_, _ = s.jobsMgr.Recover()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /readyz", s.handleReady)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("POST /v1/simulate", s.handleSimulate)
	s.mux.HandleFunc("POST /v1/rank", s.handleRank)
	s.mux.HandleFunc("POST /v1/bdd", s.handleBDD)
	s.mux.HandleFunc("POST /v1/predict", s.handlePredict)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/batch/stream", s.handleBatchStream)
	s.mux.HandleFunc("POST /v1/optimize", s.handleOptimize)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	return s
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// SetFaultPlan arms (or, with a zero plan, disarms) fault injection on
// every subsequently admitted request. Each request derives a unique
// seed so Prob-mode chaos decorrelates across requests.
func (s *Server) SetFaultPlan(p budget.FaultPlan) {
	if p == (budget.FaultPlan{}) {
		s.plan.Store(nil)
		return
	}
	s.plan.Store(&p)
}

// Drain stops admitting work and waits for in-flight requests to
// finish, or for ctx to expire. New requests are answered 503 with
// Connection: close and a Retry-After spanning the remaining drain
// window (taken from ctx's deadline, or Config.DrainTimeout without
// one). In cluster mode the gossip loop stops first, so peers suspect
// this node and stop forwarding to it while it finishes up.
func (s *Server) Drain(ctx context.Context) error {
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = s.clock.Now().Add(s.cfg.DrainTimeout)
	}
	s.drainAt.Store(deadline.UnixNano())
	s.draining.Store(true)
	if s.cluster != nil {
		s.cluster.Stop()
	}
	// Drain the job engine alongside the request drain: each running job
	// checkpoints at its next candidate boundary and hands off through
	// the store, while in-flight HTTP requests finish normally.
	jobsDone := make(chan error, 1)
	go func() { jobsDone <- s.jobsMgr.Drain(ctx) }()
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return fmt.Errorf("powerd: drain interrupted: %w", ctx.Err())
	}
	if err := <-jobsDone; err != nil {
		return fmt.Errorf("powerd: job drain interrupted: %w", err)
	}
	return nil
}

// Breaker exposes a subsystem's breaker (nil for unknown names) so
// tests and operators can inspect state and counters.
func (s *Server) Breaker(name string) *resilience.Breaker { return s.breakers[name] }

// estimateCache returns the content-addressed estimate cache, or nil
// when memoization is disabled — including the whole time a fault plan
// is armed. Bypassing (not just skipping stores) while chaos is active
// keeps two promises at once: an injected fault can never be laundered
// into a cached "fresh" result, and chaos traffic always exercises the
// real estimation path rather than being absorbed by earlier hits.
func (s *Server) estimateCache() *memo.Cache {
	if s.plan.Load() != nil {
		return nil
	}
	return s.memo
}

// memoDo runs compute through the estimate cache under key k, or
// directly when memoization is off. The returned flag reports whether
// the value was replayed from the cache (or shared with a concurrent
// identical computation) rather than computed by this call.
func (s *Server) memoDo(k memo.Key, compute func() (val any, size int64, cacheable bool, err error)) (any, bool, error) {
	c := s.estimateCache()
	if c == nil {
		v, _, _, err := compute()
		return v, false, err
	}
	return c.Do(k, compute)
}

// Stats is the service-level counter snapshot served at /v1/stats.
type Stats struct {
	Served      int64                              `json:"served"`
	Rejected    int64                              `json:"rejected"`
	Shed        int64                              `json:"shed"`
	Waiting     int64                              `json:"waiting"`
	Draining    bool                               `json:"draining"`
	Breakers    map[string]resilience.BreakerStats `json:"breakers"`
	Transitions []Transition                       `json:"transitions"`
	// BDDTables aggregates unique-table and ITE computed-table traffic
	// (lookups, hits, misses) across every BDD request the server has
	// run, so operators can watch hash-consing effectiveness live.
	BDDTables bdd.Stats `json:"bdd_tables"`
	// MemoEnabled reports whether the content-addressed estimate cache
	// is configured; Memo carries its gauges (hits, misses, collapsed
	// waiters, stores, evictions, bytes) and MemoHitRate the fraction of
	// lookups served without computing.
	MemoEnabled bool       `json:"memo_enabled"`
	Memo        memo.Stats `json:"memo"`
	MemoHitRate float64    `json:"memo_hit_rate"`
	// Batches counts /v1/batch requests served (buffered or streamed);
	// BatchItems is how many items those batches carried.
	Batches    int64 `json:"batches"`
	BatchItems int64 `json:"batch_items"`
	// Jobs carries the optimization-job engine's gauges and totals:
	// queued/running jobs, completions by outcome, checkpoints written,
	// checkpoint resumes, watchdog stalls, and shed submissions.
	Jobs jobs.Counters `json:"jobs"`
	// Kernel carries the fused-kernel gauges: compiled artifacts, the
	// fused-op mix and absorbed-dispatch totals, and scratch-pool hit
	// rate — the observability for the superinstruction tier.
	Kernel service.KernelStats `json:"kernel"`
	// Cluster fields, present only when cluster mode is enabled:
	// Forwarded counts requests answered with a peer owner's response,
	// Fallbacks counts forward attempts that shed to local compute
	// (dead owner, open breaker, transport failure, or an overloaded
	// owner), and PeerServed counts candidate evaluations this node
	// computed on behalf of peers' rank fan-outs.
	Forwarded  int64          `json:"forwarded,omitempty"`
	Fallbacks  int64          `json:"fallbacks,omitempty"`
	PeerServed int64          `json:"peer_served,omitempty"`
	Cluster    *cluster.Stats `json:"cluster,omitempty"`
}

// Snapshot returns the current counters.
func (s *Server) Snapshot() Stats {
	st := Stats{
		Served:   s.served.Load(),
		Rejected: s.rejected.Load(),
		Shed:     s.shed.Load(),
		Waiting:  s.waiting.Load(),
		Draining: s.draining.Load(),
		Breakers: make(map[string]resilience.BreakerStats, len(s.breakers)),
	}
	for name, b := range s.breakers {
		st.Breakers[name] = b.Stats()
	}
	if s.memo != nil {
		st.MemoEnabled = true
		st.Memo = s.memo.Stats()
		st.MemoHitRate = st.Memo.HitRate()
	}
	st.Batches = s.batches.Load()
	st.BatchItems = s.batchItems.Load()
	st.Jobs = s.jobsMgr.Counters()
	st.Kernel = s.svc.KernelStats()
	if s.cluster != nil {
		cs := s.cluster.Stats()
		st.Cluster = &cs
		st.Forwarded = s.forwarded.Load()
		st.Fallbacks = s.fallbacks.Load()
		st.PeerServed = s.peerServed.Load()
	}
	s.mu.Lock()
	st.Transitions = append(st.Transitions, s.transitions...)
	st.BDDTables = s.bddTables
	s.mu.Unlock()
	return st
}

// recordBDDStats folds one manager's table traffic into the service
// totals. Entries/Cap describe a single manager, so only the traffic
// counters accumulate meaningfully; the occupancy fields keep the last
// manager's values as a recent-size sample.
func (s *Server) recordBDDStats(st bdd.Stats) {
	s.mu.Lock()
	acc := &s.bddTables
	acc.Unique.Lookups += st.Unique.Lookups
	acc.Unique.Hits += st.Unique.Hits
	acc.Unique.Misses += st.Unique.Misses
	acc.Unique.Entries, acc.Unique.Cap = st.Unique.Entries, st.Unique.Cap
	acc.ITE.Lookups += st.ITE.Lookups
	acc.ITE.Hits += st.ITE.Hits
	acc.ITE.Misses += st.ITE.Misses
	acc.ITE.Entries, acc.ITE.Cap = st.ITE.Entries, st.ITE.Cap
	s.mu.Unlock()
}

func (s *Server) recordTransition(name string, from, to resilience.BreakerState, at time.Time) {
	s.mu.Lock()
	s.transitions = append(s.transitions, Transition{
		Breaker: name, From: from.String(), To: to.String(), At: at,
	})
	s.mu.Unlock()
}

// ---------------------------------------------------------------------
// Admission control.

// admit implements bounded-queue admission: a request either takes a
// worker slot immediately, waits while fewer than QueueDepth requests
// are already waiting, or is shed. The returned release function must
// be called exactly once when admission succeeded.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (release func(), ok bool) {
	if s.draining.Load() {
		s.rejectDraining(w)
		return nil, false
	}
	s.inflight.Add(1)
	// Re-check after joining the in-flight group so Drain cannot miss
	// a request that slipped past the first check.
	if s.draining.Load() {
		s.inflight.Done()
		s.rejectDraining(w)
		return nil, false
	}
	select {
	case s.slots <- struct{}{}: // fast path: free worker
	default:
		if s.waiting.Add(1) > int64(s.cfg.QueueDepth) {
			s.waiting.Add(-1)
			s.inflight.Done()
			s.shed.Add(1)
			s.reject(w, http.StatusTooManyRequests, "queue full", s.retryAfterHint())
			return nil, false
		}
		select {
		case s.slots <- struct{}{}:
			s.waiting.Add(-1)
		case <-r.Context().Done():
			s.waiting.Add(-1)
			s.inflight.Done()
			s.reject(w, http.StatusServiceUnavailable, "client gone while queued", 0)
			return nil, false
		}
	}
	return func() {
		<-s.slots
		s.inflight.Done()
	}, true
}

// rejectDraining answers a request that arrived mid-drain: 503 with
// Connection: close — this server's listener is about to go away, so
// the client must not reuse the connection — and a Retry-After
// covering the rest of the drain window, after which a restarted
// listener (or a load balancer's next backend) can take the retry.
func (s *Server) rejectDraining(w http.ResponseWriter) {
	w.Header().Set("Connection", "close")
	ra := s.cfg.RequestTimeout
	if at := s.drainAt.Load(); at > 0 {
		if rem := time.Unix(0, at).Sub(s.clock.Now()); rem > 0 {
			ra = rem
		} else {
			ra = time.Second
		}
	}
	s.reject(w, http.StatusServiceUnavailable, "draining", ra)
}

// retryAfterHint estimates how long a shed client should wait: one
// request timeout spread across the worker pool.
func (s *Server) retryAfterHint() time.Duration {
	d := s.cfg.RequestTimeout / time.Duration(s.cfg.Workers)
	if d < time.Second {
		d = time.Second
	}
	return d
}

// ---------------------------------------------------------------------
// Resilient execution.

// newBudget builds the per-attempt budget: request deadline, step
// allowance, and — when chaos is armed — a per-request fault plan with
// a derived seed.
func (s *Server) newBudget(ctx context.Context) *budget.Budget {
	opts := []budget.Option{
		budget.WithContext(ctx),
		budget.WithTimeout(s.cfg.RequestTimeout),
		budget.WithCheckInterval(s.cfg.CheckInterval),
	}
	if s.cfg.MaxSteps > 0 {
		opts = append(opts, budget.WithMaxSteps(s.cfg.MaxSteps))
	}
	if p := s.plan.Load(); p != nil {
		plan := *p
		if plan.Prob > 0 {
			plan.Seed += s.reqSeq.Add(1)
		}
		opts = append(opts, budget.WithFaultPlan(plan))
	}
	return budget.New(opts...)
}

// execute runs one estimation op behind the named subsystem's breaker,
// inside the retry loop, with a fresh budget per attempt (budgets are
// sticky, so a tripped one must never be reused). Input errors are
// marked Permanent so they neither trip the breaker nor burn retries;
// an open breaker is also Permanent so callers fail fast to 503.
func (s *Server) execute(ctx context.Context, name string, op func(b *budget.Budget) (any, error)) (any, error) {
	br := s.breakers[name]
	var result any
	err := s.cfg.Retry.Do(ctx, s.clock, func(attempt int) error {
		if err := br.Allow(); err != nil {
			return resilience.Permanent(err)
		}
		v, err := resilience.SafeValue(func() (any, error) {
			return op(s.newBudget(ctx))
		})
		if err != nil && hlerr.IsInput(err) {
			err = resilience.Permanent(err)
		}
		br.Record(err)
		if err == nil {
			result = v
		}
		return err
	})
	return result, err
}

// ---------------------------------------------------------------------
// HTTP plumbing.

type errorBody struct {
	Error     string `json:"error"`
	Kind      string `json:"kind"`
	Breaker   string `json:"breaker,omitempty"`
	Attempted string `json:"attempted,omitempty"`
}

// reject writes a JSON error with an optional Retry-After hint.
func (s *Server) reject(w http.ResponseWriter, code int, msg string, retryAfter time.Duration) {
	s.rejected.Add(1)
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	writeJSON(w, code, errorBody{Error: msg, Kind: kindForCode(code)})
}

func kindForCode(code int) string {
	switch code {
	case http.StatusTooManyRequests:
		return "shed"
	case http.StatusServiceUnavailable:
		return "unavailable"
	case http.StatusBadRequest:
		return "input"
	default:
		return "internal"
	}
}

// fail maps an estimation error onto an HTTP status: input errors are
// the client's fault (400), an open breaker or exhausted budget is a
// temporary capacity condition (503 + Retry-After), anything else is a
// 500.
func (s *Server) fail(w http.ResponseWriter, err error) {
	var open *resilience.OpenError
	switch {
	case errors.As(err, &open):
		s.rejected.Add(1)
		ra := open.RetryAfter
		if ra < time.Second {
			ra = time.Second
		}
		w.Header().Set("Retry-After", strconv.Itoa(int(ra/time.Second)))
		writeJSON(w, http.StatusServiceUnavailable, errorBody{
			Error: err.Error(), Kind: "breaker-open", Breaker: open.Name,
		})
	case hlerr.IsInput(err):
		s.reject(w, http.StatusBadRequest, err.Error(), 0)
	case errors.Is(err, budget.ErrExceeded):
		s.rejected.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, errorBody{
			Error: err.Error(), Kind: "budget-exceeded",
		})
	default:
		s.reject(w, http.StatusInternalServerError, err.Error(), 0)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// decode parses a JSON request body under the single-request size cap.
func decode(r *http.Request, v any) error {
	return decodeLimit(r, v, 1<<20)
}

// decodeLimit parses a JSON request body, bounding its size to limit
// bytes.
func decodeLimit(r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return hlerr.Errorf("powerd.decode", "bad request body: %v", err)
	}
	return nil
}

// ---------------------------------------------------------------------
// Health endpoints.

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleReady reports ready only when the server is accepting work:
// not draining, and at least one breaker is not open.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	for _, b := range s.breakers {
		if b.State() != resilience.Open {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
			return
		}
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "all breakers open"})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}
