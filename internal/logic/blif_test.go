package logic

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteBLIFCombinational(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.Add(And, a, b)
	y := n.Add(Xor, x, a)
	n.MarkOutput(y)
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, n, "tiny"); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	for _, want := range []string{".model tiny", ".inputs a b", ".outputs out0", ".names", ".end"} {
		if !strings.Contains(s, want) {
			t.Errorf("missing %q in BLIF:\n%s", want, s)
		}
	}
}

func TestWriteBLIFSequential(t *testing.T) {
	n := New()
	d := n.AddInput("d")
	q := n.Add(DFF, d)
	n.SetInit(q, true)
	n.MarkOutput(q)
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, n, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), ".latch d n1 re clk 1") {
		t.Errorf("latch line missing or wrong:\n%s", buf.String())
	}
}

func TestWriteBLIFRejectsLatches(t *testing.T) {
	n := New()
	en := n.AddInput("en")
	d := n.AddInput("d")
	l := n.Add(Latch, en, d)
	n.MarkOutput(l)
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, n, ""); err == nil {
		t.Error("transparent latch should be rejected")
	}
}

func TestBLIFNameSanitization(t *testing.T) {
	n := New()
	a := n.AddInput("x[0]")
	n.MarkOutput(n.Add(Not, a))
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, n, ""); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "[") {
		t.Error("names not sanitized")
	}
}
