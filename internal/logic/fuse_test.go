package logic

import (
	"math/rand"
	"reflect"
	"testing"
)

// fuseOf compiles and fuses a netlist, failing the test on any error.
func fuseOf(t *testing.T, n *Netlist) (*Program, *FusedProgram) {
	t.Helper()
	p, err := Compile(n)
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	return p, Fuse(p)
}

// checkOutsCover asserts the fundamental fusion invariant: the fused
// program writes every source-program destination net exactly once.
func checkOutsCover(t *testing.T, p *Program, fp *FusedProgram) {
	t.Helper()
	seen := make(map[int32]int)
	for _, o := range fp.Outs {
		seen[o]++
	}
	if len(fp.Outs) != p.NumInstrs() {
		t.Fatalf("fused outs %d, want one per source instruction %d", len(fp.Outs), p.NumInstrs())
	}
	for _, o := range p.Outs {
		if seen[o] != 1 {
			t.Fatalf("net %d written %d times by fused program, want 1", o, seen[o])
		}
	}
	if fp.NumGroups() != len(fp.Ops) || fp.NumInstrs() != p.NumInstrs() {
		t.Fatalf("group/instr accounting: groups=%d ops=%d instrs=%d/%d",
			fp.NumGroups(), len(fp.Ops), fp.NumInstrs(), p.NumInstrs())
	}
	if fp.Absorbed() != p.NumInstrs()-len(fp.Ops) {
		t.Fatalf("Absorbed()=%d, want %d", fp.Absorbed(), p.NumInstrs()-len(fp.Ops))
	}
	var mixTotal int64
	for _, c := range fp.Mix() {
		mixTotal += c
	}
	if mixTotal != int64(len(fp.Ops)) {
		t.Fatalf("mix total %d, want %d", mixTotal, len(fp.Ops))
	}
}

func TestFuseFullAdderAO22(t *testing.T) {
	// Carry-out of a full adder: both ANDs are single-use feeds of the
	// OR, so the carry cell fuses to AO22; the XOR feeding sum and
	// carry is dual-use and must stay unfused.
	n := New()
	a, b, cin := n.AddInput("a"), n.AddInput("b"), n.AddInput("cin")
	axb := n.Add(Xor, a, b)
	sum := n.Add(Xor, axb, cin)
	t1 := n.Add(And, a, b)
	t2 := n.Add(And, axb, cin)
	cout := n.Add(Or, t1, t2)
	n.MarkOutput(sum)
	n.MarkOutput(cout)

	p, fp := fuseOf(t, n)
	checkOutsCover(t, p, fp)
	mix := fp.Mix()
	if mix["ao22"] != 1 {
		t.Fatalf("mix = %v, want one ao22", mix)
	}
	if mix["xor2"] != 2 {
		t.Fatalf("mix = %v, want both xors unfused (axb is dual-use)", mix)
	}
	if fp.Absorbed() != 2 {
		t.Fatalf("Absorbed() = %d, want 2 (the two ANDs)", fp.Absorbed())
	}
}

func TestFuseChains(t *testing.T) {
	n := New()
	a, b, c, d := n.AddInput("a"), n.AddInput("b"), n.AddInput("c"), n.AddInput("d")
	and4 := n.Add(And, n.Add(And, n.Add(And, a, b), c), d)
	or3 := n.Add(Or, n.Add(Or, a, b), c)
	xor3 := n.Add(Xor, n.Add(Xor, c, d), a)
	n.MarkOutput(and4)
	n.MarkOutput(or3)
	n.MarkOutput(xor3)

	p, fp := fuseOf(t, n)
	checkOutsCover(t, p, fp)
	mix := fp.Mix()
	want := map[string]int64{"and4": 1, "or3": 1, "xor3": 1}
	if !reflect.DeepEqual(mix, want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
}

func TestFuseAOIAndNotShapes(t *testing.T) {
	n := New()
	a, b, c, d := n.AddInput("a"), n.AddInput("b"), n.AddInput("c"), n.AddInput("d")
	aoi21 := n.Add(Nor, n.Add(And, a, b), c)
	oai22 := n.Add(Nand, n.Add(Or, a, b), n.Add(Or, c, d))
	ornot := n.Add(Or, n.Add(Not, a), b)
	n.MarkOutput(aoi21)
	n.MarkOutput(oai22)
	n.MarkOutput(ornot)

	p, fp := fuseOf(t, n)
	checkOutsCover(t, p, fp)
	mix := fp.Mix()
	want := map[string]int64{"aoi21": 1, "oai22": 1, "ornot": 1}
	if !reflect.DeepEqual(mix, want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
}

func TestFuseMultiUseProducerStaysUnfused(t *testing.T) {
	// t1 feeds two ORs: absorbing it into either would drop the other
	// reader's operand, so it must stay a singleton.
	n := New()
	a, b, c, d := n.AddInput("a"), n.AddInput("b"), n.AddInput("c"), n.AddInput("d")
	t1 := n.Add(And, a, b)
	n.MarkOutput(n.Add(Or, t1, c))
	n.MarkOutput(n.Add(Or, t1, d))

	p, fp := fuseOf(t, n)
	checkOutsCover(t, p, fp)
	mix := fp.Mix()
	want := map[string]int64{"and2": 1, "or2": 2}
	if !reflect.DeepEqual(mix, want) {
		t.Fatalf("mix = %v, want %v", mix, want)
	}
	if fp.Absorbed() != 0 {
		t.Fatalf("Absorbed() = %d, want 0", fp.Absorbed())
	}
}

// randNetlist builds a random combinational netlist: a layer of inputs
// followed by gates whose fanins are uniform over all prior signals.
// Shared here with the sim package's equivalence tests (reimplemented
// there — sim cannot import logic test helpers).
func randNetlist(rng *rand.Rand, nInputs, nGates int) *Netlist {
	n := New()
	for i := 0; i < nInputs; i++ {
		n.AddInput("")
	}
	kinds := []Kind{And, Or, Nand, Nor, Xor, Xnor, Not, Buf, Mux, Const0, Const1}
	for g := 0; g < nGates; g++ {
		k := kinds[rng.Intn(len(kinds))]
		pick := func() int { return rng.Intn(len(n.Gates)) }
		switch k {
		case Not, Buf:
			n.Add(k, pick())
		case Mux:
			n.Add(k, pick(), pick(), pick())
		case Const0, Const1:
			n.Add(k)
		case And, Or, Nand, Nor:
			f := []int{pick(), pick()}
			for rng.Intn(4) == 0 {
				f = append(f, pick())
			}
			n.Add(k, f...)
		default:
			n.Add(k, pick(), pick())
		}
	}
	for i := 0; i < 1+rng.Intn(4); i++ {
		n.MarkOutput(rng.Intn(len(n.Gates)))
	}
	return n
}

func TestFuseRandomNetlistInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := randNetlist(rng, 2+rng.Intn(6), 1+rng.Intn(60))
		p, err := Compile(n)
		if err != nil {
			t.Fatalf("trial %d: Compile: %v", trial, err)
		}
		fp := Fuse(p)
		checkOutsCover(t, p, fp)
		// Determinism: fusing the same program again yields the same
		// fused program, byte for byte.
		if !reflect.DeepEqual(fp, Fuse(p)) {
			t.Fatalf("trial %d: Fuse is not deterministic", trial)
		}
	}
}

func TestFusedOpStrings(t *testing.T) {
	for op := FusedOp(0); op < FusedOpCount; op++ {
		if op.String() == "" || op.String() == "fusedop(?)" {
			t.Fatalf("op %d has no name", op)
		}
	}
	if FusedOpCount.String() != "fusedop(?)" {
		t.Fatalf("sentinel should not have a name")
	}
	if FAnd2.IsSuper() || !FAO22.IsSuper() {
		t.Fatalf("IsSuper misclassifies")
	}
}
