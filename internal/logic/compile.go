// Compilation of combinational netlists into a flat instruction stream.
// The interpreted simulator walks Netlist.Gates through interface-ish
// dispatch every cycle; Compile performs that walk once, levelizes the
// gates, and emits a dense gate-kind/fanin-index program that a kernel
// (notably the 64-lane bit-packed simulator in internal/sim) can execute
// with nothing but array indexing and bitwise ops in its inner loop.
package logic

import "hlpower/internal/hlerr"

// Program is the compiled, levelized form of a combinational netlist:
// one instruction per non-input gate, in an order where every
// instruction's fanins are written before it executes (levels ascend;
// ids break ties, so the layout is deterministic for a fixed netlist).
// Fields are flat parallel arrays so execution engines index them
// directly; Args for instruction i are Args[ArgOff[i]:ArgOff[i+1]].
type Program struct {
	Kinds  []Kind  // instruction opcode (the gate's cell kind)
	Outs   []int32 // destination signal id
	ArgOff []int32 // len(Kinds)+1 offsets into Args
	Args   []int32 // flattened fanin signal ids
	Levels []int32 // levelization depth of each instruction

	nGates  int
	nLevels int
}

// NumInstrs returns the number of compiled instructions (the netlist's
// non-input gates).
func (p *Program) NumInstrs() int { return len(p.Kinds) }

// NumGates returns the gate count of the source netlist, which is the
// size of the value array an executor must allocate.
func (p *Program) NumGates() int { return p.nGates }

// NumLevels returns the number of distinct levelization depths.
func (p *Program) NumLevels() int { return p.nLevels }

// Compile levelizes a combinational netlist into a Program. Sequential
// cells (DFF, EnDFF, Latch) are a typed input error: their cross-cycle
// state breaks the pure-dataflow contract the compiled kernels rely on,
// and callers are expected to keep those netlists on the interpreted
// path. Construction errors and combinational cycles propagate from the
// netlist exactly as TopoOrder reports them.
func Compile(n *Netlist) (*Program, error) {
	if n == nil {
		return nil, hlerr.Errorf("logic.Compile", "nil netlist")
	}
	if err := n.Err(); err != nil {
		return nil, err
	}
	if _, err := n.TopoOrder(); err != nil {
		return nil, err
	}
	for id, g := range n.Gates {
		if g.Kind.IsSequential() || g.Kind == Latch {
			return nil, hlerr.Errorf("logic.Compile", "gate %d (%v) is sequential; only combinational netlists compile", id, g.Kind)
		}
	}

	// Levelize: inputs and constants sit at level 0; a gate sits one
	// past its deepest fanin. Iterating ids in TopoOrder is unnecessary
	// here — combinational fanins always have smaller levels, and a
	// single ascending-id pass suffices only when fanins precede their
	// readers, which AddG guarantees (fanin ids must already exist).
	level := make([]int32, len(n.Gates))
	maxLevel := int32(0)
	for id, g := range n.Gates {
		if g.Kind == Input || g.Kind == Const0 || g.Kind == Const1 {
			continue
		}
		l := int32(0)
		for _, f := range g.Fanin {
			if level[f] > l {
				l = level[f]
			}
		}
		level[id] = l + 1
		if level[id] > maxLevel {
			maxLevel = level[id]
		}
	}

	// Bucket instructions by level (counting sort keeps the pass linear
	// and the within-level order ascending by id).
	counts := make([]int32, maxLevel+2)
	nInstr, nArgs := 0, 0
	for id, g := range n.Gates {
		if g.Kind == Input {
			continue
		}
		counts[level[id]+1]++
		nInstr++
		nArgs += len(g.Fanin)
	}
	for l := 1; l < len(counts); l++ {
		counts[l] += counts[l-1]
	}
	order := make([]int32, nInstr)
	pos := append([]int32(nil), counts[:maxLevel+1]...)
	for id, g := range n.Gates {
		if g.Kind == Input {
			continue
		}
		order[pos[level[id]]] = int32(id)
		pos[level[id]]++
	}

	p := &Program{
		Kinds:   make([]Kind, 0, nInstr),
		Outs:    make([]int32, 0, nInstr),
		ArgOff:  make([]int32, 1, nInstr+1),
		Args:    make([]int32, 0, nArgs),
		Levels:  make([]int32, 0, nInstr),
		nGates:  len(n.Gates),
		nLevels: int(maxLevel) + 1,
	}
	for _, id := range order {
		g := &n.Gates[id]
		p.Kinds = append(p.Kinds, g.Kind)
		p.Outs = append(p.Outs, id)
		p.Levels = append(p.Levels, level[id])
		for _, f := range g.Fanin {
			p.Args = append(p.Args, int32(f))
		}
		p.ArgOff = append(p.ArgOff, int32(len(p.Args)))
	}
	return p, nil
}
