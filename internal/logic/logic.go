// Package logic provides the gate-level netlist substrate: a small
// structural cell library (standard gates, multiplexors, flip-flops,
// transparent latches), netlist construction with per-gate accounting
// groups, a unit-capacitance load model with a statistical wire-load
// component, and topological ordering. Every higher-level technique in
// this repository ultimately measures power as switched capacitance on
// these netlists.
package logic

import (
	"errors"
	"fmt"

	"hlpower/internal/hlerr"
)

// Kind enumerates the cell types of the library.
type Kind uint8

// Cell kinds. Fanin conventions: Mux is (sel, in0, in1) and selects in1
// when sel is true; DFF is (D); EnDFF is (enable, D) and holds state when
// enable is false (a gated-clock register); Latch is (enable, D) and is
// transparent while enable is true.
const (
	Input Kind = iota
	Const0
	Const1
	Buf
	Not
	And
	Or
	Nand
	Nor
	Xor
	Xnor
	Mux
	DFF
	EnDFF
	Latch
)

var kindNames = [...]string{
	Input: "input", Const0: "const0", Const1: "const1", Buf: "buf",
	Not: "not", And: "and", Or: "or", Nand: "nand", Nor: "nor",
	Xor: "xor", Xnor: "xnor", Mux: "mux", DFF: "dff", EnDFF: "endff",
	Latch: "latch",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsSequential reports whether the cell holds state across clock cycles.
func (k Kind) IsSequential() bool { return k == DFF || k == EnDFF }

// Gate is one cell instance. Its output signal is identified by its
// index in Netlist.Gates.
type Gate struct {
	Kind  Kind
	Fanin []int
	Name  string
	Group string // accounting group for power breakdowns
	Delay int    // propagation delay in ticks (>=1 for combinational)
	Init  bool   // reset value for sequential cells
}

// Netlist is a synchronous gate-level circuit: a flat gate list with
// primary inputs, primary outputs, and single-clock flip-flops.
type Netlist struct {
	Gates   []Gate
	Inputs  []int // gate ids with Kind == Input, in declaration order
	Outputs []int // gate ids treated as primary outputs

	// InputCap is the capacitance of one gate input pin; WireCapPerFanout
	// is the statistical wire-load added per fanout; OutputLoad is the
	// external load seen by each primary output. ClockCap is the clock
	// capacitance charged per flip-flop per active clock cycle.
	InputCap         float64
	WireCapPerFanout float64
	OutputLoad       float64
	ClockCap         float64

	// err is the sticky construction error: the first malformed Add*
	// call is recorded here (with a structurally safe placeholder gate
	// appended so returned ids stay valid) and every consumer of the
	// netlist — TopoOrder, sim.Run, synthesis — refuses to proceed.
	err error
}

// Err returns the first construction error recorded on the netlist, or
// nil if every builder call was well-formed. The builder API keeps
// returning usable signal ids after an error so construction code needs
// no per-call checks; callers check Err (directly or via TopoOrder /
// sim.Run, which propagate it) before using the netlist.
func (n *Netlist) Err() error { return n.err }

// Failf records a construction error (first one wins). Exported so
// composite builders in other packages (rtlib, lopt) report malformed
// inputs through the same sticky channel.
func (n *Netlist) Failf(op, format string, args ...any) {
	if n.err == nil {
		n.err = hlerr.Errorf(op, format, args...)
	}
}

// failSafe records the error and appends a constant-0 placeholder gate
// so the returned id is valid and later fanin references don't cascade
// into out-of-range failures.
func (n *Netlist) failSafe(group string, err error) int {
	if n.err == nil {
		if _, ok := err.(*hlerr.InputError); !ok {
			err = &hlerr.InputError{Op: "logic", Err: err}
		}
		n.err = err
	}
	id := len(n.Gates)
	n.Gates = append(n.Gates, Gate{Kind: Const0, Group: group, Delay: 1})
	return id
}

// New returns an empty netlist with the default capacitance model.
func New() *Netlist {
	return &Netlist{
		InputCap:         1.0,
		WireCapPerFanout: 0.3,
		OutputLoad:       2.0,
		ClockCap:         1.0,
	}
}

// Clone deep-copies the netlist: gates (including fanin slices),
// input/output lists, the capacitance model, and the sticky error.
// Mutating the clone never affects the original, which is what lets
// optimization passes derive candidate circuits from a shared baseline.
func (n *Netlist) Clone() *Netlist {
	out := &Netlist{
		InputCap:         n.InputCap,
		WireCapPerFanout: n.WireCapPerFanout,
		OutputLoad:       n.OutputLoad,
		ClockCap:         n.ClockCap,
		err:              n.err,
	}
	out.Gates = make([]Gate, len(n.Gates))
	for i, g := range n.Gates {
		ng := g
		ng.Fanin = append([]int(nil), g.Fanin...)
		out.Gates[i] = ng
	}
	out.Inputs = append([]int(nil), n.Inputs...)
	out.Outputs = append([]int(nil), n.Outputs...)
	return out
}

// DefaultGroup is the accounting group assigned when none is given.
const DefaultGroup = "logic"

// AddInput declares a primary input and returns its signal id.
func (n *Netlist) AddInput(name string) int {
	id := len(n.Gates)
	n.Gates = append(n.Gates, Gate{Kind: Input, Name: name, Group: DefaultGroup})
	n.Inputs = append(n.Inputs, id)
	return id
}

// Add appends a gate in the default group and returns its signal id.
func (n *Netlist) Add(kind Kind, fanin ...int) int {
	return n.AddG(kind, DefaultGroup, fanin...)
}

// AddG appends a gate in the given accounting group. Malformed calls
// (bad arity, out-of-range fanin) record a sticky error on the netlist
// — retrievable via Err and propagated by TopoOrder and the simulator —
// and return a safe placeholder id instead of panicking.
func (n *Netlist) AddG(kind Kind, group string, fanin ...int) int {
	if err := checkArity(kind, len(fanin)); err != nil {
		return n.failSafe(group, &hlerr.InputError{Op: "logic.AddG", Err: err})
	}
	for _, f := range fanin {
		if f < 0 || f >= len(n.Gates) {
			return n.failSafe(group, hlerr.Errorf("logic.AddG", "fanin %d out of range [0,%d)", f, len(n.Gates)))
		}
	}
	id := len(n.Gates)
	n.Gates = append(n.Gates, Gate{
		Kind:  kind,
		Fanin: append([]int(nil), fanin...),
		Group: group,
		Delay: 1,
	})
	return id
}

func checkArity(kind Kind, n int) error {
	switch kind {
	case Input, Const0, Const1:
		if n != 0 {
			return fmt.Errorf("logic: %v takes no fanin", kind)
		}
	case Buf, Not, DFF:
		if n != 1 {
			return fmt.Errorf("logic: %v takes 1 fanin, got %d", kind, n)
		}
	case Xor, Xnor:
		if n != 2 {
			return fmt.Errorf("logic: %v takes 2 fanins, got %d", kind, n)
		}
	case Mux, EnDFF, Latch:
		expected := 3
		if kind != Mux {
			expected = 2
		}
		if n != expected {
			return fmt.Errorf("logic: %v takes %d fanins, got %d", kind, expected, n)
		}
	case And, Or, Nand, Nor:
		if n < 2 {
			return fmt.Errorf("logic: %v takes >=2 fanins, got %d", kind, n)
		}
	default:
		return fmt.Errorf("logic: unknown kind %v", kind)
	}
	return nil
}

// valid reports whether id names an existing gate, recording a sticky
// error under op when it does not.
func (n *Netlist) valid(op string, id int) bool {
	if id < 0 || id >= len(n.Gates) {
		n.Failf(op, "signal %d out of range [0,%d)", id, len(n.Gates))
		return false
	}
	return true
}

// MarkOutput declares signal id as a primary output.
func (n *Netlist) MarkOutput(id int) {
	if !n.valid("logic.MarkOutput", id) {
		return
	}
	n.Outputs = append(n.Outputs, id)
}

// SetName names a signal (for debugging and reports).
func (n *Netlist) SetName(id int, name string) {
	if n.valid("logic.SetName", id) {
		n.Gates[id].Name = name
	}
}

// SetInit sets the reset value of a sequential cell.
func (n *Netlist) SetInit(id int, v bool) {
	if n.valid("logic.SetInit", id) {
		n.Gates[id].Init = v
	}
}

// NumGates returns the number of cells, NumCombinational the number of
// non-input, non-sequential cells.
func (n *Netlist) NumGates() int { return len(n.Gates) }

// NumCombinational counts logic cells (excluding inputs, constants, and
// state elements).
func (n *Netlist) NumCombinational() int {
	c := 0
	for _, g := range n.Gates {
		switch g.Kind {
		case Input, Const0, Const1, DFF, EnDFF:
		default:
			c++
		}
	}
	return c
}

// Fanouts returns, for each signal, the ids of gates reading it.
func (n *Netlist) Fanouts() [][]int {
	fo := make([][]int, len(n.Gates))
	for id, g := range n.Gates {
		for _, f := range g.Fanin {
			fo[f] = append(fo[f], id)
		}
	}
	return fo
}

// Loads returns the capacitive load driven by each signal: one InputCap
// per fanout pin, the statistical wire load, and OutputLoad for primary
// outputs. Only pin counts matter here, so the counts are accumulated
// in place instead of materializing the Fanouts reader lists.
func (n *Netlist) Loads() []float64 {
	loads := make([]float64, len(n.Gates))
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			loads[f]++ // exact integer counts; converted to loads below
		}
	}
	for id := range loads {
		nf := loads[id]
		loads[id] = nf*n.InputCap + nf*n.WireCapPerFanout
	}
	isOut := make([]bool, len(n.Gates))
	for _, o := range n.Outputs {
		isOut[o] = true
	}
	for id := range loads {
		if isOut[id] {
			loads[id] += n.OutputLoad
		}
	}
	return loads
}

// TotalCapacitance returns the sum of all signal loads — the C_tot the
// information-theoretic estimators try to predict without the netlist.
func (n *Netlist) TotalCapacitance() float64 {
	var c float64
	for _, l := range n.Loads() {
		c += l
	}
	return c
}

// TopoOrder returns an evaluation order of all gates in which every
// combinational gate appears after its fanins. Inputs, constants, and
// sequential outputs are sources. Latches are ordered like combinational
// cells. An error is reported for combinational cycles.
func (n *Netlist) TopoOrder() ([]int, error) {
	if n.err != nil {
		return nil, n.err
	}
	nGates := len(n.Gates)
	isSource := func(id int) bool {
		k := n.Gates[id].Kind
		return k == Input || k == Const0 || k == Const1 || k.IsSequential()
	}
	// Combinational dependency edges in CSR form: per-signal reader
	// lists built with a counting pass instead of per-signal appends,
	// which used to dominate the allocation profile of every prepare
	// and compile. Edge order matches the old append construction
	// exactly (readers ascend), so the emitted order is unchanged.
	indeg := make([]int, nGates)
	offs := make([]int32, nGates+1)
	nEdges := 0
	for id, g := range n.Gates {
		if isSource(id) {
			continue
		}
		for _, f := range g.Fanin {
			if isSource(f) {
				continue
			}
			offs[f+1]++
			indeg[id]++
			nEdges++
		}
	}
	for i := 0; i < nGates; i++ {
		offs[i+1] += offs[i]
	}
	edges := make([]int32, nEdges)
	cursor := append([]int32(nil), offs[:nGates]...)
	for id, g := range n.Gates {
		if isSource(id) {
			continue
		}
		for _, f := range g.Fanin {
			if isSource(f) {
				continue
			}
			edges[cursor[f]] = int32(id)
			cursor[f]++
		}
	}
	order := make([]int, 0, nGates)
	queue := make([]int, 0, nGates)
	// Sources first, then zero-indegree combinational gates.
	for id := range n.Gates {
		if isSource(id) {
			order = append(order, id)
		} else if indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		order = append(order, id)
		for _, s := range edges[offs[id]:offs[id+1]] {
			indeg[s]--
			if indeg[s] == 0 {
				queue = append(queue, int(s))
			}
		}
	}
	if len(order) != nGates {
		return nil, errors.New("logic: combinational cycle detected")
	}
	return order, nil
}

// Depth returns the maximum combinational depth in gate delays from any
// source to any gate output.
func (n *Netlist) Depth() int {
	order, err := n.TopoOrder()
	if err != nil {
		return -1
	}
	depth := make([]int, len(n.Gates))
	max := 0
	for _, id := range order {
		g := n.Gates[id]
		if g.Kind == Input || g.Kind == Const0 || g.Kind == Const1 || g.Kind.IsSequential() {
			continue
		}
		d := 0
		for _, f := range g.Fanin {
			if depth[f] > d {
				d = depth[f]
			}
		}
		depth[id] = d + g.Delay
		if depth[id] > max {
			max = depth[id]
		}
	}
	return max
}

// EvalGate computes the boolean output of a combinational gate given its
// fanin values; latches and flip-flops are handled by the simulator, not
// here. An unknown kind reports a typed error via hlerr.Throw, which the
// simulator's entry point converts back into an ordinary error.
func EvalGate(kind Kind, in []bool) bool {
	switch kind {
	case Const0:
		return false
	case Const1:
		return true
	case Buf:
		return in[0]
	case Not:
		return !in[0]
	case And:
		for _, v := range in {
			if !v {
				return false
			}
		}
		return true
	case Or:
		for _, v := range in {
			if v {
				return true
			}
		}
		return false
	case Nand:
		for _, v := range in {
			if !v {
				return true
			}
		}
		return false
	case Nor:
		for _, v := range in {
			if v {
				return false
			}
		}
		return true
	case Xor:
		return in[0] != in[1]
	case Xnor:
		return in[0] == in[1]
	case Mux:
		if in[0] {
			return in[2]
		}
		return in[1]
	default:
		hlerr.Throwf("logic.EvalGate", "not a combinational kind: %v", kind)
		return false
	}
}
