// Fusion of compiled programs into superinstructions. The packed kernel
// pays one switch dispatch per compiled instruction; on the adder/
// multiplier netlists this repository serves, a large fraction of those
// instructions are 2-input gates whose single consumer is the next gate
// of a chain (AND/OR/XOR trees, AND-OR carry logic, inverter feeds).
// Fuse collapses those producer→consumer pairs into a fixed vocabulary
// of superinstructions — AND3/AND4, OR3/OR4, XOR3/XOR4, AO/OA, AOI/OAI,
// NOT-absorbed variants — executed with one dispatch per fused group.
//
// Crucially, fusion never elides a net: every absorbed producer's
// output word is still written by its fused group, because per-net
// toggle counts and capacitive loads are observable results. A fused
// group computes exactly the words the unfused instructions computed
// (AND/OR/XOR are bitwise-exact and commutative, so operand order
// inside a group is free), which is what keeps fused runs Float64bits-
// identical to unfused ones — the property the sim package's
// equivalence tests and FuzzFusedEquivalence pin.
//
// Legality: a producer may be hoisted into its consumer's position only
// when the consumer is the producer's sole reader (useCount == 1,
// counted over Program.Args). Programs are SSA within a settle — each
// net is written once and its fanins are never rewritten — so delaying
// a single-use producer to its reader's position cannot change any
// word. Matching walks instructions descending (consumers before their
// producers), emission ascends over the surviving roots; both passes
// are deterministic, so a fixed netlist always fuses identically.
package logic

// FusedOp is the opcode vocabulary of the fused program. Singleton ops
// mirror the unfused cell kinds one-to-one; superinstruction ops carry
// one or two absorbed producers and write multiple output nets.
type FusedOp uint8

// Fused opcodes. For superinstructions, args and outs follow the
// conventions documented on Fuse: outs list absorbed producers first
// (in evaluation order) and the root last.
const (
	FConst0 FusedOp = iota
	FConst1
	FBuf
	FNot
	FAnd2
	FOr2
	FNand2
	FNor2
	FXor2
	FXnor2
	FMux
	FAndN // variadic and, >2 fanins
	FOrN
	FNandN
	FNorN
	FAnd3   // o0=a0&a1      o1=o0&a2
	FAnd4   // o0=a0&a1      o1=o0&a2      o2=o1&a3
	FOr3    // o0=a0|a1      o1=o0|a2
	FOr4    // o0=a0|a1      o1=o0|a2      o2=o1|a3
	FXor3   // o0=a0^a1      o1=o0^a2
	FXor4   // o0=a0^a1      o1=o0^a2      o2=o1^a3
	FAO21   // o0=a0&a1      o1=o0|a2
	FAO22   // o0=a0&a1      o1=a2&a3      o2=o0|o1
	FOA21   // o0=a0|a1      o1=o0&a2
	FOA22   // o0=a0|a1      o1=a2|a3      o2=o0&o1
	FAOI21  // o0=a0&a1      o1=^(o0|a2)
	FAOI22  // o0=a0&a1      o1=a2&a3      o2=^(o0|o1)
	FOAI21  // o0=a0|a1      o1=^(o0&a2)
	FOAI22  // o0=a0|a1      o1=a2|a3      o2=^(o0&o1)
	FAndNot // o0=^a0       o1=o0&a1
	FOrNot  // o0=^a0       o1=o0|a1
	FXorNot // o0=^a0       o1=o0^a1

	FusedOpCount // number of opcodes; not an opcode
)

var fusedOpNames = [...]string{
	FConst0: "const0", FConst1: "const1", FBuf: "buf", FNot: "not",
	FAnd2: "and2", FOr2: "or2", FNand2: "nand2", FNor2: "nor2",
	FXor2: "xor2", FXnor2: "xnor2", FMux: "mux",
	FAndN: "andN", FOrN: "orN", FNandN: "nandN", FNorN: "norN",
	FAnd3: "and3", FAnd4: "and4", FOr3: "or3", FOr4: "or4",
	FXor3: "xor3", FXor4: "xor4",
	FAO21: "ao21", FAO22: "ao22", FOA21: "oa21", FOA22: "oa22",
	FAOI21: "aoi21", FAOI22: "aoi22", FOAI21: "oai21", FOAI22: "oai22",
	FAndNot: "andnot", FOrNot: "ornot", FXorNot: "xornot",
}

func (op FusedOp) String() string {
	if int(op) < len(fusedOpNames) {
		return fusedOpNames[op]
	}
	return "fusedop(?)"
}

// IsSuper reports whether the opcode is a superinstruction (absorbs at
// least one producer), as opposed to a singleton mirror of a cell kind.
func (op FusedOp) IsSuper() bool { return op >= FAnd3 && op < FusedOpCount }

// FusedProgram is the superinstruction form of a compiled Program: a
// flat instruction stream in the same struct-of-arrays layout, where
// each instruction may write several output nets. Executing it writes
// exactly the same word to every net as executing the source Program.
type FusedProgram struct {
	Ops    []FusedOp
	ArgOff []int32 // len(Ops)+1 offsets into Args
	Args   []int32 // flattened fanin signal ids
	OutOff []int32 // len(Ops)+1 offsets into Outs
	Outs   []int32 // destination signal ids, absorbed producers first

	nGates  int
	nInstrs int                 // source-program instruction count
	mix     [FusedOpCount]int64 // instruction count per opcode
}

// NumGroups returns the fused instruction count (dispatches per settle).
func (fp *FusedProgram) NumGroups() int { return len(fp.Ops) }

// NumInstrs returns the source program's instruction count.
func (fp *FusedProgram) NumInstrs() int { return fp.nInstrs }

// NumGates returns the gate count of the source netlist.
func (fp *FusedProgram) NumGates() int { return fp.nGates }

// Absorbed returns how many instructions fusion folded into
// superinstructions — the dispatches a settle no longer pays.
func (fp *FusedProgram) Absorbed() int { return fp.nInstrs - len(fp.Ops) }

// Mix returns the fused-op mix — instruction count per opcode name,
// omitting zero entries — the observability gauge powerd surfaces.
func (fp *FusedProgram) Mix() map[string]int64 {
	m := make(map[string]int64)
	for op, c := range fp.mix {
		if c != 0 {
			m[FusedOp(op).String()] = c
		}
	}
	return m
}

// singletonOp maps an unfused kind (at the given arity) to its
// one-to-one fused opcode.
func singletonOp(k Kind, arity int) FusedOp {
	switch k {
	case Const0:
		return FConst0
	case Const1:
		return FConst1
	case Buf:
		return FBuf
	case Not:
		return FNot
	case And:
		if arity > 2 {
			return FAndN
		}
		return FAnd2
	case Or:
		if arity > 2 {
			return FOrN
		}
		return FOr2
	case Nand:
		if arity > 2 {
			return FNandN
		}
		return FNand2
	case Nor:
		if arity > 2 {
			return FNorN
		}
		return FNor2
	case Xor:
		return FXor2
	case Xnor:
		return FXnor2
	default: // Mux — Compile rejects everything else
		return FMux
	}
}

// match records one root instruction's fusion decision: the opcode and
// the absorbed producer instructions (-1 when unused). For chain ops
// (And4/Or4/Xor4), p1 is the producer absorbed at the root and p2 the
// producer absorbed inside p1; for the 22-shapes, p1 and p2 are the
// producers of the root's first and second argument respectively.
type match struct {
	op     FusedOp
	p1, p2 int32
}

// Fuse builds the superinstruction form of a compiled program. The
// result is deterministic for a fixed input and executes to identical
// words on every net.
func Fuse(p *Program) *FusedProgram {
	nInstr := p.NumInstrs()
	// useCount over program args; producerOf maps a net to the
	// instruction writing it (-1 for inputs).
	useCount := make([]int32, p.nGates)
	for _, a := range p.Args {
		useCount[a]++
	}
	producerOf := make([]int32, p.nGates)
	for i := range producerOf {
		producerOf[i] = -1
	}
	for i, out := range p.Outs {
		producerOf[out] = int32(i)
	}

	consumed := make([]bool, nInstr)
	matches := make([]match, nInstr)

	args := func(i int32) []int32 { return p.Args[p.ArgOff[i]:p.ArgOff[i+1]] }
	// fusible returns the instruction producing net, when it is an
	// unconsumed single-use gate of the wanted kind and arity.
	fusible := func(net int32, kind Kind, arity int) (int32, bool) {
		pi := producerOf[net]
		if pi < 0 || consumed[pi] || useCount[net] != 1 {
			return -1, false
		}
		if p.Kinds[pi] != kind || int(p.ArgOff[pi+1]-p.ArgOff[pi]) != arity {
			return -1, false
		}
		return pi, true
	}

	// matchRoot applies the fixed precedence to one 2-input root: the
	// 22-shape (two absorbed producers) first, then the longest same-op
	// chain (4 before 3), then the 21-shape, then NOT absorption, then
	// the singleton. Positions probe arg0 before arg1, so matching is
	// deterministic.
	matchRoot := func(a []int32, s rootShapes) match {
		if s.pair22 != FConst0 {
			if p1, ok1 := fusible(a[0], s.pair, 2); ok1 {
				if p2, ok2 := fusible(a[1], s.pair, 2); ok2 {
					return match{op: s.pair22, p1: p1, p2: p2}
				}
			}
		}
		if s.chain3 != FConst0 {
			for _, k := range [2]int{0, 1} {
				p1, ok := fusible(a[k], s.chain, 2)
				if !ok {
					continue
				}
				// Try to extend to the 4-input chain through one of
				// p1's arguments. p1 itself is not yet marked consumed,
				// but it cannot match the probe: probing is by net, and
				// p1's args are distinct nets produced before p1.
				for _, pa := range args(p1) {
					if p2, ok2 := fusible(pa, s.chain, 2); ok2 {
						return match{op: s.chain4, p1: p1, p2: p2}
					}
				}
				return match{op: s.chain3, p1: p1, p2: -1}
			}
		}
		if s.pair21 != FConst0 {
			for _, k := range [2]int{0, 1} {
				if p1, ok := fusible(a[k], s.pair, 2); ok {
					return match{op: s.pair21, p1: p1, p2: -1}
				}
			}
		}
		if s.notOp != FConst0 {
			for _, k := range [2]int{0, 1} {
				if p1, ok := fusible(a[k], Not, 1); ok {
					return match{op: s.notOp, p1: p1, p2: -1}
				}
			}
		}
		return match{op: s.fallback, p1: -1, p2: -1}
	}

	// Matching pass, descending so consumers claim producers before the
	// producers' own turn.
	for i := int32(nInstr) - 1; i >= 0; i-- {
		if consumed[i] {
			continue
		}
		a := args(i)
		m := match{op: singletonOp(p.Kinds[i], len(a)), p1: -1, p2: -1}
		if len(a) == 2 {
			switch p.Kinds[i] {
			case And:
				m = matchRoot(a, rootShapes{
					pair: Or, pair22: FOA22, pair21: FOA21,
					chain: And, chain3: FAnd3, chain4: FAnd4,
					notOp: FAndNot, fallback: FAnd2,
				})
			case Or:
				m = matchRoot(a, rootShapes{
					pair: And, pair22: FAO22, pair21: FAO21,
					chain: Or, chain3: FOr3, chain4: FOr4,
					notOp: FOrNot, fallback: FOr2,
				})
			case Xor:
				m = matchRoot(a, rootShapes{
					chain: Xor, chain3: FXor3, chain4: FXor4,
					notOp: FXorNot, fallback: FXor2,
				})
			case Nor:
				m = matchRoot(a, rootShapes{
					pair: And, pair22: FAOI22, pair21: FAOI21, fallback: FNor2,
				})
			case Nand:
				m = matchRoot(a, rootShapes{
					pair: Or, pair22: FOAI22, pair21: FOAI21, fallback: FNand2,
				})
			}
			if m.p1 >= 0 {
				consumed[m.p1] = true
			}
			if m.p2 >= 0 {
				consumed[m.p2] = true
			}
		}
		matches[i] = m
	}

	// Emission pass, ascending over surviving roots. Sizes first.
	fp := &FusedProgram{nGates: p.nGates, nInstrs: nInstr}
	nOps, nArgs, nOuts := 0, 0, 0
	for i := 0; i < nInstr; i++ {
		if consumed[i] {
			continue
		}
		nOps++
		nArgs += fusedArity(p, matches[i], int32(i))
		nOuts += 1 + b2i(matches[i].p1 >= 0) + b2i(matches[i].p2 >= 0)
	}
	fp.Ops = make([]FusedOp, 0, nOps)
	fp.ArgOff = make([]int32, 1, nOps+1)
	fp.Args = make([]int32, 0, nArgs)
	fp.OutOff = make([]int32, 1, nOps+1)
	fp.Outs = make([]int32, 0, nOuts)
	for i := int32(0); i < int32(nInstr); i++ {
		if consumed[i] {
			continue
		}
		emit(fp, p, matches[i], i)
	}
	return fp
}

// rootShapes parameterizes matchRoot over the root kind's fusion
// vocabulary. Zero-valued fields (pair22 == FConst0 etc.) disable the
// corresponding shape — FConst0 can never be a superinstruction, so the
// sentinel is unambiguous.
type rootShapes struct {
	pair           Kind // producer kind of the 22-/21-shapes
	pair22, pair21 FusedOp
	chain          Kind // producer kind of the same-op chain
	chain3, chain4 FusedOp
	notOp          FusedOp
	fallback       FusedOp
}

// fusedArity returns the argument count of a root's fused instruction.
func fusedArity(p *Program, m match, root int32) int {
	n := int(p.ArgOff[root+1] - p.ArgOff[root])
	if m.p1 >= 0 {
		n += int(p.ArgOff[m.p1+1]-p.ArgOff[m.p1]) - 1
	}
	if m.p2 >= 0 {
		n += int(p.ArgOff[m.p2+1]-p.ArgOff[m.p2]) - 1
	}
	return n
}

// emit appends one root's fused instruction. Argument and output
// conventions (documented on the opcode constants): a chain op lists
// the innermost producer's args first, then each absorber's remaining
// argument; a 22-shape lists producer 1's args then producer 2's; outs
// list absorbed producers in evaluation order, root last.
func emit(fp *FusedProgram, p *Program, m match, root int32) {
	args := func(i int32) []int32 { return p.Args[p.ArgOff[i]:p.ArgOff[i+1]] }
	ra := args(root)
	fp.Ops = append(fp.Ops, m.op)
	fp.mix[m.op]++
	switch {
	case m.p1 < 0: // singleton
		fp.Args = append(fp.Args, ra...)
		fp.Outs = append(fp.Outs, p.Outs[root])
	case m.op == FAO22 || m.op == FOA22 || m.op == FAOI22 || m.op == FOAI22:
		fp.Args = append(fp.Args, args(m.p1)...)
		fp.Args = append(fp.Args, args(m.p2)...)
		fp.Outs = append(fp.Outs, p.Outs[m.p1], p.Outs[m.p2], p.Outs[root])
	case m.op == FAndNot || m.op == FOrNot || m.op == FXorNot:
		other := ra[0]
		if p.Outs[m.p1] == ra[0] {
			other = ra[1]
		}
		fp.Args = append(fp.Args, args(m.p1)[0], other)
		fp.Outs = append(fp.Outs, p.Outs[m.p1], p.Outs[root])
	case m.p2 >= 0: // 4-chain: p2 inside p1 inside root
		p1a, p2a := args(m.p1), args(m.p2)
		mid := p1a[0]
		if p.Outs[m.p2] == p1a[0] {
			mid = p1a[1]
		}
		other := ra[0]
		if p.Outs[m.p1] == ra[0] {
			other = ra[1]
		}
		fp.Args = append(fp.Args, p2a[0], p2a[1], mid, other)
		fp.Outs = append(fp.Outs, p.Outs[m.p2], p.Outs[m.p1], p.Outs[root])
	default: // 3-chain or 21-shape: one absorbed 2-input producer
		other := ra[0]
		if p.Outs[m.p1] == ra[0] {
			other = ra[1]
		}
		fp.Args = append(fp.Args, args(m.p1)[0], args(m.p1)[1], other)
		fp.Outs = append(fp.Outs, p.Outs[m.p1], p.Outs[root])
	}
	fp.ArgOff = append(fp.ArgOff, int32(len(fp.Args)))
	fp.OutOff = append(fp.OutOff, int32(len(fp.Outs)))
}

func b2i(b bool) int {
	if b {
		return 1
	}
	return 0
}
