// Fused-program introspection for downstream code generators. The
// FusedProgram CSR arrays are exported for the interpreter's hot loop,
// but a generator walking the program wants per-instruction views and
// the static shape of each opcode (so it can lay out contiguous operand
// slabs with constant strides). These helpers are the supported way to
// do that without re-deriving the CSR conventions.
package logic

// Instr returns instruction i's opcode and its argument and output
// views into the program's CSR arrays. The views alias the program and
// must not be mutated.
func (fp *FusedProgram) Instr(i int) (op FusedOp, args, outs []int32) {
	return fp.Ops[i], fp.Args[fp.ArgOff[i]:fp.ArgOff[i+1]], fp.Outs[fp.OutOff[i]:fp.OutOff[i+1]]
}

// Shape returns the opcode's fixed argument and output counts. For the
// variadic ops (FAndN/FOrN/FNandN/FNorN) arity is per-instruction:
// fixed is false and args is 0, but outs is still exact (variadic ops
// write one net). Shape is what lets a code generator constant-fold
// arities: every fixed-shape opcode's operands can be packed into flat
// slabs walked with compile-time strides, no per-instruction offsets.
func (op FusedOp) Shape() (args, outs int, fixed bool) {
	switch op {
	case FConst0, FConst1:
		return 0, 1, true
	case FBuf, FNot:
		return 1, 1, true
	case FAnd2, FOr2, FNand2, FNor2, FXor2, FXnor2:
		return 2, 1, true
	case FMux:
		return 3, 1, true
	case FAndN, FOrN, FNandN, FNorN:
		return 0, 1, false
	case FAnd3, FOr3, FXor3, FAO21, FOA21, FAOI21, FOAI21:
		return 3, 2, true
	case FAnd4, FOr4, FXor4:
		return 4, 3, true
	case FAO22, FOA22, FAOI22, FOAI22:
		return 4, 3, true
	case FAndNot, FOrNot, FXorNot:
		return 2, 2, true
	default:
		return 0, 0, false
	}
}
