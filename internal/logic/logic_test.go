package logic

import (
	"testing"

	"hlpower/internal/bdd"
	"hlpower/internal/cover"
)

func TestEvalGate(t *testing.T) {
	cases := []struct {
		kind Kind
		in   []bool
		want bool
	}{
		{And, []bool{true, true}, true},
		{And, []bool{true, false}, false},
		{Or, []bool{false, false}, false},
		{Or, []bool{false, true}, true},
		{Nand, []bool{true, true}, false},
		{Nor, []bool{false, false}, true},
		{Xor, []bool{true, false}, true},
		{Xor, []bool{true, true}, false},
		{Xnor, []bool{true, true}, true},
		{Not, []bool{true}, false},
		{Buf, []bool{true}, true},
		{Mux, []bool{false, true, false}, true}, // sel=0 -> in0
		{Mux, []bool{true, true, false}, false}, // sel=1 -> in1
		{And, []bool{true, true, true}, true},   // 3-input
		{Or, []bool{false, false, true}, true},  // 3-input
		{Const0, nil, false},
		{Const1, nil, true},
	}
	for _, c := range cases {
		if got := EvalGate(c.kind, c.in); got != c.want {
			t.Errorf("EvalGate(%v, %v) = %v, want %v", c.kind, c.in, got, c.want)
		}
	}
}

func TestArityChecks(t *testing.T) {
	// Malformed Add calls record a sticky typed error on the builder
	// (returning a placeholder id) instead of panicking.
	cases := []struct {
		name string
		f    func(n *Netlist, a int)
	}{
		{"not-2", func(n *Netlist, a int) { n.Add(Not, a, a) }},
		{"and-1", func(n *Netlist, a int) { n.Add(And, a) }},
		{"xor-3", func(n *Netlist, a int) { n.Add(Xor, a, a, a) }},
		{"mux-2", func(n *Netlist, a int) { n.Add(Mux, a, a) }},
		{"bad fanin", func(n *Netlist, a int) { n.Add(Not, 999) }},
	}
	for _, c := range cases {
		n := New()
		a := n.AddInput("a")
		c.f(n, a)
		if n.Err() == nil {
			t.Errorf("%s: expected sticky builder error", c.name)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.Add(And, a, b)
	y := n.Add(Or, x, a)
	n.MarkOutput(y)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, id := range order {
		pos[id] = i
	}
	if pos[x] > pos[y] {
		t.Error("x must precede y")
	}
	if pos[a] > pos[x] || pos[b] > pos[x] {
		t.Error("inputs must precede gates")
	}
}

func TestTopoOrderCycle(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	// Build a combinational cycle by hand.
	g1 := n.Add(And, a, a)
	n.Gates[g1].Fanin[1] = g1 // self-loop
	if _, err := n.TopoOrder(); err == nil {
		t.Error("expected cycle detection")
	}
}

func TestSequentialBreaksCycle(t *testing.T) {
	// A feedback loop through a DFF is fine.
	n := New()
	a := n.AddInput("a")
	ff := n.Add(DFF, a) // placeholder fanin, patched below
	x := n.Add(Xor, a, ff)
	n.Gates[ff].Fanin[0] = x
	n.MarkOutput(x)
	if _, err := n.TopoOrder(); err != nil {
		t.Errorf("DFF feedback should not be a combinational cycle: %v", err)
	}
}

func TestDepth(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.Add(And, a, b)
	y := n.Add(Not, x)
	z := n.Add(Or, y, b)
	n.MarkOutput(z)
	if d := n.Depth(); d != 3 {
		t.Errorf("Depth = %d, want 3", d)
	}
}

func TestLoads(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	b := n.AddInput("b")
	x := n.Add(And, a, b)
	n.Add(Not, x)
	n.Add(Buf, x)
	n.MarkOutput(x)
	loads := n.Loads()
	// x drives 2 pins -> 2*InputCap + 2*wire + OutputLoad.
	want := 2*n.InputCap + 2*n.WireCapPerFanout + n.OutputLoad
	if loads[x] != want {
		t.Errorf("load(x) = %v, want %v", loads[x], want)
	}
	if n.TotalCapacitance() <= 0 {
		t.Error("TotalCapacitance should be positive")
	}
}

func TestNumCombinational(t *testing.T) {
	n := New()
	a := n.AddInput("a")
	n.Add(DFF, a)
	n.Add(Not, a)
	n.Add(Const1)
	if got := n.NumCombinational(); got != 1 {
		t.Errorf("NumCombinational = %d, want 1", got)
	}
}

func TestFromCoverMatchesCover(t *testing.T) {
	// f = ab + c' over 3 vars.
	cv := &cover.Cover{NumVars: 3, Cubes: []cover.Cube{
		{Mask: 0b011, Val: 0b011},
		{Mask: 0b100, Val: 0b000},
	}}
	n := New()
	in := n.AddInputBus("x", 3)
	out := FromCover(n, cv, in, "ctrl")
	n.MarkOutput(out)
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	_ = order
	for m := uint64(0); m < 8; m++ {
		vals := evalNetlist(t, n, []bool{m&1 == 1, m&2 == 2, m&4 == 4})
		if vals[out] != cv.Eval(m) {
			t.Errorf("FromCover mismatch at %03b", m)
		}
	}
}

func TestFromCoverConstants(t *testing.T) {
	n := New()
	in := n.AddInputBus("x", 2)
	empty := FromCover(n, &cover.Cover{NumVars: 2}, in, "g")
	if n.Gates[empty].Kind != Const0 {
		t.Error("empty cover should synthesize Const0")
	}
	taut := FromCover(n, &cover.Cover{NumVars: 2, Cubes: []cover.Cube{{}}}, in, "g")
	if n.Gates[taut].Kind != Const1 {
		t.Error("tautology should synthesize Const1")
	}
}

func TestFromBDDMatchesFunction(t *testing.T) {
	m := bdd.New(3)
	a, b, c := m.Var(0), m.Var(1), m.Var(2)
	f := m.Or(m.And(a, b), c)
	n := New()
	in := n.AddInputBus("x", 3)
	out := FromBDD(n, m, f, in, "g")
	n.MarkOutput(out)
	for i := 0; i < 8; i++ {
		asg := []bool{i&1 == 1, i&2 == 2, i&4 == 4}
		vals := evalNetlist(t, n, asg)
		if vals[out] != m.Eval(f, asg) {
			t.Errorf("FromBDD mismatch at %03b", i)
		}
	}
}

func TestFromBDDTerminal(t *testing.T) {
	m := bdd.New(2)
	n := New()
	in := n.AddInputBus("x", 2)
	out := FromBDD(n, m, bdd.True, in, "g")
	if n.Gates[out].Kind != Const1 {
		t.Error("True should map to Const1")
	}
}

func TestBusHelpers(t *testing.T) {
	n := New()
	b := n.AddInputBus("d", 4)
	if len(b) != 4 || len(n.Inputs) != 4 {
		t.Fatal("AddInputBus wrong width")
	}
	r := n.RegisterBus(b, "reg")
	for _, s := range r {
		if n.Gates[s].Kind != DFF {
			t.Error("RegisterBus should add DFFs")
		}
	}
	en := n.AddInput("en")
	er := n.EnRegisterBus(b, en, "reg")
	for _, s := range er {
		if n.Gates[s].Kind != EnDFF {
			t.Error("EnRegisterBus should add EnDFFs")
		}
	}
	lb := n.LatchBus(b, en, "guard")
	for _, s := range lb {
		if n.Gates[s].Kind != Latch {
			t.Error("LatchBus should add latches")
		}
	}
	mb := n.MuxBus(en, b, r, "mux")
	if len(mb) != 4 {
		t.Error("MuxBus wrong width")
	}
}

// evalNetlist computes settled combinational values for one input vector
// (no sequential state), a tiny evaluator for structural tests.
func evalNetlist(t *testing.T, n *Netlist, inputs []bool) []bool {
	t.Helper()
	order, err := n.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]bool, len(n.Gates))
	for i, sig := range n.Inputs {
		vals[sig] = inputs[i]
	}
	for _, id := range order {
		g := n.Gates[id]
		switch g.Kind {
		case Input:
		case DFF, EnDFF, Latch:
			// state elements stay false in this helper
		default:
			in := make([]bool, len(g.Fanin))
			for j, f := range g.Fanin {
				in[j] = vals[f]
			}
			vals[id] = EvalGate(g.Kind, in)
		}
	}
	return vals
}

func TestFromExprMatchesFactoredCover(t *testing.T) {
	cv := &cover.Cover{NumVars: 4, Cubes: []cover.Cube{
		{Mask: 0b0011, Val: 0b0011},
		{Mask: 0b0101, Val: 0b0101},
		{Mask: 0b1100, Val: 0b0100},
	}}
	e := cover.Factor(cv)
	n := New()
	in := n.AddInputBus("x", 4)
	out := FromExpr(n, e, in, "ml")
	n.MarkOutput(out)
	for m := uint64(0); m < 16; m++ {
		vals := evalNetlist(t, n, []bool{m&1 == 1, m&2 == 2, m&4 == 4, m&8 == 8})
		if vals[out] != cv.Eval(m) {
			t.Errorf("FromExpr mismatch at %04b", m)
		}
	}
}

func TestFromExprMultilevelSmaller(t *testing.T) {
	// A cover with heavy sharing: the factored netlist should use fewer
	// gate input pins than the two-level one.
	var cubes []cover.Cube
	for v := 1; v < 6; v++ {
		cubes = append(cubes, cover.Cube{Mask: 1 | 1<<uint(v), Val: 1 | 1<<uint(v)})
	}
	cv := &cover.Cover{NumVars: 6, Cubes: cubes}
	two := New()
	in2 := two.AddInputBus("x", 6)
	two.MarkOutput(FromCover(two, cv, in2, "g"))
	ml := New()
	inM := ml.AddInputBus("x", 6)
	ml.MarkOutput(FromExpr(ml, cover.Factor(cv), inM, "g"))
	if ml.NumCombinational() >= two.NumCombinational() {
		t.Errorf("multilevel gates %d should be below two-level %d",
			ml.NumCombinational(), two.NumCombinational())
	}
}
