package logic

import (
	"fmt"

	"hlpower/internal/bdd"
	"hlpower/internal/cover"
)

// FromCover synthesizes a two-level AND-OR network computing the cover
// over the given input signals (inputs[i] is variable i) and returns the
// output signal id. Complemented literals share a single inverter rail.
// A cover wider than the input bus records a sticky netlist error.
func FromCover(n *Netlist, cv *cover.Cover, inputs []int, group string) int {
	if cv.NumVars > len(inputs) {
		n.Failf("logic.FromCover", "cover has %d vars, only %d inputs", cv.NumVars, len(inputs))
		return n.AddG(Const0, group)
	}
	if len(cv.Cubes) == 0 {
		return n.AddG(Const0, group)
	}
	inverters := make(map[int]int)
	inv := func(sig int) int {
		if g, ok := inverters[sig]; ok {
			return g
		}
		g := n.AddG(Not, group, sig)
		inverters[sig] = g
		return g
	}
	var products []int
	for _, c := range cv.Cubes {
		var lits []int
		for v := 0; v < cv.NumVars; v++ {
			if c.Mask>>uint(v)&1 == 0 {
				continue
			}
			if c.Val>>uint(v)&1 == 1 {
				lits = append(lits, inputs[v])
			} else {
				lits = append(lits, inv(inputs[v]))
			}
		}
		switch len(lits) {
		case 0:
			return n.AddG(Const1, group) // tautological cube
		case 1:
			products = append(products, lits[0])
		default:
			products = append(products, n.AddG(And, group, lits...))
		}
	}
	if len(products) == 1 {
		return products[0]
	}
	return n.AddG(Or, group, products...)
}

// FromBDD synthesizes a multiplexor network mirroring the BDD of f: one
// 2:1 mux per BDD node (the direct mapping §III-H warns can be deep), and
// returns the output signal id. vars[i] is the signal for BDD variable i.
func FromBDD(n *Netlist, m *bdd.Manager, f bdd.Node, vars []int, group string) int {
	memo := make(map[bdd.Node]int)
	var zero, one = -1, -1
	constSig := func(v bool) int {
		if v {
			if one < 0 {
				one = n.AddG(Const1, group)
			}
			return one
		}
		if zero < 0 {
			zero = n.AddG(Const0, group)
		}
		return zero
	}
	var rec func(bdd.Node) int
	rec = func(node bdd.Node) int {
		if node == bdd.True {
			return constSig(true)
		}
		if node == bdd.False {
			return constSig(false)
		}
		if sig, ok := memo[node]; ok {
			return sig
		}
		v, lo, hi := m.Decompose(node)
		sig := n.AddG(Mux, group, vars[v], rec(lo), rec(hi))
		memo[node] = sig
		return sig
	}
	return rec(f)
}

// Bus is an ordered set of signal ids representing a word, LSB first.
type Bus []int

// AddInputBus declares width named inputs ("name[0]"... LSB first).
func (n *Netlist) AddInputBus(name string, width int) Bus {
	b := make(Bus, width)
	for i := range b {
		b[i] = n.AddInput(fmt.Sprintf("%s[%d]", name, i))
	}
	return b
}

// MarkOutputBus declares every signal of the bus as a primary output.
func (n *Netlist) MarkOutputBus(b Bus) {
	for _, s := range b {
		n.MarkOutput(s)
	}
}

// RegisterBus inserts a DFF on each bus line and returns the registered
// bus. The registers are placed in the given accounting group.
func (n *Netlist) RegisterBus(b Bus, group string) Bus {
	out := make(Bus, len(b))
	for i, s := range b {
		out[i] = n.AddG(DFF, group, s)
	}
	return out
}

// EnRegisterBus inserts enabled (gated-clock) DFFs on each line.
func (n *Netlist) EnRegisterBus(b Bus, enable int, group string) Bus {
	out := make(Bus, len(b))
	for i, s := range b {
		out[i] = n.AddG(EnDFF, group, enable, s)
	}
	return out
}

// LatchBus inserts transparent latches (guard logic) on each line,
// transparent while enable is true.
func (n *Netlist) LatchBus(b Bus, enable int, group string) Bus {
	out := make(Bus, len(b))
	for i, s := range b {
		out[i] = n.AddG(Latch, group, enable, s)
	}
	return out
}

// MuxBus selects b1 when sel is true, b0 otherwise, bit by bit.
func (n *Netlist) MuxBus(sel int, b0, b1 Bus, group string) Bus {
	if len(b0) != len(b1) {
		n.Failf("logic.MuxBus", "width mismatch %d vs %d", len(b0), len(b1))
		if len(b1) < len(b0) {
			b0 = b0[:len(b1)]
		} else {
			b1 = b1[:len(b0)]
		}
	}
	out := make(Bus, len(b0))
	for i := range b0 {
		out[i] = n.AddG(Mux, group, sel, b0[i], b1[i])
	}
	return out
}

// FromExpr synthesizes a factored expression (cover.Factor output) as a
// multilevel network — the §III-H path from symbolic covers to gates.
func FromExpr(n *Netlist, e *cover.Expr, inputs []int, group string) int {
	inverters := make(map[int]int)
	inv := func(sig int) int {
		if g, ok := inverters[sig]; ok {
			return g
		}
		g := n.AddG(Not, group, sig)
		inverters[sig] = g
		return g
	}
	var rec func(*cover.Expr) int
	rec = func(e *cover.Expr) int {
		switch e.Kind {
		case cover.ExprConst:
			if e.Positive {
				return n.AddG(Const1, group)
			}
			return n.AddG(Const0, group)
		case cover.ExprLit:
			if e.Var < 0 || e.Var >= len(inputs) {
				n.Failf("logic.FromExpr", "literal var %d out of range [0,%d)", e.Var, len(inputs))
				return n.AddG(Const0, group)
			}
			if e.Positive {
				return inputs[e.Var]
			}
			return inv(inputs[e.Var])
		case cover.ExprAnd, cover.ExprOr:
			kind := And
			if e.Kind == cover.ExprOr {
				kind = Or
			}
			args := make([]int, len(e.Args))
			for i, a := range e.Args {
				args[i] = rec(a)
			}
			if len(args) == 1 {
				return args[0]
			}
			return n.AddG(kind, group, args...)
		default:
			n.Failf("logic.FromExpr", "unknown expression kind %d", int(e.Kind))
			return n.AddG(Const0, group)
		}
	}
	return rec(e)
}
