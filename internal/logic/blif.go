package logic

import (
	"fmt"
	"io"
)

// WriteBLIF serializes the netlist in Berkeley Logic Interchange Format
// (the SIS-era interchange the surveyed flows exchange circuits in).
// Combinational gates become .names tables; DFFs become .latch lines
// (EnDFFs and transparent latches are rejected — BLIF has no standard
// encoding for them).
func WriteBLIF(w io.Writer, n *Netlist, modelName string) error {
	if modelName == "" {
		modelName = "hlpower"
	}
	sigName := func(id int) string {
		if name := n.Gates[id].Name; name != "" {
			return sanitize(name)
		}
		return fmt.Sprintf("n%d", id)
	}
	fmt.Fprintf(w, ".model %s\n", modelName)
	fmt.Fprint(w, ".inputs")
	for _, in := range n.Inputs {
		fmt.Fprintf(w, " %s", sigName(in))
	}
	fmt.Fprintln(w)
	fmt.Fprint(w, ".outputs")
	for i, out := range n.Outputs {
		fmt.Fprintf(w, " out%d", i)
		_ = out
	}
	fmt.Fprintln(w)
	// Alias outputs through buffers so duplicate output signals and
	// internal names stay legal.
	for i, out := range n.Outputs {
		fmt.Fprintf(w, ".names %s out%d\n1 1\n", sigName(out), i)
	}
	for id, g := range n.Gates {
		name := sigName(id)
		switch g.Kind {
		case Input:
			// declared above
		case Const0:
			fmt.Fprintf(w, ".names %s\n", name) // empty table = constant 0
		case Const1:
			fmt.Fprintf(w, ".names %s\n1\n", name)
		case Buf:
			fmt.Fprintf(w, ".names %s %s\n1 1\n", sigName(g.Fanin[0]), name)
		case Not:
			fmt.Fprintf(w, ".names %s %s\n0 1\n", sigName(g.Fanin[0]), name)
		case And, Or, Nand, Nor:
			fmt.Fprint(w, ".names")
			for _, f := range g.Fanin {
				fmt.Fprintf(w, " %s", sigName(f))
			}
			fmt.Fprintf(w, " %s\n", name)
			k := len(g.Fanin)
			switch g.Kind {
			case And:
				fmt.Fprintf(w, "%s 1\n", ones(k))
			case Nand:
				for i := 0; i < k; i++ {
					fmt.Fprintf(w, "%s 1\n", oneZeroAt(k, i))
				}
			case Or:
				for i := 0; i < k; i++ {
					fmt.Fprintf(w, "%s 1\n", oneOneAt(k, i))
				}
			case Nor:
				fmt.Fprintf(w, "%s 1\n", zeros(k))
			}
		case Xor, Xnor:
			fmt.Fprintf(w, ".names %s %s %s\n", sigName(g.Fanin[0]), sigName(g.Fanin[1]), name)
			if g.Kind == Xor {
				fmt.Fprint(w, "01 1\n10 1\n")
			} else {
				fmt.Fprint(w, "00 1\n11 1\n")
			}
		case Mux:
			fmt.Fprintf(w, ".names %s %s %s %s\n", sigName(g.Fanin[0]),
				sigName(g.Fanin[1]), sigName(g.Fanin[2]), name)
			fmt.Fprint(w, "01- 1\n1-1 1\n")
		case DFF:
			init := 0
			if g.Init {
				init = 1
			}
			fmt.Fprintf(w, ".latch %s %s re clk %d\n", sigName(g.Fanin[0]), name, init)
		default:
			return fmt.Errorf("logic: BLIF cannot express %v (gate %d)", g.Kind, id)
		}
	}
	fmt.Fprintln(w, ".end")
	return nil
}

func sanitize(s string) string {
	b := []byte(s)
	for i, c := range b {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
		default:
			b[i] = '_'
		}
	}
	return string(b)
}

func ones(k int) string  { return repeatByte('1', k) }
func zeros(k int) string { return repeatByte('0', k) }

func repeatByte(c byte, k int) string {
	b := make([]byte, k)
	for i := range b {
		b[i] = c
	}
	return string(b)
}

// oneZeroAt: pattern of '-' with a single '0' at position i (NAND rows).
func oneZeroAt(k, i int) string {
	b := []byte(repeatByte('-', k))
	b[i] = '0'
	return string(b)
}

// oneOneAt: pattern of '-' with a single '1' at position i (OR rows).
func oneOneAt(k, i int) string {
	b := []byte(repeatByte('-', k))
	b[i] = '1'
	return string(b)
}
