package bitutil

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestHamming(t *testing.T) {
	cases := []struct {
		a, b uint64
		want int
	}{
		{0, 0, 0},
		{0, 1, 1},
		{0b1010, 0b0101, 4},
		{^uint64(0), 0, 64},
		{0xFF, 0xF0, 4},
	}
	for _, c := range cases {
		if got := Hamming(c.a, c.b); got != c.want {
			t.Errorf("Hamming(%#x,%#x) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestHammingBits(t *testing.T) {
	a := []bool{true, false, true}
	b := []bool{false, false, true}
	if got := HammingBits(a, b); got != 1 {
		t.Errorf("HammingBits = %d, want 1", got)
	}
}

func TestHammingSymmetry(t *testing.T) {
	f := func(a, b uint64) bool { return Hamming(a, b) == Hamming(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHammingTriangle(t *testing.T) {
	f := func(a, b, c uint64) bool {
		return Hamming(a, c) <= Hamming(a, b)+Hamming(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTransitions(t *testing.T) {
	stream := []uint64{0b00, 0b01, 0b11, 0b00}
	if got := Transitions(stream, 2); got != 4 {
		t.Errorf("Transitions = %d, want 4", got)
	}
	if got := Transitions(stream[:1], 2); got != 0 {
		t.Errorf("Transitions single = %d, want 0", got)
	}
	if got := Transitions(nil, 8); got != 0 {
		t.Errorf("Transitions nil = %d, want 0", got)
	}
}

func TestTransitionsMasked(t *testing.T) {
	// Changes above the mask must not count.
	stream := []uint64{0x100, 0x200}
	if got := Transitions(stream, 8); got != 0 {
		t.Errorf("masked Transitions = %d, want 0", got)
	}
}

func TestMask(t *testing.T) {
	if Mask(0) != 0 {
		t.Error("Mask(0) != 0")
	}
	if Mask(8) != 0xFF {
		t.Error("Mask(8) != 0xFF")
	}
	if Mask(64) != ^uint64(0) {
		t.Error("Mask(64) != all ones")
	}
}

func TestBitsRoundTrip(t *testing.T) {
	f := func(w uint64) bool {
		return FromBits(ToBits(w, 64)) == w
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetBit(t *testing.T) {
	w := SetBit(0, 5, true)
	if !Bit(w, 5) {
		t.Error("SetBit true failed")
	}
	w = SetBit(w, 5, false)
	if Bit(w, 5) {
		t.Error("SetBit false failed")
	}
}

func TestGrayRoundTrip(t *testing.T) {
	f := func(w uint64) bool { return GrayInverse(Gray(w)) == w }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGrayAdjacent(t *testing.T) {
	// Consecutive integers have Gray codes at Hamming distance exactly 1.
	for i := uint64(0); i < 1000; i++ {
		if Hamming(Gray(i), Gray(i+1)) != 1 {
			t.Fatalf("Gray(%d) vs Gray(%d) not adjacent", i, i+1)
		}
	}
}

func TestSignExtend(t *testing.T) {
	if SignExtend(0xFF, 8) != -1 {
		t.Errorf("SignExtend(0xFF,8) = %d, want -1", SignExtend(0xFF, 8))
	}
	if SignExtend(0x7F, 8) != 127 {
		t.Errorf("SignExtend(0x7F,8) = %d, want 127", SignExtend(0x7F, 8))
	}
	if SignExtend(0x80, 8) != -128 {
		t.Errorf("SignExtend(0x80,8) = %d, want -128", SignExtend(0x80, 8))
	}
}

func TestBitProbabilities(t *testing.T) {
	stream := []uint64{0b01, 0b01, 0b11, 0b00}
	p := BitProbabilities(stream, 2)
	if p[0] != 0.75 {
		t.Errorf("p[0] = %v, want 0.75", p[0])
	}
	if p[1] != 0.25 {
		t.Errorf("p[1] = %v, want 0.25", p[1])
	}
}

func TestBitActivities(t *testing.T) {
	stream := []uint64{0b0, 0b1, 0b0, 0b1}
	a := BitActivities(stream, 1)
	if a[0] != 1 {
		t.Errorf("a[0] = %v, want 1 (toggles every cycle)", a[0])
	}
}

func TestMeanActivityRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	stream := make([]uint64, 20000)
	for i := range stream {
		stream[i] = rng.Uint64()
	}
	got := MeanActivity(stream, 32)
	if got < 0.48 || got > 0.52 {
		t.Errorf("random stream activity = %v, want ~0.5", got)
	}
}

func TestMeanActivityEdge(t *testing.T) {
	if MeanActivity(nil, 8) != 0 {
		t.Error("nil stream should have 0 activity")
	}
	if MeanActivity([]uint64{1, 2}, 0) != 0 {
		t.Error("0-width stream should have 0 activity")
	}
}
