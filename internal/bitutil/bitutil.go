// Package bitutil provides small bit-level helpers shared by the power
// models: Hamming distance, transition counting over vector streams, and
// conversions between integer words and bit slices.
package bitutil

import "math/bits"

// Hamming returns the number of bit positions in which a and b differ.
func Hamming(a, b uint64) int {
	return bits.OnesCount64(a ^ b)
}

// HammingBits returns the number of positions where the bool slices differ.
// The slices must have equal length.
func HammingBits(a, b []bool) int {
	d := 0
	for i := range a {
		if a[i] != b[i] {
			d++
		}
	}
	return d
}

// Transitions returns the total number of bit transitions between
// consecutive words of the stream, counting the low n bits of each word.
func Transitions(stream []uint64, n int) int {
	if len(stream) < 2 {
		return 0
	}
	mask := Mask(n)
	total := 0
	for i := 1; i < len(stream); i++ {
		total += bits.OnesCount64((stream[i] ^ stream[i-1]) & mask)
	}
	return total
}

// Mask returns a mask with the low n bits set. n must be in [0, 64].
func Mask(n int) uint64 {
	if n >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(n)) - 1
}

// Bit reports whether bit i of w is set.
func Bit(w uint64, i int) bool {
	return w>>uint(i)&1 == 1
}

// SetBit returns w with bit i set to v.
func SetBit(w uint64, i int, v bool) uint64 {
	if v {
		return w | 1<<uint(i)
	}
	return w &^ (1 << uint(i))
}

// ToBits expands the low n bits of w into a bool slice, LSB first.
func ToBits(w uint64, n int) []bool {
	b := make([]bool, n)
	for i := 0; i < n; i++ {
		b[i] = Bit(w, i)
	}
	return b
}

// FromBits packs a bool slice (LSB first) into a word. len(b) must be <= 64.
func FromBits(b []bool) uint64 {
	var w uint64
	for i, v := range b {
		if v {
			w |= 1 << uint(i)
		}
	}
	return w
}

// OnesCount returns the popcount of w.
func OnesCount(w uint64) int { return bits.OnesCount64(w) }

// Gray returns the Gray-code image of w: w XOR (w >> 1).
func Gray(w uint64) uint64 { return w ^ (w >> 1) }

// GrayInverse returns the binary value whose Gray code is g.
func GrayInverse(g uint64) uint64 {
	b := g
	for s := uint(1); s < 64; s <<= 1 {
		b ^= b >> s
	}
	return b
}

// SignExtend sign-extends the low n bits of w to a signed 64-bit value.
func SignExtend(w uint64, n int) int64 {
	if n <= 0 || n >= 64 {
		return int64(w)
	}
	shift := uint(64 - n)
	return int64(w<<shift) >> shift
}

// BitProbabilities returns, for each of the low n bit positions, the
// fraction of words in the stream that have the bit set.
func BitProbabilities(stream []uint64, n int) []float64 {
	p := make([]float64, n)
	if len(stream) == 0 {
		return p
	}
	for _, w := range stream {
		for i := 0; i < n; i++ {
			if Bit(w, i) {
				p[i]++
			}
		}
	}
	inv := 1 / float64(len(stream))
	for i := range p {
		p[i] *= inv
	}
	return p
}

// BitActivities returns, for each of the low n bit positions, the average
// number of transitions per cycle (0..1) over the stream.
func BitActivities(stream []uint64, n int) []float64 {
	a := make([]float64, n)
	if len(stream) < 2 {
		return a
	}
	for i := 1; i < len(stream); i++ {
		d := stream[i] ^ stream[i-1]
		for b := 0; b < n; b++ {
			if Bit(d, b) {
				a[b]++
			}
		}
	}
	inv := 1 / float64(len(stream)-1)
	for i := range a {
		a[i] *= inv
	}
	return a
}

// MeanActivity returns the average per-bit switching activity of the low n
// bits of the stream: total transitions / ((len-1) * n).
func MeanActivity(stream []uint64, n int) float64 {
	if len(stream) < 2 || n == 0 {
		return 0
	}
	return float64(Transitions(stream, n)) / (float64(len(stream)-1) * float64(n))
}
