package experiments

import (
	"fmt"
	"math/rand"

	"hlpower/internal/bitutil"
	"hlpower/internal/fsm"
	"hlpower/internal/logic"
	"hlpower/internal/lopt"
	"hlpower/internal/memmodel"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

func init() {
	register("E18", "§III-I: precomputation, gated clocks, guarded evaluation", runE18)
	register("E19", "§III-J: power-driven retiming (glitch filtering)", runE19)
	register("E20", "§II-C1: Liu-Svensson SRAM organization sweep", runE20)
}

func runE18() (*Report, error) {
	figures := map[string]float64{}
	t := newTable(22, 16, 16, 10)
	t.row("technique", "baseline cap", "optimized cap", "saving")
	t.rule()

	// --- Precomputation on the structural comparator (the canonical
	// example of [99], wide enough that block A dominates the predictors).
	w := 12
	nIn := 2 * w
	res := lopt.PrecomputeComparator(w)
	rng := rand.New(rand.NewSource(61))
	stream := trace.Uniform(800, nIn, rng)
	prov := func(c int) []bool { return bitutil.ToBits(stream[c], nIn) }
	base, err := sim.Run(res.Baseline, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		return nil, err
	}
	pre, err := sim.Run(res.Precomputed, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		return nil, err
	}
	s1 := 1 - pre.SwitchedCap/base.SwitchedCap
	t.row("precomputation", f1(base.SwitchedCap), f1(pre.SwitchedCap), pct(s1))
	figures["precompute_saving"] = s1
	figures["precompute_prob"] = res.ProbShut

	// --- Gated clock on a hold-heavy controller.
	f := &fsm.FSM{NumInputs: 1, NumOutputs: 2, NumStates: 8,
		Next: make([][]int, 8), Out: make([][]uint64, 8)}
	for s := 0; s < 8; s++ {
		f.Next[s] = []int{s, (s + 1) % 8}
		f.Out[s] = []uint64{uint64(s & 3), uint64(s & 3)}
	}
	enc := fsm.BinaryEncoding(8)
	plain, err := fsm.Synthesize(f, enc)
	if err != nil {
		return nil, err
	}
	gated, err := lopt.GatedController(f, enc)
	if err != nil {
		return nil, err
	}
	symbols := make([][]bool, 1000)
	for i := range symbols {
		symbols[i] = []bool{rng.Float64() < 0.15} // 85% hold
	}
	a, err := sim.Run(plain, sim.VectorInputs(symbols), len(symbols),
		sim.Options{Model: sim.EventDriven, TrackClock: true})
	if err != nil {
		return nil, err
	}
	b, err := sim.Run(gated, sim.VectorInputs(symbols), len(symbols),
		sim.Options{Model: sim.EventDriven, TrackClock: true, GateClock: true})
	if err != nil {
		return nil, err
	}
	s2 := 1 - b.SwitchedCap/a.SwitchedCap
	t.row("gated clock", f1(a.SwitchedCap), f1(b.SwitchedCap), pct(s2))
	figures["gated_saving"] = s2
	figures["gated_clock_saving"] = 1 - b.ByGroup["clock"]/a.ByGroup["clock"]

	// --- Guarded evaluation on a mux of deep cones.
	nl := logic.New()
	sel := nl.AddInput("sel")
	x := nl.AddInputBus("x", 12)
	z := nl.AddInputBus("z", 12)
	h := x[0]
	for i := 1; i < 12; i++ {
		h = nl.Add(logic.Xor, h, x[i])
	}
	gg := z[0]
	for i := 1; i < 12; i++ {
		if i%2 == 0 {
			gg = nl.Add(logic.And, gg, z[i])
		} else {
			gg = nl.Add(logic.Or, gg, z[i])
		}
	}
	nl.MarkOutput(nl.Add(logic.Mux, sel, h, gg))
	guarded, cones := lopt.GuardEvaluation(nl)
	vectors := make([][]bool, 1000)
	for c := range vectors {
		vec := make([]bool, 25)
		vec[0] = rng.Float64() < 0.9 // xor cone deselected 90% of cycles
		for i := 1; i < len(vec); i++ {
			vec[i] = rng.Intn(2) == 1
		}
		vectors[c] = vec
	}
	ga, err := sim.Run(nl, sim.VectorInputs(vectors), len(vectors), sim.Options{Model: sim.EventDriven})
	if err != nil {
		return nil, err
	}
	gb, err := sim.Run(guarded, sim.VectorInputs(vectors), len(vectors), sim.Options{Model: sim.EventDriven})
	if err != nil {
		return nil, err
	}
	s3 := 1 - gb.SwitchedCap/ga.SwitchedCap
	t.row("guarded evaluation", f1(ga.SwitchedCap), f1(gb.SwitchedCap), pct(s3))
	figures["guarded_saving"] = s3
	figures["guarded_cones"] = float64(cones)

	text := t.String() + fmt.Sprintf(
		"\nprecomputation shutdown probability: %.2f; gated-clock tree saving: %s\n"+
			"paper: each shutdown technique pays off in proportion to its idle probability\n",
		res.ProbShut, pct(figures["gated_clock_saving"]))
	return &Report{Text: text, Figures: figures}, nil
}

func runE19() (*Report, error) {
	// Deep unbalanced xor network (glitch generator) feeding further
	// logic: compare output-register-only vs power-driven register
	// placement.
	n := logic.New()
	in := n.AddInputBus("x", 12)
	cur := in[0]
	var mids []int
	for i := 1; i < 12; i++ {
		cur = n.Add(logic.Xor, cur, in[i])
		mids = append(mids, cur)
	}
	tail := cur
	for i := 0; i < 10; i++ {
		tail = n.Add(logic.Xor, tail, mids[i%len(mids)])
	}
	n.MarkOutput(tail)

	rng := rand.New(rand.NewSource(67))
	stream := trace.Uniform(250, 12, rng)
	prov := func(c int) []bool { return bitutil.ToBits(stream[c], 12) }

	baseline, err := sim.Run(n, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		return nil, err
	}
	t := newTable(12, 16, 14)
	t.row("cut depth", "switched cap", "vs baseline")
	t.rule()
	t.row("none", f1(baseline.SwitchedCap), "-")
	maxDepth := n.Depth()
	figures := map[string]float64{"baseline": baseline.SwitchedCap}
	bestDepth, bestNet, err := lopt.RetimeForPower(n, prov, len(stream))
	if err != nil {
		return nil, err
	}
	for d := 1; d < maxDepth; d += 3 {
		cut, err := lopt.PipelineCut(n, d)
		if err != nil {
			return nil, err
		}
		res, err := sim.Run(cut, prov, len(stream), sim.Options{Model: sim.EventDriven})
		if err != nil {
			return nil, err
		}
		t.row(fmt.Sprint(d), f1(res.SwitchedCap), f2(res.SwitchedCap/baseline.SwitchedCap))
		figures[fmt.Sprintf("cut_%d", d)] = res.SwitchedCap
	}
	bestRes, err := sim.Run(bestNet, prov, len(stream), sim.Options{Model: sim.EventDriven})
	if err != nil {
		return nil, err
	}
	figures["best_depth"] = float64(bestDepth)
	figures["best_cap"] = bestRes.SwitchedCap
	figures["logic_saving"] = 1 - bestRes.ByGroup["logic"]/baseline.ByGroup["logic"]
	text := t.String() + fmt.Sprintf(
		"\npower-driven choice: cut at depth %d, logic switching saving %s\n"+
			"paper: registers placed after glitchy gates filter spurious transitions\n",
		bestDepth, pct(figures["logic_saving"]))
	return &Report{Text: text, Figures: figures}, nil
}

func runE20() (*Report, error) {
	p := memmodel.DefaultMemoryParams()
	n := 14
	sweep, err := memmodel.MemorySweep(p, n)
	if err != nil {
		return nil, err
	}
	best, err := memmodel.OptimalK(p, n)
	if err != nil {
		return nil, err
	}
	t := newTable(6, 12, 12, 12, 12, 12, 12)
	t.row("k", "cells", "rowdec", "wordline", "colsel", "sense", "total")
	t.rule()
	for _, b := range sweep {
		mark := ""
		if b.K == best {
			mark = " *"
		}
		t.row(fmt.Sprint(b.K)+mark, f1(b.Cells), f1(b.RowDecoder), f1(b.WordLine),
			f1(b.ColumnSel), f1(b.SenseAmps), f1(b.Total()))
	}
	figures := map[string]float64{
		"optimal_k":    float64(best),
		"best_total":   sweep[best].Total(),
		"k0_total":     sweep[0].Total(),
		"kn_total":     sweep[n].Total(),
		"edge_penalty": sweep[n].Total() / sweep[best].Total(),
	}
	// Whole-chip parametric estimate (the [42] processor decomposition).
	cfg := memmodel.ProcessorConfig{
		Mem: p, MemBits: n, MemSplitK: best,
		NumFF: 4096, DieSide: 10, LogicGates: 80000, Activity: 0.15,
		BusWidth: 32, BusLength: 8, Pins: 96, Vdd: 1, Freq: 1,
	}
	proc, err := memmodel.Processor(cfg)
	if err != nil {
		return nil, err
	}
	t2 := newTable(10, 12, 10)
	t2.row("component", "power", "% total")
	t2.rule()
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"memory", proc.Memory}, {"clock", proc.Clock}, {"logic", proc.Logic},
		{"bus", proc.Bus}, {"pads", proc.Pads},
	} {
		t2.row(c.name, f1(c.v), pct(c.v/proc.Total()))
	}
	figures["proc_total"] = proc.Total()
	figures["proc_mem_share"] = proc.Memory / proc.Total()

	text := t.String() + "\n" + t2.String() + fmt.Sprintf(
		"\n2^%d-bit SRAM: optimal column split k=%d (interior); extreme aspect ratios cost up to %.1fx\n"+
			"paper: the parametric model decomposes whole-chip power by component without a netlist\n",
		n, best, figures["edge_penalty"])
	return &Report{Text: text, Figures: figures}, nil
}
