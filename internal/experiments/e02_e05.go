package experiments

import (
	"fmt"
	"math/rand"
	"strings"

	"hlpower/internal/budget"
	"hlpower/internal/cdfg"
	"hlpower/internal/dpm"
	"hlpower/internal/isa"
	"hlpower/internal/memmodel"
	"hlpower/internal/memo"
	"hlpower/internal/par"
	"hlpower/internal/stats"
)

// The E2–E5 sweeps fan out per configuration (program, policy, graph)
// through internal/par at the width set by SetParallelism. Random data
// is always drawn serially, in the same order the original serial
// loops drew it, before any fan-out — so the reported figures are
// identical at every worker count.

func init() {
	register("E2", "Fig. 2: memory-access minimization by register caching", runE2)
	register("E3", "§III-B: shutdown policies — static vs predictive vs oracle", runE3)
	register("E4", "Figs. 4-5: behavioral transformations on polynomial evaluation", runE4)
	register("E5", "§II-A: Tiwari instruction-level power model accuracy", runE5)
}

func runE2() (*Report, error) {
	n := 256
	before, after, err := isa.MemOptPair(n)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(7))
	data := isa.RandomData(n, rng)
	ep := isa.DefaultEnergyParams()
	mp := memmodel.DefaultMemoryParams()

	type runOut struct {
		st *isa.Stats
		e  float64
	}
	run := func(p isa.Program) (runOut, error) {
		m := isa.NewMachine(isa.DefaultConfig())
		isa.InitMem(m, 100, data)
		st, tr, err := m.Run(p, true)
		if err != nil {
			return runOut{}, err
		}
		cpuE := isa.MeasureEnergy(tr, ep)
		// Each memory access additionally costs one SRAM access of the
		// Liu–Svensson model (the off-chip/memory-interface power the
		// transformation targets).
		mem, err := memmodel.Memory(mp, 14, 7)
		if err != nil {
			return runOut{}, err
		}
		memE := float64(st.MemReads+st.MemWrites) * mem.Total()
		return runOut{st, cpuE + memE}, nil
	}
	progs := []isa.Program{before, after}
	outs, err := par.Map(nil, Parallelism(), len(progs), func(i int, _ *budget.Budget) (runOut, error) {
		return run(progs[i])
	})
	if err != nil {
		return nil, err
	}
	stB, eB := outs[0].st, outs[0].e
	stA, eA := outs[1].st, outs[1].e

	t := newTable(22, 14, 14)
	t.row("metric", "before", "after")
	t.rule()
	t.row("instructions", fmt.Sprint(stB.Instructions), fmt.Sprint(stA.Instructions))
	t.row("memory reads", fmt.Sprint(stB.MemReads), fmt.Sprint(stA.MemReads))
	t.row("memory writes", fmt.Sprint(stB.MemWrites), fmt.Sprint(stA.MemWrites))
	t.row("total energy", f1(eB), f1(eA))
	memB := stB.MemReads + stB.MemWrites
	memA := stA.MemReads + stA.MemWrites
	text := t.String() + fmt.Sprintf(
		"\nremoved memory accesses: %d (paper: 2n = %d)\nenergy reduction: %.2fx\n",
		memB-memA, 2*n, eB/eA)
	return &Report{
		Text: text,
		Figures: map[string]float64{
			"removed_accesses": float64(memB - memA),
			"expected_2n":      float64(2 * n),
			"energy_ratio":     eB / eA,
		},
	}, nil
}

func runE3() (*Report, error) {
	dev := dpm.DefaultDevice()
	rng := rand.New(rand.NewSource(11))
	w := dpm.Generate(dpm.DefaultWorkload(), rng)
	on := dpm.Simulate(dev, dpm.AlwaysOn{}, w)
	bound := dpm.MaxImprovement(w)

	policies := []dpm.Policy{
		&dpm.StaticTimeout{T: 10},
		&dpm.StaticTimeout{T: 3},
		&dpm.Threshold{ActiveThreshold: 0.5},
		&dpm.Regression{Dev: dev},
		&dpm.HwangWu{Dev: dev, Prewake: true},
		&dpm.Oracle{Dev: dev, Workload: w},
	}
	t := newTable(24, 12, 14, 12)
	t.row("policy", "improvement", "delay penalty", "shutdowns")
	t.rule()
	figures := map[string]float64{"bound": bound}
	// Policies are stateful, so each fan-out task owns its policy value;
	// the workload slice is shared read-only.
	sessionRes, err := par.Map(nil, Parallelism(), len(policies), func(i int, _ *budget.Budget) (dpm.Result, error) {
		return dpm.Simulate(dev, policies[i], w), nil
	})
	if err != nil {
		return nil, err
	}
	for i, pol := range policies {
		res := sessionRes[i]
		imp := dpm.Improvement(on, res)
		t.row(pol.Name(), f2(imp), pct(res.DelayPenalty), fmt.Sprint(res.Shutdowns))
		figures["imp_"+pol.Name()] = imp
		figures["delay_"+pol.Name()] = res.DelayPenalty
	}
	// Second workload: near-periodic idles, where the Hwang-Wu
	// exponential-average prediction converges and prewakeup hides the
	// restart latency ([59]'s improvement over the Srivastava schemes).
	var periodic []dpm.Period
	for i := 0; i < 300; i++ {
		periodic = append(periodic, dpm.Period{
			Active: 1 + 0.1*rng.Float64(),
			Idle:   20 + 0.05*rng.Float64(),
		})
	}
	on2 := dpm.Simulate(dev, dpm.AlwaysOn{}, periodic)
	t2 := newTable(24, 12, 14)
	t2.row("policy (periodic)", "improvement", "delay penalty")
	t2.rule()
	periodicPols := []dpm.Policy{
		&dpm.Threshold{ActiveThreshold: 0.5},
		&dpm.HwangWu{Dev: dev, Prewake: false},
		&dpm.HwangWu{Dev: dev, Prewake: true},
	}
	periodicRes, err := par.Map(nil, Parallelism(), len(periodicPols), func(i int, _ *budget.Budget) (dpm.Result, error) {
		return dpm.Simulate(dev, periodicPols[i], periodic), nil
	})
	if err != nil {
		return nil, err
	}
	for i, pol := range periodicPols {
		res := periodicRes[i]
		name := pol.Name()
		if hw, ok := pol.(*dpm.HwangWu); ok && hw.Prewake {
			name += "+prewake"
		}
		t2.row(name, f2(dpm.Improvement(on2, res)), pct(res.DelayPenalty))
		figures["periodic_imp_"+name] = dpm.Improvement(on2, res)
		figures["periodic_delay_"+name] = res.DelayPenalty
	}

	text := t.String() + "\n" + t2.String() + fmt.Sprintf(
		"\ntheoretical bound 1+TI/TA (session workload): %.1fx\n"+
			"paper: predictive shutdown up to ~38x with ~3%% delay penalty; Hwang-Wu's\n"+
			"prediction correction + prewakeup cut the delay penalty on regular workloads\n", bound)
	return &Report{Text: text, Figures: figures}, nil
}

func runE4() (*Report, error) {
	graphs := []struct {
		name string
		g    *cdfg.Graph
	}{
		{"poly2 direct (Fig.4 left)", cdfg.Poly2Direct()},
		{"poly2 horner (Fig.4 right)", cdfg.Poly2Horner()},
		{"poly3 direct (Fig.5 left)", cdfg.Poly3Direct()},
		{"poly3 horner (Fig.5 right)", cdfg.Poly3Horner()},
	}
	t := newTable(28, 6, 6, 10, 12)
	t.row("implementation", "mults", "adds", "crit.path", "op energy")
	t.rule()
	figures := map[string]float64{}
	type graphOut struct {
		counts map[cdfg.OpKind]int
		cp     int
		energy float64
	}
	outs, err := par.Map(nil, Parallelism(), len(graphs), func(i int, _ *budget.Budget) (graphOut, error) {
		g := graphs[i].g
		return graphOut{counts: g.OpCounts(), cp: g.CriticalPath(nil), energy: g.TotalEnergy(nil)}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, e := range graphs {
		c, cp := outs[i].counts, outs[i].cp
		t.row(e.name, fmt.Sprint(c[cdfg.Mul]), fmt.Sprint(c[cdfg.Add]),
			fmt.Sprint(cp), f1(outs[i].energy))
		figures["cp_"+e.name[:5]+fmt.Sprint(c[cdfg.Mul])] = float64(cp)
	}
	d2, h2 := cdfg.Poly2Direct(), cdfg.Poly2Horner()
	d3, h3 := cdfg.Poly3Direct(), cdfg.Poly3Horner()
	figures["poly2_energy_saving"] = 1 - h2.TotalEnergy(nil)/d2.TotalEnergy(nil)
	figures["poly3_energy_saving"] = 1 - h3.TotalEnergy(nil)/d3.TotalEnergy(nil)
	figures["poly3_cp_cost"] = float64(h3.CriticalPath(nil) - d3.CriticalPath(nil))
	text := t.String() + fmt.Sprintf(
		"\npoly2: transformation saves %.0f%% op energy at +%d critical-path steps (paper: wins)\n"+
			"poly3: saves %.0f%% op energy but +%d steps -> less voltage-scaling headroom (paper: contradictory effects)\n",
		figures["poly2_energy_saving"]*100, h2.CriticalPath(nil)-d2.CriticalPath(nil),
		figures["poly3_energy_saving"]*100, h3.CriticalPath(nil)-d3.CriticalPath(nil))
	return &Report{Text: text, Figures: figures}, nil
}

// e5Memo caches the Tiwari characterization across runE5 invocations:
// the model depends only on (MachineConfig, EnergyParams), so repeated
// experiment sweeps skip the few hundred characterization runs.
var e5Memo = memo.New(memo.Options{MaxBytes: 1 << 20, Shards: 1})

func runE5() (*Report, error) {
	cfg := isa.DefaultConfig()
	ep := isa.DefaultEnergyParams()
	model, err := isa.CharacterizeTiwariCached(e5Memo, cfg, ep)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(13))

	// A program that fails to generate or run is skipped and reported in
	// the summary rather than aborting the whole E2–E5 sweep.
	type progErr struct {
		name string
		prog isa.Program
		err  error
	}
	wrap := func(name string) func(isa.Program, error) progErr {
		return func(p isa.Program, err error) progErr { return progErr{name, p, err} }
	}
	progs := []progErr{
		wrap("vector-sum")(isa.VectorSum(400)),
		wrap("dot-product")(isa.DotProduct(250)),
		wrap("fir-filter")(isa.FIRFilter(8, 64)),
		wrap("mixed-alu")(isa.MixedALU(200)),
		wrap("strided-walk")(isa.StridedWalk(500, 8)),
		wrap("matmul-6")(isa.MatMul(6)),
		wrap("bubble-24")(isa.BubbleSort(24)),
	}
	t := newTable(16, 14, 14, 10)
	t.row("program", "measured", "predicted", "error")
	t.rule()
	var worst, sum float64
	var skipped []string
	ran := 0
	figures := map[string]float64{}
	// Memory images are drawn serially here, in the exact order the
	// original per-program loop drew them (generation-failed programs
	// draw nothing), so the fan-out below cannot perturb the rng stream.
	images := make(map[int][4][]int64, len(progs))
	for i, p := range progs {
		if p.err != nil {
			continue
		}
		images[i] = [4][]int64{
			isa.RandomData(64, rng),
			isa.RandomData(800, rng),
			isa.RandomData(80, rng),
			isa.RandomData(32, rng),
		}
	}
	type progOut struct {
		truth, pred float64
		err         error
	}
	outs, perr := par.Map(nil, Parallelism(), len(progs), func(i int, _ *budget.Budget) (progOut, error) {
		p := progs[i]
		if p.err != nil {
			return progOut{err: p.err}, nil
		}
		img := images[i]
		m := isa.NewMachine(cfg)
		isa.InitMem(m, 50, img[0])
		isa.InitMem(m, 100, img[1])
		isa.InitMem(m, 1000, img[2])
		isa.InitMem(m, 3000, img[3])
		st, tr, err := m.Run(p.prog, true)
		if err != nil {
			return progOut{err: err}, nil
		}
		return progOut{truth: isa.MeasureEnergy(tr, ep), pred: model.Predict(st)}, nil
	})
	if perr != nil {
		return nil, perr
	}
	for i, p := range progs {
		if outs[i].err != nil {
			skipped = append(skipped, fmt.Sprintf("%s (%v)", p.name, outs[i].err))
			t.row(p.name, "-", "-", "skipped")
			continue
		}
		truth, pred := outs[i].truth, outs[i].pred
		rel := stats.RelError(pred, truth)
		if rel > worst {
			worst = rel
		}
		sum += rel
		ran++
		figures["err_"+p.name] = rel
		t.row(p.name, f1(truth), f1(pred), pct(rel))
	}
	if ran == 0 {
		return nil, fmt.Errorf("e5: every benchmark program failed: %s", strings.Join(skipped, "; "))
	}
	figures["worst_error"] = worst
	figures["mean_error"] = sum / float64(ran)
	figures["programs_skipped"] = float64(len(skipped))
	text := t.String() + fmt.Sprintf(
		"\nmean error %.1f%%, worst %.1f%% (paper: instruction-level model tracks measurements closely)\n",
		figures["mean_error"]*100, worst*100)
	if len(skipped) > 0 {
		text += fmt.Sprintf("skipped %d of %d programs: %s\n",
			len(skipped), len(progs), strings.Join(skipped, "; "))
	}
	return &Report{Text: text, Figures: figures}, nil
}
