package experiments

// These tests pin the *shape* of every reproduced result: who wins, in
// which direction, and within which band — the reproduction contract
// stated in DESIGN.md. Absolute values are allowed to differ from the
// paper (our substrate is a unit-capacitance simulator, not the authors'
// testbed).

import (
	"strings"
	"testing"
)

func run(t *testing.T, id string) *Report {
	t.Helper()
	rep, err := Run(id)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if rep.Text == "" || len(rep.Figures) == 0 {
		t.Fatalf("%s: empty report", id)
	}
	return rep
}

func TestRegistryComplete(t *testing.T) {
	ids := IDs()
	if len(ids) != 20 {
		t.Fatalf("registered %d experiments, want 20: %v", len(ids), ids)
	}
	if ids[0] != "E1" || ids[19] != "E20" {
		t.Errorf("ordering wrong: %v", ids)
	}
	for _, id := range ids {
		if Title(id) == "" {
			t.Errorf("%s has no title", id)
		}
	}
	if _, err := Run("E99"); err == nil {
		t.Error("unknown id should fail")
	}
}

func TestE1TableIShape(t *testing.T) {
	rep := run(t, "E1")
	if rep.Figures["exec_reduction"] < 2 {
		t.Errorf("execution-unit reduction %v, want substantial (paper ~7.9x)", rep.Figures["exec_reduction"])
	}
	if rep.Figures["total_reduction"] < 1.2 {
		t.Errorf("total reduction %v, want >1.2 (paper ~2.65x)", rep.Figures["total_reduction"])
	}
	if rep.Figures["ctrl_after"] <= rep.Figures["ctrl_before"] {
		t.Error("control capacitance should increase after the transformation (paper: yes)")
	}
	if !strings.Contains(rep.Text, "Execution units") {
		t.Error("table missing")
	}
}

func TestE2MemoryShape(t *testing.T) {
	rep := run(t, "E2")
	if rep.Figures["removed_accesses"] != rep.Figures["expected_2n"] {
		t.Errorf("removed %v accesses, want exactly 2n = %v",
			rep.Figures["removed_accesses"], rep.Figures["expected_2n"])
	}
	if rep.Figures["energy_ratio"] <= 1 {
		t.Error("transformation must reduce energy")
	}
}

func TestE3ShutdownShape(t *testing.T) {
	rep := run(t, "E3")
	imp := func(k string) float64 { return rep.Figures["imp_"+k] }
	if imp("srivastava-threshold") <= imp("static-timeout") {
		t.Errorf("predictive %v should beat static %v", imp("srivastava-threshold"), imp("static-timeout"))
	}
	if imp("oracle") < imp("srivastava-threshold") {
		t.Error("nothing beats the oracle")
	}
	if imp("oracle") > rep.Figures["bound"] {
		t.Error("oracle exceeds the 1+TI/TA bound")
	}
	if imp("srivastava-threshold") < 10 {
		t.Errorf("predictive improvement %v too small for an idle-dominated trace", imp("srivastava-threshold"))
	}
	if rep.Figures["delay_srivastava-threshold"] > 0.15 {
		t.Errorf("delay penalty %v too large", rep.Figures["delay_srivastava-threshold"])
	}
}

func TestE4TransformShape(t *testing.T) {
	rep := run(t, "E4")
	if rep.Figures["poly2_energy_saving"] <= 0 || rep.Figures["poly3_energy_saving"] <= 0 {
		t.Error("transformations must save operation energy")
	}
	if rep.Figures["poly3_cp_cost"] <= 0 {
		t.Error("3rd-order transformation must lengthen the critical path (the paper's point)")
	}
}

func TestE5TiwariShape(t *testing.T) {
	rep := run(t, "E5")
	if rep.Figures["mean_error"] > 0.08 {
		t.Errorf("mean error %v, want < 8%%", rep.Figures["mean_error"])
	}
	if rep.Figures["worst_error"] > 0.15 {
		t.Errorf("worst error %v, want < 15%%", rep.Figures["worst_error"])
	}
}

func TestE6SynthesisShape(t *testing.T) {
	rep := run(t, "E6")
	for k, v := range rep.Figures {
		if strings.HasPrefix(k, "ratio_") && v < 5 {
			t.Errorf("%s = %v, want a large trace-length reduction", k, v)
		}
		if strings.HasPrefix(k, "err_") && v > 0.2 {
			t.Errorf("%s = %v, want small power error", k, v)
		}
	}
}

func TestE7EntropyShape(t *testing.T) {
	rep := run(t, "E7")
	if rep.Figures["corr_marculescu"] < 0.9 || rep.Figures["corr_nemani"] < 0.9 {
		t.Errorf("entropy estimates should track measured power: corrs %v, %v",
			rep.Figures["corr_marculescu"], rep.Figures["corr_nemani"])
	}
	if rep.Figures["ca_worst_ratio"] < 3 {
		t.Errorf("cheng-agrawal should be pessimistic on structured circuits, worst ratio %v",
			rep.Figures["ca_worst_ratio"])
	}
	if rep.Figures["ferrandi_dev"] > 1.0 {
		t.Errorf("ferrandi fit deviation %v too large", rep.Figures["ferrandi_dev"])
	}
}

func TestE8TyagiShape(t *testing.T) {
	rep := run(t, "E8")
	if rep.Figures["violations"] != 0 {
		t.Errorf("%v encodings beat the lower bound — impossible", rep.Figures["violations"])
	}
	if rep.Figures["asymptotic_bound"] <= 0 {
		t.Error("the asymptotic-regime bound should be positive")
	}
	if rep.Figures["asymptotic_bound"] > rep.Figures["asymptotic_random_cost"] {
		t.Error("bound must stay below the random-encoding cost")
	}
}

func TestE9AreaShape(t *testing.T) {
	rep := run(t, "E9")
	for _, q := range []string{"0.2", "0.5", "0.8"} {
		if rep.Figures["slope_q"+q] <= 0 {
			t.Errorf("area-vs-complexity slope at q=%s should be positive", q)
		}
	}
	if rep.Figures["landman_err"] > 0.25 {
		t.Errorf("landman-rabaey prediction error %v too large", rep.Figures["landman_err"])
	}
}

func TestE10LadderShape(t *testing.T) {
	rep := run(t, "E10")
	for _, mod := range []string{"add8", "mul8"} {
		pfa := rep.Figures[mod+"_pfa_cycle"]
		ca := rep.Figures[mod+"_cycle-accurate_cycle"]
		if ca >= pfa {
			t.Errorf("%s: cycle-accurate (%v) should beat PFA (%v) on cycle error", mod, ca, pfa)
		}
		if rep.Figures[mod+"_cycle-accurate_avg"] > 0.10 {
			t.Errorf("%s: cycle-accurate avg error %v exceeds the paper's 5-10%% band",
				mod, rep.Figures[mod+"_cycle-accurate_avg"])
		}
		if rep.Figures[mod+"_cycle-accurate_cycle"] > 0.25 {
			t.Errorf("%s: cycle error %v well above the 10-20%% band",
				mod, rep.Figures[mod+"_cycle-accurate_cycle"])
		}
	}
}

func TestE11SamplingShape(t *testing.T) {
	rep := run(t, "E11")
	if rep.Figures["sampler_speedup"] < 20 {
		t.Errorf("sampler speedup %v, want >= 20x (paper ~50x)", rep.Figures["sampler_speedup"])
	}
	if rep.Figures["sampler_vs_census"] > 0.05 {
		t.Errorf("sampler deviation from census %v, want ~1%%", rep.Figures["sampler_vs_census"])
	}
	if rep.Figures["adaptive_error"] > rep.Figures["census_bias"]/3 {
		t.Errorf("adaptive error %v should slash the census bias %v",
			rep.Figures["adaptive_error"], rep.Figures["census_bias"])
	}
}

func TestE12ColdShape(t *testing.T) {
	rep := run(t, "E12")
	if rep.Figures["reduction"] < 0.05 {
		t.Errorf("cold scheduling reduction %v too small", rep.Figures["reduction"])
	}
}

func TestE13PMShape(t *testing.T) {
	rep := run(t, "E13")
	if rep.Figures["manageable"] < 1 {
		t.Error("no manageable muxes found")
	}
	if rep.Figures["saving"] < 0.1 {
		t.Errorf("PM scheduling saving %v too small", rep.Figures["saving"])
	}
}

func TestE14AllocationShape(t *testing.T) {
	rep := run(t, "E14")
	if s := rep.Figures["saving"]; s < 0.02 || s > 0.5 {
		t.Errorf("allocation saving %v outside the plausible 5-33%% region", s)
	}
}

func TestE15MultiVddShape(t *testing.T) {
	rep := run(t, "E15")
	if rep.Figures["curve_points"] < 3 {
		t.Error("energy-delay curve should have several tradeoff points")
	}
	if rep.Figures["saving_3x"] < 0.3 {
		t.Errorf("3x-latency saving %v too small", rep.Figures["saving_3x"])
	}
	if rep.Figures["low_ops"] < 1 {
		t.Error("some operations should run at reduced voltage")
	}
}

func TestE16BusShape(t *testing.T) {
	rep := run(t, "E16")
	f := rep.Figures
	if f["random data/bus-invert"] >= f["random data/binary"] {
		t.Error("bus-invert should win on random data")
	}
	if f["sequential addr/gray"] > 1.01 {
		t.Errorf("gray on sequential = %v, want ~1", f["sequential addr/gray"])
	}
	if f["sequential addr/t0"] > 0.01 {
		t.Errorf("t0 on sequential = %v, want ~0", f["sequential addr/t0"])
	}
	if f["interleaved zones/working-zone"] >= f["interleaved zones/gray"] ||
		f["interleaved zones/working-zone"] >= f["interleaved zones/t0"] {
		t.Error("working-zone should win over gray and t0 on interleaved arrays")
	}
	if f["block-correlated/beach"] >= f["block-correlated/binary"] {
		t.Error("beach should win on block-correlated traces")
	}
}

func TestE17EncodingShape(t *testing.T) {
	rep := run(t, "E17")
	f := rep.Figures
	if f["wham_low-power"] >= f["wham_binary"] {
		t.Error("low-power encoding should beat binary on the weighted-Hamming model")
	}
	if f["cap_low-power"] >= f["cap_binary"] {
		t.Error("low-power encoding should beat binary on synthesized-netlist power")
	}
	if f["cap_one-hot"] <= f["cap_binary"] {
		t.Error("one-hot should cost more than binary at this state count")
	}
}

func TestE18ShutdownShape(t *testing.T) {
	rep := run(t, "E18")
	for _, k := range []string{"precompute_saving", "gated_saving", "guarded_saving"} {
		if rep.Figures[k] <= 0.01 {
			t.Errorf("%s = %v, want positive savings", k, rep.Figures[k])
		}
	}
	if rep.Figures["gated_clock_saving"] < 0.5 {
		t.Errorf("gated clock-tree saving %v too small for an 85%%-hold controller",
			rep.Figures["gated_clock_saving"])
	}
}

func TestE19RetimingShape(t *testing.T) {
	rep := run(t, "E19")
	if rep.Figures["best_cap"] >= rep.Figures["baseline"] {
		t.Error("best cut should beat the unpipelined baseline's total switching")
	}
	if rep.Figures["logic_saving"] < 0.1 {
		t.Errorf("glitch-filtering saving %v too small", rep.Figures["logic_saving"])
	}
}

func TestE20MemoryShape(t *testing.T) {
	rep := run(t, "E20")
	k := rep.Figures["optimal_k"]
	if k <= 0 || k >= 14 {
		t.Errorf("optimal k = %v should be interior", k)
	}
	if rep.Figures["best_total"] >= rep.Figures["k0_total"] ||
		rep.Figures["best_total"] >= rep.Figures["kn_total"] {
		t.Error("interior optimum should beat both extremes")
	}
}
