package experiments

import (
	"fmt"
	"math/rand"

	"hlpower/internal/cdfg"
	"hlpower/internal/isa"
	"hlpower/internal/macromodel"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/stats"
	"hlpower/internal/trace"
)

func init() {
	register("E10", "§II-C1: macro-model accuracy ladder (PFA ... cycle-accurate)", runE10)
	register("E11", "§II-C2: census vs sampler vs adaptive macro-modeling", runE11)
	register("E12", "§III-A: cold scheduling of instruction-bus transitions", runE12)
	register("E13", "§III-D: power-management scheduling (Monteiro)", runE13)
}

func runE10() (*Report, error) {
	rng := rand.New(rand.NewSource(31))
	const w = 8
	modules := []*rtlib.Module{rtlib.NewAdder(w), rtlib.NewMultiplier(w)}

	// Characterize on a mixed stream (uniform + correlated), test on a
	// fresh correlated stream — the realistic deployment of §II-C1.
	trainA := trace.Mixed(trace.Uniform(1200, w, rng), trace.AR1(1200, w, 0.9, 0.2, rng))
	trainB := trace.Mixed(trace.Uniform(1200, w, rng), trace.AR1(1200, w, 0.9, 0.2, rng))
	testA := trace.AR1(700, w, 0.9, 0.2, rng)
	testB := trace.AR1(700, w, 0.9, 0.2, rng)

	figures := map[string]float64{}
	var text string
	for _, mod := range modules {
		type fitRes struct {
			name string
			m    macromodel.Model
			err  error
		}
		var fits []fitRes
		pfa, err := macromodel.FitPFA(mod, trainA, trainB, sim.ZeroDelay)
		fits = append(fits, fitRes{"pfa", pfa, err})
		dbt, err := macromodel.FitDBT(mod, trainA, trainB, sim.ZeroDelay)
		fits = append(fits, fitRes{"dual-bit-type", dbt, err})
		bw, err := macromodel.FitBitwise(mod, trainA, trainB, sim.ZeroDelay)
		fits = append(fits, fitRes{"bitwise", bw, err})
		io, err := macromodel.FitIO(mod, trainA, trainB, sim.ZeroDelay)
		fits = append(fits, fitRes{"input-output", io, err})
		t3, err := macromodel.FitTable3D(mod, trainA, trainB, 6, sim.ZeroDelay)
		fits = append(fits, fitRes{"3d-table", t3, err})
		lut, err := macromodel.FitLUT(mod, trainA, trainB, 8, sim.ZeroDelay)
		fits = append(fits, fitRes{"lut-interp", lut, err})
		ca, err := macromodel.FitCycleAccurate(mod, trainA, trainB, 8, 4.0, sim.ZeroDelay)
		fits = append(fits, fitRes{"cycle-accurate", ca, err})
		cc, err := macromodel.FitCycleAccurateCorrelated(mod, trainA, trainB, 10, 4.0, sim.ZeroDelay)
		fits = append(fits, fitRes{"cycle-corr", cc, err})

		t := newTable(16, 12, 12)
		t.row(mod.Name, "avg err", "cycle err")
		t.rule()
		for _, f := range fits {
			if f.err != nil {
				return nil, f.err
			}
			e, err := macromodel.Evaluate(f.m, mod, testA, testB, sim.ZeroDelay)
			if err != nil {
				return nil, err
			}
			t.row(f.name, pct(e.AvgPowerErr), pct(e.CycleErr))
			figures[mod.Name+"_"+f.name+"_avg"] = e.AvgPowerErr
			figures[mod.Name+"_"+f.name+"_cycle"] = e.CycleErr
		}
		text += t.String() + "\n"
	}
	text += "paper: accuracy improves down the ladder; statistically designed models\n" +
		"reach ~5-10% average and ~10-20% cycle error with few variables\n"
	return &Report{Text: text, Figures: figures}, nil
}

func runE11() (*Report, error) {
	rng := rand.New(rand.NewSource(37))
	const w = 8
	mod := rtlib.NewAdder(w)
	trainA := trace.Uniform(1500, w, rng)
	trainB := trace.Uniform(1500, w, rng)
	model, err := macromodel.FitBitwise(mod, trainA, trainB, sim.ZeroDelay)
	if err != nil {
		return nil, err
	}
	// Biased PFA for the adaptive-correction demonstration.
	pfa, err := macromodel.FitPFA(mod, trainA, trainB, sim.ZeroDelay)
	if err != nil {
		return nil, err
	}

	// Long evaluation stream, deliberately unlike the training set.
	testA := trace.AR1(6000, w, 0.98, 0.05, rng)
	testB := trace.AR1(6000, w, 0.98, 0.05, rng)
	truth, err := macromodel.GroundTruth(mod, testA, testB, sim.ZeroDelay)
	if err != nil {
		return nil, err
	}
	trueMean := stats.Mean(truth)

	census := macromodel.Census(model, testA, testB)
	sampler := macromodel.Sampler(model, testA, testB, 30, 5, rng)
	censusPFA := macromodel.Census(pfa, testA, testB)
	adaptive, err := macromodel.Adaptive(pfa, mod, testA, testB, 60, rng, sim.ZeroDelay)
	if err != nil {
		return nil, err
	}

	t := newTable(22, 12, 12, 14)
	t.row("scheme", "estimate", "error", "evals (mm/gate)")
	t.rule()
	t.row("gate-level truth", f2(trueMean), "-", fmt.Sprintf("0/%d", len(truth)))
	t.row("census (bitwise)", f2(census.Estimate), pct(stats.RelError(census.Estimate, trueMean)),
		fmt.Sprintf("%d/0", census.ModelEvals))
	t.row("sampler (bitwise)", f2(sampler.Estimate), pct(stats.RelError(sampler.Estimate, trueMean)),
		fmt.Sprintf("%d/0", sampler.ModelEvals))
	t.row("census (pfa, biased)", f2(censusPFA.Estimate), pct(stats.RelError(censusPFA.Estimate, trueMean)),
		fmt.Sprintf("%d/0", censusPFA.ModelEvals))
	t.row("adaptive (pfa+gate)", f2(adaptive.Estimate), pct(stats.RelError(adaptive.Estimate, trueMean)),
		fmt.Sprintf("%d/%d", adaptive.ModelEvals, adaptive.GateLevelCycles))

	speedup := float64(census.ModelEvals) / float64(sampler.ModelEvals)
	figures := map[string]float64{
		"sampler_speedup": speedup,
		// The sampler's own error is its deviation from the census it
		// replaces (the macro-model's bias is a separate phenomenon the
		// adaptive scheme addresses).
		"sampler_vs_census": stats.RelError(sampler.Estimate, census.Estimate),
		"census_bias":       stats.RelError(censusPFA.Estimate, trueMean),
		"adaptive_error":    stats.RelError(adaptive.Estimate, trueMean),
		"census_error":      stats.RelError(census.Estimate, trueMean),
		"adaptive_gate_pct": float64(adaptive.GateLevelCycles) / float64(len(truth)),
	}
	text := t.String() + fmt.Sprintf(
		"\nsampler: %.0fx fewer evaluations, %.1f%% deviation from census (paper: ~50x at ~1%%)\n"+
			"adaptive: census bias %.1f%% -> %.1f%% with %.1f%% of cycles at gate level (paper: ~30%% -> ~5%%)\n",
		speedup, figures["sampler_vs_census"]*100,
		figures["census_bias"]*100, figures["adaptive_error"]*100, figures["adaptive_gate_pct"]*100)
	return &Report{Text: text, Figures: figures}, nil
}

func runE12() (*Report, error) {
	rng := rand.New(rand.NewSource(41))
	ops := []isa.Op{isa.ADD, isa.SUB, isa.MUL, isa.AND, isa.OR, isa.XOR, isa.SHL, isa.SHR}
	var totalBefore, totalAfter int
	blocks := 200
	for b := 0; b < blocks; b++ {
		var block []isa.Instr
		for i := 0; i < 14; i++ {
			block = append(block, isa.Instr{
				Op:  ops[rng.Intn(len(ops))],
				Rd:  2 + rng.Intn(12),
				Rs1: rng.Intn(4),
				Rs2: rng.Intn(4),
			})
		}
		prev := isa.Instr{Op: isa.NOP}
		totalBefore += isa.BusTransitions(block, prev)
		totalAfter += isa.BusTransitions(isa.ColdSchedule(block, prev, nil), prev)
	}
	saving := 1 - float64(totalAfter)/float64(totalBefore)
	t := newTable(26, 14)
	t.row("metric", "value")
	t.rule()
	t.row("blocks scheduled", fmt.Sprint(blocks))
	t.row("bus transitions before", fmt.Sprint(totalBefore))
	t.row("bus transitions after", fmt.Sprint(totalAfter))
	t.row("reduction", pct(saving))

	// Whole programs: cold scheduling + operand swapping per basic block,
	// measured on executed traces (branches and targets untouched).
	t2 := newTable(14, 14, 14, 10)
	t2.row("program", "bus before", "bus after", "saving")
	t2.rule()
	progs := map[string]isa.Program{}
	if p, err := isa.VectorSum(200); err == nil {
		progs["vecsum"] = p
	}
	if p, err := isa.DotProduct(150); err == nil {
		progs["dot"] = p
	}
	if p, err := isa.FIRFilter(6, 48); err == nil {
		progs["fir"] = p
	}
	var progSavings float64
	names := []string{"vecsum", "dot", "fir"}
	rng2 := rand.New(rand.NewSource(44))
	for _, name := range names {
		prog := progs[name]
		opt := isa.OptimizeBusTraffic(prog)
		run := func(p isa.Program) int64 {
			m := isa.NewMachine(isa.DefaultConfig())
			isa.InitMem(m, 50, isa.RandomData(64, rng2))
			isa.InitMem(m, 100, isa.RandomData(600, rng2))
			st, _, err := m.Run(p, false)
			if err != nil {
				return 0
			}
			return st.BusTraffic
		}
		b0, b1 := run(prog), run(opt)
		s := 1 - float64(b1)/float64(b0)
		progSavings += s
		t2.row(name, fmt.Sprint(b0), fmt.Sprint(b1), pct(s))
	}
	progSavings /= float64(len(names))

	text := t.String() + "\n" + t2.String() +
		"\npaper: cold scheduling lowers instruction-bus switching; loop-dominated\n" +
		"programs benefit less than straightline code (the [6] observation that the\n" +
		"method suits specific architectures/workloads)\n"
	return &Report{Text: text, Figures: map[string]float64{
		"reduction":      saving,
		"program_saving": progSavings,
	}}, nil
}

// e13Graph builds a conditional-rich CDFG: a balanced tree of muxes over
// expensive exclusive branches — the §III-D target shape.
func e13Graph() *cdfg.Graph {
	g := cdfg.New()
	sel1 := g.Input("s1")
	sel2 := g.Input("s2")
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	// Branch A: two multiplies. Branch B: adds. Another conditional pair
	// below feeds the final mux.
	m1 := g.Op(cdfg.Mul, a, b)
	m2 := g.Op(cdfg.Mul, m1, c)
	s1 := g.Op(cdfg.Add, a, d)
	x1 := g.Op(cdfg.Mux, sel1, s1, m2)

	m3 := g.Op(cdfg.Mul, c, d)
	s2 := g.Op(cdfg.Add, b, c)
	s3 := g.Op(cdfg.Add, s2, d)
	x2 := g.Op(cdfg.Mux, sel2, s3, m3)

	y := g.Op(cdfg.Add, x1, x2)
	g.MarkOutput(y)
	return g
}

func runE13() (*Report, error) {
	g := e13Graph()
	plan := cdfg.PlanPowerManagement(g, nil)
	baseline := plan.BaselineEnergy(nil)
	rng := rand.New(rand.NewSource(43))
	trials := 500
	var managed float64
	for i := 0; i < trials; i++ {
		in := map[string]int64{
			"s1": int64(rng.Intn(2)), "s2": int64(rng.Intn(2)),
			"a": int64(rng.Intn(64)), "b": int64(rng.Intn(64)),
			"c": int64(rng.Intn(64)), "d": int64(rng.Intn(64)),
		}
		e, err := plan.EvalEnergy(in, nil)
		if err != nil {
			return nil, err
		}
		managed += e
	}
	managed /= float64(trials)
	saving := 1 - managed/baseline

	t := newTable(28, 12)
	t.row("metric", "value")
	t.rule()
	t.row("manageable muxes", fmt.Sprint(len(plan.Manageable)))
	t.row("baseline op energy", f2(baseline))
	t.row("managed op energy (avg)", f2(managed))
	t.row("saving", pct(saving))
	text := t.String() + "\npaper: scheduling control early lets mutually exclusive units shut down;\n" +
		"savings scale with the energy in exclusive conditional branches\n"
	return &Report{Text: text, Figures: map[string]float64{
		"manageable": float64(len(plan.Manageable)),
		"saving":     saving,
	}}, nil
}
