package experiments

import (
	"math"
	"runtime"
	"strings"
	"testing"
)

// TestIDsNumericOrder: the id listing is numeric-aware (E2 before E10),
// stable, and duplicate-free.
func TestIDsNumericOrder(t *testing.T) {
	ids := IDs()
	if len(ids) == 0 {
		t.Fatal("no experiments registered")
	}
	seen := map[string]bool{}
	for i := 1; i < len(ids); i++ {
		if expNum(ids[i-1]) >= expNum(ids[i]) {
			t.Fatalf("ids out of numeric order: %s before %s", ids[i-1], ids[i])
		}
	}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate id %s", id)
		}
		seen[id] = true
	}
}

func TestExpNum(t *testing.T) {
	cases := map[string]int{"E1": 1, "E20": 20, "E05": 5, "X": 0, "E1a2": 12}
	for id, want := range cases {
		if got := expNum(id); got != want {
			t.Errorf("expNum(%q) = %d, want %d", id, got, want)
		}
	}
}

func TestTitleLookup(t *testing.T) {
	for _, id := range IDs() {
		if Title(id) == "" {
			t.Errorf("experiment %s has no title", id)
		}
	}
	if Title("E999") != "" {
		t.Error("unknown id returned a title")
	}
}

func TestRunUnknownID(t *testing.T) {
	_, err := Run("E999")
	if err == nil || !strings.Contains(err.Error(), "E999") {
		t.Fatalf("unknown id error should name the id: %v", err)
	}
}

// TestDuplicateRegisterPanics: double registration is a programming
// error and must fail loudly at init time, without corrupting the
// registry.
func TestDuplicateRegisterPanics(t *testing.T) {
	id := IDs()[0]
	before := Title(id)
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate register did not panic")
		}
		if Title(id) != before {
			t.Fatal("failed duplicate registration mutated the registry")
		}
	}()
	register(id, "shadow", func() (*Report, error) { return &Report{}, nil })
}

func TestSetParallelismClamp(t *testing.T) {
	defer SetParallelism(1)
	if got := SetParallelism(-3); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("SetParallelism(-3) = %d, want GOMAXPROCS", got)
	}
	if got := SetParallelism(3); got != 3 || Parallelism() != 3 {
		t.Fatalf("SetParallelism(3) = %d, Parallelism() = %d", got, Parallelism())
	}
}

// TestSweepFiguresParallelInvariant: the E2–E5 per-configuration
// fan-outs must report identical figures and text at any worker count —
// random draws happen serially before the fan-out, and merges walk
// configuration order.
func TestSweepFiguresParallelInvariant(t *testing.T) {
	defer SetParallelism(1)
	for _, id := range []string{"E2", "E3", "E4", "E5"} {
		SetParallelism(1)
		serial, err := Run(id)
		if err != nil {
			t.Fatalf("%s serial: %v", id, err)
		}
		SetParallelism(8)
		parallel, err := Run(id)
		if err != nil {
			t.Fatalf("%s parallel: %v", id, err)
		}
		if serial.Text != parallel.Text {
			t.Fatalf("%s: report text differs between serial and parallel runs", id)
		}
		if len(serial.Figures) != len(parallel.Figures) {
			t.Fatalf("%s: figure sets differ", id)
		}
		for k, v := range serial.Figures {
			pv, ok := parallel.Figures[k]
			if !ok || math.Float64bits(v) != math.Float64bits(pv) {
				t.Fatalf("%s: figure %q differs: serial %v parallel %v", id, k, v, pv)
			}
		}
	}
}
