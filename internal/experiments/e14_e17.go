package experiments

import (
	"fmt"
	"math/rand"

	"hlpower/internal/bitutil"
	"hlpower/internal/bus"
	"hlpower/internal/cdfg"
	"hlpower/internal/fsm"
	"hlpower/internal/hls"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
	"hlpower/internal/vsched"
)

func init() {
	register("E14", "§III-E: activity-aware resource allocation (Raghunathan-Jha)", runE14)
	register("E15", "§III-F: multiple supply-voltage scheduling (Chang-Pedram)", runE15)
	register("E16", "§III-G: bus encoding comparison", runE16)
	register("E17", "§III-H: low-power FSM state encoding", runE17)
}

// e14Graph is a wider variant of the slow/fast contrast datapath.
func e14Graph(pairs int) (*cdfg.Graph, cdfg.Schedule, error) {
	g := cdfg.New()
	var slow, fast []int
	for i := 0; i < pairs; i++ {
		a := g.Input(fmt.Sprintf("s%da", i))
		b := g.Input(fmt.Sprintf("s%db", i))
		slow = append(slow, g.Op(cdfg.Add, a, b))
	}
	for i := 0; i < pairs; i++ {
		a := g.Input(fmt.Sprintf("f%da", i))
		b := g.Input(fmt.Sprintf("f%db", i))
		fast = append(fast, g.Op(cdfg.Add, a, b))
	}
	var prods []int
	for i := 0; i < pairs; i++ {
		prods = append(prods, g.Op(cdfg.Mul, slow[i], fast[i]))
	}
	acc := prods[0]
	for i := 1; i < len(prods); i++ {
		acc = g.Op(cdfg.Add, acc, prods[i])
	}
	g.MarkOutput(acc)
	s, err := g.ListSchedule(map[cdfg.OpKind]int{cdfg.Add: 2, cdfg.Mul: 2}, nil)
	return g, s, err
}

func runE14() (*Report, error) {
	g, s, err := e14Graph(4)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(47))
	walk := map[string]int64{}
	gen := func(name string, sample int) int64 {
		if name[0] == 's' {
			v := walk[name] + int64(rng.Intn(3)-1)
			walk[name] = v
			return v & 0xFFF
		}
		return int64(rng.Intn(1 << hls.WordWidth))
	}
	tr, err := hls.SimulateTraces(g, 500, gen)
	if err != nil {
		return nil, err
	}
	var oblivious float64
	const runs = 9
	for i := 0; i < runs; i++ {
		ob, err := hls.Allocate(g, s, tr, hls.Options{Rng: rand.New(rand.NewSource(int64(900 + i)))})
		if err != nil {
			return nil, err
		}
		oblivious += ob.SwitchedBits(tr)
	}
	oblivious /= runs
	aware, err := hls.Allocate(g, s, tr, hls.Options{ActivityAware: true, Rng: rng})
	if err != nil {
		return nil, err
	}
	awareCost := aware.SwitchedBits(tr)
	saving := 1 - awareCost/oblivious

	t := newTable(30, 14)
	t.row("metric", "value")
	t.rule()
	t.row("registers allocated", fmt.Sprint(aware.NumRegs))
	t.row("adders / multipliers", fmt.Sprintf("%d / %d", aware.NumFUs[cdfg.Add], aware.NumFUs[cdfg.Mul]))
	t.row("oblivious switched bits", f1(oblivious))
	t.row("activity-aware switched bits", f1(awareCost))
	t.row("saving", pct(saving))
	t.row("mux inputs (steering)", fmt.Sprint(aware.MuxInputs()))
	text := t.String() + "\npaper: activity-aware allocation saves ~5-33% over conventional binding,\n" +
		"while keeping the steering/interconnect requirement under control\n"
	return &Report{Text: text, Figures: map[string]float64{
		"saving":     saving,
		"mux_inputs": float64(aware.MuxInputs()),
	}}, nil
}

func runE15() (*Report, error) {
	g := cdfg.FIR([]int64{3, 7, 12, 21, 12, 7, 3})
	lib := vsched.DefaultLibrary()
	cp := g.CriticalPath(nil)
	full := vsched.FullVoltageEnergy(g, lib)

	times, energies, err := vsched.Curve(g, lib)
	if err != nil {
		return nil, err
	}
	t := newTable(12, 14, 12)
	t.row("latency", "energy", "vs 5V-only")
	t.rule()
	for i := range times {
		t.row(fmt.Sprint(times[i]), f2(energies[i]), pct(1-energies[i]/full))
	}
	relaxed, err := vsched.Schedule(g, lib, cp*3)
	if err != nil {
		return nil, err
	}
	lowOps := 0
	totalOps := 0
	for _, l := range relaxed.Level {
		if l >= 0 {
			totalOps++
			if l > 0 {
				lowOps++
			}
		}
	}
	saving := 1 - relaxed.Energy/full
	text := t.String() + fmt.Sprintf(
		"\ncritical path %d steps; at 3x latency, %d/%d ops run below 5V, saving %.0f%%\n"+
			"paper: off-critical operations at reduced Vdd cut energy at bounded latency cost\n",
		cp, lowOps, totalOps, saving*100)
	return &Report{Text: text, Figures: map[string]float64{
		"curve_points": float64(len(times)),
		"saving_3x":    saving,
		"low_ops":      float64(lowOps),
	}}, nil
}

func runE16() (*Report, error) {
	rng := rand.New(rand.NewSource(53))
	const w = 16
	streams := []struct {
		name string
		data []uint64
	}{
		{"random data", trace.Uniform(6000, w, rng)},
		{"sequential addr", trace.Sequential(6000, w, 0x100)},
		{"interleaved zones", trace.InterleavedZones(6000, w, []trace.ZoneSpec{
			{Base: 0x1000, Length: 300}, {Base: 0x8000, Length: 300}, {Base: 0x4000, Length: 300},
		})},
		{"block-correlated", trace.BlockCorrelated(6000, w, 4, 4, 0.92, rng)},
	}
	mkCodes := func(train []uint64) []bus.Encoder {
		return []bus.Encoder{
			&bus.Raw{Width: w},
			&bus.BusInvert{Width: w},
			&bus.GrayCode{Width: w},
			&bus.T0{Width: w},
			bus.NewWorkingZone(w, 4, 10),
			bus.TrainBeach(train, w, 4, 4),
		}
	}
	t := newTable(18, 9, 9, 9, 9, 9, 9)
	t.row("stream", "binary", "businv", "gray", "t0", "wzone", "beach")
	t.rule()
	figures := map[string]float64{}
	for _, s := range streams {
		train, test := s.data[:3000], s.data[3000:]
		cells := []string{s.name}
		for _, e := range mkCodes(train) {
			per := bus.PerWord(e, test)
			cells = append(cells, f2(per))
			figures[s.name+"/"+e.Name()] = per
		}
		t.row(cells...)
	}
	text := t.String() + "\ntransitions per transmitted word (lower is better). paper: bus-invert wins on\n" +
		"random data (<= N/2+1 worst case); gray ~1 and t0 ~0 on sequential addresses;\n" +
		"working-zone on interleaved arrays; beach on block-correlated traces\n"
	return &Report{Text: text, Figures: figures}, nil
}

func runE17() (*Report, error) {
	rng := rand.New(rand.NewSource(59))
	f := fsm.Random(12, 2, 2, 0.15, rng)
	p, err := f.TransitionProbabilities(nil)
	if err != nil {
		return nil, err
	}
	encs := []struct {
		name string
		enc  *fsm.Encoding
	}{
		{"binary", fsm.BinaryEncoding(f.NumStates)},
		{"gray", fsm.GrayEncoding(f.NumStates)},
		{"one-hot", fsm.OneHotEncoding(f.NumStates)},
		{"low-power", fsm.LowPowerEncoding(f, p, 8000, rng)},
	}
	// Common input stream for synthesized-netlist power measurement.
	symbols := make([]int, 1500)
	for i := range symbols {
		symbols[i] = rng.Intn(f.NumSymbols())
	}
	t := newTable(12, 14, 14, 12)
	t.row("encoding", "wham (model)", "netlist cap", "state bits")
	t.rule()
	figures := map[string]float64{}
	var outputsRef []uint64
	for i, e := range encs {
		cost := fsm.WeightedHamming(e.enc, p)
		net, err := fsm.Synthesize(f, e.enc)
		if err != nil {
			return nil, err
		}
		prov := func(c int) []bool { return bitutil.ToBits(uint64(symbols[c]), f.NumInputs) }
		res, err := sim.Run(net, prov, len(symbols), sim.Options{Model: sim.EventDriven, TrackClock: true})
		if err != nil {
			return nil, err
		}
		// Functional cross-check across encodings.
		outs := make([]uint64, len(res.Outputs))
		for c, o := range res.Outputs {
			outs[c] = bitutil.FromBits(o)
		}
		if i == 0 {
			outputsRef = outs
		} else {
			for c := range outs {
				if outs[c] != outputsRef[c] {
					return nil, fmt.Errorf("encoding %s diverges at cycle %d", e.name, c)
				}
			}
		}
		t.row(e.name, f3(cost), f1(res.SwitchedCap), fmt.Sprint(e.enc.Width))
		figures["wham_"+e.name] = cost
		figures["cap_"+e.name] = res.SwitchedCap
	}
	text := t.String() + "\npaper: embedding high-probability transitions at low Hamming distance cuts\n" +
		"state-register switching; the synthesized netlist tracks the weighted-Hamming model\n"
	return &Report{Text: text, Figures: figures}, nil
}
