package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"hlpower/internal/bdd"
	"hlpower/internal/bitutil"
	"hlpower/internal/complexity"
	"hlpower/internal/cover"
	"hlpower/internal/entropy"
	"hlpower/internal/fsm"
	"hlpower/internal/isa"
	"hlpower/internal/logic"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/stats"
	"hlpower/internal/trace"
	"hlpower/internal/verify"
)

func init() {
	register("E6", "§II-A: profile-driven program synthesis (Hsieh et al.)", runE6)
	register("E7", "§II-B1: information-theoretic power estimation", runE7)
	register("E8", "§II-B1: Tyagi entropic lower bound on FSM switching", runE8)
	register("E9", "§II-B2: Nemani–Najm linear-measure area model", runE9)
}

func runE6() (*Report, error) {
	cfg := isa.DefaultConfig()
	ep := isa.DefaultEnergyParams()
	rng := rand.New(rand.NewSource(17))

	refs := []struct {
		name  string
		prog  func() (isa.Program, error)
		setup func(m *isa.Machine)
	}{
		{"fir-8x512", func() (isa.Program, error) { return isa.FIRFilter(8, 512) },
			func(m *isa.Machine) {
				isa.InitMem(m, 50, isa.RandomData(8, rng))
				isa.InitMem(m, 100, isa.RandomData(600, rng))
			}},
		{"dot-2000", func() (isa.Program, error) { return isa.DotProduct(2000) },
			func(m *isa.Machine) {
				isa.InitMem(m, 100, isa.RandomData(4200, rng))
			}},
	}
	t := newTable(12, 12, 12, 12, 10)
	t.row("reference", "ref instrs", "syn instrs", "len ratio", "EPI err")
	t.rule()
	figures := map[string]float64{}
	for _, r := range refs {
		prog, err := r.prog()
		if err != nil {
			return nil, err
		}
		rep, err := isa.RunProfileSynthesis(prog, r.setup, cfg, ep, 120, 15, rng)
		if err != nil {
			return nil, err
		}
		t.row(r.name, fmt.Sprint(rep.OriginalInstructions), fmt.Sprint(rep.SyntheticInstructions),
			f1(rep.LengthRatio), pct(rep.EPIError))
		figures["ratio_"+r.name] = rep.LengthRatio
		figures["err_"+r.name] = rep.EPIError
	}
	text := t.String() + "\npaper: 3-5 orders of magnitude simulation-time reduction at negligible error;\n" +
		"the ratio here scales directly with the reference trace length (kept laptop-sized)\n"
	return &Report{Text: text, Figures: figures}, nil
}

func runE7() (*Report, error) {
	rng := rand.New(rand.NewSource(19))
	vdd, freq := 1.0, 1.0

	type circuit struct {
		name string
		net  *logic.Netlist
		nIn  int
	}
	var circuits []circuit
	add := rtlib.NewAdder(6)
	mul := rtlib.NewMultiplier(5)
	sub := rtlib.NewSubtractor(6)
	cmp := rtlib.NewComparator(6)
	circuits = append(circuits,
		circuit{"add6", add.Net, 12},
		circuit{"mul5", mul.Net, 10},
		circuit{"sub6", sub.Net, 12},
		circuit{"cmp6", cmp.Net, 12},
	)
	// Random two-level logic of several sizes.
	for i, nv := range []int{8, 9, 10} {
		n := logic.New()
		in := n.AddInputBus("x", nv)
		for o := 0; o < 4; o++ {
			tt := complexity.RandomFunction(nv, 0.5, rng.Uint64)
			var on []uint64
			for j, v := range tt {
				if v {
					on = append(on, uint64(j))
				}
			}
			cv, err := cover.Minimize(on, nv)
			if err != nil {
				return nil, err
			}
			n.MarkOutput(logic.FromCover(n, cv, in, "exec"))
		}
		circuits = append(circuits, circuit{fmt.Sprintf("rand%d_%d", nv, i), n, nv})
	}

	t := newTable(10, 10, 10, 10, 10, 10, 10)
	t.row("circuit", "measured", "marcule.", "nemani", "ratioM", "ratioN", "hout")
	t.rule()
	var measuredAll, marcAll, nemAll []float64
	var ferrandiSamples []entropy.FerrandiSample
	var caRatios, feRatios []float64
	for _, c := range circuits {
		nIn := len(c.net.Inputs)
		nOut := len(c.net.Outputs)
		stream := trace.Uniform(1500, nIn, rng)
		prov := func(cyc int) []bool { return bitutil.ToBits(stream[cyc], nIn) }
		res, err := sim.Run(c.net, prov, len(stream), sim.Options{Model: sim.ZeroDelay})
		if err != nil {
			return nil, err
		}
		measured := 0.5 * vdd * vdd * freq * res.SwitchedCap / float64(res.Cycles)

		// Entropies from the observed streams.
		hin := trace.BitEntropy(stream, nIn) / float64(nIn)
		outWords := make([]uint64, len(res.Outputs))
		for i, o := range res.Outputs {
			outWords[i] = bitutil.FromBits(o)
		}
		hout := trace.BitEntropy(outWords, nOut) / float64(nOut)
		ctot := c.net.TotalCapacitance()
		hM := entropy.MarculescuHavg(nIn, nOut, hin, hout)
		hN := entropy.NemaniHavg(nIn, nOut, hin*float64(nIn), hout*float64(nOut))
		pM := entropy.Power(ctot, hM, vdd, freq)
		pN := entropy.Power(ctot, hN, vdd, freq)
		measuredAll = append(measuredAll, measured)
		marcAll = append(marcAll, pM)
		nemAll = append(nemAll, pN)
		t.row(c.name, f1(measured), f1(pM), f1(pN), f2(pM/measured), f2(pN/measured), f2(hout))
		// Cheng–Agrawal pessimism shows on the arithmetic modules, whose
		// real structure is far smaller than 2^n.
		caRatios = append(caRatios, entropy.ChengAgrawalCtot(nIn, nOut, hout)/ctot)

	}
	corrM := stats.Pearson(measuredAll, marcAll)
	corrN := stats.Pearson(measuredAll, nemAll)

	// Capacitance models fitted over a homogeneous population of random
	// synthesized logic ([12] regresses over "a large number of
	// synthesized circuits" of one style).
	for _, nv := range []int{7, 8, 9, 10} {
		for rep := 0; rep < 3; rep++ {
			nOut := 2 + rng.Intn(2)
			n := logic.New()
			in := n.AddInputBus("x", nv)
			m := bdd.New(nv)
			var houts float64
			for o := 0; o < nOut; o++ {
				tt := complexity.RandomFunction(nv, 0.3+0.4*rng.Float64(), rng.Uint64)
				var on []uint64
				for j, v := range tt {
					if v {
						on = append(on, uint64(j))
					}
				}
				cv, err := cover.Minimize(on, nv)
				if err != nil {
					return nil, err
				}
				n.MarkOutput(logic.FromCover(n, cv, in, "exec"))
				houts += trace.BinaryEntropy(complexity.OutputProbability(tt))
			}
			roots, err := verify.OutputBDDs(m, n)
			if err != nil {
				return nil, err
			}
			ferrandiSamples = append(ferrandiSamples, entropy.FerrandiSample{
				BDDNodes: m.SharedNodeCount(roots), NumIn: nv, NumOut: nOut,
				Hout: houts / float64(nOut), Ctot: n.TotalCapacitance(),
			})
		}
	}
	alpha, beta, err := entropy.FitFerrandi(ferrandiSamples)
	if err != nil {
		return nil, err
	}
	for _, s := range ferrandiSamples {
		fe := entropy.FerrandiCtot(alpha, beta, s.BDDNodes, s.NumIn, s.NumOut, s.Hout)
		feRatios = append(feRatios, fe/s.Ctot)
	}
	var caWorst float64
	for _, r := range caRatios {
		if r > caWorst {
			caWorst = r
		}
	}
	text := t.String() + fmt.Sprintf(
		"\ncorrelation with gate-level power: marculescu %.2f, nemani-najm %.2f\n"+
			"Ctot estimates: cheng-agrawal overestimates up to %.0fx at larger n (paper: pessimistic);\n"+
			"ferrandi BDD-node regression mean |ratio-1| = %.2f (paper: improved fit)\n",
		corrM, corrN, caWorst, meanAbsDev(feRatios))
	return &Report{Text: text, Figures: map[string]float64{
		"corr_marculescu": corrM,
		"corr_nemani":     corrN,
		"ca_worst_ratio":  caWorst,
		"ferrandi_dev":    meanAbsDev(feRatios),
	}}, nil
}

func meanAbsDev(ratios []float64) float64 {
	var s float64
	for _, r := range ratios {
		d := r - 1
		if d < 0 {
			d = -d
		}
		s += d
	}
	if len(ratios) == 0 {
		return 0
	}
	return s / float64(len(ratios))
}

func runE8() (*Report, error) {
	rng := rand.New(rand.NewSource(23))
	t := newTable(8, 8, 10, 10, 10, 10, 10)
	t.row("states", "sparse", "bound", "binary", "gray", "one-hot", "low-power")
	t.rule()
	figures := map[string]float64{}
	violations := 0
	for trial, nStates := range []int{16, 24, 32, 48} {
		f := fsm.Random(nStates, 2, 1, 0.12, rng)
		p, err := f.TransitionProbabilities(nil)
		if err != nil {
			return nil, err
		}
		// Strip the ergodicity epsilon from non-structural edges.
		structural := make(map[[2]int]bool)
		for s := 0; s < f.NumStates; s++ {
			for sym := 0; sym < f.NumSymbols(); sym++ {
				structural[[2]int{s, f.Next[s][sym]}] = true
			}
		}
		for i := range p {
			for j := range p[i] {
				if !structural[[2]int{i, j}] {
					p[i][j] = 0
				}
			}
		}
		bound := entropy.TyagiBound(p)
		sparse := entropy.Sparse(p)
		costs := map[string]float64{
			"binary":    fsm.WeightedHamming(fsm.BinaryEncoding(nStates), p),
			"gray":      fsm.WeightedHamming(fsm.GrayEncoding(nStates), p),
			"one-hot":   fsm.WeightedHamming(fsm.OneHotEncoding(nStates), p),
			"low-power": fsm.WeightedHamming(fsm.LowPowerEncoding(f, p, 6000, rng), p),
		}
		for _, c := range costs {
			if c < bound-1e-9 {
				violations++
			}
		}
		t.row(fmt.Sprint(nStates), fmt.Sprint(sparse), f3(bound),
			f3(costs["binary"]), f3(costs["gray"]), f3(costs["one-hot"]), f3(costs["low-power"]))
		figures[fmt.Sprintf("bound_%d", nStates)] = bound
		figures[fmt.Sprintf("lp_%d", nStates)] = costs["low-power"]
		_ = trial
	}
	figures["violations"] = float64(violations)

	// Tyagi's asymptotic regime: the bound only becomes informative
	// (positive) for thousands of states with near-uniform transition
	// probabilities at the sparsity limit t = 2.23·T^1.72/sqrt(log T).
	T := 4096
	logT := math.Log2(float64(T))
	tEdges := int(2.23 * math.Pow(float64(T), 1.72) / math.Sqrt(logT))
	posBound := math.Log2(float64(tEdges)) - 1.52*logT - 2.16 + 0.5*math.Log2(logT)
	// Expected Hamming switching of a random binary encoding over
	// uniformly random edges: width/2 per transition.
	width := 12 // minimal encoding of 4096 states
	randomCost := float64(width) / 2
	figures["asymptotic_bound"] = posBound
	figures["asymptotic_random_cost"] = randomCost

	text := t.String() + fmt.Sprintf(
		"\nbound violations across all encodings: %d (paper: the bound holds for any encoding)\n"+
			"asymptotic regime (T=%d, t=%d uniform edges): bound = %.2f > 0, while a\n"+
			"minimal-width random encoding switches %.1f bits/transition — the bound is\n"+
			"informative exactly where the paper derives it\n",
		violations, T, tEdges, posBound, randomCost)
	return &Report{Text: text, Figures: figures}, nil
}

func runE9() (*Report, error) {
	rng := rand.New(rand.NewSource(29))
	n := 7
	t := newTable(10, 10, 10, 10)
	t.row("out prob", "samples", "slope b", "R2")
	t.rule()
	figures := map[string]float64{}
	for _, q := range []float64{0.2, 0.5, 0.8} {
		var cs, as []float64
		for i := 0; i < 50; i++ {
			tt := complexity.RandomFunction(n, q, rng.Uint64)
			c, err := complexity.LinearMeasure(tt, n)
			if err != nil {
				return nil, err
			}
			a, err := complexity.OptimizedArea(tt, n)
			if err != nil {
				return nil, err
			}
			cs = append(cs, c)
			as = append(as, float64(a))
		}
		m, err := complexity.FitAreaModel(cs, as)
		if err != nil {
			return nil, err
		}
		t.row(f2(q), "50", f3(m.B), f3(m.R2))
		figures[fmt.Sprintf("slope_q%.1f", q)] = m.B
		figures[fmt.Sprintf("r2_q%.1f", q)] = m.R2
	}

	// Landman–Rabaey controller model: fit CI/CO on a training population
	// of synthesized random controllers, then predict fresh ones.
	mkSample := func(seed int64) (complexity.LandmanRabaeySample, error) {
		r := rand.New(rand.NewSource(seed))
		f := fsm.Random(4+r.Intn(8), 2, 2, 0.4, r)
		enc := fsm.BinaryEncoding(f.NumStates)
		net, err := fsm.Synthesize(f, enc)
		if err != nil {
			return complexity.LandmanRabaeySample{}, err
		}
		symbols := make([]int, 600)
		for i := range symbols {
			symbols[i] = r.Intn(f.NumSymbols())
		}
		prov := func(c int) []bool { return bitutil.ToBits(uint64(symbols[c]), f.NumInputs) }
		res, err := sim.Run(net, prov, len(symbols), sim.Options{})
		if err != nil {
			return complexity.LandmanRabaeySample{}, err
		}
		// Structural counts and measured line activities.
		stateStream := make([]uint64, len(symbols))
		states, _ := f.Simulate(symbols)
		for c := range symbols {
			stateStream[c] = uint64(symbols[c]) | enc.Codes[states[c]]<<uint(f.NumInputs)
		}
		outWords := make([]uint64, len(res.Outputs))
		for c, o := range res.Outputs {
			outWords[c] = bitutil.FromBits(o)
		}
		nm := 0
		// Minterms of the synthesized covers ~ use the simple proxy of the
		// machine's transition count, matching the model's NM role.
		nm = f.NumStates * f.NumSymbols()
		return complexity.LandmanRabaeySample{
			NI:    f.NumInputs + enc.Width,
			NO:    f.NumOutputs + enc.Width,
			EI:    bitutil.MeanActivity(stateStream, f.NumInputs+enc.Width),
			EO:    bitutil.MeanActivity(outWords, f.NumOutputs),
			NM:    nm,
			Power: res.Power(),
		}, nil
	}
	var train []complexity.LandmanRabaeySample
	for i := int64(0); i < 24; i++ {
		smp, err := mkSample(1000 + i)
		if err != nil {
			return nil, err
		}
		train = append(train, smp)
	}
	lr, err := complexity.FitLandmanRabaey(train, 1, 1)
	if err != nil {
		return nil, err
	}
	var relSum float64
	nTest := 8
	for i := int64(0); i < int64(nTest); i++ {
		smp, err := mkSample(5000 + i)
		if err != nil {
			return nil, err
		}
		relSum += stats.RelError(lr.Predict(smp), smp.Power)
	}
	lrErr := relSum / float64(nTest)
	figures["landman_err"] = lrErr

	text := t.String() + fmt.Sprintf(
		"\npaper: optimized area follows an exponential-family regression in the\n"+
			"linear complexity measure, fit per output-probability band (positive slopes)\n"+
			"landman-rabaey controller model (CI=%.2f, CO=%.2f) predicts fresh\n"+
			"controllers with %.0f%% mean error (paper: empirical coefficients raise accuracy)\n",
		lr.CI, lr.CO, lrErr*100)
	return &Report{Text: text, Figures: figures}, nil
}
