package experiments

// The paper's quantitative claims, paraphrased per experiment; rendered
// into EXPERIMENTS.md by Markdown.
var claims = map[string]claimInfo{
	"E1":  {section: "Table I", claim: "Constant-multiplication -> shift/add conversion on an 11-tap FIR filter cuts execution-unit switched capacitance ~7.9x (739.65->93.07 pF) and total ~2.65x (1141.36->430.36 pF); control-logic capacitance *increases* (65.45->83.79 pF)."},
	"E2":  {section: "Fig. 2, §III-A", claim: "Caching the intermediate array element in a register removes the 2n memory accesses to array b."},
	"E3":  {section: "§III-B", claim: "Predictive shutdown reaches up to ~38x power improvement with ~3% performance penalty on idle-dominated interactive traces, bounded above by 1+TI/TA; static timeouts waste the timeout interval in every long idle period."},
	"E4":  {section: "Figs. 4-5, §III-C", claim: "2nd-order polynomial: algebraic restructuring removes a multiplier at (nearly) unchanged critical path - a clear win. 3rd-order: fewer operations but a longer critical path, reducing voltage-scaling headroom - contradictory effects."},
	"E5":  {section: "§II-A (Tiwari [7])", claim: "Program energy decomposes into per-instruction base costs + circuit-state overheads + stall/cache effects, predicting measured energy closely."},
	"E6":  {section: "§II-A (Hsieh [8])", claim: "A profile-matched synthesized program is orders of magnitude shorter than the original trace with negligible power-estimation error (3-5 orders of magnitude RT-simulation-time reduction on the Pentium)."},
	"E7":  {section: "§II-B1", claim: "Entropy-based estimates track gate-level power; Cheng-Agrawal's 2^n capacitance model becomes very pessimistic at larger n; Ferrandi's BDD-node regression fits measured capacitance much better."},
	"E8":  {section: "§II-B1 (Tyagi [13])", claim: "The entropic lower bound h(p) - 1.52 log T - 2.16 + 0.5 log log T on average register switching holds for every encoding of a sparse FSM."},
	"E9":  {section: "§II-B2 (Nemani-Najm [15], Landman-Rabaey [17])", claim: "Optimized area follows an exponential-family regression in the linear complexity measure, fit per output-probability band; empirically fitted CI/CO coefficients make the controller power model accurate."},
	"E10": {section: "§II-C1", claim: "Macro-model accuracy improves from the constant PFA model through activity-sensitive forms to statistically designed cycle-accurate models, which reach ~5-10% average and ~10-20% cycle error with ~8 variables."},
	"E11": {section: "§II-C2 (Hsieh [46])", claim: "Sampler macro-modeling is ~50x cheaper than census at ~1% deviation; the adaptive regression estimator cuts census bias from ~30% to ~5% using a small gate-level sample."},
	"E12": {section: "§III-A (Su [6])", claim: "Cold scheduling reorders instructions within dependency limits to cut instruction-bus switching."},
	"E13": {section: "§III-D (Monteiro [63])", claim: "Scheduling control (mux select) computations early lets the non-selected mutually exclusive branches shut down."},
	"E14": {section: "§III-E (Raghunathan-Jha [65])", claim: "Activity-aware allocation using W = Wc(1-Ws) compatibility weights saves 5-33% versus conventional (activity-oblivious) binding."},
	"E15": {section: "§III-F (Chang-Pedram [73])", claim: "Multi-voltage scheduling traces an energy-delay tradeoff curve; off-critical operations at reduced Vdd save energy within the latency budget."},
	"E16": {section: "§III-G", claim: "Bus-Invert wins on random data with <=N/2 transitions/cycle worst case; Gray approaches 1 transition/address and T0 0 on in-sequence streams; Working-Zone recovers interleaved-array locality; Beach wins on block-correlated traces."},
	"E17": {section: "§III-H", claim: "Embedding high-probability transitions at small Hamming distance reduces state-register switching; the synthesized netlist power tracks the weighted-Hamming model; one-hot costs more at these state counts."},
	"E18": {section: "§III-I", claim: "Precomputation, gated clocks, and guarded evaluation each eliminate switching in idle logic in proportion to the shutdown probability."},
	"E19": {section: "§III-J (Monteiro [111])", claim: "Registers placed after glitchy gates filter spurious transitions (E_R <= E_g): power-driven placement beats naive placement."},
	"E20": {section: "§II-C1 (Liu-Svensson [42])", claim: "The parametric SRAM model exposes the row/column organization tradeoff (an interior column split minimizes access power) and decomposes whole-chip power."},
}
