package experiments

import (
	"fmt"
	"math/rand"

	"hlpower/internal/bitutil"
	"hlpower/internal/fsm"
	"hlpower/internal/logic"
	"hlpower/internal/rtlib"
	"hlpower/internal/sim"
	"hlpower/internal/trace"
)

func init() {
	register("E1", "Table I: FIR filter capacitance before/after constant-multiplication conversion", runE1)
}

// firCoeffs are the 11 constant taps of the experiment's filter.
var firCoeffs = []uint64{3, 7, 12, 21, 28, 31, 28, 21, 12, 7, 3}

const (
	e1Width   = 10
	e1AccW    = 21
	e1Samples = 50
)

// e1Schedule is the operand sequence of the time-multiplexed datapath
// for one implementation: per control step, the operands presented to
// the shared execution units and the accumulator value written back.
type e1Schedule struct {
	mulA, mulB []uint64 // shared multiplier operands (empty after the transformation)
	addA, addB []uint64 // shared accumulator-adder operands
	accWrites  []uint64 // accumulator register contents per step
	steps      int      // schedule length per sample
}

// buildSchedules walks the sample stream through both schedules. Before:
// one multiply (c_i × x_{t-i}) and one accumulate per tap. After: one
// accumulate per set coefficient bit (x_{t-i} << s), no multiplier.
func buildSchedules(xs []uint64) (before, after e1Schedule) {
	taps := len(firCoeffs)
	accMask := bitutil.Mask(e1AccW)
	for t := taps - 1; t < len(xs); t++ {
		var acc uint64
		for i, c := range firCoeffs {
			x := xs[t-i]
			p := (c * x) & accMask
			before.mulA = append(before.mulA, c)
			before.mulB = append(before.mulB, x)
			before.addA = append(before.addA, acc)
			before.addB = append(before.addB, p)
			acc = (acc + p) & accMask
			before.accWrites = append(before.accWrites, acc)
		}
		acc = 0
		for i, c := range firCoeffs {
			x := xs[t-i]
			for sh := 0; sh < 8; sh++ {
				if c>>uint(sh)&1 == 0 {
					continue
				}
				term := (x << uint(sh)) & accMask
				after.addA = append(after.addA, acc)
				after.addB = append(after.addB, term)
				acc = (acc + term) & accMask
				after.accWrites = append(after.accWrites, acc)
			}
		}
	}
	samples := len(xs) - taps + 1
	before.steps = len(before.accWrites) / samples
	after.steps = len(after.accWrites) / samples
	return before, after
}

// buildCounterController synthesizes a mod-N counter FSM (the step
// sequencer of the scheduled datapath) as the "control logic" row.
func buildCounterController(steps int) (*logic.Netlist, error) {
	if steps < 2 {
		steps = 2
	}
	if steps > 40 {
		steps = 40
	}
	f := &fsm.FSM{NumInputs: 1, NumOutputs: 2, NumStates: steps,
		Next: make([][]int, steps), Out: make([][]uint64, steps)}
	for s := 0; s < steps; s++ {
		nxt := (s + 1) % steps
		f.Next[s] = []int{nxt, nxt}
		// Outputs: phase flags the steering logic decodes.
		f.Out[s] = []uint64{uint64(s & 3), uint64(s & 3)}
	}
	return fsm.Synthesize(f, fsm.BinaryEncoding(steps))
}

// tableIRow aggregates the four Table I accounting rows: interconnect is
// the statistical wire-load share of every toggle; the rest stays with
// its row.
type tableIRow struct {
	Exec, RegClock, Ctrl, Interconnect float64
}

func (r tableIRow) total() float64 { return r.Exec + r.RegClock + r.Ctrl + r.Interconnect }

// splitWire separates a simulation's switched capacitance into the wire
// share (interconnect row) and the gate share (caller's row), returning
// (gate, wire). Clock capacitance stays with the gate share.
func splitWire(n *logic.Netlist, res *sim.Result) (gate, wire float64) {
	fo := n.Fanouts()
	isOut := make(map[int]bool)
	for _, o := range n.Outputs {
		isOut[o] = true
	}
	for id := range n.Gates {
		toggles := float64(res.Toggles[id])
		w := float64(len(fo[id])) * n.WireCapPerFanout
		g := float64(len(fo[id])) * n.InputCap
		if isOut[id] {
			g += n.OutputLoad
		}
		wire += toggles * w
		gate += toggles * g
	}
	gate += res.ByGroup["clock"]
	return gate, wire
}

// simWords runs a netlist whose inputs form one bus over a word stream.
func simWords(n *logic.Netlist, words []uint64, width int, opts sim.Options) (*sim.Result, error) {
	prov := func(c int) []bool { return bitutil.ToBits(words[c], width) }
	return sim.Run(n, prov, len(words), opts)
}

// measureImpl evaluates one implementation: shared execution units over
// their operand schedules, the tap delay line, the accumulator register,
// and the sized controller.
func measureImpl(s e1Schedule, xs []uint64) (tableIRow, error) {
	var row tableIRow
	opts := sim.Options{Model: sim.EventDriven}

	// Execution units.
	if len(s.mulA) > 0 {
		mul := rtlib.NewMultiplier(e1Width)
		res, err := mul.SimulateStream(s.mulA, s.mulB, sim.EventDriven)
		if err != nil {
			return row, err
		}
		g, w := splitWire(mul.Net, res)
		row.Exec += g
		row.Interconnect += w
	}
	add := rtlib.NewAdder(e1AccW)
	res, err := add.SimulateStream(s.addA, s.addB, sim.EventDriven)
	if err != nil {
		return row, err
	}
	g, w := splitWire(add.Net, res)
	row.Exec += g
	row.Interconnect += w

	// Tap delay line: 11 chained 8-bit registers, one shift per sample.
	line := logic.New()
	in := line.AddInputBus("x", e1Width)
	cur := in
	for i := 0; i < len(firCoeffs); i++ {
		cur = line.RegisterBus(cur, "reg")
	}
	line.MarkOutputBus(cur)
	lres, err := simWords(line, xs, e1Width, sim.Options{Model: sim.ZeroDelay, TrackClock: true})
	if err != nil {
		return row, err
	}
	g, w = splitWire(line, lres)
	row.RegClock += g
	row.Interconnect += w

	// Accumulator register: written every control step.
	accN := logic.New()
	accIn := accN.AddInputBus("d", e1AccW)
	accQ := accN.RegisterBus(accIn, "reg")
	accN.MarkOutputBus(accQ)
	ares, err := simWords(accN, s.accWrites, e1AccW, sim.Options{Model: sim.ZeroDelay, TrackClock: true})
	if err != nil {
		return row, err
	}
	g, w = splitWire(accN, ares)
	row.RegClock += g
	row.Interconnect += w

	// Controller: cycles once through its schedule per sample.
	ctrl, err := buildCounterController(s.steps)
	if err != nil {
		return row, err
	}
	tick := make([][]bool, len(s.accWrites))
	for i := range tick {
		tick[i] = []bool{true}
	}
	cres, err := sim.Run(ctrl, sim.VectorInputs(tick), len(tick),
		sim.Options{Model: opts.Model, TrackClock: true})
	if err != nil {
		return row, err
	}
	g, w = splitWire(ctrl, cres)
	row.Ctrl += g
	row.Interconnect += w
	return row, nil
}

func runE1() (*Report, error) {
	rng := rand.New(rand.NewSource(42))
	xs := trace.AR1(e1Samples+len(firCoeffs), e1Width, 0.95, 0.15, rng)
	schedBefore, schedAfter := buildSchedules(xs)

	before, err := measureImpl(schedBefore, xs)
	if err != nil {
		return nil, err
	}
	after, err := measureImpl(schedAfter, xs)
	if err != nil {
		return nil, err
	}

	t := newTable(18, 14, 10, 14, 10)
	t.row("", "before", "", "after", "")
	t.row("component", "switched cap", "% total", "switched cap", "% total")
	t.rule()
	rows := []struct {
		name string
		b, a float64
	}{
		{"Execution units", before.Exec, after.Exec},
		{"Registers/clock", before.RegClock, after.RegClock},
		{"Control logic", before.Ctrl, after.Ctrl},
		{"Interconnect", before.Interconnect, after.Interconnect},
	}
	for _, r := range rows {
		t.row(r.name, f1(r.b), pct(r.b/before.total()), f1(r.a), pct(r.a/after.total()))
	}
	t.rule()
	t.row("Total", f1(before.total()), "100.0%", f1(after.total()), "100.0%")

	text := t.String() + fmt.Sprintf(
		"\nschedule length: %d steps -> %d steps per sample\n"+
			"execution-unit reduction: %.2fx (paper: ~7.9x)\n"+
			"total reduction: %.2fx (paper: ~2.65x)\n"+
			"control increased: %v (paper: yes)\n",
		schedBefore.steps, schedAfter.steps,
		before.Exec/after.Exec, before.total()/after.total(), after.Ctrl > before.Ctrl)

	return &Report{
		Text: text,
		Figures: map[string]float64{
			"exec_reduction":  before.Exec / after.Exec,
			"total_reduction": before.total() / after.total(),
			"ctrl_before":     before.Ctrl,
			"ctrl_after":      after.Ctrl,
		},
	}, nil
}
