package hls

import (
	"math/rand"
	"testing"

	"hlpower/internal/cdfg"
)

// pipelineGraph builds a multi-step datapath with several same-kind
// operations and correlated inputs, scheduled with limited resources so
// sharing decisions matter.
func pipelineGraph() (*cdfg.Graph, cdfg.Schedule, error) {
	g := cdfg.New()
	a := g.Input("a")
	b := g.Input("b")
	c := g.Input("c")
	d := g.Input("d")
	t1 := g.Op(cdfg.Add, a, b)
	t2 := g.Op(cdfg.Add, c, d)
	t3 := g.Op(cdfg.Mul, t1, t2)
	t4 := g.Op(cdfg.Add, t1, c)
	t5 := g.Op(cdfg.Mul, t4, a)
	t6 := g.Op(cdfg.Add, t3, t5)
	g.MarkOutput(t6)
	s, err := g.ListSchedule(map[cdfg.OpKind]int{cdfg.Add: 2, cdfg.Mul: 1}, nil)
	return g, s, err
}

// correlatedGen yields input streams where some inputs track each other
// (shared-resource switching then depends on binding choices).
func correlatedGen(rng *rand.Rand) func(name string, sample int) int64 {
	walk := make(map[string]int64)
	return func(name string, sample int) int64 {
		v := walk[name]
		switch name {
		case "a", "b": // slowly varying
			v += int64(rng.Intn(5) - 2)
		default: // fast random
			v = int64(rng.Intn(1 << 12))
		}
		walk[name] = v
		return v & 0xFFF
	}
}

func TestSimulateTraces(t *testing.T) {
	g, _, err := pipelineGraph()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	tr, err := SimulateTraces(g, 50, correlatedGen(rng))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Values) != 50 || len(tr.Values[0]) != len(g.Nodes) {
		t.Fatalf("trace shape wrong: %d x %d", len(tr.Values), len(tr.Values[0]))
	}
}

func TestAllocateProducesValidBinding(t *testing.T) {
	g, s, err := pipelineGraph()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	tr, err := SimulateTraces(g, 100, correlatedGen(rng))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Allocate(g, s, tr, Options{ActivityAware: true, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if b.NumRegs <= 0 {
		t.Error("no registers allocated")
	}
	// Ops sharing a unit must be at distinct steps.
	for op1, u1 := range b.FUOf {
		for op2, u2 := range b.FUOf {
			if op1 >= op2 || u1 != u2 {
				continue
			}
			if g.Nodes[op1].Kind == g.Nodes[op2].Kind && s.Step[op1] == s.Step[op2] {
				t.Errorf("ops %d and %d share unit %d at the same step", op1, op2, u1)
			}
		}
	}
	// Variables sharing a register must have disjoint lifetimes.
	for v1, r1 := range b.RegOf {
		for v2, r2 := range b.RegOf {
			if v1 >= v2 || r1 != r2 {
				continue
			}
			d1, l1 := lifetime(g, s, v1)
			d2, l2 := lifetime(g, s, v2)
			if d1 < l2 && d2 < l1 {
				t.Errorf("vars %d and %d share register with overlapping lifetimes", v1, v2)
			}
		}
	}
}

func TestAllocateRequiresRng(t *testing.T) {
	g, s, err := pipelineGraph()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Allocate(g, s, &Traces{}, Options{}); err == nil {
		t.Error("expected error without Rng")
	}
}

// contrastGraph builds a two-phase datapath: four "slow" additions over
// slowly-varying inputs scheduled in steps 0–1, and four "fast"
// additions over random inputs in the same steps, merged by a tree of
// multiplies. With two adders, binding decides whether slow ops share a
// unit with slow ops (low switching) or get mixed with fast ones.
func contrastGraph() (*cdfg.Graph, cdfg.Schedule, error) {
	g := cdfg.New()
	var slow, fast []int
	for i := 0; i < 4; i++ {
		a := g.Input("s" + string(rune('0'+2*i)))
		b := g.Input("s" + string(rune('1'+2*i)))
		slow = append(slow, g.Op(cdfg.Add, a, b))
	}
	for i := 0; i < 4; i++ {
		a := g.Input("f" + string(rune('0'+2*i)))
		b := g.Input("f" + string(rune('1'+2*i)))
		fast = append(fast, g.Op(cdfg.Add, a, b))
	}
	m1 := g.Op(cdfg.Mul, slow[0], fast[0])
	m2 := g.Op(cdfg.Mul, slow[1], fast[1])
	m3 := g.Op(cdfg.Mul, slow[2], fast[2])
	m4 := g.Op(cdfg.Mul, slow[3], fast[3])
	t1 := g.Op(cdfg.Add, m1, m2)
	t2 := g.Op(cdfg.Add, m3, m4)
	g.MarkOutput(g.Op(cdfg.Add, t1, t2))
	s, err := g.ListSchedule(map[cdfg.OpKind]int{cdfg.Add: 2, cdfg.Mul: 2}, nil)
	return g, s, err
}

func contrastGen(rng *rand.Rand) func(name string, sample int) int64 {
	walk := make(map[string]int64)
	return func(name string, sample int) int64 {
		if name[0] == 's' {
			v := walk[name] + int64(rng.Intn(3)-1)
			walk[name] = v
			return v & 0xFFF
		}
		return int64(rng.Intn(1 << WordWidth))
	}
}

func TestActivityAwareSavesSwitching(t *testing.T) {
	g, s, err := contrastGraph()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	tr, err := SimulateTraces(g, 400, contrastGen(rng))
	if err != nil {
		t.Fatal(err)
	}
	// The oblivious baseline is averaged over several random tie-break
	// orders (the paper compares against conventional allocators).
	var oblivious float64
	const runs = 9
	for i := 0; i < runs; i++ {
		ob, err := Allocate(g, s, tr, Options{ActivityAware: false, Rng: rand.New(rand.NewSource(int64(100 + i)))})
		if err != nil {
			t.Fatal(err)
		}
		oblivious += ob.SwitchedBits(tr)
	}
	oblivious /= runs
	aware, err := Allocate(g, s, tr, Options{ActivityAware: true, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	awareCost := aware.SwitchedBits(tr)
	if awareCost >= oblivious {
		t.Errorf("activity-aware switching %v should beat oblivious %v", awareCost, oblivious)
	}
}

func TestSwitchedBitsDeterministic(t *testing.T) {
	g, s, err := pipelineGraph()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	tr, err := SimulateTraces(g, 50, correlatedGen(rng))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Allocate(g, s, tr, Options{ActivityAware: true, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	if b.SwitchedBits(tr) != b.SwitchedBits(tr) {
		t.Error("SwitchedBits must be deterministic")
	}
}

func TestGreedyMergeRespectsCompatibility(t *testing.T) {
	items := []int{0, 1, 2, 3}
	// Only even/odd pairs are compatible.
	compatible := func(a, b []int) bool {
		for _, x := range a {
			for _, y := range b {
				if (x+y)%2 != 0 {
					return false
				}
			}
		}
		return true
	}
	weight := func(a, b []int) float64 { return 1 }
	groups := greedyMerge(items, compatible, weight)
	if len(groups) != 2 {
		t.Fatalf("groups = %d, want 2 (evens, odds)", len(groups))
	}
}

func TestMuxInputsCountsSteering(t *testing.T) {
	g, s, err := pipelineGraph()
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	tr, err := SimulateTraces(g, 50, correlatedGen(rng))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Allocate(g, s, tr, Options{ActivityAware: true, Rng: rng})
	if err != nil {
		t.Fatal(err)
	}
	m := b.MuxInputs()
	if m < 0 {
		t.Fatalf("mux inputs = %d", m)
	}
	// With fewer units than operations, some steering must exist.
	ops := 0
	for _, n := range g.Nodes {
		if n.Kind.IsOperation() && n.Kind != cdfg.Mux {
			ops++
		}
	}
	units := 0
	for _, c := range b.NumFUs {
		units += c
	}
	if units < ops && m == 0 {
		t.Error("shared units but no steering counted")
	}
}
