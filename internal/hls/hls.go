// Package hls implements the low-power resource allocation and binding
// of §III-E (Raghunathan–Jha [65]): variables and operations of a
// scheduled CDFG are merged onto registers and functional units through
// a compatibility graph whose edge weights W = Wc·(1−Ws) combine the
// capacitance saving of sharing with the switching activity induced
// between the occupants, measured by high-level simulation. An
// activity-oblivious mode (W = Wc) provides the baseline the paper's
// 5–33% savings are measured against.
package hls

import (
	"fmt"
	"math/rand"
	"sort"

	"hlpower/internal/bitutil"
	"hlpower/internal/cdfg"
)

// WordWidth is the datapath width used when counting register and
// functional-unit bit switching.
const WordWidth = 16

// Binding maps CDFG variables to registers and operations to functional
// units (unit namespaces are per operation kind).
type Binding struct {
	Graph *cdfg.Graph
	Sched cdfg.Schedule
	// RegOf[node] = register id for nodes whose value is registered.
	RegOf map[int]int
	// FUOf[node] = unit id within the node kind's unit pool.
	FUOf map[int]int
	// NumRegs and NumFUs report resource totals.
	NumRegs int
	NumFUs  map[cdfg.OpKind]int
}

// Traces holds per-node value sequences from high-level simulation: one
// row per input sample, one column per node.
type Traces struct {
	Values [][]int64
}

// SimulateTraces evaluates the graph over n random input samples.
func SimulateTraces(g *cdfg.Graph, n int, gen func(name string, sample int) int64) (*Traces, error) {
	tr := &Traces{}
	for s := 0; s < n; s++ {
		in := make(map[string]int64)
		for _, node := range g.Nodes {
			if node.Kind == cdfg.Input {
				in[node.Name] = gen(node.Name, s)
			}
		}
		vals, err := g.Eval(in)
		if err != nil {
			return nil, err
		}
		tr.Values = append(tr.Values, vals)
	}
	return tr, nil
}

// variables returns the nodes whose results must be registered: any
// operation or input consumed at a strictly later control step, plus
// graph outputs.
func variables(g *cdfg.Graph, s cdfg.Schedule) []int {
	need := make(map[int]bool)
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			if defStep(g, s, a) < s.Step[n.ID] {
				need[a] = true
			}
		}
	}
	for _, o := range g.Outputs {
		need[o] = true
	}
	vars := make([]int, 0, len(need))
	for v := range need {
		vars = append(vars, v)
	}
	sort.Ints(vars)
	return vars
}

// defStep is the step at which a node's value becomes available
// (sources are available at step 0... before step 0).
func defStep(g *cdfg.Graph, s cdfg.Schedule, id int) int {
	if !g.Nodes[id].Kind.IsOperation() {
		return -1
	}
	return s.Step[id] // value ready after this step
}

// lifetime returns [def, lastUse] in control steps.
func lifetime(g *cdfg.Graph, s cdfg.Schedule, id int) (int, int) {
	def := defStep(g, s, id)
	last := def
	for _, n := range g.Nodes {
		for _, a := range n.Args {
			if a == id && s.Step[n.ID] > last {
				last = s.Step[n.ID]
			}
		}
	}
	for _, o := range g.Outputs {
		if o == id && s.NumSteps > last {
			last = s.NumSteps
		}
	}
	return def, last
}

// Options selects the allocation policy.
type Options struct {
	ActivityAware bool
	// Rng breaks ties for the oblivious baseline; required.
	Rng *rand.Rand
	// CapWeight is Wc, the per-merge capacitance saving (default 1).
	CapWeight float64
}

// Allocate performs the greedy compatibility-graph merging for both
// registers and functional units.
func Allocate(g *cdfg.Graph, s cdfg.Schedule, tr *Traces, opts Options) (*Binding, error) {
	if opts.Rng == nil {
		return nil, fmt.Errorf("hls: Options.Rng is required")
	}
	if opts.CapWeight == 0 {
		opts.CapWeight = 1
	}
	b := &Binding{
		Graph:  g,
		Sched:  s,
		RegOf:  make(map[int]int),
		FUOf:   make(map[int]int),
		NumFUs: make(map[cdfg.OpKind]int),
	}
	if err := allocateRegisters(g, s, tr, opts, b); err != nil {
		return nil, err
	}
	if err := allocateUnits(g, s, tr, opts, b); err != nil {
		return nil, err
	}
	return b, nil
}

// meanSwitch returns the mean normalized Hamming distance between the
// value streams of two nodes — the Ws of the compatibility edge.
func meanSwitch(tr *Traces, a, b int) float64 {
	if len(tr.Values) == 0 {
		return 0
	}
	total := 0
	for _, row := range tr.Values {
		total += bitutil.Hamming(uint64(row[a]), uint64(row[b]))
	}
	return float64(total) / (float64(len(tr.Values)) * WordWidth)
}

type group struct{ members []int }

// greedyMerge merges compatible groups by descending weight until no
// positive-weight compatible pair remains.
func greedyMerge(items []int, compatible func(a, b []int) bool, weight func(a, b []int) float64) []group {
	groups := make([]group, len(items))
	for i, it := range items {
		groups[i] = group{members: []int{it}}
	}
	for {
		bi, bj := -1, -1
		var bw float64
		for i := 0; i < len(groups); i++ {
			for j := i + 1; j < len(groups); j++ {
				if !compatible(groups[i].members, groups[j].members) {
					continue
				}
				w := weight(groups[i].members, groups[j].members)
				if bi < 0 || w > bw {
					bi, bj, bw = i, j, w
				}
			}
		}
		if bi < 0 {
			break
		}
		groups[bi].members = append(groups[bi].members, groups[bj].members...)
		groups = append(groups[:bj], groups[bj+1:]...)
	}
	return groups
}

func allocateRegisters(g *cdfg.Graph, s cdfg.Schedule, tr *Traces, opts Options, b *Binding) error {
	vars := variables(g, s)
	lifetimes := make(map[int][2]int)
	for _, v := range vars {
		d, l := lifetime(g, s, v)
		lifetimes[v] = [2]int{d, l}
	}
	compatible := func(a, c []int) bool {
		for _, x := range a {
			for _, y := range c {
				lx, ly := lifetimes[x], lifetimes[y]
				if lx[0] < ly[1] && ly[0] < lx[1] {
					return false // lifetimes overlap
				}
			}
		}
		return true
	}
	weight := func(a, c []int) float64 {
		if !opts.ActivityAware {
			return opts.CapWeight * (1 + opts.Rng.Float64()*1e-6)
		}
		// Average pairwise Ws across the merged occupants.
		var ws float64
		n := 0
		for _, x := range a {
			for _, y := range c {
				ws += meanSwitch(tr, x, y)
				n++
			}
		}
		if n > 0 {
			ws /= float64(n)
		}
		return opts.CapWeight * (1 - ws)
	}
	groups := greedyMerge(vars, compatible, weight)
	for rid, grp := range groups {
		for _, v := range grp.members {
			b.RegOf[v] = rid
		}
	}
	b.NumRegs = len(groups)
	return nil
}

func allocateUnits(g *cdfg.Graph, s cdfg.Schedule, tr *Traces, opts Options, b *Binding) error {
	byKind := make(map[cdfg.OpKind][]int)
	for _, n := range g.Nodes {
		if n.Kind.IsOperation() && n.Kind != cdfg.Mux {
			byKind[n.Kind] = append(byKind[n.Kind], n.ID)
		}
	}
	kinds := make([]cdfg.OpKind, 0, len(byKind))
	for k := range byKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	for _, kind := range kinds {
		ops := byKind[kind]
		compatible := func(a, c []int) bool {
			for _, x := range a {
				for _, y := range c {
					if s.Step[x] == s.Step[y] {
						return false
					}
				}
			}
			return true
		}
		weight := func(a, c []int) float64 {
			if !opts.ActivityAware {
				return opts.CapWeight * (1 + opts.Rng.Float64()*1e-6)
			}
			// Ws between operations: switching of their operand streams.
			var ws float64
			n := 0
			for _, x := range a {
				for _, y := range c {
					ws += operandSwitch(g, tr, x, y)
					n++
				}
			}
			if n > 0 {
				ws /= float64(n)
			}
			return opts.CapWeight * (1 - ws)
		}
		groups := greedyMerge(ops, compatible, weight)
		for uid, grp := range groups {
			for _, op := range grp.members {
				b.FUOf[op] = uid
			}
		}
		b.NumFUs[kind] = len(groups)
	}
	return nil
}

// operandSwitch is the mean normalized Hamming distance between the
// operand pairs of two operations.
func operandSwitch(g *cdfg.Graph, tr *Traces, x, y int) float64 {
	ax, ay := g.Nodes[x].Args, g.Nodes[y].Args
	if len(tr.Values) == 0 || len(ax) < 2 || len(ay) < 2 {
		return 0
	}
	total := 0
	for _, row := range tr.Values {
		total += bitutil.Hamming(uint64(row[ax[0]]), uint64(row[ay[0]]))
		total += bitutil.Hamming(uint64(row[ax[1]]), uint64(row[ay[1]]))
	}
	return float64(total) / (float64(len(tr.Values)) * 2 * WordWidth)
}

// SwitchedBits evaluates a binding's switching cost over the traces: for
// every register, the bits flipped by consecutive writes; for every
// functional unit, the bits flipped on its operand inputs between
// consecutive operations it serves (within and across samples).
func (b *Binding) SwitchedBits(tr *Traces) float64 {
	g, s := b.Graph, b.Sched
	mask := bitutil.Mask(WordWidth)

	// Registers: writes ordered by def step.
	regWrites := make(map[int][]int) // reg -> node ids sorted by def step
	for v, r := range b.RegOf {
		regWrites[r] = append(regWrites[r], v)
	}
	for _, vs := range regWrites {
		sort.Slice(vs, func(i, j int) bool { return defStep(g, s, vs[i]) < defStep(g, s, vs[j]) })
	}
	// Units: ops ordered by step.
	unitOps := make(map[[2]int][]int) // (kind, unit) -> ops
	for op, u := range b.FUOf {
		k := [2]int{int(g.Nodes[op].Kind), u}
		unitOps[k] = append(unitOps[k], op)
	}
	for _, ops := range unitOps {
		sort.Slice(ops, func(i, j int) bool { return s.Step[ops[i]] < s.Step[ops[j]] })
	}

	var total float64
	for _, vs := range regWrites {
		var prev uint64
		first := true
		for _, row := range tr.Values {
			for _, v := range vs {
				cur := uint64(row[v]) & mask
				if !first {
					total += float64(bitutil.Hamming(prev, cur))
				}
				prev, first = cur, false
			}
		}
	}
	for _, ops := range unitOps {
		var prevA, prevB uint64
		first := true
		for _, row := range tr.Values {
			for _, op := range ops {
				args := g.Nodes[op].Args
				a := uint64(row[args[0]]) & mask
				var c uint64
				if len(args) > 1 {
					c = uint64(row[args[1]]) & mask
				}
				if !first {
					total += float64(bitutil.Hamming(prevA, a) + bitutil.Hamming(prevB, c))
				}
				prevA, prevB, first = a, c, false
			}
		}
	}
	return total
}

// MuxInputs estimates the steering-logic cost of the binding: for every
// register and functional-unit input port, one multiplexer input per
// distinct source beyond the first. Sharing more aggressively saves
// units but grows this number — the §III-E tension that motivates
// simultaneous allocation.
func (b *Binding) MuxInputs() int {
	g, s := b.Graph, b.Sched
	total := 0
	// Register write ports: distinct producing operations per register.
	regSources := make(map[int]map[int]bool)
	for v, r := range b.RegOf {
		if regSources[r] == nil {
			regSources[r] = make(map[int]bool)
		}
		regSources[r][v] = true
	}
	for _, src := range regSources {
		if len(src) > 1 {
			total += len(src) - 1
		}
	}
	// Unit operand ports: distinct argument sources per port.
	unitSources := make(map[[3]int]map[int]bool) // (kind, unit, port) -> sources
	for op, u := range b.FUOf {
		for port, a := range g.Nodes[op].Args {
			k := [3]int{int(g.Nodes[op].Kind), u, port}
			if unitSources[k] == nil {
				unitSources[k] = make(map[int]bool)
			}
			unitSources[k][a] = true
		}
	}
	for _, src := range unitSources {
		if len(src) > 1 {
			total += len(src) - 1
		}
	}
	_ = s
	return total
}
