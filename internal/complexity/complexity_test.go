package complexity

import (
	"math"
	"math/rand"
	"testing"
)

func TestLinearMeasureExtremes(t *testing.T) {
	n := 4
	// Constant functions: one side empty, other side one empty-mask prime
	// with 0 literals -> complexity 0.
	tt := make([]bool, 16)
	if c, _ := LinearMeasure(tt, n); c != 0 {
		t.Errorf("constant-0 complexity = %v, want 0", c)
	}
	for i := range tt {
		tt[i] = true
	}
	if c, _ := LinearMeasure(tt, n); c != 0 {
		t.Errorf("constant-1 complexity = %v, want 0", c)
	}
}

func TestLinearMeasureParityIsMaximal(t *testing.T) {
	// Parity has only minterm primes (n literals each) on both sets; the
	// on-set and off-set each carry probability 1/2, so C1 = C0 = n/2 and
	// C = n/2 — the maximum over all n-variable functions. It must exceed
	// a simple AND function.
	n := 4
	parity := make([]bool, 16)
	for i := range parity {
		parity[i] = (i&1 ^ i>>1&1 ^ i>>2&1 ^ i>>3&1) == 1
	}
	cp, _ := LinearMeasure(parity, n)
	if math.Abs(cp-float64(n)/2) > 1e-12 {
		t.Errorf("parity complexity = %v, want %v", cp, float64(n)/2)
	}
	andF := make([]bool, 16)
	andF[15] = true // x0x1x2x3
	ca, _ := LinearMeasure(andF, n)
	if ca >= cp {
		t.Errorf("AND complexity %v should be below parity %v", ca, cp)
	}
}

func TestLinearMeasureSingleVariable(t *testing.T) {
	// f = x0 over 3 vars: both on-set and off-set are covered by a single
	// 1-literal prime -> complexity 0.5*(0.5*1*... actually each minterm
	// gets 1 literal, weighted by its probability: C1 = 0.5, C0 = 0.5.
	tt := make([]bool, 8)
	for i := range tt {
		tt[i] = i&1 == 1
	}
	c, _ := LinearMeasure(tt, 3)
	if math.Abs(c-0.5) > 1e-12 {
		t.Errorf("x0 complexity = %v, want 0.5", c)
	}
}

func TestOutputProbability(t *testing.T) {
	if OutputProbability([]bool{true, false, true, false}) != 0.5 {
		t.Error("output probability wrong")
	}
	if OutputProbability(nil) != 0 {
		t.Error("empty truth table should be 0")
	}
}

func TestOptimizedAreaTracksComplexity(t *testing.T) {
	// Across the popcount-threshold family, higher linear measure should
	// correspond to higher optimized literal count (monotone trend).
	n := 5
	var cs, as []float64
	for k := 0; k <= n; k++ {
		tt := PopcountThresholdFunction(n, k)
		c, _ := LinearMeasure(tt, n)
		a, err := OptimizedArea(tt, n)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
		as = append(as, float64(a))
	}
	// Extremes are constants: zero complexity and zero-ish area.
	if cs[0] != 0 || as[0] != 0 {
		t.Errorf("k=0 should be constant-1: C=%v A=%v", cs[0], as[0])
	}
	// The middle threshold (majority) must be the most complex.
	mid := (n + 1) / 2
	for k := range cs {
		if cs[k] > cs[mid]+1e-9 {
			t.Errorf("complexity at k=%d (%v) exceeds majority (%v)", k, cs[k], cs[mid])
		}
	}
}

func TestFitAreaModelRecoversExponential(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a, b := 2.0, 1.1
	var cs, as []float64
	for i := 0; i < 60; i++ {
		c := rng.Float64() * 4
		cs = append(cs, c)
		as = append(as, a*math.Exp(b*c)*(1+rng.NormFloat64()*0.01)-1)
	}
	m, err := FitAreaModel(cs, as)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.B-b) > 0.05 {
		t.Errorf("fitted b = %v, want ~%v", m.B, b)
	}
	if m.R2 < 0.98 {
		t.Errorf("R2 = %v, want near 1", m.R2)
	}
	if p := m.Predict(2); math.Abs(p-a*math.Exp(2*b)) > 0.5 {
		t.Errorf("prediction %v, want ~%v", p, a*math.Exp(2*b))
	}
}

func TestFitAreaModelOnRealFunctions(t *testing.T) {
	// Fit on random functions at q≈0.5 and require a positive trend
	// (area grows with complexity).
	rng := rand.New(rand.NewSource(9))
	n := 6
	var cs, as []float64
	for i := 0; i < 40; i++ {
		tt := RandomFunction(n, 0.5, rng.Uint64)
		c, _ := LinearMeasure(tt, n)
		area, err := OptimizedArea(tt, n)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
		as = append(as, float64(area))
	}
	m, err := FitAreaModel(cs, as)
	if err != nil {
		t.Fatal(err)
	}
	if m.B <= 0 {
		t.Errorf("area model slope = %v, want positive (area grows with complexity)", m.B)
	}
}

func TestFitAreaModelErrors(t *testing.T) {
	if _, err := FitAreaModel([]float64{1}, []float64{1}); err == nil {
		t.Error("expected error for tiny sample")
	}
	if _, err := FitAreaModel([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("expected error for mismatched lengths")
	}
}

func TestGateEquivalentPower(t *testing.T) {
	p := GateEquivalentParams{Freq: 2, Vdd: 1, EnergyGate: 0.5, CLoad: 1, GateActivity: 0.25}
	got := GateEquivalentPower(p, 100)
	want := 2.0 * 100 * (0.5 + 0.5) * 0.25
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("power = %v, want %v", got, want)
	}
	if GateEquivalentPower(p, 0) != 0 {
		t.Error("zero gates should be zero power")
	}
}

func TestLandmanRabaeyFitAndPredict(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	trueCI, trueCO := 2.5, 4.0
	vdd, freq := 1.0, 1.0
	var samples []LandmanRabaeySample
	for i := 0; i < 30; i++ {
		s := LandmanRabaeySample{
			NI: 4 + rng.Intn(12),
			NO: 2 + rng.Intn(10),
			EI: 0.1 + 0.4*rng.Float64(),
			EO: 0.1 + 0.4*rng.Float64(),
			NM: 5 + rng.Intn(40),
		}
		k := 0.5 * vdd * vdd * freq * float64(s.NM)
		s.Power = k*(float64(s.NI)*trueCI*s.EI+float64(s.NO)*trueCO*s.EO) +
			rng.NormFloat64()*0.01
		samples = append(samples, s)
	}
	m, err := FitLandmanRabaey(samples, vdd, freq)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.CI-trueCI) > 0.1 || math.Abs(m.CO-trueCO) > 0.1 {
		t.Errorf("fit = (%v, %v), want (%v, %v)", m.CI, m.CO, trueCI, trueCO)
	}
	s := samples[0]
	if rel := math.Abs(m.Predict(s)-s.Power) / s.Power; rel > 0.05 {
		t.Errorf("prediction error %v too large", rel)
	}
}

func TestPopcountThresholdFunction(t *testing.T) {
	tt := PopcountThresholdFunction(3, 2)
	want := []bool{false, false, false, true, false, true, true, true}
	for i := range want {
		if tt[i] != want[i] {
			t.Errorf("tt[%d] = %v, want %v", i, tt[i], want[i])
		}
	}
}

func TestLinearMeasureMulti(t *testing.T) {
	n := 4
	a := PopcountThresholdFunction(n, 2)
	b := PopcountThresholdFunction(n, 3)
	got, _ := LinearMeasureMulti([][]bool{a, b}, n)
	ca2, _ := LinearMeasure(a, n)
	cb2, _ := LinearMeasure(b, n)
	want := ca2 + cb2
	if got != want {
		t.Errorf("multi measure %v != sum of singles %v", got, want)
	}
	if z, _ := LinearMeasureMulti(nil, n); z != 0 {
		t.Error("no outputs should be zero complexity")
	}
}
