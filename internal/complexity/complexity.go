// Package complexity implements the complexity-based power models of
// §II-B2: the Nemani–Najm linear measure relating a Boolean function's
// on/off-set prime structure to its optimized area (with the exponential
// regression family), the gate-equivalent "chip estimation system" power
// model [14], and the Landman–Rabaey activity-sensitive controller model
// [17].
package complexity

import (
	"errors"
	"fmt"
	"math"
	"math/bits"

	"hlpower/internal/cover"
	"hlpower/internal/hlerr"
	"hlpower/internal/stats"
)

// LinearMeasure computes the Nemani–Najm area-complexity measure of a
// single-output function given as a truth table over n variables:
// C(f) = (C1(f) + C0(f)) / 2, where C1 assigns each on-set minterm the
// literal count of the largest essential prime covering it (falling back
// to all primes for minterms no essential covers) weighted by minterm
// probability, and C0 does the same on the complement. A truth table
// whose length disagrees with n is a typed input error.
func LinearMeasure(tt []bool, n int) (float64, error) {
	if n < 0 || n > 30 || len(tt) != 1<<uint(n) {
		return 0, hlerr.Errorf("complexity.LinearMeasure",
			"truth table length %d does not match %d variables", len(tt), n)
	}
	var on, off []uint64
	for i, v := range tt {
		if v {
			on = append(on, uint64(i))
		} else {
			off = append(off, uint64(i))
		}
	}
	c1 := setComplexity(on, n)
	c0 := setComplexity(off, n)
	return (c1 + c0) / 2, nil
}

// setComplexity returns Σ over minterms of P(m)·minLiterals(m) where
// minLiterals is the literal count of the largest covering essential
// prime (all primes as fallback) and P(m) = 2^-n (uniform inputs).
func setComplexity(minterms []uint64, n int) float64 {
	if len(minterms) == 0 {
		return 0
	}
	primes := cover.Primes(minterms, n)
	ess := cover.EssentialPrimes(primes, minterms)
	var total float64
	for _, m := range minterms {
		lits := bestLiterals(ess, m, n)
		if lits < 0 {
			lits = bestLiterals(primes, m, n)
		}
		if lits < 0 {
			lits = n // isolated minterm (cannot happen: it is its own prime)
		}
		total += float64(lits)
	}
	return total / math.Pow(2, float64(n))
}

// bestLiterals returns the literal count of the largest (fewest-literal)
// cube covering m, or -1 if none covers it.
func bestLiterals(cubes []cover.Cube, m uint64, n int) int {
	best := -1
	for _, c := range cubes {
		if !c.Contains(m) {
			continue
		}
		l := c.Literals()
		if best < 0 || l < best {
			best = l
		}
	}
	return best
}

// OutputProbability returns the fraction of on-set minterms.
func OutputProbability(tt []bool) float64 {
	if len(tt) == 0 {
		return 0
	}
	on := 0
	for _, v := range tt {
		if v {
			on++
		}
	}
	return float64(on) / float64(len(tt))
}

// AreaModel is the exponential regression family A(C) = a·e^(b·C) that
// [15] fits per output-probability band.
type AreaModel struct {
	A, B float64
	R2   float64
}

// Predict returns the predicted optimized area for complexity c.
func (m *AreaModel) Predict(c float64) float64 { return m.A * math.Exp(m.B*c) }

// FitAreaModel fits log(area) = log a + b·C by least squares. Areas must
// be positive; zero-area samples are shifted by +1.
func FitAreaModel(complexities, areas []float64) (*AreaModel, error) {
	if len(complexities) != len(areas) || len(complexities) < 3 {
		return nil, errors.New("complexity: need >=3 matched samples")
	}
	X := make([][]float64, len(areas))
	y := make([]float64, len(areas))
	for i := range areas {
		X[i] = []float64{1, complexities[i]}
		y[i] = math.Log(areas[i] + 1)
	}
	fit, err := stats.OLS(X, y)
	if err != nil {
		return nil, err
	}
	return &AreaModel{A: math.Exp(fit.Beta[0]), B: fit.Beta[1], R2: fit.R2}, nil
}

// OptimizedArea synthesizes the function two-level (our SIS stand-in)
// and returns its literal count, the area ground truth the model is
// regressed against.
func OptimizedArea(tt []bool, n int) (int, error) {
	var on []uint64
	for i, v := range tt {
		if v {
			on = append(on, uint64(i))
		}
	}
	cv, err := cover.Minimize(on, n)
	if err != nil {
		return 0, err
	}
	return cv.Literals(), nil
}

// GateEquivalentParams parameterizes the chip-estimation-system model
// [14]: Power = f·N·(E_gate + 0.5·V²·C_load)·E_activity.
type GateEquivalentParams struct {
	Freq         float64 // clock frequency
	Vdd          float64
	EnergyGate   float64 // internal energy per equivalent-gate transition
	CLoad        float64 // average load per equivalent gate
	GateActivity float64 // average output activity per gate per cycle
}

// GateEquivalentPower evaluates the model for a block of n equivalent
// gates.
func GateEquivalentPower(p GateEquivalentParams, nGates int) float64 {
	return p.Freq * float64(nGates) * (p.EnergyGate + 0.5*p.Vdd*p.Vdd*p.CLoad) * p.GateActivity
}

// LandmanRabaeySample is one observed controller: structural counts,
// measured line activities, the minterm count of its optimized cover,
// and the measured power.
type LandmanRabaeySample struct {
	NI, NO int     // input+state lines, output+state lines
	EI, EO float64 // mean switching activity on those lines
	NM     int     // minterms in the optimized cover
	Power  float64 // measured
}

// LandmanRabaeyModel holds the fitted capacitive regression coefficients
// of the standard-cell controller power model [17]:
// Power = 0.5·V²·f·(NI·CI·EI + NO·CO·EO)·NM.
type LandmanRabaeyModel struct {
	CI, CO    float64
	Vdd, Freq float64
}

// FitLandmanRabaey regresses CI and CO from measured controllers.
func FitLandmanRabaey(samples []LandmanRabaeySample, vdd, freq float64) (*LandmanRabaeyModel, error) {
	if len(samples) < 2 {
		return nil, errors.New("complexity: need >=2 controller samples")
	}
	X := make([][]float64, len(samples))
	y := make([]float64, len(samples))
	for i, s := range samples {
		k := 0.5 * vdd * vdd * freq * float64(s.NM)
		X[i] = []float64{k * float64(s.NI) * s.EI, k * float64(s.NO) * s.EO}
		y[i] = s.Power
	}
	fit, err := stats.OLS(X, y)
	if err != nil {
		return nil, err
	}
	return &LandmanRabaeyModel{CI: fit.Beta[0], CO: fit.Beta[1], Vdd: vdd, Freq: freq}, nil
}

// Predict evaluates the fitted controller model.
func (m *LandmanRabaeyModel) Predict(s LandmanRabaeySample) float64 {
	return 0.5 * m.Vdd * m.Vdd * m.Freq *
		(float64(s.NI)*m.CI*s.EI + float64(s.NO)*m.CO*s.EO) * float64(s.NM)
}

// RandomFunction builds a random truth table over n variables whose
// output probability is approximately q, using the given 64-bit source.
func RandomFunction(n int, q float64, next func() uint64) []bool {
	tt := make([]bool, 1<<uint(n))
	threshold := uint64(q * float64(^uint64(0)))
	for i := range tt {
		tt[i] = next() <= threshold
	}
	return tt
}

// PopcountThresholdFunction returns the structured family f(x) =
// [popcount(x) >= k], whose complexity varies smoothly with k — useful
// for populating regression datasets with non-random functions.
func PopcountThresholdFunction(n, k int) []bool {
	tt := make([]bool, 1<<uint(n))
	for i := range tt {
		tt[i] = bits.OnesCount(uint(i)) >= k
	}
	return tt
}

// LinearMeasureMulti extends the linear measure to multiple-output
// functions ([16]): the complexity of the ensemble is the sum of the
// per-output measures (each output synthesizes its own cover in the
// two-level model this measure calibrates against).
func LinearMeasureMulti(tts [][]bool, n int) (float64, error) {
	var total float64
	for i, tt := range tts {
		c, err := LinearMeasure(tt, n)
		if err != nil {
			return 0, fmt.Errorf("output %d: %w", i, err)
		}
		total += c
	}
	return total, nil
}
