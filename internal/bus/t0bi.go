package bus

import (
	"math/bits"

	"hlpower/internal/bitutil"
)

// T0BI combines the T0 and Bus-Invert principles (the [81] variant the
// paper mentions): in-sequence addresses freeze the bus with INC raised;
// out-of-sequence addresses are transmitted with Bus-Invert polarity
// selection. Two redundant lines: INC at bit Width, INV at bit Width+1.
type T0BI struct {
	Width    int
	started  bool
	lastWord uint64
	prevBus  uint64
}

// Name identifies the code.
func (t *T0BI) Name() string { return "t0-bi" }

// BusWidth includes the INC and INV lines.
func (t *T0BI) BusWidth() int { return t.Width + 2 }

// Reset restores the initial state.
func (t *T0BI) Reset() { t.started = false; t.lastWord = 0; t.prevBus = 0 }

// Encode maps the next address to the bus value.
func (t *T0BI) Encode(w uint64) uint64 {
	mask := bitutil.Mask(t.Width)
	incBit := uint64(1) << uint(t.Width)
	invBit := uint64(1) << uint(t.Width+1)
	w &= mask
	var out uint64
	if t.started && w == (t.lastWord+1)&mask {
		// Freeze data and INV lines, raise INC.
		out = (t.prevBus &^ incBit) | incBit
	} else {
		prevINV := t.prevBus & invBit
		dPlain := bits.OnesCount64((t.prevBus ^ w) & mask)
		if prevINV != 0 {
			dPlain++ // INV would fall
		}
		dInv := bits.OnesCount64((t.prevBus ^ (^w)) & mask)
		if prevINV == 0 {
			dInv++ // INV would rise
		}
		if dInv < dPlain {
			out = (^w & mask) | invBit
		} else {
			out = w
		}
	}
	t.started = true
	t.lastWord = w
	t.prevBus = out
	return out
}

// T0BIDecoder inverts the combined code.
type T0BIDecoder struct {
	Width    int
	started  bool
	lastWord uint64
}

// Reset restores the initial state.
func (d *T0BIDecoder) Reset() { d.started = false; d.lastWord = 0 }

// Decode recovers the address.
func (d *T0BIDecoder) Decode(v uint64) uint64 {
	mask := bitutil.Mask(d.Width)
	var w uint64
	switch {
	case v>>uint(d.Width)&1 == 1 && d.started:
		w = (d.lastWord + 1) & mask
	case v>>uint(d.Width+1)&1 == 1:
		w = ^v & mask
	default:
		w = v & mask
	}
	d.started = true
	d.lastWord = w
	return w
}
