package bus

import (
	"errors"
	"testing"

	"hlpower/internal/budget"
)

// busStream is a fixed mixed stream long enough to cross several
// checkpoints at CheckInterval 1.
func busStream() []uint64 {
	s := make([]uint64, 64)
	for i := range s {
		s[i] = uint64(i*37) & 0xFF
	}
	return s
}

// TestFaultInjectionUnwindsEncoders sweeps deterministic fault trips
// through every encoder's budgeted transition count and asserts each
// failure mode is a clean typed error, never a panic or a hang.
func TestFaultInjectionUnwindsEncoders(t *testing.T) {
	encoders := []Encoder{
		&Raw{Width: 8},
		&BusInvert{Width: 8},
		&GrayCode{Width: 8},
		&T0{Width: 8},
		&T0BI{Width: 8},
		NewWorkingZone(8, 2, 3),
	}
	stream := busStream()
	for _, e := range encoders {
		for k := int64(1); k <= 6; k++ {
			b := budget.New(
				budget.WithCheckInterval(1),
				budget.WithFaultPlan(budget.FaultPlan{FailAtCheck: k}),
			)
			_, err := TransitionsBudget(b, e, stream)
			var ex *budget.Exceeded
			if !errors.As(err, &ex) || ex.Resource != budget.FaultResource {
				t.Fatalf("%s fail@%d: want injected fault error, got %v", e.Name(), k, err)
			}
			if !errors.Is(err, budget.ErrExceeded) {
				t.Fatalf("%s fail@%d: error not matchable as budget exhaustion", e.Name(), k)
			}
		}
	}
}

func TestTransitionsBudgetExhaustion(t *testing.T) {
	stream := busStream()
	b := budget.New(budget.WithMaxSteps(10))
	_, err := TransitionsBudget(b, &BusInvert{Width: 8}, stream)
	if !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("want step exhaustion, got %v", err)
	}
	if _, err := PerWordBudget(b, &BusInvert{Width: 8}, stream); !errors.Is(err, budget.ErrExceeded) {
		t.Fatalf("PerWordBudget must surface the sticky violation, got %v", err)
	}
}

// TestBudgetedMatchesUnbudgeted pins that governance does not change
// the measurement: a nil or ample budget reproduces Transitions/PerWord
// exactly.
func TestBudgetedMatchesUnbudgeted(t *testing.T) {
	stream := busStream()
	for _, e := range []Encoder{&Raw{Width: 8}, &BusInvert{Width: 8}, &GrayCode{Width: 8}} {
		want := Transitions(e, stream)
		got, err := TransitionsBudget(budget.New(), e, stream)
		if err != nil || got != want {
			t.Fatalf("%s: budgeted %d (err %v), unbudgeted %d", e.Name(), got, err, want)
		}
		wantPW := PerWord(e, stream)
		gotPW, err := PerWordBudget(nil, e, stream)
		if err != nil || gotPW != wantPW {
			t.Fatalf("%s: budgeted per-word %v (err %v), want %v", e.Name(), gotPW, err, wantPW)
		}
	}
}
