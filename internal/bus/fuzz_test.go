package bus

import (
	"testing"

	"hlpower/internal/bitutil"
)

// Native fuzz targets for the encoder/decoder round-trip contract:
// feeding a decoder the exact encoder output must reproduce the word
// stream bit-for-bit, with no panics, for arbitrary word sequences.
// The seed corpus mixes sequential, repeated, and boundary words; the
// fuzzer mutates from there.

// fuzzWords splits fuzz input bytes into a word stream under the mask.
func fuzzWords(data []byte, width int) []uint64 {
	mask := bitutil.Mask(width)
	var words []uint64
	var cur uint64
	for i, b := range data {
		cur = cur<<8 | uint64(b)
		if i%8 == 7 {
			words = append(words, cur&mask)
			cur = 0
		}
	}
	words = append(words, cur&mask)
	return words
}

func addSeeds(f *testing.F) {
	f.Helper()
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x00})
	f.Add([]byte{0x80, 0x00, 0x7F, 0xFF, 0x55, 0xAA, 0x55, 0xAA, 0x01, 0x01})
}

func fuzzRoundTrip(t *testing.T, name string, enc Encoder, dec Decoder, words []uint64) {
	t.Helper()
	enc.Reset()
	dec.Reset()
	for i, w := range words {
		got := dec.Decode(enc.Encode(w))
		if got != w {
			t.Fatalf("%s: word %d: decode(encode(%#x)) = %#x", name, i, w, got)
		}
	}
}

func FuzzBusInvertRoundTrip(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		const width = 16
		words := fuzzWords(data, width)
		fuzzRoundTrip(t, "bus-invert",
			&BusInvert{Width: width}, &BusInvertDecoder{Width: width}, words)
	})
}

func FuzzT0RoundTrip(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		const width = 16
		words := fuzzWords(data, width)
		fuzzRoundTrip(t, "t0", &T0{Width: width}, &T0Decoder{Width: width}, words)
	})
}

func FuzzGrayRoundTrip(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		const width = 16
		words := fuzzWords(data, width)
		fuzzRoundTrip(t, "gray", &GrayCode{Width: width}, &GrayDecoder{Width: width}, words)
	})
}

func FuzzT0BIRoundTrip(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		const width = 16
		words := fuzzWords(data, width)
		fuzzRoundTrip(t, "t0bi", &T0BI{Width: width}, &T0BIDecoder{Width: width}, words)
	})
}

func FuzzWorkingZoneRoundTrip(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		const (
			width      = 16
			zones      = 4
			offsetBits = 6
		)
		words := fuzzWords(data, width)
		fuzzRoundTrip(t, "working-zone",
			NewWorkingZone(width, zones, offsetBits),
			NewWorkingZoneDecoder(width, zones, offsetBits), words)
	})
}

func FuzzBeachRoundTrip(f *testing.F) {
	addSeeds(f)
	f.Fuzz(func(t *testing.T, data []byte) {
		const width = 16
		words := fuzzWords(data, width)
		// Train on the first half of the mutated stream (plus a fixed
		// prefix so tiny inputs still train), decode the whole stream:
		// the code must round-trip even for words outside the training
		// clusters.
		train := append([]uint64{0, 1, 2, 3, 0x100, 0x101}, words[:len(words)/2]...)
		b := TrainBeach(train, width, 3, 4)
		fuzzRoundTrip(t, "beach", b, b, words)
	})
}
