package bus

import (
	"hlpower/internal/bitutil"
)

// WorkingZone implements the Musoll–Lang–Cortadella code [82]: the
// receiver holds one reference address per working zone; an address
// falling in a zone is transmitted as a one-hot zone selector plus the
// Gray-coded offset from the zone reference (high temporal locality
// makes consecutive offsets differ by one line), with the redundant HIT
// line raised. A miss transmits the raw address with HIT low and
// installs it as the new reference of the round-robin victim zone.
//
// Bus layout: [Width-1:0] data/offset, [Width+Zones-1:Width] one-hot
// zone id, [Width+Zones] HIT.
type WorkingZone struct {
	Width      int
	Zones      int
	OffsetBits int

	refs    []uint64
	valid   []bool
	victim  int
	prevBus uint64
}

// NewWorkingZone returns a code with the given zone count and offset
// range (2^offsetBits addresses per zone).
func NewWorkingZone(width, zones, offsetBits int) *WorkingZone {
	wz := &WorkingZone{Width: width, Zones: zones, OffsetBits: offsetBits}
	wz.Reset()
	return wz
}

func (z *WorkingZone) Name() string  { return "working-zone" }
func (z *WorkingZone) BusWidth() int { return z.Width + z.Zones + 1 }

func (z *WorkingZone) Reset() {
	z.refs = make([]uint64, z.Zones)
	z.valid = make([]bool, z.Zones)
	z.victim = 0
	z.prevBus = 0
}

func (z *WorkingZone) hitBit() uint64 { return 1 << uint(z.Width+z.Zones) }

func (z *WorkingZone) Encode(w uint64) uint64 {
	mask := bitutil.Mask(z.Width)
	w &= mask
	span := uint64(1) << uint(z.OffsetBits)
	for i := 0; i < z.Zones; i++ {
		if !z.valid[i] {
			continue
		}
		// Offsets are relative to the zone's most recent access, so an
		// in-sequence revisit always transmits gray(1) — the stationary
		// pattern the code is built around.
		off := (w - z.refs[i]) & mask
		if off < span {
			out := bitutil.Gray(off) |
				uint64(1)<<uint(z.Width+i) |
				z.hitBit()
			z.refs[i] = w
			z.prevBus = out
			return out
		}
	}
	// Miss: install as new reference and send raw.
	z.refs[z.victim] = w
	z.valid[z.victim] = true
	z.victim = (z.victim + 1) % z.Zones
	z.prevBus = w
	return w
}

// WorkingZoneDecoder mirrors the encoder's zone state.
type WorkingZoneDecoder struct {
	Width      int
	Zones      int
	OffsetBits int
	refs       []uint64
	victim     int
}

// NewWorkingZoneDecoder returns the matching decoder.
func NewWorkingZoneDecoder(width, zones, offsetBits int) *WorkingZoneDecoder {
	d := &WorkingZoneDecoder{Width: width, Zones: zones, OffsetBits: offsetBits}
	d.Reset()
	return d
}

func (d *WorkingZoneDecoder) Reset() {
	d.refs = make([]uint64, d.Zones)
	d.victim = 0
}

func (d *WorkingZoneDecoder) Decode(v uint64) uint64 {
	mask := bitutil.Mask(d.Width)
	hit := v>>uint(d.Width+d.Zones)&1 == 1
	if !hit {
		w := v & mask
		d.refs[d.victim] = w
		d.victim = (d.victim + 1) % d.Zones
		return w
	}
	zone := 0
	for i := 0; i < d.Zones; i++ {
		if v>>uint(d.Width+i)&1 == 1 {
			zone = i
			break
		}
	}
	off := bitutil.GrayInverse(v & mask)
	w := (d.refs[zone] + off) & mask
	d.refs[zone] = w
	return w
}
