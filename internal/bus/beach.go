package bus

import (
	"math"
	"sort"

	"hlpower/internal/bitutil"
	"hlpower/internal/stats"
)

// Beach implements the trace-driven code of Benini et al. [83]: bus
// lines are grouped into clusters by pairwise correlation measured on a
// typical execution trace, and each cluster receives a value-permutation
// encoding function chosen to minimize the weighted Hamming distance
// between temporally adjacent cluster patterns (the same machinery as
// low-power FSM encoding). The code is irredundant — same bus width —
// and is a bijection per cluster, so decoding is the inverse permutation.
type Beach struct {
	Width    int
	clusters [][]int    // line indices per cluster
	perm     [][]uint64 // per cluster: pattern -> code
	inverse  [][]uint64 // per cluster: code -> pattern
}

// TrainBeach builds the code from a training trace. maxClusterBits
// bounds cluster size (2^bits permutation tables).
func TrainBeach(trace []uint64, width, maxClusterBits int, iters int) *Beach {
	b := &Beach{Width: width}
	b.clusters = clusterLines(trace, width, maxClusterBits)
	for _, cl := range b.clusters {
		b.perm = append(b.perm, trainCluster(trace, cl, iters))
	}
	b.inverse = make([][]uint64, len(b.perm))
	for i, p := range b.perm {
		inv := make([]uint64, len(p))
		for pattern, code := range p {
			inv[code] = uint64(pattern)
		}
		b.inverse[i] = inv
	}
	return b
}

// clusterLines groups bus lines greedily by descending |correlation|.
func clusterLines(trace []uint64, width, maxBits int) [][]int {
	// Line value series.
	series := make([][]float64, width)
	for i := range series {
		series[i] = make([]float64, len(trace))
		for t, w := range trace {
			if bitutil.Bit(w, i) {
				series[i][t] = 1
			}
		}
	}
	type pair struct {
		i, j int
		c    float64
	}
	var pairs []pair
	for i := 0; i < width; i++ {
		for j := i + 1; j < width; j++ {
			c := math.Abs(stats.Pearson(series[i], series[j]))
			pairs = append(pairs, pair{i, j, c})
		}
	}
	sort.Slice(pairs, func(a, b int) bool { return pairs[a].c > pairs[b].c })
	clusterOf := make([]int, width)
	for i := range clusterOf {
		clusterOf[i] = -1
	}
	var clusters [][]int
	for _, p := range pairs {
		ci, cj := clusterOf[p.i], clusterOf[p.j]
		switch {
		case ci < 0 && cj < 0:
			if maxBits >= 2 {
				clusterOf[p.i] = len(clusters)
				clusterOf[p.j] = len(clusters)
				clusters = append(clusters, []int{p.i, p.j})
			}
		case ci >= 0 && cj < 0:
			if len(clusters[ci]) < maxBits {
				clusterOf[p.j] = ci
				clusters[ci] = append(clusters[ci], p.j)
			}
		case ci < 0 && cj >= 0:
			if len(clusters[cj]) < maxBits {
				clusterOf[p.i] = cj
				clusters[cj] = append(clusters[cj], p.i)
			}
		}
	}
	for i := 0; i < width; i++ {
		if clusterOf[i] < 0 {
			clusters = append(clusters, []int{i})
		}
	}
	for _, cl := range clusters {
		sort.Ints(cl)
	}
	return clusters
}

// extract pulls the cluster-local pattern out of a word.
func extract(w uint64, lines []int) uint64 {
	var p uint64
	for i, l := range lines {
		if bitutil.Bit(w, l) {
			p |= 1 << uint(i)
		}
	}
	return p
}

// deposit writes a cluster-local pattern back into a word.
func deposit(w uint64, lines []int, p uint64) uint64 {
	for i, l := range lines {
		w = bitutil.SetBit(w, l, bitutil.Bit(p, i))
	}
	return w
}

// trainCluster finds a pattern permutation minimizing the transition-
// weighted Hamming cost on the training trace, by greedy pairwise code
// swaps (hill climbing with full cost evaluation; cluster spaces are
// tiny).
func trainCluster(trace []uint64, lines []int, iters int) []uint64 {
	size := 1 << uint(len(lines))
	// Transition counts between consecutive patterns.
	counts := make([][]int, size)
	for i := range counts {
		counts[i] = make([]int, size)
	}
	var prev uint64
	for t, w := range trace {
		p := extract(w, lines)
		if t > 0 {
			counts[prev][p]++
		}
		prev = p
	}
	perm := make([]uint64, size)
	for i := range perm {
		perm[i] = uint64(i)
	}
	cost := func() int {
		c := 0
		for a := 0; a < size; a++ {
			for b, n := range counts[a] {
				if n > 0 {
					c += n * bitutil.Hamming(perm[a], perm[b])
				}
			}
		}
		return c
	}
	cur := cost()
	if iters <= 0 {
		iters = 3
	}
	for pass := 0; pass < iters; pass++ {
		improved := false
		for a := 0; a < size; a++ {
			for b := a + 1; b < size; b++ {
				perm[a], perm[b] = perm[b], perm[a]
				if nc := cost(); nc < cur {
					cur = nc
					improved = true
				} else {
					perm[a], perm[b] = perm[b], perm[a]
				}
			}
		}
		if !improved {
			break
		}
	}
	return perm
}

func (b *Beach) Name() string  { return "beach" }
func (b *Beach) BusWidth() int { return b.Width }
func (b *Beach) Reset()        {}

func (b *Beach) Encode(w uint64) uint64 {
	w &= bitutil.Mask(b.Width)
	out := w
	for ci, cl := range b.clusters {
		p := extract(w, cl)
		out = deposit(out, cl, b.perm[ci][p])
	}
	return out
}

// Decode inverts the per-cluster permutations.
func (b *Beach) Decode(v uint64) uint64 {
	out := v & bitutil.Mask(b.Width)
	for ci, cl := range b.clusters {
		p := extract(v, cl)
		out = deposit(out, cl, b.inverse[ci][p])
	}
	return out
}
