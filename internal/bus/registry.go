package bus

import (
	"fmt"
	"sort"
)

// NewCoder constructs a named encoder/decoder pair over the given
// address width — the constructor registry the recipe layer's bus
// passes select from. Beach is deliberately absent: it must be trained
// on a trace, so it is not constructible from (name, width) alone.
func NewCoder(name string, width int) (Encoder, Decoder, error) {
	if width < 1 || width > 64 {
		return nil, nil, fmt.Errorf("bus: width %d out of range [1,64]", width)
	}
	switch name {
	case "binary":
		r := &Raw{Width: width}
		return r, r, nil
	case "bus-invert":
		return &BusInvert{Width: width}, &BusInvertDecoder{Width: width}, nil
	case "gray":
		return &GrayCode{Width: width}, &GrayDecoder{Width: width}, nil
	case "t0":
		return &T0{Width: width}, &T0Decoder{Width: width}, nil
	case "t0-bi":
		return &T0BI{Width: width}, &T0BIDecoder{Width: width}, nil
	case "working-zone":
		ob := 4
		if ob > width-1 {
			ob = width - 1
		}
		if ob < 1 {
			return nil, nil, fmt.Errorf("bus: width %d too narrow for working-zone", width)
		}
		return NewWorkingZone(width, 2, ob), NewWorkingZoneDecoder(width, 2, ob), nil
	default:
		return nil, nil, fmt.Errorf("bus: unknown coder %q", name)
	}
}

// CoderNames lists the constructible coder names in sorted order.
func CoderNames() []string {
	names := []string{"binary", "bus-invert", "gray", "t0", "t0-bi", "working-zone"}
	sort.Strings(names)
	return names
}
