// Package bus implements the low-power bus encoding schemes of §III-G:
// Bus-Invert [77], Gray addressing [78], the T0 zero-transition code
// [80], the Working-Zone code [82], and the trace-driven Beach code
// [83], together with a transition-counting harness that reproduces the
// comparisons among them. Every encoder has an exact decoder; round-trip
// correctness is part of the package contract.
package bus

import (
	"math/bits"

	"hlpower/internal/bitutil"
	"hlpower/internal/budget"
)

// Encoder transforms a word stream into bus values (possibly with
// redundant control lines above the data width). Encoders are stateful.
type Encoder interface {
	Name() string
	// BusWidth is the total number of driven lines (data + control).
	BusWidth() int
	// Encode maps the next word to the bus value.
	Encode(word uint64) uint64
	// Reset restores the initial state.
	Reset()
}

// Decoder recovers the word stream from bus values. Decoders are
// stateful and must be fed the exact encoder output sequence.
type Decoder interface {
	Decode(busVal uint64) uint64
	Reset()
}

// Transitions encodes the whole stream and counts bus-line transitions.
func Transitions(e Encoder, stream []uint64) int {
	n, _ := TransitionsBudget(nil, e, stream) // nil budget never trips
	return n
}

// TransitionsBudget is Transitions governed by a resource budget: each
// encoded word charges one step, so trace-driven encoding sweeps over
// long address streams respect deadlines, cancellation, and injected
// faults like every other estimation stage. On exhaustion the encoder
// state is abandoned mid-stream and the error matches
// budget.ErrExceeded.
func TransitionsBudget(b *budget.Budget, e Encoder, stream []uint64) (int, error) {
	e.Reset()
	total := 0
	var prev uint64
	for i, w := range stream {
		if err := b.Step(1); err != nil {
			return total, err
		}
		v := e.Encode(w)
		if i > 0 {
			total += bitutil.Hamming(prev, v)
		}
		prev = v
	}
	return total, nil
}

// PerWord returns average transitions per transmitted word.
func PerWord(e Encoder, stream []uint64) float64 {
	f, _ := PerWordBudget(nil, e, stream) // nil budget never trips
	return f
}

// PerWordBudget is PerWord under a resource budget (see
// TransitionsBudget).
func PerWordBudget(b *budget.Budget, e Encoder, stream []uint64) (float64, error) {
	if len(stream) < 2 {
		return 0, b.Err()
	}
	t, err := TransitionsBudget(b, e, stream)
	if err != nil {
		return 0, err
	}
	return float64(t) / float64(len(stream)-1), nil
}

// ---------------------------------------------------------------------
// Raw (binary) baseline.

// Raw transmits words unencoded.
type Raw struct{ Width int }

func (r *Raw) Name() string           { return "binary" }
func (r *Raw) BusWidth() int          { return r.Width }
func (r *Raw) Encode(w uint64) uint64 { return w & bitutil.Mask(r.Width) }
func (r *Raw) Reset()                 {}
func (r *Raw) Decode(v uint64) uint64 { return v & bitutil.Mask(r.Width) }

// ---------------------------------------------------------------------
// Bus-Invert.

// BusInvert implements the Stan–Burleson code: when more than half the
// lines would flip, the inverted word is sent and the redundant INV
// line (bit Width) is raised. At most ⌈N/2⌉+1 transitions per cycle.
type BusInvert struct {
	Width   int
	prevBus uint64
}

func (b *BusInvert) Name() string  { return "bus-invert" }
func (b *BusInvert) BusWidth() int { return b.Width + 1 }
func (b *BusInvert) Reset()        { b.prevBus = 0 }

func (b *BusInvert) Encode(w uint64) uint64 {
	mask := bitutil.Mask(b.Width)
	w &= mask
	// Distance if sent as-is vs inverted, counting the INV line too.
	prevINV := b.prevBus >> uint(b.Width) & 1
	dPlain := bits.OnesCount64((b.prevBus^w)&mask) + int(prevINV^0)
	dInv := bits.OnesCount64((b.prevBus^(^w))&mask) + int(prevINV^1)
	var out uint64
	if dInv < dPlain {
		out = (^w & mask) | 1<<uint(b.Width)
	} else {
		out = w
	}
	b.prevBus = out
	return out
}

// BusInvertDecoder inverts the code.
type BusInvertDecoder struct{ Width int }

func (d *BusInvertDecoder) Reset() {}
func (d *BusInvertDecoder) Decode(v uint64) uint64 {
	mask := bitutil.Mask(d.Width)
	if v>>uint(d.Width)&1 == 1 {
		return ^v & mask
	}
	return v & mask
}

// ---------------------------------------------------------------------
// Gray.

// GrayCode transmits the Gray image of each word: consecutive addresses
// differ in exactly one line.
type GrayCode struct{ Width int }

func (g *GrayCode) Name() string           { return "gray" }
func (g *GrayCode) BusWidth() int          { return g.Width }
func (g *GrayCode) Reset()                 {}
func (g *GrayCode) Encode(w uint64) uint64 { return bitutil.Gray(w & bitutil.Mask(g.Width)) }

// GrayDecoder inverts the code.
type GrayDecoder struct{ Width int }

func (d *GrayDecoder) Reset() {}
func (d *GrayDecoder) Decode(v uint64) uint64 {
	return bitutil.GrayInverse(v) & bitutil.Mask(d.Width)
}

// ---------------------------------------------------------------------
// T0.

// T0 implements the asymptotic zero-transition code: when the new
// address is the previous one plus one, the bus is frozen and the INC
// line (bit Width) raised; the receiver increments locally.
type T0 struct {
	Width    int
	started  bool
	lastWord uint64
	prevBus  uint64
}

func (t *T0) Name() string  { return "t0" }
func (t *T0) BusWidth() int { return t.Width + 1 }
func (t *T0) Reset()        { t.started = false; t.lastWord = 0; t.prevBus = 0 }

func (t *T0) Encode(w uint64) uint64 {
	mask := bitutil.Mask(t.Width)
	w &= mask
	var out uint64
	if t.started && w == (t.lastWord+1)&mask {
		// Freeze data lines, raise INC.
		out = (t.prevBus & mask) | 1<<uint(t.Width)
	} else {
		out = w
	}
	t.started = true
	t.lastWord = w
	t.prevBus = out
	return out
}

// T0Decoder inverts the code.
type T0Decoder struct {
	Width    int
	lastWord uint64
	started  bool
}

func (d *T0Decoder) Reset() { d.started = false; d.lastWord = 0 }
func (d *T0Decoder) Decode(v uint64) uint64 {
	mask := bitutil.Mask(d.Width)
	var w uint64
	if v>>uint(d.Width)&1 == 1 && d.started {
		w = (d.lastWord + 1) & mask
	} else {
		w = v & mask
	}
	d.started = true
	d.lastWord = w
	return w
}
