package bus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"hlpower/internal/trace"
)

const w = 16

func roundTrip(t *testing.T, e Encoder, d Decoder, stream []uint64) {
	t.Helper()
	e.Reset()
	d.Reset()
	for i, word := range stream {
		got := d.Decode(e.Encode(word))
		if got != word {
			t.Fatalf("%s: round-trip failed at %d: sent %#x got %#x", e.Name(), i, word, got)
		}
	}
}

func TestRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	streams := map[string][]uint64{
		"random":     trace.Uniform(2000, w, rng),
		"sequential": trace.Sequential(2000, w, 100),
		"zones": trace.InterleavedZones(2000, w, []trace.ZoneSpec{
			{Base: 0x1000, Length: 64}, {Base: 0x8000, Length: 64}, {Base: 0x4000, Length: 64},
		}),
		"correlated": trace.BlockCorrelated(2000, w, 4, 3, 0.9, rng),
	}
	for name, s := range streams {
		roundTrip(t, &Raw{Width: w}, &Raw{Width: w}, s)
		roundTrip(t, &BusInvert{Width: w}, &BusInvertDecoder{Width: w}, s)
		roundTrip(t, &GrayCode{Width: w}, &GrayDecoder{Width: w}, s)
		roundTrip(t, &T0{Width: w}, &T0Decoder{Width: w}, s)
		roundTrip(t, NewWorkingZone(w, 4, 8), NewWorkingZoneDecoder(w, 4, 8), s)
		b := TrainBeach(s[:1000], w, 4, 3)
		roundTrip(t, b, b, s)
		_ = name
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := trace.Uniform(200, w, rng)
		enc := &T0{Width: w}
		dec := &T0Decoder{Width: w}
		enc.Reset()
		dec.Reset()
		for _, word := range s {
			if dec.Decode(enc.Encode(word)) != word {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestBusInvertBound(t *testing.T) {
	// At most ceil(N/2)+1 transitions per cycle, even on adversarial
	// alternating data.
	var stream []uint64
	for i := 0; i < 500; i++ {
		if i%2 == 0 {
			stream = append(stream, 0)
		} else {
			stream = append(stream, 0xFFFF)
		}
	}
	e := &BusInvert{Width: w}
	e.Reset()
	var prev uint64
	for i, word := range stream {
		v := e.Encode(word)
		if i > 0 {
			d := 0
			for b := 0; b < e.BusWidth(); b++ {
				if (prev^v)>>uint(b)&1 == 1 {
					d++
				}
			}
			if d > w/2+1 {
				t.Fatalf("bus-invert exceeded bound at %d: %d transitions", i, d)
			}
		}
		prev = v
	}
}

func TestBusInvertBeatsRawOnRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	s := trace.Uniform(5000, w, rng)
	raw := PerWord(&Raw{Width: w}, s)
	bi := PerWord(&BusInvert{Width: w}, s)
	if bi >= raw {
		t.Errorf("bus-invert %v should beat raw %v on random data", bi, raw)
	}
}

func TestGraySingleTransitionOnSequential(t *testing.T) {
	s := trace.Sequential(4096, w, 0)
	per := PerWord(&GrayCode{Width: w}, s)
	if per > 1.0001 || per < 0.999 {
		t.Errorf("gray sequential transitions/word = %v, want exactly 1", per)
	}
	// Raw binary averages ~2 on sequential streams.
	raw := PerWord(&Raw{Width: w}, s)
	if raw <= per {
		t.Errorf("raw %v should exceed gray %v on sequential addresses", raw, per)
	}
}

func TestT0ZeroTransitionsOnSequential(t *testing.T) {
	s := trace.Sequential(4096, w, 0)
	tr := Transitions(&T0{Width: w}, s)
	// Only the first INC raise may toggle lines.
	if tr > 2 {
		t.Errorf("T0 sequential transitions = %d, want <= 2", tr)
	}
}

func TestWorkingZoneBeatsGrayOnInterleaved(t *testing.T) {
	zones := []trace.ZoneSpec{
		{Base: 0x1000, Length: 200}, {Base: 0x8000, Length: 200}, {Base: 0x4000, Length: 200},
	}
	s := trace.InterleavedZones(6000, w, zones)
	wz := PerWord(NewWorkingZone(w, 4, 10), s)
	gray := PerWord(&GrayCode{Width: w}, s)
	t0 := PerWord(&T0{Width: w}, s)
	if wz >= gray {
		t.Errorf("working-zone %v should beat gray %v on interleaved zones", wz, gray)
	}
	if wz >= t0 {
		t.Errorf("working-zone %v should beat t0 %v on interleaved zones", wz, t0)
	}
}

func TestBeachBeatsRawOnCorrelated(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := trace.BlockCorrelated(8000, w, 4, 4, 0.92, rng)
	train, test := s[:4000], s[4000:]
	b := TrainBeach(train, w, 4, 4)
	raw := PerWord(&Raw{Width: w}, test)
	beach := PerWord(b, test)
	if beach >= raw {
		t.Errorf("beach %v should beat raw %v on block-correlated streams", beach, raw)
	}
}

func TestBeachIsBijective(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	s := trace.BlockCorrelated(1000, 8, 4, 3, 0.9, rng)
	b := TrainBeach(s, 8, 4, 3)
	seen := make(map[uint64]bool)
	for v := uint64(0); v < 256; v++ {
		e := b.Encode(v)
		if seen[e] {
			t.Fatalf("beach not injective at %#x", v)
		}
		seen[e] = true
		if b.Decode(e) != v {
			t.Fatalf("beach decode broken at %#x", v)
		}
	}
}

func TestClusterLinesCoversAllLines(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	s := trace.Uniform(500, 12, rng)
	clusters := clusterLines(s, 12, 4)
	covered := make(map[int]bool)
	for _, cl := range clusters {
		if len(cl) > 4 {
			t.Errorf("cluster too large: %v", cl)
		}
		for _, l := range cl {
			if covered[l] {
				t.Errorf("line %d in two clusters", l)
			}
			covered[l] = true
		}
	}
	if len(covered) != 12 {
		t.Errorf("covered %d lines, want 12", len(covered))
	}
}

func TestTransitionsEdgeCases(t *testing.T) {
	if Transitions(&Raw{Width: 8}, nil) != 0 {
		t.Error("empty stream should have no transitions")
	}
	if PerWord(&Raw{Width: 8}, []uint64{5}) != 0 {
		t.Error("single word should have no transitions")
	}
}

func TestT0BIRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	streams := [][]uint64{
		trace.Uniform(1500, w, rng),
		trace.Sequential(1500, w, 7),
		trace.Mixed(trace.Sequential(500, w, 0), trace.Uniform(500, w, rng)),
	}
	for _, s := range streams {
		roundTrip(t, &T0BI{Width: w}, &T0BIDecoder{Width: w}, s)
	}
}

func TestT0BICombinesBothStrengths(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Sequential: as good as T0 (~0).
	seq := trace.Sequential(3000, w, 0)
	if tr := Transitions(&T0BI{Width: w}, seq); tr > 3 {
		t.Errorf("t0-bi on sequential = %d transitions, want ~0", tr)
	}
	// Random: as good as bus-invert (beats raw).
	rnd := trace.Uniform(3000, w, rng)
	bi := PerWord(&BusInvert{Width: w}, rnd)
	tbi := PerWord(&T0BI{Width: w}, rnd)
	raw := PerWord(&Raw{Width: w}, rnd)
	if tbi >= raw {
		t.Errorf("t0-bi %v should beat raw %v on random data", tbi, raw)
	}
	if tbi > bi*1.1 {
		t.Errorf("t0-bi %v should track bus-invert %v on random data", tbi, bi)
	}
}
