package bus_test

import (
	"fmt"

	"hlpower/internal/bus"
	"hlpower/internal/trace"
)

func ExamplePerWord() {
	addrs := trace.Sequential(1024, 16, 0)
	gray := bus.PerWord(&bus.GrayCode{Width: 16}, addrs)
	t0 := bus.PerWord(&bus.T0{Width: 16}, addrs)
	fmt.Printf("gray: %.2f transitions/word\n", gray)
	fmt.Printf("t0:   %.2f transitions/word\n", t0)
	// Output:
	// gray: 1.00 transitions/word
	// t0:   0.00 transitions/word
}
