// Package lopt implements the RT/gate-level power-management and
// retiming techniques of §III-I and §III-J: precomputation (Alidina/
// Monteiro [99]), gated clocks for synthesized controllers (Benini/De
// Micheli [101]–[103]), guarded evaluation (Tiwari [105]), and the
// glitch-driven register placement of low-power retiming (Monteiro
// [111]). Each transformation produces a netlist that is functionally
// equivalent to its baseline (modulo documented latency) and measurably
// cheaper on idle-heavy or glitchy stimuli.
package lopt

import (
	"fmt"
	"math"

	"hlpower/internal/bdd"
	"hlpower/internal/cover"
	"hlpower/internal/logic"
	"hlpower/internal/rtlib"
)

// PrecompResult packages the two architectures of Fig. 6 for one
// single-output function: the plain registered implementation and the
// precomputation architecture, with the predictor subset and its
// shutdown probability.
type PrecompResult struct {
	Baseline    *logic.Netlist
	Precomputed *logic.Netlist
	Subset      []int   // input indices the predictors observe
	ProbShut    float64 // Pr[g1 + g0] under uniform inputs
}

// Precompute builds the Fig. 6 architecture for the n-input function
// given by its truth table, choosing the best k-input predictor subset
// by exact BDD probability. Both netlists register their inputs and
// produce f(x_t) combinationally during cycle t+1.
func Precompute(tt []bool, n, k int) (*PrecompResult, error) {
	if k <= 0 || k >= n {
		return nil, fmt.Errorf("lopt: predictor subset size %d out of range (0,%d)", k, n)
	}
	if len(tt) != 1<<uint(n) {
		return nil, fmt.Errorf("lopt: truth table size %d, want %d", len(tt), 1<<uint(n))
	}
	m := bdd.New(n)
	f := m.FromTruthTable(tt, n)
	notF := m.Not(f)
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = 0.5
	}

	// Choose the subset S maximizing Pr[g1 + g0], where
	// g1 = ∀(X\S).f and g0 = ∀(X\S).f'.
	var bestSubset []int
	var bestProb = -1.0
	var bestG1, bestG0 bdd.Node
	subsets := combinations(n, k)
	for _, s := range subsets {
		others := complement(n, s)
		g1 := f
		g0 := notF
		for _, v := range others {
			g1 = m.Forall(g1, v)
			g0 = m.Forall(g0, v)
		}
		p := m.Probability(m.Or(g1, g0), uniform)
		if p > bestProb {
			bestProb, bestSubset, bestG1, bestG0 = p, s, g1, g0
		}
	}

	baseline, err := registeredImpl(tt, n)
	if err != nil {
		return nil, err
	}
	pre, err := precomputedImpl(m, tt, n, bestSubset, bestG1, bestG0)
	if err != nil {
		return nil, err
	}
	return &PrecompResult{
		Baseline:    baseline,
		Precomputed: pre,
		Subset:      bestSubset,
		ProbShut:    bestProb,
	}, nil
}

// registeredImpl builds PIs -> DFF bank -> two-level f -> output.
func registeredImpl(tt []bool, n int) (*logic.Netlist, error) {
	net := logic.New()
	in := net.AddInputBus("x", n)
	regs := net.RegisterBus(in, "reg")
	cv, err := minimized(tt, n)
	if err != nil {
		return nil, err
	}
	out := logic.FromCover(net, cv, regs, "block-a")
	net.MarkOutput(out)
	return net, nil
}

// precomputedImpl builds the Fig. 6 architecture.
func precomputedImpl(m *bdd.Manager, tt []bool, n int, subset []int, g1, g0 bdd.Node) (*logic.Netlist, error) {
	net := logic.New()
	in := net.AddInputBus("x", n)

	inSubset := make(map[int]bool)
	for _, s := range subset {
		inSubset[s] = true
	}
	// Predictors observe the raw inputs (same timing as R1's D pins).
	g1tt := bddToTT(m, g1, n)
	g0tt := bddToTT(m, g0, n)
	g1cv, err := minimized(g1tt, n)
	if err != nil {
		return nil, err
	}
	g0cv, err := minimized(g0tt, n)
	if err != nil {
		return nil, err
	}
	// The predictor covers only mention subset variables (the others
	// were universally quantified), so feeding the full input bus is
	// structurally fine: FromCover only touches used literals.
	g1sig := logic.FromCover(net, g1cv, in, "predictor")
	g0sig := logic.FromCover(net, g0cv, in, "predictor")
	le := net.AddG(logic.Nor, "predictor", g1sig, g0sig)
	g1r := net.AddG(logic.DFF, "predictor", g1sig)
	g0r := net.AddG(logic.DFF, "predictor", g0sig)

	// R1: subset inputs always load (the predictors need them only
	// combinationally, but block A still reads them; they are gated too
	// in the classic architecture only when outside the subset).
	regs := make(logic.Bus, n)
	for i := 0; i < n; i++ {
		if inSubset[i] {
			regs[i] = net.AddG(logic.DFF, "reg", in[i])
		} else {
			regs[i] = net.AddG(logic.EnDFF, "reg", le, in[i])
		}
	}
	cv, err := minimized(tt, n)
	if err != nil {
		return nil, err
	}
	fsig := logic.FromCover(net, cv, regs, "block-a")
	// y = g1r + f·g0r'
	ng0 := net.AddG(logic.Not, "predictor", g0r)
	fand := net.AddG(logic.And, "predictor", fsig, ng0)
	y := net.AddG(logic.Or, "predictor", g1r, fand)
	net.MarkOutput(y)
	return net, nil
}

// minimized returns the minimized cover of a truth table.
func minimized(tt []bool, n int) (*cover.Cover, error) {
	var on []uint64
	for i, v := range tt {
		if v {
			on = append(on, uint64(i))
		}
	}
	return cover.Minimize(on, n)
}

// bddToTT expands a BDD back into a truth table.
func bddToTT(m *bdd.Manager, f bdd.Node, n int) []bool {
	tt := make([]bool, 1<<uint(n))
	asg := make([]bool, n)
	for i := range tt {
		for v := 0; v < n; v++ {
			asg[v] = i>>uint(v)&1 == 1
		}
		tt[i] = m.Eval(f, asg)
	}
	return tt
}

// combinations enumerates all k-subsets of {0..n-1}.
func combinations(n, k int) [][]int {
	var out [][]int
	var rec func(start int, cur []int)
	rec = func(start int, cur []int) {
		if len(cur) == k {
			out = append(out, append([]int{}, cur...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, i))
		}
	}
	rec(0, nil)
	return out
}

func complement(n int, s []int) []int {
	in := make(map[int]bool)
	for _, v := range s {
		in[v] = true
	}
	var out []int
	for i := 0; i < n; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}

// PrecomputeComparator builds the canonical precomputation example of
// [99] structurally, for operand widths beyond truth-table reach: block
// A is a w-bit ripple comparator [a > b]; the predictors observe only
// the operand MSBs (g1 = a_msb·b_msb', g0 = a_msb'·b_msb, each implying
// the output), giving shutdown probability 1/2 under uniform inputs.
// Input order is a bits then b bits, LSB first.
func PrecomputeComparator(w int) *PrecompResult {
	buildBlock := func(net *logic.Netlist, a, b logic.Bus) int {
		// a > b  ==  b < a.
		return rtlib.LessThanComparator(net, b, a, "block-a")
	}
	// Baseline: registered inputs, comparator, direct output.
	base := logic.New()
	ab := base.AddInputBus("a", w)
	bb := base.AddInputBus("b", w)
	ar := base.RegisterBus(ab, "reg")
	br := base.RegisterBus(bb, "reg")
	base.MarkOutput(buildBlock(base, ar, br))

	// Precomputed architecture.
	pre := logic.New()
	pa := pre.AddInputBus("a", w)
	pb := pre.AddInputBus("b", w)
	naM := pre.AddG(logic.Not, "predictor", pa[w-1])
	nbM := pre.AddG(logic.Not, "predictor", pb[w-1])
	g1 := pre.AddG(logic.And, "predictor", pa[w-1], nbM)
	g0 := pre.AddG(logic.And, "predictor", naM, pb[w-1])
	le := pre.AddG(logic.Nor, "predictor", g1, g0)
	g1r := pre.AddG(logic.DFF, "predictor", g1)
	g0r := pre.AddG(logic.DFF, "predictor", g0)
	// MSBs always load (the predictors decided from them); the rest of
	// the operand registers are load-enabled.
	reg := func(in logic.Bus) logic.Bus {
		out := make(logic.Bus, w)
		for i := 0; i < w-1; i++ {
			out[i] = pre.AddG(logic.EnDFF, "reg", le, in[i])
		}
		out[w-1] = pre.AddG(logic.DFF, "reg", in[w-1])
		return out
	}
	par := reg(pa)
	pbr := reg(pb)
	f := buildBlock(pre, par, pbr)
	ng0 := pre.AddG(logic.Not, "predictor", g0r)
	fand := pre.AddG(logic.And, "predictor", f, ng0)
	pre.MarkOutput(pre.AddG(logic.Or, "predictor", g1r, fand))

	return &PrecompResult{
		Baseline:    base,
		Precomputed: pre,
		Subset:      []int{w - 1, 2*w - 1},
		ProbShut:    0.5,
	}
}

// ComparatorTT builds the classic precomputation benchmark: the
// (2w)-input function [a > b] over two w-bit operands (a bits first,
// LSB-first, then b bits).
func ComparatorTT(w int) []bool {
	n := 2 * w
	tt := make([]bool, 1<<uint(n))
	for i := range tt {
		a := uint64(i) & (1<<uint(w) - 1)
		b := uint64(i) >> uint(w)
		tt[i] = a > b
	}
	return tt
}

// probOr is a helper for tests: Pr[f] under uniform inputs.
func probOr(m *bdd.Manager, f bdd.Node, n int) float64 {
	p := make([]float64, n)
	for i := range p {
		p[i] = 0.5
	}
	v := m.Probability(f, p)
	if math.IsNaN(v) {
		return 0
	}
	return v
}
