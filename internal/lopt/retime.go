package lopt

import (
	"fmt"

	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

// PipelineCut inserts a register stage on every signal crossing the
// given combinational depth boundary of a purely combinational netlist,
// producing a functionally equivalent circuit with one cycle more
// latency. Registers filter the glitches generated below the cut — the
// §III-J mechanism (a register output makes at most one transition per
// cycle, E_R ≤ E_g).
func PipelineCut(n *logic.Netlist, cutDepth int) (*logic.Netlist, error) {
	out := cloneNetlist(n)
	depth, err := gateDepths(out)
	if err != nil {
		return nil, err
	}
	// A signal crosses the cut when its depth <= cutDepth and it feeds a
	// gate of depth > cutDepth. Inputs (depth 0) cross too: they must be
	// delayed to keep data waves aligned.
	regOf := make(map[int]int)
	regFor := func(sig int) int {
		if r, ok := regOf[sig]; ok {
			return r
		}
		r := out.AddG(logic.DFF, "pipeline", sig)
		regOf[sig] = r
		return r
	}
	nOrig := len(out.Gates)
	for id := 0; id < nOrig; id++ {
		if depth[id] <= cutDepth {
			continue
		}
		for pin, f := range out.Gates[id].Fanin {
			if depth[f] <= cutDepth {
				out.Gates[id].Fanin[pin] = regFor(f)
			}
		}
	}
	// Outputs at or below the cut also need delaying for alignment.
	for i, o := range out.Outputs {
		if depth[o] <= cutDepth {
			out.Outputs[i] = regFor(o)
		}
	}
	return out, nil
}

// gateDepths returns combinational depth per signal (0 for sources).
func gateDepths(n *logic.Netlist) ([]int, error) {
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(n.Gates))
	for _, id := range order {
		g := n.Gates[id]
		if g.Kind == logic.Input || g.Kind == logic.Const0 || g.Kind == logic.Const1 || g.Kind.IsSequential() {
			continue
		}
		d := 0
		for _, f := range g.Fanin {
			if depth[f] > d {
				d = depth[f]
			}
		}
		depth[id] = d + 1
	}
	return depth, nil
}

// RetimeForPower profiles every cut depth of a combinational netlist
// under the given stimulus (event-driven, so glitches count) and
// returns the depth whose pipelined version switches the least
// capacitance, together with that netlist. This is the power-driven
// register placement of [111]: the chosen cut lands after the glitchy
// gates whose spurious transitions are worth filtering.
func RetimeForPower(n *logic.Netlist, inputs sim.InputProvider, cycles int) (int, *logic.Netlist, error) {
	maxDepth := n.Depth()
	if maxDepth <= 1 {
		return 0, nil, fmt.Errorf("lopt: netlist too shallow to retime")
	}
	bestDepth := -1
	var bestNet *logic.Netlist
	bestCap := 0.0
	for d := 1; d < maxDepth; d++ {
		cut, err := PipelineCut(n, d)
		if err != nil {
			return 0, nil, err
		}
		res, err := sim.Run(cut, inputs, cycles, sim.Options{Model: sim.EventDriven})
		if err != nil {
			return 0, nil, err
		}
		if bestDepth < 0 || res.SwitchedCap < bestCap {
			bestDepth, bestNet, bestCap = d, cut, res.SwitchedCap
		}
	}
	return bestDepth, bestNet, nil
}
