package lopt

import (
	"hlpower/internal/logic"
)

// GuardEvaluation applies pure guarded evaluation (§III-I, Tiwari
// [105]) to a copy of the netlist: for each multiplexor whose select is
// an early signal (a primary input or register output, guaranteeing the
// paper's t_l(s) < t_e(Y) condition under unit gate delays), the logic
// cones exclusive to each data branch get transparent latches on their
// external inputs, enabled only when that branch is observable. It
// returns the transformed copy and the number of guarded cones.
func GuardEvaluation(n *logic.Netlist) (*logic.Netlist, int) {
	out := cloneNetlist(n)
	fanouts := out.Fanouts()
	guarded := 0
	inverters := make(map[int]int)
	invert := func(sig int) int {
		if g, ok := inverters[sig]; ok {
			return g
		}
		g := out.AddG(logic.Not, "guard", sig)
		inverters[sig] = g
		return g
	}
	nOrig := len(out.Gates)
	for id := 0; id < nOrig; id++ {
		g := out.Gates[id]
		if g.Kind != logic.Mux {
			continue
		}
		sel := g.Fanin[0]
		if !isEarly(out, sel) {
			continue
		}
		for branch := 1; branch <= 2; branch++ {
			root := out.Gates[id].Fanin[branch]
			cone := exclusiveCone(out, fanouts, root, id)
			if len(cone) == 0 {
				continue
			}
			// Enable: branch observable. Branch 1 (in0) when sel=0,
			// branch 2 (in1) when sel=1.
			enable := sel
			if branch == 1 {
				enable = invert(sel)
			}
			if insertGuards(out, cone, enable) {
				guarded++
			}
			fanouts = out.Fanouts() // structure changed
		}
	}
	return out, guarded
}

// isEarly reports whether a signal settles at time 0: a primary input,
// constant, or register output.
func isEarly(n *logic.Netlist, id int) bool {
	k := n.Gates[id].Kind
	return k == logic.Input || k == logic.Const0 || k == logic.Const1 || k.IsSequential()
}

// exclusiveCone returns the set of combinational gates all of whose
// fanout paths terminate at the given mux (through root) — the gates
// that are unobservable when the branch is deselected.
func exclusiveCone(n *logic.Netlist, fanouts [][]int, root, mux int) map[int]bool {
	cone := make(map[int]bool)
	if isEarly(n, root) {
		return cone
	}
	// Iteratively grow from the root: a gate joins if every fanout is
	// the mux or already in the cone.
	candidate := func(id int) bool {
		if isEarly(n, id) || n.Gates[id].Kind == logic.Latch {
			return false
		}
		for _, f := range fanouts[id] {
			if f != mux && !cone[f] {
				return false
			}
		}
		// Must not be a primary output.
		for _, o := range n.Outputs {
			if o == id {
				return false
			}
		}
		return true
	}
	if !candidate(root) {
		return cone
	}
	cone[root] = true
	changed := true
	for changed {
		changed = false
		for id := range cone {
			for _, f := range n.Gates[id].Fanin {
				if !cone[f] && candidate(f) {
					cone[f] = true
					changed = true
				}
			}
		}
	}
	return cone
}

// insertGuards latches every edge entering the cone from outside.
func insertGuards(n *logic.Netlist, cone map[int]bool, enable int) bool {
	latched := make(map[int]int) // external signal -> latch id
	did := false
	for id := range cone {
		for pin, f := range n.Gates[id].Fanin {
			if cone[f] {
				continue
			}
			l, ok := latched[f]
			if !ok {
				l = n.AddG(logic.Latch, "guard", enable, f)
				latched[f] = l
			}
			n.Gates[id].Fanin[pin] = l
			did = true
		}
	}
	return did
}

// cloneNetlist deep-copies a netlist.
func cloneNetlist(n *logic.Netlist) *logic.Netlist { return n.Clone() }
