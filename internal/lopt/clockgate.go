package lopt

import (
	"fmt"

	"hlpower/internal/cover"
	"hlpower/internal/fsm"
	"hlpower/internal/logic"
)

// GatedController synthesizes an encoded FSM with a gated clock
// (§III-I, Fig. 7): the activation function Fa detects the idle
// condition — input/state pairs whose next state equals the present
// state — and stops the state registers' clock through enabled
// flip-flops. Outputs remain combinational (Mealy), so behaviour is
// unchanged while the clock tree and the next-state register bank stop
// switching in wait states.
func GatedController(f *fsm.FSM, enc *fsm.Encoding) (*logic.Netlist, error) {
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if err := enc.Validate(f.NumStates); err != nil {
		return nil, err
	}
	nVars := f.NumInputs + enc.Width
	if nVars > 24 {
		return nil, fmt.Errorf("lopt: %d input+state bits too many", nVars)
	}
	n := logic.New()
	in := n.AddInputBus("x", f.NumInputs)

	zero := n.AddG(logic.Const0, fsm.GroupStateReg)
	stateQ := make(logic.Bus, enc.Width)
	for b := range stateQ {
		// Enable patched below once Fa exists.
		stateQ[b] = n.AddG(logic.EnDFF, fsm.GroupStateReg, zero, zero)
		n.SetInit(stateQ[b], enc.Codes[0]>>uint(b)&1 == 1)
	}
	vars := append(append(logic.Bus{}, in...), stateQ...)

	// Minterm tables.
	nextOn := make([][]uint64, enc.Width)
	outOn := make([][]uint64, f.NumOutputs)
	var idleOn []uint64 // (input,state) pairs with a self-loop
	nsym := f.NumSymbols()
	for s := 0; s < f.NumStates; s++ {
		codeBits := enc.Codes[s] << uint(f.NumInputs)
		for sym := 0; sym < nsym; sym++ {
			minterm := uint64(sym) | codeBits
			next := f.Next[s][sym]
			if next == s {
				idleOn = append(idleOn, minterm)
			}
			nextCode := enc.Codes[next]
			for b := 0; b < enc.Width; b++ {
				if nextCode>>uint(b)&1 == 1 {
					nextOn[b] = append(nextOn[b], minterm)
				}
			}
			for b := 0; b < f.NumOutputs; b++ {
				if f.Out[s][sym]>>uint(b)&1 == 1 {
					outOn[b] = append(outOn[b], minterm)
				}
			}
		}
	}
	// Activation function: clock enabled when NOT idle.
	idleCv, err := cover.Minimize(idleOn, nVars)
	if err != nil {
		return nil, err
	}
	fa := logic.FromCover(n, idleCv, vars, "clock-gate")
	enable := n.AddG(logic.Not, "clock-gate", fa)
	for b := 0; b < enc.Width; b++ {
		cv, err := cover.Minimize(nextOn[b], nVars)
		if err != nil {
			return nil, err
		}
		d := logic.FromCover(n, cv, vars, fsm.GroupNextState)
		n.Gates[stateQ[b]].Fanin[0] = enable
		n.Gates[stateQ[b]].Fanin[1] = d
	}
	for b := 0; b < f.NumOutputs; b++ {
		cv, err := cover.Minimize(outOn[b], nVars)
		if err != nil {
			return nil, err
		}
		o := logic.FromCover(n, cv, vars, fsm.GroupOutput)
		n.MarkOutput(o)
	}
	return n, nil
}
