package lopt

import (
	"math/rand"
	"testing"

	"hlpower/internal/logic"
	"hlpower/internal/sim"
)

// randomNetlist builds a random combinational DAG: nIn primary inputs
// feeding nGates gates of random kinds with fanin drawn from earlier
// signals, and a few random outputs. This is the metamorphic-test
// input space — structurally arbitrary circuits nothing in the rtlib
// generators would produce.
func randomNetlist(rng *rand.Rand, nIn, nGates, nOut int) *logic.Netlist {
	n := logic.New()
	for i := 0; i < nIn; i++ {
		n.AddInput("i")
	}
	kinds1 := []logic.Kind{logic.Buf, logic.Not}
	kinds2 := []logic.Kind{logic.And, logic.Or, logic.Nand, logic.Nor, logic.Xor, logic.Xnor}
	for g := 0; g < nGates; g++ {
		limit := nIn + g
		pick := func() int { return rng.Intn(limit) }
		switch rng.Intn(10) {
		case 0, 1:
			n.Add(kinds1[rng.Intn(len(kinds1))], pick())
		case 2:
			n.Add(logic.Mux, pick(), pick(), pick())
		default:
			n.Add(kinds2[rng.Intn(len(kinds2))], pick(), pick())
		}
	}
	total := nIn + nGates
	for o := 0; o < nOut; o++ {
		n.MarkOutput(total - 1 - rng.Intn(nGates))
	}
	return n
}

func randomVectors(rng *rand.Rand, cycles, width int) [][]bool {
	vecs := make([][]bool, cycles)
	for c := range vecs {
		vecs[c] = make([]bool, width)
		for i := range vecs[c] {
			vecs[c][i] = rng.Intn(2) == 0
		}
	}
	return vecs
}

// TestMetamorphicPassesPreserveFunction is the property test behind
// the recipe registry's safety story: across many random circuits and
// seeds, every lopt netlist transform produces a circuit that computes
// the same function as its input — exactly for latency-0 transforms,
// shifted by the added latency for pipelining.
func TestMetamorphicPassesPreserveFunction(t *testing.T) {
	const cycles = 48
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nIn := 2 + rng.Intn(5)
		n := randomNetlist(rng, nIn, 3+rng.Intn(20), 1+rng.Intn(3))
		if n.Err() != nil {
			t.Fatalf("seed %d: bad random netlist: %v", seed, n.Err())
		}
		vecs := randomVectors(rng, cycles, nIn)
		ref, err := sim.Run(n, sim.VectorInputs(vecs), cycles, sim.Options{})
		if err != nil {
			t.Fatalf("seed %d: reference sim: %v", seed, err)
		}

		// Guarding: zero latency, cycle-exact equivalence.
		guarded, nGuards := GuardEvaluation(n)
		got, err := sim.Run(guarded, sim.VectorInputs(vecs), cycles, sim.Options{})
		if err != nil {
			t.Fatalf("seed %d: guarded sim: %v", seed, err)
		}
		for c := 0; c < cycles; c++ {
			for o := range ref.Outputs[c] {
				if got.Outputs[c][o] != ref.Outputs[c][o] {
					t.Fatalf("seed %d: guard (%d guards) diverges at cycle %d output %d", seed, nGuards, c, o)
				}
			}
		}

		// Pipelining at every feasible depth: latency 1, shifted
		// equivalence from cycle 1 on.
		depth := n.Depth()
		for cut := 1; cut < depth; cut++ {
			piped, err := PipelineCut(n, cut)
			if err != nil {
				t.Fatalf("seed %d: cut %d: %v", seed, cut, err)
			}
			got, err := sim.Run(piped, sim.VectorInputs(vecs), cycles, sim.Options{})
			if err != nil {
				t.Fatalf("seed %d: piped sim: %v", seed, err)
			}
			for c := 0; c+1 < cycles; c++ {
				for o := range ref.Outputs[c] {
					if got.Outputs[c+1][o] != ref.Outputs[c][o] {
						t.Fatalf("seed %d: cut %d diverges at cycle %d output %d", seed, cut, c, o)
					}
				}
			}
		}
	}
}

// TestMetamorphicGuardThenPipeline chains the two transforms, the
// shape recipe search actually produces, and checks the composition
// still preserves the function.
func TestMetamorphicGuardThenPipeline(t *testing.T) {
	const cycles = 40
	for seed := int64(100); seed < 115; seed++ {
		rng := rand.New(rand.NewSource(seed))
		nIn := 3 + rng.Intn(4)
		n := randomNetlist(rng, nIn, 8+rng.Intn(16), 2)
		vecs := randomVectors(rng, cycles, nIn)
		ref, err := sim.Run(n, sim.VectorInputs(vecs), cycles, sim.Options{})
		if err != nil {
			t.Fatalf("seed %d: reference sim: %v", seed, err)
		}
		guarded, _ := GuardEvaluation(n)
		depth := guarded.Depth()
		if depth < 2 {
			continue
		}
		piped, err := PipelineCut(guarded, 1+rng.Intn(depth-1))
		if err != nil {
			t.Fatalf("seed %d: cut: %v", seed, err)
		}
		got, err := sim.Run(piped, sim.VectorInputs(vecs), cycles, sim.Options{})
		if err != nil {
			t.Fatalf("seed %d: composed sim: %v", seed, err)
		}
		for c := 0; c+1 < cycles; c++ {
			for o := range ref.Outputs[c] {
				if got.Outputs[c+1][o] != ref.Outputs[c][o] {
					t.Fatalf("seed %d: composition diverges at cycle %d output %d", seed, c, o)
				}
			}
		}
	}
}
