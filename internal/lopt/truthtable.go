package lopt

import (
	"fmt"

	"hlpower/internal/budget"
	"hlpower/internal/logic"
)

// IsCombinational reports whether the netlist is purely combinational:
// no flip-flops and no latches, so its outputs are a function of the
// current input vector alone.
func IsCombinational(n *logic.Netlist) bool {
	for _, g := range n.Gates {
		if g.Kind.IsSequential() || g.Kind == logic.Latch {
			return false
		}
	}
	return true
}

// TruthTables exhaustively extracts the truth table of every primary
// output of a purely combinational netlist, in output order with the
// variable order of n.Inputs (input i is bit i of the row index). The
// enumeration is the bridge from structural netlists back to the
// two-level domain, where re-minimization (cover) and precomputation
// (Precompute) operate. The budget is charged one step per evaluated
// gate, so oversized extractions trip instead of stalling.
func TruthTables(b *budget.Budget, n *logic.Netlist, maxInputs int) ([][]bool, error) {
	if err := n.Err(); err != nil {
		return nil, err
	}
	if !IsCombinational(n) {
		return nil, fmt.Errorf("lopt: truth-table extraction needs a combinational netlist")
	}
	nIn := len(n.Inputs)
	if nIn > maxInputs {
		return nil, fmt.Errorf("lopt: %d inputs exceed extraction limit %d", nIn, maxInputs)
	}
	order, err := n.TopoOrder()
	if err != nil {
		return nil, err
	}
	rows := 1 << uint(nIn)
	tts := make([][]bool, len(n.Outputs))
	for i := range tts {
		tts[i] = make([]bool, rows)
	}
	vals := make([]bool, len(n.Gates))
	var in []bool
	for idx := 0; idx < rows; idx++ {
		for i, id := range n.Inputs {
			vals[id] = idx>>uint(i)&1 == 1
		}
		for _, id := range order {
			g := n.Gates[id]
			if g.Kind == logic.Input {
				continue
			}
			in = in[:0]
			for _, f := range g.Fanin {
				in = append(in, vals[f])
			}
			vals[id] = logic.EvalGate(g.Kind, in)
		}
		if err := b.Step(int64(len(order))); err != nil {
			return nil, err
		}
		for o, id := range n.Outputs {
			tts[o][idx] = vals[id]
		}
	}
	return tts, nil
}
